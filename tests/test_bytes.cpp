// Byte utilities: hex codec, constant-time compare, integer/LP wire
// encoding and the bounds-checked ByteReader.
#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/errors.h"

namespace rsse {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(data), "0001abff");
  EXPECT_EQ(hex_decode("0001abff"), data);
  EXPECT_EQ(hex_decode("0001ABFF"), data);  // case-insensitive decode
}

TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(hex_encode(Bytes{}), "");
  EXPECT_EQ(hex_decode(""), Bytes{});
}

TEST(Hex, RejectsMalformedInput) {
  EXPECT_THROW(hex_decode("abc"), ParseError);   // odd length
  EXPECT_THROW(hex_decode("zz"), ParseError);    // non-hex
}

TEST(ConstantTimeEqual, Semantics) {
  EXPECT_TRUE(constant_time_equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(constant_time_equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(constant_time_equal(to_bytes("abc"), to_bytes("ab")));
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
}

TEST(Wire, U32U64RoundTrip) {
  Bytes out;
  append_u32(out, 0xdeadbeefu);
  append_u64(out, 0x0123456789abcdefull);
  ByteReader reader(out);
  EXPECT_EQ(reader.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789abcdefull);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Wire, LittleEndianLayout) {
  Bytes out;
  append_u32(out, 0x01020304u);
  EXPECT_EQ(out, (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(Wire, LengthPrefixedRoundTrip) {
  Bytes out;
  append_lp(out, to_bytes("hello"));
  append_lp(out, Bytes{});
  append_lp(out, to_bytes("world"));
  ByteReader reader(out);
  EXPECT_EQ(reader.read_lp(), to_bytes("hello"));
  EXPECT_EQ(reader.read_lp(), Bytes{});
  EXPECT_EQ(reader.read_lp(), to_bytes("world"));
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteReader, ThrowsOnTruncation) {
  Bytes out;
  append_u32(out, 7);
  ByteReader reader(out);
  EXPECT_THROW(reader.read_u64(), ParseError);
  EXPECT_EQ(reader.read_u32(), 7u);
  EXPECT_THROW(reader.read(1), ParseError);
}

TEST(ByteReader, LpWithLyingLengthThrows) {
  Bytes out;
  append_u32(out, 100);  // claims 100 bytes follow
  out.push_back(0x01);   // only one does
  ByteReader reader(out);
  EXPECT_THROW(reader.read_lp(), ParseError);
}

TEST(ByteReader, ReadCountValidatesAgainstRemaining) {
  Bytes out;
  append_u64(out, 3);                       // claims 3 elements
  append(out, Bytes(30, 0));                // 30 bytes follow
  ByteReader ok(out);
  EXPECT_EQ(ok.read_count(10), 3u);         // 3 * 10 <= 30: fine

  ByteReader too_big(out);
  EXPECT_THROW(too_big.read_count(11), ParseError);  // 3 * 11 > 30

  Bytes huge;
  append_u64(huge, ~0ull);                  // 2^64-1 "elements"
  ByteReader hostile(huge);
  EXPECT_THROW(hostile.read_count(1), ParseError);

  Bytes zero;
  append_u64(zero, 0);
  ByteReader empty(zero);
  EXPECT_EQ(empty.read_count(1000), 0u);    // zero elements always fine
}

TEST(StringConversion, RoundTrip) {
  const std::string s = "some text \x01\x02";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

}  // namespace
}  // namespace rsse
