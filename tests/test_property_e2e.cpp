// Cross-seed end-to-end properties: for randomly generated corpora the
// whole pipeline must uphold the paper's correctness claims —
//   * RSSE returns exactly F(w) for every indexed keyword probed;
//   * the server's rank order refines the quantized plaintext order;
//   * the Basic Scheme's user-side ranking equals the exact plaintext
//     ranking;
//   * the two schemes retrieve the same top-k file sets;
//   * add-then-remove is an identity on search results.
// Parameterized over seeds so each run covers several corpus shapes.
#include <gtest/gtest.h>

#include <set>

#include "ir/corpus_gen.h"
#include "ir/inverted_index.h"
#include "ir/scoring.h"
#include "sse/basic_scheme.h"
#include "sse/dynamics.h"
#include "sse/rsse_scheme.h"
#include "util/rng.h"

namespace rsse {
namespace {

class EndToEndProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Xoshiro256 rng(GetParam());
    ir::CorpusGenOptions opts;
    opts.num_documents = 20 + rng.uniform_below(30);
    opts.vocabulary_size = 80 + rng.uniform_below(150);
    opts.zipf_exponent = 0.9 + 0.4 * rng.next_double();
    opts.min_tokens = 20 + rng.uniform_below(40);
    opts.max_tokens = opts.min_tokens + 50 + rng.uniform_below(200);
    opts.injected.push_back(ir::InjectedKeyword{
        "network", 1 + rng.uniform_below(opts.num_documents),
        0.2 + 0.5 * rng.next_double(), 30});
    opts.seed = GetParam() * 7919;
    corpus_ = ir::generate_corpus(opts);

    key_ = sse::keygen();
    rsse_ = std::make_unique<sse::RsseScheme>(key_);
    basic_ = std::make_unique<sse::BasicScheme>(key_);
    built_ = std::make_unique<sse::RsseScheme::BuildResult>(rsse_->build_index(corpus_));
    basic_index_ = basic_->build_index(corpus_);
    inverted_ = ir::InvertedIndex::build(corpus_, rsse_->analyzer());

    // Probe terms: a spread across the vocabulary plus the injected one.
    probes_.push_back("network");
    const auto& terms = inverted_.terms();
    for (std::size_t i = 0; i < 5 && i < terms.size(); ++i)
      probes_.push_back(terms[rng.uniform_below(terms.size())]);
  }

  std::uint64_t level_of(const std::string& term, sse::FileId id) const {
    for (const auto& p : *inverted_.postings(term)) {
      if (p.file == id)
        return built_->quantizer.quantize(
            ir::score_single_keyword(p.tf, inverted_.doc_length(p.file)));
    }
    ADD_FAILURE() << "file not in postings";
    return 0;
  }

  ir::Corpus corpus_;
  sse::MasterKey key_;
  std::unique_ptr<sse::RsseScheme> rsse_;
  std::unique_ptr<sse::BasicScheme> basic_;
  std::unique_ptr<sse::RsseScheme::BuildResult> built_;
  sse::SecureIndex basic_index_;
  ir::InvertedIndex inverted_;
  std::vector<std::string> probes_;
};

TEST_P(EndToEndProperty, RsseReturnsExactlyTheMatchingSet) {
  for (const std::string& term : probes_) {
    const sse::Trapdoor trapdoor{rsse_->row_label(term), rsse_->row_key(term)};
    const auto results = sse::RsseScheme::search(built_->index, trapdoor);
    std::set<std::uint64_t> got;
    for (const auto& e : results) got.insert(ir::value(e.file));
    std::set<std::uint64_t> expected;
    for (const auto& p : *inverted_.postings(term)) expected.insert(ir::value(p.file));
    EXPECT_EQ(got, expected) << term;
  }
}

TEST_P(EndToEndProperty, ServerOrderRefinesQuantizedOrder) {
  for (const std::string& term : probes_) {
    const sse::Trapdoor trapdoor{rsse_->row_label(term), rsse_->row_key(term)};
    const auto results = sse::RsseScheme::search(built_->index, trapdoor);
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_GE(results[i - 1].opm_score, results[i].opm_score);
      EXPECT_GE(level_of(term, results[i - 1].file), level_of(term, results[i].file))
          << term << " rank " << i;
    }
  }
}

TEST_P(EndToEndProperty, BasicRankingIsExact) {
  for (const std::string& term : probes_) {
    const sse::Trapdoor trapdoor{rsse_->row_label(term), rsse_->row_key(term)};
    const auto entries = sse::BasicScheme::search(basic_index_, trapdoor);
    const auto ranked = basic_->rank(entries);
    const auto plaintext = inverted_.ranked_postings(term);
    ASSERT_EQ(ranked.size(), plaintext.size()) << term;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      EXPECT_EQ(ranked[i].file, plaintext[i].file) << term << " rank " << i;
      EXPECT_NEAR(ranked[i].score, plaintext[i].score, 1e-12);
    }
  }
}

TEST_P(EndToEndProperty, SchemesAgreeOnTopKSets) {
  // Quantization may permute within a level, so compare sets at a k that
  // the quantized ordering pins down: count how many files sit strictly
  // above the k-th level and require agreement on at least that prefix.
  const std::string term = "network";
  const sse::Trapdoor trapdoor{rsse_->row_label(term), rsse_->row_key(term)};
  const auto rsse_results = sse::RsseScheme::search(built_->index, trapdoor);
  const auto basic_ranked = basic_->rank(sse::BasicScheme::search(basic_index_, trapdoor));
  ASSERT_EQ(rsse_results.size(), basic_ranked.size());
  const std::size_t n = rsse_results.size();
  for (std::size_t k = 1; k <= std::min<std::size_t>(n, 10); ++k) {
    // The k-th boundary is unambiguous when levels differ across it.
    if (k < n &&
        level_of(term, rsse_results[k - 1].file) == level_of(term, rsse_results[k].file))
      continue;
    std::set<std::uint64_t> a;
    std::set<std::uint64_t> b;
    for (std::size_t i = 0; i < k; ++i) {
      a.insert(ir::value(rsse_results[i].file));
      b.insert(ir::value(basic_ranked[i].file));
    }
    // Quantization can still merge adjacent exact scores; allow at most
    // one boundary swap.
    std::size_t common = 0;
    for (std::uint64_t id : a) common += b.contains(id) ? 1 : 0;
    EXPECT_GE(common + 1, k) << "k=" << k;
  }
}

TEST_P(EndToEndProperty, AddThenRemoveIsIdentity) {
  const sse::IndexUpdater updater(*rsse_, built_->quantizer);
  const std::string term = "network";
  const sse::Trapdoor trapdoor{rsse_->row_label(term), rsse_->row_key(term)};
  const auto before = sse::RsseScheme::search(built_->index, trapdoor);

  ir::Document doc{ir::file_id(999999), "tmp.txt",
                   "network transient document for the identity property test"};
  updater.add_document(built_->index, doc);
  updater.remove_document(built_->index, doc);
  const auto after = sse::RsseScheme::search(built_->index, trapdoor);
  EXPECT_EQ(after, before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace rsse
