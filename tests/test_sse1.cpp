// Curtmola SSE-1 baseline: chain walks return exactly F(w), scores
// decrypt to eq.-2 values, foreign trapdoors and slack slots never yield
// hits, storage is ~slack * postings nodes (not m * nu), serialization
// round-trips, corrupted chains terminate.
#include <gtest/gtest.h>

#include <set>

#include "baseline/curtmola_sse1.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "ir/inverted_index.h"
#include "ir/scoring.h"
#include "sse/basic_scheme.h"
#include "sse/keys.h"
#include "util/errors.h"
#include "util/rng.h"

namespace rsse::baseline {
namespace {

class Sse1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 40;
    opts.vocabulary_size = 250;
    opts.min_tokens = 50;
    opts.max_tokens = 200;
    opts.injected.push_back(ir::InjectedKeyword{"network", 25, 0.3, 30});
    opts.seed = 47;
    corpus_ = ir::generate_corpus(opts);
    key_ = sse::keygen();
    scheme_ = std::make_unique<CurtmolaSse1>(key_.x, key_.y, key_.z);
    index_ = std::make_unique<Sse1Index>(scheme_->build_index(corpus_));
    inverted_ = ir::InvertedIndex::build(corpus_, ir::Analyzer());
  }

  ir::Corpus corpus_;
  sse::MasterKey key_;
  std::unique_ptr<CurtmolaSse1> scheme_;
  std::unique_ptr<Sse1Index> index_;
  ir::InvertedIndex inverted_;
};

TEST_F(Sse1Test, ChainWalkReturnsExactlyTheMatchingFiles) {
  const auto postings = index_->search(scheme_->trapdoor("network"));
  std::set<std::uint64_t> got;
  for (const auto& p : postings) got.insert(ir::value(p.file));
  std::set<std::uint64_t> expected;
  for (const auto& p : *inverted_.postings("network")) expected.insert(ir::value(p.file));
  EXPECT_EQ(got, expected);
  EXPECT_EQ(got.size(), 25u);
}

TEST_F(Sse1Test, ScoresDecryptToEquationTwo) {
  const auto postings = index_->search(scheme_->trapdoor("network"));
  for (const auto& p : postings) {
    const auto* list = inverted_.postings("network");
    const auto it = std::find_if(list->begin(), list->end(),
                                 [&](const ir::Posting& q) { return q.file == p.file; });
    ASSERT_NE(it, list->end());
    const double expected =
        ir::score_single_keyword(it->tf, inverted_.doc_length(it->file));
    EXPECT_NEAR(scheme_->decrypt_score(p.encrypted_score), expected, 1e-12);
  }
}

TEST_F(Sse1Test, TrapdoorCompatibleWithBasicScheme) {
  // Same (x, y) derivation as the main schemes: the trapdoors agree.
  const sse::BasicScheme basic(key_);
  EXPECT_EQ(scheme_->trapdoor("network"), basic.trapdoor("network"));
}

TEST_F(Sse1Test, UnknownAndForeignTrapdoorsFindNothing) {
  EXPECT_TRUE(index_->search(scheme_->trapdoor("qqqabsent")).empty());
  const sse::MasterKey other = sse::keygen();
  const CurtmolaSse1 foreign(other.x, other.y, other.z);
  EXPECT_TRUE(index_->search(foreign.trapdoor("network")).empty());
}

TEST_F(Sse1Test, ArraySizeIsPostingsTimesSlackNotMTimesNu) {
  std::uint64_t total_postings = 0;
  for (const auto& term : inverted_.terms())
    total_postings += inverted_.postings(term)->size();
  EXPECT_GE(index_->array_size(), total_postings);
  EXPECT_LE(index_->array_size(), static_cast<std::size_t>(total_postings * 1.3));
  // Far below the padded representation m * nu.
  EXPECT_LT(index_->array_size(),
            inverted_.num_terms() * inverted_.max_posting_length());
}

TEST_F(Sse1Test, SerializationRoundTrip) {
  const Sse1Index restored = Sse1Index::deserialize(index_->serialize());
  EXPECT_EQ(restored.array_size(), index_->array_size());
  EXPECT_EQ(restored.search(scheme_->trapdoor("network")).size(), 25u);
}

TEST_F(Sse1Test, DeserializeRejectsGarbage) {
  Bytes blob = index_->serialize();
  blob.resize(blob.size() - 1);
  EXPECT_THROW(Sse1Index::deserialize(blob), ParseError);
  EXPECT_THROW(Sse1Index::deserialize(Bytes(13, 0)), ParseError);
}

TEST_F(Sse1Test, CorruptedChainTerminatesEarlyNeverCrashes) {
  // Flip bits throughout the serialized structure; walks must terminate
  // with a (possibly truncated) result, never crash or loop.
  Bytes blob = index_->serialize();
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes corrupted = blob;
    for (int f = 0; f < 32; ++f) {
      const std::size_t pos = rng.uniform_below(corrupted.size());
      corrupted[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_below(8));
    }
    try {
      const Sse1Index tampered = Sse1Index::deserialize(corrupted);
      const auto postings = tampered.search(scheme_->trapdoor("network"));
      EXPECT_LE(postings.size(), tampered.array_size());
    } catch (const Error&) {
      // structural rejection is fine
    }
  }
}

TEST(Sse1Construction, Preconditions) {
  EXPECT_THROW(CurtmolaSse1(Bytes{}, Bytes(32, 1), Bytes(32, 2)), InvalidArgument);
  EXPECT_THROW(CurtmolaSse1(Bytes(32, 1), Bytes(32, 2), Bytes(32, 3), 160,
                            ir::AnalyzerOptions{}, 0.5),
               InvalidArgument);
  const sse::MasterKey key = sse::keygen();
  const CurtmolaSse1 scheme(key.x, key.y, key.z);
  EXPECT_THROW(scheme.build_index(ir::Corpus{}), InvalidArgument);
  EXPECT_THROW(scheme.trapdoor("the"), InvalidArgument);
}

}  // namespace
}  // namespace rsse::baseline
