// Profiler + cost-counter + leakage-gauge tests: scope nesting and
// self/total attribution, reentrancy across a thread pool, the pinned
// guarantee that disabled scopes touch no instrument, aggregation into
// the metrics registry, the deterministic cost counters, and the
// build-time leakage audit (the paper's Fig. 6 claim — no ciphertext
// duplicates at 2^46 — plus its forced-failure inverse and the
// audit.bin persistence round trip).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "analysis/leakage.h"
#include "ir/corpus_gen.h"
#include "ir/inverted_index.h"
#include "ir/scoring.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sse/keys.h"
#include "sse/rsse_scheme.h"
#include "store/deployment.h"
#include "util/thread_pool.h"

namespace rsse {
namespace {

namespace fs = std::filesystem;

// A local Profiler per test keeps the tests independent of the global
// instance (and of each other).

void spin_for(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

// ---------------------------------------------------------------- stages

TEST(Profiler, StageRegistrationIsIdempotentAndDense) {
  obs::Profiler profiler;
  const auto a = profiler.stage("test/a");
  const auto b = profiler.stage("test/b");
  EXPECT_NE(a, b);
  EXPECT_EQ(profiler.stage("test/a"), a);
  EXPECT_EQ(profiler.stage("test/b"), b);
  const auto snap = profiler.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "test/a");
  EXPECT_EQ(snap[1].name, "test/b");
}

TEST(Profiler, StagesVisibleInRegistryBeforeFirstRun) {
  obs::Profiler profiler;
  (void)profiler.stage("test/unused");
  const std::string text = profiler.registry().render_prometheus();
  // The family appears (at zero) before any scope runs, so scrapes see a
  // stable set of series.
  EXPECT_NE(text.find("rsse_profile_stage_calls_total"), std::string::npos);
  EXPECT_NE(text.find("stage=\"test/unused\""), std::string::npos);
}

TEST(Profiler, DisabledScopeTouchesNoInstrument) {
  obs::Profiler profiler;
  const auto id = profiler.stage("test/disabled");
  ASSERT_FALSE(profiler.enabled());
  {
    obs::ProfileScope scope(id, profiler);
    spin_for(std::chrono::microseconds(50));
  }
  // Pinned: a scope on the disabled profiler leaves every instrument
  // untouched — the whole disabled path is one relaxed load.
  const auto snap = profiler.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].calls, 0u);
  EXPECT_EQ(snap[0].wall_seconds, 0.0);
  EXPECT_EQ(snap[0].cpu_seconds, 0.0);
  EXPECT_EQ(snap[0].allocations, 0u);
  EXPECT_TRUE(profiler.report().empty());
}

TEST(Profiler, ScopeOpenAcrossDisableRecordsNothingAfterToggle) {
  obs::Profiler profiler;
  const auto id = profiler.stage("test/toggle");
  // Enabled at entry, disabled before exit: the scope observes the state
  // it was constructed under and still records exactly once.
  profiler.set_enabled(true);
  {
    obs::ProfileScope scope(id, profiler);
    profiler.set_enabled(false);
  }
  EXPECT_EQ(profiler.snapshot()[0].calls, 1u);
}

TEST(Profiler, NestedScopesAttributeSelfAndTotalWall) {
  obs::Profiler profiler;
  const auto outer = profiler.stage("test/outer");
  const auto inner = profiler.stage("test/inner");
  profiler.set_enabled(true);
  {
    obs::ProfileScope outer_scope(outer, profiler);
    spin_for(std::chrono::milliseconds(2));
    {
      obs::ProfileScope inner_scope(inner, profiler);
      spin_for(std::chrono::milliseconds(4));
    }
    spin_for(std::chrono::milliseconds(2));
  }
  const auto snap = profiler.snapshot();
  const auto& o = snap[0];
  const auto& i = snap[1];
  EXPECT_EQ(o.calls, 1u);
  EXPECT_EQ(i.calls, 1u);
  // Outer total includes the child; outer self excludes it.
  EXPECT_GE(o.wall_seconds, i.wall_seconds);
  EXPECT_NEAR(o.self_wall_seconds, o.wall_seconds - i.wall_seconds, 1e-3);
  // Inner has no children: self == total.
  EXPECT_DOUBLE_EQ(i.self_wall_seconds, i.wall_seconds);
  EXPECT_GE(i.wall_seconds, 0.004 - 1e-4);
}

TEST(Profiler, DeeplyNestedSelfTimesSumToOuterTotal) {
  obs::Profiler profiler;
  const auto a = profiler.stage("test/a");
  const auto b = profiler.stage("test/b");
  const auto c = profiler.stage("test/c");
  profiler.set_enabled(true);
  {
    obs::ProfileScope sa(a, profiler);
    spin_for(std::chrono::milliseconds(1));
    {
      obs::ProfileScope sb(b, profiler);
      spin_for(std::chrono::milliseconds(1));
      {
        obs::ProfileScope sc(c, profiler);
        spin_for(std::chrono::milliseconds(1));
      }
    }
  }
  const auto snap = profiler.snapshot();
  double self_sum = 0.0;
  for (const auto& s : snap) self_sum += s.self_wall_seconds;
  EXPECT_NEAR(self_sum, snap[0].wall_seconds, 1e-3);
}

TEST(Profiler, SiblingScopesOnSameStageAccumulate) {
  obs::Profiler profiler;
  const auto id = profiler.stage("test/repeat");
  profiler.set_enabled(true);
  for (int rep = 0; rep < 5; ++rep) obs::ProfileScope scope(id, profiler);
  EXPECT_EQ(profiler.snapshot()[0].calls, 5u);
}

TEST(Profiler, FinishIsIdempotent) {
  obs::Profiler profiler;
  const auto id = profiler.stage("test/finish");
  profiler.set_enabled(true);
  obs::ProfileScope scope(id, profiler);
  scope.finish();
  scope.finish();  // second finish (and the destructor) must not record
  EXPECT_EQ(profiler.snapshot()[0].calls, 1u);
}

TEST(Profiler, AllocationsAttributedToTheScope) {
  obs::Profiler profiler;
  const auto id = profiler.stage("test/alloc");
  profiler.set_enabled(true);
  constexpr int kAllocs = 64;
  {
    obs::ProfileScope scope(id, profiler);
    std::vector<std::unique_ptr<int>> keep;
    keep.reserve(kAllocs + 1);
    for (int i = 0; i < kAllocs; ++i) keep.push_back(std::make_unique<int>(i));
  }
  EXPECT_GE(profiler.snapshot()[0].allocations, static_cast<unsigned>(kAllocs));
}

TEST(Profiler, ReentrantAcrossThreadPoolWorkers) {
  obs::Profiler profiler;
  const auto outer = profiler.stage("test/pool_outer");
  const auto inner = profiler.stage("test/pool_inner");
  profiler.set_enabled(true);
  constexpr int kTasks = 64;
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int t = 0; t < kTasks; ++t) {
      futures.push_back(pool.submit([&] {
        obs::ProfileScope o(outer, profiler);
        obs::ProfileScope i(inner, profiler);
        spin_for(std::chrono::microseconds(100));
      }));
    }
    for (auto& f : futures) f.get();
  }
  const auto snap = profiler.snapshot();
  // Every frame recorded exactly once; each worker's thread-local chain
  // nested inner under its own outer (no cross-thread parent mixing
  // would still sum calls right, but would corrupt self times into
  // negative territory — checked below).
  EXPECT_EQ(snap[0].calls, static_cast<unsigned>(kTasks));
  EXPECT_EQ(snap[1].calls, static_cast<unsigned>(kTasks));
  EXPECT_GE(snap[0].self_wall_seconds, 0.0);
  EXPECT_GE(snap[0].wall_seconds, snap[1].wall_seconds);
}

TEST(Profiler, ConcurrentStageRegistrationYieldsOneIdPerName) {
  obs::Profiler profiler;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<obs::Profiler::StageId> ids(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { ids[t] = profiler.stage("test/contended"); });
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
  EXPECT_EQ(profiler.snapshot().size(), 1u);
}

TEST(Profiler, RegistryAggregationMatchesSnapshot) {
  obs::Profiler profiler;
  const auto id = profiler.stage("test/agg");
  profiler.set_enabled(true);
  for (int rep = 0; rep < 3; ++rep) {
    obs::ProfileScope scope(id, profiler);
    spin_for(std::chrono::microseconds(200));
  }
  const auto snap = profiler.snapshot()[0];
  auto& calls = profiler.registry().counter("rsse_profile_stage_calls_total",
                                            "", {{"stage", "test/agg"}});
  EXPECT_EQ(calls.value(), 3u);
  EXPECT_EQ(snap.calls, 3u);
  // The histogram observed the same number of frames.
  const std::string text = profiler.registry().render_prometheus();
  EXPECT_NE(text.find("rsse_profile_stage_seconds"), std::string::npos);
  // The human report mentions the stage once it has run.
  EXPECT_NE(profiler.report().find("test/agg"), std::string::npos);
}

TEST(Profiler, ResetZeroesInstrumentsButKeepsStages) {
  obs::Profiler profiler;
  const auto id = profiler.stage("test/reset");
  profiler.set_enabled(true);
  { obs::ProfileScope scope(id, profiler); }
  ASSERT_EQ(profiler.snapshot()[0].calls, 1u);
  profiler.reset();
  const auto snap = profiler.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].calls, 0u);
  EXPECT_EQ(profiler.stage("test/reset"), id);
}

TEST(Profiler, GlobalIsASingleton) {
  EXPECT_EQ(&obs::Profiler::global(), &obs::Profiler::global());
}

TEST(Profiler, BuildInfoGaugeRenders) {
  obs::MetricsRegistry registry;
  obs::register_build_info(registry);
  obs::register_build_info(registry);  // idempotent
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("rsse_build_info"), std::string::npos);
  EXPECT_NE(text.find("version="), std::string::npos);
  EXPECT_NE(text.find("} 1"), std::string::npos);
}

// ----------------------------------------------------------- cost counters

TEST(CostCounters, SnapshotDeltaAndReset) {
  const auto before = obs::cost::snapshot();
  obs::cost::add(obs::cost::hgd_samples);
  obs::cost::add(obs::cost::bytes_encrypted, 100);
  const auto after = obs::cost::snapshot();
  const auto d = obs::cost::delta(before, after);
  EXPECT_EQ(d.hgd_samples, 1u);
  EXPECT_EQ(d.bytes_encrypted, 100u);
  EXPECT_EQ(d.opm_mappings, 0u);
}

TEST(CostCounters, BuildIndexCostsAreAccounted) {
  ir::CorpusGenOptions opts;
  opts.num_documents = 30;
  opts.vocabulary_size = 200;
  opts.min_tokens = 40;
  opts.max_tokens = 120;
  opts.injected.push_back(ir::InjectedKeyword{"network", 20, 0.3, 30});
  opts.seed = 11;
  const ir::Corpus corpus = ir::generate_corpus(opts);
  const sse::RsseScheme scheme(sse::keygen());
  const auto before = obs::cost::snapshot();
  const auto built = scheme.build_index(corpus);
  const auto cost = obs::cost::delta(before, obs::cost::snapshot());
  // Every genuine posting gets one OPM draw and one entry encryption
  // (padding entries are random fillers, not encryptions).
  EXPECT_GE(cost.opm_mappings, built.stats.num_postings);
  EXPECT_GE(cost.entries_encrypted, built.stats.num_postings);
  EXPECT_GT(cost.hmac_invocations, 0u);
  EXPECT_GT(cost.hgd_samples, 0u);
  EXPECT_GT(cost.bytes_encrypted, 0u);
}

// ----------------------------------------------------------- leakage audit

class LeakageAuditTest : public ::testing::Test {
 protected:
  static ir::CorpusGenOptions corpus_options() {
    ir::CorpusGenOptions opts;
    opts.num_documents = 50;
    opts.vocabulary_size = 300;
    opts.min_tokens = 50;
    opts.max_tokens = 200;
    opts.injected.push_back(ir::InjectedKeyword{"network", 30, 0.3, 40});
    opts.seed = 7;
    return opts;
  }
};

TEST_F(LeakageAuditTest, NoCiphertextDuplicatesAtPaperRange) {
  // Fig. 6 / Sec. IV-C: with |R| = 2^46 the per-key one-to-many OPM is
  // injective in practice — the audit must count zero duplicates.
  const ir::Corpus corpus = ir::generate_corpus(corpus_options());
  const sse::RsseScheme scheme(sse::keygen());
  const auto built = scheme.build_index(corpus);
  const auto& audit = built.audit;
  EXPECT_GT(audit.num_rows, 0u);
  EXPECT_GT(audit.genuine_postings, 0u);
  EXPECT_EQ(audit.opm_ciphertext_duplicates, 0u);
  EXPECT_EQ(audit.widest_row_opm_max_duplicates, 1u);
  // Injective mapping ⇒ OPM min-entropy is log2 of the row size.
  EXPECT_NEAR(audit.opm_min_entropy_bits(),
              std::log2(static_cast<double>(audit.widest_row_postings)), 1e-9);
}

TEST_F(LeakageAuditTest, ForcedSmallRangeProducesDuplicates) {
  // Pigeonhole inverse of the claim above: squeeze the ciphertext range
  // to 2^8 = 256 buckets (>= M = 128, so params validate) and give one
  // keyword enough postings that collisions are unavoidable; the audit
  // must see them.
  auto opts = corpus_options();
  opts.num_documents = 400;
  opts.injected[0].document_count = 400;
  const ir::Corpus corpus = ir::generate_corpus(opts);
  sse::SystemParams params;
  params.range_bits = 8;
  const sse::RsseScheme scheme(sse::keygen(params));
  const auto built = scheme.build_index(corpus);
  EXPECT_GT(built.audit.opm_ciphertext_duplicates, 0u);
  EXPECT_GT(built.audit.widest_row_opm_max_duplicates, 1u);
  EXPECT_LT(built.audit.opm_min_entropy_bits(),
            std::log2(static_cast<double>(built.audit.widest_row_postings)));
}

TEST_F(LeakageAuditTest, LevelStatsMatchRecomputationWithQuantizer) {
  // The audit's widest-row level statistics must equal what a direct
  // recount with the returned quantizer over the plaintext index gives.
  const ir::Corpus corpus = ir::generate_corpus(corpus_options());
  const sse::RsseScheme scheme(sse::keygen());
  const auto built = scheme.build_index(corpus);
  const auto inverted = ir::InvertedIndex::build(corpus, scheme.analyzer());

  // Recount per-row level multiplicities with the returned quantizer.
  // Rows can tie for widest (the audit keeps whichever it met first), so
  // check membership in the recomputed candidate set rather than pinning
  // one row.
  std::size_t widest = 0;
  std::uint64_t total_postings = 0;
  std::vector<std::uint64_t> level_max_at_widest;
  for (const std::string& word : inverted.terms()) {
    const auto* postings = inverted.postings(word);
    total_postings += postings->size();
    if (postings->size() < widest) continue;
    std::map<std::uint64_t, std::uint64_t> level_counts;
    for (const auto& p : *postings) {
      const double s = ir::score_single_keyword(p.tf, inverted.doc_length(p.file));
      ++level_counts[built.quantizer.quantize(s)];
    }
    std::uint64_t level_max = 0;
    for (const auto& [level, count] : level_counts)
      level_max = std::max(level_max, count);
    if (postings->size() > widest) {
      widest = postings->size();
      level_max_at_widest.clear();
    }
    level_max_at_widest.push_back(level_max);
  }
  EXPECT_EQ(built.audit.num_rows, inverted.num_terms());
  EXPECT_EQ(built.audit.genuine_postings, total_postings);
  EXPECT_EQ(built.audit.widest_row_postings, widest);
  EXPECT_NE(std::find(level_max_at_widest.begin(), level_max_at_widest.end(),
                      built.audit.widest_row_level_max_duplicates),
            level_max_at_widest.end());
  EXPECT_NEAR(
      built.audit.level_min_entropy_bits(),
      -std::log2(static_cast<double>(built.audit.widest_row_level_max_duplicates) /
                 static_cast<double>(built.audit.widest_row_postings)),
      1e-9);
}

TEST_F(LeakageAuditTest, FullNuPaddingHasZeroWidthEntropy) {
  // kFullNu pads every row to the same width: the stored width
  // distribution is a point mass, so its Shannon entropy is exactly 0 —
  // widths reveal nothing (the padding countermeasure of Sec. IV-B).
  const ir::Corpus corpus = ir::generate_corpus(corpus_options());
  const sse::RsseScheme scheme(sse::keygen());
  const auto built = scheme.build_index(corpus);
  EXPECT_EQ(built.audit.stored_width_entropy_bits, 0.0);
}

TEST_F(LeakageAuditTest, SerializeRoundTrips) {
  const ir::Corpus corpus = ir::generate_corpus(corpus_options());
  const sse::RsseScheme scheme(sse::keygen());
  const auto built = scheme.build_index(corpus);
  const sse::LeakageAudit decoded =
      sse::LeakageAudit::deserialize(built.audit.serialize());
  EXPECT_EQ(decoded, built.audit);
}

TEST_F(LeakageAuditTest, PersistsNextToADeployment) {
  const ir::Corpus corpus = ir::generate_corpus(corpus_options());
  const sse::RsseScheme scheme(sse::keygen());
  const auto built = scheme.build_index(corpus);
  const std::string dir =
      (fs::temp_directory_path() / "rsse_audit_test").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  EXPECT_FALSE(store::load_leakage_audit(dir).has_value());
  store::save_leakage_audit(built.audit, dir);
  const auto loaded = store::load_leakage_audit(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, built.audit);
  fs::remove_all(dir);
}

TEST_F(LeakageAuditTest, ExportsLiveGauges) {
  const ir::Corpus corpus = ir::generate_corpus(corpus_options());
  const sse::RsseScheme scheme(sse::keygen());
  const auto built = scheme.build_index(corpus);
  obs::MetricsRegistry registry;
  analysis::export_leakage_gauges(built.audit, registry);
  analysis::export_leakage_gauges(built.audit, registry);  // idempotent
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("rsse_opm_ciphertext_duplicates 0"), std::string::npos);
  EXPECT_NE(text.find("rsse_leakage_audited_postings"), std::string::npos);
  EXPECT_NE(text.find("rsse_leakage_width_entropy_bits"), std::string::npos);
  EXPECT_NE(text.find("rsse_leakage_level_min_entropy_bits"), std::string::npos);
  EXPECT_NE(text.find("rsse_leakage_opm_min_entropy_bits"), std::string::npos);
}

}  // namespace
}  // namespace rsse
