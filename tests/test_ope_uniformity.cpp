// Distributional validation of the whole OPE construction.
//
// BCLO's security target is a *pseudo-random order-preserving function*:
// over a random key, Enc should be distributed like a uniformly random
// choice of M out of N range values. For tiny geometries the function
// space is enumerable, so we can test the construction end-to-end — the
// keyed binary search, TapeGen, and the hypergeometric sampler together
// — with a chi-square against the uniform distribution over all C(N, M)
// order-preserving functions. A bias in any component (e.g. a skewed HGD
// or a broken coin tape) shows up here.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "opse/bclo_opse.h"

namespace rsse::opse {
namespace {

// Encrypts the whole domain under one key: the sampled function.
std::vector<std::uint64_t> function_of_key(std::uint64_t key_index,
                                           const OpeParams& params) {
  Bytes key = to_bytes("uniformity-");
  append_u64(key, key_index);
  const BcloOpse cipher(key, params);
  std::vector<std::uint64_t> f;
  for (std::uint64_t m = 1; m <= params.domain_size; ++m) f.push_back(cipher.encrypt(m));
  return f;
}

// n choose k for tiny arguments.
std::uint64_t choose(std::uint64_t n, std::uint64_t k) {
  std::uint64_t result = 1;
  for (std::uint64_t i = 0; i < k; ++i) result = result * (n - i) / (i + 1);
  return result;
}

struct Geometry {
  std::uint64_t domain;
  std::uint64_t range;
};

class OpeUniformity : public ::testing::TestWithParam<Geometry> {};

TEST_P(OpeUniformity, FunctionsAreCloseToUniformOverKeys) {
  const auto [domain, range] = GetParam();
  const OpeParams params{domain, range};
  const std::uint64_t num_functions = choose(range, domain);
  // ~200 expected samples per cell keeps the chi-square well-behaved.
  const std::uint64_t trials = num_functions * 200;

  std::map<std::vector<std::uint64_t>, std::uint64_t> counts;
  for (std::uint64_t t = 0; t < trials; ++t) ++counts[function_of_key(t, params)];

  // Every observed function must be order preserving and in range.
  for (const auto& [f, count] : counts) {
    for (std::size_t i = 0; i < f.size(); ++i) {
      ASSERT_GE(f[i], 1u);
      ASSERT_LE(f[i], range);
      if (i > 0) ASSERT_GT(f[i], f[i - 1]);
    }
  }
  // Every possible function must be reachable.
  EXPECT_EQ(counts.size(), num_functions);

  // Chi-square against uniform.
  const double expected = static_cast<double>(trials) / static_cast<double>(num_functions);
  double chi2 = 0.0;
  for (const auto& [f, count] : counts) {
    const double diff = static_cast<double>(count) - expected;
    chi2 += diff * diff / expected;
  }
  // Degrees of freedom = num_functions - 1; a generous 99.9th percentile
  // bound ~ df + 4*sqrt(2*df) keeps the test deterministic-fail-free
  // while still catching any real bias (a skewed HGD shifts chi2 by
  // orders of magnitude).
  const double df = static_cast<double>(num_functions - 1);
  const double bound = df + 4.0 * std::sqrt(2.0 * df) + 4.0;
  EXPECT_LT(chi2, bound) << "functions=" << num_functions << " trials=" << trials;
}

INSTANTIATE_TEST_SUITE_P(TinyGeometries, OpeUniformity,
                         ::testing::Values(Geometry{1, 4},   // C=4
                                           Geometry{2, 4},   // C=6
                                           Geometry{2, 5},   // C=10
                                           Geometry{3, 6},   // C=20
                                           Geometry{2, 8})); // C=28

}  // namespace
}  // namespace rsse::opse
