// KeyGen and system parameters: freshness, sizes, validation, and the
// serialization round trip.
#include <gtest/gtest.h>

#include "sse/keys.h"
#include "util/errors.h"

namespace rsse::sse {
namespace {

TEST(SystemParams, DefaultsAreThePapersSetup) {
  const SystemParams p;
  EXPECT_EQ(p.score_levels, 128u);   // Fig. 4's 128 levels
  EXPECT_EQ(p.range_bits, 46u);      // Sec. IV-C's |R| = 2^46
  EXPECT_NO_THROW(p.validate());
}

TEST(SystemParams, ValidationCatchesBadCombos) {
  SystemParams p;
  p.key_bits = 100;  // not a byte multiple
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = SystemParams{};
  p.p_bits = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = SystemParams{};
  p.score_levels = 1;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = SystemParams{};
  p.range_bits = 63;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = SystemParams{};
  p.score_levels = 1ull << 20;
  p.range_bits = 10;  // domain exceeds range
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(KeyGen, ProducesFreshKeysOfTheRightSize) {
  const MasterKey a = keygen();
  const MasterKey b = keygen();
  EXPECT_EQ(a.x.size(), 32u);
  EXPECT_EQ(a.y.size(), 32u);
  EXPECT_EQ(a.z.size(), 32u);
  EXPECT_NE(a.x, b.x);
  EXPECT_NE(a.y, b.y);
  EXPECT_NE(a.z, b.z);
  EXPECT_NE(a.x, a.y);  // components independent
}

TEST(KeyGen, HonorsKeyBits) {
  SystemParams p;
  p.key_bits = 128;
  const MasterKey k = keygen(p);
  EXPECT_EQ(k.x.size(), 16u);
}

TEST(MasterKey, SerializeRoundTrip) {
  const MasterKey k = keygen();
  const MasterKey restored = MasterKey::deserialize(k.serialize());
  EXPECT_EQ(restored, k);
}

TEST(MasterKey, DeserializeRejectsCorruption) {
  Bytes blob = keygen().serialize();
  blob.resize(blob.size() - 1);
  EXPECT_THROW(MasterKey::deserialize(blob), ParseError);
  blob = keygen().serialize();
  blob.push_back(0);
  EXPECT_THROW(MasterKey::deserialize(blob), ParseError);
}

TEST(MasterKey, DeserializeRejectsInvalidParams) {
  MasterKey k = keygen();
  k.params.score_levels = 0;  // invalid, bypassing validate()
  EXPECT_THROW(MasterKey::deserialize(k.serialize()), ParseError);
}

}  // namespace
}  // namespace rsse::sse
