// Disjunctive (OR) ranked search: union semantics, both ranking modes,
// matched-keyword counting, degenerate single-keyword case, and top-k.
#include <gtest/gtest.h>

#include <set>

#include "ext/disjunctive.h"
#include "ir/corpus_gen.h"
#include "ir/inverted_index.h"
#include "sse/keys.h"
#include "util/errors.h"

namespace rsse::ext {
namespace {

class DisjunctiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 50;
    opts.vocabulary_size = 300;
    opts.min_tokens = 60;
    opts.max_tokens = 250;
    opts.injected.push_back(ir::InjectedKeyword{"network", 30, 0.3, 40});
    opts.injected.push_back(ir::InjectedKeyword{"protocol", 25, 0.4, 30});
    opts.seed = 71;
    corpus_ = ir::generate_corpus(opts);
    key_ = sse::keygen();
    scheme_ = std::make_unique<sse::RsseScheme>(key_);
    built_ = std::make_unique<sse::RsseScheme::BuildResult>(scheme_->build_index(corpus_));
    inverted_ = ir::InvertedIndex::build(corpus_, scheme_->analyzer());
    generator_ = std::make_unique<sse::TrapdoorGenerator>(key_.x, key_.y,
                                                          key_.params.p_bits);
  }

  std::set<std::uint64_t> true_union() const {
    std::set<std::uint64_t> ids;
    for (const char* term : {"network", "protocol"})
      for (const auto& p : *inverted_.postings(term)) ids.insert(ir::value(p.file));
    return ids;
  }

  ir::Corpus corpus_;
  sse::MasterKey key_;
  std::unique_ptr<sse::RsseScheme> scheme_;
  std::unique_ptr<sse::RsseScheme::BuildResult> built_;
  ir::InvertedIndex inverted_;
  std::unique_ptr<sse::TrapdoorGenerator> generator_;
};

TEST_F(DisjunctiveTest, ReturnsExactlyTheUnion) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network", "protocol"});
  const auto hits = DisjunctiveRsse::search(built_->index, t);
  std::set<std::uint64_t> got;
  for (const auto& h : hits) got.insert(ir::value(h.file));
  EXPECT_EQ(got, true_union());
}

TEST_F(DisjunctiveTest, MatchedKeywordCountsAreRight) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network", "protocol"});
  const auto hits = DisjunctiveRsse::search(built_->index, t);
  std::set<std::uint64_t> net;
  for (const auto& p : *inverted_.postings("network")) net.insert(ir::value(p.file));
  std::set<std::uint64_t> proto;
  for (const auto& p : *inverted_.postings("protocol")) proto.insert(ir::value(p.file));
  for (const auto& h : hits) {
    const std::uint32_t expected =
        (net.contains(ir::value(h.file)) ? 1u : 0u) +
        (proto.contains(ir::value(h.file)) ? 1u : 0u);
    EXPECT_EQ(h.matched_keywords, expected);
  }
}

TEST_F(DisjunctiveTest, BothRankingsDescendAndAgreeOnMembership) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network", "protocol"});
  const auto max_hits =
      DisjunctiveRsse::search(built_->index, t, 0, DisjunctiveRanking::kMaxOpm);
  const auto sum_hits =
      DisjunctiveRsse::search(built_->index, t, 0, DisjunctiveRanking::kSumOpm);
  ASSERT_EQ(max_hits.size(), sum_hits.size());
  for (std::size_t i = 1; i < max_hits.size(); ++i) {
    EXPECT_GE(max_hits[i - 1].aggregate_opm, max_hits[i].aggregate_opm);
    EXPECT_GE(sum_hits[i - 1].aggregate_opm, sum_hits[i].aggregate_opm);
  }
  // Sum mode biases two-keyword files upward: the top sum hit matches
  // at least as many keywords as the bottom one.
  EXPECT_GE(sum_hits.front().matched_keywords, sum_hits.back().matched_keywords);
}

TEST_F(DisjunctiveTest, SingleKeywordDegeneratesToOrdinarySearch) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network"});
  const auto hits = DisjunctiveRsse::search(built_->index, t);
  const auto direct = sse::RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  ASSERT_EQ(hits.size(), direct.size());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].file, direct[i].file);
    EXPECT_EQ(hits[i].aggregate_opm, direct[i].opm_score);
    EXPECT_EQ(hits[i].matched_keywords, 1u);
  }
}

TEST_F(DisjunctiveTest, TopKTruncates) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network", "protocol"});
  const auto all = DisjunctiveRsse::search(built_->index, t);
  ASSERT_GT(all.size(), 3u);
  const auto top3 = DisjunctiveRsse::search(built_->index, t, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0], all[0]);
}

TEST_F(DisjunctiveTest, AbsentKeywordContributesNothing) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network", "qqqabsent"});
  const auto hits = DisjunctiveRsse::search(built_->index, t);
  std::set<std::uint64_t> net;
  for (const auto& p : *inverted_.postings("network")) net.insert(ir::value(p.file));
  EXPECT_EQ(hits.size(), net.size());
}

}  // namespace
}  // namespace rsse::ext
