// Cluster layer tests: shard-map determinism and balance (chi-squared),
// manifest round trips, scatter-gather equivalence with a single
// CloudServer across shard counts (ranked, multi-keyword, basic modes),
// cluster deployment persistence, replica failover under injected
// failures, and graceful degradation when a whole shard dies.
//
// Failover tests run on sim::SimNet endpoints (virtual time, per-endpoint
// kill switch) instead of hand-rolled killable transports, so replica
// death is deterministic and costs no wall-clock; see tests/test_sim.cpp
// for the simulator's own contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cluster/coordinator.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "ir/query_workload.h"
#include "sim/sim_net.h"
#include "store/deployment.h"
#include "util/errors.h"

namespace rsse::cluster {
namespace {

namespace fs = std::filesystem;

double chi_squared(const std::vector<std::size_t>& counts, double expected) {
  double chi = 0.0;
  for (const std::size_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi += d * d / expected;
  }
  return chi;
}

RetryPolicy fast_retry() {
  RetryPolicy policy;
  policy.base_backoff = std::chrono::milliseconds(0);
  policy.max_backoff = std::chrono::milliseconds(1);
  return policy;
}

// ---------------------------------------------------------------- ShardMap

TEST(ShardMap, DeterministicAndInRange) {
  const ShardMap a(5);
  const ShardMap b(5);
  for (int i = 0; i < 200; ++i) {
    const Bytes label = crypto::random_bytes(32);
    const std::uint32_t shard = a.shard_of_label(label);
    EXPECT_LT(shard, 5u);
    EXPECT_EQ(b.shard_of_label(label), shard);  // pure function of the label
  }
  EXPECT_EQ(a.shard_of_file(42), b.shard_of_file(42));
  EXPECT_LT(a.shard_of_file(42), 5u);
}

TEST(ShardMap, EveryByteOfTheLabelMatters) {
  // Flipping any single byte should usually move the label: over 31-byte
  // labels and 64 shards, unchanged placement for all flips would mean
  // the tail bytes are ignored (the original folding bug class).
  const ShardMap map(64);
  const Bytes label = crypto::random_bytes(31);  // odd length: tail chunk
  std::size_t moved = 0;
  for (std::size_t i = 0; i < label.size(); ++i) {
    Bytes flipped = label;
    flipped[i] ^= 0x5a;
    if (map.shard_of_label(flipped) != map.shard_of_label(label)) ++moved;
  }
  EXPECT_GT(moved, label.size() / 2);
}

TEST(ShardMap, FileIdBalanceChiSquared) {
  // Sequential ids (the common allocation pattern) must spread evenly;
  // deterministic, so a tight bound is safe. df = 7, p=0.001 crit ~24.3.
  const ShardMap map(8);
  std::vector<std::size_t> counts(8, 0);
  for (std::uint64_t id = 0; id < 10000; ++id) ++counts[map.shard_of_file(id)];
  EXPECT_LT(chi_squared(counts, 10000.0 / 8), 24.3);
}

TEST(ClusterManifest, RoundTripAndValidation) {
  ClusterManifest m;
  m.num_shards = 6;
  m.replicas = 3;
  m.total_rows = 1234;
  m.total_files = 99;
  EXPECT_EQ(ClusterManifest::deserialize(m.serialize()), m);

  Bytes wire = m.serialize();
  wire[0] = 9;  // unknown version
  EXPECT_THROW(ClusterManifest::deserialize(wire), ParseError);

  Bytes truncated = m.serialize();
  truncated.pop_back();
  EXPECT_THROW(ClusterManifest::deserialize(truncated), ParseError);

  ClusterManifest zero = m;
  zero.num_shards = 0;
  EXPECT_THROW(ClusterManifest::deserialize(zero.serialize()), ParseError);
}

// ------------------------------------------------- cluster vs one server

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 80;
    opts.vocabulary_size = 180;
    opts.min_tokens = 50;
    opts.max_tokens = 250;
    opts.injected.push_back(ir::InjectedKeyword{"alpha", 40, 0.4, 25});
    opts.injected.push_back(ir::InjectedKeyword{"bravo", 25, 0.4, 20});
    opts.seed = 41;
    corpus_ = ir::generate_corpus(opts);
    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus_, server_);

    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = cloud::AuthorizationService::open(
        user_key, "u", owner_->enroll_user(user_key, "u"));
  }

  // A handful of real vocabulary keywords, Zipf-sampled like live traffic.
  std::vector<std::string> sample_keywords(std::size_t n) const {
    const auto inverted = ir::InvertedIndex::build(corpus_, owner_->rsse().analyzer());
    ir::QueryWorkloadOptions wl;
    wl.num_queries = 200;
    wl.zipf_exponent = 1.0;
    wl.seed = 7;
    const ir::QueryWorkload workload(inverted, wl);
    std::vector<std::string> keywords{"alpha", "bravo"};
    for (const std::string& q : workload.queries()) {
      if (std::find(keywords.begin(), keywords.end(), q) == keywords.end())
        keywords.push_back(q);
      if (keywords.size() >= n) break;
    }
    return keywords;
  }

  static std::vector<std::uint64_t> ids_of(
      const std::vector<cloud::RetrievedFile>& hits) {
    std::vector<std::uint64_t> ids;
    ids.reserve(hits.size());
    for (const auto& hit : hits) ids.push_back(ir::value(hit.document.id));
    return ids;
  }

  ir::Corpus corpus_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer server_;
  cloud::UserCredentials credentials_;
};

TEST_F(ClusterTest, LabelBalanceChiSquaredOverRealIndex) {
  // The row labels of a real index (HMAC outputs over the Zipf-shaped
  // vocabulary) must spread across shards. Thresholds are the p ~ 1e-6
  // chi-squared tails, so a run is effectively only flagged when the
  // folding is broken, not by sampling noise.
  const auto& labels = server_.index().labels();
  ASSERT_GT(labels.size(), 100u);
  for (const auto& [shards, crit] : std::vector<std::pair<std::uint32_t, double>>{
           {4, 33.4}, {8, 47.0}}) {
    const ShardMap map(shards);
    std::vector<std::size_t> counts(shards, 0);
    for (const Bytes& label : labels) ++counts[map.shard_of_label(label)];
    EXPECT_LT(chi_squared(counts, static_cast<double>(labels.size()) / shards), crit)
        << "imbalanced at " << shards << " shards";
  }
}

TEST_F(ClusterTest, SplitPartitionsIndexAndFiles) {
  const ShardMap map(4);
  const auto indexes = map.split_index(server_.index());
  std::size_t rows = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    rows += indexes[s].num_rows();
    for (const Bytes& label : indexes[s].labels())
      EXPECT_EQ(map.shard_of_label(label), s);  // row landed on its shard
  }
  EXPECT_EQ(rows, server_.index().num_rows());

  const auto file_sets = map.split_files(server_.files());
  std::size_t files = 0;
  for (const auto& set : file_sets) files += set.size();
  EXPECT_EQ(files, server_.files().size());
}

TEST_F(ClusterTest, RankedSearchMatchesSingleServerAcrossShardCounts) {
  cloud::Channel direct(server_);
  cloud::DataUser baseline(credentials_, direct);
  const auto keywords = sample_keywords(12);

  for (const std::uint32_t shards : {1u, 2u, 3u, 5u}) {
    auto local = make_local_cluster(server_.index(), server_.files(), shards);
    cloud::DataUser user(credentials_, *local.coordinator);
    for (const std::string& keyword : keywords) {
      for (const std::size_t k : {std::size_t{7}, std::size_t{0}}) {
        const auto expected = baseline.ranked_search(keyword, k);
        const auto got = user.ranked_search(keyword, k);
        EXPECT_EQ(ids_of(got), ids_of(expected))
            << keyword << " top-" << k << " differs at " << shards << " shards";
        for (std::size_t i = 0; i < got.size(); ++i)
          EXPECT_EQ(got[i].document.text, expected[i].document.text);
      }
    }
  }
}

TEST_F(ClusterTest, MultiSearchMatchesSingleServerAcrossShardCounts) {
  cloud::Channel direct(server_);
  cloud::DataUser baseline(credentials_, direct);
  const auto keywords = sample_keywords(6);
  const std::vector<std::vector<std::string>> queries = {
      {"alpha", "bravo"},
      {keywords[2], keywords[3]},
      {"alpha", keywords[4], keywords[5]},
  };

  for (const std::uint32_t shards : {2u, 3u, 5u}) {
    auto local = make_local_cluster(server_.index(), server_.files(), shards);
    cloud::DataUser user(credentials_, *local.coordinator);
    for (const auto& query : queries) {
      for (const bool conjunctive : {true, false}) {
        for (const std::size_t k : {std::size_t{5}, std::size_t{0}}) {
          const auto expected = baseline.multi_search(query, conjunctive, k);
          const auto got = user.multi_search(query, conjunctive, k);
          EXPECT_EQ(ids_of(got), ids_of(expected))
              << (conjunctive ? "AND" : "OR") << " top-" << k << " differs at "
              << shards << " shards";
        }
      }
    }
  }
}

TEST_F(ClusterTest, BasicModesMatchSingleServerAcrossShardCounts) {
  // The Basic Scheme uses its own index; the shard map splits it the same
  // way (rows are keyed by the same kind of PRF label).
  cloud::CloudServer basic_server;
  owner_->outsource_basic(corpus_, basic_server);
  cloud::Channel direct(basic_server);
  cloud::DataUser baseline(credentials_, direct);

  for (const std::uint32_t shards : {2u, 3u, 5u}) {
    auto local = make_local_cluster(basic_server.index(), basic_server.files(), shards);
    cloud::DataUser user(credentials_, *local.coordinator);
    for (const std::string keyword : {"alpha", "bravo"}) {
      const auto one_expected = baseline.basic_search_one_round(keyword, 5);
      const auto one_got = user.basic_search_one_round(keyword, 5);
      EXPECT_EQ(ids_of(one_got), ids_of(one_expected));
      const auto two_expected = baseline.basic_search_two_round(keyword, 5);
      const auto two_got = user.basic_search_two_round(keyword, 5);
      EXPECT_EQ(ids_of(two_got), ids_of(two_expected));
    }
  }
}

TEST_F(ClusterTest, ClusterDeploymentRoundTrip) {
  const fs::path dir = fs::temp_directory_path() / "rsse_test_cluster_dep";
  fs::remove_all(dir);

  store::save_cluster_deployment(server_, 3, dir.string());
  EXPECT_TRUE(store::is_cluster_deployment(dir.string()));

  const ClusterManifest manifest = store::load_cluster_manifest(dir.string());
  EXPECT_EQ(manifest.num_shards, 3u);
  EXPECT_EQ(manifest.total_rows, server_.index().num_rows());
  EXPECT_EQ(manifest.total_files, server_.num_files());

  // Reload every shard and verify the reassembled cluster answers exactly
  // like the original server.
  std::vector<std::unique_ptr<cloud::CloudServer>> servers;
  std::vector<std::unique_ptr<ReplicaSet>> sets;
  for (std::uint32_t s = 0; s < 3; ++s) {
    servers.push_back(std::make_unique<cloud::CloudServer>());
    store::load_cluster_shard(dir.string(), s, *servers.back());
    sets.push_back(std::make_unique<ReplicaSet>());
    sets.back()->add_replica(std::make_unique<cloud::Channel>(*servers.back()));
  }
  ClusterCoordinator coordinator(manifest, std::move(sets));
  cloud::DataUser user(credentials_, coordinator);
  cloud::Channel direct(server_);
  cloud::DataUser baseline(credentials_, direct);
  for (const std::string keyword : {"alpha", "bravo"})
    EXPECT_EQ(ids_of(user.ranked_search(keyword, 6)),
              ids_of(baseline.ranked_search(keyword, 6)));

  // A plain single-server deployment is not mistaken for a cluster one.
  const fs::path single = fs::temp_directory_path() / "rsse_test_single_dep";
  fs::remove_all(single);
  store::save_deployment(server_, single.string());
  EXPECT_FALSE(store::is_cluster_deployment(single.string()));

  fs::remove_all(dir);
  fs::remove_all(single);
}

// ----------------------------------------------------- failover / degrade

TEST_F(ClusterTest, ReplicaSetFailsOverToHealthySibling) {
  sim::SimNet net;
  auto flaky = net.connect(server_);
  auto* flaky_raw = flaky.get();
  flaky_raw->set_down(true);

  ReplicaSet set;
  set.add_replica(std::move(flaky));
  set.add_replica(net.connect(server_));

  const Bytes ping = cloud::FetchFilesRequest{}.serialize();
  const Bytes response =
      set.call(cloud::MessageType::kFetchFiles, ping, fast_retry());
  EXPECT_FALSE(response.empty());
  EXPECT_GE(set.failovers(), 1u);
  EXPECT_GE(set.failed_attempts(), 1u);
  EXPECT_EQ(set.healthy_replicas(), 1u);  // the dead one is in cooldown

  // Subsequent calls prefer the live replica: the dead one sees no more
  // traffic while cooling down.
  const std::uint64_t calls_before = flaky_raw->calls_seen();
  for (int i = 0; i < 5; ++i)
    (void)set.call(cloud::MessageType::kFetchFiles, ping, fast_retry());
  EXPECT_EQ(flaky_raw->calls_seen(), calls_before);
}

TEST_F(ClusterTest, AllReplicasDownThrows) {
  sim::SimNet net;
  auto a = net.connect(server_);
  auto b = net.connect(server_);
  a->set_down(true);
  b->set_down(true);
  ReplicaSet set;
  set.add_replica(std::move(a));
  set.add_replica(std::move(b));
  EXPECT_THROW(set.call(cloud::MessageType::kFetchFiles,
                        cloud::FetchFilesRequest{}.serialize(), fast_retry()),
               Error);
  EXPECT_EQ(set.healthy_replicas(), 0u);
}

TEST_F(ClusterTest, ReplicaKilledMidWorkloadZeroClientVisibleErrors) {
  // Two shards, two replicas each; replica 0 of every shard dies midway.
  constexpr std::uint32_t kShards = 2;
  const ShardMap map(kShards);
  auto indexes = map.split_index(server_.index());
  auto file_sets = map.split_files(server_.files());

  sim::SimNet net;
  std::vector<std::unique_ptr<cloud::CloudServer>> servers;
  std::vector<std::unique_ptr<ReplicaSet>> sets;
  std::vector<sim::SimTransport*> primaries;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    servers.push_back(std::make_unique<cloud::CloudServer>());
    servers.back()->store(std::move(indexes[s]), std::move(file_sets[s]));
    auto primary = net.connect(*servers.back());
    primaries.push_back(primary.get());
    sets.push_back(std::make_unique<ReplicaSet>());
    sets.back()->add_replica(std::move(primary));
    sets.back()->add_replica(net.connect(*servers.back()));
  }
  ClusterManifest manifest;
  manifest.num_shards = kShards;
  manifest.replicas = 2;
  manifest.total_rows = server_.index().num_rows();
  manifest.total_files = server_.num_files();
  CoordinatorOptions options;
  options.retry = fast_retry();
  ClusterCoordinator coordinator(manifest, std::move(sets), options);

  cloud::DataUser user(credentials_, coordinator);
  cloud::Channel direct(server_);
  cloud::DataUser baseline(credentials_, direct);
  const auto keywords = sample_keywords(8);

  for (int round = 0; round < 3; ++round) {
    if (round == 1)
      for (sim::SimTransport* primary : primaries) primary->set_down(true);
    for (const std::string& keyword : keywords) {
      const auto got = user.ranked_search(keyword, 5);          // must not throw
      EXPECT_EQ(ids_of(got), ids_of(baseline.ranked_search(keyword, 5)));
    }
  }
  std::uint64_t failovers = 0;
  for (std::uint32_t s = 0; s < kShards; ++s)
    failovers += coordinator.shard(s).failovers();
  EXPECT_GE(failovers, 1u);

  const auto metrics = coordinator.metrics();
  EXPECT_EQ(metrics.partial_responses, 0u);  // degraded never, failed over
  for (const auto& shard : metrics.shards) EXPECT_GT(shard.requests, 0u);
}

TEST_F(ClusterTest, MultiSearchDegradesToPartialWhenWholeShardDies) {
  constexpr std::uint32_t kShards = 3;
  const ShardMap map(kShards);

  // Two keywords owned by different shards (guaranteed to exist: "alpha"
  // plus any keyword hashing elsewhere).
  const auto keywords = sample_keywords(20);
  const std::uint32_t alpha_shard =
      map.shard_of_label(owner_->rsse().row_label("alpha"));
  std::string other;
  std::uint32_t other_shard = alpha_shard;
  for (const std::string& keyword : keywords) {
    other_shard = map.shard_of_label(owner_->rsse().row_label(keyword));
    if (other_shard != alpha_shard) {
      other = keyword;
      break;
    }
  }
  ASSERT_NE(other_shard, alpha_shard) << "no keyword off alpha's shard";

  auto indexes = map.split_index(server_.index());
  auto file_sets = map.split_files(server_.files());
  sim::SimNet net;
  std::vector<std::unique_ptr<cloud::CloudServer>> servers;
  std::vector<std::unique_ptr<ReplicaSet>> sets;
  std::vector<sim::SimTransport*> transports;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    servers.push_back(std::make_unique<cloud::CloudServer>());
    servers.back()->store(std::move(indexes[s]), std::move(file_sets[s]));
    auto transport = net.connect(*servers.back());
    transports.push_back(transport.get());
    sets.push_back(std::make_unique<ReplicaSet>());
    sets.back()->add_replica(std::move(transport));
  }
  ClusterManifest manifest;
  manifest.num_shards = kShards;
  manifest.total_rows = server_.index().num_rows();
  manifest.total_files = server_.num_files();
  CoordinatorOptions options;
  options.retry = fast_retry();
  options.retry.max_attempts = 1;
  ClusterCoordinator coordinator(manifest, std::move(sets), options);

  // Kill the shard owning `other`; a disjunctive query over both keywords
  // still answers from alpha's (live) shard, flagged partial.
  transports[other_shard]->set_down(true);
  cloud::MultiSearchRequest request;
  request.trapdoor.trapdoors = {
      sse::Trapdoor{owner_->rsse().row_label("alpha"), owner_->rsse().row_key("alpha")},
      sse::Trapdoor{owner_->rsse().row_label(other), owner_->rsse().row_key(other)}};
  request.mode = cloud::MultiSearchMode::kDisjunctive;
  request.top_k = 5;
  const auto response = cloud::RankedSearchResponse::deserialize(
      coordinator.call(cloud::MessageType::kMultiSearch, request.serialize()));
  EXPECT_TRUE(response.partial);
  EXPECT_FALSE(response.files.empty());  // alpha's hits still came back
  EXPECT_GE(coordinator.metrics().partial_responses, 1u);

  // A single-keyword query routed at the dead shard has no sound
  // fallback: the error surfaces and is counted.
  const cloud::RankedSearchRequest direct_hit{
      sse::Trapdoor{owner_->rsse().row_label(other), owner_->rsse().row_key(other)}, 3};
  EXPECT_THROW(
      coordinator.call(cloud::MessageType::kRankedSearch, direct_hit.serialize()),
      Error);
  EXPECT_GT(coordinator.metrics().shards[other_shard].errors, 0u);

  // Every shard back up: the same query now merges fully.
  transports[other_shard]->set_down(false);
  const auto healed = cloud::RankedSearchResponse::deserialize(
      coordinator.call(cloud::MessageType::kMultiSearch, request.serialize()));
  EXPECT_FALSE(healed.partial);
}

TEST_F(ClusterTest, PerShardLatencyMetricsRecorded) {
  auto local = make_local_cluster(server_.index(), server_.files(), 3);
  cloud::DataUser user(credentials_, *local.coordinator);
  for (const std::string keyword : {"alpha", "bravo"})
    (void)user.ranked_search(keyword, 5);

  const auto metrics = local.coordinator->metrics();
  std::uint64_t requests = 0;
  for (const auto& shard : metrics.shards) {
    requests += shard.requests;
    if (shard.latency.count > 0) {
      EXPECT_GT(shard.latency.p50_seconds, 0.0);
      EXPECT_LE(shard.latency.p50_seconds, shard.latency.p99_seconds);
    }
  }
  EXPECT_GE(requests, 2u);
}

}  // namespace
}  // namespace rsse::cluster
