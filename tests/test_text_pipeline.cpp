// Tokenizer, stop words, and the analyzer pipeline (stemmer has its own
// dedicated vector suite in test_stemmer.cpp).
#include <gtest/gtest.h>

#include "ir/analyzer.h"
#include "ir/stopwords.h"
#include "ir/tokenizer.h"

namespace rsse::ir {
namespace {

TEST(Tokenizer, SplitsAndLowercases) {
  const auto tokens = tokenize("Hello, World! TCP/IP  rocks");
  EXPECT_EQ(tokens, (std::vector<std::string>{"hello", "world", "tcp", "ip", "rocks"}));
}

TEST(Tokenizer, DropsShortAndNumericTokensByDefault) {
  const auto tokens = tokenize("a I 42 ok go node99 1990");
  // "a"/"I" too short; "42"/"1990" all digits; "ok"/"go" pass (len 2);
  // "node99" is alphanumeric, kept.
  EXPECT_EQ(tokens, (std::vector<std::string>{"ok", "go", "node99"}));
}

TEST(Tokenizer, OptionsControlFiltering) {
  TokenizerOptions opts;
  opts.min_length = 1;
  opts.keep_numbers = true;
  const auto tokens = tokenize("a 42", opts);
  EXPECT_EQ(tokens, (std::vector<std::string>{"a", "42"}));

  TokenizerOptions strict;
  strict.max_length = 4;
  const auto capped = tokenize("tiny enormousword", strict);
  EXPECT_EQ(capped, (std::vector<std::string>{"tiny"}));
}

TEST(Tokenizer, NonAsciiBytesActAsSeparators) {
  const std::string text = "caf\xc3\xa9 net";  // UTF-8 é splits the token
  const auto tokens = tokenize(text);
  EXPECT_EQ(tokens, (std::vector<std::string>{"caf", "net"}));
}

TEST(Tokenizer, EmptyAndSeparatorOnlyInput) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("... --- !!!").empty());
}

TEST(Helpers, LowercaseAndDigits) {
  std::string s = "MiXeD123";
  ascii_lowercase(s);
  EXPECT_EQ(s, "mixed123");
  EXPECT_TRUE(is_all_digits("0123"));
  EXPECT_FALSE(is_all_digits("12a"));
  EXPECT_FALSE(is_all_digits(""));
}

TEST(Stopwords, CommonWordsAreStopped) {
  for (const char* w : {"the", "and", "of", "is", "with", "their"})
    EXPECT_TRUE(is_stopword(w)) << w;
  for (const char* w : {"network", "protocol", "cloud", "ranked"})
    EXPECT_FALSE(is_stopword(w)) << w;
  EXPECT_GT(stopword_count(), 100u);
}

TEST(Analyzer, FullPipeline) {
  const Analyzer analyzer;
  const auto terms = analyzer.analyze("The networked networks are networking!");
  // stop word "the"/"are" removed; remaining stem to "network".
  EXPECT_EQ(terms, (std::vector<std::string>{"network", "network", "network"}));
}

TEST(Analyzer, OptionsDisableStages) {
  AnalyzerOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  const Analyzer analyzer(opts);
  const auto terms = analyzer.analyze("The networks");
  EXPECT_EQ(terms, (std::vector<std::string>{"the", "networks"}));
}

TEST(Analyzer, NormalizeKeywordMatchesDocumentAnalysis) {
  const Analyzer analyzer;
  // The user types any inflected form; it must normalize to the indexed
  // term so trapdoors hit the right row.
  EXPECT_EQ(analyzer.normalize_keyword("Networking"), "network");
  EXPECT_EQ(analyzer.normalize_keyword("networks"), "network");
  EXPECT_EQ(analyzer.normalize_keyword("NETWORK"), "network");
}

TEST(Analyzer, NormalizeKeywordRejectsNonKeywords) {
  const Analyzer analyzer;
  EXPECT_EQ(analyzer.normalize_keyword("the"), "");     // stop word
  EXPECT_EQ(analyzer.normalize_keyword("!!!"), "");     // no token
  EXPECT_EQ(analyzer.normalize_keyword("two words"), "");  // not single
}

}  // namespace
}  // namespace rsse::ir
