// Trace propagation under faults, and wire compatibility of the trace
// extension: failover/retry/deadline transitions must surface as span
// events with monotonic timestamps, traced frames must round-trip their
// context, untraced frames must stay byte-identical to the pre-extension
// format, and a trace-flagged request hitting an old server must
// downgrade lazily instead of failing the query.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cluster/coordinator.h"
#include "crypto/csprng.h"
#include "fault/chaos_proxy.h"
#include "fault/fault_transport.h"
#include "ir/corpus_gen.h"
#include "net/frame.h"
#include "net/remote_channel.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/errors.h"

namespace rsse {
namespace {

using namespace std::chrono_literals;

// Shared system fixture: an outsourced corpus with a known keyword, the
// same shape test_fault.cpp uses, so chaos behaviour is comparable.
class TracedSystem : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 40;
    opts.vocabulary_size = 120;
    opts.min_tokens = 40;
    opts.max_tokens = 120;
    opts.injected.push_back(ir::InjectedKeyword{"chaos", 25, 0.4, 20});
    opts.seed = 77;
    corpus_ = ir::generate_corpus(opts);
    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus_, server_);

    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = cloud::AuthorizationService::open(
        user_key, "u", owner_->enroll_user(user_key, "u"));
  }

  static fault::FaultSpec hang_spec() {
    fault::FaultSpec spec;
    spec.delay_rate = 1.0;
    spec.delay_min = 10s;
    spec.delay_max = 10s;
    return spec;
  }

  static fault::FaultSpec disconnect_spec() {
    fault::FaultSpec spec;
    spec.disconnect_rate = 1.0;
    return spec;
  }

  static cluster::RetryPolicy chaos_policy() {
    cluster::RetryPolicy policy;
    policy.base_backoff = std::chrono::milliseconds(0);
    policy.max_backoff = std::chrono::milliseconds(1);
    policy.attempt_timeout = std::chrono::milliseconds(100);
    return policy;
  }

  Bytes ranked_request(const std::string& keyword, std::uint64_t top_k) const {
    const sse::Trapdoor trapdoor{owner_->rsse().row_label(keyword),
                                 owner_->rsse().row_key(keyword)};
    return cloud::RankedSearchRequest{trapdoor, top_k}.serialize();
  }

  ir::Corpus corpus_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer server_;
  cloud::UserCredentials credentials_;
};

class TraceChaos : public TracedSystem {};
class WireCompat : public TracedSystem {};

// Every span belongs to the trace, closes after it opens, and keeps its
// events in timestamp order within the span's window. spans() is sorted
// by start time, so the sequence itself must be monotonic too.
void expect_well_formed(const std::vector<obs::Span>& spans,
                        std::uint64_t trace_id) {
  ASSERT_FALSE(spans.empty());
  for (std::size_t i = 0; i + 1 < spans.size(); ++i)
    EXPECT_LE(spans[i].start_ns, spans[i + 1].start_ns);
  for (const obs::Span& span : spans) {
    EXPECT_EQ(span.trace_id, trace_id) << span.name;
    EXPECT_NE(span.span_id, 0u) << span.name;
    EXPECT_LE(span.start_ns, span.end_ns) << span.name;
    std::uint64_t previous = span.start_ns;
    for (const obs::SpanEvent& event : span.events) {
      EXPECT_GE(event.at_ns, previous) << span.name << " @" << event.name;
      EXPECT_LE(event.at_ns, span.end_ns) << span.name << " @" << event.name;
      previous = event.at_ns;
    }
  }
}

const obs::Span* find_span(const std::vector<obs::Span>& spans,
                           const std::string& name) {
  for (const obs::Span& span : spans)
    if (span.name == name) return &span;
  return nullptr;
}

std::vector<const obs::SpanEvent*> find_events(const std::vector<obs::Span>& spans,
                                               const std::string& name) {
  std::vector<const obs::SpanEvent*> out;
  for (const obs::Span& span : spans)
    for (const obs::SpanEvent& event : span.events)
      if (event.name == name) out.push_back(&event);
  return out;
}

// ------------------------------------------- trace propagation under faults

TEST_F(TraceChaos, FailoverAndRetryShowUpAsSpanEvents) {
  // Preferred replica refuses every call: the set must fail over to the
  // sibling, and the trace must say so — a failed attempt span, an
  // attempt_failed event, and a failover event, in that order.
  cluster::ReplicaSet set;
  set.add_replica(std::make_unique<fault::FaultInjectingTransport>(
      std::make_unique<cloud::Channel>(server_), disconnect_spec()));
  set.add_replica(std::make_unique<cloud::Channel>(server_));

  obs::TraceRecorder recorder;
  const Bytes response =
      set.call(cloud::MessageType::kRankedSearch, ranked_request("chaos", 5),
               chaos_policy(), Deadline::after(2s), &recorder, 0);
  EXPECT_EQ(response, server_.handle(cloud::MessageType::kRankedSearch,
                                     ranked_request("chaos", 5)));

  const auto spans = recorder.spans();
  expect_well_formed(spans, recorder.trace_id());

  const obs::Span* call = find_span(spans, "replica.call");
  ASSERT_NE(call, nullptr);
  const auto failed = find_events(spans, "attempt_failed");
  const auto retried = find_events(spans, "retry");
  const auto failovers = find_events(spans, "failover");
  ASSERT_GE(failed.size(), 1u);
  ASSERT_GE(retried.size(), 1u);
  ASSERT_GE(failovers.size(), 1u);
  EXPECT_EQ(failovers[0]->detail, "replica 0 -> 1");
  // The story reads in causal order: fail, retry, fail over.
  EXPECT_LE(failed[0]->at_ns, retried[0]->at_ns);
  EXPECT_LE(retried[0]->at_ns, failovers[0]->at_ns);

  // Two attempt spans: the refused one (status error) and the winner.
  std::size_t attempts = 0;
  bool saw_error_attempt = false;
  for (const obs::Span& span : spans) {
    if (span.name != "replica.attempt") continue;
    ++attempts;
    EXPECT_EQ(span.parent_span_id, call->span_id);
    if (span.status == "error") saw_error_attempt = true;
  }
  EXPECT_GE(attempts, 2u);
  EXPECT_TRUE(saw_error_attempt);
}

TEST_F(TraceChaos, HungReplicaLeavesDeadlineExceededInTheTrace) {
  cluster::ReplicaSet set;
  set.add_replica(std::make_unique<fault::FaultInjectingTransport>(
      std::make_unique<cloud::Channel>(server_), hang_spec()));
  set.add_replica(std::make_unique<cloud::Channel>(server_));

  obs::TraceRecorder recorder;
  const Bytes response =
      set.call(cloud::MessageType::kRankedSearch, ranked_request("chaos", 5),
               chaos_policy(), Deadline::after(2s), &recorder, 0);
  EXPECT_EQ(response, server_.handle(cloud::MessageType::kRankedSearch,
                                     ranked_request("chaos", 5)));
  EXPECT_GE(set.deadline_failures(), 1u);

  const auto spans = recorder.spans();
  expect_well_formed(spans, recorder.trace_id());
  EXPECT_FALSE(find_events(spans, "deadline_exceeded").empty());
  EXPECT_FALSE(find_events(spans, "failover").empty());

  bool saw_timed_out_attempt = false;
  for (const obs::Span& span : spans)
    if (span.name == "replica.attempt" && span.status == "deadline_exceeded")
      saw_timed_out_attempt = true;
  EXPECT_TRUE(saw_timed_out_attempt);
}

TEST_F(TraceChaos, ExhaustedBudgetMarksTheRootSpan) {
  // No replica can answer: the call must throw, and the root span (closed
  // during unwinding) must carry the failure status, not "ok".
  cluster::ReplicaSet set;
  set.add_replica(std::make_unique<fault::FaultInjectingTransport>(
      std::make_unique<cloud::Channel>(server_), hang_spec()));
  set.add_replica(std::make_unique<fault::FaultInjectingTransport>(
      std::make_unique<cloud::Channel>(server_), hang_spec()));

  obs::TraceRecorder recorder;
  EXPECT_THROW(set.call(cloud::MessageType::kRankedSearch,
                        ranked_request("chaos", 3), chaos_policy(),
                        Deadline::after(300ms), &recorder, 0),
               DeadlineExceeded);

  const auto spans = recorder.spans();
  expect_well_formed(spans, recorder.trace_id());
  const obs::Span* call = find_span(spans, "replica.call");
  ASSERT_NE(call, nullptr);
  EXPECT_NE(call->status, "ok");
  EXPECT_FALSE(find_events(spans, "deadline_exceeded").empty());
}

TEST_F(TraceChaos, ClusterQueryUnderChaosTracesEveryHop) {
  // The acceptance scenario: a 3-shard cluster whose preferred replicas
  // all hang. One traced ranked search must come back correct AND carry
  // spans from every layer — client, coordinator, per-shard replica
  // attempts with failover/deadline events, and the shard servers'
  // handler stages — all on one trace id with monotonic timestamps.
  const cluster::ShardMap map(3);
  auto indexes = map.split_index(server_.index());
  auto file_sets = map.split_files(server_.files());

  std::vector<std::unique_ptr<cloud::CloudServer>> shard_servers;
  std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
  for (std::uint32_t s = 0; s < 3; ++s) {
    shard_servers.push_back(std::make_unique<cloud::CloudServer>());
    shard_servers.back()->store(std::move(indexes[s]), std::move(file_sets[s]));
    auto set = std::make_unique<cluster::ReplicaSet>();
    set->add_replica(std::make_unique<fault::FaultInjectingTransport>(
        std::make_unique<cloud::Channel>(*shard_servers.back()), hang_spec()));
    set->add_replica(std::make_unique<cloud::Channel>(*shard_servers.back()));
    sets.push_back(std::move(set));
  }

  cluster::ClusterManifest manifest;
  manifest.num_shards = 3;
  manifest.replicas = 2;
  manifest.total_rows = server_.index().num_rows();
  manifest.total_files = server_.num_files();
  cluster::CoordinatorOptions options;
  options.retry = chaos_policy();
  options.query_timeout = std::chrono::seconds(10);
  cluster::ClusterCoordinator coordinator(manifest, std::move(sets), options);

  cloud::DataUser user(credentials_, coordinator);
  obs::TraceRecorder recorder;
  user.set_trace_recorder(&recorder);
  const auto top = user.ranked_search("chaos", 5);
  user.set_trace_recorder(nullptr);
  EXPECT_EQ(top.size(), 5u);

  const auto spans = recorder.spans();
  expect_well_formed(spans, recorder.trace_id());
  EXPECT_NE(find_span(spans, "client.ranked_search"), nullptr);
  EXPECT_NE(find_span(spans, "client.decode"), nullptr);
  EXPECT_NE(find_span(spans, "server.index_rank"), nullptr);

  std::set<std::string> nodes;
  bool saw_coordinator_span = false;
  for (const obs::Span& span : spans) {
    nodes.insert(span.node);
    if (span.name.rfind("coordinator.", 0) == 0) saw_coordinator_span = true;
  }
  EXPECT_TRUE(saw_coordinator_span);
  EXPECT_TRUE(nodes.count("client"));
  EXPECT_TRUE(nodes.count("coordinator"));
  // The ranked search hits one shard; the file fetch fans out to all
  // three — every shard node must appear in the trace.
  for (const char* shard : {"shard0", "shard1", "shard2"})
    EXPECT_TRUE(nodes.count(shard)) << shard;
  // And the chaos must be visible: hung preferred replicas mean deadline
  // events and failovers somewhere in the tree.
  EXPECT_FALSE(find_events(spans, "deadline_exceeded").empty());
  EXPECT_FALSE(find_events(spans, "failover").empty());
}

TEST_F(TraceChaos, TracesSurviveTheChaosProxy) {
  // Byte-level chaos between client and server: queries that do succeed
  // must still merge the server's piggybacked spans — fault frames may
  // kill a call, but they must never silently strip a trace.
  net::NetworkServer endpoint(server_, 0);
  fault::FaultSpec spec;
  spec.disconnect_rate = 0.2;
  spec.bit_flip_rate = 0.2;
  spec.delay_min = 0ms;
  spec.delay_max = 0ms;
  spec.seed = 5;
  fault::ChaosProxy proxy(endpoint.port(), spec);

  int traced_successes = 0;
  for (int i = 0; i < 40 && traced_successes < 3; ++i) {
    try {
      net::RemoteChannel channel(proxy.port());
      channel.set_call_timeout(2000ms);
      cloud::DataUser user(credentials_, channel);
      obs::TraceRecorder recorder;
      user.set_trace_recorder(&recorder);
      if (user.ranked_search("chaos", 3).size() != 3) continue;
      const auto spans = recorder.spans();
      expect_well_formed(spans, recorder.trace_id());
      // Client-side and (remote) server-side spans in one tree.
      EXPECT_NE(find_span(spans, "client.ranked_search"), nullptr);
      ASSERT_NE(find_span(spans, "server.ranked_search"), nullptr);
      EXPECT_TRUE(channel.peer_supports_trace());
      ++traced_successes;
    } catch (const Error&) {
      // Typed failure injected by the proxy: try again on a fresh
      // connection, exactly like a real client would.
    }
  }
  EXPECT_GE(traced_successes, 3);
  proxy.stop();
  endpoint.stop();
}

TEST_F(TraceChaos, FaultDecoratorIsTransparentToTracing) {
  // A fault-free FaultInjectingTransport must pass the trace context
  // through to the wrapped transport untouched.
  fault::FaultInjectingTransport transport(
      std::make_unique<cloud::Channel>(server_), fault::FaultSpec{});
  obs::TraceRecorder recorder;
  (void)transport.call(cloud::MessageType::kRankedSearch,
                       ranked_request("chaos", 3), Deadline(), &recorder, 0);
  const auto spans = recorder.spans();
  expect_well_formed(spans, recorder.trace_id());
  EXPECT_NE(find_span(spans, "server.ranked_search"), nullptr);
  EXPECT_NE(find_span(spans, "server.index_rank"), nullptr);
}

// ------------------------------------------------------ wire compatibility

// Reads exactly `n` bytes from `socket` (test-side raw frame inspection).
Bytes read_exact(const net::Socket& socket, std::size_t n) {
  Bytes out(n);
  if (n > 0) {
    EXPECT_TRUE(socket.recv_exact(std::span<std::uint8_t>(out.data(), n)));
  }
  return out;
}

TEST_F(WireCompat, UntracedFramesAreByteIdenticalToTheOldFormat) {
  // The trace extension must cost untraced traffic nothing: an unflagged
  // request is exactly [type][4-byte LE length][payload], an ok response
  // exactly [0][4-byte LE length][payload] — the pre-extension wire form.
  net::TcpListener listener(0);
  net::Socket client = net::tcp_connect(listener.port());
  net::Socket server = listener.accept();

  const Bytes payload = {0xde, 0xad, 0xbe, 0xef};
  net::send_request(client, cloud::MessageType::kRankedSearch, payload);
  const Bytes raw = read_exact(server, 5 + payload.size());
  EXPECT_EQ(raw[0], static_cast<std::uint8_t>(cloud::MessageType::kRankedSearch));
  EXPECT_EQ(raw[0] & net::kTraceFlag, 0);
  EXPECT_EQ(raw[1], payload.size());  // LE length, high bytes zero
  EXPECT_EQ(raw[2], 0);
  EXPECT_EQ(raw[3], 0);
  EXPECT_EQ(raw[4], 0);
  EXPECT_EQ(Bytes(raw.begin() + 5, raw.end()), payload);

  net::send_response_ok(server, payload);
  const Bytes response = read_exact(client, 5 + payload.size());
  EXPECT_EQ(response[0], 0);  // plain ok tag, not the traced tag 2
  EXPECT_EQ(response[1], payload.size());
  EXPECT_EQ(Bytes(response.begin() + 5, response.end()), payload);
}

TEST_F(WireCompat, FlaggedFramesRoundTripTheTraceContext) {
  net::TcpListener listener(0);
  net::Socket client = net::tcp_connect(listener.port());
  net::Socket server = listener.accept();

  obs::TraceContext ctx;
  ctx.trace_id = 0x0123456789abcdefull;
  ctx.parent_span_id = 42;
  ctx.sampled = true;
  const Bytes payload = {1, 2, 3};
  net::send_request(client, cloud::MessageType::kRankedSearch, payload, ctx);

  const auto frame = net::recv_request(server);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, cloud::MessageType::kRankedSearch);
  EXPECT_EQ(frame->payload, payload);  // context already stripped
  ASSERT_TRUE(frame->trace.has_value());
  EXPECT_EQ(frame->trace->trace_id, ctx.trace_id);
  EXPECT_EQ(frame->trace->parent_span_id, ctx.parent_span_id);
  EXPECT_TRUE(frame->trace->sampled);

  // An unflagged frame on the same connection parses with no context.
  net::send_request(client, cloud::MessageType::kFetchFiles, payload);
  const auto plain = net::recv_request(server);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->type, cloud::MessageType::kFetchFiles);
  EXPECT_FALSE(plain->trace.has_value());
}

TEST_F(WireCompat, TracedResponsesCarrySpansAndPlainReadersDiscardThem) {
  net::TcpListener listener(0);
  net::Socket client = net::tcp_connect(listener.port());
  net::Socket server = listener.accept();

  obs::TraceRecorder recorder;
  { obs::SpanScope span(&recorder, "server.test", "server"); }
  const Bytes payload = {9, 8, 7};

  net::send_response_ok_traced(server, payload, recorder.spans());
  const net::TracedResponse traced = net::recv_response_traced(client);
  EXPECT_EQ(traced.payload, payload);
  ASSERT_EQ(traced.spans.size(), 1u);
  EXPECT_EQ(traced.spans[0].name, "server.test");

  // A reader that never asked for spans still gets the payload: the
  // traced tag must not break recv_response.
  net::send_response_ok_traced(server, payload, recorder.spans());
  EXPECT_EQ(net::recv_response(client), payload);
}

TEST_F(WireCompat, MixedTracedAndUntracedCallsShareOneConnection) {
  // Version negotiation happy path: against a new server, traced and
  // untraced calls interleave freely on one connection and the traced
  // ones come back with server spans.
  net::NetworkServer endpoint(server_, 0);
  net::RemoteChannel channel(endpoint.port());

  const Bytes request = ranked_request("chaos", 5);
  const Bytes expected = server_.handle(cloud::MessageType::kRankedSearch, request);
  EXPECT_EQ(channel.call(cloud::MessageType::kRankedSearch, request), expected);

  obs::TraceRecorder recorder;
  EXPECT_EQ(channel.call(cloud::MessageType::kRankedSearch, request, Deadline(),
                         &recorder, 0),
            expected);
  EXPECT_NE(find_span(recorder.spans(), "server.ranked_search"), nullptr);
  EXPECT_TRUE(channel.peer_supports_trace());

  EXPECT_EQ(channel.call(cloud::MessageType::kRankedSearch, request), expected);
  endpoint.stop();
}

TEST_F(WireCompat, OldServerTriggersLazyDowngrade) {
  // An "old" server: speaks the pre-extension protocol only, so a
  // trace-flagged type byte is an unknown message type and gets an error
  // frame. The client must downgrade — retry the same call untraced on
  // the same connection — and never send the flag again.
  net::TcpListener listener(0);
  std::atomic<int> flagged_requests{0};
  std::atomic<int> plain_requests{0};
  std::thread old_server([&] {
    net::Socket conn = listener.accept();
    if (!conn.valid()) return;
    for (;;) {
      std::uint8_t header[5];
      if (!conn.recv_exact(std::span<std::uint8_t>(header, 5))) break;
      const std::uint32_t length = static_cast<std::uint32_t>(header[1]) |
                                   static_cast<std::uint32_t>(header[2]) << 8 |
                                   static_cast<std::uint32_t>(header[3]) << 16 |
                                   static_cast<std::uint32_t>(header[4]) << 24;
      Bytes payload(length);
      if (length > 0) {
        ASSERT_TRUE(conn.recv_exact(std::span<std::uint8_t>(payload.data(), length)));
      }
      if (header[0] & net::kTraceFlag) {
        ++flagged_requests;
        net::send_response_error(conn, "unknown message type 0x" +
                                           std::to_string(header[0]));
        continue;
      }
      ++plain_requests;
      try {
        net::send_response_ok(
            conn, server_.handle(static_cast<cloud::MessageType>(header[0]), payload));
      } catch (const Error& e) {
        net::send_response_error(conn, e.what());
      }
    }
  });

  net::RemoteChannel channel(listener.port());
  EXPECT_TRUE(channel.peer_supports_trace());  // optimistic until proven old

  const Bytes request = ranked_request("chaos", 5);
  const Bytes expected = server_.handle(cloud::MessageType::kRankedSearch, request);

  // First traced call: flagged attempt rejected, untraced retry succeeds.
  obs::TraceRecorder recorder;
  EXPECT_EQ(channel.call(cloud::MessageType::kRankedSearch, request, Deadline(),
                         &recorder, 0),
            expected);
  EXPECT_FALSE(channel.peer_supports_trace());
  EXPECT_EQ(flagged_requests.load(), 1);
  EXPECT_EQ(plain_requests.load(), 1);
  // No server spans, but the client-side trace is intact (gap, not loss).
  EXPECT_EQ(find_span(recorder.spans(), "server.ranked_search"), nullptr);

  // Second traced call: the downgrade sticks — no flagged frame at all.
  EXPECT_EQ(channel.call(cloud::MessageType::kRankedSearch, request, Deadline(),
                         &recorder, 0),
            expected);
  EXPECT_EQ(flagged_requests.load(), 1);
  EXPECT_EQ(plain_requests.load(), 2);

  // A genuine server error must NOT be misread as an old peer after the
  // downgrade: an untraced protocol error still throws.
  EXPECT_THROW(channel.call(cloud::MessageType::kRankedSearch, Bytes{1}),
               ProtocolError);

  channel.disconnect();
  listener.close();
  old_server.join();
}

}  // namespace
}  // namespace rsse
