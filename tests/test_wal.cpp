// Write-ahead log durability (ISSUE 7 tentpole, part a): the record
// codec and torn-tail scan discipline, the file-backed append/rewrite
// primitives, and the CloudServer recovery contract — every *acked*
// update survives a crash and replays on the next load, a torn final
// frame (an update that was never acked) is discarded, the delta_id
// idempotency ring comes back with the data, and an atomic-swap save
// checkpoints exactly the records it covers.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cloud/channel.h"
#include "cloud/cloud_server.h"
#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cloud/protocol.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "seg/wal.h"
#include "store/deployment.h"
#include "util/errors.h"

namespace rsse {
namespace {

namespace fs = std::filesystem;

seg::WalRecord make_record(std::uint64_t delta_id, std::uint64_t first_seq,
                           std::size_t delta_bytes) {
  // The WAL codec never parses the delta payload — any non-empty bytes
  // stand in for a serialized seg::UpdateDelta here.
  seg::WalRecord record;
  record.delta_id = delta_id;
  record.first_seq = first_seq;
  for (std::size_t i = 0; i < delta_bytes; ++i)
    record.delta.push_back(static_cast<std::uint8_t>((delta_id * 31 + i) & 0xff));
  return record;
}

// ------------------------------------------------------------- codec

TEST(WalCodec, RecordRoundTrips) {
  const seg::WalRecord record = make_record(7, 42, 129);
  const seg::WalRecord back = seg::WalRecord::deserialize(record.serialize());
  EXPECT_EQ(back, record);

  // delta_id 0 is legal in the codec (a delta the owner sent without an
  // idempotency token still has to be durable).
  const seg::WalRecord anonymous = make_record(0, 9, 3);
  EXPECT_EQ(seg::WalRecord::deserialize(anonymous.serialize()), anonymous);
}

TEST(WalCodec, DeserializeRejectsMalformedRecords) {
  EXPECT_THROW(seg::WalRecord::deserialize({}), ParseError);

  // Sequence 0 is the base index epoch; no delta ever occupies it.
  seg::WalRecord zero_seq = make_record(3, 1, 8);
  zero_seq.first_seq = 0;
  EXPECT_THROW(seg::WalRecord::deserialize(zero_seq.serialize()), ParseError);

  seg::WalRecord empty_delta = make_record(3, 1, 8);
  empty_delta.delta.clear();
  EXPECT_THROW(seg::WalRecord::deserialize(empty_delta.serialize()), ParseError);

  Bytes truncated = make_record(5, 6, 20).serialize();
  truncated.pop_back();
  EXPECT_THROW(seg::WalRecord::deserialize(truncated), ParseError);

  Bytes trailing = make_record(5, 6, 20).serialize();
  trailing.push_back(0);
  EXPECT_THROW(seg::WalRecord::deserialize(trailing), ParseError);
}

TEST(WalCodec, ScanRecoversTheFramePrefixAtEveryCrashCut) {
  // Three framed records; cut the image at EVERY byte offset. The scan
  // must recover exactly the fully-contained frames and flag a torn tail
  // whenever the cut is not a frame boundary — the crash-window
  // contract: an acked (fully flushed) record is never lost, a torn one
  // never surfaces.
  const std::vector<seg::WalRecord> records = {
      make_record(1, 1, 40), make_record(2, 11, 7), make_record(3, 13, 64)};
  Bytes image;
  std::vector<std::size_t> boundaries = {0};
  for (const seg::WalRecord& record : records) {
    const Bytes frame = seg::encode_wal_frame(record);
    image.insert(image.end(), frame.begin(), frame.end());
    boundaries.push_back(image.size());
  }

  for (std::size_t cut = 0; cut <= image.size(); ++cut) {
    const BytesView prefix(image.data(), cut);
    const seg::WalScan scan = seg::scan_wal(prefix);
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) ++whole;
    ASSERT_EQ(scan.records.size(), whole) << "cut at byte " << cut;
    for (std::size_t i = 0; i < whole; ++i)
      EXPECT_EQ(scan.records[i], records[i]) << "cut at byte " << cut;
    const bool at_boundary = boundaries[whole] == cut;
    EXPECT_EQ(scan.torn_tail, !at_boundary) << "cut at byte " << cut;
  }
}

TEST(WalCodec, ScanStopsAtACorruptFrame) {
  const std::vector<seg::WalRecord> records = {make_record(1, 1, 32),
                                               make_record(2, 5, 32),
                                               make_record(3, 9, 32)};
  Bytes image;
  std::vector<std::size_t> boundaries = {0};
  for (const seg::WalRecord& record : records) {
    const Bytes frame = seg::encode_wal_frame(record);
    image.insert(image.end(), frame.begin(), frame.end());
    boundaries.push_back(image.size());
  }

  // Flip one payload byte inside the second frame: the scan keeps the
  // first record, reports damage, and never decodes past it (a corrupt
  // interior byte is indistinguishable from a torn tail on disk).
  Bytes corrupt = image;
  corrupt[boundaries[1] + 12] ^= 0x40;
  const seg::WalScan scan = seg::scan_wal(corrupt);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], records[0]);
  EXPECT_TRUE(scan.torn_tail);

  // Damaged magic in the final frame: two records survive.
  Bytes bad_magic = image;
  bad_magic.back() ^= 0x01;
  const seg::WalScan tail = seg::scan_wal(bad_magic);
  ASSERT_EQ(tail.records.size(), 2u);
  EXPECT_TRUE(tail.torn_tail);
}

TEST(WalCodec, ScanOfEmptyImageIsClean) {
  const seg::WalScan scan = seg::scan_wal({});
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.torn_tail);
}

// ------------------------------------------------------------- file

TEST(WalFile, BindsLazilyAndScansAppendsBack) {
  const fs::path path = fs::temp_directory_path() / "rsse_wal_file_test.wal";
  fs::remove(path);

  seg::WriteAheadLog log;
  EXPECT_FALSE(log.attached());
  log.open(path.string());
  EXPECT_TRUE(log.attached());
  // open() must not create the file: a read-only deployment load leaves
  // no WAL behind.
  EXPECT_FALSE(fs::exists(path));

  const seg::WalScan missing = seg::WriteAheadLog::scan_file(path.string());
  EXPECT_TRUE(missing.records.empty());
  EXPECT_FALSE(missing.torn_tail);

  const seg::WalRecord a = make_record(1, 1, 24);
  const seg::WalRecord b = make_record(2, 4, 48);
  log.append(a);
  log.append(b);
  EXPECT_TRUE(fs::exists(path));

  const seg::WalScan scan = seg::WriteAheadLog::scan_file(path.string());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0], a);
  EXPECT_EQ(scan.records[1], b);
  EXPECT_FALSE(scan.torn_tail);

  fs::remove(path);
}

TEST(WalFile, RewriteKeepsExactlyTheSurvivors) {
  const fs::path path = fs::temp_directory_path() / "rsse_wal_rewrite_test.wal";
  fs::remove(path);

  seg::WriteAheadLog log;
  log.open(path.string());
  const seg::WalRecord a = make_record(1, 1, 16);
  const seg::WalRecord b = make_record(2, 3, 16);
  const seg::WalRecord c = make_record(3, 5, 16);
  log.append(a);
  log.append(b);
  log.append(c);

  // Checkpoint: a and b are covered by a persisted snapshot; only c
  // survives the rewrite, and appends keep working afterwards.
  log.rewrite(std::deque<seg::WalRecord>{c});
  const seg::WalScan after = seg::WriteAheadLog::scan_file(path.string());
  ASSERT_EQ(after.records.size(), 1u);
  EXPECT_EQ(after.records[0], c);
  EXPECT_FALSE(after.torn_tail);

  const seg::WalRecord d = make_record(4, 7, 16);
  log.append(d);
  const seg::WalScan appended = seg::WriteAheadLog::scan_file(path.string());
  ASSERT_EQ(appended.records.size(), 2u);
  EXPECT_EQ(appended.records[1], d);

  log.rewrite({});
  const seg::WalScan empty = seg::WriteAheadLog::scan_file(path.string());
  EXPECT_TRUE(empty.records.empty());
  EXPECT_FALSE(empty.torn_tail);

  fs::remove(path);
}

// -------------------------------------------------- server recovery

/// End-to-end crash drills: a deployed server takes live kUpdates, the
/// process "dies" (the object is dropped without a save), and a fresh
/// load must replay the WAL into an equivalent server.
class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            (std::string("rsse_wal_recovery_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    fs::remove(store::wal_path(dir_));

    ir::CorpusGenOptions opts;
    opts.num_documents = 10;
    opts.vocabulary_size = 40;
    opts.injected.push_back(ir::InjectedKeyword{"oracle", 6, 0.5, 25});
    opts.seed = 4242;
    corpus_ = ir::generate_corpus(opts);

    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus_, server_);
    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = cloud::AuthorizationService::open(
        user_key, "u", owner_->enroll_user(user_key, "u"));

    store::save_deployment(server_, dir_);
  }

  void TearDown() override {
    fs::remove_all(dir_);
    fs::remove(store::wal_path(dir_));
  }

  /// One serialized kUpdate adding a single short document (plus optional
  /// removes). Built once per call — entry encryption draws fresh IVs, so
  /// replay tests must reuse the returned bytes verbatim.
  [[nodiscard]] Bytes update_payload(std::uint64_t delta_id, std::uint64_t doc_id,
                                     const std::string& text,
                                     std::vector<sse::FileId> removes = {}) const {
    cloud::UpdateRequest req;
    req.delta_id = delta_id;
    std::vector<ir::Document> adds;
    if (!text.empty())
      adds.push_back(ir::Document{ir::file_id(doc_id), "wal.txt", text});
    req.delta = owner_->build_update(adds, removes);
    return req.serialize();
  }

  [[nodiscard]] std::vector<std::uint64_t> search_ids(cloud::CloudServer& server,
                                                      const std::string& term,
                                                      std::size_t k) const {
    cloud::Channel channel(server);
    cloud::DataUser user(credentials_, channel);
    std::vector<std::uint64_t> ids;
    for (const cloud::RetrievedFile& hit : user.ranked_search(term, k))
      ids.push_back(ir::value(hit.document.id));
    return ids;
  }

  std::string dir_;
  ir::Corpus corpus_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer server_;
  cloud::UserCredentials credentials_;
};

TEST_F(WalRecoveryTest, AckedUpdatesSurviveACrash) {
  cloud::CloudServer live;
  store::load_deployment(dir_, live);

  (void)live.handle(cloud::MessageType::kUpdate,
                    update_payload(1, 90001, "oracle walword alpha"));
  (void)live.handle(cloud::MessageType::kUpdate,
                    update_payload(2, 90002, "walword bravo"));
  (void)live.handle(
      cloud::MessageType::kUpdate,
      update_payload(3, 90003, "oracle charlie", {corpus_.documents()[0].id}));
  EXPECT_EQ(live.wal_tail_records(), 3u);

  const auto want_oracle = search_ids(live, "oracle", 0);
  const auto want_wal = search_ids(live, "walword", 0);
  ASSERT_FALSE(want_wal.empty());

  // Crash: `live` is dropped without a save. The fresh load must rebuild
  // the overlay purely from the base artifacts plus the WAL.
  cloud::CloudServer recovered;
  store::load_deployment(dir_, recovered);
  EXPECT_EQ(recovered.segment_next_seq(), live.segment_next_seq());
  EXPECT_EQ(recovered.wal_tail_records(), 3u);
  EXPECT_EQ(search_ids(recovered, "oracle", 0), want_oracle);
  EXPECT_EQ(search_ids(recovered, "walword", 0), want_wal);
}

TEST_F(WalRecoveryTest, IdempotencyRingSurvivesACrash) {
  const Bytes first = update_payload(11, 90010, "oracle delta echo");
  {
    cloud::CloudServer live;
    store::load_deployment(dir_, live);
    const auto ack = cloud::UpdateResponse::deserialize(
        live.handle(cloud::MessageType::kUpdate, first));
    EXPECT_FALSE(ack.replayed);
  }

  cloud::CloudServer recovered;
  store::load_deployment(dir_, recovered);
  const std::uint64_t seq_before = recovered.segment_next_seq();

  // The owner retrying the same delta against the restarted server must
  // hit the recovered dedup ring, not double-apply.
  const auto replay = cloud::UpdateResponse::deserialize(
      recovered.handle(cloud::MessageType::kUpdate, first));
  EXPECT_TRUE(replay.replayed);
  EXPECT_EQ(recovered.segment_next_seq(), seq_before);
}

TEST_F(WalRecoveryTest, TornTailIsDiscardedAndCompactedOnRecovery) {
  cloud::CloudServer live;
  store::load_deployment(dir_, live);
  (void)live.handle(cloud::MessageType::kUpdate,
                    update_payload(1, 90021, "oracle foxtrot"));
  (void)live.handle(cloud::MessageType::kUpdate,
                    update_payload(2, 90022, "oracle golf"));
  const std::uintmax_t acked_bytes = fs::file_size(store::wal_path(dir_));
  const std::uint64_t acked_seq = live.segment_next_seq();
  (void)live.handle(cloud::MessageType::kUpdate,
                    update_payload(3, 90023, "tornword hotel"));

  // Crash mid-append of the third record: keep a few bytes past the last
  // acked frame. (In reality the ack raced the flush; the client never
  // heard back and will retry.)
  {
    std::ifstream in(store::wal_path(dir_), std::ios::binary);
    Bytes raw((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
    raw.resize(static_cast<std::size_t>(acked_bytes) + 7);
    std::ofstream out(store::wal_path(dir_), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
  }

  cloud::CloudServer recovered;
  store::load_deployment(dir_, recovered);
  EXPECT_EQ(recovered.segment_next_seq(), acked_seq);
  EXPECT_EQ(recovered.wal_tail_records(), 2u);
  EXPECT_TRUE(search_ids(recovered, "tornword", 0).empty());
  EXPECT_FALSE(search_ids(recovered, "oracle", 0).empty());

  // Recovery compacts the damage away: the file on disk is clean again.
  const seg::WalScan rescan =
      seg::WriteAheadLog::scan_file(store::wal_path(dir_));
  EXPECT_EQ(rescan.records.size(), 2u);
  EXPECT_FALSE(rescan.torn_tail);
}

TEST_F(WalRecoveryTest, SaveCheckpointsTheCoveredRecords) {
  cloud::CloudServer live;
  store::load_deployment(dir_, live);
  (void)live.handle(cloud::MessageType::kUpdate,
                    update_payload(1, 90031, "oracle india"));
  (void)live.handle(cloud::MessageType::kUpdate,
                    update_payload(2, 90032, "oracle juliet"));
  EXPECT_EQ(live.wal_tail_records(), 2u);

  // An atomic-swap save persists the overlay, so both records are now
  // covered and the WAL truncates to empty.
  store::save_deployment(live, dir_);
  EXPECT_EQ(live.wal_tail_records(), 0u);
  EXPECT_TRUE(seg::WriteAheadLog::scan_file(store::wal_path(dir_)).records.empty());

  // One more update after the checkpoint: only IT replays on recovery,
  // on top of the saved snapshot.
  (void)live.handle(cloud::MessageType::kUpdate,
                    update_payload(3, 90033, "postsaveword kilo"));
  EXPECT_EQ(live.wal_tail_records(), 1u);

  cloud::CloudServer recovered;
  store::load_deployment(dir_, recovered);
  EXPECT_EQ(recovered.segment_next_seq(), live.segment_next_seq());
  EXPECT_EQ(recovered.wal_tail_records(), 1u);
  EXPECT_EQ(search_ids(recovered, "oracle", 0), search_ids(live, "oracle", 0));
  EXPECT_EQ(search_ids(recovered, "postsaveword", 0),
            search_ids(live, "postsaveword", 0));
}

}  // namespace
}  // namespace rsse
