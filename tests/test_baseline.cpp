// Baselines: plaintext engine correctness, the [18]-style bucket
// transform and the [16]-style sampled-CDF transform — order
// preservation, flattening, and (crucially) their rebuild-on-drift
// instability, which is the property the paper's dynamics argument
// turns on.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bucket_opm.h"
#include "baseline/plaintext_search.h"
#include "baseline/sample_opm.h"
#include "ir/corpus_gen.h"
#include "util/errors.h"
#include "util/rng.h"

namespace rsse::baseline {
namespace {

std::vector<double> skewed_scores(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> scores;
  scores.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.next_double();
    scores.push_back(0.01 + u * u * u);  // skewed toward small values
  }
  return scores;
}

TEST(PlaintextEngine, RanksLikeTheInvertedIndex) {
  ir::CorpusGenOptions opts;
  opts.num_documents = 30;
  opts.vocabulary_size = 200;
  opts.min_tokens = 40;
  opts.max_tokens = 150;
  opts.injected.push_back(ir::InjectedKeyword{"network", 18, 0.3, 30});
  opts.seed = 8;
  const ir::Corpus corpus = ir::generate_corpus(opts);

  const PlaintextSearchEngine engine(corpus);
  const auto all = engine.search("network");
  EXPECT_EQ(all.size(), 18u);
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_GE(all[i - 1].score, all[i].score);

  const auto top5 = engine.search("network", 5);
  ASSERT_EQ(top5.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(top5[i].file, all[i].file);

  // Query normalization applies (inflected form, stop word).
  EXPECT_EQ(engine.search("Networking").size(), 18u);
  EXPECT_TRUE(engine.search("the").empty());
}

TEST(BucketOpm, PreservesOrderAcrossBuckets) {
  const auto train = skewed_scores(2000, 1);
  const BucketOpm opm(train, 32, 1ull << 30, to_bytes("bucket-key"));
  Xoshiro256 rng(2);
  for (int i = 0; i < 2000; ++i) {
    const double a = 0.01 + rng.next_double();
    const double b = 0.01 + rng.next_double();
    if (opm.bucket_of(a) < opm.bucket_of(b))
      EXPECT_LT(opm.map(a, 1), opm.map(b, 2));
    if (opm.bucket_of(a) > opm.bucket_of(b))
      EXPECT_GT(opm.map(a, 1), opm.map(b, 2));
  }
}

TEST(BucketOpm, EquiDepthBoundariesFlattenTheTrainingSample) {
  const auto train = skewed_scores(4000, 3);
  const BucketOpm opm(train, 16, 1ull << 24, to_bytes("k"));
  // Count training points per bucket: equi-depth => roughly 4000/16 each.
  std::vector<int> per_bucket(16, 0);
  for (double s : train) ++per_bucket[opm.bucket_of(s)];
  for (int count : per_bucket) {
    EXPECT_GT(count, 150);
    EXPECT_LT(count, 350);
  }
  EXPECT_EQ(opm.metadata_bytes(), 15u * sizeof(double));
}

TEST(BucketOpm, DeterministicPerTiebreak) {
  const BucketOpm opm(skewed_scores(100, 4), 8, 1 << 20, to_bytes("k"));
  EXPECT_EQ(opm.map(0.5, 7), opm.map(0.5, 7));
  EXPECT_NE(opm.map(0.5, 7), opm.map(0.5, 8));  // one-to-many style scatter
}

TEST(BucketOpm, RefitMovesExistingMappings) {
  // The paper's dynamics criticism: a drifted distribution forces a
  // refit, and the refit changes previously mapped values.
  BucketOpm opm(skewed_scores(2000, 5), 32, 1ull << 30, to_bytes("k"));
  const std::vector<double> probes = skewed_scores(200, 6);
  std::vector<std::uint64_t> before;
  for (std::size_t i = 0; i < probes.size(); ++i) before.push_back(opm.map(probes[i], i));

  // Drift: new scores concentrate near the top of the old range.
  std::vector<double> drifted;
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) drifted.push_back(0.8 + 0.4 * rng.next_double());
  opm.refit(drifted);

  std::size_t moved = 0;
  for (std::size_t i = 0; i < probes.size(); ++i)
    if (opm.map(probes[i], i) != before[i]) ++moved;
  EXPECT_GT(moved, probes.size() / 2) << "refit should invalidate most mappings";
}

TEST(BucketOpm, Preconditions) {
  EXPECT_THROW(BucketOpm({}, 8, 1 << 20, to_bytes("k")), InvalidArgument);
  EXPECT_THROW(BucketOpm({1.0}, 0, 1 << 20, to_bytes("k")), InvalidArgument);
  EXPECT_THROW(BucketOpm({1.0}, 8, 4, to_bytes("k")), InvalidArgument);
  EXPECT_THROW(BucketOpm({1.0}, 8, 1 << 20, Bytes{}), InvalidArgument);
}

TEST(SampleOpm, CdfIsMonotoneAndNormalized) {
  const SampleOpm opm(skewed_scores(3000, 8), 64, 1ull << 30, to_bytes("k"));
  double prev = -1.0;
  for (double s = 0.0; s <= 1.2; s += 0.01) {
    const double c = opm.cdf(s);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(opm.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(opm.cdf(100.0), 1.0);
}

TEST(SampleOpm, UniformizesTheTrainingDistribution) {
  // The CDF of the training sample evaluated on the sample is ~uniform:
  // the transform flattens exactly the distribution it was trained on.
  const auto train = skewed_scores(3000, 9);
  const SampleOpm opm(train, 64, 1ull << 30, to_bytes("k"));
  int low = 0;
  int high = 0;
  for (double s : train) {
    const double c = opm.cdf(s);
    if (c < 0.5) ++low;
    else ++high;
  }
  EXPECT_NEAR(static_cast<double>(low) / train.size(), 0.5, 0.06);
  (void)high;
}

TEST(SampleOpm, OrderPreservedAtKnotGranularity) {
  const SampleOpm opm(skewed_scores(3000, 10), 64, 1ull << 30, to_bytes("k"));
  Xoshiro256 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.next_double();
    const double b = rng.next_double();
    // Comparable when the CDF separates them by at least one knot cell.
    if (opm.cdf(a) + 1.0 / 63.0 < opm.cdf(b)) EXPECT_LT(opm.map(a, 1), opm.map(b, 2));
  }
}

TEST(SampleOpm, RetrainMovesExistingMappings) {
  SampleOpm opm(skewed_scores(3000, 12), 64, 1ull << 30, to_bytes("k"));
  const auto probes = skewed_scores(200, 13);
  std::vector<std::uint64_t> before;
  for (std::size_t i = 0; i < probes.size(); ++i) before.push_back(opm.map(probes[i], i));

  std::vector<double> drifted;
  Xoshiro256 rng(14);
  for (int i = 0; i < 3000; ++i) drifted.push_back(2.0 + rng.next_double());
  opm.retrain(drifted);

  std::size_t moved = 0;
  for (std::size_t i = 0; i < probes.size(); ++i)
    if (opm.map(probes[i], i) != before[i]) ++moved;
  EXPECT_GT(moved, probes.size() / 2);
}

TEST(SampleOpm, Preconditions) {
  EXPECT_THROW(SampleOpm({}, 8, 1 << 20, to_bytes("k")), InvalidArgument);
  EXPECT_THROW(SampleOpm({1.0}, 1, 1 << 20, to_bytes("k")), InvalidArgument);
  EXPECT_THROW(SampleOpm({1.0}, 8, 4, to_bytes("k")), InvalidArgument);
  EXPECT_THROW(SampleOpm({1.0}, 8, 1 << 20, Bytes{}), InvalidArgument);
}

TEST(SampleOpm, DegenerateTrainingSampleStillWorks) {
  const SampleOpm opm({5.0, 5.0, 5.0}, 4, 1 << 20, to_bytes("k"));
  EXPECT_NO_THROW(opm.map(5.0, 1));
  EXPECT_NO_THROW(opm.map(4.0, 1));
}

}  // namespace
}  // namespace rsse::baseline
