// Full-system integration: owner outsources, enrolls a user, the user
// searches through all three retrieval protocols over the accounted
// channel, results agree across protocols, traffic counters expose the
// bandwidth/round-trip trade-off, and authorization fails closed.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "util/errors.h"

namespace rsse::cloud {
namespace {

class CloudSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 40;
    opts.vocabulary_size = 250;
    opts.min_tokens = 50;
    opts.max_tokens = 200;
    opts.injected.push_back(ir::InjectedKeyword{"network", 25, 0.3, 40});
    opts.seed = 77;
    corpus_ = ir::generate_corpus(opts);

    owner_ = std::make_unique<DataOwner>();
    owner_->outsource_rsse(corpus_, rsse_server_);
    owner_->outsource_basic(corpus_, basic_server_);

    user_key_ = crypto::random_bytes(32);
    const Bytes sealed = owner_->enroll_user(user_key_, "alice");
    credentials_ = AuthorizationService::open(user_key_, "alice", sealed);
  }

  std::set<std::uint64_t> ids_of(const std::vector<RetrievedFile>& files) const {
    std::set<std::uint64_t> out;
    for (const auto& f : files) out.insert(ir::value(f.document.id));
    return out;
  }

  ir::Corpus corpus_;
  std::unique_ptr<DataOwner> owner_;
  CloudServer rsse_server_;
  CloudServer basic_server_;
  Bytes user_key_;
  UserCredentials credentials_;
};

TEST_F(CloudSystemTest, RankedSearchReturnsDecryptableTopK) {
  Channel channel(rsse_server_);
  DataUser user(credentials_, channel);
  const auto files = user.ranked_search("network", 5);
  ASSERT_EQ(files.size(), 5u);
  for (const auto& f : files) {
    // Decrypted files are the original documents.
    const ir::Document& original = corpus_.by_id(f.document.id);
    EXPECT_EQ(f.document.text, original.text);
    EXPECT_EQ(f.document.name, original.name);
    EXPECT_TRUE(std::isnan(f.score));  // RSSE hides scores from everyone
  }
  EXPECT_EQ(channel.stats().round_trips, 1u);
}

TEST_F(CloudSystemTest, AllThreeProtocolsAgreeOnTheTopK) {
  Channel rsse_channel(rsse_server_);
  DataUser rsse_user(credentials_, rsse_channel);
  Channel basic_channel(basic_server_);
  DataUser basic_user(credentials_, basic_channel);

  const std::size_t k = 8;
  const auto ranked = rsse_user.ranked_search("network", k);
  const auto one_round = basic_user.basic_search_one_round("network", k);
  const auto two_round = basic_user.basic_search_two_round("network", k);

  // Quantization can permute files whose scores share a level, so compare
  // the retrieved id SETS (the paper's retrieval-accuracy notion) —
  // except when scores are distinct, where order must match too.
  EXPECT_EQ(ids_of(one_round), ids_of(two_round));
  // Exact modes rank identically.
  for (std::size_t i = 0; i < k; ++i)
    EXPECT_EQ(one_round[i].document.id, two_round[i].document.id);
  // RSSE agrees with the exact modes on at least all but the boundary
  // quantization level; on this workload levels are fine enough that the
  // sets agree exactly.
  EXPECT_EQ(ids_of(ranked), ids_of(one_round));
}

TEST_F(CloudSystemTest, BandwidthOrderingMatchesThePaper) {
  // One-round Basic ships ALL matching files; two-round ships entries +
  // k files; RSSE ships k files once. For small k:
  //   rsse_bytes < two_round_bytes_down  and  << one_round_bytes_down.
  const std::size_t k = 3;

  Channel c1(rsse_server_);
  DataUser u1(credentials_, c1);
  u1.ranked_search("network", k);

  Channel c2(basic_server_);
  DataUser u2(credentials_, c2);
  u2.basic_search_one_round("network", k);

  Channel c3(basic_server_);
  DataUser u3(credentials_, c3);
  u3.basic_search_two_round("network", k);

  EXPECT_EQ(c1.stats().round_trips, 1u);
  EXPECT_EQ(c2.stats().round_trips, 1u);
  EXPECT_EQ(c3.stats().round_trips, 2u);  // the paper's two-RTT cost

  EXPECT_LT(c1.stats().bytes_down, c2.stats().bytes_down);
  EXPECT_LT(c3.stats().bytes_down, c2.stats().bytes_down);
}

TEST_F(CloudSystemTest, ChannelResetZeroesCounters) {
  Channel channel(rsse_server_);
  DataUser user(credentials_, channel);
  user.ranked_search("network", 2);
  EXPECT_GT(channel.stats().total_bytes(), 0u);
  channel.reset();
  EXPECT_EQ(channel.stats().round_trips, 0u);
  EXPECT_EQ(channel.stats().total_bytes(), 0u);
}

TEST_F(CloudSystemTest, SearchForAbsentKeywordIsEmptyEverywhere) {
  Channel channel(rsse_server_);
  DataUser user(credentials_, channel);
  EXPECT_TRUE(user.ranked_search("qqqabsent", 5).empty());
  Channel bchannel(basic_server_);
  DataUser buser(credentials_, bchannel);
  EXPECT_TRUE(buser.basic_search_one_round("qqqabsent", 5).empty());
  EXPECT_TRUE(buser.basic_search_two_round("qqqabsent", 5).empty());
}

TEST_F(CloudSystemTest, CredentialsSealingFailsClosed) {
  const Bytes sealed = owner_->enroll_user(user_key_, "alice");
  // Wrong personal key.
  EXPECT_THROW(AuthorizationService::open(crypto::random_bytes(32), "alice", sealed),
               CryptoError);
  // Right key, wrong user binding.
  EXPECT_THROW(AuthorizationService::open(user_key_, "bob", sealed), CryptoError);
  // Tampered bundle.
  Bytes tampered = sealed;
  tampered[tampered.size() / 2] ^= 1;
  EXPECT_THROW(AuthorizationService::open(user_key_, "alice", tampered), CryptoError);
}

TEST_F(CloudSystemTest, CredentialsOmitTheOpmKeyRoot) {
  // The bundle must carry the derived score key, never z itself.
  EXPECT_NE(credentials_.score_key, owner_->master_key().z);
  EXPECT_EQ(credentials_.x, owner_->master_key().x);
}

TEST_F(CloudSystemTest, DynamicsFlowThroughTheServer) {
  Channel channel(rsse_server_);
  DataUser user(credentials_, channel);
  const std::size_t before = user.ranked_search("network", 0).size();

  ir::Document doc{ir::file_id(5000), "added.txt",
                   "network network network discussion of routing"};
  owner_->add_document(rsse_server_, doc);
  const auto after = user.ranked_search("network", 0);
  EXPECT_EQ(after.size(), before + 1);
  const bool found = std::any_of(after.begin(), after.end(), [&](const RetrievedFile& f) {
    return f.document.id == ir::file_id(5000) && f.document.text == doc.text;
  });
  EXPECT_TRUE(found);

  owner_->remove_document(rsse_server_, doc);
  EXPECT_EQ(user.ranked_search("network", 0).size(), before);
}

TEST_F(CloudSystemTest, ServerStateAccounting) {
  EXPECT_EQ(rsse_server_.num_files(), corpus_.size());
  EXPECT_GT(rsse_server_.stored_bytes(), 0u);
  EXPECT_GT(rsse_server_.index().num_rows(), 0u);
}

TEST_F(CloudSystemTest, MultiSearchConjunctiveAndDisjunctive) {
  Channel channel(rsse_server_);
  DataUser user(credentials_, channel);

  // Single keyword: both connectives equal ordinary ranked search.
  const auto single = user.multi_search({"network"}, true, 0);
  const auto direct = user.ranked_search("network", 0);
  ASSERT_EQ(single.size(), direct.size());
  for (std::size_t i = 0; i < single.size(); ++i)
    EXPECT_EQ(single[i].document.id, direct[i].document.id);

  // AND with an absent keyword: empty. OR with it: unchanged set.
  EXPECT_TRUE(user.multi_search({"network", "qqqabsent"}, true, 0).empty());
  const auto disjunctive = user.multi_search({"network", "qqqabsent"}, false, 0);
  EXPECT_EQ(disjunctive.size(), direct.size());

  // Files decrypt correctly and top-k truncates.
  const auto top3 = user.multi_search({"network"}, false, 3);
  ASSERT_EQ(top3.size(), 3u);
  for (const auto& f : top3)
    EXPECT_EQ(f.document.text, corpus_.by_id(f.document.id).text);

  // No keyword surviving normalization is a client-side error.
  EXPECT_THROW(user.multi_search({"the", "..."}, true, 0), InvalidArgument);
}

TEST_F(CloudSystemTest, MalformedRpcIsRejected) {
  EXPECT_THROW(rsse_server_.handle(MessageType::kRankedSearch, to_bytes("junk")),
               ParseError);
  EXPECT_THROW(rsse_server_.handle(MessageType::kMultiSearch, to_bytes("junk")),
               ParseError);
  EXPECT_THROW(rsse_server_.handle(static_cast<MessageType>(99), Bytes{}),
               ProtocolError);
}

}  // namespace
}  // namespace rsse::cloud
