// Deterministic OPSE (BCLO) tests: encryption/decryption round trips,
// strict order preservation over the whole domain, determinism under a
// fixed key, key sensitivity, and the bucket-partition invariants of the
// keyed binary-search descent — parameterized over domain/range
// geometries from toy sizes up to the paper's (M=128, |R|=2^46).
#include <gtest/gtest.h>

#include <set>

#include "opse/bclo_opse.h"
#include "util/errors.h"

namespace rsse::opse {
namespace {

Bytes key(std::string_view name) { return to_bytes(name); }

struct Geometry {
  std::uint64_t domain;
  std::uint64_t range;
};

class OpseGeometry : public ::testing::TestWithParam<Geometry> {
 protected:
  OpeParams params() const { return OpeParams{GetParam().domain, GetParam().range}; }
};

TEST_P(OpseGeometry, RoundTripWholeDomain) {
  const BcloOpse cipher(key("k1"), params());
  const std::uint64_t m_max = std::min<std::uint64_t>(params().domain_size, 512);
  for (std::uint64_t m = 1; m <= m_max; ++m) {
    const std::uint64_t c = cipher.encrypt(m);
    ASSERT_GE(c, 1u);
    ASSERT_LE(c, params().range_size);
    EXPECT_EQ(cipher.decrypt(c), m) << "m=" << m;
  }
}

TEST_P(OpseGeometry, StrictOrderPreservation) {
  const BcloOpse cipher(key("k2"), params());
  const std::uint64_t m_max = std::min<std::uint64_t>(params().domain_size, 512);
  std::uint64_t prev = 0;
  for (std::uint64_t m = 1; m <= m_max; ++m) {
    const std::uint64_t c = cipher.encrypt(m);
    EXPECT_GT(c, prev) << "order violated at m=" << m;
    prev = c;
  }
}

TEST_P(OpseGeometry, DeterministicUnderFixedKey) {
  const BcloOpse a(key("k3"), params());
  const BcloOpse b(key("k3"), params());
  const std::uint64_t m_max = std::min<std::uint64_t>(params().domain_size, 64);
  for (std::uint64_t m = 1; m <= m_max; ++m) EXPECT_EQ(a.encrypt(m), b.encrypt(m));
}

TEST_P(OpseGeometry, BucketsAreDisjointOrderedAndCoverCiphertexts) {
  const BcloOpse cipher(key("k4"), params());
  const std::uint64_t m_max = std::min<std::uint64_t>(params().domain_size, 256);
  std::uint64_t prev_hi = 0;
  for (std::uint64_t m = 1; m <= m_max; ++m) {
    const Bucket b = cipher.bucket_of(m);
    ASSERT_GE(b.lo, 1u);
    ASSERT_LE(b.hi, params().range_size);
    ASSERT_LE(b.lo, b.hi);
    EXPECT_GT(b.lo, prev_hi) << "buckets overlap or are unordered at m=" << m;
    prev_hi = b.hi;
    // The drawn ciphertext lies inside its own bucket.
    EXPECT_TRUE(b.contains(cipher.encrypt(m)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, OpseGeometry,
    ::testing::Values(Geometry{2, 2},                // minimal
                      Geometry{2, 8},                // tiny domain, slack range
                      Geometry{16, 16},              // forced bijection
                      Geometry{7, 40},               // odd sizes
                      Geometry{128, 1 << 20},        // mid
                      Geometry{128, 1ull << 46},     // the paper's setup
                      Geometry{1024, 1ull << 34},    // larger domain
                      Geometry{300, 1000}));         // tight non-power-of-two

TEST(Opse, EqualDomainAndRangeIsIdentityLikePermutation) {
  // M == N forces every bucket to a single point: Enc is a bijection of
  // {1..N} and decrypt inverts it everywhere.
  const OpeParams p{64, 64};
  const BcloOpse cipher(key("bijection"), p);
  std::set<std::uint64_t> seen;
  for (std::uint64_t m = 1; m <= 64; ++m) {
    const std::uint64_t c = cipher.encrypt(m);
    EXPECT_TRUE(seen.insert(c).second) << "duplicate ciphertext " << c;
    EXPECT_EQ(cipher.decrypt(c), m);
  }
  EXPECT_EQ(*seen.begin(), 1u);
  EXPECT_EQ(*seen.rbegin(), 64u);
}

TEST(Opse, DifferentKeysProduceDifferentMappings) {
  const OpeParams p{128, 1ull << 30};
  const BcloOpse a(key("alpha"), p);
  const BcloOpse b(key("beta"), p);
  int diffs = 0;
  for (std::uint64_t m = 1; m <= 128; ++m)
    if (a.encrypt(m) != b.encrypt(m)) ++diffs;
  EXPECT_GT(diffs, 100);  // overwhelming majority must differ
}

TEST(Opse, DecryptRejectsOutOfRangeCiphertext) {
  const BcloOpse cipher(key("k"), OpeParams{8, 64});
  EXPECT_THROW(cipher.decrypt(0), InvalidArgument);
  EXPECT_THROW(cipher.decrypt(65), InvalidArgument);
}

TEST(Opse, EncryptRejectsOutOfDomainPlaintext) {
  const BcloOpse cipher(key("k"), OpeParams{8, 64});
  EXPECT_THROW(cipher.encrypt(0), InvalidArgument);
  EXPECT_THROW(cipher.encrypt(9), InvalidArgument);
}

TEST(Opse, RejectsBadParams) {
  EXPECT_THROW(BcloOpse(key("k"), OpeParams{0, 8}), InvalidArgument);
  EXPECT_THROW(BcloOpse(key("k"), OpeParams{9, 8}), InvalidArgument);
  EXPECT_THROW(BcloOpse(Bytes{}, OpeParams{4, 8}), InvalidArgument);
}

TEST(Opse, SlackRangeValuesDecryptToNeighborOrThrow) {
  // Arbitrary range probes either fall in some bucket (and decrypt) or in
  // inter-bucket slack (and throw) — never crash or mis-map.
  const OpeParams p{8, 256};
  const BcloOpse cipher(key("slack"), p);
  int mapped = 0;
  int slack = 0;
  for (std::uint64_t c = 1; c <= 256; ++c) {
    try {
      const std::uint64_t m = cipher.decrypt(c);
      ASSERT_GE(m, 1u);
      ASSERT_LE(m, 8u);
      EXPECT_TRUE(cipher.bucket_of(m).contains(c));
      ++mapped;
    } catch (const InvalidArgument&) {
      ++slack;
    }
  }
  EXPECT_GT(mapped, 0);
  EXPECT_EQ(mapped + slack, 256);
}

}  // namespace
}  // namespace rsse::opse
