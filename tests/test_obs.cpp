// Observability subsystem unit tests: instrument semantics (including
// the lock-free hot paths under concurrency), registry idempotence and
// rendering, the single shared binned-quantile implementation, trace
// recording and wire round-trips, the slow-query log, and the HTTP
// scrape endpoint.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/scrape.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "util/errors.h"
#include "util/histogram.h"

namespace rsse {
namespace {

// ------------------------------------------------------------- instruments

TEST(ObsMetrics, CounterCountsAndResets) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("rsse_test_total", "help");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeMovesBothWays) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("rsse_test_gauge", "help");
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);
}

TEST(ObsMetrics, HistogramBucketsCumulativeCountAndSum) {
  obs::MetricsRegistry registry;
  obs::HistogramMetric& h =
      registry.histogram("rsse_test_seconds", "help", {1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket le=1
  h.observe(1.5);   // bucket le=2
  h.observe(3.0);   // bucket le=4
  h.observe(100.0); // +Inf overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(ObsMetrics, InstrumentsAreExactUnderConcurrentWriters) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("rsse_test_total", "help");
  obs::HistogramMetric& h =
      registry.histogram("rsse_test_seconds", "help", obs::log_bounds());
  constexpr int kThreads = 8;
  constexpr int kEach = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kEach; ++i) {
        c.inc();
        h.observe(1e-4);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kEach);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kEach);
  EXPECT_NEAR(h.sum(), kThreads * kEach * 1e-4, 1e-6);
}

// ---------------------------------------------------------------- registry

TEST(ObsRegistry, RegistrationIsIdempotentByNameAndLabels) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("rsse_x_total", "help", {{"k", "v"}});
  obs::Counter& b = registry.counter("rsse_x_total", "help", {{"k", "v"}});
  obs::Counter& other = registry.counter("rsse_x_total", "help", {{"k", "w"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  EXPECT_EQ(registry.family_count(), 1u);
}

TEST(ObsRegistry, RejectsTypeConflictsAndBadNames) {
  obs::MetricsRegistry registry;
  registry.counter("rsse_x_total", "help");
  EXPECT_THROW(registry.gauge("rsse_x_total", "help"), InvalidArgument);
  EXPECT_THROW(registry.counter("0bad", "help"), InvalidArgument);
  EXPECT_THROW(registry.counter("has space", "help"), InvalidArgument);
}

TEST(ObsRegistry, PrometheusRenderingIsWellFormed) {
  obs::MetricsRegistry registry;
  registry.counter("rsse_req_total", "requests", {{"type", "a"}}).inc(3);
  registry.gauge("rsse_rows", "rows").set(7);
  registry.histogram("rsse_lat_seconds", "latency", {0.1, 1.0}).observe(0.05);
  const std::string text = registry.render_prometheus();

  // Every family leads with HELP + TYPE; histogram series are cumulative
  // and end with +Inf, _sum and _count.
  EXPECT_NE(text.find("# HELP rsse_req_total requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rsse_req_total counter"), std::string::npos);
  EXPECT_NE(text.find("rsse_req_total{type=\"a\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rsse_rows gauge"), std::string::npos);
  EXPECT_NE(text.find("rsse_rows 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rsse_lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("rsse_lat_seconds_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("rsse_lat_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("rsse_lat_seconds_sum"), std::string::npos);

  // Structural sweep: every non-comment line is "name{labels} value" with
  // a parseable value.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

TEST(ObsRegistry, LabelCardinalityCapCollapsesNewSeriesToOverflow) {
  // Pin the bound the multi-tenant host relies on: label values fed from
  // external input (tenant ids) cannot grow a family past the cap.
  obs::MetricsRegistry registry;
  registry.set_label_cardinality_cap(2);
  EXPECT_EQ(registry.label_cardinality_cap(), 2u);

  obs::Counter& a = registry.counter("rsse_t_total", "help", {{"tenant", "a"}});
  obs::Counter& b = registry.counter("rsse_t_total", "help", {{"tenant", "b"}});
  EXPECT_EQ(registry.series_count("rsse_t_total"), 2u);

  // At the cap, every NEW label set lands on one shared overflow series:
  // label keys preserved, values replaced by "overflow".
  obs::Counter& c = registry.counter("rsse_t_total", "help", {{"tenant", "c"}});
  obs::Counter& d = registry.counter("rsse_t_total", "help", {{"tenant", "d"}});
  EXPECT_EQ(&c, &d);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.series_count("rsse_t_total"), 3u);  // a, b, overflow
  c.inc(2);
  EXPECT_NE(registry.render_prometheus().find("rsse_t_total{tenant=\"overflow\"} 2"),
            std::string::npos);

  // Existing series keep resolving to their own instruments past the cap.
  EXPECT_EQ(&registry.counter("rsse_t_total", "help", {{"tenant", "b"}}), &b);

  // Unlabeled series are exempt (they cannot be externally driven).
  obs::Counter& bare = registry.counter("rsse_bare_total", "help");
  EXPECT_EQ(&registry.counter("rsse_bare_total", "help"), &bare);

  // Zero disables the cap entirely.
  obs::MetricsRegistry unbounded;
  unbounded.set_label_cardinality_cap(0);
  for (int i = 0; i < 50; ++i)
    unbounded.counter("rsse_u_total", "help", {{"tenant", std::to_string(i)}});
  EXPECT_EQ(unbounded.series_count("rsse_u_total"), 50u);
}

TEST(ObsRegistry, JsonRenderingContainsFamiliesAndQuantiles) {
  obs::MetricsRegistry registry;
  registry.counter("rsse_req_total", "requests").inc(2);
  auto& h = registry.histogram("rsse_lat_seconds", "latency", obs::log_bounds());
  for (int i = 0; i < 100; ++i) h.observe(1e-3);
  const std::string json = registry.render_json();
  EXPECT_NE(json.find("\"rsse_req_total\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ObsRegistry, HistogramQuantileIsSane) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("rsse_lat_seconds", "latency", obs::log_bounds());
  for (int i = 0; i < 1000; ++i) h.observe(1e-3);
  // All mass sits in the bucket containing 1e-3: the quantile must land
  // inside that bucket's edges (log-spaced, ~26% wide).
  EXPECT_NEAR(h.quantile(0.5), 1e-3, 0.3e-3);
  EXPECT_NEAR(h.quantile(0.99), 1e-3, 0.3e-3);
}

// --------------------------------------------- util/histogram: one quantile

TEST(ObsQuantileCore, BinnedQuantileInterpolatesAndClamps) {
  // 10 counts uniform over [0,1): median at 0.5 exactly.
  const std::vector<double> edges = {0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<std::uint64_t> counts = {10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(binned_quantile(edges, counts, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(binned_quantile(edges, counts, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binned_quantile(edges, counts, 1.0), 1.0);
  // Empty: the lower edge, not NaN.
  EXPECT_DOUBLE_EQ(binned_quantile(edges, {0, 0, 0, 0}, 0.5), 0.0);
  EXPECT_THROW((void)binned_quantile(edges, counts, 1.5), InvalidArgument);
  EXPECT_THROW((void)binned_quantile({1.0}, {}, 0.5), InvalidArgument);
}

TEST(ObsQuantileCore, UtilHistogramMaxEdgeLandsInLastBin) {
  // Regression: a sample exactly at hi must land in the last bin, and the
  // last bin's upper edge must be exactly hi (no accumulated drift).
  Histogram h(0.0, 1.0, 7);
  h.add(1.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.count(6), 1u);
  EXPECT_DOUBLE_EQ(h.bin_hi(6), 1.0);
  // And the quantile of that single max sample stays within the range.
  EXPECT_LE(h.quantile(1.0), 1.0);
}

TEST(ObsQuantileCore, UtilHistogramQuantileMatchesBinnedQuantile) {
  Histogram h(0.0, 10.0, 10);
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;
  for (std::size_t i = 0; i < 10; ++i) {
    for (int j = 0; j < static_cast<int>(i) + 1; ++j)
      h.add(static_cast<double>(i) + 0.5);
  }
  edges.push_back(0.0);
  for (std::size_t i = 0; i < 10; ++i) edges.push_back(h.bin_hi(i));
  for (std::size_t i = 0; i < 10; ++i) counts.push_back(h.count(i));
  for (const double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(h.quantile(q), binned_quantile(edges, counts, q));
}

// ------------------------------------------------------------------- spans

TEST(ObsTrace, SpanScopeRecordsTreeAndEvents) {
  obs::TraceRecorder recorder;
  {
    obs::SpanScope root(&recorder, "root", "here");
    obs::SpanScope child(&recorder, "child", "there", root.span_id());
    child.event("hit", "detail");
    child.set_status("error");
  }
  const auto spans = recorder.spans();
  ASSERT_EQ(spans.size(), 2u);
  // spans() sorts by start time: root first.
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent_span_id, spans[0].span_id);
  EXPECT_EQ(spans[0].trace_id, recorder.trace_id());
  EXPECT_EQ(spans[1].status, "error");
  ASSERT_EQ(spans[1].events.size(), 1u);
  EXPECT_EQ(spans[1].events[0].name, "hit");
  EXPECT_GE(spans[1].end_ns, spans[1].start_ns);
}

TEST(ObsTrace, NullRecorderIsInert) {
  obs::SpanScope scope(nullptr, "noop", "nowhere");
  EXPECT_FALSE(scope.active());
  EXPECT_EQ(scope.span_id(), 0u);
  scope.event("ignored");  // must not crash
}

TEST(ObsTrace, SpanIdsAreUniqueAndNonZero) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = obs::next_span_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(ObsTrace, SpansRoundTripTheWireFormat) {
  obs::TraceRecorder recorder;
  {
    obs::SpanScope root(&recorder, "server.ranked_search", "server");
    root.event("ranked", "17 hits");
    obs::SpanScope child(&recorder, "server.parse", "server", root.span_id());
  }
  const auto original = recorder.spans();
  const Bytes wire = obs::serialize_spans(original);
  const auto decoded = obs::deserialize_spans(wire);
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i].trace_id, original[i].trace_id);
    EXPECT_EQ(decoded[i].span_id, original[i].span_id);
    EXPECT_EQ(decoded[i].parent_span_id, original[i].parent_span_id);
    EXPECT_EQ(decoded[i].name, original[i].name);
    EXPECT_EQ(decoded[i].node, original[i].node);
    EXPECT_EQ(decoded[i].status, original[i].status);
    EXPECT_EQ(decoded[i].start_ns, original[i].start_ns);
    EXPECT_EQ(decoded[i].end_ns, original[i].end_ns);
    ASSERT_EQ(decoded[i].events.size(), original[i].events.size());
    for (std::size_t e = 0; e < original[i].events.size(); ++e) {
      EXPECT_EQ(decoded[i].events[e].name, original[i].events[e].name);
      EXPECT_EQ(decoded[i].events[e].detail, original[i].events[e].detail);
    }
  }
  EXPECT_THROW(obs::deserialize_spans(Bytes{1, 2, 3}), ParseError);
}

TEST(ObsTrace, TraceContextRoundTrips) {
  obs::TraceContext ctx;
  ctx.trace_id = 0x1122334455667788ull;
  ctx.parent_span_id = 0x99aabbccddeeff00ull;
  ctx.sampled = true;
  Bytes wire;
  ctx.encode(wire);
  ASSERT_EQ(wire.size(), obs::TraceContext::kWireSize);
  ByteReader reader(wire);
  const obs::TraceContext back = obs::TraceContext::decode(reader);
  EXPECT_EQ(back.trace_id, ctx.trace_id);
  EXPECT_EQ(back.parent_span_id, ctx.parent_span_id);
  EXPECT_TRUE(back.sampled);
}

TEST(ObsTrace, FormatTraceIndentsChildrenUnderParents) {
  obs::TraceRecorder recorder;
  {
    obs::SpanScope root(&recorder, "root", "client");
    obs::SpanScope child(&recorder, "child", "server", root.span_id());
    child.event("note");
  }
  const std::string text = obs::format_trace(recorder.spans());
  const auto root_at = text.find("+ root");
  const auto child_at = text.find("+ child");
  ASSERT_NE(root_at, std::string::npos);
  ASSERT_NE(child_at, std::string::npos);
  EXPECT_LT(root_at, child_at);
  EXPECT_NE(text.find("@"), std::string::npos);  // event line
}

// ---------------------------------------------------------- slow-query log

TEST(ObsSlowQueryLog, ThresholdGatesRecording) {
  obs::SlowQueryLog log(4);
  EXPECT_FALSE(log.maybe_record("q", 10.0, {}));  // disabled by default
  log.set_threshold_ms(5.0);
  EXPECT_FALSE(log.maybe_record("fast", 0.001, {}));
  EXPECT_TRUE(log.maybe_record("slow", 0.010, {}));
  ASSERT_EQ(log.entries().size(), 1u);
  EXPECT_EQ(log.entries()[0].operation, "slow");
  EXPECT_EQ(log.total_recorded(), 1u);
}

TEST(ObsSlowQueryLog, CapacityEvictsOldestFirst) {
  obs::SlowQueryLog log(2);
  log.set_threshold_ms(0.001);
  EXPECT_TRUE(log.maybe_record("a", 1.0, {}));
  EXPECT_TRUE(log.maybe_record("b", 1.0, {}));
  EXPECT_TRUE(log.maybe_record("c", 1.0, {}));
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].operation, "b");  // oldest surviving first
  EXPECT_EQ(entries[1].operation, "c");
  EXPECT_EQ(log.total_recorded(), 3u);
  log.clear();
  EXPECT_TRUE(log.entries().empty());
}

// ----------------------------------------------------------------- scrape

TEST(ObsScrape, ServesPrometheusAndJsonOverHttp) {
  obs::MetricsRegistry server_registry;
  server_registry.counter("rsse_server_requests_total", "reqs").inc(5);
  obs::MetricsRegistry cluster_registry;
  cluster_registry.counter("rsse_cluster_failovers_total", "fo").inc(1);

  obs::ScrapeEndpoint endpoint({obs::ScrapeSource{"server", &server_registry},
                                obs::ScrapeSource{"cluster", &cluster_registry}});
  const std::string text = obs::http_get(endpoint.port(), "/metrics");
  EXPECT_NE(text.find("rsse_server_requests_total 5"), std::string::npos);
  EXPECT_NE(text.find("rsse_cluster_failovers_total 1"), std::string::npos);

  const std::string json = obs::http_get(endpoint.port(), "/metrics.json");
  EXPECT_NE(json.find("\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster\""), std::string::npos);

  EXPECT_THROW((void)obs::http_get(endpoint.port(), "/nope"), ProtocolError);
  EXPECT_GE(endpoint.requests_served(), 3u);
}

TEST(ObsScrape, RejectsNullSourcesAndDuplicateNames) {
  obs::MetricsRegistry registry;
  EXPECT_THROW(obs::ScrapeEndpoint({obs::ScrapeSource{"a", nullptr}}),
               InvalidArgument);
  EXPECT_THROW(obs::ScrapeEndpoint({obs::ScrapeSource{"a", &registry},
                                    obs::ScrapeSource{"a", &registry}}),
               InvalidArgument);
}

}  // namespace
}  // namespace rsse
