// Capability-scoped search authorization (ext/capability.h): authorized
// keywords work end-to-end, unauthorized keywords are uncomputable (the
// bundle simply holds no trapdoor), sealing fails closed, serialization
// round-trips.
#include <gtest/gtest.h>

#include "cloud/data_owner.h"
#include "cloud/restricted_user.h"
#include "crypto/csprng.h"
#include "ext/capability.h"
#include "ir/corpus_gen.h"
#include "sse/rsse_scheme.h"
#include "util/errors.h"

namespace rsse::ext {
namespace {

class CapabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 30;
    opts.vocabulary_size = 200;
    opts.min_tokens = 40;
    opts.max_tokens = 120;
    opts.injected.push_back(ir::InjectedKeyword{"network", 18, 0.3, 20});
    opts.injected.push_back(ir::InjectedKeyword{"cipher", 12, 0.4, 15});
    opts.seed = 29;
    corpus_ = ir::generate_corpus(opts);
    key_ = sse::keygen();
    scheme_ = std::make_unique<sse::RsseScheme>(key_);
    built_ = std::make_unique<sse::RsseScheme::BuildResult>(scheme_->build_index(corpus_));
    generator_ = std::make_unique<sse::TrapdoorGenerator>(key_.x, key_.y,
                                                          key_.params.p_bits);
  }

  ir::Corpus corpus_;
  sse::MasterKey key_;
  std::unique_ptr<sse::RsseScheme> scheme_;
  std::unique_ptr<sse::RsseScheme::BuildResult> built_;
  std::unique_ptr<sse::TrapdoorGenerator> generator_;
};

TEST_F(CapabilityTest, GrantedKeywordSearchesEndToEnd) {
  const auto bundle = make_capability_bundle(*generator_, {"network"});
  const auto trapdoor = bundle.trapdoor_for("Networks", scheme_->analyzer());
  ASSERT_TRUE(trapdoor.has_value());  // inflected query normalizes into the grant
  const auto results = sse::RsseScheme::search(built_->index, *trapdoor);
  EXPECT_EQ(results.size(), 18u);
}

TEST_F(CapabilityTest, UngrantedKeywordHasNoTrapdoor) {
  const auto bundle = make_capability_bundle(*generator_, {"network"});
  EXPECT_FALSE(bundle.trapdoor_for("cipher", scheme_->analyzer()).has_value());
  EXPECT_FALSE(bundle.trapdoor_for("the", scheme_->analyzer()).has_value());
}

TEST_F(CapabilityTest, GrantsDeduplicateAndNormalize) {
  const auto bundle =
      make_capability_bundle(*generator_, {"Networking", "networks", "cipher"});
  EXPECT_EQ(bundle.size(), 2u);
  const auto keywords = bundle.keywords();
  EXPECT_NE(std::find(keywords.begin(), keywords.end(), "network"), keywords.end());
  EXPECT_THROW(make_capability_bundle(*generator_, {"the", "..."}), InvalidArgument);
}

TEST_F(CapabilityTest, BundleTrapdoorEqualsDirectTrapdoor) {
  const auto bundle = make_capability_bundle(*generator_, {"cipher"});
  const auto granted = bundle.trapdoor_for("cipher", scheme_->analyzer());
  ASSERT_TRUE(granted.has_value());
  EXPECT_EQ(*granted, scheme_->trapdoor("cipher"));
}

TEST_F(CapabilityTest, SerializeRoundTrip) {
  const auto bundle = make_capability_bundle(*generator_, {"network", "cipher"});
  const auto restored = CapabilityBundle::deserialize(bundle.serialize());
  EXPECT_EQ(restored.size(), bundle.size());
  EXPECT_EQ(restored.keywords(), bundle.keywords());
  const auto t = restored.trapdoor_for("network", scheme_->analyzer());
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, scheme_->trapdoor("network"));
}

TEST_F(CapabilityTest, SealedBundleFailsClosed) {
  const auto bundle = make_capability_bundle(*generator_, {"network"});
  const Bytes user_key = crypto::random_bytes(32);
  const Bytes sealed = seal_capability_bundle(user_key, "dave", bundle);

  const auto opened = open_capability_bundle(user_key, "dave", sealed);
  EXPECT_EQ(opened.size(), 1u);

  EXPECT_THROW(open_capability_bundle(crypto::random_bytes(32), "dave", sealed),
               CryptoError);
  EXPECT_THROW(open_capability_bundle(user_key, "eve", sealed), CryptoError);
  Bytes tampered = sealed;
  tampered[tampered.size() / 2] ^= 1;
  EXPECT_THROW(open_capability_bundle(user_key, "dave", tampered), CryptoError);
}

TEST_F(CapabilityTest, RestrictedUserEndToEndOverTheCloud) {
  // Full-system flow: owner outsources, grants carol only "network",
  // carol searches it over the accounted channel and CANNOT query
  // anything else — she holds no key material to try.
  cloud::DataOwner owner;
  cloud::CloudServer server;
  owner.outsource_rsse(corpus_, server);
  const sse::TrapdoorGenerator owner_generator(owner.master_key().x,
                                               owner.master_key().y,
                                               owner.master_key().params.p_bits);
  const auto bundle = make_capability_bundle(owner_generator, {"network"});

  cloud::Channel channel(server);
  cloud::RestrictedDataUser carol(bundle, owner.file_master(), channel);
  EXPECT_TRUE(carol.authorized_for("Networks"));
  EXPECT_FALSE(carol.authorized_for("cipher"));
  EXPECT_EQ(carol.granted_keywords(), std::vector<std::string>{"network"});

  const auto hits = carol.ranked_search("network", 5);
  ASSERT_EQ(hits.size(), 5u);
  for (const auto& h : hits)
    EXPECT_EQ(h.document.text, corpus_.by_id(h.document.id).text);
  EXPECT_THROW(carol.ranked_search("cipher", 5), ProtocolError);
  EXPECT_EQ(channel.stats().round_trips, 1u);  // the denied query never left
}

TEST_F(CapabilityTest, DeserializeRejectsGarbage) {
  EXPECT_THROW(CapabilityBundle::deserialize(Bytes(5, 0)), ParseError);
  Bytes blob = make_capability_bundle(*generator_, {"network"}).serialize();
  blob.push_back(0);
  EXPECT_THROW(CapabilityBundle::deserialize(blob), ParseError);
}

}  // namespace
}  // namespace rsse::ext
