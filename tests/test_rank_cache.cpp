// Server-side rank cache: hit/miss accounting, result equivalence with
// the uncached path, and invalidation on index mutation.
#include <gtest/gtest.h>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"

namespace rsse::cloud {
namespace {

class RankCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 40;
    opts.vocabulary_size = 200;
    opts.min_tokens = 40;
    opts.max_tokens = 150;
    opts.injected.push_back(ir::InjectedKeyword{"network", 25, 0.3, 30});
    opts.seed = 17;
    corpus_ = ir::generate_corpus(opts);
    owner_ = std::make_unique<DataOwner>();
    owner_->outsource_rsse(corpus_, server_);
    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = AuthorizationService::open(user_key, "u",
                                              owner_->enroll_user(user_key, "u"));
  }

  std::vector<std::uint64_t> search_ids(std::size_t k) {
    Channel channel(server_);
    DataUser user(credentials_, channel);
    std::vector<std::uint64_t> ids;
    for (const auto& f : user.ranked_search("network", k))
      ids.push_back(ir::value(f.document.id));
    return ids;
  }

  ir::Corpus corpus_;
  std::unique_ptr<DataOwner> owner_;
  CloudServer server_;
  UserCredentials credentials_;
};

TEST_F(RankCacheTest, CachedResultsMatchUncached) {
  const auto uncached = search_ids(10);
  server_.set_rank_cache_enabled(true);
  const auto first = search_ids(10);   // miss, fills cache
  const auto second = search_ids(10);  // hit
  EXPECT_EQ(first, uncached);
  EXPECT_EQ(second, uncached);
  EXPECT_EQ(server_.rank_cache_misses(), 1u);
  EXPECT_EQ(server_.rank_cache_hits(), 1u);
}

TEST_F(RankCacheTest, DifferentTopKServedFromOneCachedRow) {
  server_.set_rank_cache_enabled(true);
  const auto top5 = search_ids(5);
  const auto top20 = search_ids(20);  // larger k, same cached full row
  EXPECT_EQ(server_.rank_cache_misses(), 1u);
  EXPECT_EQ(server_.rank_cache_hits(), 1u);
  ASSERT_GE(top20.size(), top5.size());
  for (std::size_t i = 0; i < top5.size(); ++i) EXPECT_EQ(top20[i], top5[i]);
}

TEST_F(RankCacheTest, IndexMutationInvalidatesCache) {
  server_.set_rank_cache_enabled(true);
  search_ids(5);
  EXPECT_EQ(server_.rank_cache_misses(), 1u);
  ir::Document doc{ir::file_id(7777), "new.txt",
                   "network network network very relevant new document"};
  owner_->add_document(server_, doc);  // update_index() clears the cache
  const auto after = search_ids(0);
  EXPECT_EQ(server_.rank_cache_misses(), 2u);  // refilled after invalidation
  EXPECT_TRUE(std::any_of(after.begin(), after.end(),
                          [](std::uint64_t id) { return id == 7777; }));
}

TEST_F(RankCacheTest, DisablingDropsTheCache) {
  server_.set_rank_cache_enabled(true);
  search_ids(5);
  server_.set_rank_cache_enabled(false);
  const auto ids = search_ids(5);  // uncached path
  EXPECT_FALSE(ids.empty());
  server_.set_rank_cache_enabled(true);
  search_ids(5);
  EXPECT_EQ(server_.rank_cache_misses(), 2u);  // cache was really dropped
}

}  // namespace
}  // namespace rsse::cloud
