// Split-cache correctness: cache-assisted mapping must be bit-identical
// to the uncached path, the cache stays within its 2M-1 window bound,
// and a full-list mapping through one cache touches each window's HGD
// only once (indirectly: measured as wall-clock dominance, asserted as
// equality of outputs here and as a speedup in the Table I bench).
#include <gtest/gtest.h>

#include "opse/opm.h"
#include "util/rng.h"

namespace rsse::opse {
namespace {

TEST(SplitCache, CachedMappingBitIdenticalToUncached) {
  const OneToManyOpm opm(to_bytes("cache-key"), OpeParams{128, 1ull << 46});
  SplitCache cache;
  Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t m = rng.uniform_in(1, 128);
    const std::uint64_t id = rng.next_u64();
    ASSERT_EQ(opm.map(m, id, cache), opm.map(m, id)) << "m=" << m;
  }
  EXPECT_GT(cache.size(), 0u);
}

TEST(SplitCache, SizeBoundedByWindowCount) {
  const std::uint64_t domain = 64;
  const OneToManyOpm opm(to_bytes("bound-key"), OpeParams{domain, 1ull << 24});
  SplitCache cache;
  for (std::uint64_t m = 1; m <= domain; ++m)
    for (std::uint64_t id = 0; id < 4; ++id) (void)opm.map(m, id, cache);
  // The descent tree over M leaves has at most 2M-1 internal windows.
  EXPECT_LE(cache.size(), 2 * domain - 1);
  EXPECT_GE(cache.size(), domain - 1);  // full domain touches all internals
}

TEST(SplitCache, RepeatMappingsAddNoWindows) {
  const OneToManyOpm opm(to_bytes("repeat-key"), OpeParams{32, 1 << 20});
  SplitCache cache;
  (void)opm.map(7, 1, cache);
  const std::size_t after_first = cache.size();
  for (int i = 0; i < 100; ++i) (void)opm.map(7, static_cast<std::uint64_t>(i), cache);
  EXPECT_EQ(cache.size(), after_first);  // same plaintext, same path
}

TEST(SplitCache, ManualFindInsertRoundTrip) {
  SplitCache cache;
  EXPECT_EQ(cache.find(0, 8, 0, 64), nullptr);
  cache.insert(0, 8, 0, 64, SplitCache::Split{3, 32});
  const auto* hit = cache.find(0, 8, 0, 64);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->x, 3u);
  EXPECT_EQ(hit->y, 32u);
  EXPECT_EQ(cache.find(0, 8, 0, 65), nullptr);  // window coords all matter
  EXPECT_EQ(cache.find(1, 8, 0, 64), nullptr);
}

}  // namespace
}  // namespace rsse::opse
