// Basic Scheme (Sec. III-C) end-to-end: search correctness (exactly
// F(w)), user-side ranking equals plaintext ranking, padding uniformity
// (the SSE leakage profile), and trapdoor behaviour.
#include <gtest/gtest.h>

#include <set>

#include "ir/corpus_gen.h"
#include "ir/scoring.h"
#include "sse/basic_scheme.h"
#include "util/errors.h"

namespace rsse::sse {
namespace {

class BasicSchemeTest : public ::testing::Test {
 protected:
  static ir::CorpusGenOptions corpus_options() {
    ir::CorpusGenOptions opts;
    opts.num_documents = 60;
    opts.vocabulary_size = 400;
    opts.min_tokens = 60;
    opts.max_tokens = 300;
    opts.injected.push_back(ir::InjectedKeyword{"network", 35, 0.3, 50});
    opts.injected.push_back(ir::InjectedKeyword{"protocol", 12, 0.5, 20});
    opts.seed = 2024;
    return opts;
  }

  void SetUp() override {
    corpus_ = ir::generate_corpus(corpus_options());
    scheme_ = std::make_unique<BasicScheme>(keygen());
    index_ = scheme_->build_index(corpus_, &stats_);
    inverted_ = ir::InvertedIndex::build(corpus_, scheme_->analyzer());
  }

  ir::Corpus corpus_;
  std::unique_ptr<BasicScheme> scheme_;
  SecureIndex index_;
  BasicScheme::BuildStats stats_;
  ir::InvertedIndex inverted_;
};

TEST_F(BasicSchemeTest, SearchReturnsExactlyTheMatchingFiles) {
  const auto results = BasicScheme::search(index_, scheme_->trapdoor("network"));
  std::set<std::uint64_t> got;
  for (const auto& e : results) got.insert(ir::value(e.file));

  std::set<std::uint64_t> expected;
  for (const auto& p : *inverted_.postings("network")) expected.insert(ir::value(p.file));
  EXPECT_EQ(got, expected);
  EXPECT_EQ(got.size(), 35u);
}

TEST_F(BasicSchemeTest, UserRankingMatchesPlaintextRanking) {
  const auto results = BasicScheme::search(index_, scheme_->trapdoor("network"));
  const auto ranked = scheme_->rank(results);
  const auto plaintext = inverted_.ranked_postings("network");
  ASSERT_EQ(ranked.size(), plaintext.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].file, plaintext[i].file) << "rank " << i;
    EXPECT_NEAR(ranked[i].score, plaintext[i].score, 1e-12);
  }
}

TEST_F(BasicSchemeTest, EveryRowIsPaddedToNu) {
  EXPECT_EQ(stats_.pad_width, inverted_.max_posting_length());
  for (const Bytes& label : index_.labels()) {
    EXPECT_EQ(index_.row(label)->size(), stats_.pad_width)
        << "a row leaks its true posting count";
  }
}

TEST_F(BasicSchemeTest, BuildStatsAreConsistent) {
  std::uint64_t total_postings = 0;
  for (const auto& term : inverted_.terms())
    total_postings += inverted_.postings(term)->size();
  EXPECT_EQ(stats_.num_postings, total_postings);
  EXPECT_EQ(index_.num_rows(), inverted_.num_terms());
  EXPECT_GT(stats_.raw_index_seconds, 0.0);
  EXPECT_GT(stats_.encrypt_seconds, 0.0);
}

TEST_F(BasicSchemeTest, TrapdoorIsDeterministicAndNormalized) {
  const Trapdoor a = scheme_->trapdoor("network");
  const Trapdoor b = scheme_->trapdoor("Networking");  // normalizes the same
  EXPECT_EQ(a, b);
  EXPECT_THROW(scheme_->trapdoor("the"), InvalidArgument);  // stop word
}

TEST_F(BasicSchemeTest, UnknownKeywordFindsNothing) {
  const auto results = BasicScheme::search(index_, scheme_->trapdoor("zzzmissing"));
  EXPECT_TRUE(results.empty());
}

TEST_F(BasicSchemeTest, ForeignTrapdoorFindsNothing) {
  // A trapdoor from a different key must not open any row.
  const BasicScheme other(keygen());
  const auto results = BasicScheme::search(index_, other.trapdoor("network"));
  EXPECT_TRUE(results.empty());
}

TEST_F(BasicSchemeTest, ScoreDecryptionRoundTrips) {
  const auto results = BasicScheme::search(index_, scheme_->trapdoor("protocol"));
  ASSERT_FALSE(results.empty());
  for (const auto& e : results) {
    const double score = scheme_->decrypt_score(e.encrypted_score);
    const double expected = ir::score_single_keyword(
        [&] {
          for (const auto& p : *inverted_.postings("protocol"))
            if (p.file == e.file) return p.tf;
          ADD_FAILURE() << "file not in plaintext postings";
          return 1u;
        }(),
        inverted_.doc_length(e.file));
    EXPECT_NEAR(score, expected, 1e-12);
  }
}

TEST_F(BasicSchemeTest, IndexSurvivesSerialization) {
  const SecureIndex restored = SecureIndex::deserialize(index_.serialize());
  const auto results = BasicScheme::search(restored, scheme_->trapdoor("network"));
  EXPECT_EQ(results.size(), 35u);
}

}  // namespace
}  // namespace rsse::sse
