// Query-workload generator and server metrics.
#include <gtest/gtest.h>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "ir/query_workload.h"
#include "util/errors.h"

namespace rsse {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 40;
    opts.vocabulary_size = 300;
    opts.min_tokens = 50;
    opts.max_tokens = 200;
    opts.seed = 61;
    corpus_ = ir::generate_corpus(opts);
    index_ = ir::InvertedIndex::build(corpus_, ir::Analyzer());
  }

  ir::Corpus corpus_;
  ir::InvertedIndex index_;
};

TEST_F(WorkloadTest, DeterministicPerSeed) {
  ir::QueryWorkloadOptions opts;
  opts.num_queries = 200;
  opts.seed = 5;
  const ir::QueryWorkload a(index_, opts);
  const ir::QueryWorkload b(index_, opts);
  EXPECT_EQ(a.queries(), b.queries());
  opts.seed = 6;
  const ir::QueryWorkload c(index_, opts);
  EXPECT_NE(a.queries(), c.queries());
}

TEST_F(WorkloadTest, EveryQueryIsAnIndexedTerm) {
  ir::QueryWorkloadOptions opts;
  opts.num_queries = 300;
  const ir::QueryWorkload workload(index_, opts);
  EXPECT_EQ(workload.queries().size(), 300u);
  for (const std::string& q : workload.queries())
    EXPECT_NE(index_.postings(q), nullptr) << q;
}

TEST_F(WorkloadTest, ZipfSkewConcentratesOnHeadKeywords) {
  ir::QueryWorkloadOptions skewed;
  skewed.num_queries = 2000;
  skewed.zipf_exponent = 1.3;
  const ir::QueryWorkload workload(index_, skewed);
  // The head keyword dominates and the tail is long.
  EXPECT_GT(workload.peak_keyword_count(), 200u);
  EXPECT_GT(workload.distinct_keywords(), 20u);

  ir::QueryWorkloadOptions uniform;
  uniform.num_queries = 2000;
  uniform.zipf_exponent = 0.0;
  const ir::QueryWorkload flat(index_, uniform);
  EXPECT_LT(flat.peak_keyword_count(), workload.peak_keyword_count());
  EXPECT_GT(flat.distinct_keywords(), workload.distinct_keywords());
}

TEST_F(WorkloadTest, MaxVocabularyRestrictsToHeadTerms) {
  ir::QueryWorkloadOptions opts;
  opts.num_queries = 500;
  opts.max_vocabulary = 5;
  const ir::QueryWorkload workload(index_, opts);
  EXPECT_LE(workload.distinct_keywords(), 5u);
  // Restricted queries hit high-document-frequency terms.
  for (const std::string& q : workload.queries())
    EXPECT_GE(index_.document_frequency(q), index_.document_frequency("network") > 0
                                                ? 1u
                                                : 1u);
}

TEST_F(WorkloadTest, Preconditions) {
  ir::QueryWorkloadOptions opts;
  opts.num_queries = 0;
  EXPECT_THROW(ir::QueryWorkload(index_, opts), InvalidArgument);
}

TEST(ServerMetrics, CountersTrackEveryRequestType) {
  ir::CorpusGenOptions opts;
  opts.num_documents = 20;
  opts.vocabulary_size = 120;
  opts.min_tokens = 30;
  opts.max_tokens = 100;
  opts.injected.push_back(ir::InjectedKeyword{"network", 12, 0.3, 20});
  opts.seed = 63;
  const ir::Corpus corpus = ir::generate_corpus(opts);

  cloud::DataOwner owner;
  cloud::CloudServer basic_server;
  owner.outsource_basic(corpus, basic_server);
  cloud::CloudServer rsse_server;
  owner.outsource_rsse(corpus, rsse_server);

  const Bytes user_key = crypto::random_bytes(32);
  const auto credentials = cloud::AuthorizationService::open(
      user_key, "u", owner.enroll_user(user_key, "u"));

  cloud::Channel rsse_channel(rsse_server);
  cloud::DataUser rsse_user(credentials, rsse_channel);
  rsse_user.ranked_search("network", 3);
  rsse_user.ranked_search("network", 5);

  cloud::Channel basic_channel(basic_server);
  cloud::DataUser basic_user(credentials, basic_channel);
  basic_user.basic_search_one_round("network", 3);   // kBasicFiles
  basic_user.basic_search_two_round("network", 3);   // kBasicEntries + kFetchFiles

  const auto rsse_metrics = rsse_server.metrics().snapshot();
  EXPECT_EQ(rsse_metrics.ranked_searches, 2u);
  EXPECT_EQ(rsse_metrics.files_returned, 8u);
  EXPECT_GT(rsse_metrics.result_bytes, 0u);
  EXPECT_EQ(rsse_metrics.total_requests(), 2u);

  const auto basic_metrics = basic_server.metrics().snapshot();
  EXPECT_EQ(basic_metrics.basic_file_searches, 1u);
  EXPECT_EQ(basic_metrics.basic_entry_searches, 1u);
  EXPECT_EQ(basic_metrics.fetch_requests, 1u);
  EXPECT_EQ(basic_metrics.total_requests(), 3u);
  // One-round returned all 12 matches; fetch returned the chosen 3.
  EXPECT_EQ(basic_metrics.files_returned, 15u);

  rsse_server.reset_metrics();
  EXPECT_EQ(rsse_server.metrics().snapshot().total_requests(), 0u);
}

}  // namespace
}  // namespace rsse
