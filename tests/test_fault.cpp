// Chaos suite: deadlines, deterministic fault injection, and the
// resilience layers they exercise — wire corruption must surface as
// typed errors, the ChaosProxy must bite on a real socket, and the
// transport traffic counters must stay exact under concurrency.
//
// The hung-replica / deadline-budget scenarios that used to burn real
// wall-clock here now run on virtual time in tests/test_sim.cpp
// (SimSystemTest); this file keeps the socket-based smoke coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cluster/coordinator.h"
#include "crypto/csprng.h"
#include "fault/chaos_proxy.h"
#include "fault/fault_transport.h"
#include "ir/corpus_gen.h"
#include "net/remote_channel.h"
#include "net/server.h"
#include "util/deadline.h"
#include "util/errors.h"
#include "util/stopwatch.h"

namespace rsse {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- Deadline

TEST(Deadline, UnlimitedByDefault) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.is_unlimited());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.poll_timeout_ms(), -1);
  EXPECT_EQ(deadline.remaining(), std::chrono::milliseconds::max());
  EXPECT_NO_THROW(deadline.check("test"));
  EXPECT_TRUE(deadline.tightened(0ms).is_unlimited());  // 0 budget = no cap
}

TEST(Deadline, ExpiresAndThrowsTyped) {
  const Deadline deadline = Deadline::after(10ms);
  EXPECT_FALSE(deadline.is_unlimited());
  EXPECT_LE(deadline.remaining(), 10ms);
  EXPECT_GE(deadline.poll_timeout_ms(), 0);
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining(), 0ms);
  EXPECT_EQ(deadline.poll_timeout_ms(), 0);
  EXPECT_THROW(deadline.check("test"), DeadlineExceeded);
}

TEST(Deadline, TightenedPicksTheTighterBudget) {
  EXPECT_FALSE(Deadline().tightened(50ms).is_unlimited());
  EXPECT_LE(Deadline().tightened(50ms).remaining(), 50ms);
  // An already-tight deadline is not loosened by a generous budget.
  EXPECT_LE(Deadline::after(10ms).tightened(1h).remaining(), 10ms);
  // And a generous deadline is capped by a tight budget.
  EXPECT_LE(Deadline::after(1h).tightened(10ms).remaining(), 10ms);
}

// ----------------------------------------------------------- FaultSchedule

fault::FaultSpec mixed_spec(std::uint64_t seed) {
  fault::FaultSpec spec;
  spec.delay_rate = 0.1;
  spec.disconnect_rate = 0.1;
  spec.error_rate = 0.1;
  spec.truncate_rate = 0.1;
  spec.bit_flip_rate = 0.1;
  spec.delay_min = 1ms;
  spec.delay_max = 5ms;
  spec.seed = seed;
  return spec;
}

TEST(FaultSchedule, SameSeedSameDecisions) {
  fault::FaultSchedule a(mixed_spec(42));
  fault::FaultSchedule b(mixed_spec(42));
  bool any_fault = false;
  for (int i = 0; i < 500; ++i) {
    const fault::FaultDecision da = a.next();
    const fault::FaultDecision db = b.next();
    EXPECT_EQ(da.kind, db.kind) << "diverged at draw " << i;
    EXPECT_EQ(da.delay, db.delay);
    EXPECT_EQ(da.entropy, db.entropy);
    if (da.kind != fault::FaultKind::kNone) any_fault = true;
  }
  EXPECT_TRUE(any_fault);  // 50% total rate over 500 draws
}

TEST(FaultSchedule, DifferentSeedsDiverge) {
  fault::FaultSchedule a(mixed_spec(1));
  fault::FaultSchedule b(mixed_spec(2));
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i)
    diverged = a.next().kind != b.next().kind;
  EXPECT_TRUE(diverged);
}

TEST(FaultSchedule, CountersMatchTheDrawMixRoughly) {
  fault::FaultSchedule schedule(mixed_spec(7));
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) (void)schedule.next();
  const fault::FaultCounters c = schedule.counters();
  EXPECT_EQ(c.events, static_cast<std::uint64_t>(kDraws));
  EXPECT_EQ(c.total_faults(),
            c.delays + c.disconnects + c.error_frames + c.truncations + c.bit_flips);
  // Each rate is 10%: expect each count within a wide (~6 sigma) band.
  for (const std::uint64_t count :
       {c.delays, c.disconnects, c.error_frames, c.truncations, c.bit_flips}) {
    EXPECT_GT(count, kDraws / 10 - 120u);
    EXPECT_LT(count, kDraws / 10 + 120u);
  }
}

TEST(FaultSchedule, RejectsBadSpecs) {
  fault::FaultSpec overfull;
  overfull.delay_rate = 0.7;
  overfull.disconnect_rate = 0.5;
  EXPECT_THROW(fault::FaultSchedule{overfull}, InvalidArgument);

  fault::FaultSpec inverted;
  inverted.delay_min = 10ms;
  inverted.delay_max = 1ms;
  EXPECT_THROW(fault::FaultSchedule{inverted}, InvalidArgument);
}

// ------------------------------------------------- FaultInjectingTransport

class FaultSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 40;
    opts.vocabulary_size = 120;
    opts.min_tokens = 40;
    opts.max_tokens = 120;
    opts.injected.push_back(ir::InjectedKeyword{"chaos", 25, 0.4, 20});
    opts.seed = 77;
    corpus_ = ir::generate_corpus(opts);
    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus_, server_);

    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = cloud::AuthorizationService::open(
        user_key, "u", owner_->enroll_user(user_key, "u"));
  }

  Bytes ranked_request(const std::string& keyword, std::uint64_t top_k) const {
    const sse::Trapdoor trapdoor{owner_->rsse().row_label(keyword),
                                 owner_->rsse().row_key(keyword)};
    return cloud::RankedSearchRequest{trapdoor, top_k}.serialize();
  }

  ir::Corpus corpus_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer server_;
  cloud::UserCredentials credentials_;
};

TEST_F(FaultSystemTest, InjectedDisconnectsAndErrorFramesAreTypedErrors) {
  fault::FaultSpec drop;
  drop.disconnect_rate = 1.0;
  fault::FaultInjectingTransport dropper(std::make_unique<cloud::Channel>(server_),
                                         drop);
  EXPECT_THROW(dropper.call(cloud::MessageType::kRankedSearch,
                            ranked_request("chaos", 3)),
               ProtocolError);

  fault::FaultSpec err;
  err.error_rate = 1.0;
  fault::FaultInjectingTransport erroring(std::make_unique<cloud::Channel>(server_),
                                          err);
  EXPECT_THROW(erroring.call(cloud::MessageType::kRankedSearch,
                             ranked_request("chaos", 3)),
               ProtocolError);
  EXPECT_EQ(erroring.counters().error_frames, 1u);
}

TEST_F(FaultSystemTest, CorruptedResponsesNeverPassForGoodOnes) {
  fault::FaultSpec corrupting;
  corrupting.truncate_rate = 0.5;
  corrupting.bit_flip_rate = 0.5;
  corrupting.seed = 11;
  fault::FaultInjectingTransport transport(std::make_unique<cloud::Channel>(server_),
                                           corrupting);
  const Bytes request = ranked_request("chaos", 5);
  const Bytes pristine = server_.handle(cloud::MessageType::kRankedSearch, request);

  int detected = 0;
  for (int i = 0; i < 100; ++i) {
    try {
      const Bytes response = transport.call(cloud::MessageType::kRankedSearch, request);
      // Every injected corruption alters the payload; a deserializer may
      // get lucky, but the bytes must never equal the pristine answer.
      EXPECT_NE(response, pristine);
      (void)cloud::RankedSearchResponse::deserialize(response);
    } catch (const Error&) {
      ++detected;  // typed: ParseError from the deserializer
    }
  }
  EXPECT_GT(detected, 50);  // most corruptions break the parse
  const fault::FaultCounters c = transport.counters();
  EXPECT_EQ(c.truncations + c.bit_flips, 100u);
}

// -------------------------------------------------------------- ChaosProxy

TEST_F(FaultSystemTest, ChaosProxyPassesCleanTrafficThrough) {
  net::NetworkServer endpoint(server_, 0);
  fault::ChaosProxy proxy(endpoint.port(), fault::FaultSpec{});  // no faults
  net::RemoteChannel channel(proxy.port());
  cloud::DataUser user(credentials_, channel);
  EXPECT_EQ(user.ranked_search("chaos", 5).size(), 5u);
  proxy.stop();
  endpoint.stop();
}

TEST_F(FaultSystemTest, ChaosProxyFaultsSurfaceAsTypedErrorsWithinDeadline) {
  net::NetworkServer endpoint(server_, 0);
  fault::FaultSpec spec;
  spec.delay_rate = 0.05;
  spec.disconnect_rate = 0.15;
  spec.truncate_rate = 0.15;
  spec.bit_flip_rate = 0.15;
  spec.delay_min = 1ms;
  spec.delay_max = 10ms;
  spec.seed = 23;
  fault::ChaosProxy proxy(endpoint.port(), spec);

  int successes = 0;
  int typed_errors = 0;
  for (int i = 0; i < 40; ++i) {
    try {
      // Fresh connection per iteration: an injected disconnect or torn
      // frame kills the stream, exactly like a real flaky network.
      net::RemoteChannel channel(proxy.port());
      channel.set_call_timeout(2000ms);
      cloud::DataUser user(credentials_, channel);
      if (user.ranked_search("chaos", 3).size() == 3) ++successes;
    } catch (const Error&) {
      ++typed_errors;  // ProtocolError / ParseError / DeadlineExceeded
    } catch (const std::exception& e) {
      FAIL() << "escaped non-rsse exception: " << e.what();
    }
  }
  EXPECT_EQ(successes + typed_errors, 40);
  EXPECT_GT(successes, 0);     // the path is not fully broken
  EXPECT_GT(typed_errors, 0);  // ~45% per-chunk fault mix must bite
  EXPECT_GT(proxy.counters().total_faults(), 0u);
  proxy.stop();
  endpoint.stop();
}

// ------------------------------------- transport stats under concurrency

TEST_F(FaultSystemTest, TransportCountersStayExactUnderConcurrentCalls) {
  // The ChannelStats counters are shared atomics: hammer one channel from
  // many threads and check nothing was lost (under TSan this is also the
  // data-race regression test for the old unsynchronized counters).
  cloud::Channel channel(server_);
  constexpr int kThreads = 8;
  constexpr int kCallsEach = 200;
  const Bytes ping = cloud::FetchFilesRequest{}.serialize();

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCallsEach; ++i)
        (void)channel.call(cloud::MessageType::kFetchFiles, ping);
    });
  }
  for (auto& thread : threads) thread.join();

  const cloud::ChannelStats stats = channel.stats();
  EXPECT_EQ(stats.round_trips, static_cast<std::uint64_t>(kThreads) * kCallsEach);
  EXPECT_EQ(stats.bytes_up,
            static_cast<std::uint64_t>(kThreads) * kCallsEach * (ping.size() + 1));
  EXPECT_GT(stats.bytes_down, 0u);
  channel.reset();
  EXPECT_EQ(channel.stats().round_trips, 0u);
}

// ------------------------------------------------ connect retry (deadline)

TEST_F(FaultSystemTest, RemoteChannelRetriesUntilTheServerComesUp) {
  // Reserve an ephemeral port, release it, then bring the server up on it
  // shortly after the client starts connecting: the bounded retry loop
  // must ride out the gap (no raw sleeps in client code).
  std::uint16_t port = 0;
  {
    net::TcpListener probe(0);
    port = probe.port();
  }
  std::unique_ptr<net::NetworkServer> late;
  std::thread starter([&] {
    std::this_thread::sleep_for(100ms);
    late = std::make_unique<net::NetworkServer>(server_, port);
  });
  net::ConnectOptions options;
  options.timeout = std::chrono::seconds(5);
  net::RemoteChannel channel(port, options);
  starter.join();
  cloud::DataUser user(credentials_, channel);
  EXPECT_EQ(user.ranked_search("chaos", 3).size(), 3u);
  late->stop();
}

TEST(ConnectRetry, DefaultOptionsStillFailImmediately) {
  // Historical contract (test_net relies on it): no timeout = exactly one
  // attempt, a dead port throws ProtocolError at once.
  std::uint16_t port = 0;
  {
    net::TcpListener probe(0);
    port = probe.port();
  }
  const Stopwatch watch;
  EXPECT_THROW(net::RemoteChannel{port}, ProtocolError);
  EXPECT_LT(watch.elapsed_seconds(), 1.0);
}

}  // namespace
}  // namespace rsse
