// Bloom filter + Goh secure index (Z-IDX): no false negatives, bounded
// false positives, per-file codeword separation, serialization, and
// boolean search over a corpus.
#include <gtest/gtest.h>

#include <set>

#include "baseline/goh_index.h"
#include "ir/corpus_gen.h"
#include "ir/inverted_index.h"
#include "util/errors.h"
#include "util/rng.h"

namespace rsse::baseline {
namespace {

TEST(BloomFilter, NeverFalseNegative) {
  BloomFilter filter(4096, 5);
  for (int i = 0; i < 200; ++i) {
    Bytes item;
    append_u64(item, static_cast<std::uint64_t>(i));
    filter.insert(item);
  }
  for (int i = 0; i < 200; ++i) {
    Bytes item;
    append_u64(item, static_cast<std::uint64_t>(i));
    EXPECT_TRUE(filter.maybe_contains(item)) << i;
  }
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  const std::size_t n = 1000;
  BloomFilter filter = BloomFilter::with_capacity(n, 0.01);
  for (std::size_t i = 0; i < n; ++i) {
    Bytes item;
    append_u64(item, i);
    filter.insert(item);
  }
  std::size_t false_positives = 0;
  const std::size_t probes = 20000;
  for (std::size_t i = 0; i < probes; ++i) {
    Bytes item;
    append_u64(item, 1'000'000 + i);  // definitely not inserted
    if (filter.maybe_contains(item)) ++false_positives;
  }
  const double rate = static_cast<double>(false_positives) / probes;
  EXPECT_LT(rate, 0.03);  // target 1%, generous margin
}

TEST(BloomFilter, EmptyFilterContainsNothing) {
  const BloomFilter filter(1024, 4);
  EXPECT_FALSE(filter.maybe_contains(to_bytes("anything")));
  EXPECT_EQ(filter.popcount(), 0u);
}

TEST(BloomFilter, SerializeRoundTrip) {
  BloomFilter filter(512, 3);
  filter.insert(to_bytes("one"));
  filter.insert(to_bytes("two"));
  const BloomFilter restored = BloomFilter::deserialize(filter.serialize());
  EXPECT_EQ(restored, filter);
  EXPECT_TRUE(restored.maybe_contains(to_bytes("one")));
}

TEST(BloomFilter, DeserializeRejectsGarbage) {
  EXPECT_THROW(BloomFilter::deserialize(Bytes(4, 0)), ParseError);
  Bytes blob = BloomFilter(64, 2).serialize();
  blob.push_back(0);
  EXPECT_THROW(BloomFilter::deserialize(blob), ParseError);
}

TEST(BloomFilter, Preconditions) {
  EXPECT_THROW(BloomFilter(0, 3), InvalidArgument);
  EXPECT_THROW(BloomFilter(64, 0), InvalidArgument);
  EXPECT_THROW(BloomFilter::with_capacity(0, 0.01), InvalidArgument);
  EXPECT_THROW(BloomFilter::with_capacity(10, 1.5), InvalidArgument);
}

class GohTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 40;
    opts.vocabulary_size = 250;
    opts.min_tokens = 50;
    opts.max_tokens = 200;
    opts.injected.push_back(ir::InjectedKeyword{"network", 22, 0.3, 30});
    opts.seed = 55;
    corpus_ = ir::generate_corpus(opts);
    scheme_ = std::make_unique<GohScheme>(Bytes(32, 0x42), ir::AnalyzerOptions{}, 0.001);
    index_ = std::make_unique<GohIndex>(scheme_->build_index(corpus_));
  }

  ir::Corpus corpus_;
  std::unique_ptr<GohScheme> scheme_;
  std::unique_ptr<GohIndex> index_;
};

TEST_F(GohTest, FindsAllMatchingFiles) {
  const auto hits = index_->search(scheme_->trapdoor("network"));
  std::set<std::uint64_t> got;
  for (ir::FileId id : hits) got.insert(ir::value(id));

  const auto inverted = ir::InvertedIndex::build(corpus_, ir::Analyzer());
  std::set<std::uint64_t> expected;
  for (const auto& p : *inverted.postings("network")) expected.insert(ir::value(p.file));
  // Bloom filters admit false positives but never false negatives.
  for (std::uint64_t id : expected) EXPECT_TRUE(got.contains(id)) << id;
  EXPECT_LE(got.size(), expected.size() + 2);  // fp rate 0.1% on 40 files
}

TEST_F(GohTest, AbsentKeywordMostlyEmpty) {
  const auto hits = index_->search(scheme_->trapdoor("qqqabsent"));
  EXPECT_LE(hits.size(), 1u);  // only Bloom false positives possible
}

TEST_F(GohTest, ForeignKeyTrapdoorFindsAlmostNothing) {
  const GohScheme other(Bytes(32, 0x99));
  const auto hits = index_->search(other.trapdoor("network"));
  EXPECT_LE(hits.size(), 1u);
}

TEST_F(GohTest, CodewordsDifferAcrossFiles) {
  const Bytes trapdoor = scheme_->trapdoor("network");
  EXPECT_NE(GohScheme::codeword(trapdoor, ir::file_id(1)),
            GohScheme::codeword(trapdoor, ir::file_id(2)));
}

TEST_F(GohTest, IndexSizeScalesWithFiles) {
  EXPECT_EQ(index_->size(), corpus_.size());
  EXPECT_GT(index_->byte_size(), 0u);
}

TEST(GohScheme, Preconditions) {
  EXPECT_THROW(GohScheme(Bytes{}), InvalidArgument);
  EXPECT_THROW(GohScheme(Bytes(32, 1), ir::AnalyzerOptions{}, 0.0), InvalidArgument);
  const GohScheme scheme(Bytes(32, 1));
  EXPECT_THROW(scheme.trapdoor("the"), InvalidArgument);
}

}  // namespace
}  // namespace rsse::baseline
