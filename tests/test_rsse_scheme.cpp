// Efficient RSSE scheme (Sec. IV) end-to-end: server-side ranking agrees
// with the plaintext ranking at quantization granularity, top-k
// semantics, padding, per-keyword key separation, and the build stats
// used by the Table I bench.
#include <gtest/gtest.h>

#include <set>

#include "ir/corpus_gen.h"
#include "ir/scoring.h"
#include "sse/rsse_scheme.h"
#include "util/errors.h"

namespace rsse::sse {
namespace {

class RsseSchemeTest : public ::testing::Test {
 protected:
  static ir::CorpusGenOptions corpus_options() {
    ir::CorpusGenOptions opts;
    opts.num_documents = 60;
    opts.vocabulary_size = 400;
    opts.min_tokens = 60;
    opts.max_tokens = 300;
    opts.injected.push_back(ir::InjectedKeyword{"network", 35, 0.3, 50});
    opts.injected.push_back(ir::InjectedKeyword{"protocol", 12, 0.5, 20});
    opts.seed = 2025;
    return opts;
  }

  void SetUp() override {
    corpus_ = ir::generate_corpus(corpus_options());
    scheme_ = std::make_unique<RsseScheme>(keygen());
    built_ = std::make_unique<RsseScheme::BuildResult>(scheme_->build_index(corpus_));
    inverted_ = ir::InvertedIndex::build(corpus_, scheme_->analyzer());
  }

  // The plaintext ranking quantized exactly as the scheme quantizes —
  // the reference the encrypted ranking must reproduce.
  std::vector<std::uint64_t> quantized_reference(const std::string& term) const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> level_id;
    for (const auto& p : *inverted_.postings(term)) {
      const double s = ir::score_single_keyword(p.tf, inverted_.doc_length(p.file));
      level_id.emplace_back(built_->quantizer.quantize(s), ir::value(p.file));
    }
    std::sort(level_id.begin(), level_id.end(), [](const auto& a, const auto& b) {
      return a.first > b.first;
    });
    std::vector<std::uint64_t> ids;
    for (const auto& [level, id] : level_id) ids.push_back(id);
    return ids;
  }

  ir::Corpus corpus_;
  std::unique_ptr<RsseScheme> scheme_;
  std::unique_ptr<RsseScheme::BuildResult> built_;
  ir::InvertedIndex inverted_;
};

TEST_F(RsseSchemeTest, SearchReturnsExactlyTheMatchingFiles) {
  const auto results = RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  std::set<std::uint64_t> got;
  for (const auto& e : results) got.insert(ir::value(e.file));
  std::set<std::uint64_t> expected;
  for (const auto& p : *inverted_.postings("network")) expected.insert(ir::value(p.file));
  EXPECT_EQ(got, expected);
}

TEST_F(RsseSchemeTest, ServerRankingMatchesQuantizedPlaintextRanking) {
  // The server ranks by OPM values; within one quantization level order
  // is arbitrary (that's the designed leakage granularity), so compare
  // the level sequences, not the id sequences.
  const auto results = RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  const auto reference = quantized_reference("network");
  ASSERT_EQ(results.size(), reference.size());

  // 1) OPM scores descend (the server really ranked).
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_GE(results[i - 1].opm_score, results[i].opm_score);

  // 2) Every file appears at a rank whose quantized level matches the
  //    reference level at that rank.
  const auto level_of = [&](std::uint64_t id) {
    for (const auto& p : *inverted_.postings("network")) {
      if (ir::value(p.file) == id)
        return built_->quantizer.quantize(
            ir::score_single_keyword(p.tf, inverted_.doc_length(p.file)));
    }
    ADD_FAILURE() << "unknown id";
    return std::uint64_t{0};
  };
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(level_of(ir::value(results[i].file)), level_of(reference[i])) << "rank " << i;
}

TEST_F(RsseSchemeTest, TopKTruncatesCorrectly) {
  const auto all = RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  const auto top5 = RsseScheme::search(built_->index, scheme_->trapdoor("network"), 5);
  ASSERT_EQ(top5.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(top5[i], all[i]);
  // k larger than the hit count returns everything.
  const auto top1000 = RsseScheme::search(built_->index, scheme_->trapdoor("network"), 1000);
  EXPECT_EQ(top1000.size(), all.size());
}

TEST_F(RsseSchemeTest, OpmScoresDecryptBackToQuantizedLevels) {
  // Owner-side check: inverting each returned OPM value through the
  // per-keyword mapper recovers the quantized plaintext level.
  const auto results = RsseScheme::search(built_->index, scheme_->trapdoor("protocol"));
  const auto opm = scheme_->opm_for_keyword("protocol");
  for (const auto& e : results) {
    const auto* postings = inverted_.postings("protocol");
    const auto it = std::find_if(postings->begin(), postings->end(),
                                 [&](const ir::Posting& p) { return p.file == e.file; });
    ASSERT_NE(it, postings->end());
    const double s = ir::score_single_keyword(it->tf, inverted_.doc_length(it->file));
    EXPECT_EQ(opm.invert(e.opm_score), built_->quantizer.quantize(s));
  }
}

TEST_F(RsseSchemeTest, EveryRowIsPaddedToNu) {
  for (const Bytes& label : built_->index.labels())
    EXPECT_EQ(built_->index.row(label)->size(), built_->stats.pad_width);
}

TEST_F(RsseSchemeTest, BuildStatsAreConsistent) {
  EXPECT_EQ(built_->stats.num_keywords, inverted_.num_terms());
  EXPECT_EQ(built_->stats.pad_width, inverted_.max_posting_length());
  EXPECT_GT(built_->stats.opm_seconds, 0.0);
  EXPECT_GT(built_->stats.encrypt_seconds, 0.0);
  std::uint64_t total = 0;
  for (const auto& term : inverted_.terms()) total += inverted_.postings(term)->size();
  EXPECT_EQ(built_->stats.num_postings, total);
}

TEST_F(RsseSchemeTest, NoOpmValueDuplicatesWithinAList) {
  // Sec. VI-A: at |R| = 2^46 and ~dozens of postings, the one-to-many
  // mapping should produce zero duplicate encrypted scores per list.
  const auto results = RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  std::set<std::uint64_t> values;
  for (const auto& e : results) EXPECT_TRUE(values.insert(e.opm_score).second);
}

TEST_F(RsseSchemeTest, ForeignTrapdoorFindsNothing) {
  const RsseScheme other(keygen());
  EXPECT_TRUE(RsseScheme::search(built_->index, other.trapdoor("network")).empty());
}

TEST_F(RsseSchemeTest, FixedQuantizerBuildAgreesWithAutoBuild) {
  const auto rebuilt = scheme_->build_index(corpus_, built_->quantizer);
  // Entry IVs are random so ciphertext bytes differ, but search results
  // must agree entry-for-entry.
  const auto a = RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  const auto b = RsseScheme::search(rebuilt.index, scheme_->trapdoor("network"));
  EXPECT_EQ(a, b);
}

TEST_F(RsseSchemeTest, MismatchedQuantizerIsRejected) {
  const opse::ScoreQuantizer wrong(0.0, 1.0, 64);  // 64 != params' 128 levels
  EXPECT_THROW(scheme_->build_index(corpus_, wrong), InvalidArgument);
}

TEST_F(RsseSchemeTest, EmptyCollectionIsRejected) {
  EXPECT_THROW(scheme_->build_index(ir::Corpus{}), InvalidArgument);
}

TEST_F(RsseSchemeTest, UnknownKeywordFindsNothingAtEveryTopK) {
  // A trapdoor for a keyword absent from the corpus hits no row: the
  // search must return empty for any k, not throw or leak padding.
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{100}})
    EXPECT_TRUE(
        RsseScheme::search(built_->index, scheme_->trapdoor("zzzunknownkeyword"), k)
            .empty());
}

}  // namespace
}  // namespace rsse::sse
