// Statistics helpers: Welford moments, quantiles, duplicate statistics,
// and the histogram (binning, entropy measures, ASCII rendering).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/errors.h"
#include "util/histogram.h"
#include "util/stats.h"

namespace rsse {
namespace {

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Quantile, InterpolatesOrderStatistics) {
  const std::vector<double> sample{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(sample, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(sample, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(sample, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(sample, 0.125), 1.5);  // interpolated
}

TEST(Quantile, Preconditions) {
  EXPECT_THROW(quantile({}, 0.5), InvalidArgument);
  EXPECT_THROW(quantile({1.0}, 1.5), InvalidArgument);
}

TEST(DuplicateStats, CountsPeakAndDistinct) {
  const std::vector<std::uint64_t> values{1, 2, 2, 3, 3, 3, 9};
  EXPECT_EQ(max_duplicates(values), 3u);
  EXPECT_EQ(distinct_count(values), 4u);
  EXPECT_EQ(max_duplicates({}), 0u);
  EXPECT_EQ(distinct_count({}), 0u);
}

TEST(Histogram, BinsAndClamps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.occupied_bins(), 3u);
  EXPECT_EQ(h.max_count(), 2u);
}

TEST(Histogram, EntropyOfUniformAndPeaked) {
  Histogram uniform(0.0, 4.0, 4);
  for (int b = 0; b < 4; ++b) uniform.add(b + 0.5);
  EXPECT_NEAR(uniform.min_entropy_bits(), 2.0, 1e-12);
  EXPECT_NEAR(uniform.shannon_entropy_bits(), 2.0, 1e-12);

  Histogram peaked(0.0, 4.0, 4);
  for (int i = 0; i < 100; ++i) peaked.add(0.5);
  EXPECT_NEAR(peaked.min_entropy_bits(), 0.0, 1e-12);
  EXPECT_NEAR(peaked.shannon_entropy_bits(), 0.0, 1e-12);
}

TEST(Histogram, WeightedAddAndBinEdges) {
  Histogram h(0.0, 100.0, 4);
  h.add(10.0, 7);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 75.0);
}

TEST(Histogram, AsciiChartRenders) {
  Histogram h(0.0, 8.0, 8);
  for (int i = 0; i < 8; ++i) h.add(i + 0.5, static_cast<std::uint64_t>(i + 1));
  const std::string chart = h.ascii_chart(8, 20);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 8);
}

TEST(Histogram, Preconditions) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(2), InvalidArgument);
}

}  // namespace
}  // namespace rsse
