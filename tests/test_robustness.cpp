// Robustness / fuzz-style tests: every deserializer and protocol entry
// point must respond to corrupted or random input with a typed rsse
// exception — never a crash, hang, or silent wrong answer. Random bytes
// are deterministic per test (seeded Xoshiro) so failures reproduce.
#include <gtest/gtest.h>

#include "cloud/cloud_server.h"
#include "cloud/data_owner.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "sse/keys.h"
#include "sse/secure_index.h"
#include "store/owner_state.h"
#include "util/errors.h"
#include "util/rng.h"

namespace rsse {
namespace {

Bytes random_blob(Xoshiro256& rng, std::size_t max_len) {
  Bytes blob(rng.uniform_below(max_len + 1));
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_u64());
  return blob;
}

// Flips `flips` random bits of a copy of `blob`.
Bytes corrupt(const Bytes& blob, Xoshiro256& rng, int flips = 1) {
  Bytes out = blob;
  if (out.empty()) return out;
  for (int i = 0; i < flips; ++i) {
    const std::size_t byte = rng.uniform_below(out.size());
    out[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_below(8));
  }
  return out;
}

// Truncates a copy of `blob` at a random point.
Bytes truncate(const Bytes& blob, Xoshiro256& rng) {
  Bytes out = blob;
  out.resize(rng.uniform_below(out.size() + 1));
  return out;
}

template <typename Fn>
void expect_error_or_success(Fn&& fn, const char* what) {
  try {
    fn();  // a lucky corruption may still parse; that's fine
  } catch (const Error&) {
    // typed library error: the contract
  } catch (const std::exception& e) {
    FAIL() << what << ": escaped non-rsse exception: " << e.what();
  }
}

TEST(Robustness, SecureIndexDeserializerSurvivesFuzz) {
  sse::SecureIndex index;
  index.add_row(Bytes(20, 1), {Bytes(40, 2), Bytes(40, 3)});
  index.add_row(Bytes(20, 4), {Bytes(40, 5)});
  const Bytes good = index.serialize();

  Xoshiro256 rng(1);
  for (int i = 0; i < 300; ++i) {
    expect_error_or_success([&] { sse::SecureIndex::deserialize(corrupt(good, rng, 3)); },
                            "index corrupt");
    expect_error_or_success([&] { sse::SecureIndex::deserialize(truncate(good, rng)); },
                            "index truncate");
    expect_error_or_success([&] { sse::SecureIndex::deserialize(random_blob(rng, 200)); },
                            "index random");
  }
}

TEST(Robustness, MasterKeyDeserializerSurvivesFuzz) {
  const Bytes good = sse::keygen().serialize();
  Xoshiro256 rng(2);
  for (int i = 0; i < 300; ++i) {
    expect_error_or_success([&] { sse::MasterKey::deserialize(corrupt(good, rng, 2)); },
                            "key corrupt");
    expect_error_or_success([&] { sse::MasterKey::deserialize(truncate(good, rng)); },
                            "key truncate");
    expect_error_or_success([&] { sse::MasterKey::deserialize(random_blob(rng, 150)); },
                            "key random");
  }
}

TEST(Robustness, OwnerStateOpenerSurvivesFuzz) {
  store::OwnerState state;
  state.key = sse::keygen();
  state.file_master = crypto::random_bytes(32);
  const Bytes good = store::seal_owner_state(state, "pw", 10);
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    expect_error_or_success([&] { store::open_owner_state(corrupt(good, rng, 2), "pw"); },
                            "owner corrupt");
    expect_error_or_success([&] { store::open_owner_state(truncate(good, rng), "pw"); },
                            "owner truncate");
    expect_error_or_success([&] { store::open_owner_state(random_blob(rng, 300), "pw"); },
                            "owner random");
  }
}

TEST(Robustness, ServerRpcSurvivesFuzzedPayloads) {
  // A live server with real data must reject garbage payloads for every
  // message type without disturbing its stored state.
  ir::CorpusGenOptions opts;
  opts.num_documents = 10;
  opts.vocabulary_size = 80;
  opts.min_tokens = 30;
  opts.max_tokens = 80;
  opts.seed = 5;
  const ir::Corpus corpus = ir::generate_corpus(opts);
  cloud::DataOwner owner;
  cloud::CloudServer server;
  owner.outsource_rsse(corpus, server);
  const std::uint64_t stored = server.stored_bytes();

  Xoshiro256 rng(4);
  for (int i = 0; i < 200; ++i) {
    for (const auto type :
         {cloud::MessageType::kRankedSearch, cloud::MessageType::kBasicEntries,
          cloud::MessageType::kFetchFiles, cloud::MessageType::kBasicFiles}) {
      expect_error_or_success([&] { (void)server.handle(type, random_blob(rng, 120)); },
                              "rpc random");
    }
  }
  EXPECT_EQ(server.stored_bytes(), stored);  // state untouched by garbage
}

TEST(Robustness, FuzzedTrapdoorsNeverFalselyMatch) {
  // Random trapdoors against a real index: either an rsse error (bad
  // sizes) or an empty result — never a hit, never a crash.
  ir::CorpusGenOptions opts;
  opts.num_documents = 10;
  opts.vocabulary_size = 80;
  opts.min_tokens = 30;
  opts.max_tokens = 80;
  opts.seed = 6;
  const ir::Corpus corpus = ir::generate_corpus(opts);
  const sse::RsseScheme scheme(sse::keygen());
  const auto built = scheme.build_index(corpus);

  Xoshiro256 rng(7);
  for (int i = 0; i < 300; ++i) {
    sse::Trapdoor trapdoor;
    trapdoor.label = random_blob(rng, 40);
    trapdoor.list_key = random_blob(rng, 64);
    try {
      const auto results = sse::RsseScheme::search(built.index, trapdoor);
      EXPECT_TRUE(results.empty());
    } catch (const Error&) {
      // wrong key size etc. — acceptable
    }
  }
}

TEST(Robustness, TamperedIndexEntriesReadAsPaddingOrFail) {
  // Bit-flip stored entries: decryption under the right trapdoor must
  // yield either fewer results (flag broken => padding) or a changed
  // entry — never an out-of-range crash.
  ir::CorpusGenOptions opts;
  opts.num_documents = 8;
  opts.vocabulary_size = 60;
  opts.min_tokens = 30;
  opts.max_tokens = 60;
  opts.injected.push_back(ir::InjectedKeyword{"network", 6, 0.4, 10});
  opts.seed = 8;
  const ir::Corpus corpus = ir::generate_corpus(opts);
  const sse::RsseScheme scheme(sse::keygen());
  auto built = scheme.build_index(corpus);
  const auto trapdoor = scheme.trapdoor("network");
  const std::size_t baseline_hits = sse::RsseScheme::search(built.index, trapdoor).size();

  Xoshiro256 rng(9);
  const Bytes serialized = built.index.serialize();
  for (int i = 0; i < 100; ++i) {
    try {
      sse::SecureIndex tampered = sse::SecureIndex::deserialize(corrupt(serialized, rng, 4));
      const auto results = sse::RsseScheme::search(tampered, trapdoor);
      EXPECT_LE(results.size(), baseline_hits + 1);
    } catch (const Error&) {
      // structural corruption detected — acceptable
    }
  }
}

}  // namespace
}  // namespace rsse
