// Robustness / fuzz-style tests: every deserializer and protocol entry
// point must respond to corrupted or random input with a typed rsse
// exception — never a crash, hang, or silent wrong answer. Random bytes
// are deterministic per test (seeded Xoshiro) so failures reproduce.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cloud/channel.h"
#include "cloud/cloud_server.h"
#include "cloud/data_owner.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "sse/keys.h"
#include "sse/secure_index.h"
#include "store/deployment.h"
#include "store/owner_state.h"
#include "util/errors.h"
#include "util/rng.h"

namespace rsse {
namespace {

Bytes random_blob(Xoshiro256& rng, std::size_t max_len) {
  Bytes blob(rng.uniform_below(max_len + 1));
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_u64());
  return blob;
}

// Flips `flips` random bits of a copy of `blob`.
Bytes corrupt(const Bytes& blob, Xoshiro256& rng, int flips = 1) {
  Bytes out = blob;
  if (out.empty()) return out;
  for (int i = 0; i < flips; ++i) {
    const std::size_t byte = rng.uniform_below(out.size());
    out[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_below(8));
  }
  return out;
}

// Truncates a copy of `blob` at a random point.
Bytes truncate(const Bytes& blob, Xoshiro256& rng) {
  Bytes out = blob;
  out.resize(rng.uniform_below(out.size() + 1));
  return out;
}

template <typename Fn>
void expect_error_or_success(Fn&& fn, const char* what) {
  try {
    fn();  // a lucky corruption may still parse; that's fine
  } catch (const Error&) {
    // typed library error: the contract
  } catch (const std::exception& e) {
    FAIL() << what << ": escaped non-rsse exception: " << e.what();
  }
}

TEST(Robustness, SecureIndexDeserializerSurvivesFuzz) {
  sse::SecureIndex index;
  index.add_row(Bytes(20, 1), {Bytes(40, 2), Bytes(40, 3)});
  index.add_row(Bytes(20, 4), {Bytes(40, 5)});
  const Bytes good = index.serialize();

  Xoshiro256 rng(1);
  for (int i = 0; i < 300; ++i) {
    expect_error_or_success([&] { sse::SecureIndex::deserialize(corrupt(good, rng, 3)); },
                            "index corrupt");
    expect_error_or_success([&] { sse::SecureIndex::deserialize(truncate(good, rng)); },
                            "index truncate");
    expect_error_or_success([&] { sse::SecureIndex::deserialize(random_blob(rng, 200)); },
                            "index random");
  }
}

TEST(Robustness, MasterKeyDeserializerSurvivesFuzz) {
  const Bytes good = sse::keygen().serialize();
  Xoshiro256 rng(2);
  for (int i = 0; i < 300; ++i) {
    expect_error_or_success([&] { sse::MasterKey::deserialize(corrupt(good, rng, 2)); },
                            "key corrupt");
    expect_error_or_success([&] { sse::MasterKey::deserialize(truncate(good, rng)); },
                            "key truncate");
    expect_error_or_success([&] { sse::MasterKey::deserialize(random_blob(rng, 150)); },
                            "key random");
  }
}

TEST(Robustness, OwnerStateOpenerSurvivesFuzz) {
  store::OwnerState state;
  state.key = sse::keygen();
  state.file_master = crypto::random_bytes(32);
  const Bytes good = store::seal_owner_state(state, "pw", 10);
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    expect_error_or_success([&] { store::open_owner_state(corrupt(good, rng, 2), "pw"); },
                            "owner corrupt");
    expect_error_or_success([&] { store::open_owner_state(truncate(good, rng), "pw"); },
                            "owner truncate");
    expect_error_or_success([&] { store::open_owner_state(random_blob(rng, 300), "pw"); },
                            "owner random");
  }
}

TEST(Robustness, ServerRpcSurvivesFuzzedPayloads) {
  // A live server with real data must reject garbage payloads for every
  // message type without disturbing its stored state.
  ir::CorpusGenOptions opts;
  opts.num_documents = 10;
  opts.vocabulary_size = 80;
  opts.min_tokens = 30;
  opts.max_tokens = 80;
  opts.seed = 5;
  const ir::Corpus corpus = ir::generate_corpus(opts);
  cloud::DataOwner owner;
  cloud::CloudServer server;
  owner.outsource_rsse(corpus, server);
  const std::uint64_t stored = server.stored_bytes();

  Xoshiro256 rng(4);
  for (int i = 0; i < 200; ++i) {
    for (const auto type :
         {cloud::MessageType::kRankedSearch, cloud::MessageType::kBasicEntries,
          cloud::MessageType::kFetchFiles, cloud::MessageType::kBasicFiles}) {
      expect_error_or_success([&] { (void)server.handle(type, random_blob(rng, 120)); },
                              "rpc random");
    }
  }
  EXPECT_EQ(server.stored_bytes(), stored);  // state untouched by garbage
}

TEST(Robustness, FuzzedTrapdoorsNeverFalselyMatch) {
  // Random trapdoors against a real index: either an rsse error (bad
  // sizes) or an empty result — never a hit, never a crash.
  ir::CorpusGenOptions opts;
  opts.num_documents = 10;
  opts.vocabulary_size = 80;
  opts.min_tokens = 30;
  opts.max_tokens = 80;
  opts.seed = 6;
  const ir::Corpus corpus = ir::generate_corpus(opts);
  const sse::RsseScheme scheme(sse::keygen());
  const auto built = scheme.build_index(corpus);

  Xoshiro256 rng(7);
  for (int i = 0; i < 300; ++i) {
    sse::Trapdoor trapdoor;
    trapdoor.label = random_blob(rng, 40);
    trapdoor.list_key = random_blob(rng, 64);
    try {
      const auto results = sse::RsseScheme::search(built.index, trapdoor);
      EXPECT_TRUE(results.empty());
    } catch (const Error&) {
      // wrong key size etc. — acceptable
    }
  }
}

TEST(Robustness, TamperedIndexEntriesReadAsPaddingOrFail) {
  // Bit-flip stored entries: decryption under the right trapdoor must
  // yield either fewer results (flag broken => padding) or a changed
  // entry — never an out-of-range crash.
  ir::CorpusGenOptions opts;
  opts.num_documents = 8;
  opts.vocabulary_size = 60;
  opts.min_tokens = 30;
  opts.max_tokens = 60;
  opts.injected.push_back(ir::InjectedKeyword{"network", 6, 0.4, 10});
  opts.seed = 8;
  const ir::Corpus corpus = ir::generate_corpus(opts);
  const sse::RsseScheme scheme(sse::keygen());
  auto built = scheme.build_index(corpus);
  const auto trapdoor = scheme.trapdoor("network");
  const std::size_t baseline_hits = sse::RsseScheme::search(built.index, trapdoor).size();

  Xoshiro256 rng(9);
  const Bytes serialized = built.index.serialize();
  for (int i = 0; i < 100; ++i) {
    try {
      sse::SecureIndex tampered = sse::SecureIndex::deserialize(corrupt(serialized, rng, 4));
      const auto results = sse::RsseScheme::search(tampered, trapdoor);
      EXPECT_LE(results.size(), baseline_hits + 1);
    } catch (const Error&) {
      // structural corruption detected — acceptable
    }
  }
}

// ------------------------------------------------- storage layer (disk)

namespace fs = std::filesystem;

Bytes read_raw(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  return Bytes(content.begin(), content.end());
}

void write_raw(const fs::path& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

class StorageRobustness : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs each TEST as its own process in
    // parallel, so a shared directory would be a cross-test race.
    dir_ = (fs::temp_directory_path() /
            (std::string("rsse_storage_robustness_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    fs::remove_all(dir_ + ".saving");
    fs::remove_all(dir_ + ".old");

    ir::CorpusGenOptions opts;
    opts.num_documents = 20;
    opts.vocabulary_size = 100;
    opts.min_tokens = 30;
    opts.max_tokens = 100;
    opts.injected.push_back(ir::InjectedKeyword{"durable", 12, 0.4, 15});
    opts.seed = 31;
    const ir::Corpus corpus = ir::generate_corpus(opts);
    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus, server_);
  }

  void TearDown() override {
    fs::remove_all(dir_);
    fs::remove_all(dir_ + ".saving");
    fs::remove_all(dir_ + ".old");
  }

  // First encrypted blob under <root>/files/.
  static fs::path some_blob(const fs::path& root) {
    for (const auto& entry : fs::directory_iterator(root / "files"))
      return entry.path();
    throw Error("deployment has no file blobs");
  }

  std::string dir_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer server_;
};

TEST_F(StorageRobustness, TruncatedArtifactsFailWithIntegrityError) {
  store::save_deployment(server_, dir_);
  const fs::path index_path = fs::path(dir_) / "index.bin";
  const Bytes good = read_raw(index_path);

  // Torn tail: the footer magic is gone.
  Bytes torn = good;
  torn.resize(torn.size() - 5);
  write_raw(index_path, torn);
  cloud::CloudServer server;
  EXPECT_THROW(store::load_deployment(dir_, server), IntegrityError);

  // Cut below the footer size entirely.
  Bytes stub = good;
  stub.resize(10);
  write_raw(index_path, stub);
  EXPECT_THROW(store::load_deployment(dir_, server), IntegrityError);

  // A chunk torn out of the middle leaves the magic intact but the
  // recorded payload length wrong.
  Bytes gutted = good;
  gutted.erase(gutted.begin() + 100, gutted.begin() + 150);
  write_raw(index_path, gutted);
  EXPECT_THROW(store::load_deployment(dir_, server), IntegrityError);

  // Restore the index, truncate a file blob instead: same contract.
  write_raw(index_path, good);
  const fs::path blob_path = some_blob(dir_);
  Bytes blob = read_raw(blob_path);
  blob.resize(blob.size() / 2);
  write_raw(blob_path, blob);
  EXPECT_THROW(store::load_deployment(dir_, server), IntegrityError);
}

TEST_F(StorageRobustness, BitRotFailsTheChecksum) {
  store::save_deployment(server_, dir_);
  cloud::CloudServer server;

  const fs::path index_path = fs::path(dir_) / "index.bin";
  const Bytes good = read_raw(index_path);
  Bytes flipped = good;
  flipped[flipped.size() / 2] ^= 0x01;  // single silent bit flip
  write_raw(index_path, flipped);
  EXPECT_THROW(store::load_deployment(dir_, server), IntegrityError);

  write_raw(index_path, good);
  const fs::path blob_path = some_blob(dir_);
  Bytes blob = read_raw(blob_path);
  blob[0] ^= 0x80;
  write_raw(blob_path, blob);
  EXPECT_THROW(store::load_deployment(dir_, server), IntegrityError);
}

TEST_F(StorageRobustness, OnDiskFuzzNeverEscapesTypedErrors) {
  store::save_deployment(server_, dir_);
  const fs::path index_path = fs::path(dir_) / "index.bin";
  const Bytes good = read_raw(index_path);
  Xoshiro256 rng(12);
  for (int i = 0; i < 40; ++i) {
    write_raw(index_path, corrupt(good, rng, 3));
    cloud::CloudServer server;
    expect_error_or_success([&] { store::load_deployment(dir_, server); },
                            "disk corrupt");
    write_raw(index_path, truncate(good, rng));
    expect_error_or_success([&] { store::load_deployment(dir_, server); },
                            "disk truncate");
  }
}

TEST_F(StorageRobustness, CrashMidStageLeavesPreviousDeploymentLoadable) {
  store::save_deployment(server_, dir_);
  const Bytes expected = server_.index().serialize();

  // A save killed mid-stage: a half-written staging tree is lying around.
  const fs::path staging = fs::path(dir_ + ".saving");
  fs::create_directories(staging / "files");
  write_raw(staging / "index.bin", Bytes{'j', 'u', 'n', 'k'});

  cloud::CloudServer reloaded;
  store::load_deployment(dir_, reloaded);  // never reads the staging tree
  EXPECT_EQ(reloaded.index().serialize(), expected);

  // And the next save simply discards the wreckage.
  store::save_deployment(server_, dir_);
  EXPECT_FALSE(fs::exists(staging));
}

TEST_F(StorageRobustness, CrashInsideTheSwapWindowIsRecoveredOnLoad) {
  store::save_deployment(server_, dir_);
  const Bytes expected = server_.index().serialize();

  // A save killed between the two renames: the previous deployment is
  // parked at <dir>.old, the staged (incomplete) tree never moved in.
  fs::rename(dir_, dir_ + ".old");
  const fs::path staging = fs::path(dir_ + ".saving");
  fs::create_directories(staging);
  write_raw(staging / "index.bin", Bytes{'h', 'a', 'l', 'f'});
  ASSERT_FALSE(fs::exists(dir_));

  cloud::CloudServer reloaded;
  store::load_deployment(dir_, reloaded);  // recovers the parked tree
  EXPECT_EQ(reloaded.index().serialize(), expected);
  EXPECT_TRUE(fs::exists(dir_));
  EXPECT_FALSE(fs::exists(dir_ + ".old"));
}

TEST_F(StorageRobustness, CorruptedShardIsQuarantinedAndRepairedFromReplica) {
  store::save_cluster_deployment(server_, 2, dir_);

  // A healthy replica of shard 0 (loaded before the damage).
  cloud::CloudServer healthy;
  store::load_cluster_shard(dir_, 0, healthy);
  const Bytes expected = healthy.index().serialize();

  // Bit rot inside shard 0's index.
  const fs::path shard_index = fs::path(dir_) / "shard0" / "index.bin";
  Bytes raw = read_raw(shard_index);
  raw[raw.size() / 3] ^= 0x04;
  write_raw(shard_index, raw);

  // Plain load fails typed; with no replica the error propagates.
  cloud::CloudServer server;
  EXPECT_THROW(store::load_cluster_shard(dir_, 0, server), IntegrityError);
  EXPECT_THROW(store::load_cluster_shard_or_repair(dir_, 0, server, nullptr),
               IntegrityError);

  // With a healthy replica the shard self-heals: quarantined for
  // post-mortem, re-fetched, loaded.
  cloud::Channel channel(healthy);
  store::load_cluster_shard_or_repair(dir_, 0, server, &channel);
  EXPECT_EQ(server.index().serialize(), expected);
  EXPECT_EQ(server.num_files(), healthy.num_files());
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "shard0.quarantined"));

  // The on-disk shard is healthy again: a later restart needs no replica.
  cloud::CloudServer restarted;
  store::load_cluster_shard(dir_, 0, restarted);
  EXPECT_EQ(restarted.index().serialize(), expected);

  // The sibling shard was never touched.
  cloud::CloudServer other;
  store::load_cluster_shard(dir_, 1, other);
}

TEST_F(StorageRobustness, RepairFromReplicaCarriesTheDynamicOverlay) {
  store::save_cluster_deployment(server_, 2, dir_);

  // The healthy replica keeps serving updates after the save: its live
  // state is base + overlay, and a repaired peer must match that, not
  // just the base the save captured.
  cloud::CloudServer healthy;
  store::load_cluster_shard(dir_, 0, healthy);
  cloud::Channel healthy_channel(healthy);
  const ir::Document extra{ir::file_id(60001), "x.txt", "durable durable appended"};
  const auto victim = ir::file_id(healthy.files().begin()->first);
  (void)owner_->stream_update(healthy_channel, {extra}, {victim});
  ASSERT_FALSE(healthy.segments().empty());

  // Bit rot inside shard 0's index forces a repair from the replica.
  const fs::path shard_index = fs::path(dir_) / "shard0" / "index.bin";
  Bytes raw = read_raw(shard_index);
  raw[raw.size() / 2] ^= 0x10;
  write_raw(shard_index, raw);

  cloud::CloudServer repaired;
  store::load_cluster_shard_or_repair(dir_, 0, repaired, &healthy_channel);

  // The overlay survived the snapshot round trip: same sequence cursor,
  // and a ranked search over the updated keyword answers byte-identically
  // (the added doc present, the tombstoned one gone).
  EXPECT_FALSE(repaired.segments().empty());
  EXPECT_EQ(repaired.segment_next_seq(), healthy.segment_next_seq());
  cloud::RankedSearchRequest query;
  query.trapdoor = owner_->rsse().trapdoor("durable");
  query.top_k = 0;
  EXPECT_EQ(repaired.ranked_search(query).serialize(),
            healthy.ranked_search(query).serialize());

  // The repaired shard is durable: a later restart loads the overlay
  // from its own disk, no replica needed.
  cloud::CloudServer restarted;
  store::load_cluster_shard(dir_, 0, restarted);
  EXPECT_EQ(restarted.segment_next_seq(), healthy.segment_next_seq());
  EXPECT_EQ(restarted.ranked_search(query).serialize(),
            healthy.ranked_search(query).serialize());
}

}  // namespace
}  // namespace rsse
