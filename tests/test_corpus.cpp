// Corpus container, synthetic generator (the RFC-collection stand-in),
// and the directory loader.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "ir/analyzer.h"
#include "ir/corpus_gen.h"
#include "ir/document.h"
#include "util/errors.h"

namespace rsse::ir {
namespace {

TEST(Corpus, AddLookupAndDuplicateRejection) {
  Corpus corpus;
  corpus.add(Document{file_id(3), "a.txt", "alpha"});
  corpus.add(Document{file_id(7), "b.txt", "beta"});
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_TRUE(corpus.contains(file_id(3)));
  EXPECT_FALSE(corpus.contains(file_id(4)));
  EXPECT_EQ(corpus.by_id(file_id(7)).name, "b.txt");
  EXPECT_EQ(corpus.total_bytes(), 9u);
  EXPECT_THROW(corpus.add(Document{file_id(3), "c.txt", "x"}), InvalidArgument);
  EXPECT_THROW(corpus.by_id(file_id(99)), InvalidArgument);
}

TEST(SyntheticWord, DistinctRanksDistinctWords) {
  std::set<std::string> words;
  for (std::size_t r = 0; r < 5000; ++r) EXPECT_TRUE(words.insert(synthetic_word(r)).second);
}

CorpusGenOptions small_options() {
  CorpusGenOptions opts;
  opts.num_documents = 50;
  opts.vocabulary_size = 300;
  opts.min_tokens = 50;
  opts.max_tokens = 200;
  opts.injected.push_back(InjectedKeyword{"network", 30, 0.3, 100});
  opts.seed = 99;
  return opts;
}

TEST(Generator, DeterministicPerSeed) {
  const Corpus a = generate_corpus(small_options());
  const Corpus b = generate_corpus(small_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.documents()[i].text, b.documents()[i].text);
    EXPECT_EQ(a.documents()[i].name, b.documents()[i].name);
  }
  auto opts = small_options();
  opts.seed = 100;
  const Corpus c = generate_corpus(opts);
  EXPECT_NE(a.documents()[0].text, c.documents()[0].text);
}

TEST(Generator, InjectedKeywordHitsExactDocumentCount) {
  const Corpus corpus = generate_corpus(small_options());
  const Analyzer analyzer;
  std::size_t docs_with_keyword = 0;
  for (const Document& d : corpus.documents()) {
    const auto terms = analyzer.analyze(d.text);
    if (std::find(terms.begin(), terms.end(), "network") != terms.end())
      ++docs_with_keyword;
  }
  EXPECT_EQ(docs_with_keyword, 30u);
}

TEST(Generator, DocumentLengthsRespectBounds) {
  const Corpus corpus = generate_corpus(small_options());
  for (const Document& d : corpus.documents()) {
    // Tokens join with separators; sanity-check the raw text size stays
    // within an order of magnitude of the configured token counts.
    EXPECT_GT(d.text.size(), 100u);
    EXPECT_LT(d.text.size(), 100000u);
    EXPECT_FALSE(d.name.empty());
  }
}

TEST(Generator, ValidatesOptions) {
  auto opts = small_options();
  opts.injected[0].document_count = 1000;  // > num_documents
  EXPECT_THROW(generate_corpus(opts), InvalidArgument);
  opts = small_options();
  opts.injected[0].tf_geometric_p = 1.5;
  EXPECT_THROW(generate_corpus(opts), InvalidArgument);
  opts = small_options();
  opts.num_documents = 0;
  EXPECT_THROW(generate_corpus(opts), InvalidArgument);
  opts = small_options();
  opts.min_tokens = 300;
  opts.max_tokens = 200;
  EXPECT_THROW(generate_corpus(opts), InvalidArgument);
}

TEST(Loader, ReadsDirectoryInSortedOrder) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "rsse_loader_test";
  fs::create_directories(dir);
  std::ofstream(dir / "b.txt") << "second file";
  std::ofstream(dir / "a.txt") << "first file";
  std::ofstream(dir / "c.txt") << "third file";

  const Corpus corpus = load_directory(dir.string());
  ASSERT_EQ(corpus.size(), 3u);
  EXPECT_EQ(corpus.documents()[0].name, "a.txt");
  EXPECT_EQ(corpus.documents()[0].text, "first file");
  EXPECT_EQ(corpus.documents()[2].name, "c.txt");

  const Corpus capped = load_directory(dir.string(), 2);
  EXPECT_EQ(capped.size(), 2u);

  fs::remove_all(dir);
}

TEST(Loader, RejectsNonDirectory) {
  EXPECT_THROW(load_directory("/nonexistent/path/xyz"), InvalidArgument);
}

}  // namespace
}  // namespace rsse::ir
