// Score quantizer: order preservation, clamping, level geometry, the
// from_scores builder, and serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "opse/quantizer.h"
#include "util/errors.h"
#include "util/rng.h"

namespace rsse::opse {
namespace {

TEST(Quantizer, MapsIntervalOntoLevels) {
  const ScoreQuantizer q(0.0, 1.0, 128);
  EXPECT_EQ(q.quantize(0.0), 1u);
  EXPECT_EQ(q.quantize(1.0), 128u);
  EXPECT_EQ(q.quantize(0.5), 65u);  // floor(0.5*128)+1
  EXPECT_EQ(q.levels(), 128u);
}

TEST(Quantizer, ClampsOutOfRangeScores) {
  const ScoreQuantizer q(10.0, 20.0, 16);
  EXPECT_EQ(q.quantize(-100.0), 1u);
  EXPECT_EQ(q.quantize(9.999), 1u);
  EXPECT_EQ(q.quantize(20.001), 16u);
  EXPECT_EQ(q.quantize(1e9), 16u);
}

TEST(Quantizer, PreservesOrder) {
  const ScoreQuantizer q(0.0, 5.0, 64);
  Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double a = rng.next_double() * 5.0;
    const double b = rng.next_double() * 5.0;
    if (a <= b) {
      EXPECT_LE(q.quantize(a), q.quantize(b));
    } else {
      EXPECT_GE(q.quantize(a), q.quantize(b));
    }
  }
}

TEST(Quantizer, EveryLevelIsReachable) {
  const ScoreQuantizer q(0.0, 1.0, 32);
  std::vector<bool> hit(33, false);
  for (int i = 0; i <= 3200; ++i) hit[q.quantize(i / 3200.0)] = true;
  for (std::uint64_t level = 1; level <= 32; ++level) EXPECT_TRUE(hit[level]) << level;
}

TEST(Quantizer, LevelMidpointsAreOrderedAndInRange) {
  const ScoreQuantizer q(2.0, 10.0, 8);
  double prev = 2.0;
  for (std::uint64_t level = 1; level <= 8; ++level) {
    const double mid = q.level_midpoint(level);
    EXPECT_GT(mid, prev);
    EXPECT_LT(mid, 10.0);
    // The midpoint quantizes back to its own level.
    EXPECT_EQ(q.quantize(mid), level);
    prev = mid;
  }
  EXPECT_THROW(q.level_midpoint(0), InvalidArgument);
  EXPECT_THROW(q.level_midpoint(9), InvalidArgument);
}

TEST(Quantizer, FromScoresCoversTheSample) {
  const std::vector<double> scores{0.31, 0.02, 0.77, 0.55, 0.02};
  const auto q = ScoreQuantizer::from_scores(scores, 128);
  EXPECT_EQ(q.quantize(0.02), 1u);
  EXPECT_EQ(q.quantize(0.77), 128u);
  EXPECT_GT(q.quantize(0.55), q.quantize(0.31));
}

TEST(Quantizer, FromScoresHandlesDegenerateSample) {
  const auto q = ScoreQuantizer::from_scores({3.0, 3.0, 3.0}, 16);
  EXPECT_EQ(q.quantize(3.0), 1u);  // single-valued sample maps low
  EXPECT_EQ(q.levels(), 16u);
}

TEST(Quantizer, SingleLevelMapsEverythingToOne) {
  const ScoreQuantizer q(0.0, 1.0, 1);
  for (double s : {-5.0, 0.0, 0.3, 1.0, 99.0}) EXPECT_EQ(q.quantize(s), 1u);
}

TEST(Quantizer, BoundaryScoresClampExactly) {
  const ScoreQuantizer q(2.0, 4.0, 8);
  EXPECT_EQ(q.quantize(2.0), 1u);                 // min inclusive -> first level
  EXPECT_EQ(q.quantize(std::nextafter(2.0, -1.0)), 1u);
  EXPECT_EQ(q.quantize(4.0), 8u);                 // max inclusive -> last level
  EXPECT_EQ(q.quantize(std::nextafter(4.0, 5.0)), 8u);
  // Monotone across the whole interval, never escaping {1..levels}.
  std::uint64_t previous = 0;
  for (double s = 1.9; s <= 4.1; s += 0.01) {
    const std::uint64_t level = q.quantize(s);
    EXPECT_GE(level, 1u);
    EXPECT_LE(level, 8u);
    EXPECT_GE(level, previous);
    previous = level;
  }
}

TEST(Quantizer, SerializeRoundTrip) {
  const ScoreQuantizer q(0.125, 9.75, 128);
  const auto restored = ScoreQuantizer::deserialize(q.serialize());
  for (double s : {0.0, 0.2, 1.0, 5.5, 9.74, 20.0})
    EXPECT_EQ(restored.quantize(s), q.quantize(s));
}

TEST(Quantizer, DeserializeRejectsGarbage) {
  EXPECT_THROW(ScoreQuantizer::deserialize(Bytes(7, 0)), ParseError);
  Bytes blob = ScoreQuantizer(0.0, 1.0, 8).serialize();
  blob.push_back(0);
  EXPECT_THROW(ScoreQuantizer::deserialize(blob), ParseError);
}

TEST(Quantizer, Preconditions) {
  EXPECT_THROW(ScoreQuantizer(1.0, 1.0, 8), InvalidArgument);
  EXPECT_THROW(ScoreQuantizer(0.0, 1.0, 0), InvalidArgument);
  EXPECT_THROW(ScoreQuantizer::from_scores({}, 8), InvalidArgument);
}

}  // namespace
}  // namespace rsse::opse
