// Thread pool and parallel_for: completion, exception propagation,
// chunk coverage, and the single-thread inline path.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/errors.h"
#include "util/thread_pool.h"

namespace rsse {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
      futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    // no explicit waiting: the destructor must drain
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> touched(1000);
    parallel_for(1000, threads, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++touched[i];
    });
    for (std::size_t i = 0; i < touched.size(); ++i)
      ASSERT_EQ(touched[i].load(), 1) << "i=" << i << " threads=" << threads;
  }
}

TEST(ParallelFor, HandlesSmallAndEmptyRanges) {
  int calls = 0;
  parallel_for(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  parallel_for(1, 8, [&](std::size_t begin, std::size_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ParallelFor, MoreThreadsThanWorkStillCorrect) {
  std::atomic<std::size_t> sum{0};
  parallel_for(5, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 0u + 1 + 2 + 3 + 4);
}

TEST(ParallelFor, PropagatesChunkExceptions) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 0) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
}

}  // namespace
}  // namespace rsse
