// Inverted index and scoring (eq. 1 / eq. 2) over a hand-built corpus
// whose statistics are known exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "ir/inverted_index.h"
#include "ir/scoring.h"
#include "util/errors.h"

namespace rsse::ir {
namespace {

// Analyzer without stemming/stopwords so term counts are literal.
AnalyzerOptions raw_options() {
  AnalyzerOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  return opts;
}

Corpus tiny_corpus() {
  Corpus c;
  c.add(Document{file_id(0), "d0", "apple banana apple"});
  c.add(Document{file_id(1), "d1", "banana cherry"});
  c.add(Document{file_id(2), "d2", "apple apple apple apple"});
  return c;
}

TEST(InvertedIndex, PostingsAndFrequencies) {
  const auto index = InvertedIndex::build(tiny_corpus(), Analyzer(raw_options()));
  EXPECT_EQ(index.num_documents(), 3u);
  EXPECT_EQ(index.num_terms(), 3u);
  EXPECT_EQ(index.terms(), (std::vector<std::string>{"apple", "banana", "cherry"}));

  const auto* apple = index.postings("apple");
  ASSERT_NE(apple, nullptr);
  ASSERT_EQ(apple->size(), 2u);
  EXPECT_EQ((*apple)[0], (Posting{file_id(0), 2}));
  EXPECT_EQ((*apple)[1], (Posting{file_id(2), 4}));

  EXPECT_EQ(index.document_frequency("banana"), 2u);
  EXPECT_EQ(index.document_frequency("durian"), 0u);
  EXPECT_EQ(index.postings("durian"), nullptr);

  EXPECT_EQ(index.doc_length(file_id(0)), 3u);
  EXPECT_EQ(index.doc_length(file_id(1)), 2u);
  EXPECT_EQ(index.doc_length(file_id(2)), 4u);
  EXPECT_THROW(index.doc_length(file_id(9)), InvalidArgument);

  EXPECT_EQ(index.max_posting_length(), 2u);
  EXPECT_NEAR(index.average_posting_length(), (2.0 + 2.0 + 1.0) / 3.0, 1e-12);
}

TEST(Scoring, Equation2MatchesFormula) {
  // Score(t, F_d) = (1 + ln f_dt) / |F_d|
  EXPECT_DOUBLE_EQ(score_single_keyword(1, 10), 0.1);
  EXPECT_DOUBLE_EQ(score_single_keyword(5, 20), (1.0 + std::log(5.0)) / 20.0);
  EXPECT_THROW(score_single_keyword(0, 10), InvalidArgument);
  EXPECT_THROW(score_single_keyword(1, 0), InvalidArgument);
}

TEST(Scoring, Equation1TermMatchesFormula) {
  // eq.2 * ln(1 + N/ft)
  const double expected = (1.0 + std::log(3.0)) / 12.0 * std::log(1.0 + 100.0 / 4.0);
  EXPECT_DOUBLE_EQ(score_tfidf_term(3, 12, 4, 100), expected);
  EXPECT_THROW(score_tfidf_term(3, 12, 0, 100), InvalidArgument);
  EXPECT_THROW(score_tfidf_term(3, 12, 101, 100), InvalidArgument);
}

TEST(InvertedIndex, RankedPostingsOrderAndScores) {
  const auto index = InvertedIndex::build(tiny_corpus(), Analyzer(raw_options()));
  const auto ranked = index.ranked_postings("apple");
  ASSERT_EQ(ranked.size(), 2u);
  // d0: (1+ln2)/3 = 0.564...; d2: (1+ln4)/4 = 0.596... => d2 first.
  EXPECT_EQ(ranked[0].file, file_id(2));
  EXPECT_EQ(ranked[1].file, file_id(0));
  EXPECT_NEAR(ranked[0].score, (1.0 + std::log(4.0)) / 4.0, 1e-12);
  EXPECT_NEAR(ranked[1].score, (1.0 + std::log(2.0)) / 3.0, 1e-12);
  EXPECT_TRUE(index.ranked_postings("durian").empty());
}

TEST(InvertedIndex, RankedPostingsTfIdfUnionsAndSums) {
  const auto index = InvertedIndex::build(tiny_corpus(), Analyzer(raw_options()));
  const auto ranked = index.ranked_postings_tfidf({"apple", "cherry"});
  // Union of F(apple) = {0, 2} and F(cherry) = {1}: all three documents.
  ASSERT_EQ(ranked.size(), 3u);
  // Verify the top hit's score against a direct eq.-1 computation.
  for (const auto& hit : ranked) {
    double expected = 0.0;
    if (hit.file == file_id(0)) expected = score_tfidf_term(2, 3, 2, 3);
    if (hit.file == file_id(1)) expected = score_tfidf_term(1, 2, 1, 3);
    if (hit.file == file_id(2)) expected = score_tfidf_term(4, 4, 2, 3);
    EXPECT_NEAR(hit.score, expected, 1e-12);
  }
  // Scores descend.
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
}

TEST(InvertedIndex, TiesBreakByFileId) {
  Corpus c;
  c.add(Document{file_id(5), "a", "same words here"});
  c.add(Document{file_id(2), "b", "same words here"});
  const auto index = InvertedIndex::build(c, Analyzer(raw_options()));
  const auto ranked = index.ranked_postings("same");
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].file, file_id(2));  // equal scores: lower id first
  EXPECT_EQ(ranked[1].file, file_id(5));
}

TEST(InvertedIndex, StemmedPipelineMergesInflections) {
  Corpus c;
  c.add(Document{file_id(0), "d", "networks networking networked"});
  const auto index = InvertedIndex::build(c, Analyzer());
  const auto* postings = index.postings("network");
  ASSERT_NE(postings, nullptr);
  EXPECT_EQ((*postings)[0].tf, 3u);
}

}  // namespace
}  // namespace rsse::ir
