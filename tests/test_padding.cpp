// Row-padding policies: width invariants per mode, search correctness
// under every mode, and the storage/leakage ordering the ablation bench
// quantifies.
#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "ir/corpus_gen.h"
#include "ir/inverted_index.h"
#include "sse/rsse_scheme.h"

namespace rsse::sse {
namespace {

class PaddingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 50;
    opts.vocabulary_size = 300;
    opts.min_tokens = 40;
    opts.max_tokens = 200;
    opts.injected.push_back(ir::InjectedKeyword{"network", 30, 0.3, 30});
    opts.seed = 12;
    corpus_ = ir::generate_corpus(opts);
    scheme_ = std::make_unique<RsseScheme>(keygen());
    inverted_ = ir::InvertedIndex::build(corpus_, scheme_->analyzer());
  }

  RsseScheme::BuildResult build(PaddingMode mode) const {
    RsseScheme::BuildOptions options;
    options.padding = mode;
    return scheme_->build_index(corpus_, options);
  }

  ir::Corpus corpus_;
  std::unique_ptr<RsseScheme> scheme_;
  ir::InvertedIndex inverted_;
};

TEST_F(PaddingTest, FullNuMakesEveryRowEqual) {
  const auto built = build(PaddingMode::kFullNu);
  const std::uint64_t nu = inverted_.max_posting_length();
  for (const Bytes& label : built.index.labels())
    EXPECT_EQ(built.index.row(label)->size(), nu);
}

TEST_F(PaddingTest, PowerOfTwoRowsArePowersOfTwo) {
  const auto built = build(PaddingMode::kPowerOfTwo);
  for (const Bytes& label : built.index.labels()) {
    const std::size_t width = built.index.row(label)->size();
    EXPECT_TRUE(std::has_single_bit(width)) << width;
  }
}

TEST_F(PaddingTest, NoneLeavesExactPostingCounts) {
  const auto built = build(PaddingMode::kNone);
  // Row sizes must be exactly the multiset of posting-list lengths.
  std::multiset<std::size_t> row_sizes;
  for (const Bytes& label : built.index.labels())
    row_sizes.insert(built.index.row(label)->size());
  std::multiset<std::size_t> posting_sizes;
  for (const std::string& term : inverted_.terms())
    posting_sizes.insert(inverted_.postings(term)->size());
  EXPECT_EQ(row_sizes, posting_sizes);
}

TEST_F(PaddingTest, SearchResultsIdenticalAcrossModes) {
  const auto full = build(PaddingMode::kFullNu);
  const auto pow2 = scheme_->build_index(
      corpus_, full.quantizer,
      RsseScheme::BuildOptions{1, PaddingMode::kPowerOfTwo});
  const auto none = scheme_->build_index(
      corpus_, full.quantizer, RsseScheme::BuildOptions{1, PaddingMode::kNone});
  const Trapdoor trapdoor = scheme_->trapdoor("network");
  const auto a = RsseScheme::search(full.index, trapdoor);
  const auto b = RsseScheme::search(pow2.index, trapdoor);
  const auto c = RsseScheme::search(none.index, trapdoor);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a.size(), 30u);
}

TEST_F(PaddingTest, StorageOrdering) {
  const auto full = build(PaddingMode::kFullNu);
  const auto pow2 = build(PaddingMode::kPowerOfTwo);
  const auto none = build(PaddingMode::kNone);
  EXPECT_GE(full.index.byte_size(), pow2.index.byte_size());
  EXPECT_GE(pow2.index.byte_size(), none.index.byte_size());
}

}  // namespace
}  // namespace rsse::sse
