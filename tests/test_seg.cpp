// The segmented dynamic index (ISSUE 6 tentpole): wire-format round
// trips, sequence/tombstone semantics, compaction merge-invariance, the
// background compactor, the kUpdate server path with idempotent replay,
// segment persistence, and the acceptance scenario — a 3-shard SimNet
// cluster serving correct tie-aware top-k while the owner streams 1000+
// add/delete operations with background compaction running on every
// shard. Deterministic throughout: no sockets, no sleeps; the compactor
// synchronizes via wait_for_idle.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baseline/plaintext_search.h"
#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cluster/coordinator.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "seg/compactor.h"
#include "seg/delta_builder.h"
#include "seg/segmented_index.h"
#include "sim/sim_net.h"
#include "store/deployment.h"
#include "util/errors.h"
#include "util/rng.h"

namespace rsse {
namespace {

using seg::DeltaEntry;
using seg::RowDelta;
using seg::Segment;
using seg::SegmentManifest;
using seg::SeqEntry;
using seg::Tombstone;
using seg::UpdateDelta;

Bytes bytes_of(const char* s) { return to_bytes(std::string(s)); }

UpdateDelta sample_delta() {
  UpdateDelta delta;
  delta.op_count = 3;
  delta.rows.push_back(RowDelta{bytes_of("labelA"),
                                {DeltaEntry{bytes_of("ct-1"), 0},
                                 DeltaEntry{bytes_of("ct-2"), 1}}});
  delta.rows.push_back(RowDelta{bytes_of("labelB"), {DeltaEntry{bytes_of("ct-3"), 1}}});
  delta.tombstones.push_back(Tombstone{42, 2});
  delta.file_puts.push_back(seg::FilePut{7, 0, bytes_of("blob-7")});
  delta.file_puts.push_back(seg::FilePut{8, 1, bytes_of("blob-8")});
  return delta;
}

TEST(SegDelta, RoundTripsThroughSerialization) {
  const UpdateDelta delta = sample_delta();
  EXPECT_EQ(delta.entry_count(), 3u);
  EXPECT_FALSE(delta.empty());
  const UpdateDelta parsed = UpdateDelta::deserialize(delta.serialize());
  EXPECT_EQ(parsed, delta);
  EXPECT_EQ(parsed.serialize(), delta.serialize());
}

TEST(SegDelta, RejectsOpIndexBeyondOpCount) {
  UpdateDelta delta = sample_delta();
  delta.tombstones[0].op = delta.op_count;  // out of range
  EXPECT_THROW(UpdateDelta::deserialize(delta.serialize()), ParseError);
}

TEST(SegDelta, RejectsStructuralDamage) {
  UpdateDelta delta = sample_delta();
  Bytes blob = delta.serialize();
  blob.push_back(0);  // trailing byte
  EXPECT_THROW(UpdateDelta::deserialize(blob), ParseError);

  UpdateDelta empty_label = sample_delta();
  empty_label.rows[0].label.clear();
  EXPECT_THROW(UpdateDelta::deserialize(empty_label.serialize()), ParseError);

  UpdateDelta empty_row = sample_delta();
  empty_row.rows[0].entries.clear();
  EXPECT_THROW(UpdateDelta::deserialize(empty_row.serialize()), ParseError);
}

TEST(SegSegment, RoundTripsCanonically) {
  Segment segment;
  segment.add_entries(bytes_of("alpha"), {SeqEntry{bytes_of("e1"), 5}});
  segment.add_entries(bytes_of("beta"),
                      {SeqEntry{bytes_of("e2"), 6}, SeqEntry{bytes_of("e3"), 7}});
  segment.add_tombstone(3, 9);
  segment.add_tombstone(3, 4);  // keeps the max
  segment.add_tombstone(11, 2);

  EXPECT_EQ(segment.entry_count(), 3u);
  EXPECT_EQ(segment.tombstones().at(3), 9u);
  const Segment parsed = Segment::deserialize(segment.serialize());
  EXPECT_EQ(parsed, segment);
  EXPECT_EQ(parsed.serialize(), segment.serialize());
  ASSERT_NE(parsed.row(bytes_of("beta")), nullptr);
  EXPECT_EQ(parsed.row(bytes_of("beta"))->size(), 2u);
  EXPECT_EQ(parsed.row(bytes_of("missing")), nullptr);
}

TEST(SegSegment, RejectsNonCanonicalEncodings) {
  Segment segment;
  segment.add_entries(bytes_of("beta"), {SeqEntry{bytes_of("e1"), 1}});
  segment.add_entries(bytes_of("alpha"), {SeqEntry{bytes_of("e2"), 2}});
  Bytes blob = segment.serialize();
  // Swap the two rows by re-encoding by hand: serialize() emits map order
  // (alpha then beta); craft the reversed order and expect a parse error.
  Segment only_beta;
  only_beta.add_entries(bytes_of("beta"), {SeqEntry{bytes_of("e1"), 1}});
  Segment only_alpha;
  only_alpha.add_entries(bytes_of("alpha"), {SeqEntry{bytes_of("e2"), 2}});
  const Bytes beta_blob = only_beta.serialize();
  const Bytes alpha_blob = only_alpha.serialize();
  // rows section of each single-row blob: skip the u64 row count (8), stop
  // before the u64 tombstone count (8).
  Bytes reversed;
  append_u64(reversed, 2);
  reversed.insert(reversed.end(), beta_blob.begin() + 8, beta_blob.end() - 8);
  reversed.insert(reversed.end(), alpha_blob.begin() + 8, alpha_blob.end() - 8);
  append_u64(reversed, 0);
  EXPECT_THROW(Segment::deserialize(reversed), ParseError);
  EXPECT_EQ(Segment::deserialize(blob), segment);  // canonical order is fine
}

TEST(SegSegment, ManifestRoundTripAndValidation) {
  SegmentManifest manifest;
  manifest.next_seq = 17;
  manifest.num_segments = 4;
  EXPECT_EQ(SegmentManifest::deserialize(manifest.serialize()), manifest);

  SegmentManifest bad_version = manifest;
  bad_version.version = 2;
  EXPECT_THROW(SegmentManifest::deserialize(bad_version.serialize()), ParseError);
  SegmentManifest zero_seq = manifest;
  zero_seq.next_seq = 0;
  EXPECT_THROW(SegmentManifest::deserialize(zero_seq.serialize()), ParseError);
}

// A little owner-side rig for building real encrypted entries.
struct OwnerRig {
  OwnerRig()
      : scheme(sse::keygen({}), ir::AnalyzerOptions{}), quantizer(0.0, 1.0, 32) {}

  [[nodiscard]] sse::Trapdoor trapdoor(const std::string& term) const {
    return scheme.trapdoor(term);
  }

  /// row_label/make_entry expect analyzer-normalized (stemmed) terms.
  [[nodiscard]] std::string norm(const std::string& term) const {
    return scheme.analyzer().normalize_keyword(term);
  }

  [[nodiscard]] Bytes label(const std::string& term) const {
    return scheme.row_label(norm(term));
  }

  [[nodiscard]] Bytes entry(const std::string& term, std::uint64_t file,
                            double score) const {
    return scheme.make_entry(norm(term), ir::file_id(file), score, quantizer);
  }

  sse::RsseScheme scheme;
  opse::ScoreQuantizer quantizer;
};

TEST(SegSegmentedIndex, AssignsSequencesAndResolvesTombstones) {
  const OwnerRig rig;
  seg::SegmentedIndex index;

  // Delta 1 (seqs 1..2): file 1 and file 2 both match "apple".
  UpdateDelta d1;
  d1.op_count = 2;
  d1.rows.push_back(RowDelta{rig.label("apple"),
                             {DeltaEntry{rig.entry("apple", 1, 0.9), 0},
                              DeltaEntry{rig.entry("apple", 2, 0.5), 1}}});
  const seg::ApplyStats s1 = index.apply(d1);
  EXPECT_EQ(s1.first_seq, 1u);
  EXPECT_EQ(s1.entries_applied, 2u);
  EXPECT_EQ(index.next_seq(), 3u);

  auto hits = index.search(rig.trapdoor("apple"), {}, 0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(ir::value(hits[0].file), 1u);  // higher score first
  EXPECT_EQ(ir::value(hits[1].file), 2u);

  // Delta 2 (seq 3): tombstone file 1 — suppresses its earlier posting.
  UpdateDelta d2;
  d2.op_count = 1;
  d2.tombstones.push_back(Tombstone{1, 0});
  index.apply(d2);
  hits = index.search(rig.trapdoor("apple"), {}, 0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(ir::value(hits[0].file), 2u);

  // Delta 3 (seq 4): re-add file 1 with a new score — the add wins (its
  // sequence exceeds the tombstone's) and supersedes the seq-1 entry.
  UpdateDelta d3;
  d3.op_count = 1;
  d3.rows.push_back(
      RowDelta{rig.label("apple"), {DeltaEntry{rig.entry("apple", 1, 0.1), 0}}});
  index.apply(d3);
  hits = index.search(rig.trapdoor("apple"), {}, 0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(ir::value(hits[0].file), 2u);  // 0.5 outranks the re-added 0.1
  EXPECT_EQ(ir::value(hits[1].file), 1u);
}

TEST(SegSegmentedIndex, TombstoneSuppressesBaseEntriesButNotLaterAdds) {
  const OwnerRig rig;
  seg::SegmentedIndex index;
  // Base row (seq 0): files 5 and 6.
  std::vector<sse::RankedSearchEntry> base = {
      {ir::file_id(5), 100}, {ir::file_id(6), 50}};

  UpdateDelta delta;
  delta.op_count = 1;
  delta.tombstones.push_back(Tombstone{5, 0});
  index.apply(delta);

  const auto hits = index.search(rig.trapdoor("pear"), base, 0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(ir::value(hits[0].file), 6u);

  // Top-k truncation happens after filtering: top-1 must be file 6, not a
  // truncated-then-filtered empty set.
  const auto top1 = index.search(rig.trapdoor("pear"), base, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(ir::value(top1[0].file), 6u);
}

TEST(SegSegmentedIndex, CompactionIsMergeInvariant) {
  const OwnerRig rig;
  seg::SegmentedIndex index(seg::SegPolicy{4});  // seal every ~4 entries

  // Three deltas worth of adds + one remove, forcing several seals.
  const std::string terms[] = {"alpha", "beta"};
  std::uint64_t file = 100;
  for (int round = 0; round < 3; ++round) {
    UpdateDelta delta;
    delta.op_count = 4;
    for (std::uint64_t op = 0; op < 4; ++op) {
      const std::string& term = terms[(file + op) % 2];
      delta.rows.push_back(RowDelta{
          rig.label(term),
          {DeltaEntry{rig.entry(term, file + op, 0.1 * static_cast<double>(op + 1)), op}}});
    }
    index.apply(delta);
    file += 4;
  }
  UpdateDelta remove;
  remove.op_count = 1;
  remove.tombstones.push_back(Tombstone{101, 0});
  index.apply(remove);
  index.seal();
  ASSERT_GE(index.sealed_count(), 2u);

  const auto before_a = index.search(rig.trapdoor("alpha"), {}, 0);
  const auto before_b = index.search(rig.trapdoor("beta"), {}, 0);
  const auto stats = index.compact_once();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->segments_merged, 2u);
  EXPECT_EQ(index.sealed_count(), 1u);
  EXPECT_EQ(index.compactions(), 1u);
  // Query results are unchanged by compaction — the merge keeps every
  // sequence tag and unions tombstones by max.
  EXPECT_EQ(index.search(rig.trapdoor("alpha"), {}, 0), before_a);
  EXPECT_EQ(index.search(rig.trapdoor("beta"), {}, 0), before_b);

  const seg::UpdateLeakage leakage = index.leakage();
  EXPECT_EQ(leakage.updates, 4u);
  EXPECT_EQ(leakage.compactions, 1u);
  EXPECT_GT(leakage.entries_total, 0u);
  EXPECT_EQ(leakage.tombstones_total, 1u);
}

TEST(SegSegmentedIndex, SnapshotRestoreRoundTrip) {
  const OwnerRig rig;
  seg::SegmentedIndex index(seg::SegPolicy{2});
  UpdateDelta delta;
  delta.op_count = 3;
  delta.rows.push_back(RowDelta{rig.label("kiwi"),
                                {DeltaEntry{rig.entry("kiwi", 1, 0.3), 0},
                                 DeltaEntry{rig.entry("kiwi", 2, 0.8), 1}}});
  delta.tombstones.push_back(Tombstone{9, 2});
  index.apply(delta);

  const auto before = index.search(rig.trapdoor("kiwi"), {}, 0);
  const std::uint64_t next_seq = index.next_seq();
  std::vector<Segment> snapshot = index.snapshot_segments();
  ASSERT_FALSE(snapshot.empty());

  seg::SegmentedIndex restored;
  restored.restore(std::move(snapshot), next_seq);
  EXPECT_EQ(restored.search(rig.trapdoor("kiwi"), {}, 0), before);
  EXPECT_EQ(restored.next_seq(), next_seq);
  EXPECT_EQ(restored.tombstone_count(), 1u);
}

TEST(SegDeltaBuilder, GroupsEntriesByRowAndOrdersOps) {
  const OwnerRig rig;
  seg::DeltaBuilder builder(rig.scheme, rig.quantizer);
  ir::Document doc1{ir::file_id(31), "a.txt", "mango mango papaya"};
  ir::Document doc2{ir::file_id(32), "b.txt", "papaya"};
  builder.add_document(doc1, bytes_of("blob31"));
  builder.add_document(doc2, bytes_of("blob32"));
  builder.remove_document(ir::file_id(31));
  EXPECT_EQ(builder.pending_ops(), 3u);

  const UpdateDelta delta = builder.take();
  EXPECT_EQ(builder.pending_ops(), 0u);
  EXPECT_EQ(delta.op_count, 3u);
  EXPECT_EQ(delta.rows.size(), 2u);  // mango, papaya
  EXPECT_EQ(delta.file_puts.size(), 2u);
  ASSERT_EQ(delta.tombstones.size(), 1u);
  EXPECT_EQ(delta.tombstones[0].file_id, 31u);
  EXPECT_EQ(delta.tombstones[0].op, 2u);
  // The delta survives the wire.
  EXPECT_EQ(UpdateDelta::deserialize(delta.serialize()), delta);

  // Applied, the tombstone (op 2) beats doc1's adds (op 0): only doc2
  // remains visible on the shared "papaya" row.
  seg::SegmentedIndex index;
  index.apply(delta);
  const auto hits = index.search(rig.trapdoor("papaya"), {}, 0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(ir::value(hits[0].file), 32u);
  EXPECT_TRUE(index.search(rig.trapdoor("mango"), {}, 0).empty());
}

TEST(SegCompactor, DrainsInBackgroundDeterministically) {
  const OwnerRig rig;
  seg::SegmentedIndex index(seg::SegPolicy{1});  // seal after every delta
  seg::Compactor compactor(index, seg::CompactorOptions{2});

  for (std::uint64_t i = 0; i < 6; ++i) {
    UpdateDelta delta;
    delta.op_count = 1;
    delta.rows.push_back(RowDelta{rig.label("grape"),
                                  {DeltaEntry{rig.entry("grape", 200 + i, 0.5), 0}}});
    index.apply(delta);
    compactor.notify();
  }
  compactor.wait_for_idle();
  EXPECT_GE(compactor.completed(), 1u);
  EXPECT_LE(index.sealed_count(), 1u);
  // All six postings survive every merge.
  EXPECT_EQ(index.search(rig.trapdoor("grape"), {}, 0).size(), 6u);
}

// ----- server + wire integration -----

ir::Corpus small_corpus(std::uint64_t seed) {
  ir::CorpusGenOptions opts;
  opts.num_documents = 18;
  opts.vocabulary_size = 50;
  opts.min_tokens = 15;
  opts.max_tokens = 40;
  opts.injected.push_back(ir::InjectedKeyword{"oracle", 9, 0.4, 20});
  opts.seed = seed;
  return ir::generate_corpus(opts);
}

TEST(SegCloudServer, UpdateOverWireAndIdempotentReplay) {
  const ir::Corpus corpus = small_corpus(404);
  cloud::DataOwner owner;
  cloud::CloudServer server;
  owner.outsource_rsse(corpus, server);

  const Bytes user_key = crypto::random_bytes(32);
  auto credentials =
      cloud::AuthorizationService::open(user_key, "u", owner.enroll_user(user_key, "u"));
  cloud::Channel channel(server);
  cloud::DataUser user(credentials, channel);

  const std::size_t before = user.ranked_search("oracle", 0).size();

  // Stream one add + one remove over the wire.
  ir::Document fresh{ir::file_id(9001), "fresh.txt", "oracle oracle oracle fresh"};
  const std::uint64_t victim = ir::value(corpus.documents().front().id);
  cloud::UpdateRequest req;
  req.delta_id = 77;
  req.delta = owner.build_update({fresh}, {ir::file_id(victim)});
  const Bytes payload = req.serialize();
  const auto resp = cloud::UpdateResponse::deserialize(
      channel.call(cloud::MessageType::kUpdate, payload));
  EXPECT_FALSE(resp.replayed);
  EXPECT_GT(resp.entries_applied, 0u);
  // Two tombstones: the explicit remove plus the add's guard tombstone
  // (every add is an upsert — see DataOwner::build_update).
  EXPECT_EQ(resp.tombstones_applied, 2u);
  EXPECT_EQ(resp.files_stored, 1u);
  EXPECT_EQ(resp.files_erased, 1u);  // the guard erases nothing (fresh id)

  // A transport-level retry of the same delta replays, never re-applies.
  const auto replay = cloud::UpdateResponse::deserialize(
      channel.call(cloud::MessageType::kUpdate, payload));
  EXPECT_TRUE(replay.replayed);
  EXPECT_EQ(replay.entries_applied, resp.entries_applied);
  EXPECT_EQ(server.metrics().snapshot().updates, 1u);

  // The search surface reflects exactly one application.
  const auto hits = user.ranked_search("oracle", 0);
  std::set<std::uint64_t> ids;
  for (const auto& hit : hits) ids.insert(ir::value(hit.document.id));
  EXPECT_TRUE(ids.contains(9001u));
  EXPECT_GE(hits.size() + 1, before);  // at most the victim disappeared
  EXPECT_FALSE(ids.contains(victim));  // tombstoned, whether it matched or not
  // The re-added document round-trips through blob decryption.
  for (const auto& hit : hits) {
    if (ir::value(hit.document.id) == 9001u) {
      EXPECT_EQ(hit.document.text, fresh.text);
    }
  }
}

TEST(SegCloudServer, ReAddingALiveIdSupersedesOldOnlyKeywords) {
  const ir::Corpus corpus = small_corpus(707);
  cloud::DataOwner owner;
  cloud::CloudServer server;
  owner.outsource_rsse(corpus, server);

  const Bytes user_key = crypto::random_bytes(32);
  auto credentials =
      cloud::AuthorizationService::open(user_key, "u", owner.enroll_user(user_key, "u"));
  cloud::Channel channel(server);
  cloud::DataUser user(credentials, channel);

  // Version 1 of document 9100 matches both "mango" and "papaya".
  const ir::Document v1{ir::file_id(9100), "v1.txt", "mango papaya mango"};
  (void)owner.stream_update(channel, {v1}, {});
  auto ids = [&](const std::string& term) {
    std::set<std::uint64_t> out;
    for (const auto& hit : user.ranked_search(term, 0))
      out.insert(ir::value(hit.document.id));
    return out;
  };
  EXPECT_TRUE(ids("mango").contains(9100u));
  EXPECT_TRUE(ids("papaya").contains(9100u));

  // Version 2 reuses the id but dropped "mango". The add's guard
  // tombstone must suppress v1's postings even on rows v2 never touches
  // — without it, "mango" (old-only keyword) would keep matching.
  const ir::Document v2{ir::file_id(9100), "v2.txt", "papaya papaya"};
  (void)owner.stream_update(channel, {v2}, {});
  EXPECT_FALSE(ids("mango").contains(9100u));
  EXPECT_TRUE(ids("papaya").contains(9100u));
  for (const auto& hit : user.ranked_search("papaya", 0)) {
    if (ir::value(hit.document.id) == 9100u) EXPECT_EQ(hit.document.text, v2.text);
  }
}

TEST(SegCloudServer, ReplayWindowSurvivesInterveningDeltas) {
  const ir::Corpus corpus = small_corpus(808);
  cloud::DataOwner owner;
  cloud::CloudServer server;
  owner.outsource_rsse(corpus, server);
  cloud::Channel channel(server);

  // Three deltas, serialized once so retries are byte-identical.
  std::vector<Bytes> payloads;
  for (std::uint64_t i = 0; i < 3; ++i) {
    cloud::UpdateRequest req;
    req.delta_id = i + 1;
    req.delta = owner.build_update(
        {ir::Document{ir::file_id(9200 + i), "d.txt", "oracle windowed"}}, {});
    payloads.push_back(req.serialize());
  }

  const auto first = cloud::UpdateResponse::deserialize(
      channel.call(cloud::MessageType::kUpdate, payloads[0]));
  for (std::size_t i = 1; i < payloads.size(); ++i)
    (void)channel.call(cloud::MessageType::kUpdate, payloads[i]);

  // A transport retry of delta 1 after deltas 2 and 3 landed (a second
  // client interleaving, a coordinator retry) must still replay from the
  // idempotency window, not silently double-apply.
  const auto replay = cloud::UpdateResponse::deserialize(
      channel.call(cloud::MessageType::kUpdate, payloads[0]));
  EXPECT_TRUE(replay.replayed);
  EXPECT_EQ(replay.entries_applied, first.entries_applied);
  EXPECT_EQ(replay.tombstones_applied, first.tombstones_applied);
  EXPECT_EQ(server.metrics().snapshot().updates, 3u);
}

TEST(SegCloudServer, SnapshotCarriesTheDynamicOverlay) {
  const ir::Corpus corpus = small_corpus(909);
  cloud::DataOwner owner;
  cloud::CloudServer server;
  owner.outsource_rsse(corpus, server);
  cloud::Channel channel(server);

  const ir::Document extra{ir::file_id(9300), "x.txt", "oracle snapshotted"};
  const std::uint64_t victim = ir::value(corpus.documents().front().id);
  (void)owner.stream_update(channel, {extra}, {ir::file_id(victim)});

  const cloud::SnapshotResponse snap = cloud::SnapshotResponse::deserialize(
      channel.call(cloud::MessageType::kSnapshot,
                   cloud::SnapshotRequest{}.serialize()));
  ASSERT_FALSE(snap.segments.empty());
  EXPECT_EQ(snap.next_seq, server.segment_next_seq());

  // A peer rebuilt from the snapshot serves the deltas, not just the
  // base: the tombstoned document stays gone, the added one is present.
  cloud::CloudServer peer;
  peer.store(sse::SecureIndex::deserialize(snap.index), {});
  for (const auto& [id, blob] : snap.files) peer.store_file(id, blob);
  std::vector<seg::Segment> segments;
  for (const Bytes& blob : snap.segments)
    segments.push_back(seg::Segment::deserialize(blob));
  peer.restore_segments(std::move(segments), snap.next_seq);

  const Bytes user_key = crypto::random_bytes(32);
  auto credentials =
      cloud::AuthorizationService::open(user_key, "u", owner.enroll_user(user_key, "u"));
  cloud::Channel peer_channel(peer);
  cloud::DataUser peer_user(credentials, peer_channel);
  cloud::DataUser source_user(credentials, channel);
  std::set<std::uint64_t> peer_ids;
  std::set<std::uint64_t> source_ids;
  for (const auto& hit : peer_user.ranked_search("oracle", 0))
    peer_ids.insert(ir::value(hit.document.id));
  for (const auto& hit : source_user.ranked_search("oracle", 0))
    source_ids.insert(ir::value(hit.document.id));
  EXPECT_EQ(peer_ids, source_ids);
  EXPECT_TRUE(peer_ids.contains(9300u));
  EXPECT_FALSE(peer_ids.contains(victim));
}

TEST(SegStore, DeploymentPersistsSegments) {
  namespace fs = std::filesystem;
  const ir::Corpus corpus = small_corpus(505);
  cloud::DataOwner owner;
  cloud::CloudServer server;
  owner.outsource_rsse(corpus, server);
  server.set_segment_policy(seg::SegPolicy{8});

  cloud::Channel channel(server);
  ir::Document extra{ir::file_id(7001), "x.txt", "oracle persistent oracle"};
  (void)owner.stream_update(channel, {extra}, {corpus.documents()[1].id});
  ASSERT_FALSE(server.segments().empty());

  const Bytes user_key = crypto::random_bytes(32);
  auto credentials =
      cloud::AuthorizationService::open(user_key, "u", owner.enroll_user(user_key, "u"));
  cloud::DataUser user(credentials, channel);
  std::vector<std::uint64_t> before;
  for (const auto& hit : user.ranked_search("oracle", 0))
    before.push_back(ir::value(hit.document.id));

  const fs::path dir =
      fs::temp_directory_path() / ("rsse_seg_store_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  store::save_deployment(server, dir.string());

  cloud::CloudServer reloaded;
  store::load_deployment(dir.string(), reloaded);
  EXPECT_FALSE(reloaded.segments().empty());
  EXPECT_EQ(reloaded.segment_next_seq(), server.segment_next_seq());

  cloud::Channel reloaded_channel(reloaded);
  cloud::DataUser reloaded_user(credentials, reloaded_channel);
  std::vector<std::uint64_t> after;
  for (const auto& hit : reloaded_user.ranked_search("oracle", 0))
    after.push_back(ir::value(hit.document.id));
  EXPECT_EQ(after, before);
  fs::remove_all(dir);
}

// ----- the acceptance scenario -----

std::vector<std::uint64_t> ids_of(const std::vector<cloud::RetrievedFile>& hits) {
  std::vector<std::uint64_t> ids;
  ids.reserve(hits.size());
  for (const auto& hit : hits) ids.push_back(ir::value(hit.document.id));
  return ids;
}

/// Tie-aware top-k equivalence against the plaintext oracle: right size,
/// only real matches, per-rank quantization level pinned, completeness
/// above the k-boundary (same contract as test_differential).
void check_ranked_modulo_ties(const baseline::PlaintextSearchEngine& engine,
                              const opse::ScoreQuantizer& quantizer,
                              const std::string& term,
                              const std::vector<std::uint64_t>& got, std::size_t k) {
  const auto full = engine.search(term, 0);
  const std::size_t expected = k == 0 ? full.size() : std::min(k, full.size());
  ASSERT_EQ(got.size(), expected) << term << " top-" << k;

  std::map<std::uint64_t, std::uint64_t> level;
  for (const auto& p : full) level[ir::value(p.file)] = quantizer.quantize(p.score);
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(level.contains(got[i])) << term << ": non-match id " << got[i];
    ASSERT_TRUE(seen.insert(got[i]).second) << term << ": duplicate " << got[i];
    EXPECT_EQ(level[got[i]], quantizer.quantize(full[i].score))
        << term << " rank " << i << " at the wrong quantization level";
  }
  if (!got.empty() && got.size() < full.size()) {
    const std::uint64_t boundary = level[got.back()];
    for (const auto& p : full) {
      if (quantizer.quantize(p.score) > boundary) {
        EXPECT_TRUE(seen.contains(ir::value(p.file)))
            << term << ": file above the top-" << k << " boundary missing";
      }
    }
  }
}

TEST(SegClusterAcceptance, ServesCorrectTopKWhileOwnerStreamsThousandUpdates) {
  constexpr std::uint32_t kShards = 3;
  const ir::Corpus corpus = small_corpus(606);
  cloud::DataOwner owner;

  // Reference leg: one CloudServer holding everything (no background
  // compaction — results must match regardless, by merge invariance).
  cloud::CloudServer reference;
  owner.outsource_rsse(corpus, reference);

  // Cluster leg: 3 shards over SimNet, aggressive seal policy and
  // background compaction on every shard.
  const cluster::ShardMap map(kShards);
  auto indexes = map.split_index(reference.index());
  auto file_sets = map.split_files(reference.files());
  std::vector<std::unique_ptr<cloud::CloudServer>> shard_servers;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    auto server = std::make_unique<cloud::CloudServer>();
    server->store(std::move(indexes[s]), std::move(file_sets[s]));
    server->set_segment_policy(seg::SegPolicy{48});
    server->enable_background_compaction(seg::CompactorOptions{2});
    shard_servers.push_back(std::move(server));
  }

  sim::SimOptions sim_options;
  sim_options.seed = 991;
  sim::SimNet net(sim_options);
  std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
  for (const auto& server : shard_servers) {
    auto set = std::make_unique<cluster::ReplicaSet>();
    set->add_replica(net.connect(*server));
    sets.push_back(std::move(set));
  }
  cluster::ClusterManifest manifest;
  manifest.num_shards = kShards;
  manifest.replicas = 1;
  manifest.total_rows = reference.index().num_rows();
  manifest.total_files = reference.num_files();
  cluster::ClusterCoordinator coordinator(manifest, std::move(sets));

  const Bytes user_key = crypto::random_bytes(32);
  auto credentials =
      cloud::AuthorizationService::open(user_key, "u", owner.enroll_user(user_key, "u"));
  cloud::DataUser cluster_user(credentials, coordinator);
  cloud::Channel reference_channel(reference);
  cloud::DataUser reference_user(credentials, reference_channel);

  // Live plaintext document set, mutated alongside the encrypted legs.
  std::vector<ir::Document> live(corpus.documents().begin(), corpus.documents().end());

  Xoshiro256 rng(606);
  const char* extra_terms[] = {"oracle", "segq", "segr", "segs"};
  std::uint64_t next_id = 50000;
  std::uint64_t total_ops = 0;
  std::uint64_t checked = 0;

  constexpr int kBatches = 110;  // 110 batches x ~10 ops > 1000 streamed ops
  for (int batch = 0; batch < kBatches; ++batch) {
    std::vector<ir::Document> adds;
    std::vector<sse::FileId> removes;
    for (int i = 0; i < 6; ++i) {
      // Tiny documents (3-6 tokens) keep owner-side OPM cost bounded.
      std::string text;
      const std::size_t tokens = 3 + rng.uniform_below(4);
      for (std::size_t t = 0; t < tokens; ++t) {
        text += extra_terms[rng.uniform_below(4)];
        text += ' ';
      }
      adds.push_back(ir::Document{ir::file_id(next_id), "u.txt", text});
      ++next_id;
    }
    // Remove up to 4 random live documents (never below a floor of 6).
    for (int i = 0; i < 4 && live.size() > 6; ++i) {
      const std::size_t pick = rng.uniform_below(live.size());
      removes.push_back(live[pick].id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    // One delta, identical ciphertext bytes to both legs (the coordinator
    // splits by shard; the reference applies it whole).
    cloud::UpdateRequest req;
    req.delta_id = static_cast<std::uint64_t>(batch) + 1;
    req.delta = owner.build_update(adds, removes);
    total_ops += req.delta.op_count;
    const Bytes payload = req.serialize();
    const auto cluster_resp = cloud::UpdateResponse::deserialize(
        coordinator.call(cloud::MessageType::kUpdate, payload));
    const auto reference_resp = cloud::UpdateResponse::deserialize(
        reference_channel.call(cloud::MessageType::kUpdate, payload));
    EXPECT_EQ(cluster_resp.entries_applied, reference_resp.entries_applied);
    EXPECT_EQ(cluster_resp.tombstones_applied, reference_resp.tombstones_applied);
    for (const ir::Document& doc : adds) live.push_back(doc);

    // Interleaved queries: every 11 batches both legs answer and must
    // agree exactly (same ciphertexts in, same OPM merge order out) and
    // match the plaintext oracle modulo quantizer ties.
    if (batch % 11 == 5) {
      ir::Corpus live_corpus;
      for (const auto& doc : live) live_corpus.add(doc);
      const baseline::PlaintextSearchEngine oracle(live_corpus);
      for (const std::string term : {"oracle", "segq"}) {
        for (const std::size_t k : {std::size_t{5}, std::size_t{0}}) {
          const auto via_cluster = ids_of(cluster_user.ranked_search(term, k));
          const auto via_reference = ids_of(reference_user.ranked_search(term, k));
          EXPECT_EQ(via_cluster, via_reference)
              << term << " top-" << k << " at batch " << batch;
          check_ranked_modulo_ties(oracle, *owner.quantizer(), term, via_cluster, k);
          ++checked;
        }
      }
    }
  }
  EXPECT_GE(total_ops, 1000u);
  EXPECT_GE(checked, 30u);

  // The compactor must have actually run — at least one background merge
  // across the shards (aggressive policy: guaranteed many).
  std::uint64_t merges = 0;
  for (const auto& server : shard_servers) {
    server->wait_for_compaction_idle();
    merges += server->compactions_completed();
    EXPECT_GT(server->segments().next_seq(), 1u);
  }
  EXPECT_GE(merges, 1u);

  // Final verification after all compaction settled.
  ir::Corpus live_corpus;
  for (const auto& doc : live) live_corpus.add(doc);
  const baseline::PlaintextSearchEngine oracle(live_corpus);
  for (const std::string term : {"oracle", "segq", "segr"}) {
    const auto via_cluster = ids_of(cluster_user.ranked_search(term, 0));
    EXPECT_EQ(via_cluster, ids_of(reference_user.ranked_search(term, 0))) << term;
    check_ranked_modulo_ties(oracle, *owner.quantizer(), term, via_cluster, 0);
  }

  // Update leakage accumulated across the shards (any single shard may
  // see no rows — only 4 distinct terms are in play — but the cluster as
  // a whole absorbed every entry and tombstone).
  seg::UpdateLeakage leakage;
  for (const auto& server : shard_servers) {
    const seg::UpdateLeakage shard = server->segments().leakage();
    leakage.updates += shard.updates;
    leakage.entries_total += shard.entries_total;
    leakage.tombstones_total += shard.tombstones_total;
  }
  EXPECT_GT(leakage.updates, 0u);
  EXPECT_GT(leakage.entries_total, 0u);
  EXPECT_GT(leakage.tombstones_total, 0u);
}

}  // namespace
}  // namespace rsse
