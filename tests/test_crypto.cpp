// Crypto substrate tests: known-answer vectors for SHA-256 and
// HMAC-SHA256, round-trip + tamper tests for AES-CTR/GCM, PRF/keyed-hash
// determinism and domain separation, and TapeGen's determinism contract
// (the property the OPE construction stands on).
#include <gtest/gtest.h>

#include "crypto/aes_ctr.h"
#include "crypto/aes_gcm.h"
#include "crypto/csprng.h"
#include "crypto/hmac_sha256.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "crypto/tapegen.h"
#include "util/errors.h"

namespace rsse::crypto {
namespace {

TEST(Sha256, EmptyStringVector) {
  const auto d = sha256(to_bytes(""));
  EXPECT_EQ(hex_encode(BytesView(d.data(), d.size())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  const auto d = sha256(to_bytes("abc"));
  EXPECT_EQ(hex_encode(BytesView(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update(to_bytes("hello "));
  h.update(to_bytes("world"));
  const auto incremental = h.finish();
  const auto oneshot = sha256(to_bytes("hello world"));
  EXPECT_EQ(incremental, oneshot);
}

TEST(Sha256, FinishResetsForReuse) {
  Sha256 h;
  h.update(to_bytes("abc"));
  const auto first = h.finish();
  h.update(to_bytes("abc"));
  const auto second = h.finish();
  EXPECT_EQ(first, second);
}

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto tag = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(hex_encode(BytesView(tag.data(), tag.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256, Rfc4231Case2) {
  const auto tag = hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(hex_encode(BytesView(tag.data(), tag.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const auto tag = hmac_sha256(key, data);
  EXPECT_EQ(hex_encode(BytesView(tag.data(), tag.size())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size (131 bytes).
TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const auto tag =
      hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex_encode(BytesView(tag.data(), tag.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, IncrementalReuseUnderSameKey) {
  HmacSha256 mac(to_bytes("key"));
  mac.update(to_bytes("message"));
  const auto first = mac.finish();
  mac.update(to_bytes("message"));
  const auto second = mac.finish();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, hmac_sha256(to_bytes("key"), to_bytes("message")));
}

TEST(Csprng, ProducesRequestedLengthAndVaries) {
  const Bytes a = random_bytes(32);
  const Bytes b = random_bytes(32);
  EXPECT_EQ(a.size(), 32u);
  EXPECT_NE(a, b);  // 2^-256 false-failure probability
}

TEST(AesCtr, RoundTrip) {
  const Bytes key = random_bytes(kAesKeySize);
  const Bytes plaintext = to_bytes("the quick brown fox jumps over the lazy dog");
  const Bytes blob = aes_ctr_encrypt(key, plaintext);
  EXPECT_EQ(blob.size(), kAesIvSize + plaintext.size());
  EXPECT_EQ(aes_ctr_decrypt(key, blob), plaintext);
}

TEST(AesCtr, EmptyPlaintextRoundTrip) {
  const Bytes key = random_bytes(kAesKeySize);
  const Bytes blob = aes_ctr_encrypt(key, {});
  EXPECT_EQ(aes_ctr_decrypt(key, blob), Bytes{});
}

TEST(AesCtr, FreshIvRandomizesCiphertext) {
  const Bytes key = random_bytes(kAesKeySize);
  const Bytes p = to_bytes("same message");
  EXPECT_NE(aes_ctr_encrypt(key, p), aes_ctr_encrypt(key, p));
}

TEST(AesCtr, DeterministicWithFixedIv) {
  const Bytes key = random_bytes(kAesKeySize);
  const Bytes iv(kAesIvSize, 0x42);
  const Bytes p = to_bytes("same message");
  EXPECT_EQ(aes_ctr_encrypt_with_iv(key, iv, p), aes_ctr_encrypt_with_iv(key, iv, p));
}

TEST(AesCtr, RejectsBadKeySize) {
  EXPECT_THROW(aes_ctr_encrypt(Bytes(16, 0), to_bytes("x")), InvalidArgument);
}

TEST(AesCtr, RejectsTruncatedBlob) {
  const Bytes key = random_bytes(kAesKeySize);
  EXPECT_THROW(aes_ctr_decrypt(key, Bytes(8, 0)), ParseError);
}

TEST(AesGcm, RoundTripWithAad) {
  const Bytes key = random_bytes(kAesKeySize);
  const Bytes p = to_bytes("secret file contents");
  const Bytes aad = to_bytes("file-17");
  const Bytes blob = aes_gcm_encrypt(key, p, aad);
  EXPECT_EQ(aes_gcm_decrypt(key, blob, aad), p);
}

TEST(AesGcm, DetectsCiphertextTampering) {
  const Bytes key = random_bytes(kAesKeySize);
  Bytes blob = aes_gcm_encrypt(key, to_bytes("payload"), {});
  blob[kGcmNonceSize] ^= 0x01;
  EXPECT_THROW(aes_gcm_decrypt(key, blob, {}), CryptoError);
}

TEST(AesGcm, DetectsAadMismatch) {
  const Bytes key = random_bytes(kAesKeySize);
  const Bytes blob = aes_gcm_encrypt(key, to_bytes("payload"), to_bytes("id-1"));
  EXPECT_THROW(aes_gcm_decrypt(key, blob, to_bytes("id-2")), CryptoError);
}

TEST(AesGcm, DetectsWrongKey) {
  const Bytes blob = aes_gcm_encrypt(random_bytes(kAesKeySize), to_bytes("payload"), {});
  EXPECT_THROW(aes_gcm_decrypt(random_bytes(kAesKeySize), blob, {}), CryptoError);
}

TEST(Prf, DeterministicAndKeySeparated) {
  const Prf f1(to_bytes("key-one"));
  const Prf f2(to_bytes("key-two"));
  EXPECT_EQ(f1.derive("network"), f1.derive("network"));
  EXPECT_NE(f1.derive("network"), f2.derive("network"));
  EXPECT_NE(f1.derive("network"), f1.derive("networks"));
}

TEST(Prf, DeriveNExtendsAndTruncates) {
  const Prf f(to_bytes("key"));
  const Bytes long_out = f.derive_n(to_bytes("label"), 100);
  EXPECT_EQ(long_out.size(), 100u);
  const Bytes short_out = f.derive_n(to_bytes("label"), 5);
  EXPECT_EQ(short_out.size(), 5u);
  // Prefix consistency: the short output is a prefix of the long one.
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
}

TEST(KeyedHash, OutputSizeFollowsPBits) {
  const KeyedHash pi(to_bytes("key"), 160);
  EXPECT_EQ(pi.hash("word").size(), 20u);
  const KeyedHash pi256(to_bytes("key"), 256);
  EXPECT_EQ(pi256.hash("word").size(), 32u);
}

TEST(KeyedHash, DomainSeparatedFromPrf) {
  // Same key, same input: pi and f must disagree (independent roles).
  const Prf f(to_bytes("shared-key"));
  const KeyedHash pi(to_bytes("shared-key"), 256);
  EXPECT_NE(f.derive("w"), pi.hash("w"));
}

TEST(KeyedHash, RejectsBadPBits) {
  EXPECT_THROW(KeyedHash(to_bytes("k"), 0), InvalidArgument);
  EXPECT_THROW(KeyedHash(to_bytes("k"), 12), InvalidArgument);
  EXPECT_THROW(KeyedHash(to_bytes("k"), 512), InvalidArgument);
}

TEST(Tape, DeterministicPerContext) {
  const Bytes key = to_bytes("ope-key");
  const Bytes ctx = encode_split_context(1, 128, 1, 1000, 500);
  Tape a(key, ctx);
  Tape b(key, ctx);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Tape, DifferentContextsDiverge) {
  const Bytes key = to_bytes("ope-key");
  Tape a(key, encode_split_context(1, 128, 1, 1000, 500));
  Tape b(key, encode_split_context(1, 128, 1, 1000, 501));
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Tape, DifferentKeysDiverge) {
  const Bytes ctx = encode_split_context(1, 128, 1, 1000, 500);
  Tape a(to_bytes("key-a"), ctx);
  Tape b(to_bytes("key-b"), ctx);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Tape, DrawContextDistinguishesFileIds) {
  // The one-to-many modification: same plaintext, different file id =>
  // different coin stream.
  const Bytes key = to_bytes("k");
  Tape a(key, encode_draw_context(5, 5, 10, 20, 5, true, 1));
  Tape b(key, encode_draw_context(5, 5, 10, 20, 5, true, 2));
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Tape, DrawContextWithAndWithoutFileIdDiffer) {
  const Bytes key = to_bytes("k");
  Tape a(key, encode_draw_context(5, 5, 10, 20, 5, false, 0));
  Tape b(key, encode_draw_context(5, 5, 10, 20, 5, true, 0));
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Tape, UniformBelowStaysInRange) {
  Tape t(to_bytes("k"), to_bytes("ctx"));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(t.uniform_below(7), 7u);
    EXPECT_LT(t.uniform_below(1ull << 46), 1ull << 46);
  }
  EXPECT_EQ(t.uniform_below(1), 0u);
}

TEST(Tape, NextDoubleInUnitInterval) {
  Tape t(to_bytes("k"), to_bytes("ctx"));
  for (int i = 0; i < 1000; ++i) {
    const double u = t.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Tape, UniformBelowRejectsZero) {
  Tape t(to_bytes("k"), to_bytes("ctx"));
  EXPECT_THROW(t.uniform_below(0), InvalidArgument);
}

}  // namespace
}  // namespace rsse::crypto
