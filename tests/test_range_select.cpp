// Range-size selection (eq. 3/4, Fig. 5): bound shapes, monotonicity,
// the paper's worked example, and the looser-bound orderings of Fig. 5.
#include <gtest/gtest.h>

#include "opse/range_select.h"
#include "util/errors.h"

namespace rsse::opse {
namespace {

RangeSelectParams paper_params(RecursionBound bound = RecursionBound::kFiveLogMPlus12) {
  // Fig. 5: max/lambda = 0.06 via max = 60 duplicates, lambda = 1000
  // postings, M = 128, c = 1.1.
  return RangeSelectParams{.max_duplicates = 60,
                           .average_list_len = 1000,
                           .domain_size = 128,
                           .min_entropy_c = 1.1,
                           .bound = bound};
}

TEST(RecursionBound, MatchesFormulas) {
  EXPECT_DOUBLE_EQ(recursion_bound_bits(128, RecursionBound::kFiveLogMPlus12), 47.0);
  EXPECT_DOUBLE_EQ(recursion_bound_bits(128, RecursionBound::kFiveLogM), 35.0);
  EXPECT_DOUBLE_EQ(recursion_bound_bits(128, RecursionBound::kFourLogM), 28.0);
  EXPECT_THROW(recursion_bound_bits(1, RecursionBound::kFiveLogM), InvalidArgument);
}

TEST(RangeSelect, LhsDecreasesInK) {
  const auto p = paper_params();
  for (std::uint64_t k = 10; k < 60; ++k)
    EXPECT_GT(lhs_log2(p, k), lhs_log2(p, k + 1));
}

TEST(RangeSelect, RhsDecreasesSlowlyInK) {
  const auto p = paper_params();
  for (std::uint64_t k = 2; k < 100; ++k) {
    EXPECT_GT(rhs_log2(p, k), rhs_log2(p, k + 1));
    EXPECT_LT(rhs_log2(p, k), 0.0);
  }
}

TEST(RangeSelect, PaperExampleLandsNearTwoToTheFortySix) {
  // The paper reports |R| = 2^46 for the 5logM+12 bound. Our exact eq. 4
  // arithmetic crosses within a few bits of that; pin the band so any
  // regression in the formulas is caught.
  const std::uint64_t k = choose_range_bits(paper_params());
  EXPECT_GE(k, 44u);
  EXPECT_LE(k, 52u);
  // Chosen k satisfies the inequality; k-1 must not.
  EXPECT_LE(lhs_log2(paper_params(), k), rhs_log2(paper_params(), k));
  EXPECT_GT(lhs_log2(paper_params(), k - 1), rhs_log2(paper_params(), k - 1));
}

TEST(RangeSelect, LooserBoundsShrinkTheRange) {
  // Fig. 5's second observation: replacing 5logM+12 with 5logM or 4logM
  // reduces the admissible |R| (paper quotes 2^34 and 2^27).
  const std::uint64_t k_full = choose_range_bits(paper_params());
  const std::uint64_t k_five = choose_range_bits(paper_params(RecursionBound::kFiveLogM));
  const std::uint64_t k_four = choose_range_bits(paper_params(RecursionBound::kFourLogM));
  EXPECT_GT(k_full, k_five);
  EXPECT_GT(k_five, k_four);
  EXPECT_GE(k_five, 32u);
  EXPECT_LE(k_five, 42u);
  EXPECT_GE(k_four, 25u);
  EXPECT_LE(k_four, 35u);
}

TEST(RangeSelect, MoreDuplicatesDemandLargerRange) {
  auto few = paper_params();
  few.max_duplicates = 10;
  auto many = paper_params();
  many.max_duplicates = 500;
  EXPECT_LT(choose_range_bits(few), choose_range_bits(many));
}

TEST(RangeSelect, LargerCDemandsLargerRange) {
  auto lax = paper_params();
  lax.min_entropy_c = 1.05;
  auto strict = paper_params();
  strict.min_entropy_c = 1.5;
  EXPECT_LE(choose_range_bits(lax), choose_range_bits(strict));
}

TEST(RangeSelect, ReturnsZeroWhenWindowTooSmall) {
  EXPECT_EQ(choose_range_bits(paper_params(), 2, 10), 0u);
}

TEST(RangeSelect, Preconditions) {
  auto p = paper_params();
  p.max_duplicates = 0;
  EXPECT_THROW(choose_range_bits(p), InvalidArgument);
  p = paper_params();
  p.min_entropy_c = 1.0;
  EXPECT_THROW(choose_range_bits(p), InvalidArgument);
  p = paper_params();
  p.average_list_len = 0;
  EXPECT_THROW(lhs_log2(p, 40), InvalidArgument);
  EXPECT_THROW(rhs_log2(paper_params(), 1), InvalidArgument);
}

}  // namespace
}  // namespace rsse::opse
