// PBKDF2-HMAC-SHA256 against the published test vectors (the SHA-256
// analogues of RFC 6070, as listed in RFC 7914 errata / common usage).
#include <gtest/gtest.h>

#include "crypto/pbkdf2.h"
#include "util/errors.h"

namespace rsse::crypto {
namespace {

TEST(Pbkdf2, Vector1Iteration) {
  const Bytes dk = pbkdf2_hmac_sha256(to_bytes("password"), to_bytes("salt"), 1, 32);
  EXPECT_EQ(hex_encode(dk),
            "120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b");
}

TEST(Pbkdf2, Vector2Iterations) {
  const Bytes dk = pbkdf2_hmac_sha256(to_bytes("password"), to_bytes("salt"), 2, 32);
  EXPECT_EQ(hex_encode(dk),
            "ae4d0c95af6b46d32d0adff928f06dd02a303f8ef3c251dfd6e2d85a95474c43");
}

TEST(Pbkdf2, Vector4096Iterations) {
  const Bytes dk = pbkdf2_hmac_sha256(to_bytes("password"), to_bytes("salt"), 4096, 32);
  EXPECT_EQ(hex_encode(dk),
            "c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a");
}

TEST(Pbkdf2, LongInputsMultiBlockOutput) {
  // RFC 6070's case 5 adapted to SHA-256 (40-byte output spans blocks).
  const Bytes dk = pbkdf2_hmac_sha256(
      to_bytes("passwordPASSWORDpassword"),
      to_bytes("saltSALTsaltSALTsaltSALTsaltSALTsalt"), 4096, 40);
  EXPECT_EQ(hex_encode(dk),
            "348c89dbcbd32b2f32d814b8116e84cf2b17347ebc1800181c4e2a1fb8dd53e1"
            "c635518c7dac47e9");
}

TEST(Pbkdf2, OutputLengthIsExact) {
  EXPECT_EQ(pbkdf2_hmac_sha256(to_bytes("p"), to_bytes("s"), 10, 1).size(), 1u);
  EXPECT_EQ(pbkdf2_hmac_sha256(to_bytes("p"), to_bytes("s"), 10, 33).size(), 33u);
  EXPECT_EQ(pbkdf2_hmac_sha256(to_bytes("p"), to_bytes("s"), 10, 64).size(), 64u);
}

TEST(Pbkdf2, ShortOutputIsPrefixOfLong) {
  const Bytes long_dk = pbkdf2_hmac_sha256(to_bytes("p"), to_bytes("s"), 100, 32);
  const Bytes short_dk = pbkdf2_hmac_sha256(to_bytes("p"), to_bytes("s"), 100, 16);
  EXPECT_TRUE(std::equal(short_dk.begin(), short_dk.end(), long_dk.begin()));
}

TEST(Pbkdf2, Preconditions) {
  EXPECT_THROW(pbkdf2_hmac_sha256(to_bytes("p"), to_bytes("s"), 0, 32), InvalidArgument);
  EXPECT_THROW(pbkdf2_hmac_sha256(to_bytes("p"), to_bytes("s"), 10, 0), InvalidArgument);
}

}  // namespace
}  // namespace rsse::crypto
