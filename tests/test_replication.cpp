// Durable replicated updates (ISSUE 7 tentpole, parts b+c): quorum
// fan-out, staleness routing, WAL crash-restart of a replica inside a
// live cluster, and anti-entropy catch-up — all over the deterministic
// SimNet, so the flagship storm drill can assert byte-identical
// transcripts across two same-seed runs.
//
// Every test compares the cluster against a reference single server fed
// the exact same serialized deltas: with one shard the coordinator must
// answer exactly like that server (same ciphertexts, same OPM order), so
// "zero wrong results" is full equality, stronger than the tie-aware
// checks the multi-shard differential oracle needs.
//
// Determinism notes (same contract as test_differential.cpp): payloads
// are built ONCE per fixture (entry IVs are fresh per build); the replica
// down-cooldown is far longer than the test (down-state is real-clock
// based); catch-up in the transcript-pinned test is enabled only at a
// quiesced point, because the background worker's interleaving with live
// traffic is schedule-dependent (the concurrent variant below exercises
// exactly that, without transcript asserts).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cloud/channel.h"
#include "cloud/cloud_server.h"
#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cloud/protocol.h"
#include "cluster/coordinator.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "sim/sim_net.h"
#include "store/deployment.h"
#include "util/errors.h"

namespace rsse {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr std::size_t kStormUpdates = 512;   ///< applied before the repair
constexpr std::size_t kPostRepair = 8;       ///< applied after convergence
constexpr std::size_t kKillAt = 200;         ///< storm index of the replica kill

std::vector<std::uint64_t> ids_of(const std::vector<cloud::RetrievedFile>& hits) {
  std::vector<std::uint64_t> ids;
  ids.reserve(hits.size());
  for (const auto& hit : hits) ids.push_back(ir::value(hit.document.id));
  return ids;
}

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             (std::string("rsse_replication_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
    base_dir_ = root_ + "/base";

    ir::CorpusGenOptions opts;
    opts.num_documents = 14;
    opts.vocabulary_size = 50;
    opts.injected.push_back(ir::InjectedKeyword{"oracle", 8, 0.4, 25});
    opts.seed = 20100621;  // the paper's conference year+month, nothing magic
    corpus_ = ir::generate_corpus(opts);

    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus_, template_server_);
    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = cloud::AuthorizationService::open(
        user_key, "u", owner_->enroll_user(user_key, "u"));

    store::save_deployment(template_server_, base_dir_);
    build_payloads();
  }

  void TearDown() override { fs::remove_all(root_); }

  /// The fixed update storm: one short add per delta (every document
  /// carries the injected probe plus rotating filler keywords), every
  /// sixth delta also tombstones an earlier add. Serialized once — the
  /// same bytes go to every replica, the reference server, and both runs
  /// of the determinism drill.
  void build_payloads() {
    static const char* kFiller[] = {"alpha",   "bravo",   "charlie", "delta",
                                    "echo",    "foxtrot", "golfing", "hotel",
                                    "india",   "juliet",  "kilo",    "lima"};
    constexpr std::size_t kFillerCount = sizeof(kFiller) / sizeof(kFiller[0]);
    std::vector<sse::FileId> added;
    std::size_t next_remove = 0;
    for (std::size_t i = 0; i < kStormUpdates + kPostRepair; ++i) {
      const std::uint64_t doc_id = 90000 + i;
      std::string text = "oracle ";
      text += kFiller[i % kFillerCount];
      text += ' ';
      text += kFiller[(i * 7 + 3) % kFillerCount];
      std::vector<ir::Document> adds = {
          ir::Document{ir::file_id(doc_id), "storm.txt", text}};
      std::vector<sse::FileId> removes;
      if (i % 6 == 5 && next_remove < added.size())
        removes.push_back(added[next_remove++]);
      cloud::UpdateRequest req;
      req.delta_id = i + 1;
      req.delta = owner_->build_update(adds, removes);
      payloads_.push_back(req.serialize());
      added.push_back(ir::file_id(doc_id));
    }
  }

  /// One shard served by R replica servers — each a distinct CloudServer
  /// loaded from its own copy of the base deployment (so each has its own
  /// WAL sidecar), fronted by SimNet endpoints — plus the reference
  /// server. Member order doubles as destruction order: the coordinator
  /// (and its catch-up worker) dies before the net and the servers it
  /// calls into.
  struct Cluster {
    std::vector<std::string> dirs;
    std::vector<std::unique_ptr<cloud::CloudServer>> servers;
    std::unique_ptr<cloud::CloudServer> reference;
    std::unique_ptr<sim::SimNet> net;
    std::vector<sim::SimTransport*> handles;  ///< borrowed from the set
    std::unique_ptr<cluster::ClusterCoordinator> coordinator;
  };

  [[nodiscard]] Cluster make_cluster(std::size_t replicas,
                                     std::uint32_t write_quorum,
                                     const std::string& tag,
                                     std::uint64_t seed) const {
    Cluster c;
    for (std::size_t r = 0; r < replicas; ++r) {
      c.dirs.push_back(root_ + "/" + tag + "_replica" + std::to_string(r));
      fs::copy(base_dir_, c.dirs.back(), fs::copy_options::recursive);
      c.servers.push_back(std::make_unique<cloud::CloudServer>());
      store::load_deployment(c.dirs.back(), *c.servers.back());
      c.servers.back()->set_segment_policy(seg::SegPolicy{64});
    }
    const std::string ref_dir = root_ + "/" + tag + "_reference";
    fs::copy(base_dir_, ref_dir, fs::copy_options::recursive);
    c.reference = std::make_unique<cloud::CloudServer>();
    store::load_deployment(ref_dir, *c.reference);
    c.reference->set_segment_policy(seg::SegPolicy{64});

    sim::SimOptions options;
    options.seed = seed;
    c.net = std::make_unique<sim::SimNet>(options);
    auto set = std::make_unique<cluster::ReplicaSet>();
    for (std::size_t r = 0; r < replicas; ++r) {
      auto transport = c.net->connect(*c.servers[r]);
      c.handles.push_back(transport.get());
      set->add_replica(std::move(transport));
    }
    std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
    sets.push_back(std::move(set));

    cluster::ClusterManifest manifest;
    manifest.num_shards = 1;
    manifest.replicas = static_cast<std::uint32_t>(replicas);
    manifest.total_rows = template_server_.index().num_rows();
    manifest.total_files = template_server_.num_files();

    cluster::CoordinatorOptions copts;
    copts.retry.max_attempts = 3;
    copts.retry.base_backoff = 0ms;
    copts.retry.max_backoff = 0ms;
    // Down-state is real-clock based; a cooldown longer than the test
    // keeps it stable, which transcript identity depends on.
    copts.retry.down_cooldown = std::chrono::minutes(10);
    copts.retry.write_quorum = write_quorum;
    c.coordinator = std::make_unique<cluster::ClusterCoordinator>(
        manifest, std::move(sets), copts);
    return c;
  }

  /// Applies payload `i` to the cluster AND the reference server (the
  /// reference sits outside the SimNet, so it never perturbs transcripts).
  void apply(Cluster& c, std::size_t i) const {
    (void)c.coordinator->call(cloud::MessageType::kUpdate, payloads_[i]);
    (void)c.reference->handle(cloud::MessageType::kUpdate, payloads_[i]);
  }

  /// Runs the probe queries against cluster and reference; asserts full
  /// equality and returns the cluster's answers (for run-to-run pinning).
  std::vector<std::vector<std::uint64_t>> expect_queries_match(Cluster& c,
                                                               const char* where) const {
    cloud::DataUser user(credentials_, *c.coordinator);
    cloud::Channel ref_channel(*c.reference);
    cloud::DataUser ref_user(credentials_, ref_channel);
    std::vector<std::vector<std::uint64_t>> answers;
    for (const char* term : {"oracle", "alpha", "foxtrot", "zzznothing"}) {
      answers.push_back(ids_of(user.ranked_search(term, 5)));
      EXPECT_EQ(answers.back(), ids_of(ref_user.ranked_search(term, 5)))
          << where << ": " << term;
    }
    return answers;
  }

  struct StormRun {
    std::vector<std::vector<std::uint64_t>> results;
    Bytes transcript;
    std::uint64_t backfills = 0;
  };

  /// The flagship drill: replica 2 dies mid-storm, updates keep
  /// committing on a 2-of-3 quorum with the dead replica marked stale,
  /// the replica restarts from its WAL, anti-entropy replays what it
  /// missed, and the cluster converges — then takes live traffic on all
  /// three replicas again.
  StormRun run_storm(const std::string& tag) {
    Cluster c = make_cluster(3, /*write_quorum=*/2, tag, /*seed=*/0xC0FFEE);
    StormRun run;

    for (std::size_t i = 0; i < kStormUpdates; ++i) {
      if (i == kKillAt) c.handles[2]->set_down(true);
      apply(c, i);
      if (i == kKillAt) {
        // The first update the dead replica missed marks it stale: reads
        // and further live fan-out route around it from here on.
        EXPECT_TRUE(c.coordinator->shard(0).is_stale(2));
      }
      if (i % 64 == 63) {
        auto answers = expect_queries_match(c, "storm");
        run.results.insert(run.results.end(), answers.begin(), answers.end());
      }
    }
    EXPECT_EQ(c.coordinator->shard(0).stale_replicas(), 1u);

    // Crash-restart: the replica's in-memory overlay dies with the
    // process; a fresh load must recover every update it ACKED from its
    // WAL sidecar (it was killed at update kKillAt, so it is behind the
    // quorum — but not empty).
    c.servers[2] = std::make_unique<cloud::CloudServer>();
    store::load_deployment(c.dirs[2], *c.servers[2]);
    c.servers[2]->set_segment_policy(seg::SegPolicy{64});
    EXPECT_GT(c.servers[2]->segment_next_seq(), 1u);
    EXPECT_LT(c.servers[2]->segment_next_seq(), c.servers[0]->segment_next_seq());
    c.handles[2]->rebind(*c.servers[2]);
    c.handles[2]->set_down(false);

    // Anti-entropy: replay the donor's WAL suffix until the restarted
    // replica converges. (Enabled only now, at a quiesced point — see the
    // determinism note in the file header.)
    cluster::CatchUpOptions cu;
    cu.batch_records = 64;  // exercise backfill paging
    cu.install_snapshot = [&c](std::size_t, std::size_t replica,
                               const cloud::SnapshotResponse& snapshot) {
      c.servers[replica]->install_snapshot(snapshot);
      return true;
    };
    c.coordinator->enable_catch_up(std::move(cu));
    c.coordinator->notify_catch_up();
    c.coordinator->wait_for_catch_up_idle();

    EXPECT_EQ(c.coordinator->shard(0).stale_replicas(), 0u);
    EXPECT_EQ(c.servers[2]->segment_next_seq(), c.servers[0]->segment_next_seq());
    EXPECT_EQ(c.servers[2]->segment_next_seq(), c.reference->segment_next_seq());
    run.backfills = c.coordinator->backfills_completed();
    EXPECT_GT(run.backfills, 0u);
    // The donor never checkpointed mid-storm, so its retained WAL reached
    // all the way back — no snapshot fallback.
    EXPECT_EQ(c.coordinator->snapshot_repairs_completed(), 0u);

    // Back in rotation: post-repair updates reach all three replicas.
    for (std::size_t i = kStormUpdates; i < payloads_.size(); ++i) apply(c, i);
    const cluster::ReplicaSet& set = c.coordinator->shard(0);
    EXPECT_EQ(set.applied_seq(0), set.applied_seq(1));
    EXPECT_EQ(set.applied_seq(1), set.applied_seq(2));
    EXPECT_EQ(set.applied_seq(0), c.reference->segment_next_seq());
    auto answers = expect_queries_match(c, "post-repair");
    run.results.insert(run.results.end(), answers.begin(), answers.end());

    run.transcript = c.net->transcript();
    return run;
  }

  std::string root_;
  std::string base_dir_;
  ir::Corpus corpus_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer template_server_;
  cloud::UserCredentials credentials_;
  std::vector<Bytes> payloads_;
};

TEST_F(ReplicationTest, UpdateFanoutReachesEveryReplica) {
  Cluster c = make_cluster(3, /*write_quorum=*/2, "fanout", 3);
  const auto ack = cloud::UpdateResponse::deserialize(
      c.coordinator->call(cloud::MessageType::kUpdate, payloads_[0]));
  EXPECT_GT(ack.entries_applied, 0u);
  EXPECT_FALSE(ack.replayed);
  for (std::size_t r = 0; r < 3; ++r)
    EXPECT_EQ(c.servers[r]->segment_next_seq(), ack.next_seq) << "replica " << r;
  const cluster::ReplicaSet& set = c.coordinator->shard(0);
  EXPECT_EQ(set.stale_replicas(), 0u);
  for (std::size_t r = 0; r < 3; ++r)
    EXPECT_EQ(set.applied_seq(r), ack.next_seq) << "replica " << r;
}

TEST_F(ReplicationTest, QuorumMissFailsTheUpdateAndRetryCommitsWithoutStragglers) {
  // write_quorum 0 = every targeted replica must ack.
  Cluster c = make_cluster(3, /*write_quorum=*/0, "quorum", 11);
  apply(c, 0);
  c.handles[2]->set_down(true);

  // All-or-nothing is preserved: two acks out of three targeted is a
  // quorum miss, surfaced to the owner as an error.
  EXPECT_THROW((void)c.coordinator->call(cloud::MessageType::kUpdate, payloads_[1]),
               Error);
  EXPECT_EQ(c.coordinator->registry()
                .counter("rsse_cluster_update_quorum_failures_total", "")
                .value(),
            1u);
  // The two live replicas acked a sequence the dead one never reported,
  // so the health bookkeeping already marked it stale.
  EXPECT_TRUE(c.coordinator->shard(0).is_stale(2));

  // The owner retries the same delta (same delta_id). The straggler now
  // sits out, the quorum is the two targeted replicas, and both dedup the
  // replay instead of double-applying.
  const auto ack = cloud::UpdateResponse::deserialize(
      c.coordinator->call(cloud::MessageType::kUpdate, payloads_[1]));
  EXPECT_TRUE(ack.replayed);
  (void)c.reference->handle(cloud::MessageType::kUpdate, payloads_[1]);
  expect_queries_match(c, "stale window");

  // Revive, catch up, and verify the straggler is back in the write path.
  c.handles[2]->set_down(false);
  c.coordinator->enable_catch_up();
  c.coordinator->notify_catch_up();
  c.coordinator->wait_for_catch_up_idle();
  EXPECT_EQ(c.coordinator->shard(0).stale_replicas(), 0u);
  EXPECT_GT(c.coordinator->backfills_completed(), 0u);

  apply(c, 2);
  const cluster::ReplicaSet& set = c.coordinator->shard(0);
  EXPECT_EQ(set.applied_seq(0), set.applied_seq(2));
  EXPECT_EQ(set.applied_seq(0), c.reference->segment_next_seq());
  expect_queries_match(c, "after catch-up");
}

TEST_F(ReplicationTest, CheckpointedDonorFallsBackToSnapshotRepair) {
  Cluster c = make_cluster(2, /*write_quorum=*/1, "snapshot", 5);
  for (std::size_t i = 0; i < 3; ++i) apply(c, i);
  c.handles[1]->set_down(true);
  for (std::size_t i = 3; i < 6; ++i) apply(c, i);  // 1-of-2 quorum commits
  EXPECT_TRUE(c.coordinator->shard(0).is_stale(1));

  // The donor checkpoints: an atomic-swap save truncates its WAL, so its
  // retained log no longer reaches back to the laggard's cursor and the
  // WAL-suffix backfill cannot run.
  store::save_deployment(*c.servers[0], c.dirs[0]);
  EXPECT_EQ(c.servers[0]->wal_tail_records(), 0u);

  c.handles[1]->set_down(false);
  cluster::CatchUpOptions cu;
  cu.install_snapshot = [&c](std::size_t, std::size_t replica,
                             const cloud::SnapshotResponse& snapshot) {
    c.servers[replica]->install_snapshot(snapshot);
    return true;
  };
  c.coordinator->enable_catch_up(std::move(cu));
  c.coordinator->notify_catch_up();
  c.coordinator->wait_for_catch_up_idle();

  EXPECT_EQ(c.coordinator->snapshot_repairs_completed(), 1u);
  EXPECT_EQ(c.coordinator->shard(0).stale_replicas(), 0u);
  EXPECT_EQ(c.servers[1]->segment_next_seq(), c.servers[0]->segment_next_seq());
  expect_queries_match(c, "after snapshot repair");

  // And the rebuilt replica takes live writes again.
  apply(c, 6);
  EXPECT_EQ(c.servers[1]->segment_next_seq(), c.servers[0]->segment_next_seq());
}

TEST_F(ReplicationTest, StormSurvivesReplicaKillAndReplaysByteIdentically) {
  const StormRun first = run_storm("run0");
  if (::testing::Test::HasFailure()) return;  // diagnose one run at a time
  const StormRun second = run_storm("run1");

  // The determinism contract (DESIGN.md Sec. 9), extended to the write
  // path: same seed, same payloads, same kill/recovery schedule — the
  // two runs must agree on every answer, every replayed record, and
  // every byte of the per-endpoint transcript.
  EXPECT_EQ(second.results, first.results);
  EXPECT_EQ(second.backfills, first.backfills);
  EXPECT_EQ(second.transcript, first.transcript);
}

TEST_F(ReplicationTest, ConcurrentCatchUpConvergesUnderLiveStorm) {
  // The TSan-oriented variant: the catch-up worker runs DURING the storm,
  // racing live quorum fan-outs for the same replicas — kill at 150,
  // revive at 350, convergence happens while updates keep flowing. No
  // transcript asserts here (worker interleaving is schedule-dependent);
  // correctness asserts only.
  Cluster c = make_cluster(3, /*write_quorum=*/2, "chaos", 77);
  cluster::CatchUpOptions cu;
  cu.batch_records = 32;
  cu.install_snapshot = [&c](std::size_t, std::size_t replica,
                             const cloud::SnapshotResponse& snapshot) {
    c.servers[replica]->install_snapshot(snapshot);
    return true;
  };
  c.coordinator->enable_catch_up(std::move(cu));

  for (std::size_t i = 0; i < kStormUpdates; ++i) {
    if (i == 150) c.handles[2]->set_down(true);
    if (i == 350) {
      c.handles[2]->set_down(false);
      c.coordinator->notify_catch_up();
    }
    apply(c, i);
    if (i % 50 == 49) expect_queries_match(c, "chaos storm");
  }

  c.coordinator->notify_catch_up();
  c.coordinator->wait_for_catch_up_idle();
  EXPECT_EQ(c.coordinator->shard(0).stale_replicas(), 0u);
  EXPECT_GT(c.coordinator->backfills_completed(), 0u);
  for (std::size_t r = 0; r < 3; ++r)
    EXPECT_EQ(c.servers[r]->segment_next_seq(), c.reference->segment_next_seq())
        << "replica " << r;

  for (std::size_t i = kStormUpdates; i < payloads_.size(); ++i) apply(c, i);
  const cluster::ReplicaSet& set = c.coordinator->shard(0);
  EXPECT_EQ(set.applied_seq(0), set.applied_seq(1));
  EXPECT_EQ(set.applied_seq(1), set.applied_seq(2));
  expect_queries_match(c, "chaos converged");
}

}  // namespace
}  // namespace rsse
