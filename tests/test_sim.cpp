// Deterministic simulation tests: the SimNet determinism contract (same
// seed => byte-identical transcript, different seeds diverge, kill switch
// never shifts the fault stream), virtual-time deadline semantics (hung
// peers cost microseconds of wall clock), and the sim ports of the chaos
// suite's hung-replica / whole-query-budget scenarios that used to burn
// real milliseconds per injected stall (test_fault.cpp keeps the
// socket-based ChaosProxy smoke tests).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cluster/coordinator.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "sim/sim_net.h"
#include "util/errors.h"
#include "util/stopwatch.h"

namespace rsse::sim {
namespace {

using namespace std::chrono_literals;

// One decoded transcript event (mirrors the wire layout in transcript()).
struct DecodedEvent {
  std::uint64_t endpoint = 0;
  std::uint64_t seq = 0;
  fault::FaultKind fault = fault::FaultKind::kNone;
  SimOutcome outcome = SimOutcome::kOk;
};

std::vector<DecodedEvent> decode_transcript(BytesView transcript) {
  ByteReader reader(transcript);
  (void)reader.read_u64();  // seed
  const std::uint64_t endpoints = reader.read_u64();
  std::vector<DecodedEvent> events;
  for (std::uint64_t e = 0; e < endpoints; ++e) {
    const std::uint64_t id = reader.read_u64();
    const std::uint64_t count = reader.read_u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      DecodedEvent event;
      event.endpoint = id;
      event.seq = reader.read_u64();
      (void)reader.read(1);  // message type
      event.fault = static_cast<fault::FaultKind>(reader.read(1)[0]);
      event.outcome = static_cast<SimOutcome>(reader.read(1)[0]);
      (void)reader.read_u64();  // request bytes
      (void)reader.read_u64();  // response bytes
      (void)reader.read_u64();  // response hash
      (void)reader.read_u64();  // latency
      events.push_back(event);
    }
  }
  EXPECT_TRUE(reader.exhausted());
  return events;
}

fault::FaultSpec mixed_spec() {
  fault::FaultSpec spec;
  spec.delay_rate = 0.1;
  spec.disconnect_rate = 0.1;
  spec.error_rate = 0.1;
  spec.truncate_rate = 0.1;
  spec.bit_flip_rate = 0.1;
  spec.delay_min = 1ms;
  spec.delay_max = 5ms;
  return spec;
}

// Fixed deterministic workload: alternate two endpoints, swallow injected
// failures (they are part of the scenario, not the assertion).
Bytes run_mixed_workload(std::uint64_t seed, cloud::CloudServer& server) {
  SimOptions options;
  options.seed = seed;
  options.faults = mixed_spec();
  SimNet net(options);
  auto a = net.connect(server);
  auto b = net.connect(server);
  const Bytes ping = cloud::FetchFilesRequest{}.serialize();
  for (int i = 0; i < 60; ++i) {
    cloud::Transport& transport = (i % 2 == 0) ? *a : *b;
    try {
      (void)transport.call(cloud::MessageType::kFetchFiles, ping);
    } catch (const Error&) {
    }
  }
  return net.transcript();
}

TEST(SimNet, SameSeedSameTranscriptBytes) {
  cloud::CloudServer server;
  const Bytes first = run_mixed_workload(99, server);
  const Bytes second = run_mixed_workload(99, server);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(SimNet, DifferentSeedsDiverge) {
  cloud::CloudServer server;
  EXPECT_NE(run_mixed_workload(1, server), run_mixed_workload(2, server));
}

TEST(SimNet, EndpointStreamsAreIndependent) {
  // The fault kinds endpoint 0 sees must not depend on whether endpoint 1
  // exists or how much traffic it serves — that is the per-endpoint
  // stream derivation at work.
  cloud::CloudServer server;
  const Bytes ping = cloud::FetchFilesRequest{}.serialize();
  const auto kinds_of_endpoint0 = [&](bool with_sibling_traffic) {
    SimOptions options;
    options.seed = 7;
    options.faults = mixed_spec();
    SimNet net(options);
    auto a = net.connect(server);
    auto b = net.connect(server);
    for (int i = 0; i < 40; ++i) {
      try {
        (void)a->call(cloud::MessageType::kFetchFiles, ping);
      } catch (const Error&) {
      }
      if (with_sibling_traffic) {
        try {
          (void)b->call(cloud::MessageType::kFetchFiles, ping);
        } catch (const Error&) {
        }
      }
    }
    std::vector<fault::FaultKind> kinds;
    for (const DecodedEvent& e : decode_transcript(net.transcript()))
      if (e.endpoint == 0) kinds.push_back(e.fault);
    return kinds;
  };
  EXPECT_EQ(kinds_of_endpoint0(true), kinds_of_endpoint0(false));
}

TEST(SimNet, KillSwitchDoesNotShiftTheFaultStream) {
  // Interposing down-calls must leave the fault kinds of live calls
  // untouched: the schedule is only consulted for live traffic.
  cloud::CloudServer server;
  const Bytes ping = cloud::FetchFilesRequest{}.serialize();
  const auto live_kinds = [&](bool interpose_downs) {
    SimOptions options;
    options.seed = 5;
    options.faults = mixed_spec();
    SimNet net(options);
    auto transport = net.connect(server);
    std::vector<fault::FaultKind> kinds;
    for (int i = 0; i < 30; ++i) {
      if (interpose_downs && i % 3 == 1) {
        transport->set_down(true);
        EXPECT_THROW((void)transport->call(cloud::MessageType::kFetchFiles, ping),
                     ProtocolError);
        transport->set_down(false);
      }
      try {
        (void)transport->call(cloud::MessageType::kFetchFiles, ping);
      } catch (const Error&) {
      }
    }
    for (const DecodedEvent& e : decode_transcript(net.transcript()))
      if (e.outcome != SimOutcome::kEndpointDown) kinds.push_back(e.fault);
    return kinds;
  };
  EXPECT_EQ(live_kinds(false), live_kinds(true));
}

TEST(SimNet, VirtualClockAdvancesWithoutWallClock) {
  // 50 calls, each stalled 100 ms: five virtual seconds, microseconds of
  // real time.
  cloud::CloudServer server;
  SimOptions options;
  options.faults.delay_rate = 1.0;
  options.faults.delay_min = 100ms;
  options.faults.delay_max = 100ms;
  SimNet net(options);
  auto transport = net.connect(server);
  const Bytes ping = cloud::FetchFilesRequest{}.serialize();

  const Stopwatch watch;
  for (int i = 0; i < 50; ++i)
    (void)transport->call(cloud::MessageType::kFetchFiles, ping);
  EXPECT_LT(watch.elapsed_seconds(), 2.0);
  EXPECT_GE(net.clock().now(), 50 * 100ms);
  EXPECT_EQ(net.fault_counters().delays, 50u);
}

TEST(SimNet, InjectedDisconnectAndErrorFrameAreProtocolErrors) {
  cloud::CloudServer server;
  const Bytes ping = cloud::FetchFilesRequest{}.serialize();

  SimOptions drop;
  drop.faults.disconnect_rate = 1.0;
  SimNet drop_net(drop);
  auto dropper = drop_net.connect(server);
  EXPECT_THROW((void)dropper->call(cloud::MessageType::kFetchFiles, ping),
               ProtocolError);

  SimOptions err;
  err.faults.error_rate = 1.0;
  SimNet err_net(err);
  auto erroring = err_net.connect(server);
  EXPECT_THROW((void)erroring->call(cloud::MessageType::kFetchFiles, ping),
               ProtocolError);
  EXPECT_EQ(err_net.fault_counters().error_frames, 1u);
}

TEST(SimNet, DownEndpointFailsFastAndRecovers) {
  cloud::CloudServer server;
  SimNet net;
  auto transport = net.connect(server);
  const Bytes ping = cloud::FetchFilesRequest{}.serialize();

  EXPECT_NO_THROW((void)transport->call(cloud::MessageType::kFetchFiles, ping));
  transport->set_down(true);
  EXPECT_TRUE(transport->is_down());
  EXPECT_THROW((void)transport->call(cloud::MessageType::kFetchFiles, ping),
               ProtocolError);
  transport->set_down(false);
  EXPECT_NO_THROW((void)transport->call(cloud::MessageType::kFetchFiles, ping));
  EXPECT_EQ(transport->calls_seen(), 3u);
  EXPECT_EQ(net.total_events(), 3u);
}

TEST(SimNet, TrafficIsAccounted) {
  cloud::CloudServer server;
  SimNet net;
  auto transport = net.connect(server);
  const Bytes ping = cloud::FetchFilesRequest{}.serialize();
  for (int i = 0; i < 4; ++i)
    (void)transport->call(cloud::MessageType::kFetchFiles, ping);
  const cloud::ChannelStats stats = transport->stats();
  EXPECT_EQ(stats.round_trips, 4u);
  EXPECT_EQ(stats.bytes_up, 4 * (ping.size() + 1));
  EXPECT_GT(stats.bytes_down, 0u);
}

TEST(SimNet, RejectsNegativeLatencyAndBadFaultSpec) {
  SimOptions negative;
  negative.base_latency = std::chrono::nanoseconds(-1);
  EXPECT_THROW(SimNet{negative}, InvalidArgument);

  SimOptions overfull;
  overfull.faults.delay_rate = 0.8;
  overfull.faults.disconnect_rate = 0.5;
  EXPECT_THROW(SimNet{overfull}, InvalidArgument);
}

// ------------------------------------------------ full-stack sim scenarios

cluster::RetryPolicy chaos_policy() {
  cluster::RetryPolicy policy;
  policy.base_backoff = std::chrono::milliseconds(0);
  policy.max_backoff = std::chrono::milliseconds(1);
  policy.attempt_timeout = std::chrono::milliseconds(100);
  return policy;
}

class SimSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 40;
    opts.vocabulary_size = 120;
    opts.min_tokens = 40;
    opts.max_tokens = 120;
    opts.injected.push_back(ir::InjectedKeyword{"chaos", 25, 0.4, 20});
    opts.seed = 77;
    corpus_ = ir::generate_corpus(opts);
    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus_, server_);

    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = cloud::AuthorizationService::open(
        user_key, "u", owner_->enroll_user(user_key, "u"));
  }

  // Every call stalls for 10 virtual seconds: the sim stand-in for a hung
  // replica, identical to the chaos suite's hang_spec.
  static SimOptions hang_options() {
    SimOptions options;
    options.faults.delay_rate = 1.0;
    options.faults.delay_min = 10s;
    options.faults.delay_max = 10s;
    return options;
  }

  Bytes ranked_request(const std::string& keyword, std::uint64_t top_k) const {
    const sse::Trapdoor trapdoor{owner_->rsse().row_label(keyword),
                                 owner_->rsse().row_key(keyword)};
    return cloud::RankedSearchRequest{trapdoor, top_k}.serialize();
  }

  ir::Corpus corpus_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer server_;
  cloud::UserCredentials credentials_;
};

TEST_F(SimSystemTest, InjectedHangBecomesDeadlineExceededInstantly) {
  SimNet net(hang_options());
  auto transport = net.connect(server_);
  transport->set_call_timeout(50ms);
  const Stopwatch watch;
  EXPECT_THROW((void)transport->call(cloud::MessageType::kRankedSearch,
                                     ranked_request("chaos", 3)),
               DeadlineExceeded);
  // The 10 s hang costs zero wall time: it is charged to the virtual
  // clock up to the budget, then surfaces as the typed error.
  EXPECT_LT(watch.elapsed_seconds(), 1.0);
  EXPECT_GT(net.clock().now_ns(), 0u);
}

TEST_F(SimSystemTest, HungReplicaFailsOverWithinTheDeadline) {
  SimNet net(hang_options());
  SimNet healthy_net;  // separate net: only replica 0 hangs
  cluster::ReplicaSet set;
  set.add_replica(net.connect(server_));
  set.add_replica(healthy_net.connect(server_));

  const Stopwatch watch;
  const Bytes response = set.call(cloud::MessageType::kRankedSearch,
                                  ranked_request("chaos", 5), chaos_policy(),
                                  Deadline::after(2s));
  EXPECT_LT(watch.elapsed_seconds(), 1.0);
  EXPECT_EQ(response, server_.handle(cloud::MessageType::kRankedSearch,
                                     ranked_request("chaos", 5)));
  EXPECT_GE(set.deadline_failures(), 1u);
  EXPECT_GE(set.failovers(), 1u);
}

TEST_F(SimSystemTest, ClusterQueryWithHungReplicasCompletesWithinBudget) {
  // The acceptance scenario from the chaos suite, on virtual time: every
  // shard's preferred replica hangs, the scatter-gather query still
  // completes exactly via per-attempt timeouts and failover.
  const cluster::ShardMap map(3);
  auto indexes = map.split_index(server_.index());
  auto file_sets = map.split_files(server_.files());

  SimNet hung_net(hang_options());
  SimNet healthy_net;
  std::vector<std::unique_ptr<cloud::CloudServer>> shard_servers;
  std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
  for (std::uint32_t s = 0; s < 3; ++s) {
    shard_servers.push_back(std::make_unique<cloud::CloudServer>());
    shard_servers.back()->store(std::move(indexes[s]), std::move(file_sets[s]));
    auto set = std::make_unique<cluster::ReplicaSet>();
    set->add_replica(hung_net.connect(*shard_servers.back()));
    set->add_replica(healthy_net.connect(*shard_servers.back()));
    sets.push_back(std::move(set));
  }

  cluster::ClusterManifest manifest;
  manifest.num_shards = 3;
  manifest.replicas = 2;
  manifest.total_rows = server_.index().num_rows();
  manifest.total_files = server_.num_files();
  cluster::CoordinatorOptions options;
  options.retry = chaos_policy();
  options.query_timeout = std::chrono::seconds(10);
  cluster::ClusterCoordinator coordinator(manifest, std::move(sets), options);

  cloud::Channel direct(server_);
  cloud::DataUser baseline(credentials_, direct);
  cloud::DataUser user(credentials_, coordinator);

  const Stopwatch watch;
  const auto expected = baseline.ranked_search("chaos", 5);
  const auto got = user.ranked_search("chaos", 5);
  EXPECT_LT(watch.elapsed_seconds(), 2.0);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i].document.id, expected[i].document.id);

  std::uint64_t deadline_failures = 0;
  for (std::size_t s = 0; s < 3; ++s)
    deadline_failures += coordinator.shard(s).deadline_failures();
  EXPECT_GE(deadline_failures, 1u);
}

TEST_F(SimSystemTest, WholeQueryBudgetSurfacesDeadlineExceeded) {
  // Every replica of the only shard hangs: no failover can save the call,
  // so the query fails with the typed deadline error — in wall-clock
  // microseconds instead of the real 300 ms budget.
  SimNet net(hang_options());
  auto set = std::make_unique<cluster::ReplicaSet>();
  set->add_replica(net.connect(server_));
  set->add_replica(net.connect(server_));
  std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
  sets.push_back(std::move(set));

  cluster::ClusterManifest manifest;
  manifest.num_shards = 1;
  manifest.replicas = 2;
  manifest.total_rows = server_.index().num_rows();
  manifest.total_files = server_.num_files();
  cluster::CoordinatorOptions options;
  options.retry = chaos_policy();
  options.query_timeout = std::chrono::milliseconds(300);
  cluster::ClusterCoordinator coordinator(manifest, std::move(sets), options);

  const Stopwatch watch;
  EXPECT_THROW((void)coordinator.call(cloud::MessageType::kRankedSearch,
                                      ranked_request("chaos", 3)),
               DeadlineExceeded);
  EXPECT_LT(watch.elapsed_seconds(), 1.0);
}

TEST_F(SimSystemTest, CorruptedResponsesNeverPassForGoodOnes) {
  SimOptions options;
  options.faults.truncate_rate = 0.5;
  options.faults.bit_flip_rate = 0.5;
  options.seed = 11;
  SimNet net(options);
  auto transport = net.connect(server_);
  const Bytes request = ranked_request("chaos", 5);
  const Bytes pristine = server_.handle(cloud::MessageType::kRankedSearch, request);

  int detected = 0;
  for (int i = 0; i < 100; ++i) {
    try {
      const Bytes response =
          transport->call(cloud::MessageType::kRankedSearch, request);
      EXPECT_NE(response, pristine);
      (void)cloud::RankedSearchResponse::deserialize(response);
    } catch (const Error&) {
      ++detected;  // typed: ParseError from the deserializer
    }
  }
  EXPECT_GT(detected, 50);
  const fault::FaultCounters c = net.fault_counters();
  EXPECT_EQ(c.truncations + c.bit_flips, 100u);
}

}  // namespace
}  // namespace rsse::sim
