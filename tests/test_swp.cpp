// Song-Wagner-Perrig baseline: match correctness at exact positions,
// no false hits across words/keys, ciphertext pseudorandomness (equal
// words at different positions encrypt differently), and the linear-scan
// search over a collection.
#include <gtest/gtest.h>

#include <set>

#include "baseline/swp.h"
#include "ir/analyzer.h"
#include "util/errors.h"

namespace rsse::baseline {
namespace {

std::vector<std::string> words(std::initializer_list<const char*> ws) {
  return std::vector<std::string>(ws.begin(), ws.end());
}

class SwpTest : public ::testing::Test {
 protected:
  SwpScheme scheme_{SwpScheme::generate_key()};
};

TEST_F(SwpTest, FindsExactPositions) {
  const auto blocks = scheme_.encrypt_words(
      ir::file_id(1), words({"alpha", "beta", "alpha", "gamma", "alpha"}));
  const auto positions = SwpScheme::search_document(blocks, scheme_.token("alpha"));
  EXPECT_EQ(positions, (std::vector<std::uint64_t>{0, 2, 4}));
  EXPECT_EQ(SwpScheme::search_document(blocks, scheme_.token("beta")),
            (std::vector<std::uint64_t>{1}));
  EXPECT_TRUE(SwpScheme::search_document(blocks, scheme_.token("delta")).empty());
}

TEST_F(SwpTest, EqualWordsProduceDistinctBlocks) {
  // The per-position stream hides word equality from anyone without the
  // search token.
  const auto blocks = scheme_.encrypt_words(ir::file_id(2),
                                            words({"same", "same", "same"}));
  EXPECT_NE(blocks[0], blocks[1]);
  EXPECT_NE(blocks[1], blocks[2]);
  // And the same word in another file differs too.
  const auto other = scheme_.encrypt_words(ir::file_id(3), words({"same"}));
  EXPECT_NE(blocks[0], other[0]);
}

TEST_F(SwpTest, ForeignKeyTokenMatchesNothing) {
  const auto blocks =
      scheme_.encrypt_words(ir::file_id(4), words({"alpha", "beta", "gamma"}));
  const SwpScheme other(SwpScheme::generate_key());
  EXPECT_TRUE(SwpScheme::search_document(blocks, other.token("alpha")).empty());
}

TEST_F(SwpTest, CollectionScanAggregatesMatches) {
  std::map<std::uint64_t, std::vector<Bytes>> collection;
  collection[10] = scheme_.encrypt_words(ir::file_id(10), words({"x", "target"}));
  collection[11] = scheme_.encrypt_words(ir::file_id(11), words({"nothing", "here"}));
  collection[12] =
      scheme_.encrypt_words(ir::file_id(12), words({"target", "y", "target"}));

  const auto matches = SwpScheme::search(collection, scheme_.token("target"));
  std::set<std::pair<std::uint64_t, std::uint64_t>> got;
  for (const auto& m : matches) got.emplace(ir::value(m.file), m.position);
  EXPECT_EQ(got, (std::set<std::pair<std::uint64_t, std::uint64_t>>{
                     {10, 1}, {12, 0}, {12, 2}}));
}

TEST_F(SwpTest, NoFalsePositivesOverManyWords) {
  // 2000 positions, one needle: exactly one hit.
  std::vector<std::string> many;
  for (int i = 0; i < 2000; ++i) many.push_back("filler" + std::to_string(i));
  many[777] = "needle";
  const auto blocks = scheme_.encrypt_words(ir::file_id(5), many);
  const auto positions = SwpScheme::search_document(blocks, scheme_.token("needle"));
  EXPECT_EQ(positions, (std::vector<std::uint64_t>{777}));
}

TEST_F(SwpTest, TokensAreDeterministicPerWord) {
  EXPECT_EQ(scheme_.token("alpha"), scheme_.token("alpha"));
  EXPECT_NE(scheme_.token("alpha"), scheme_.token("beta"));
}

TEST_F(SwpTest, MalformedBlockThrows) {
  std::vector<Bytes> blocks{Bytes(10, 0)};
  EXPECT_THROW(SwpScheme::search_document(blocks, scheme_.token("x")), ParseError);
}

TEST(SwpKey, EmptyComponentRejected) {
  SwpScheme::Key key = SwpScheme::generate_key();
  key.stream_seed.clear();
  EXPECT_THROW(SwpScheme{key}, InvalidArgument);
}

}  // namespace
}  // namespace rsse::baseline
