// Wire-protocol message round trips and malformed-input rejection.
#include <gtest/gtest.h>

#include "cloud/protocol.h"
#include "util/errors.h"

namespace rsse::cloud {
namespace {

sse::Trapdoor sample_trapdoor() {
  return sse::Trapdoor{Bytes(20, 0xab), Bytes(32, 0xcd)};
}

TEST(Protocol, TrapdoorRoundTrip) {
  const sse::Trapdoor t = sample_trapdoor();
  EXPECT_EQ(sse::Trapdoor::deserialize(t.serialize()), t);
}

TEST(Protocol, RankedSearchRequestRoundTrip) {
  const RankedSearchRequest req{sample_trapdoor(), 25};
  const auto restored = RankedSearchRequest::deserialize(req.serialize());
  EXPECT_EQ(restored.trapdoor, req.trapdoor);
  EXPECT_EQ(restored.top_k, 25u);
}

TEST(Protocol, RankedSearchResponseRoundTrip) {
  RankedSearchResponse resp;
  resp.files.push_back(RankedFile{ir::file_id(3), 999, to_bytes("blob-a")});
  resp.files.push_back(RankedFile{ir::file_id(9), 42, Bytes{}});
  const auto restored = RankedSearchResponse::deserialize(resp.serialize());
  ASSERT_EQ(restored.files.size(), 2u);
  EXPECT_EQ(restored.files[0], resp.files[0]);
  EXPECT_EQ(restored.files[1], resp.files[1]);
}

TEST(Protocol, BasicEntriesRoundTrip) {
  const BasicEntriesRequest req{sample_trapdoor()};
  EXPECT_EQ(BasicEntriesRequest::deserialize(req.serialize()).trapdoor, req.trapdoor);

  BasicEntriesResponse resp;
  resp.entries.push_back(sse::BasicSearchEntry{ir::file_id(1), Bytes(24, 7)});
  resp.entries.push_back(sse::BasicSearchEntry{ir::file_id(2), Bytes(24, 8)});
  const auto restored = BasicEntriesResponse::deserialize(resp.serialize());
  ASSERT_EQ(restored.entries.size(), 2u);
  EXPECT_EQ(restored.entries[0], resp.entries[0]);
}

TEST(Protocol, FetchFilesRoundTrip) {
  FetchFilesRequest req;
  req.ids = {ir::file_id(5), ir::file_id(6), ir::file_id(7)};
  const auto restored = FetchFilesRequest::deserialize(req.serialize());
  EXPECT_EQ(restored.ids, req.ids);

  FetchFilesResponse resp;
  resp.files.push_back(RankedFile{ir::file_id(5), 0, to_bytes("f5")});
  const auto r2 = FetchFilesResponse::deserialize(resp.serialize());
  ASSERT_EQ(r2.files.size(), 1u);
  EXPECT_EQ(r2.files[0].id, ir::file_id(5));
  EXPECT_EQ(r2.files[0].blob, to_bytes("f5"));
}

TEST(Protocol, BasicFilesResponseRoundTrip) {
  BasicFilesResponse resp;
  resp.files.push_back(BasicFile{ir::file_id(1), Bytes(24, 1), to_bytes("one")});
  resp.files.push_back(BasicFile{ir::file_id(2), Bytes(24, 2), to_bytes("two")});
  const auto restored = BasicFilesResponse::deserialize(resp.serialize());
  ASSERT_EQ(restored.files.size(), 2u);
  EXPECT_EQ(restored.files[1], resp.files[1]);
}

TEST(Protocol, MultiSearchRequestRoundTrip) {
  MultiSearchRequest req;
  req.trapdoor.trapdoors.push_back(sample_trapdoor());
  req.trapdoor.trapdoors.push_back(sse::Trapdoor{Bytes(20, 0x11), Bytes(32, 0x22)});
  req.mode = MultiSearchMode::kDisjunctive;
  req.top_k = 7;
  const auto restored = MultiSearchRequest::deserialize(req.serialize());
  ASSERT_EQ(restored.trapdoor.trapdoors.size(), 2u);
  EXPECT_EQ(restored.trapdoor.trapdoors[1], req.trapdoor.trapdoors[1]);
  EXPECT_EQ(restored.mode, MultiSearchMode::kDisjunctive);
  EXPECT_EQ(restored.top_k, 7u);

  Bytes bad = req.serialize();
  bad[bad.size() - 9] = 9;  // mode byte out of range
  EXPECT_THROW(MultiSearchRequest::deserialize(bad), ParseError);
}

TEST(Protocol, TruncatedPayloadsThrow) {
  const RankedSearchRequest req{sample_trapdoor(), 5};
  Bytes blob = req.serialize();
  blob.resize(blob.size() - 3);
  EXPECT_THROW(RankedSearchRequest::deserialize(blob), ParseError);

  BasicFilesResponse resp;
  resp.files.push_back(BasicFile{ir::file_id(1), Bytes(24, 1), to_bytes("one")});
  Bytes rblob = resp.serialize();
  rblob.resize(rblob.size() - 1);
  EXPECT_THROW(BasicFilesResponse::deserialize(rblob), ParseError);
}

TEST(Protocol, TrailingBytesThrow) {
  Bytes blob = FetchFilesRequest{{ir::file_id(1)}}.serialize();
  blob.push_back(0);
  EXPECT_THROW(FetchFilesRequest::deserialize(blob), ParseError);
}

}  // namespace
}  // namespace rsse::cloud
