// Hypergeometric sampler tests: support bounds, pmf normalization,
// determinism given the coin tape, degenerate draws, and distributional
// sanity (mean/variance against the analytic values) across a
// parameterized sweep of urn geometries including the paper-scale
// population of 2^46.
#include <gtest/gtest.h>

#include <cmath>

#include "crypto/tapegen.h"
#include "opse/hgd.h"
#include "util/errors.h"

namespace rsse::opse {
namespace {

crypto::Tape tape_for(std::uint64_t salt) {
  Bytes ctx;
  append_u64(ctx, salt);
  return crypto::Tape(to_bytes("hgd-test-key"), ctx);
}

TEST(HgdSupport, MatchesClosedForms) {
  const HgdParams p{.population = 100, .successes = 30, .sample = 80};
  // min = n + M - N = 80 + 30 - 100 = 10; max = min(M, n) = 30.
  EXPECT_EQ(hgd_support_min(p), 10u);
  EXPECT_EQ(hgd_support_max(p), 30u);
  const HgdParams q{.population = 100, .successes = 30, .sample = 10};
  EXPECT_EQ(hgd_support_min(q), 0u);
  EXPECT_EQ(hgd_support_max(q), 10u);
}

TEST(HgdLogPmf, NormalizesToOne) {
  const HgdParams p{.population = 50, .successes = 12, .sample = 20};
  double total = 0.0;
  for (std::uint64_t k = hgd_support_min(p); k <= hgd_support_max(p); ++k)
    total += std::exp(hgd_log_pmf(p, k));
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HgdLogPmf, RejectsOutOfSupport) {
  const HgdParams p{.population = 100, .successes = 30, .sample = 80};
  EXPECT_THROW(hgd_log_pmf(p, 9), InvalidArgument);
  EXPECT_THROW(hgd_log_pmf(p, 31), InvalidArgument);
}

TEST(HgdSample, RejectsInvalidParams) {
  auto t = tape_for(0);
  EXPECT_THROW(hgd_sample({.population = 10, .successes = 11, .sample = 5}, t),
               InvalidArgument);
  EXPECT_THROW(hgd_sample({.population = 10, .successes = 5, .sample = 11}, t),
               InvalidArgument);
}

TEST(HgdSample, DegenerateDrawsAreExact) {
  auto t = tape_for(1);
  // n == 0: nothing drawn.
  EXPECT_EQ(hgd_sample({.population = 10, .successes = 5, .sample = 0}, t), 0u);
  // M == N: every ball is a success.
  EXPECT_EQ(hgd_sample({.population = 10, .successes = 10, .sample = 7}, t), 7u);
  // M == 0: no successes exist.
  EXPECT_EQ(hgd_sample({.population = 10, .successes = 0, .sample = 7}, t), 0u);
  // n == N: the draw is the whole urn.
  EXPECT_EQ(hgd_sample({.population = 10, .successes = 4, .sample = 10}, t), 4u);
}

TEST(HgdLogPmf, SingletonSupportHasUnitMass) {
  // M == N collapses the support to {n}: the pmf there must be exactly 1.
  const HgdParams p{.population = 8, .successes = 8, .sample = 3};
  EXPECT_EQ(hgd_support_min(p), hgd_support_max(p));
  EXPECT_NEAR(hgd_log_pmf(p, 3), 0.0, 1e-12);
}

TEST(HgdSample, SingleBallUrns) {
  // population == 1: every draw is fully determined, no coins needed.
  auto t = tape_for(2);
  EXPECT_EQ(hgd_sample({.population = 1, .successes = 0, .sample = 1}, t), 0u);
  EXPECT_EQ(hgd_sample({.population = 1, .successes = 1, .sample = 1}, t), 1u);
  EXPECT_EQ(hgd_sample({.population = 1, .successes = 1, .sample = 0}, t), 0u);
}

TEST(HgdSample, ForcedOverlapPinsTheSample) {
  // n + M - N == min(M, n): the support is one point even though neither
  // M nor n is degenerate on its own (the OPE descent hits such windows
  // at the extreme edges of a bucket walk).
  auto t = tape_for(3);
  const HgdParams p{.population = 10, .successes = 6, .sample = 10};
  EXPECT_EQ(hgd_support_min(p), 6u);
  EXPECT_EQ(hgd_support_max(p), 6u);
  EXPECT_EQ(hgd_sample(p, t), 6u);
}

TEST(HgdSample, DeterministicGivenTape) {
  const HgdParams p{.population = 1000, .successes = 64, .sample = 500};
  for (std::uint64_t salt = 0; salt < 50; ++salt) {
    auto t1 = tape_for(salt);
    auto t2 = tape_for(salt);
    EXPECT_EQ(hgd_sample(p, t1), hgd_sample(p, t2));
  }
}

struct HgdGeometry {
  std::uint64_t population;
  std::uint64_t successes;
  std::uint64_t sample;
};

class HgdDistribution : public ::testing::TestWithParam<HgdGeometry> {};

TEST_P(HgdDistribution, WithinSupportAndMatchesMoments) {
  const auto g = GetParam();
  const HgdParams p{.population = g.population, .successes = g.successes,
                    .sample = g.sample};
  const std::uint64_t lo = hgd_support_min(p);
  const std::uint64_t hi = hgd_support_max(p);

  const int kTrials = 4000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    auto t = tape_for(static_cast<std::uint64_t>(i) + 1000);
    const std::uint64_t x = hgd_sample(p, t);
    ASSERT_GE(x, lo);
    ASSERT_LE(x, hi);
    sum += static_cast<double>(x);
    sum_sq += static_cast<double>(x) * static_cast<double>(x);
  }
  const double mean = sum / kTrials;
  const double var = sum_sq / kTrials - mean * mean;

  const auto n = static_cast<double>(p.sample);
  const auto big_m = static_cast<double>(p.successes);
  const auto big_n = static_cast<double>(p.population);
  const double expected_mean = n * big_m / big_n;
  const double expected_var = n * (big_m / big_n) * (1.0 - big_m / big_n) *
                              (big_n - n) / (big_n - 1.0);
  // 5-sigma tolerance on the sample mean.
  const double mean_tol = 5.0 * std::sqrt(expected_var / kTrials) + 1e-9;
  EXPECT_NEAR(mean, expected_mean, mean_tol)
      << "N=" << g.population << " M=" << g.successes << " n=" << g.sample;
  if (expected_var > 0.5) {
    EXPECT_NEAR(var, expected_var, expected_var * 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HgdDistribution,
    ::testing::Values(
        HgdGeometry{20, 7, 9},                        // tiny urn
        HgdGeometry{100, 50, 50},                     // balanced
        HgdGeometry{1000, 128, 500},                  // OPE first split, small range
        HgdGeometry{1ull << 20, 128, 1ull << 19},     // mid range
        HgdGeometry{1ull << 46, 128, 1ull << 45},     // paper-scale |R| = 2^46
        HgdGeometry{1ull << 46, 1024, (1ull << 46) / 3},  // bigger domain, off-center
        HgdGeometry{999, 998, 499}));                 // nearly-saturated urn

}  // namespace
}  // namespace rsse::opse
