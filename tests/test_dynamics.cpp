// Score dynamics (Sec. VII): adding/removing documents touches only the
// new/removed entries — previously stored ciphertexts are bit-identical —
// and searches reflect the update immediately.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ir/corpus_gen.h"
#include "sse/dynamics.h"
#include "util/errors.h"

namespace rsse::sse {
namespace {

class DynamicsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 40;
    opts.vocabulary_size = 250;
    opts.min_tokens = 50;
    opts.max_tokens = 200;
    opts.injected.push_back(ir::InjectedKeyword{"network", 20, 0.3, 40});
    opts.seed = 31;
    corpus_ = ir::generate_corpus(opts);
    scheme_ = std::make_unique<RsseScheme>(keygen());
    built_ = std::make_unique<RsseScheme::BuildResult>(scheme_->build_index(corpus_));
    updater_ = std::make_unique<IndexUpdater>(*scheme_, built_->quantizer);
  }

  // Snapshot of every row's ciphertext bytes.
  std::map<Bytes, std::vector<Bytes>> snapshot() const {
    std::map<Bytes, std::vector<Bytes>> out;
    for (const Bytes& label : built_->index.labels())
      out[label] = *built_->index.row(label);
    return out;
  }

  ir::Document new_doc(std::uint64_t id, std::string text) const {
    return ir::Document{ir::file_id(id), "new.txt", std::move(text)};
  }

  ir::Corpus corpus_;
  std::unique_ptr<RsseScheme> scheme_;
  std::unique_ptr<RsseScheme::BuildResult> built_;
  std::unique_ptr<IndexUpdater> updater_;
};

TEST_F(DynamicsTest, AddedDocumentBecomesSearchable) {
  const auto before = RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  const auto doc = new_doc(1000, "network network network plus fresh words here");
  const auto stats = updater_->add_document(built_->index, doc);
  EXPECT_GT(stats.keywords_touched, 0u);
  EXPECT_EQ(stats.entries_added, stats.keywords_touched);

  const auto after = RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  EXPECT_EQ(after.size(), before.size() + 1);
  EXPECT_TRUE(std::any_of(after.begin(), after.end(), [&](const RankedSearchEntry& e) {
    return e.file == ir::file_id(1000);
  }));
}

TEST_F(DynamicsTest, ExistingCiphertextsAreUntouchedByAdd) {
  const auto before = snapshot();
  const auto doc = new_doc(1001, "network protocol fresh tokens in this file");
  updater_->add_document(built_->index, doc);
  const auto after = snapshot();

  // Every pre-existing ciphertext entry survives bit-for-bit: the only
  // changes are padding slots that became real entries and brand-new rows.
  std::size_t changed = 0;
  for (const auto& [label, old_entries] : before) {
    const auto it = after.find(label);
    ASSERT_NE(it, after.end());
    const auto& new_entries = it->second;
    ASSERT_GE(new_entries.size(), old_entries.size());
    for (std::size_t i = 0; i < old_entries.size(); ++i) {
      if (new_entries[i] != old_entries[i]) {
        ++changed;
        // A changed slot must have been padding before (not decryptable
        // by any keyword of the new doc means we can't check directly
        // here; the count assertion below bounds the damage).
      }
    }
  }
  // Changed slots = exactly the entries the update added to existing rows.
  const ir::Analyzer& analyzer = scheme_->analyzer();
  const auto terms = analyzer.analyze(doc.text);
  std::set<std::string> distinct(terms.begin(), terms.end());
  EXPECT_LE(changed, distinct.size());
}

TEST_F(DynamicsTest, NewKeywordCreatesNewRow) {
  const std::size_t rows_before = built_->index.num_rows();
  const auto doc = new_doc(1002, "completely zzzunseen qqqnovel vocabulary");
  const auto stats = updater_->add_document(built_->index, doc);
  EXPECT_GT(stats.new_rows, 0u);
  EXPECT_EQ(built_->index.num_rows(), rows_before + stats.new_rows);
}

TEST_F(DynamicsTest, RemoveMakesDocumentUnsearchable) {
  const ir::Document& victim = corpus_.documents()[0];
  const auto terms = scheme_->analyzer().analyze(victim.text);
  ASSERT_FALSE(terms.empty());
  const std::string probe = terms.front();

  const auto stats = updater_->remove_document(built_->index, victim);
  EXPECT_GT(stats.entries_removed, 0u);

  const Trapdoor trapdoor{scheme_->row_label(probe), scheme_->row_key(probe)};
  const auto results = RsseScheme::search(built_->index, trapdoor);
  EXPECT_FALSE(std::any_of(results.begin(), results.end(), [&](const RankedSearchEntry& e) {
    return e.file == victim.id;
  }));
}

TEST_F(DynamicsTest, RemoveKeepsRowSizes) {
  const ir::Document& victim = corpus_.documents()[1];
  const auto sizes_before = [&] {
    std::map<Bytes, std::size_t> out;
    for (const Bytes& label : built_->index.labels())
      out[label] = built_->index.row(label)->size();
    return out;
  }();
  updater_->remove_document(built_->index, victim);
  for (const auto& [label, size] : sizes_before)
    EXPECT_EQ(built_->index.row(label)->size(), size) << "row size leaked a removal";
}

TEST_F(DynamicsTest, AddThenRemoveRestoresSearchResults) {
  const auto before = RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  const auto doc = new_doc(1003, "network appears here exactly once amid words");
  updater_->add_document(built_->index, doc);
  updater_->remove_document(built_->index, doc);
  const auto after = RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  EXPECT_EQ(after, before);
}

TEST_F(DynamicsTest, ReAddedScoreLandsInTheSameBucket) {
  // The Sec. VII claim in miniature: the same score maps into the same
  // bucket across independent updates, because buckets depend only on
  // (key, level) — never on the data distribution.
  const auto doc = new_doc(1004, "network solitary mention amid other plain words");
  updater_->add_document(built_->index, doc);
  const auto first = RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  updater_->remove_document(built_->index, doc);
  updater_->add_document(built_->index, doc);
  const auto second = RsseScheme::search(built_->index, scheme_->trapdoor("network"));

  const auto find_score = [&](const std::vector<RankedSearchEntry>& v) {
    for (const auto& e : v)
      if (e.file == ir::file_id(1004)) return e.opm_score;
    ADD_FAILURE() << "doc missing";
    return std::uint64_t{0};
  };
  // Same (keyword, level, file id) => identical OPM value, not merely the
  // same bucket.
  EXPECT_EQ(find_score(first), find_score(second));
}

TEST_F(DynamicsTest, BatchAddMatchesRepeatedSingleAdds) {
  std::vector<ir::Document> batch;
  for (std::uint64_t i = 0; i < 6; ++i)
    batch.push_back(new_doc(2000 + i, "network shared vocabulary batch item " +
                                          std::to_string(i)));

  // Reference: a second identical index receives the same docs one by one.
  auto reference = scheme_->build_index(corpus_, built_->quantizer);
  for (const auto& doc : batch) updater_->add_document(reference.index, doc);

  std::size_t expected_entries = 0;
  for (const auto& doc : batch) {
    const auto terms = scheme_->analyzer().analyze(doc.text);
    expected_entries += std::set<std::string>(terms.begin(), terms.end()).size();
  }
  const auto stats = updater_->add_documents(built_->index, batch);
  EXPECT_EQ(stats.entries_added, expected_entries);

  // Search results agree exactly (OPM values are deterministic).
  for (const char* probe : {"network", "shared", "batch"}) {
    const Trapdoor t{scheme_->row_label(probe), scheme_->row_key(probe)};
    EXPECT_EQ(RsseScheme::search(built_->index, t),
              RsseScheme::search(reference.index, t))
        << probe;
  }
}

TEST_F(DynamicsTest, BatchAddTouchesEachRowOnce) {
  std::vector<ir::Document> batch;
  for (std::uint64_t i = 0; i < 5; ++i)
    batch.push_back(new_doc(2100 + i, "qqqbatchword appears in every document here"));
  const auto shared_terms = [&] {
    const auto terms = scheme_->analyzer().analyze(batch.front().text);
    return std::set<std::string>(terms.begin(), terms.end()).size();
  }();
  const auto stats = updater_->add_documents(built_->index, batch);
  // All five documents share one vocabulary: rows touched = the distinct
  // term count of one document, NOT 5x it.
  EXPECT_EQ(stats.keywords_touched, shared_terms);
  EXPECT_EQ(stats.entries_added, 5u * shared_terms);
  const Trapdoor t{scheme_->row_label("qqqbatchword"), scheme_->row_key("qqqbatchword")};
  EXPECT_EQ(RsseScheme::search(built_->index, t).size(), 5u);
}

TEST_F(DynamicsTest, UpdateDocumentReplacesContent) {
  const auto doc_v1 = new_doc(1010, "network once amid several other words here");
  updater_->add_document(built_->index, doc_v1);
  const auto doc_v2 =
      ir::Document{ir::file_id(1010), "new.txt", "entirely qqqfresh vocabulary now"};
  const auto stats = updater_->update_document(built_->index, doc_v1, doc_v2);
  EXPECT_GT(stats.entries_removed, 0u);
  EXPECT_GT(stats.entries_added, 0u);

  // Old keyword no longer matches; new keyword does.
  const auto old_hits = RsseScheme::search(built_->index, scheme_->trapdoor("network"));
  EXPECT_FALSE(std::any_of(old_hits.begin(), old_hits.end(), [](const RankedSearchEntry& e) {
    return e.file == ir::file_id(1010);
  }));
  const Trapdoor fresh{scheme_->row_label("qqqfresh"), scheme_->row_key("qqqfresh")};
  const auto new_hits = RsseScheme::search(built_->index, fresh);
  EXPECT_TRUE(std::any_of(new_hits.begin(), new_hits.end(), [](const RankedSearchEntry& e) {
    return e.file == ir::file_id(1010);
  }));
}

TEST_F(DynamicsTest, UpdateDocumentRejectsIdMismatch) {
  const auto a = new_doc(1, "alpha words");
  const auto b = new_doc(2, "beta words");
  EXPECT_THROW(updater_->update_document(built_->index, a, b), InvalidArgument);
}

TEST_F(DynamicsTest, EmptyDocumentIsRejected) {
  EXPECT_THROW(updater_->add_document(built_->index, new_doc(1005, "...")),
               InvalidArgument);
}

}  // namespace
}  // namespace rsse::sse
