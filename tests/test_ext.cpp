// Future-work extension (Sec. VIII): conjunctive multi-keyword ranked
// search. The exact Basic-Scheme variant must reproduce the eq.-1
// ranking computed directly over the plaintext index; the approximate
// RSSE sum-of-OPM variant must return the right file SET with a ranking
// that correlates with the truth. Rank-quality metrics are unit-tested
// on hand-constructed permutations.
#include <gtest/gtest.h>

#include <set>

#include "crypto/prf.h"
#include "ext/conjunctive.h"
#include "ext/rank_quality.h"
#include "ir/corpus_gen.h"
#include "ir/inverted_index.h"
#include "sse/keys.h"
#include "util/errors.h"

namespace rsse::ext {
namespace {

TEST(RankQuality, KendallTauExtremes) {
  const std::vector<std::uint64_t> a{1, 2, 3, 4, 5};
  const std::vector<std::uint64_t> reversed{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(kendall_tau(a, a), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau(a, reversed), -1.0);
  const std::vector<std::uint64_t> swapped{2, 1, 3, 4, 5};
  EXPECT_NEAR(kendall_tau(a, swapped), 1.0 - 2.0 / 10.0, 1e-12);
}

TEST(RankQuality, KendallTauPreconditions) {
  EXPECT_THROW(kendall_tau({1}, {1}), InvalidArgument);
  EXPECT_THROW(kendall_tau({1, 2}, {1, 3}), InvalidArgument);
  EXPECT_THROW(kendall_tau({1, 1}, {1, 1}), InvalidArgument);
}

TEST(RankQuality, PrecisionAtK) {
  const std::vector<std::uint64_t> ref{1, 2, 3, 4, 5};
  const std::vector<std::uint64_t> cand{3, 2, 9, 1, 5};
  EXPECT_DOUBLE_EQ(precision_at_k(ref, cand, 3), 2.0 / 3.0);  // {1,2,3} vs {3,2,9}
  EXPECT_DOUBLE_EQ(precision_at_k(ref, ref, 5), 1.0);
  EXPECT_THROW(precision_at_k(ref, cand, 0), InvalidArgument);
}

TEST(RankQuality, NormalizedFootrule) {
  const std::vector<std::uint64_t> a{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(normalized_footrule(a, a), 0.0);
  const std::vector<std::uint64_t> reversed{4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(normalized_footrule(a, reversed), 1.0);
}

class ConjunctiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 50;
    opts.vocabulary_size = 300;
    opts.min_tokens = 60;
    opts.max_tokens = 250;
    // Overlapping keyword supports so the intersection is non-trivial.
    opts.injected.push_back(ir::InjectedKeyword{"network", 35, 0.3, 40});
    opts.injected.push_back(ir::InjectedKeyword{"protocol", 30, 0.4, 30});
    opts.seed = 404;
    corpus_ = ir::generate_corpus(opts);

    key_ = sse::keygen();
    rsse_ = std::make_unique<sse::RsseScheme>(key_);
    basic_ = std::make_unique<sse::BasicScheme>(key_);
    rsse_built_ = std::make_unique<sse::RsseScheme::BuildResult>(rsse_->build_index(corpus_));
    basic_index_ = basic_->build_index(corpus_);
    inverted_ = ir::InvertedIndex::build(corpus_, rsse_->analyzer());
    generator_ = std::make_unique<sse::TrapdoorGenerator>(key_.x, key_.y,
                                                          key_.params.p_bits);
  }

  // Ground truth: ids in F(w1) ∩ F(w2).
  std::set<std::uint64_t> true_intersection() const {
    std::set<std::uint64_t> net;
    for (const auto& p : *inverted_.postings("network")) net.insert(ir::value(p.file));
    std::set<std::uint64_t> both;
    for (const auto& p : *inverted_.postings("protocol"))
      if (net.contains(ir::value(p.file))) both.insert(ir::value(p.file));
    return both;
  }

  // Ground truth eq.-1 ranking restricted to the intersection.
  std::vector<std::uint64_t> true_ranking() const {
    const auto both = true_intersection();
    auto ranked = inverted_.ranked_postings_tfidf({"network", "protocol"});
    std::vector<std::uint64_t> ids;
    for (const auto& hit : ranked)
      if (both.contains(ir::value(hit.file))) ids.push_back(ir::value(hit.file));
    return ids;
  }

  ir::Corpus corpus_;
  sse::MasterKey key_;
  std::unique_ptr<sse::RsseScheme> rsse_;
  std::unique_ptr<sse::BasicScheme> basic_;
  std::unique_ptr<sse::RsseScheme::BuildResult> rsse_built_;
  sse::SecureIndex basic_index_;
  ir::InvertedIndex inverted_;
  std::unique_ptr<sse::TrapdoorGenerator> generator_;
};

TEST_F(ConjunctiveTest, TrapdoorNormalizesAndDeduplicates) {
  const auto t = make_conjunctive_trapdoor(*generator_,
                                           {"Networking", "networks", "protocol"});
  EXPECT_EQ(t.trapdoors.size(), 2u);  // two distinct normalized keywords
  EXPECT_THROW(make_conjunctive_trapdoor(*generator_, {"the", "!!"}), InvalidArgument);
  // Serialization round trip.
  const auto restored = ConjunctiveTrapdoor::deserialize(t.serialize());
  EXPECT_EQ(restored.trapdoors.size(), 2u);
  EXPECT_EQ(restored.trapdoors[0], t.trapdoors[0]);
}

TEST_F(ConjunctiveTest, RsseVariantReturnsExactlyTheIntersection) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network", "protocol"});
  const auto hits = ConjunctiveRsse::search(rsse_built_->index, t);
  std::set<std::uint64_t> got;
  for (const auto& h : hits) got.insert(ir::value(h.file));
  EXPECT_EQ(got, true_intersection());
  ASSERT_FALSE(hits.empty());
  for (std::size_t i = 1; i < hits.size(); ++i)
    EXPECT_GE(hits[i - 1].aggregate_opm, hits[i].aggregate_opm);
}

TEST_F(ConjunctiveTest, BasicVariantReproducesEquationOneExactly) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network", "protocol"});
  const auto server_result = ConjunctiveBasic::search(basic_index_, t);
  const Bytes score_key = crypto::Prf(key_.z).derive("score-key");
  const auto ranked = ConjunctiveBasic::rank(server_result, score_key,
                                             corpus_.size());
  const auto truth = true_ranking();
  ASSERT_EQ(ranked.size(), truth.size());
  for (std::size_t i = 0; i < ranked.size(); ++i)
    EXPECT_EQ(ir::value(ranked[i].file), truth[i]) << "rank " << i;
}

TEST_F(ConjunctiveTest, BasicVariantListSizesMatchDocumentFrequencies) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network", "protocol"});
  const auto server_result = ConjunctiveBasic::search(basic_index_, t);
  ASSERT_EQ(server_result.list_sizes.size(), 2u);
  std::multiset<std::uint64_t> got(server_result.list_sizes.begin(),
                                   server_result.list_sizes.end());
  std::multiset<std::uint64_t> expected{inverted_.document_frequency("network"),
                                        inverted_.document_frequency("protocol")};
  EXPECT_EQ(got, expected);
}

TEST_F(ConjunctiveTest, ApproximateRankingCorrelatesWithTruth) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network", "protocol"});
  const auto hits = ConjunctiveRsse::search(rsse_built_->index, t);
  const auto truth = true_ranking();
  ASSERT_GT(truth.size(), 3u);
  std::vector<std::uint64_t> approx;
  for (const auto& h : hits) approx.push_back(ir::value(h.file));
  // The sum-of-OPM ranking is approximate but must be strongly positively
  // correlated with the exact eq.-1 ranking.
  EXPECT_GT(kendall_tau(truth, approx), 0.3);
}

TEST_F(ConjunctiveTest, SingleKeywordDegeneratesToOrdinarySearch) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network"});
  const auto hits = ConjunctiveRsse::search(rsse_built_->index, t);
  const auto direct = sse::RsseScheme::search(rsse_built_->index,
                                              rsse_->trapdoor("network"));
  ASSERT_EQ(hits.size(), direct.size());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].file, direct[i].file);
    EXPECT_EQ(hits[i].aggregate_opm, direct[i].opm_score);
  }
}

TEST_F(ConjunctiveTest, TopKTruncates) {
  const auto t = make_conjunctive_trapdoor(*generator_, {"network", "protocol"});
  const auto all = ConjunctiveRsse::search(rsse_built_->index, t);
  ASSERT_GT(all.size(), 2u);
  const auto top2 = ConjunctiveRsse::search(rsse_built_->index, t, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], all[0]);
}

TEST_F(ConjunctiveTest, DisjointKeywordsYieldEmptyIntersection) {
  // A keyword absent from the corpus forces an empty conjunctive result.
  const auto t = make_conjunctive_trapdoor(*generator_, {"network", "qqqabsent"});
  EXPECT_TRUE(ConjunctiveRsse::search(rsse_built_->index, t).empty());
  EXPECT_TRUE(ConjunctiveBasic::search(basic_index_, t).hits.empty());
}

}  // namespace
}  // namespace rsse::ext
