// Porter stemmer vectors: the classic examples from Porter's 1980 paper,
// step by step, as a parameterized table.
#include <gtest/gtest.h>

#include "ir/porter_stemmer.h"

namespace rsse::ir {
namespace {

struct Vector {
  const char* input;
  const char* expected;
};

class PorterVectors : public ::testing::TestWithParam<Vector> {};

TEST_P(PorterVectors, StemsAsInPortersPaper) {
  EXPECT_EQ(porter_stem(GetParam().input), GetParam().expected)
      << "input: " << GetParam().input;
}

INSTANTIATE_TEST_SUITE_P(
    Step1a, PorterVectors,
    ::testing::Values(Vector{"caresses", "caress"}, Vector{"ponies", "poni"},
                      Vector{"ties", "ti"}, Vector{"caress", "caress"},
                      Vector{"cats", "cat"}));

INSTANTIATE_TEST_SUITE_P(
    Step1b, PorterVectors,
    ::testing::Values(Vector{"feed", "feed"}, Vector{"agreed", "agre"},
                      Vector{"plastered", "plaster"}, Vector{"bled", "bled"},
                      Vector{"motoring", "motor"}, Vector{"sing", "sing"},
                      Vector{"conflated", "conflat"}, Vector{"troubled", "troubl"},
                      Vector{"sized", "size"}, Vector{"hopping", "hop"},
                      Vector{"tanned", "tan"}, Vector{"falling", "fall"},
                      Vector{"hissing", "hiss"}, Vector{"fizzed", "fizz"},
                      Vector{"failing", "fail"}, Vector{"filing", "file"}));

INSTANTIATE_TEST_SUITE_P(
    Step1c, PorterVectors,
    ::testing::Values(Vector{"happy", "happi"}, Vector{"sky", "sky"}));

INSTANTIATE_TEST_SUITE_P(
    Step2, PorterVectors,
    ::testing::Values(Vector{"relational", "relat"}, Vector{"conditional", "condit"},
                      Vector{"rational", "ration"}, Vector{"valenci", "valenc"},
                      Vector{"hesitanci", "hesit"}, Vector{"digitizer", "digit"},
                      Vector{"conformabli", "conform"}, Vector{"radicalli", "radic"},
                      Vector{"differentli", "differ"}, Vector{"vileli", "vile"},
                      Vector{"analogousli", "analog"},
                      Vector{"vietnamization", "vietnam"},
                      Vector{"predication", "predic"}, Vector{"operator", "oper"},
                      Vector{"feudalism", "feudal"}, Vector{"decisiveness", "decis"},
                      Vector{"hopefulness", "hope"}, Vector{"callousness", "callous"},
                      Vector{"formaliti", "formal"}, Vector{"sensitiviti", "sensit"},
                      Vector{"sensibiliti", "sensibl"}));

INSTANTIATE_TEST_SUITE_P(
    Step3, PorterVectors,
    ::testing::Values(Vector{"triplicate", "triplic"}, Vector{"formative", "form"},
                      Vector{"formalize", "formal"}, Vector{"electriciti", "electr"},
                      Vector{"electrical", "electr"}, Vector{"hopeful", "hope"},
                      Vector{"goodness", "good"}));

INSTANTIATE_TEST_SUITE_P(
    Step4, PorterVectors,
    ::testing::Values(Vector{"revival", "reviv"}, Vector{"allowance", "allow"},
                      Vector{"inference", "infer"}, Vector{"airliner", "airlin"},
                      Vector{"gyroscopic", "gyroscop"}, Vector{"adjustable", "adjust"},
                      Vector{"defensible", "defens"}, Vector{"irritant", "irrit"},
                      Vector{"replacement", "replac"}, Vector{"adjustment", "adjust"},
                      Vector{"dependent", "depend"}, Vector{"adoption", "adopt"},
                      Vector{"homologou", "homolog"}, Vector{"communism", "commun"},
                      Vector{"activate", "activ"}, Vector{"angulariti", "angular"},
                      Vector{"homologous", "homolog"}, Vector{"effective", "effect"},
                      Vector{"bowdlerize", "bowdler"}));

INSTANTIATE_TEST_SUITE_P(
    Step5, PorterVectors,
    ::testing::Values(Vector{"probate", "probat"}, Vector{"rate", "rate"},
                      Vector{"cease", "ceas"}, Vector{"controll", "control"},
                      Vector{"roll", "roll"}));

INSTANTIATE_TEST_SUITE_P(
    DomainWords, PorterVectors,
    ::testing::Values(Vector{"network", "network"}, Vector{"networks", "network"},
                      Vector{"networking", "network"}, Vector{"networked", "network"},
                      Vector{"encryption", "encrypt"}, Vector{"encrypted", "encrypt"},
                      Vector{"searchable", "searchabl"}, Vector{"searching", "search"},
                      Vector{"ranked", "rank"}, Vector{"ranking", "rank"},
                      Vector{"protocols", "protocol"}, Vector{"clouds", "cloud"}));

TEST(Porter, ShortWordsAreUntouched) {
  EXPECT_EQ(porter_stem("a"), "a");
  EXPECT_EQ(porter_stem("is"), "is");
  EXPECT_EQ(porter_stem("by"), "by");
}

TEST(Porter, Idempotence) {
  // Stemming an already-stemmed word must not change it further for the
  // words the schemes index (queries are stemmed twice in some paths).
  for (const char* w : {"network", "encrypt", "search", "rank", "cloud",
                        "protocol", "motor", "hop", "relat"}) {
    const std::string once = porter_stem(w);
    EXPECT_EQ(porter_stem(once), once) << w;
  }
}

}  // namespace
}  // namespace rsse::ir
