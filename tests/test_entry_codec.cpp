// Posting-entry codec: layout, encryption round trip, padding
// detection, and size uniformity (padding must be indistinguishable in
// length from genuine entries).
#include <gtest/gtest.h>

#include "crypto/csprng.h"
#include "sse/entry_codec.h"
#include "util/errors.h"

namespace rsse::sse {
namespace {

TEST(EntryCodec, PlaintextLayout) {
  const Bytes score_field{0xaa, 0xbb, 0xcc};
  const Bytes plain = encode_entry_plaintext(ir::file_id(0x1122334455667788ull), score_field);
  ASSERT_EQ(plain.size(), kFlagSize + kIdSize + 3);
  for (std::size_t i = 0; i < kFlagSize; ++i) EXPECT_EQ(plain[i], 0x00);
  // id is little-endian after the flag.
  EXPECT_EQ(plain[kFlagSize], 0x88);
  EXPECT_EQ(plain[kFlagSize + 7], 0x11);
  EXPECT_EQ(plain[kFlagSize + kIdSize], 0xaa);
}

TEST(EntryCodec, EncryptDecryptRoundTrip) {
  const Bytes key = crypto::random_bytes(32);
  const Bytes score_field{1, 2, 3, 4, 5, 6, 7, 8};
  const Bytes plain = encode_entry_plaintext(ir::file_id(42), score_field);
  const Bytes ciphertext = encrypt_entry(key, plain);
  EXPECT_EQ(ciphertext.size(), encrypted_entry_size(score_field.size()));

  const auto entry = decrypt_entry(key, ciphertext, score_field.size());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->file, ir::file_id(42));
  EXPECT_EQ(entry->score_field, score_field);
}

TEST(EntryCodec, WrongKeyReadsAsPadding) {
  const Bytes plain = encode_entry_plaintext(ir::file_id(1), Bytes(8, 0x5a));
  const Bytes ciphertext = encrypt_entry(crypto::random_bytes(32), plain);
  // Decrypting with an unrelated key scrambles the flag: treated as
  // padding, never a bogus hit.
  EXPECT_FALSE(decrypt_entry(crypto::random_bytes(32), ciphertext, 8).has_value());
}

TEST(EntryCodec, PaddingIsRejectedAndSizedLikeRealEntries) {
  const Bytes key = crypto::random_bytes(32);
  for (std::size_t score_size : {8u, 24u}) {
    const Bytes pad = random_padding_entry(score_size);
    EXPECT_EQ(pad.size(), encrypted_entry_size(score_size));
    EXPECT_FALSE(decrypt_entry(key, pad, score_size).has_value());
  }
}

TEST(EntryCodec, SizeMismatchThrows) {
  const Bytes key = crypto::random_bytes(32);
  const Bytes ciphertext =
      encrypt_entry(key, encode_entry_plaintext(ir::file_id(1), Bytes(8, 0)));
  EXPECT_THROW(decrypt_entry(key, ciphertext, 24), ParseError);
  EXPECT_THROW(decrypt_entry(key, Bytes(5, 0), 8), ParseError);
}

TEST(EntryCodec, FreshIvPerEntry) {
  const Bytes key = crypto::random_bytes(32);
  const Bytes plain = encode_entry_plaintext(ir::file_id(7), Bytes(8, 1));
  EXPECT_NE(encrypt_entry(key, plain), encrypt_entry(key, plain));
}

}  // namespace
}  // namespace rsse::sse
