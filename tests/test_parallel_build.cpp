// Multi-threaded index construction: a parallel build must produce an
// index that is search-equivalent to the single-threaded one (ciphertext
// bytes differ only through fresh IVs/padding), with consistent stats.
#include <gtest/gtest.h>

#include "ir/corpus_gen.h"
#include "sse/rsse_scheme.h"
#include "util/errors.h"

namespace rsse::sse {
namespace {

class ParallelBuildTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 80;
    opts.vocabulary_size = 300;
    opts.min_tokens = 60;
    opts.max_tokens = 250;
    opts.injected.push_back(ir::InjectedKeyword{"network", 45, 0.3, 40});
    opts.injected.push_back(ir::InjectedKeyword{"protocol", 20, 0.5, 20});
    opts.seed = 99;
    corpus_ = ir::generate_corpus(opts);
    scheme_ = std::make_unique<RsseScheme>(keygen());
    serial_ = std::make_unique<RsseScheme::BuildResult>(scheme_->build_index(corpus_));
  }

  ir::Corpus corpus_;
  std::unique_ptr<RsseScheme> scheme_;
  std::unique_ptr<RsseScheme::BuildResult> serial_;
};

class ParallelBuildThreads : public ParallelBuildTest,
                             public ::testing::WithParamInterface<std::size_t> {};

TEST_P(ParallelBuildThreads, SearchEquivalentToSerialBuild) {
  const RsseScheme::BuildOptions options{GetParam()};
  const auto parallel =
      scheme_->build_index(corpus_, serial_->quantizer, options);

  EXPECT_EQ(parallel.index.num_rows(), serial_->index.num_rows());
  EXPECT_EQ(parallel.stats.num_postings, serial_->stats.num_postings);
  EXPECT_EQ(parallel.stats.pad_width, serial_->stats.pad_width);

  for (const char* keyword : {"network", "protocol"}) {
    const auto a = RsseScheme::search(serial_->index, scheme_->trapdoor(keyword));
    const auto b = RsseScheme::search(parallel.index, scheme_->trapdoor(keyword));
    // OPM values are deterministic per (keyword, level, id): full equality.
    EXPECT_EQ(a, b) << keyword;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelBuildThreads,
                         ::testing::Values(1, 2, 4, 8));

TEST_F(ParallelBuildTest, StatsAccumulateAcrossWorkers) {
  const auto parallel =
      scheme_->build_index(corpus_, serial_->quantizer, RsseScheme::BuildOptions{4});
  EXPECT_GT(parallel.stats.opm_seconds, 0.0);
  EXPECT_GT(parallel.stats.wall_seconds, 0.0);
  // Aggregate CPU time across 4 workers can exceed wall time; it must at
  // least reach the serial build's OPM share within noise.
  EXPECT_GT(parallel.stats.opm_seconds, 0.25 * serial_->stats.opm_seconds);
}

TEST_F(ParallelBuildTest, ZeroThreadsRejected) {
  EXPECT_THROW(scheme_->build_index(corpus_, RsseScheme::BuildOptions{0}),
               InvalidArgument);
}

}  // namespace
}  // namespace rsse::sse
