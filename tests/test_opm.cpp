// One-to-many order-preserving mapping tests — the properties Sec. IV-B
// and Sec. V-A claim:
//   * cross-file order preservation (buckets disjoint & ordered);
//   * same plaintext -> same bucket (the score-dynamics foundation);
//   * per-(m, id) determinism;
//   * distribution flattening: duplicated plaintexts scatter over the
//     bucket, raising min-entropy vs the deterministic OPSE;
//   * bucket inversion recovers the plaintext.
#include <gtest/gtest.h>

#include <set>

#include "opse/bclo_opse.h"
#include "opse/opm.h"
#include "util/errors.h"
#include "util/histogram.h"
#include "util/stats.h"
#include "util/rng.h"

namespace rsse::opse {
namespace {

Bytes key(std::string_view name) { return to_bytes(name); }

TEST(Opm, DeterministicPerPlaintextAndFileId) {
  const OneToManyOpm opm(key("k"), OpeParams{128, 1ull << 30});
  EXPECT_EQ(opm.map(5, 17), opm.map(5, 17));
  EXPECT_EQ(opm.map(128, 0), opm.map(128, 0));
}

TEST(Opm, DifferentFileIdsScatterWithinBucket) {
  const OneToManyOpm opm(key("k"), OpeParams{128, 1ull << 30});
  const Bucket b = opm.bucket_of(64);
  std::set<std::uint64_t> values;
  for (std::uint64_t id = 0; id < 200; ++id) {
    const std::uint64_t c = opm.map(64, id);
    EXPECT_TRUE(b.contains(c));
    values.insert(c);
  }
  // With |bucket| >> 200 essentially all 200 values should be distinct.
  EXPECT_GT(values.size(), 190u);
}

TEST(Opm, OrderPreservedAcrossArbitraryFilePairs) {
  const OneToManyOpm opm(key("order"), OpeParams{64, 1ull << 24});
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t m1 = rng.uniform_in(1, 64);
    const std::uint64_t m2 = rng.uniform_in(1, 64);
    const std::uint64_t id1 = rng.next_u64();
    const std::uint64_t id2 = rng.next_u64();
    const std::uint64_t c1 = opm.map(m1, id1);
    const std::uint64_t c2 = opm.map(m2, id2);
    if (m1 < m2) {
      EXPECT_LT(c1, c2) << "m1=" << m1 << " m2=" << m2;
    } else if (m1 > m2) {
      EXPECT_GT(c1, c2) << "m1=" << m1 << " m2=" << m2;
    }
  }
}

TEST(Opm, BucketMatchesDeterministicOpseBucket) {
  // The one-to-many adaptation must not disturb the plaintext-to-bucket
  // descent (Sec. V-A: "it has nothing to do with the randomized
  // plaintext-to-bucket mapping process").
  const OpeParams p{128, 1ull << 26};
  const OneToManyOpm opm(key("same"), p);
  const BcloOpse opse(key("same"), p);
  for (std::uint64_t m = 1; m <= 128; ++m) EXPECT_EQ(opm.bucket_of(m), opse.bucket_of(m));
}

TEST(Opm, InvertRecoversPlaintextForAllFiles) {
  const OneToManyOpm opm(key("inv"), OpeParams{32, 1ull << 20});
  for (std::uint64_t m = 1; m <= 32; ++m) {
    for (std::uint64_t id = 0; id < 16; ++id)
      EXPECT_EQ(opm.invert(opm.map(m, id)), m);
  }
}

TEST(Opm, SameScoreSameBucketUnderSameKeyAcrossInstances) {
  // Score-dynamics foundation: a fresh mapper with the same key assigns
  // new postings of an old score to the SAME bucket.
  const OpeParams p{128, 1ull << 30};
  const OneToManyOpm original(key("dyn"), p);
  const OneToManyOpm later(key("dyn"), p);
  for (std::uint64_t m : {1ull, 17ull, 64ull, 128ull})
    EXPECT_EQ(original.bucket_of(m), later.bucket_of(m));
}

TEST(Opm, FlattensSkewedDistributionRelativeToOpse) {
  // A heavily duplicated plaintext multiset: the deterministic OPSE maps
  // each duplicate class to ONE ciphertext point, so the ciphertext
  // multiset inherits the plaintext's peak duplicate count; the
  // one-to-many mapping scatters duplicates across the bucket, driving
  // value-level min-entropy (the measure behind eq. 3) to its maximum.
  const OpeParams p{128, 1ull << 40};
  const OneToManyOpm opm(key("flat"), p);
  const BcloOpse opse(key("flat"), p);

  Xoshiro256 rng(42);
  std::vector<std::uint64_t> plaintexts;
  for (int i = 0; i < 1000; ++i) {
    // skewed: mostly small levels
    const double u = rng.next_double();
    const auto m = static_cast<std::uint64_t>(1 + 127.0 * u * u * u);
    plaintexts.push_back(std::min<std::uint64_t>(m, 128));
  }

  std::vector<std::uint64_t> opse_values;
  std::vector<std::uint64_t> opm_values;
  for (std::size_t i = 0; i < plaintexts.size(); ++i) {
    opse_values.push_back(opse.encrypt(plaintexts[i]));
    opm_values.push_back(opm.map(plaintexts[i], i));
  }
  const std::uint64_t plain_peak = max_duplicates(plaintexts);
  ASSERT_GT(plain_peak, 20u);  // the workload really is skewed
  // Deterministic OPSE preserves the duplicate structure exactly.
  EXPECT_EQ(max_duplicates(opse_values), plain_peak);
  // One-to-many: no duplicates at all at the paper's safe range choice.
  EXPECT_EQ(max_duplicates(opm_values), 1u);
  EXPECT_EQ(distinct_count(opm_values), plaintexts.size());
}

TEST(Opm, TwoKeysProduceVisiblyDifferentHistograms) {
  // Fig. 6's actual claim: the SAME score multiset encrypted under two
  // different keys yields two differently randomized value distributions
  // (the bucket layout is re-randomized per key).
  const OpeParams p{128, 1ull << 40};
  const OneToManyOpm a(key("fig6-key-one"), p);
  const OneToManyOpm b(key("fig6-key-two"), p);

  Xoshiro256 rng(7);
  const auto range_max = static_cast<double>(p.range_size);
  Histogram ha(0, range_max, 128);
  Histogram hb(0, range_max, 128);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_double();
    const auto m = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(1 + 127.0 * u * u * u), 128);
    ha.add(static_cast<double>(a.map(m, static_cast<std::uint64_t>(i))));
    hb.add(static_cast<double>(b.map(m, static_cast<std::uint64_t>(i))));
  }
  // L1 distance between the two binned distributions: re-randomization
  // must move a large fraction of the mass.
  std::uint64_t l1 = 0;
  for (std::size_t bin = 0; bin < ha.bins(); ++bin) {
    const std::uint64_t ca = ha.count(bin);
    const std::uint64_t cb = hb.count(bin);
    l1 += ca > cb ? ca - cb : cb - ca;
  }
  EXPECT_GT(l1, 500u);  // >25% of 2*1000 total mass displaced
}

TEST(Opm, DifferentKeysRandomizeTheMapping) {
  const OpeParams p{128, 1ull << 30};
  const OneToManyOpm a(key("key-one"), p);
  const OneToManyOpm b(key("key-two"), p);
  int bucket_diffs = 0;
  for (std::uint64_t m = 1; m <= 128; ++m)
    if (a.bucket_of(m) != b.bucket_of(m)) ++bucket_diffs;
  EXPECT_GT(bucket_diffs, 100);
}

TEST(Opm, SingleBucketRangeIsBijective) {
  // domain == range: every bucket holds exactly one ciphertext, so the
  // one-to-many map degenerates to a bijection and file ids cannot
  // scatter anything.
  const OneToManyOpm opm(key("tight"), OpeParams{16, 16});
  std::set<std::uint64_t> images;
  for (std::uint64_t m = 1; m <= 16; ++m) {
    const Bucket b = opm.bucket_of(m);
    EXPECT_EQ(b.size(), 1u);
    EXPECT_EQ(opm.map(m, 1), opm.map(m, 999));  // nowhere to scatter
    EXPECT_TRUE(images.insert(opm.map(m, 1)).second);
    EXPECT_EQ(opm.invert(opm.map(m, 7)), m);
  }
  EXPECT_EQ(images.size(), 16u);
}

TEST(Opm, SinglePlaintextDomainOwnsTheWholeRange) {
  // domain == 1: one bucket spans the entire range; every file id maps
  // somewhere inside it and inversion is constant.
  const OneToManyOpm opm(key("one"), OpeParams{1, 4096});
  const Bucket b = opm.bucket_of(1);
  EXPECT_EQ(b.lo, 1u);
  EXPECT_EQ(b.hi, 4096u);
  for (std::uint64_t id = 0; id < 50; ++id) {
    const std::uint64_t c = opm.map(1, id);
    EXPECT_TRUE(b.contains(c));
    EXPECT_EQ(opm.invert(c), 1u);
  }
}

TEST(Opm, RejectsBadInputs) {
  const OneToManyOpm opm(key("k"), OpeParams{16, 64});
  EXPECT_THROW(opm.map(0, 1), InvalidArgument);
  EXPECT_THROW(opm.map(17, 1), InvalidArgument);
  EXPECT_THROW(opm.invert(0), InvalidArgument);
  EXPECT_THROW(opm.invert(65), InvalidArgument);
  EXPECT_THROW(OneToManyOpm(Bytes{}, OpeParams{16, 64}), InvalidArgument);
}

}  // namespace
}  // namespace rsse::opse
