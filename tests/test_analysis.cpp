// Leakage-analysis module: index shape, search/access pattern ledger,
// and the keyword-fingerprinting adversary — who must WIN against
// deterministic OPSE and LOSE against the one-to-many mapping (the
// measurable form of Sec. V-A's security argument).
#include <gtest/gtest.h>

#include <map>

#include "analysis/fingerprint.h"
#include "analysis/leakage.h"
#include "crypto/csprng.h"
#include "ir/analyzer.h"
#include "ir/corpus_gen.h"
#include "ir/inverted_index.h"
#include "ir/scoring.h"
#include "opse/bclo_opse.h"
#include "opse/opm.h"
#include "opse/quantizer.h"
#include "sse/rsse_scheme.h"
#include "util/errors.h"

namespace rsse::analysis {
namespace {

TEST(IndexShapeAnalysis, ReportsPaddedAndUnpaddedShapes) {
  sse::SecureIndex padded;
  padded.add_row(Bytes(20, 1), {Bytes(8, 0), Bytes(8, 0)});
  padded.add_row(Bytes(20, 2), {Bytes(8, 0), Bytes(8, 0)});
  const IndexShape uniform = index_shape(padded);
  EXPECT_EQ(uniform.num_rows, 2u);
  EXPECT_EQ(uniform.min_row_width, 2u);
  EXPECT_EQ(uniform.max_row_width, 2u);
  EXPECT_EQ(uniform.distinct_widths, 1u);
  EXPECT_DOUBLE_EQ(uniform.width_shannon_entropy, 0.0);

  sse::SecureIndex ragged;
  ragged.add_row(Bytes(20, 1), {Bytes(8, 0)});
  ragged.add_row(Bytes(20, 2), {Bytes(8, 0), Bytes(8, 0), Bytes(8, 0)});
  const IndexShape leaky = index_shape(ragged);
  EXPECT_EQ(leaky.distinct_widths, 2u);
  EXPECT_GT(leaky.width_shannon_entropy, 0.9);
}

TEST(LeakageLedger, DerivesSearchAndAccessPatterns) {
  LeakageLedger ledger;
  const Bytes label_a(20, 0xaa);
  const Bytes label_b(20, 0xbb);
  ledger.record({label_a, {1, 2, 3}});
  ledger.record({label_b, {2}});
  ledger.record({label_a, {1, 2, 3}});  // repeat search for keyword A

  EXPECT_EQ(ledger.num_queries(), 3u);
  const auto pattern = ledger.search_pattern();
  ASSERT_EQ(pattern.size(), 2u);  // two distinct keywords
  EXPECT_EQ(pattern[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(pattern[1], (std::vector<std::size_t>{1}));
  EXPECT_EQ(ledger.distinct_keywords_queried(), 2u);

  const auto access = ledger.access_pattern();
  ASSERT_EQ(access.size(), 3u);
  EXPECT_EQ(access[1], (std::vector<std::uint64_t>{2}));

  const auto freq = ledger.file_frequencies();
  EXPECT_EQ(freq.at(2), 3u);  // file 2 returned by every query
  EXPECT_EQ(freq.at(1), 2u);
}

TEST(LeakageLedger, GroupProfilesAggregateTheAdversaryView) {
  LeakageLedger ledger;
  const Bytes label_a(20, 0xaa);
  const Bytes label_b(20, 0xbb);
  ledger.record({label_a, {3, 1}, 6});
  ledger.record({label_b, {2, 3}, 4});
  ledger.record({label_a, {1, 5}, 6});

  const auto profiles = ledger.query_profiles();
  ASSERT_EQ(profiles.size(), 2u);  // first-seen order
  EXPECT_EQ(profiles[0].row_label, label_a);
  EXPECT_EQ(profiles[0].query_indices, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(profiles[0].result_union, (std::vector<std::uint64_t>{1, 3, 5}));
  EXPECT_EQ(profiles[0].row_width, 6u);
  EXPECT_EQ(profiles[1].result_union, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(profiles[1].row_width, 4u);

  // Histogram follows the same group order.
  EXPECT_EQ(ledger.query_frequency_histogram(), (std::vector<std::size_t>{2, 1}));
}

TEST(LeakageLedger, CooccurrenceMatrixUsesOverlapCoefficients) {
  LeakageLedger ledger;
  ledger.record({Bytes(20, 0xaa), {1, 2, 3}, 3});
  ledger.record({Bytes(20, 0xbb), {3, 4}, 2});
  ledger.record({Bytes(20, 0xcc), {}, 0});  // empty result set

  const auto matrix = ledger.cooccurrence_matrix();
  ASSERT_EQ(matrix.size(), 9u);
  EXPECT_DOUBLE_EQ(matrix[0 * 3 + 0], 1.0);            // diagonal, non-empty
  EXPECT_DOUBLE_EQ(matrix[0 * 3 + 1], 1.0 / 2.0);      // |{3}| / min(3, 2)
  EXPECT_DOUBLE_EQ(matrix[1 * 3 + 0], matrix[0 * 3 + 1]);  // symmetric
  EXPECT_DOUBLE_EQ(matrix[2 * 3 + 2], 0.0);            // empty group
  EXPECT_DOUBLE_EQ(matrix[0 * 3 + 2], 0.0);
}

TEST(LeakageLedger, OverlapCoefficientDefinition) {
  EXPECT_DOUBLE_EQ(overlap_coefficient({1, 2, 3}, {2, 3, 4, 5}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(overlap_coefficient({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(overlap_coefficient({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(overlap_coefficient({}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(overlap_coefficient({}, {}), 0.0);
}

class FingerprintAttack : public ::testing::Test {
 protected:
  void SetUp() override {
    // Several candidate keywords with visibly different TF statistics —
    // the adversary's public background knowledge.
    ir::CorpusGenOptions opts;
    opts.num_documents = 400;
    opts.vocabulary_size = 150;
    opts.min_tokens = 100;
    opts.max_tokens = 800;
    opts.injected.push_back(ir::InjectedKeyword{"network", 380, 0.15, 120});
    opts.injected.push_back(ir::InjectedKeyword{"protocol", 380, 0.55, 40});
    opts.injected.push_back(ir::InjectedKeyword{"cipher", 380, 0.85, 10});
    opts.seed = 83;
    corpus_ = ir::generate_corpus(opts);
    const auto index = ir::InvertedIndex::build(corpus_, ir::Analyzer());

    std::vector<double> all_scores;
    for (const char* kw : {"network", "protocol", "cipher"}) {
      for (const auto& p : *index.postings(kw))
        all_scores.push_back(ir::score_single_keyword(p.tf, index.doc_length(p.file)));
    }
    quantizer_ = std::make_unique<opse::ScoreQuantizer>(
        opse::ScoreQuantizer::from_scores(all_scores, 128));

    std::vector<KeywordFingerprinter::Candidate> candidates;
    for (const char* kw : {"network", "protocol", "cipher"}) {
      KeywordFingerprinter::Candidate c;
      c.keyword = kw;
      for (const auto& p : *index.postings(kw))
        c.score_values.push_back(quantizer_->quantize(
            ir::score_single_keyword(p.tf, index.doc_length(p.file))));
      levels_[kw] = c.score_values;
      candidates.push_back(std::move(c));
    }
    attacker_ = std::make_unique<KeywordFingerprinter>(std::move(candidates));
  }

  ir::Corpus corpus_;
  std::unique_ptr<opse::ScoreQuantizer> quantizer_;
  std::map<std::string, std::vector<std::uint64_t>> levels_;
  std::unique_ptr<KeywordFingerprinter> attacker_;
};

TEST_F(FingerprintAttack, WinsAgainstDeterministicOpse) {
  // Each keyword's list encrypted under its own random deterministic-OPSE
  // key: the adversary must still identify all three.
  for (const auto& [keyword, levels] : levels_) {
    const opse::BcloOpse det(crypto::random_bytes(32), {128, 1ull << 40});
    std::vector<std::uint64_t> observed;
    for (std::uint64_t level : levels) observed.push_back(det.encrypt(level));
    EXPECT_EQ(attacker_->best_match(observed), keyword);
  }
}

TEST_F(FingerprintAttack, CollapsesAgainstOneToManyMapping) {
  // Same lists through the one-to-many mapping: the signature flattens
  // to ~uniform, so the adversary's distances no longer separate the
  // true keyword — quantified as the margin between the best and worst
  // candidate collapsing relative to the OPSE case.
  for (const auto& [keyword, levels] : levels_) {
    const opse::OneToManyOpm opm(crypto::random_bytes(32), {128, 1ull << 46});
    std::vector<std::uint64_t> observed;
    for (std::size_t i = 0; i < levels.size(); ++i)
      observed.push_back(opm.map(levels[i], i));
    const auto matches = attacker_->rank_candidates(observed);
    // The margin between candidates is tiny: all profiles look equally
    // far from the flattened observation.
    const double spread = matches.back().distance - matches.front().distance;
    EXPECT_LT(spread, 0.35) << keyword;
    // And the distances themselves are large (the observation matches
    // no skewed profile well).
    EXPECT_GT(matches.front().distance, 0.5) << keyword;
  }
}

TEST_F(FingerprintAttack, SignatureIsInvariantUnderMonotoneRescaling) {
  const auto& levels = levels_.at("network");
  const auto base = attacker_->signature(levels);
  std::vector<std::uint64_t> scaled;
  for (std::uint64_t v : levels) scaled.push_back(v * 1000 + 17);
  const auto rescaled = attacker_->signature(scaled);
  double l1 = 0;
  for (std::size_t b = 0; b < base.size(); ++b) l1 += std::abs(base[b] - rescaled[b]);
  EXPECT_LT(l1, 0.2);
}

TEST(Fingerprinter, Preconditions) {
  using Candidate = KeywordFingerprinter::Candidate;
  EXPECT_THROW(KeywordFingerprinter(std::vector<Candidate>{}), InvalidArgument);
  EXPECT_THROW(KeywordFingerprinter(std::vector<Candidate>{Candidate{"w", {}}}),
               InvalidArgument);
  const KeywordFingerprinter f(std::vector<Candidate>{Candidate{"w", {1, 2, 3}}});
  EXPECT_THROW(f.rank_candidates({}), InvalidArgument);
}

}  // namespace
}  // namespace rsse::analysis
