// The differential oracle (ISSUE 5 tentpole, part 3): per seed, generate
// a corpus and run the same query workload through four engines —
//   1. baseline::PlaintextSearchEngine      (exact eq. 2 ranking, no crypto)
//   2. Basic Scheme end to end              (user-side exact ranking)
//   3. RSSE end to end over one CloudServer (server-ranked by OPM order)
//   4. RSSE over a 3-shard, 2-replica SimNet cluster under injected
//      disconnect/error/delay faults (retried transparently)
// and assert top-k set/order equivalence. The encrypted legs are compared
// modulo quantizer ties: OPM order refines the quantized score order, so
// within one quantization level any permutation is a correct answer —
// the checks pin the per-rank level sequence and completeness above each
// unambiguous k-boundary, never the tie order itself.
//
// Reproducibility: the simulated cluster workload runs twice per seed
// with fresh SimNets; both runs must return identical results AND
// byte-identical SimNet transcripts — the determinism contract every
// future chaos/perf test leans on (DESIGN.md Sec. 9). To keep transcripts
// reproducible the replica cooldown is far longer than the test (replica
// down-state depends on the real clock) and only retryable faults are
// injected (truncate/bit-flip corrupt responses *after* failover
// bookkeeping and would surface as ParseError to the client; they are
// exercised in test_sim.cpp instead).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baseline/plaintext_search.h"
#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cluster/coordinator.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "seg/compactor.h"
#include "seg/segmented_index.h"
#include "sim/sim_net.h"
#include "util/errors.h"
#include "util/rng.h"

namespace rsse {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint64_t> ids_of(const std::vector<cloud::RetrievedFile>& hits) {
  std::vector<std::uint64_t> ids;
  ids.reserve(hits.size());
  for (const auto& hit : hits) ids.push_back(ir::value(hit.document.id));
  return ids;
}

class DifferentialOracle : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    const std::uint64_t seed = GetParam();
    Xoshiro256 rng(seed);
    ir::CorpusGenOptions opts;
    opts.num_documents = 12 + rng.uniform_below(19);
    opts.vocabulary_size = 60 + rng.uniform_below(41);
    opts.zipf_exponent = 0.9 + 0.4 * rng.next_double();
    opts.min_tokens = 20 + rng.uniform_below(20);
    opts.max_tokens = opts.min_tokens + 40 + rng.uniform_below(80);
    opts.injected.push_back(ir::InjectedKeyword{
        "oracle", 1 + rng.uniform_below(opts.num_documents),
        0.2 + 0.5 * rng.next_double(), 25});
    opts.seed = seed * 6007;
    corpus_ = ir::generate_corpus(opts);

    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus_, server_);
    owner_->outsource_basic(corpus_, basic_server_);
    engine_ = std::make_unique<baseline::PlaintextSearchEngine>(corpus_);

    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = cloud::AuthorizationService::open(
        user_key, "u", owner_->enroll_user(user_key, "u"));

    // Probes: the injected keyword, two sampled vocabulary terms, and one
    // keyword that cannot match (the unknown-keyword differential path).
    probes_.push_back("oracle");
    const auto& terms = engine_->index().terms();
    while (probes_.size() < 3) {
      const std::string& term = terms[rng.uniform_below(terms.size())];
      if (std::find(probes_.begin(), probes_.end(), term) == probes_.end())
        probes_.push_back(term);
    }

    // The shard servers are split once and shared by both cluster runs:
    // searches never mutate them, so identical seeds must replay
    // identical transcripts against them.
    const cluster::ShardMap map(kShards);
    auto indexes = map.split_index(server_.index());
    auto file_sets = map.split_files(server_.files());
    for (std::uint32_t s = 0; s < kShards; ++s) {
      shard_servers_.push_back(std::make_unique<cloud::CloudServer>());
      shard_servers_.back()->store(std::move(indexes[s]), std::move(file_sets[s]));
    }
  }

  [[nodiscard]] std::uint64_t quantize(double score) const {
    return owner_->quantizer()->quantize(score);
  }

  /// Asserts `got` (a server-ranked id list for `term`, top-k) is
  /// equivalent to the exact plaintext ranking modulo quantizer ties:
  /// right size, all real matches, per-rank quantized level equal to the
  /// plaintext ranking's level at that rank, and every file scoring
  /// strictly above the k-boundary level present.
  void check_ranked_modulo_ties(const std::string& term,
                                const std::vector<std::uint64_t>& got,
                                std::size_t k) const {
    check_ranked_modulo_ties(*engine_, term, got, k);
  }

  /// Same contract against an explicit oracle — the dynamic-index leg
  /// rebuilds the plaintext engine after every update batch.
  void check_ranked_modulo_ties(const baseline::PlaintextSearchEngine& engine,
                                const std::string& term,
                                const std::vector<std::uint64_t>& got,
                                std::size_t k) const {
    const auto full = engine.search(term, 0);
    const std::size_t expected_size =
        k == 0 ? full.size() : std::min(k, full.size());
    ASSERT_EQ(got.size(), expected_size) << term << " top-" << k;

    std::map<std::uint64_t, std::uint64_t> level;
    for (const auto& p : full) level[ir::value(p.file)] = quantize(p.score);

    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(level.contains(got[i])) << term << ": non-match id " << got[i];
      ASSERT_TRUE(seen.insert(got[i]).second) << term << ": duplicate " << got[i];
      // The plaintext ranking is sorted by exact score, so its quantized
      // levels are non-increasing; rank i of any correct encrypted answer
      // must sit at exactly that level.
      EXPECT_EQ(level[got[i]], quantize(full[i].score))
          << term << " rank " << i << " sits at the wrong quantization level";
    }
    if (!got.empty() && got.size() < full.size()) {
      const std::uint64_t boundary = level[got.back()];
      for (const auto& p : full) {
        if (quantize(p.score) > boundary) {
          EXPECT_TRUE(seen.contains(ir::value(p.file)))
              << term << ": file above the top-" << k << " boundary missing";
        }
      }
    }
  }

  /// Asserts an exact-score leg (Basic Scheme ranking) equals the
  /// plaintext ranking bit for bit — both sort by exact eq. 2 score with
  /// the same id tie-break, so full equality is the contract.
  void check_exact(const std::string& term,
                   const std::vector<cloud::RetrievedFile>& got,
                   std::size_t k) const {
    const auto expected = engine_->search(term, k);
    ASSERT_EQ(got.size(), expected.size()) << term << " top-" << k;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(ir::value(got[i].document.id), ir::value(expected[i].file))
          << term << " rank " << i;
      EXPECT_NEAR(got[i].score, expected[i].score, 1e-9) << term << " rank " << i;
    }
  }

  struct ClusterRun {
    Bytes transcript;
    std::vector<std::vector<std::uint64_t>> results;
  };

  /// The fixed cluster workload under injected faults, against a fresh
  /// SimNet + coordinator over the shared shard servers.
  ClusterRun run_cluster_workload() const {
    sim::SimOptions options;
    options.seed = GetParam() * 31 + 7;
    options.faults.delay_rate = 0.15;
    options.faults.delay_min = 1ms;
    options.faults.delay_max = 5ms;
    options.faults.disconnect_rate = 0.05;
    options.faults.error_rate = 0.05;
    sim::SimNet net(options);

    std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
    for (const auto& shard_server : shard_servers_) {
      auto set = std::make_unique<cluster::ReplicaSet>();
      set->add_replica(net.connect(*shard_server));
      set->add_replica(net.connect(*shard_server));
      sets.push_back(std::move(set));
    }
    cluster::ClusterManifest manifest;
    manifest.num_shards = kShards;
    manifest.replicas = 2;
    manifest.total_rows = server_.index().num_rows();
    manifest.total_files = server_.num_files();
    cluster::CoordinatorOptions coordinator_options;
    // Generous attempts make a query failing through every retry a
    // ~1e-8 event per call; zero backoff keeps wall time flat; the long
    // cooldown keeps replica down-state (real-clock based) stable for the
    // whole run, which the transcript byte-identity depends on.
    coordinator_options.retry.max_attempts = 8;
    coordinator_options.retry.base_backoff = 0ms;
    coordinator_options.retry.max_backoff = 0ms;
    coordinator_options.retry.down_cooldown = std::chrono::minutes(10);
    cluster::ClusterCoordinator coordinator(manifest, std::move(sets),
                                            coordinator_options);
    cloud::DataUser user(credentials_, coordinator);

    ClusterRun run;
    for (const std::string& term : probes_) {
      for (const std::size_t k : {std::size_t{4}, std::size_t{0}})
        run.results.push_back(ids_of(user.ranked_search(term, k)));
    }
    run.results.push_back(ids_of(user.ranked_search("zzzunknownkeyword", 4)));
    run.results.push_back(
        ids_of(user.multi_search({probes_[0], probes_[1]}, false, 5)));
    run.results.push_back(
        ids_of(user.multi_search({probes_[0], probes_[1]}, true, 0)));
    run.transcript = net.transcript();
    return run;
  }

  // ----- dynamic-index differential leg (kUpdate deltas) -----

  /// A fixed sequence of update batches plus the live document set after
  /// each one. The serialized request bytes are built ONCE and replayed
  /// verbatim into every run: entry encryption draws fresh IVs, so
  /// re-building a delta would produce different (equally valid)
  /// ciphertexts and break both transcript identity and cross-leg
  /// result comparison.
  struct UpdateWorkload {
    std::vector<Bytes> payloads;           ///< serialized UpdateRequests
    std::vector<ir::Corpus> live_corpora;  ///< oracle input after batch i
  };

  [[nodiscard]] UpdateWorkload make_update_workload() const {
    Xoshiro256 rng(GetParam() * 977 + 31);
    std::vector<ir::Document> live(corpus_.documents().begin(),
                                   corpus_.documents().end());
    const auto& vocabulary = engine_->index().terms();
    UpdateWorkload workload;
    std::uint64_t next_id = 90000;
    for (int batch = 0; batch < 3; ++batch) {
      std::vector<ir::Document> adds;
      for (int i = 0; i < 2; ++i) {
        // Short documents mixing the injected probe with sampled
        // vocabulary, so interleaved queries see the new postings.
        std::string text = "oracle";
        const std::size_t extra = 8 + rng.uniform_below(10);
        for (std::size_t t = 0; t < extra; ++t) {
          text += ' ';
          text += vocabulary[rng.uniform_below(vocabulary.size())];
        }
        adds.push_back(ir::Document{ir::file_id(next_id), "upd.txt", text});
        ++next_id;
      }
      std::vector<sse::FileId> removes;
      for (int i = 0; i < 2 && live.size() > 6; ++i) {
        const std::size_t pick = rng.uniform_below(live.size());
        removes.push_back(live[pick].id);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      cloud::UpdateRequest req;
      req.delta_id = static_cast<std::uint64_t>(batch) + 1;
      req.delta = owner_->build_update(adds, removes);
      workload.payloads.push_back(req.serialize());
      for (const ir::Document& doc : adds) live.push_back(doc);
      ir::Corpus snapshot;
      for (const ir::Document& doc : live) snapshot.add(doc);
      workload.live_corpora.push_back(std::move(snapshot));
    }
    return workload;
  }

  struct UpdateRun {
    Bytes transcript;
    std::vector<std::vector<std::uint64_t>> results;
  };

  /// Streams the workload into a fresh 3-shard, 2-replica faulty SimNet
  /// cluster, interleaving tie-aware oracle checks after every batch.
  /// `background_compaction` false = one forced compaction mid-stream
  /// (fully deterministic: responses embed segment counts, so the
  /// compactor thread must not race them when transcripts are compared);
  /// true = compactor threads run on every shard (the TSan variant).
  UpdateRun run_update_workload(const UpdateWorkload& workload,
                                bool background_compaction) const {
    const cluster::ShardMap map(kShards);
    auto indexes = map.split_index(server_.index());
    auto file_sets = map.split_files(server_.files());
    std::vector<std::unique_ptr<cloud::CloudServer>> shards;
    for (std::uint32_t s = 0; s < kShards; ++s) {
      auto shard = std::make_unique<cloud::CloudServer>();
      shard->store(std::move(indexes[s]), std::move(file_sets[s]));
      // Tombstones broadcast to every shard, so each batch seals a
      // segment everywhere — guaranteeing compactable backlogs.
      shard->set_segment_policy(seg::SegPolicy{1});
      if (background_compaction)
        shard->enable_background_compaction(seg::CompactorOptions{2});
      shards.push_back(std::move(shard));
    }

    sim::SimOptions options;
    options.seed = GetParam() * 131 + 9;
    options.faults.delay_rate = 0.15;
    options.faults.delay_min = 1ms;
    options.faults.delay_max = 5ms;
    options.faults.disconnect_rate = 0.05;
    options.faults.error_rate = 0.05;
    sim::SimNet net(options);
    std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
    for (const auto& shard : shards) {
      auto set = std::make_unique<cluster::ReplicaSet>();
      set->add_replica(net.connect(*shard));
      set->add_replica(net.connect(*shard));
      sets.push_back(std::move(set));
    }
    cluster::ClusterManifest manifest;
    manifest.num_shards = kShards;
    manifest.replicas = 2;
    manifest.total_rows = server_.index().num_rows();
    manifest.total_files = server_.num_files();
    cluster::CoordinatorOptions coordinator_options;
    coordinator_options.retry.max_attempts = 8;
    coordinator_options.retry.base_backoff = 0ms;
    coordinator_options.retry.max_backoff = 0ms;
    coordinator_options.retry.down_cooldown = std::chrono::minutes(10);
    // Both replica endpoints front the SAME shard server here, so the
    // replicated update fan-out must send in replica order: racing
    // applies would flip which endpoint reports the idempotent replay
    // and break transcript byte-identity.
    coordinator_options.retry.ordered_fanout = true;
    cluster::ClusterCoordinator coordinator(manifest, std::move(sets),
                                            coordinator_options);
    cloud::DataUser user(credentials_, coordinator);

    UpdateRun run;
    for (std::size_t batch = 0; batch < workload.payloads.size(); ++batch) {
      const auto response = cloud::UpdateResponse::deserialize(
          coordinator.call(cloud::MessageType::kUpdate, workload.payloads[batch]));
      EXPECT_GT(response.entries_applied, 0u) << "batch " << batch;

      if (batch == 0) {
        // An owner-level retry of the whole delta (same delta_id, same
        // bytes) replays from the per-shard idempotency cache instead of
        // double-applying — even while transport faults are firing.
        const auto replay = cloud::UpdateResponse::deserialize(
            coordinator.call(cloud::MessageType::kUpdate, workload.payloads[batch]));
        EXPECT_TRUE(replay.replayed);
        EXPECT_EQ(replay.entries_applied, response.entries_applied);
        EXPECT_EQ(replay.tombstones_applied, response.tombstones_applied);
      }
      if (!background_compaction && batch == 1) {
        // Forced compaction mid-stream; merge invariance keeps every
        // subsequent answer (and response byte) identical.
        for (const auto& shard : shards) shard->compact_segments_once();
      }

      const baseline::PlaintextSearchEngine oracle(workload.live_corpora[batch]);
      for (const std::string& term : {probes_[0], probes_[1]}) {
        for (const std::size_t k : {std::size_t{4}, std::size_t{0}}) {
          const auto got = ids_of(user.ranked_search(term, k));
          check_ranked_modulo_ties(oracle, term, got, k);
          run.results.push_back(got);
        }
      }
    }
    for (const auto& shard : shards) shard->wait_for_compaction_idle();
    std::uint64_t compactions = 0;
    for (const auto& shard : shards) compactions += shard->segments().compactions();
    EXPECT_GE(compactions, 1u);
    run.transcript = net.transcript();
    return run;
  }

  static constexpr std::uint32_t kShards = 3;

  ir::Corpus corpus_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer server_;
  cloud::CloudServer basic_server_;
  std::unique_ptr<baseline::PlaintextSearchEngine> engine_;
  cloud::UserCredentials credentials_;
  std::vector<std::string> probes_;
  std::vector<std::unique_ptr<cloud::CloudServer>> shard_servers_;
};

TEST_P(DifferentialOracle, AllEnginesAgreeAndClusterReplaysByteIdentically) {
  cloud::Channel rsse_channel(server_);
  cloud::DataUser rsse_user(credentials_, rsse_channel);
  cloud::Channel basic_channel(basic_server_);
  cloud::DataUser basic_user(credentials_, basic_channel);

  // Plaintext vs RSSE (single server): equivalent modulo quantizer ties.
  for (const std::string& term : probes_)
    for (const std::size_t k : {std::size_t{0}, std::size_t{4}, std::size_t{1}})
      check_ranked_modulo_ties(term, ids_of(rsse_user.ranked_search(term, k)), k);

  // Plaintext vs Basic Scheme (both retrieval modes): exact.
  for (const std::string& term : {probes_[0], probes_[1]}) {
    for (const std::size_t k : {std::size_t{0}, std::size_t{3}}) {
      check_exact(term, basic_user.basic_search_one_round(term, k), k);
      check_exact(term, basic_user.basic_search_two_round(term, k), k);
    }
  }

  // The unknown-keyword path is empty through every engine.
  EXPECT_TRUE(engine_->search("zzzunknownkeyword", 0).empty());
  EXPECT_TRUE(rsse_user.ranked_search("zzzunknownkeyword", 4).empty());
  EXPECT_TRUE(basic_user.basic_search_two_round("zzzunknownkeyword", 4).empty());

  // Sharded cluster under faults vs the single RSSE server: the injected
  // disconnects/errors are absorbed by failover, so the cluster answers
  // must be *identical* (same OPM ciphertexts, same merge order).
  const ClusterRun first = run_cluster_workload();
  std::vector<std::vector<std::uint64_t>> direct;
  for (const std::string& term : probes_) {
    for (const std::size_t k : {std::size_t{4}, std::size_t{0}})
      direct.push_back(ids_of(rsse_user.ranked_search(term, k)));
  }
  direct.push_back(ids_of(rsse_user.ranked_search("zzzunknownkeyword", 4)));
  direct.push_back(ids_of(rsse_user.multi_search({probes_[0], probes_[1]}, false, 5)));
  direct.push_back(ids_of(rsse_user.multi_search({probes_[0], probes_[1]}, true, 0)));
  EXPECT_EQ(first.results, direct);

  // And the cluster answers are correct in their own right, not merely
  // self-consistent: spot-check them against the plaintext oracle.
  check_ranked_modulo_ties(probes_[0], first.results[0], 4);
  check_ranked_modulo_ties(probes_[0], first.results[1], 0);

  // Same seed, fresh SimNet: byte-identical transcript, same answers.
  const ClusterRun second = run_cluster_workload();
  EXPECT_EQ(second.results, first.results);
  EXPECT_EQ(second.transcript, first.transcript);
  EXPECT_FALSE(first.transcript.empty());
}

TEST_P(DifferentialOracle, UpdatesStayEquivalentUnderFaultsAndForcedCompaction) {
  const UpdateWorkload workload = make_update_workload();

  // First run: stream adds + deletes into the faulty cluster, checking
  // tie-aware top-k equivalence against the rebuilt plaintext oracle
  // after every batch, with one forced compaction mid-stream.
  const UpdateRun first = run_update_workload(workload, false);

  // Same payload bytes, fresh shard servers, fresh same-seed SimNet:
  // identical answers AND a byte-identical transcript — the determinism
  // contract extends to the mutable path.
  const UpdateRun second = run_update_workload(workload, false);
  EXPECT_EQ(second.results, first.results);
  EXPECT_EQ(second.transcript, first.transcript);
  EXPECT_FALSE(first.transcript.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialOracle,
                         ::testing::Range<std::uint64_t>(1, 65));

// A trimmed two-seed variant with REAL background compactor threads on
// every shard (named Seg* so the CI TSan job picks it up): the racy
// seal/merge/swap/search interleavings must stay correct, though
// response-embedded segment counts may vary run to run, so no transcript
// identity is asserted here.
class SegDifferentialUpdates : public DifferentialOracle {};

TEST_P(SegDifferentialUpdates, BackgroundCompactionKeepsAnswersCorrect) {
  const UpdateWorkload workload = make_update_workload();
  (void)run_update_workload(workload, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegDifferentialUpdates,
                         ::testing::Values<std::uint64_t>(3, 17));

}  // namespace
}  // namespace rsse
