// Adversary's-eye tests: transcript capture on the serving path, the
// query-recovery attack against the scheme's own leakage, the live
// attack evaluator, and the sharded-transcript equivalence claim
// (the union of what N SimNet shards observe equals what one server
// observes — the coordinator doc's leakage argument, tested).
//
// The attack assertions are the PR's security-evaluation contract:
// recovery well above chance against baseline leakage with a similar
// background corpus, monotonically non-increasing as the padding policy
// strengthens, and fully deterministic (two same-seed runs produce
// byte-identical transcripts and identical guesses).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "analysis/attack.h"
#include "analysis/attack_eval.h"
#include "analysis/transcript.h"
#include "cloud/channel.h"
#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cluster/coordinator.h"
#include "cluster/replica.h"
#include "cluster/shard_map.h"
#include "ir/corpus_gen.h"
#include "obs/metrics.h"
#include "sim/sim_net.h"
#include "sse/keys.h"
#include "store/deployment.h"
#include "util/errors.h"

namespace rsse::analysis {
namespace {

namespace fs = std::filesystem;

Bytes label_of(char c) { return Bytes{static_cast<unsigned char>(c)}; }

// ---------------------------------------------------------- TranscriptSink

TEST(TranscriptSinkTest, AssignsSequencesAndSnapshotsInOrder) {
  TranscriptSink sink;
  sink.record(label_of('a'), 4, {1, 2});
  sink.record(label_of('b'), 8, {3});
  sink.record(label_of('a'), 4, {1, 2});

  const auto records = sink.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 0u);
  EXPECT_EQ(records[1].seq, 1u);
  EXPECT_EQ(records[2].seq, 2u);
  EXPECT_EQ(records[1].row_label, label_of('b'));
  EXPECT_EQ(records[1].row_width, 8u);
  EXPECT_EQ(records[0].returned_ids, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(sink.total_recorded(), 3u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.size(), 3u);
}

TEST(TranscriptSinkTest, RingOverwritesOldestAndCountsDrops) {
  TranscriptSink sink(4);
  for (int i = 0; i < 7; ++i)
    sink.record(label_of(static_cast<char>('a' + i)), 1, {});

  EXPECT_EQ(sink.total_recorded(), 7u);
  EXPECT_EQ(sink.dropped(), 3u);
  EXPECT_EQ(sink.size(), 4u);
  const auto records = sink.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 3 + i);  // retained suffix, oldest first
    EXPECT_EQ(records[i].row_label, label_of(static_cast<char>('d' + i)));
  }
}

TEST(TranscriptSinkTest, ListenerFiresPerRecordAndClears) {
  TranscriptSink sink;
  int fired = 0;
  sink.set_listener([&] { ++fired; });
  sink.record(label_of('a'), 1, {});
  sink.record(label_of('b'), 1, {});
  EXPECT_EQ(fired, 2);
  sink.set_listener(nullptr);
  sink.record(label_of('c'), 1, {});
  EXPECT_EQ(fired, 2);
}

TEST(TranscriptSinkTest, LoadContinuesTheSequence) {
  TranscriptSink sink;
  std::vector<TranscriptRecord> prior(3);
  for (std::uint64_t i = 0; i < prior.size(); ++i) {
    prior[i].seq = 10 + i;
    prior[i].row_label = label_of('x');
  }
  sink.load(prior);
  EXPECT_EQ(sink.size(), 3u);
  sink.record(label_of('y'), 2, {7});
  const auto records = sink.snapshot();
  EXPECT_EQ(records.back().seq, 13u);  // one past the highest loaded seq
}

TEST(TranscriptSinkTest, LedgerMatchesTheRecordDerivation) {
  TranscriptSink sink;
  sink.record(label_of('a'), 6, {1, 2, 3});
  sink.record(label_of('b'), 3, {3, 4});
  sink.record(label_of('a'), 6, {1, 2, 3});

  const LeakageLedger from_sink = sink.ledger();
  const LeakageLedger from_records = ledger_from_records(sink.snapshot());
  EXPECT_EQ(from_sink.num_queries(), 3u);
  EXPECT_EQ(from_records.num_queries(), 3u);
  EXPECT_EQ(from_sink.search_pattern(), from_records.search_pattern());
  EXPECT_EQ(from_sink.cooccurrence_matrix(), from_records.cooccurrence_matrix());
  EXPECT_EQ(from_sink.query_frequency_histogram(),
            from_records.query_frequency_histogram());

  const auto profiles = from_sink.query_profiles();
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].row_width, 6u);
  EXPECT_EQ(profiles[0].query_indices, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(profiles[1].result_union, (std::vector<std::uint64_t>{3, 4}));
}

TEST(TranscriptSinkTest, SerializeRoundTripsAndRejectsMalformedInput) {
  TranscriptSink sink;
  sink.record(label_of('a'), 5, {9, 1});
  sink.record(label_of('b'), 0, {});
  const auto records = sink.snapshot();

  const Bytes wire = TranscriptSink::serialize(records);
  EXPECT_EQ(TranscriptSink::deserialize(wire), records);
  EXPECT_TRUE(TranscriptSink::deserialize(TranscriptSink::serialize({})).empty());

  Bytes bad_version = wire;
  bad_version[0] = 0x7f;
  EXPECT_THROW((void)TranscriptSink::deserialize(bad_version), ParseError);

  Bytes truncated = wire;
  truncated.pop_back();
  EXPECT_THROW((void)TranscriptSink::deserialize(truncated), ParseError);

  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW((void)TranscriptSink::deserialize(trailing), ParseError);
}

TEST(TranscriptSinkTest, StoreRoundTripsAndDetectsCorruption) {
  const fs::path dir = fs::temp_directory_path() / "rsse_test_attack_store";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "transcript.bin").string();

  TranscriptSink sink;
  sink.record(label_of('a'), 12, {4, 5, 6});
  sink.record(label_of('b'), 3, {6});
  const auto records = sink.snapshot();

  store::save_transcript(records, path);
  EXPECT_EQ(store::load_transcript(path), records);

  // Flip one payload byte: the checksummed artifact must refuse to parse.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(6);
  f.put('\x5a');
  f.close();
  EXPECT_THROW((void)store::load_transcript(path), IntegrityError);

  fs::remove_all(dir);
}

// ----------------------------------------------------- attack end to end

// Keywords planted in every generated corpus with fixed document counts,
// so the server corpus and any background corpus (different seed = a
// "statistically similar" public collection) agree on salience while
// differing document by document.
const std::vector<ir::InjectedKeyword> kPlanted = {
    {"kestrel", 88, 0.4, 30}, {"marmot", 66, 0.4, 30}, {"osprey", 48, 0.4, 30},
    {"ferret", 34, 0.4, 30},  {"heron", 24, 0.4, 30},  {"lynx", 16, 0.4, 30},
    {"stoat", 11, 0.4, 30},   {"weasel", 7, 0.4, 30},
};

ir::Corpus make_corpus(std::uint64_t seed) {
  ir::CorpusGenOptions opts;
  opts.num_documents = 120;
  opts.vocabulary_size = 160;
  opts.min_tokens = 60;
  opts.max_tokens = 240;
  opts.injected = kPlanted;
  opts.seed = seed;
  return ir::generate_corpus(opts);
}

// A deterministic owner (fixed master key + file key), so repeated runs
// produce identical trapdoor labels — the determinism claim is over the
// whole pipeline, not just the attack arithmetic.
cloud::DataOwner make_owner() {
  sse::MasterKey key;
  key.x = Bytes(32, 0x11);
  key.y = Bytes(32, 0x22);
  key.z = Bytes(32, 0x33);
  return cloud::DataOwner(std::move(key), Bytes(32, 0x44),
                          std::nullopt, {});
}

struct AttackRun {
  AttackResult result;
  double recovery = 0.0;
  Bytes transcript;  ///< canonical bytes of the captured transcript
};

class AttackRecoveryTest : public ::testing::Test {
 protected:
  // Outsources the fixed server corpus under `padding`, drives the seeded
  // query stream through a transcript-capturing server, and runs the
  // recovery attack against `background_corpus`.
  static AttackRun run_attack(sse::PaddingMode padding,
                              const ir::Corpus& background_corpus,
                              bool with_seeds) {
    const ir::Corpus corpus = make_corpus(101);
    cloud::DataOwner owner = make_owner();
    cloud::CloudServer server;
    sse::RsseScheme::BuildOptions build;
    build.padding = padding;
    owner.outsource_rsse(corpus, server, build);

    auto sink = std::make_shared<TranscriptSink>();
    server.set_transcript_sink(sink);

    const Bytes user_key(32, 0x5c);
    const cloud::UserCredentials credentials = cloud::AuthorizationService::open(
        user_key, "u", owner.enroll_user(user_key, "u"));
    cloud::Channel channel(server);
    cloud::DataUser user(credentials, channel);

    for (const std::string& keyword : query_stream()) user.ranked_search(keyword, 10);

    BackgroundKnowledge::Options bk;
    bk.top_k = 10;
    const BackgroundKnowledge background =
        BackgroundKnowledge::from_corpus(background_corpus, bk);

    std::vector<KnownQuery> known;
    if (with_seeds)
      for (std::size_t i = 0; i < 2; ++i)
        known.push_back({owner.rsse().trapdoor(kPlanted[i].word).label,
                         normalized(owner, kPlanted[i].word)});

    AttackRun run;
    run.result = run_query_recovery(sink->ledger(), background, known);
    run.recovery = recovery_rate(run.result, truth_map(owner));
    run.transcript = TranscriptSink::serialize(sink->snapshot());
    return run;
  }

  // Every planted keyword once, the three most frequent repeated so the
  // query-frequency histogram follows salience (the frequency-attack
  // assumption). Deterministic.
  static std::vector<std::string> query_stream() {
    std::vector<std::string> stream;
    for (const ir::InjectedKeyword& kw : kPlanted) stream.push_back(kw.word);
    for (int repeat = 0; repeat < 2; ++repeat)
      for (std::size_t i = 0; i < 3; ++i) stream.push_back(kPlanted[i].word);
    return stream;
  }

  static std::string normalized(const cloud::DataOwner& owner,
                                const std::string& keyword) {
    return owner.rsse().analyzer().normalize_keyword(keyword);
  }

  // Evaluation-side ground truth: row label -> normalized keyword.
  static std::map<Bytes, std::string> truth_map(const cloud::DataOwner& owner) {
    std::map<Bytes, std::string> truth;
    for (const ir::InjectedKeyword& kw : kPlanted)
      truth[owner.rsse().trapdoor(kw.word).label] = normalized(owner, kw.word);
    return truth;
  }
};

TEST_F(AttackRecoveryTest, KnownDataBackgroundRecoversAlmostEverything) {
  // Known-data attack (Damie et al.'s strong end): the adversary indexed
  // the very collection the owner outsourced — e.g. a public dataset —
  // so widths AND co-occurrence line up exactly. Chance level is
  // ~1/|candidates| (< 1%).
  const AttackRun run =
      run_attack(sse::PaddingMode::kNone, make_corpus(101), /*with_seeds=*/true);
  EXPECT_EQ(run.result.groups, kPlanted.size());
  EXPECT_EQ(run.result.queries_observed, query_stream().size());
  EXPECT_TRUE(run.result.widths_informative);
  EXPECT_GE(run.recovery, 0.8);
}

TEST_F(AttackRecoveryTest, SimilarBackgroundStillBeatsChanceWidely) {
  // Inference attack: a statistically similar corpus (same salience
  // profile, disjoint documents). Co-occurrence decays to noise; row
  // widths and query frequency still identify a sizable fraction —
  // dozens of times above the ~0.7% chance level — and never more than
  // the known-data adversary recovers.
  const AttackRun similar =
      run_attack(sse::PaddingMode::kNone, make_corpus(202), /*with_seeds=*/true);
  const AttackRun known_data =
      run_attack(sse::PaddingMode::kNone, make_corpus(101), /*with_seeds=*/true);
  EXPECT_GE(similar.recovery, 0.25);
  EXPECT_GE(known_data.recovery, similar.recovery);
}

TEST_F(AttackRecoveryTest, RecoversAboveChanceWithoutAnySeeds) {
  // No known queries at all: width + query-frequency alone must still
  // beat chance by a wide margin under no padding.
  const AttackRun run =
      run_attack(sse::PaddingMode::kNone, make_corpus(202), /*with_seeds=*/false);
  EXPECT_GE(run.recovery, 0.25);
}

TEST_F(AttackRecoveryTest, PaddingMonotonicallyWeakensTheAttack) {
  // Against the similar (not identical) background, the width channel is
  // what the padding policy modulates: exact widths leak the most, pow2
  // buckets leak less, full-nu disables the channel entirely.
  const ir::Corpus background = make_corpus(202);
  const AttackRun none =
      run_attack(sse::PaddingMode::kNone, background, /*with_seeds=*/true);
  const AttackRun pow2 =
      run_attack(sse::PaddingMode::kPowerOfTwo, background, /*with_seeds=*/true);
  const AttackRun full =
      run_attack(sse::PaddingMode::kFullNu, background, /*with_seeds=*/true);

  EXPECT_TRUE(none.result.widths_informative);
  EXPECT_TRUE(pow2.result.widths_informative);
  EXPECT_FALSE(full.result.widths_informative);  // what full padding buys

  EXPECT_GE(none.recovery, pow2.recovery);
  EXPECT_GE(pow2.recovery, full.recovery);
  EXPECT_GE(none.recovery, 0.25);
}

TEST_F(AttackRecoveryTest, DeterministicTranscriptAndGuessesAcrossRuns) {
  const ir::Corpus background = make_corpus(202);
  const AttackRun a =
      run_attack(sse::PaddingMode::kNone, background, /*with_seeds=*/true);
  const AttackRun b =
      run_attack(sse::PaddingMode::kNone, background, /*with_seeds=*/true);

  EXPECT_EQ(a.transcript, b.transcript);  // byte-identical capture
  EXPECT_EQ(a.recovery, b.recovery);
  ASSERT_EQ(a.result.guesses.size(), b.result.guesses.size());
  for (std::size_t i = 0; i < a.result.guesses.size(); ++i) {
    EXPECT_EQ(a.result.guesses[i].keyword, b.result.guesses[i].keyword);
    EXPECT_EQ(a.result.guesses[i].confidence, b.result.guesses[i].confidence);
    EXPECT_EQ(a.result.guesses[i].row_label, b.result.guesses[i].row_label);
  }
}

// ------------------------------------------------------- AttackEvaluator

TEST(AttackEvaluatorTest, EvaluatesLiveTrafficAndExportsMetrics) {
  const ir::Corpus corpus = make_corpus(101);
  cloud::DataOwner owner = make_owner();
  cloud::CloudServer server;
  sse::RsseScheme::BuildOptions build;
  build.padding = sse::PaddingMode::kNone;
  owner.outsource_rsse(corpus, server, build);
  auto sink = std::make_shared<TranscriptSink>();
  server.set_transcript_sink(sink);

  BackgroundKnowledge::Options bk;
  bk.top_k = 10;
  BackgroundKnowledge background = BackgroundKnowledge::from_corpus(make_corpus(202), bk);

  std::map<Bytes, std::string> truth;
  std::vector<KnownQuery> known;
  for (std::size_t i = 0; i < kPlanted.size(); ++i) {
    const Bytes label = owner.rsse().trapdoor(kPlanted[i].word).label;
    const std::string norm = owner.rsse().analyzer().normalize_keyword(kPlanted[i].word);
    truth[label] = norm;
    if (i < 2) known.push_back({label, norm});
  }

  obs::MetricsRegistry registry;
  AttackEvaluatorOptions options;
  options.min_new_queries = 1;
  auto evaluator = std::make_unique<AttackEvaluator>(
      *sink, std::move(background), registry, options, known, truth);
  sink->set_listener([&] { evaluator->notify(); });

  const Bytes user_key(32, 0x5c);
  const cloud::UserCredentials credentials = cloud::AuthorizationService::open(
      user_key, "u", owner.enroll_user(user_key, "u"));
  cloud::Channel channel(server);
  cloud::DataUser user(credentials, channel);
  for (const ir::InjectedKeyword& kw : kPlanted) user.ranked_search(kw.word, 10);

  evaluator->wait_for_idle();
  EXPECT_GE(evaluator->evaluations(), 1u);
  const AttackResult latest = evaluator->latest();
  EXPECT_EQ(latest.groups, kPlanted.size());
  EXPECT_EQ(latest.queries_observed, kPlanted.size());

  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("rsse_attack_queries_observed 8"), std::string::npos);
  EXPECT_NE(text.find("rsse_attack_distinct_queries 8"), std::string::npos);
  EXPECT_NE(text.find("rsse_attack_recovery_rate"), std::string::npos);
  EXPECT_NE(text.find("rsse_attack_confident_guesses"), std::string::npos);
  EXPECT_NE(text.find("rsse_attack_background_keywords"), std::string::npos);
  EXPECT_NE(text.find("rsse_attack_evaluations_total"), std::string::npos);

  sink->set_listener(nullptr);
  evaluator.reset();
}

TEST(AttackEvaluatorTest, ConcurrentQueriesWhileEvaluating) {
  // The TSan-facing test: the serving path records into the sink and
  // notifies the evaluator while the evaluator snapshots the same sink
  // from its own thread.
  const ir::Corpus corpus = make_corpus(101);
  cloud::DataOwner owner = make_owner();
  cloud::CloudServer server;
  owner.outsource_rsse(corpus, server,
                       sse::RsseScheme::BuildOptions{});
  auto sink = std::make_shared<TranscriptSink>();
  server.set_transcript_sink(sink);

  BackgroundKnowledge::Options bk;
  bk.top_k = 10;
  obs::MetricsRegistry registry;
  AttackEvaluatorOptions options;
  options.min_new_queries = 4;
  auto evaluator = std::make_unique<AttackEvaluator>(
      *sink, BackgroundKnowledge::from_corpus(make_corpus(202), bk), registry,
      options);
  sink->set_listener([&] { evaluator->notify(); });

  const Bytes user_key(32, 0x5c);
  const cloud::UserCredentials credentials = cloud::AuthorizationService::open(
      user_key, "u", owner.enroll_user(user_key, "u"));

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kQueriesPerThread = 8;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      cloud::Channel channel(server);
      cloud::DataUser user(credentials, channel);
      for (std::size_t q = 0; q < kQueriesPerThread; ++q)
        user.ranked_search(kPlanted[(t + q) % kPlanted.size()].word, 10);
    });
  }
  for (std::thread& w : workers) w.join();

  evaluator->wait_for_idle();
  EXPECT_EQ(sink->total_recorded(), kThreads * kQueriesPerThread);
  EXPECT_GE(evaluator->evaluations(), 1u);
  EXPECT_EQ(evaluator->latest().groups, kPlanted.size());

  sink->set_listener(nullptr);
  evaluator.reset();
}

// --------------------------------------------- sharded SimNet equivalence

TEST(ShardedTranscript, UnionOfShardTranscriptsEqualsSingleServerLedger) {
  const ir::Corpus corpus = make_corpus(101);
  cloud::DataOwner owner = make_owner();
  cloud::CloudServer single;
  sse::RsseScheme::BuildOptions build;
  build.padding = sse::PaddingMode::kNone;
  owner.outsource_rsse(corpus, single, build);
  auto single_sink = std::make_shared<TranscriptSink>();
  single.set_transcript_sink(single_sink);

  // A 3-shard deployment of the SAME index over SimNet endpoints, each
  // shard capturing its own transcript.
  constexpr std::uint32_t kShards = 3;
  const cluster::ShardMap map(kShards);
  auto shard_indexes = map.split_index(single.index());
  auto shard_files = map.split_files(single.files());

  sim::SimNet net;
  std::vector<std::unique_ptr<cloud::CloudServer>> servers;
  std::vector<std::shared_ptr<TranscriptSink>> shard_sinks;
  std::vector<std::unique_ptr<cluster::ReplicaSet>> replica_sets;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    auto server = std::make_unique<cloud::CloudServer>();
    server->store(std::move(shard_indexes[s]), std::move(shard_files[s]));
    auto sink = std::make_shared<TranscriptSink>();
    server->set_transcript_sink(sink);
    auto set = std::make_unique<cluster::ReplicaSet>();
    set->add_replica(net.connect(*server));
    set->set_node_name("shard" + std::to_string(s));
    servers.push_back(std::move(server));
    shard_sinks.push_back(std::move(sink));
    replica_sets.push_back(std::move(set));
  }
  cluster::ClusterManifest manifest;
  manifest.num_shards = kShards;
  manifest.replicas = 1;
  manifest.total_rows = single.index().num_rows();
  manifest.total_files = single.files().size();
  cluster::ClusterCoordinator coordinator(manifest, std::move(replica_sets));

  const Bytes user_key(32, 0x5c);
  const cloud::UserCredentials credentials = cloud::AuthorizationService::open(
      user_key, "u", owner.enroll_user(user_key, "u"));
  cloud::Channel direct(single);
  cloud::DataUser single_user(credentials, direct);
  cloud::DataUser cluster_user(credentials, coordinator);

  std::vector<std::string> stream;
  for (const ir::InjectedKeyword& kw : kPlanted) stream.push_back(kw.word);
  for (std::size_t i = 0; i < 3; ++i) stream.push_back(kPlanted[i].word);
  for (const std::string& keyword : stream) {
    (void)single_user.ranked_search(keyword, 10);
    (void)cluster_user.ranked_search(keyword, 10);
  }

  // Each shard only ever observed labels it owns (routing is single-shard
  // for ranked search), and the union of the shard views IS the single
  // server's view — same labels, same widths, same returned ids.
  using View = std::tuple<Bytes, std::uint32_t, std::vector<std::uint64_t>>;
  std::vector<View> shard_union;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (const TranscriptRecord& r : shard_sinks[s]->snapshot()) {
      EXPECT_EQ(map.shard_of_label(r.row_label), s);
      shard_union.emplace_back(r.row_label, r.row_width, r.returned_ids);
    }
  }
  std::vector<View> single_view;
  for (const TranscriptRecord& r : single_sink->snapshot())
    single_view.emplace_back(r.row_label, r.row_width, r.returned_ids);

  std::sort(shard_union.begin(), shard_union.end());
  std::sort(single_view.begin(), single_view.end());
  EXPECT_EQ(shard_union, single_view);

  // And the derived ledgers agree on every leakage statistic the attack
  // consumes. Group order depends on record order, so canonicalize both
  // sides the same way (sorted views) before deriving.
  const auto to_records = [](const std::vector<View>& views) {
    std::vector<TranscriptRecord> records;
    records.reserve(views.size());
    for (const View& v : views) {
      TranscriptRecord r;
      r.seq = records.size();
      r.row_label = std::get<0>(v);
      r.row_width = std::get<1>(v);
      r.returned_ids = std::get<2>(v);
      records.push_back(std::move(r));
    }
    return records;
  };
  const LeakageLedger union_ledger = ledger_from_records(to_records(shard_union));
  const LeakageLedger single_ledger = ledger_from_records(to_records(single_view));
  EXPECT_EQ(union_ledger.search_pattern(), single_ledger.search_pattern());
  EXPECT_EQ(union_ledger.cooccurrence_matrix(), single_ledger.cooccurrence_matrix());
  EXPECT_EQ(union_ledger.query_frequency_histogram(),
            single_ledger.query_frequency_histogram());
  EXPECT_EQ(union_ledger.file_frequencies(), single_ledger.file_frequencies());
}

}  // namespace
}  // namespace rsse::analysis
