// Multi-tenant serving: registry canonical serialization, admission
// control (token bucket + in-flight caps) under an injected clock, the
// deficit-weighted-round-robin scheduler's service order, TenantHost
// end-to-end isolation (namespaces, quotas, attribution), tenant-scoped
// credential sealing, persistence round trips, and a SimNet chaos
// scenario where one flooded tenant cannot starve its neighbors.
//
// Every suite name contains "Tenant" so CI's TSan chaos job picks the
// whole file up via its -R regex.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cloud/auth.h"
#include "cloud/channel.h"
#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cloud/protocol.h"
#include "cluster/replica.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "sim/sim_net.h"
#include "store/deployment.h"
#include "tenant/host.h"
#include "tenant/quota.h"
#include "tenant/registry.h"
#include "tenant/scheduler.h"
#include "tenant/scoped_transport.h"
#include "util/errors.h"

namespace rsse::tenant {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- registry

TenantQuota sample_quota() {
  TenantQuota quota;
  quota.rate_per_sec = 100;
  quota.burst = 10;
  quota.max_in_flight = 4;
  quota.weight = 2;
  quota.max_queued = 8;
  return quota;
}

TEST(TenantRegistry, AddListFindRemove) {
  TenantRegistry registry;
  registry.add(TenantConfig{"globex", sample_quota(), true});
  registry.add(TenantConfig{"acme", {}, false});
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.contains("acme"));
  EXPECT_FALSE(registry.contains("initech"));

  const auto configs = registry.list();  // sorted by id
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(configs[0].id, "acme");
  EXPECT_EQ(configs[1].id, "globex");
  EXPECT_FALSE(configs[0].enabled);
  EXPECT_EQ(configs[1].quota, sample_quota());

  ASSERT_NE(registry.find("globex"), nullptr);
  EXPECT_EQ(registry.find("globex")->quota.weight, 2u);
  EXPECT_EQ(registry.find("hooli"), nullptr);

  registry.remove("acme");
  EXPECT_FALSE(registry.contains("acme"));
  EXPECT_THROW(registry.remove("acme"), InvalidArgument);
}

TEST(TenantRegistry, RejectsMalformedAndDuplicateIds) {
  TenantRegistry registry;
  EXPECT_THROW(registry.add(TenantConfig{"", {}, true}), InvalidArgument);
  EXPECT_THROW(registry.add(TenantConfig{"has space", {}, true}), InvalidArgument);
  EXPECT_THROW(registry.add(TenantConfig{"dot.dot", {}, true}), InvalidArgument);
  EXPECT_THROW(registry.add(TenantConfig{std::string(65, 'a'), {}, true}),
               InvalidArgument);
  registry.add(TenantConfig{"acme", {}, true});
  EXPECT_THROW(registry.add(TenantConfig{"acme", {}, true}), InvalidArgument);
}

TEST(TenantRegistry, NormalizesZeroWeightUpToOne) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.weight = 0;
  registry.add(TenantConfig{"acme", quota, true});
  EXPECT_EQ(registry.find("acme")->quota.weight, 1u);
  registry.set_quota("acme", quota);
  EXPECT_EQ(registry.find("acme")->quota.weight, 1u);
}

TEST(TenantRegistry, SerializationIsCanonicalAndRoundTrips) {
  TenantRegistry forward;
  forward.add(TenantConfig{"acme", sample_quota(), true});
  forward.add(TenantConfig{"globex", {}, false});
  TenantRegistry reversed;
  reversed.add(TenantConfig{"globex", {}, false});
  reversed.add(TenantConfig{"acme", sample_quota(), true});

  // Same contents => byte-identical blobs regardless of insertion order.
  EXPECT_EQ(forward.serialize(), reversed.serialize());

  const TenantRegistry loaded = TenantRegistry::deserialize(forward.serialize());
  EXPECT_EQ(loaded, forward);
  EXPECT_EQ(TenantRegistry::deserialize(TenantRegistry{}.serialize()).size(), 0u);
}

TEST(TenantRegistry, DeserializeRejectsCorruption) {
  TenantRegistry registry;
  registry.add(TenantConfig{"acme", sample_quota(), true});
  const Bytes good = registry.serialize();

  // Trailing garbage.
  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(TenantRegistry::deserialize(trailing), ParseError);

  // The enable flag is strict: only 0 or 1.
  Bytes bad_flag = good;
  bad_flag.back() = 2;
  EXPECT_THROW(TenantRegistry::deserialize(bad_flag), ParseError);

  // Truncation.
  Bytes truncated = good;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(TenantRegistry::deserialize(truncated), ParseError);

  // A zero scheduling weight never round-trips (the wire is canonical).
  TenantQuota zero_weight = sample_quota();
  Bytes quota_blob = zero_weight.serialize();
  // weight is the 4th u64 field.
  for (std::size_t i = 0; i < 8; ++i) quota_blob[3 * 8 + i] = 0;
  EXPECT_THROW(TenantQuota::deserialize(quota_blob), ParseError);
}

TEST(TenantRegistry, SetQuotaAndEnabledUpdateInPlace) {
  TenantRegistry registry;
  registry.add(TenantConfig{"acme", {}, true});
  registry.set_quota("acme", sample_quota());
  EXPECT_EQ(registry.find("acme")->quota, sample_quota());
  registry.set_enabled("acme", false);
  EXPECT_FALSE(registry.find("acme")->enabled);
  EXPECT_THROW(registry.set_quota("nope", {}), InvalidArgument);
  EXPECT_THROW(registry.set_enabled("nope", true), InvalidArgument);
}

// ---------------------------------------------------------------- admission

TEST(TenantQuotaControl, TokenBucketRefillsAtConfiguredRate) {
  constexpr std::uint64_t kSecond = 1'000'000'000;
  TokenBucket bucket(2, 2, 0);  // 2 req/s, burst 2
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_FALSE(bucket.try_take(0));  // burst spent, no time passed
  // Half a second refills one token at 2/s.
  EXPECT_TRUE(bucket.try_take(kSecond / 2));
  EXPECT_FALSE(bucket.try_take(kSecond / 2));
  // Refill saturates at the burst capacity, never beyond.
  EXPECT_TRUE(bucket.try_take(100 * kSecond));
  EXPECT_TRUE(bucket.try_take(100 * kSecond));
  EXPECT_FALSE(bucket.try_take(100 * kSecond));
  // A zero rate disables the bucket entirely.
  TokenBucket unlimited(0, 0, 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.try_take(0));
}

TEST(TenantQuotaControl, AdmissionShedsOnRateAndInFlight) {
  constexpr std::uint64_t kSecond = 1'000'000'000;
  std::uint64_t now = 0;
  AdmissionController admission([&now] { return now; });

  TenantQuota quota;
  quota.rate_per_sec = 1;
  quota.burst = 2;
  quota.max_in_flight = 1;
  admission.configure("acme", quota);

  // First request admitted and holds the only in-flight slot.
  EXPECT_EQ(admission.try_admit("acme"), ShedReason::kNone);
  EXPECT_EQ(admission.in_flight("acme"), 1u);
  // Concurrency cap trips before the bucket (a shed burns no token).
  EXPECT_EQ(admission.try_admit("acme"), ShedReason::kInFlight);
  admission.release("acme");
  EXPECT_EQ(admission.in_flight("acme"), 0u);

  // Second burst token, then rate-shed until the clock advances.
  EXPECT_EQ(admission.try_admit("acme"), ShedReason::kNone);
  admission.release("acme");
  EXPECT_EQ(admission.try_admit("acme"), ShedReason::kRate);
  now += kSecond;
  EXPECT_EQ(admission.try_admit("acme"), ShedReason::kNone);
  admission.release("acme");

  // Unconfigured tenants are unlimited (the host gates unknown ids).
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(admission.try_admit("unthrottled"), ShedReason::kNone);
  }
}

TEST(TenantQuotaControl, ScopedAdmissionReleasesOnlyWhenAdmitted) {
  AdmissionController admission([] { return std::uint64_t{0}; });
  TenantQuota quota;
  quota.max_in_flight = 1;
  admission.configure("acme", quota);
  {
    const ScopedAdmission slot(admission, "acme", admission.try_admit("acme"));
    EXPECT_TRUE(slot.admitted());
    const ScopedAdmission shed(admission, "acme", admission.try_admit("acme"));
    EXPECT_EQ(shed.reason(), ShedReason::kInFlight);
    EXPECT_EQ(admission.in_flight("acme"), 1u);
  }  // the shed slot must NOT decrement on destruction
  EXPECT_EQ(admission.in_flight("acme"), 0u);
}

TEST(TenantQuotaControl, ShedReasonsRenderAsMetricLabels) {
  EXPECT_STREQ(to_string(ShedReason::kNone), "none");
  EXPECT_STREQ(to_string(ShedReason::kRate), "rate");
  EXPECT_STREQ(to_string(ShedReason::kInFlight), "in_flight");
  EXPECT_STREQ(to_string(ShedReason::kQueue), "queue");
}

// ---------------------------------------------------------------- scheduler

// A task the only worker parks on, so tests can stage deterministic
// queue contents before any dispatch decision is made.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool started = false;
  bool open = false;

  Bytes block() {
    std::unique_lock<std::mutex> lock(mutex);
    started = true;
    cv.notify_all();
    cv.wait(lock, [this] { return open; });
    return {};
  }
  void await_started() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return started; });
  }
  void release() {
    const std::lock_guard<std::mutex> lock(mutex);
    open = true;
    cv.notify_all();
  }
};

// Spawns a client thread for one task and waits until the scheduler has
// it queued, so enqueue order is exactly program order.
void enqueue_and_await(FairScheduler& scheduler, const std::string& tenant,
                       std::uint64_t weight, std::function<Bytes()> fn,
                       std::vector<std::thread>& threads) {
  const std::size_t before = scheduler.queued(tenant);
  threads.emplace_back([&scheduler, tenant, weight, fn = std::move(fn)] {
    (void)scheduler.run(tenant, weight, 0, fn);
  });
  for (int spins = 0; scheduler.queued(tenant) <= before && spins < 5000; ++spins)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GT(scheduler.queued(tenant), before);
}

TEST(TenantScheduler, RunReturnsResultsAndPropagatesExceptions) {
  FairScheduler scheduler(SchedulerOptions{2, true, 1});
  const Bytes out = scheduler.run("acme", 1, 0, [] { return to_bytes("ok"); });
  EXPECT_EQ(out, to_bytes("ok"));
  EXPECT_THROW(scheduler.run("acme", 1, 0,
                             []() -> Bytes { throw ParseError("inner"); }),
               ParseError);
  EXPECT_EQ(scheduler.queued("acme"), 0u);
}

TEST(TenantScheduler, WeightedTenantsShareInProportion) {
  // One worker, gated: stage 6 tasks for weight-2 tenant "aa" then 6 for
  // weight-1 tenant "bb". DWRR with quantum=1 must serve them AAB AAB
  // AAB BBB — "aa" gets twice the service while both queues are backlogged,
  // then "bb" drains.
  FairScheduler scheduler(SchedulerOptions{1, true, 1});
  Gate gate;
  std::thread gate_thread(
      [&] { (void)scheduler.run("zz_gate", 1, 0, [&] { return gate.block(); }); });
  gate.await_started();

  std::mutex order_mutex;
  std::string order;
  std::vector<std::thread> clients;
  const auto tag = [&](char c) {
    return [&, c]() -> Bytes {
      const std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(c);
      return {};
    };
  };
  for (int i = 0; i < 6; ++i) enqueue_and_await(scheduler, "aa", 2, tag('A'), clients);
  for (int i = 0; i < 6; ++i) enqueue_and_await(scheduler, "bb", 1, tag('B'), clients);

  gate.release();
  for (auto& t : clients) t.join();
  gate_thread.join();
  EXPECT_EQ(order, "AABAABAABBBB");
}

TEST(TenantScheduler, FifoModePreservesArrivalOrder) {
  FairScheduler scheduler(SchedulerOptions{1, false, 1});
  Gate gate;
  std::thread gate_thread(
      [&] { (void)scheduler.run("zz_gate", 1, 0, [&] { return gate.block(); }); });
  gate.await_started();

  std::mutex order_mutex;
  std::string order;
  std::vector<std::thread> clients;
  const std::string arrivals = "ABABAB";
  for (const char c : arrivals) {
    // fair=false keeps one global queue; queued() reports its depth for
    // any tenant name.
    enqueue_and_await(scheduler, std::string(1, c), 1,
                      [&, c]() -> Bytes {
                        const std::lock_guard<std::mutex> lock(order_mutex);
                        order.push_back(c);
                        return {};
                      },
                      clients);
  }
  gate.release();
  for (auto& t : clients) t.join();
  gate_thread.join();
  EXPECT_EQ(order, arrivals);
}

TEST(TenantScheduler, BoundedQueueShedsWithTypedError) {
  FairScheduler scheduler(SchedulerOptions{1, true, 1});
  Gate gate;
  std::thread gate_thread(
      [&] { (void)scheduler.run("zz_gate", 1, 0, [&] { return gate.block(); }); });
  gate.await_started();

  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i)
    enqueue_and_await(scheduler, "acme", 1, [] { return Bytes{}; }, clients);
  ASSERT_EQ(scheduler.queued("acme"), 2u);
  // The third arrival over max_queued=2 sheds immediately, in the caller.
  EXPECT_THROW(scheduler.run("acme", 1, 2, [] { return Bytes{}; }), QuotaExceeded);

  gate.release();
  for (auto& t : clients) t.join();
  gate_thread.join();
}

TEST(TenantScheduler, StopFailsPendingTasksAndRejectsNewOnes) {
  FairScheduler scheduler(SchedulerOptions{1, true, 1});
  Gate gate;
  std::thread gate_thread(
      [&] { (void)scheduler.run("zz_gate", 1, 0, [&] { return gate.block(); }); });
  gate.await_started();

  std::atomic<bool> orphan_shed{false};
  std::thread orphan([&] {
    try {
      (void)scheduler.run("acme", 1, 0, [] { return Bytes{}; });
    } catch (const QuotaExceeded&) {
      orphan_shed = true;
    }
  });
  for (int spins = 0; scheduler.queued("acme") == 0 && spins < 5000; ++spins)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(scheduler.queued("acme"), 1u);

  // stop() fails the queued orphan immediately, then joins the workers —
  // which requires the gated task to finish, so release it after.
  std::thread stopper([&] { scheduler.stop(); });
  orphan.join();
  EXPECT_TRUE(orphan_shed);
  gate.release();
  stopper.join();
  gate_thread.join();
  EXPECT_THROW(scheduler.run("acme", 1, 0, [] { return Bytes{}; }), QuotaExceeded);
}

// ---------------------------------------------------------------- host

ir::Corpus tenant_corpus(const std::string& keyword, std::uint64_t seed) {
  ir::CorpusGenOptions opts;
  opts.num_documents = 14;
  opts.vocabulary_size = 90;
  opts.min_tokens = 25;
  opts.max_tokens = 70;
  opts.injected.push_back(ir::InjectedKeyword{keyword, 8, 0.3, 30});
  opts.seed = seed;
  return ir::generate_corpus(opts);
}

// One provisioned tenant: corpus outsourced into its host namespace plus
// an authorized user's credentials.
struct ProvisionedTenant {
  ir::Corpus corpus;
  std::unique_ptr<cloud::DataOwner> owner;
  cloud::UserCredentials credentials;
};

ProvisionedTenant provision(TenantHost& host, const std::string& id,
                            const std::string& keyword, std::uint64_t seed,
                            TenantQuota quota = {}) {
  ProvisionedTenant out;
  out.corpus = tenant_corpus(keyword, seed);
  cloud::CloudServer& server = host.add_tenant(TenantConfig{id, quota, true});
  out.owner = std::make_unique<cloud::DataOwner>();
  out.owner->outsource_rsse(out.corpus, server);
  const Bytes user_key = crypto::random_bytes(32);
  const Bytes sealed = out.owner->enroll_user(user_key, "alice");
  out.credentials = cloud::AuthorizationService::open(user_key, "alice", sealed);
  return out;
}

TEST(TenantHostServing, NamespacesAreFullyIsolated) {
  TenantHost host;
  const auto acme = provision(host, "acme", "acmeonly", 11);
  const auto globex = provision(host, "globex", "globexonly", 22);

  cloud::Channel channel(host);
  ScopedTransport acme_transport(channel, "acme");
  ScopedTransport globex_transport(channel, "globex");
  cloud::DataUser acme_user(acme.credentials, acme_transport);
  cloud::DataUser globex_user(globex.credentials, globex_transport);

  // Each tenant finds its own injected keyword and decrypts its own docs.
  const auto acme_hits = acme_user.ranked_search("acmeonly", 3);
  ASSERT_EQ(acme_hits.size(), 3u);
  for (const auto& f : acme_hits)
    EXPECT_EQ(f.document.text, acme.corpus.by_id(f.document.id).text);
  const auto globex_hits = globex_user.ranked_search("globexonly", 3);
  ASSERT_EQ(globex_hits.size(), 3u);
  for (const auto& f : globex_hits)
    EXPECT_EQ(f.document.text, globex.corpus.by_id(f.document.id).text);

  // The other tenant's keyword does not exist in this namespace: zero
  // cross-tenant reads, not merely re-ranked ones.
  EXPECT_TRUE(acme_user.ranked_search("globexonly", 5).empty());
  EXPECT_TRUE(globex_user.ranked_search("acmeonly", 5).empty());

  // Attribution followed the requests to the right tenant series.
  auto& registry = host.metrics_registry();
  EXPECT_EQ(registry
                .counter("rsse_tenant_requests_total", "Requests served per tenant",
                         {{"tenant", "acme"}})
                .value(),
            2u);
  EXPECT_EQ(registry
                .counter("rsse_tenant_requests_total", "Requests served per tenant",
                         {{"tenant", "globex"}})
                .value(),
            2u);
}

TEST(TenantHostServing, BareAndUnknownRequestsAreRejected) {
  TenantHost host;
  (void)host.add_tenant(TenantConfig{"acme", {}, true});
  cloud::Channel channel(host);

  // A bare data request names no namespace: rejected before any work.
  EXPECT_THROW(
      (void)channel.call(cloud::MessageType::kFetchFiles,
                         cloud::FetchFilesRequest{}.serialize()),
      ProtocolError);

  // Unknown tenant id in the envelope.
  ScopedTransport ghost(channel, "ghost");
  EXPECT_THROW((void)ghost.call(cloud::MessageType::kFetchFiles,
                                cloud::FetchFilesRequest{}.serialize()),
               ProtocolError);

  // Disabled tenant: data survives, requests do not.
  ScopedTransport acme(channel, "acme");
  host.set_enabled("acme", false);
  EXPECT_THROW((void)acme.call(cloud::MessageType::kFetchFiles,
                               cloud::FetchFilesRequest{}.serialize()),
               ProtocolError);
  host.set_enabled("acme", true);
  EXPECT_NO_THROW((void)acme.call(cloud::MessageType::kFetchFiles,
                                  cloud::FetchFilesRequest{}.serialize()));

  // Removed tenant: the namespace is gone.
  host.remove_tenant("acme");
  EXPECT_THROW((void)acme.call(cloud::MessageType::kFetchFiles,
                               cloud::FetchFilesRequest{}.serialize()),
               ProtocolError);

  // The envelope carries exactly one layer of tenancy.
  EXPECT_THROW(ScopedTransport(channel, "not a tenant id"), InvalidArgument);
}

TEST(TenantHostServing, BareStatsIsOperatorOnly) {
  // Default host: the aggregate {tenant=...} view is never served over
  // the protocol — it would tell every tenant who else exists and how
  // much traffic they run. In-process scrapes use metrics_registry().
  TenantHost host;
  (void)provision(host, "acme", "acmeonly", 11);
  cloud::Channel channel(host);
  cloud::StatsRequest req;
  req.format = cloud::StatsFormat::kPrometheus;
  EXPECT_THROW((void)channel.call(cloud::MessageType::kStats, req.serialize()),
               ProtocolError);
}

TEST(TenantHostServing, StatsSplitOperatorAggregateVsTenantScoped) {
  TenantHostOptions options;
  options.expose_host_stats = true;  // endpoint declared operator-only
  TenantHost host(options);
  const auto acme = provision(host, "acme", "acmeonly", 11);
  (void)provision(host, "globex", "globexonly", 22);
  cloud::Channel channel(host);
  ScopedTransport transport(channel, "acme");
  cloud::DataUser user(acme.credentials, transport);
  (void)user.ranked_search("acmeonly", 2);

  cloud::StatsRequest req;
  req.format = cloud::StatsFormat::kPrometheus;

  // Operator view: the host registry, every series labelled by tenant.
  const auto host_view = cloud::StatsResponse::deserialize(
      channel.call(cloud::MessageType::kStats, req.serialize()));
  EXPECT_NE(host_view.text.find("rsse_tenant_requests_total{tenant=\"acme\"} 1"),
            std::string::npos);
  EXPECT_NE(host_view.text.find("rsse_tenant_request_seconds"), std::string::npos);

  // Tenant view: kStats rides the envelope like any data request and
  // renders ONLY that tenant's own server registry — no aggregate
  // families, no trace of the neighbor.
  const auto tenant_view = cloud::StatsResponse::deserialize(
      transport.call(cloud::MessageType::kStats, req.serialize()));
  EXPECT_NE(tenant_view.text.find("rsse_server_requests_total"), std::string::npos);
  EXPECT_EQ(tenant_view.text.find("rsse_tenant_requests_total"), std::string::npos);
  EXPECT_EQ(tenant_view.text.find("globex"), std::string::npos);
}

TEST(TenantHostServing, FrozenClockQuotaShedsTypedAndCounted) {
  TenantHostOptions options;
  options.clock = [] { return std::uint64_t{0}; };  // the bucket never refills
  TenantHost host(options);
  TenantQuota quota;
  quota.rate_per_sec = 1;
  quota.burst = 5;
  (void)host.add_tenant(TenantConfig{"acme", quota, true});

  cloud::Channel channel(host);
  ScopedTransport transport(channel, "acme");
  const Bytes ping = cloud::FetchFilesRequest{}.serialize();
  std::size_t admitted = 0;
  std::size_t shed = 0;
  for (int i = 0; i < 12; ++i) {
    try {
      (void)transport.call(cloud::MessageType::kFetchFiles, ping);
      ++admitted;
    } catch (const QuotaExceeded&) {
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 5u);  // exactly the burst
  EXPECT_EQ(shed, 7u);
  EXPECT_EQ(host.metrics_registry()
                .counter("rsse_tenant_shed_total", "Requests shed per tenant",
                         {{"tenant", "acme"}, {"reason", "rate"}})
                .value(),
            7u);
}

TEST(TenantHostServing, SlowQueriesAndTracesCarryTheTenantId) {
  TenantHostOptions options;
  options.slow_query_threshold_ms = 1e-6;  // everything is "slow"
  TenantHost host(options);
  const auto acme = provision(host, "acme", "acmeonly", 11);

  cloud::Channel channel(host);
  ScopedTransport transport(channel, "acme");
  cloud::DataUser user(acme.credentials, transport);
  (void)user.ranked_search("acmeonly", 2);

  const auto slow = host.slow_queries("acme");
  ASSERT_FALSE(slow.empty());
  EXPECT_EQ(slow.front().tenant, "acme");

  // The same attribution crosses the wire through kTrace.
  const Bytes raw = transport.call(cloud::MessageType::kTrace,
                                   cloud::TraceRequest{}.serialize());
  const auto resp = cloud::TraceResponse::deserialize(raw);
  ASSERT_FALSE(resp.entries.empty());
  for (const auto& entry : resp.entries) EXPECT_EQ(entry.tenant, "acme");
}

TEST(TenantHostServing, RefreshExportsPerTenantLeakageGauges) {
  TenantHost host;
  (void)provision(host, "acme", "acmeonly", 11);
  host.refresh_leakage_gauges();
  const std::string text = host.metrics_registry().render_prometheus();
  EXPECT_NE(text.find("{tenant=\"acme\"}"), std::string::npos);
}

// ---------------------------------------------------------------- auth

TEST(TenantAuth, ScopedCredentialsRoundTripAndFailClosed) {
  const cloud::DataOwner owner;
  const auto credentials = cloud::AuthorizationService::make_credentials(
      owner.master_key(), owner.file_master());
  const Bytes user_key = crypto::random_bytes(32);

  const Bytes sealed =
      cloud::AuthorizationService::issue(user_key, "acme", "alice", credentials);
  EXPECT_EQ(cloud::AuthorizationService::open(user_key, "acme", "alice", sealed),
            credentials);

  // The (tenant, user) binding is part of the AEAD: a bundle issued in
  // one namespace never opens in another, nor as a tenant-less bundle.
  EXPECT_THROW(
      cloud::AuthorizationService::open(user_key, "globex", "alice", sealed),
      CryptoError);
  EXPECT_THROW(cloud::AuthorizationService::open(user_key, "acme", "bob", sealed),
               CryptoError);
  EXPECT_THROW(cloud::AuthorizationService::open(user_key, "alice", sealed),
               CryptoError);

  // And a bare bundle never opens as a tenant-scoped one.
  const Bytes bare =
      cloud::AuthorizationService::issue(user_key, "alice", credentials);
  EXPECT_THROW(cloud::AuthorizationService::open(user_key, "acme", "alice", bare),
               CryptoError);

  EXPECT_THROW(cloud::AuthorizationService::issue(user_key, "bad tenant", "alice",
                                                  credentials),
               InvalidArgument);
}

// ---------------------------------------------------------------- store

class TenantStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rsse_tenant_store_" + std::to_string(::testing::UnitTest::GetInstance()
                                                       ->random_seed())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(TenantStoreTest, TenantRegistryArtifactRoundTrips) {
  EXPECT_FALSE(store::is_tenant_deployment(dir_));
  TenantRegistry registry;
  registry.add(TenantConfig{"acme", sample_quota(), true});
  registry.add(TenantConfig{"globex", {}, false});
  store::save_tenant_registry(registry, dir_);
  EXPECT_TRUE(store::is_tenant_deployment(dir_));
  EXPECT_EQ(store::load_tenant_registry(dir_), registry);

  // Registry-only rewrite (a quota change) replaces atomically.
  registry.set_quota("acme", {});
  store::save_tenant_registry(registry, dir_);
  EXPECT_EQ(store::load_tenant_registry(dir_), registry);
}

TEST_F(TenantStoreTest, CrashedRegistrySaveRecovers) {
  TenantRegistry registry;
  registry.add(TenantConfig{"acme", sample_quota(), true});
  store::save_tenant_registry(registry, dir_);

  // Crash AFTER the temp write, BEFORE the rename: the newer registry
  // sits complete (checksummed) at tenants.bin.saving. Simulate by
  // saving the newer version and demoting it back to the temp name.
  TenantRegistry newer = registry;
  newer.add(TenantConfig{"globex", {}, true});
  store::save_tenant_registry(newer, dir_);
  fs::rename(fs::path(dir_) / "tenants.bin", fs::path(dir_) / "tenants.bin.saving");
  EXPECT_TRUE(store::is_tenant_deployment(dir_));  // recovery replays the rename
  EXPECT_EQ(store::load_tenant_registry(dir_), newer);
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "tenants.bin.saving"));

  // A leftover temp NEXT TO a live registry is stale junk: removed, the
  // live artifact served.
  std::ofstream(fs::path(dir_) / "tenants.bin.saving") << "torn";
  EXPECT_EQ(store::load_tenant_registry(dir_), newer);
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "tenants.bin.saving"));

  // A torn temp with no target never resurrects: not a tenant
  // deployment, and the junk is cleaned up.
  fs::remove(fs::path(dir_) / "tenants.bin");
  std::ofstream(fs::path(dir_) / "tenants.bin.saving") << "torn";
  EXPECT_FALSE(store::is_tenant_deployment(dir_));
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "tenants.bin.saving"));
}

TEST_F(TenantStoreTest, TenantDirRejectsMalformedIds) {
  EXPECT_THROW(store::tenant_dir(dir_, "../escape"), InvalidArgument);
  EXPECT_THROW(store::tenant_dir(dir_, ""), InvalidArgument);
  EXPECT_NE(store::tenant_dir(dir_, "acme").find("tenant_acme"), std::string::npos);
}

TEST_F(TenantStoreTest, TenantDeploymentRoundTripsThroughDisk) {
  ProvisionedTenant acme;
  {
    TenantHost host;
    acme = provision(host, "acme", "acmeonly", 11, sample_quota());
    // A registered-but-empty tenant persists too (registry entry, no data).
    (void)host.add_tenant(TenantConfig{"globex", {}, true});
    store::save_tenant_deployment(host, dir_);
  }

  TenantHost restored;
  store::load_tenant_deployment(dir_, restored);
  EXPECT_EQ(restored.tenant_ids(), (std::vector<std::string>{"acme", "globex"}));
  ASSERT_NE(restored.registry().find("acme"), nullptr);
  EXPECT_EQ(restored.registry().find("acme")->quota, sample_quota());
  ASSERT_NE(restored.find_server("globex"), nullptr);
  EXPECT_EQ(restored.find_server("globex")->num_files(), 0u);

  // The restored namespace answers queries with the original documents.
  cloud::Channel channel(restored);
  ScopedTransport transport(channel, "acme");
  cloud::DataUser user(acme.credentials, transport);
  const auto hits = user.ranked_search("acmeonly", 3);
  ASSERT_EQ(hits.size(), 3u);
  for (const auto& f : hits)
    EXPECT_EQ(f.document.text, acme.corpus.by_id(f.document.id).text);
}

// ---------------------------------------------------------------- chaos

// One tenant floods far past its quota while two neighbors run their
// normal workload concurrently. The neighbors must see zero failures and
// exactly-correct results (no cross-tenant rows, no degradation); the
// flood must be shed with the typed error after exactly its burst. Run
// multi-threaded so the TSan CI variant exercises the host's locking.
TEST(TenantChaos, FloodedTenantCannotStarveOrPolluteNeighbors) {
  TenantHostOptions options;
  options.clock = [] { return std::uint64_t{0}; };  // flood bucket never refills
  options.scheduler.workers = 3;
  TenantHost host(options);

  TenantQuota flood_quota;
  flood_quota.rate_per_sec = 1;
  flood_quota.burst = 5;
  (void)host.add_tenant(TenantConfig{"flood", flood_quota, true});
  const auto alpha = provision(host, "alpha", "alphaonly", 31);
  const auto beta = provision(host, "beta", "betaonly", 32);

  sim::SimNet net(sim::SimOptions{});  // no injected faults, virtual latency
  // One endpoint per thread (an endpoint serializes like one TCP conn).
  auto flood_ep = net.connect(host);
  std::vector<std::unique_ptr<sim::SimTransport>> alpha_eps;
  std::vector<std::unique_ptr<sim::SimTransport>> beta_eps;
  for (int i = 0; i < 2; ++i) {
    alpha_eps.push_back(net.connect(host));
    beta_eps.push_back(net.connect(host));
  }

  std::atomic<std::size_t> flood_admitted{0};
  std::atomic<std::size_t> flood_shed{0};
  std::atomic<std::size_t> neighbor_failures{0};
  std::atomic<std::size_t> neighbor_ok{0};

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    ScopedTransport transport(*flood_ep, "flood");
    const Bytes ping = cloud::FetchFilesRequest{}.serialize();
    for (int i = 0; i < 40; ++i) {
      try {
        (void)transport.call(cloud::MessageType::kFetchFiles, ping);
        ++flood_admitted;
      } catch (const QuotaExceeded&) {
        ++flood_shed;
      }
    }
  });

  const auto neighbor = [&](const ProvisionedTenant& tenant, const std::string& id,
                            const std::string& keyword, const std::string& foreign,
                            cloud::Transport& endpoint) {
    try {
      ScopedTransport transport(endpoint, id);
      cloud::DataUser user(tenant.credentials, transport);
      for (int i = 0; i < 15; ++i) {
        const auto hits = user.ranked_search(keyword, 3);
        if (hits.size() != 3) throw Error("missing hits for " + id);
        for (const auto& f : hits) {
          if (f.document.text != tenant.corpus.by_id(f.document.id).text)
            throw Error("wrong document for " + id);
        }
        // The flooded (and the other) namespace stays invisible.
        if (!user.ranked_search(foreign, 3).empty())
          throw Error("cross-tenant read for " + id);
        ++neighbor_ok;
      }
    } catch (const Error&) {
      ++neighbor_failures;
    }
  };
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      neighbor(alpha, "alpha", "alphaonly", "betaonly", *alpha_eps[i]);
    });
    threads.emplace_back([&, i] {
      neighbor(beta, "beta", "betaonly", "alphaonly", *beta_eps[i]);
    });
  }
  for (auto& t : threads) t.join();

  // Flood: exactly the burst admitted, everything else shed typed.
  EXPECT_EQ(flood_admitted.load(), 5u);
  EXPECT_EQ(flood_shed.load(), 35u);
  // Neighbors: no failures, no wrong results, full completion.
  EXPECT_EQ(neighbor_failures.load(), 0u);
  EXPECT_EQ(neighbor_ok.load(), 60u);

  auto& registry = host.metrics_registry();
  EXPECT_EQ(registry
                .counter("rsse_tenant_shed_total", "Requests shed per tenant",
                         {{"tenant", "flood"}, {"reason", "rate"}})
                .value(),
            35u);
  EXPECT_EQ(registry
                .counter("rsse_tenant_requests_total", "Requests served per tenant",
                         {{"tenant", "flood"}})
                .value(),
            5u);
}

// remove_tenant must drain the victim's in-flight work WITHOUT holding
// the host's map lock: neighbors keep serving while the drain waits,
// and the drained server is destroyed quiescent (TSan-clean).
TEST(TenantChaos, RemoveTenantDrainsInFlightWithoutStallingNeighbors) {
  TenantHostOptions options;
  options.scheduler.workers = 3;
  TenantHost host(options);
  const auto acme = provision(host, "acme", "acmeonly", 41);
  const auto globex = provision(host, "globex", "globexonly", 42);

  std::atomic<bool> removed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      cloud::Channel channel(host);
      ScopedTransport transport(channel, "acme");
      cloud::DataUser user(acme.credentials, transport);
      try {
        while (!removed.load())
          if (user.ranked_search("acmeonly", 2).size() != 2)
            throw Error("missing hits mid-drain");
      } catch (const ProtocolError&) {
        // "unknown tenant": the removal landed between two searches. Any
        // search the pin admitted before removal must have completed
        // normally above — never a torn result.
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  host.remove_tenant("acme");  // blocks until all pinned requests drain
  removed.store(true);
  EXPECT_EQ(host.find_server("acme"), nullptr);

  // The neighbor serves during and after the drain on a fresh channel.
  cloud::Channel channel(host);
  ScopedTransport transport(channel, "globex");
  cloud::DataUser user(globex.credentials, transport);
  EXPECT_EQ(user.ranked_search("globexonly", 2).size(), 2u);
  for (auto& t : threads) t.join();
}

// A per-tenant quota shed must pass through the replica failover
// machinery untouched: no failed-attempt bump, no cooldown, no failover
// — every replica enforces the same quota, so "retry elsewhere" would
// only let one flooding tenant put healthy replicas into cooldown for
// everybody (the reviewed regression).
TEST(TenantClusterQuota, ShedIsNotAReplicaFailure) {
  TenantHostOptions options;
  options.clock = [] { return std::uint64_t{0}; };  // bucket never refills
  TenantHost host(options);
  TenantQuota quota;
  quota.rate_per_sec = 1;
  quota.burst = 2;
  (void)host.add_tenant(TenantConfig{"acme", quota, true});

  sim::SimNet net;
  cluster::ReplicaSet set;
  set.add_replica(net.connect(host));
  set.add_replica(net.connect(host));

  cluster::RetryPolicy policy;
  policy.base_backoff = std::chrono::milliseconds(0);
  policy.max_backoff = std::chrono::milliseconds(1);

  cloud::TenantScopedRequest env;
  env.tenant = "acme";
  env.inner_type = cloud::MessageType::kFetchFiles;
  env.inner_payload = cloud::FetchFilesRequest{}.serialize();
  const Bytes wrapped = env.serialize();

  for (int i = 0; i < 2; ++i)  // the burst is admitted normally
    (void)set.call(cloud::MessageType::kTenantScoped, wrapped, policy);
  EXPECT_THROW(set.call(cloud::MessageType::kTenantScoped, wrapped, policy),
               QuotaExceeded);
  // The shed surfaced typed on the FIRST attempt: the replica set saw a
  // healthy answer, not a failure.
  EXPECT_EQ(set.failed_attempts(), 0u);
  EXPECT_EQ(set.failovers(), 0u);
  EXPECT_EQ(set.healthy_replicas(), 2u);
}

}  // namespace
}  // namespace rsse::tenant
