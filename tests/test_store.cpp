// Persistence layer: owner-state sealing (round trip, wrong passphrase,
// tampering, magic check) and deployment save/load (search results
// identical after a restart, deletions persist).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "store/deployment.h"
#include "store/owner_state.h"
#include "util/errors.h"

namespace rsse::store {
namespace {

namespace fs = std::filesystem;

// Low iteration count: these are correctness tests, not KDF hardness.
constexpr std::uint32_t kFastIterations = 100;

OwnerState sample_state(bool with_quantizer) {
  OwnerState state;
  state.key = sse::keygen();
  state.file_master = crypto::random_bytes(32);
  if (with_quantizer) state.quantizer = opse::ScoreQuantizer(0.0, 1.5, 128);
  return state;
}

TEST(OwnerState, SerializeRoundTripWithAndWithoutQuantizer) {
  for (bool with_quantizer : {false, true}) {
    const OwnerState state = sample_state(with_quantizer);
    const OwnerState restored = OwnerState::deserialize(state.serialize());
    EXPECT_EQ(restored.key, state.key);
    EXPECT_EQ(restored.file_master, state.file_master);
    EXPECT_EQ(restored.quantizer.has_value(), with_quantizer);
    if (with_quantizer)
      EXPECT_EQ(restored.quantizer->quantize(0.7), state.quantizer->quantize(0.7));
  }
}

TEST(OwnerState, SealOpenRoundTrip) {
  const OwnerState state = sample_state(true);
  const Bytes sealed = seal_owner_state(state, "correct horse", kFastIterations);
  const OwnerState opened = open_owner_state(sealed, "correct horse");
  EXPECT_EQ(opened.key, state.key);
  EXPECT_EQ(opened.file_master, state.file_master);
}

TEST(OwnerState, WrongPassphraseFailsClosed) {
  const Bytes sealed = seal_owner_state(sample_state(false), "right", kFastIterations);
  EXPECT_THROW(open_owner_state(sealed, "wrong"), CryptoError);
}

TEST(OwnerState, TamperingIsDetected) {
  Bytes sealed = seal_owner_state(sample_state(false), "pw", kFastIterations);
  sealed[sealed.size() - 5] ^= 1;
  EXPECT_THROW(open_owner_state(sealed, "pw"), CryptoError);
}

TEST(OwnerState, RejectsNonOwnerFilesAndGarbage) {
  EXPECT_THROW(open_owner_state(to_bytes("not an owner file at all"), "pw"), ParseError);
  Bytes sealed = seal_owner_state(sample_state(false), "pw", kFastIterations);
  sealed[0] ^= 0xff;  // break the magic
  EXPECT_THROW(open_owner_state(sealed, "pw"), ParseError);
}

TEST(OwnerState, EmptyPassphraseRejected) {
  EXPECT_THROW(seal_owner_state(sample_state(false), "", kFastIterations),
               InvalidArgument);
}

TEST(OwnerState, FileRoundTrip) {
  const fs::path path = fs::temp_directory_path() / "rsse_owner_state_test.bin";
  const OwnerState state = sample_state(true);
  save_owner_state(state, path.string(), "pw", kFastIterations);
  const OwnerState loaded = load_owner_state(path.string(), "pw");
  EXPECT_EQ(loaded.key, state.key);
  fs::remove(path);
  EXPECT_THROW(load_owner_state(path.string(), "pw"), Error);
}

class DeploymentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs each TEST as its own process in
    // parallel, so a shared directory would be a cross-test race.
    dir_ = (fs::temp_directory_path() /
            (std::string("rsse_deploy_test_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);

    ir::CorpusGenOptions opts;
    opts.num_documents = 25;
    opts.vocabulary_size = 150;
    opts.min_tokens = 40;
    opts.max_tokens = 150;
    opts.injected.push_back(ir::InjectedKeyword{"network", 15, 0.3, 20});
    opts.seed = 21;
    corpus_ = ir::generate_corpus(opts);
    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus_, server_);

    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = cloud::AuthorizationService::open(
        user_key, "u", owner_->enroll_user(user_key, "u"));
  }

  void TearDown() override { fs::remove_all(dir_); }

  std::vector<std::uint64_t> search_ids(cloud::CloudServer& server) {
    cloud::Channel channel(server);
    cloud::DataUser user(credentials_, channel);
    std::vector<std::uint64_t> ids;
    for (const auto& f : user.ranked_search("network", 0))
      ids.push_back(ir::value(f.document.id));
    return ids;
  }

  std::string dir_;
  ir::Corpus corpus_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer server_;
  cloud::UserCredentials credentials_;
};

TEST_F(DeploymentTest, SearchResultsSurviveRestart) {
  const auto before = search_ids(server_);
  ASSERT_FALSE(before.empty());
  save_deployment(server_, dir_);

  cloud::CloudServer restarted;
  load_deployment(dir_, restarted);
  EXPECT_EQ(search_ids(restarted), before);
  EXPECT_EQ(restarted.num_files(), server_.num_files());
  EXPECT_EQ(restarted.index().serialize(), server_.index().serialize());
}

TEST_F(DeploymentTest, RemovalsPersistAcrossSave) {
  const ir::Document& victim = corpus_.documents()[0];
  owner_->remove_document(server_, victim);
  save_deployment(server_, dir_);

  cloud::CloudServer restarted;
  load_deployment(dir_, restarted);
  EXPECT_EQ(restarted.num_files(), corpus_.size() - 1);
  const auto ids = search_ids(restarted);
  EXPECT_FALSE(std::any_of(ids.begin(), ids.end(), [&](std::uint64_t id) {
    return id == ir::value(victim.id);
  }));
}

TEST_F(DeploymentTest, SaveReplacesPreviousDeployment) {
  save_deployment(server_, dir_);
  // Shrink and re-save: stale blobs must disappear.
  const ir::Document& victim = corpus_.documents()[1];
  owner_->remove_document(server_, victim);
  save_deployment(server_, dir_);
  cloud::CloudServer restarted;
  load_deployment(dir_, restarted);
  EXPECT_EQ(restarted.num_files(), corpus_.size() - 1);
}

TEST_F(DeploymentTest, LoadRejectsMissingOrMalformed) {
  cloud::CloudServer server;
  EXPECT_THROW(load_deployment("/nonexistent/rsse/dir", server), InvalidArgument);
  // Corrupt index file.
  save_deployment(server_, dir_);
  std::ofstream(fs::path(dir_) / "index.bin", std::ios::trunc) << "garbage";
  EXPECT_THROW(load_deployment(dir_, server), ParseError);
}

}  // namespace
}  // namespace rsse::store
