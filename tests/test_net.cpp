// TCP transport tests: frame round trips over real sockets, a live
// NetworkServer on an ephemeral loopback port, DataUser equivalence
// between the in-process Channel and the RemoteChannel, error frames for
// garbage payloads, concurrent clients, and owner updates racing live
// searches (the shared_mutex contract).
//
// The reactor engine additionally gets a connection-torture suite
// (NetTorture*: slow loris, torn frames at every split point,
// mid-request disconnects, oversized-frame rejection, a
// 1k-concurrent-connection smoke with pipelining), explicit
// backpressure tests (ReactorBackpressure*), engine wire-compat pins
// (ReactorWireCompat*: the legacy thread-per-connection engine and the
// reactor must produce byte-identical responses for the same request
// bytes) and chaos-proxy faults on the reactor path (NetTortureChaos*).
// Every networked wait is deadline-bounded so a regression hangs a
// test, not the suite.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "crypto/csprng.h"
#include "fault/chaos_proxy.h"
#include "ir/corpus_gen.h"
#include "net/frame.h"
#include "net/remote_channel.h"
#include "net/server.h"
#include "obs/trace.h"
#include "tenant/host.h"
#include "tenant/scoped_transport.h"
#include "util/errors.h"

namespace rsse::net {
namespace {

TEST(Frame, RequestRoundTripOverRealSockets) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket conn = listener.accept();
    ASSERT_TRUE(conn.valid());
    const auto request = recv_request(conn);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->type, cloud::MessageType::kRankedSearch);
    EXPECT_EQ(request->payload, to_bytes("hello"));
    send_response_ok(conn, to_bytes("world"));
    // Second exchange: error path.
    const auto second = recv_request(conn);
    ASSERT_TRUE(second.has_value());
    send_response_error(conn, "nope");
    EXPECT_FALSE(recv_request(conn).has_value());  // clean EOF
  });

  Socket client = tcp_connect(listener.port());
  send_request(client, cloud::MessageType::kRankedSearch, to_bytes("hello"));
  EXPECT_EQ(recv_response(client), to_bytes("world"));
  send_request(client, cloud::MessageType::kBasicEntries, {});
  EXPECT_THROW(recv_response(client), ProtocolError);
  client.shutdown_write();
  server.join();
}

TEST(Frame, OversizedLengthRejected) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket conn = listener.accept();
    // Hand-craft a frame claiming a 1 GiB payload.
    Bytes evil{0x01};
    append_u32(evil, 1u << 30);
    conn.send_all(evil);
    Bytes sink(1);
    (void)conn.recv_exact(std::span<std::uint8_t>(sink));  // wait for client
  });
  Socket client = tcp_connect(listener.port());
  EXPECT_THROW(recv_response(client), ProtocolError);
  client.close();
  server.join();
}

class NetworkSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 30;
    opts.vocabulary_size = 200;
    opts.min_tokens = 40;
    opts.max_tokens = 150;
    opts.injected.push_back(ir::InjectedKeyword{"network", 20, 0.3, 30});
    opts.seed = 121;
    corpus_ = ir::generate_corpus(opts);
    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus_, server_);
    net_ = std::make_unique<NetworkServer>(server_, 0);

    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = cloud::AuthorizationService::open(
        user_key, "u", owner_->enroll_user(user_key, "u"));
  }

  ir::Corpus corpus_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer server_;
  std::unique_ptr<NetworkServer> net_;
  cloud::UserCredentials credentials_;
};

TEST_F(NetworkSystemTest, RemoteSearchMatchesLocalSearch) {
  cloud::Channel local(server_);
  cloud::DataUser local_user(credentials_, local);
  RemoteChannel remote(net_->port());
  cloud::DataUser remote_user(credentials_, remote);

  const auto local_hits = local_user.ranked_search("network", 7);
  const auto remote_hits = remote_user.ranked_search("network", 7);
  ASSERT_EQ(remote_hits.size(), local_hits.size());
  for (std::size_t i = 0; i < local_hits.size(); ++i) {
    EXPECT_EQ(remote_hits[i].document.id, local_hits[i].document.id);
    EXPECT_EQ(remote_hits[i].document.text, local_hits[i].document.text);
  }
  EXPECT_EQ(net_->requests_served(), 1u);
  EXPECT_GT(remote.stats().bytes_down, 0u);
}

TEST_F(NetworkSystemTest, AllProtocolsWorkRemotely) {
  // Basic-scheme protocols need a basic index; use a second deployment.
  cloud::CloudServer basic_server;
  owner_->outsource_basic(corpus_, basic_server);
  NetworkServer basic_net(basic_server, 0);

  RemoteChannel rsse_remote(net_->port());
  cloud::DataUser u1(credentials_, rsse_remote);
  RemoteChannel basic_remote(basic_net.port());
  cloud::DataUser u2(credentials_, basic_remote);

  const auto ranked = u1.ranked_search("network", 5);
  const auto one_round = u2.basic_search_one_round("network", 5);
  const auto two_round = u2.basic_search_two_round("network", 5);
  EXPECT_EQ(ranked.size(), 5u);
  ASSERT_EQ(one_round.size(), 5u);
  ASSERT_EQ(two_round.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(one_round[i].document.id, two_round[i].document.id);
  EXPECT_EQ(basic_remote.stats().round_trips, 3u);  // 1 + 2
}

TEST_F(NetworkSystemTest, GarbagePayloadGetsErrorFrameAndConnectionSurvives) {
  RemoteChannel remote(net_->port());
  EXPECT_THROW(remote.call(cloud::MessageType::kRankedSearch, to_bytes("garbage")),
               ProtocolError);
  // The connection stays usable for a well-formed request.
  cloud::DataUser user(credentials_, remote);
  EXPECT_EQ(user.ranked_search("network", 3).size(), 3u);
}

TEST_F(NetworkSystemTest, ConcurrentClientsAllSucceed) {
  constexpr int kClients = 8;
  constexpr int kSearchesEach = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      try {
        RemoteChannel remote(net_->port());
        cloud::DataUser user(credentials_, remote);
        for (int i = 0; i < kSearchesEach; ++i) {
          if (user.ranked_search("network", 5).size() != 5) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(net_->requests_served(),
            static_cast<std::uint64_t>(kClients) * kSearchesEach);
}

TEST_F(NetworkSystemTest, OwnerUpdatesDuringLiveServing) {
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread searcher([&] {
    try {
      RemoteChannel remote(net_->port());
      cloud::DataUser user(credentials_, remote);
      while (!stop.load()) {
        const auto hits = user.ranked_search("network", 0);
        if (hits.size() < 20) ++errors;  // never fewer than the original 20
      }
    } catch (const std::exception&) {
      ++errors;
    }
  });
  for (int i = 0; i < 10; ++i) {
    ir::Document doc{ir::file_id(8000 + static_cast<std::uint64_t>(i)), "live.txt",
                     "network live update document body " + std::to_string(i)};
    owner_->add_document(server_, doc);
  }
  stop.store(true);
  searcher.join();
  EXPECT_EQ(errors.load(), 0);

  RemoteChannel remote(net_->port());
  cloud::DataUser user(credentials_, remote);
  EXPECT_EQ(user.ranked_search("network", 0).size(), 30u);  // 20 + 10
}

TEST_F(NetworkSystemTest, StopRacingLiveClientsNeverCrashesOrHangs) {
  // Clients hammer the server while stop() lands mid-flight — twice, from
  // two threads, to cover idempotence. In-flight and later requests may
  // fail (the server is going away); the process must neither crash nor
  // wedge, and work done before the stop must have succeeded.
  constexpr int kClients = 6;
  std::atomic<bool> done{false};
  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      while (!done.load()) {
        try {
          RemoteChannel remote(net_->port());
          cloud::DataUser user(credentials_, remote);
          while (!done.load()) {
            if (user.ranked_search("network", 3).size() == 3) ++successes;
          }
        } catch (const std::exception&) {
          // Expected once the server is down; loop until told to stop.
          std::this_thread::yield();
        }
      }
    });
  }
  while (successes.load() < 20) std::this_thread::yield();

  std::thread stopper([&] { net_->stop(); });
  net_->stop();
  stopper.join();
  done.store(true);
  for (auto& t : clients) t.join();

  EXPECT_GE(successes.load(), 20);
  EXPECT_THROW(RemoteChannel{net_->port()}, ProtocolError);
}

TEST_F(NetworkSystemTest, ServerStopsCleanly) {
  RemoteChannel remote(net_->port());
  cloud::DataUser user(credentials_, remote);
  EXPECT_EQ(user.ranked_search("network", 2).size(), 2u);
  net_->stop();
  // New connections fail after shutdown.
  EXPECT_THROW(RemoteChannel{net_->port()}, ProtocolError);
}

// ---------------------------------------------------------------------------
// Reactor torture / backpressure / wire-compat helpers
// ---------------------------------------------------------------------------

/// A trivial handler that echoes the request payload — fast and
/// deterministic, so torture tests exercise the transport, not ranking.
class EchoHandler final : public cloud::RequestHandler {
 public:
  Bytes handle(cloud::MessageType, BytesView payload) const override {
    return Bytes(payload.begin(), payload.end());
  }
  Bytes handle(cloud::MessageType type, BytesView payload, const obs::TraceContext& ctx,
               std::vector<obs::Span>* spans) const override {
    if (spans != nullptr) {
      obs::Span span;
      span.trace_id = ctx.trace_id;
      span.span_id = 1;
      span.parent_span_id = ctx.parent_span_id;
      span.name = "echo";
      spans->push_back(std::move(span));
    }
    return handle(type, payload);
  }
  obs::MetricsRegistry& metrics_registry() const override { return registry_; }

 private:
  mutable obs::MetricsRegistry registry_;
};

/// A handler whose every invocation parks until release(), tracking how
/// many run concurrently — the instrument for worker-saturation tests.
class BlockingHandler final : public cloud::RequestHandler {
 public:
  Bytes handle(cloud::MessageType, BytesView payload) const override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++running_;
      peak_ = std::max(peak_, running_);
      cv_.wait(lock, [this] { return released_; });
      --running_;
    }
    return Bytes(payload.begin(), payload.end());
  }
  Bytes handle(cloud::MessageType type, BytesView payload, const obs::TraceContext&,
               std::vector<obs::Span>*) const override {
    return handle(type, payload);
  }
  obs::MetricsRegistry& metrics_registry() const override { return registry_; }

  void release() {
    const std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }
  [[nodiscard]] int peak_concurrency() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }

 private:
  mutable obs::MetricsRegistry registry_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable int running_ = 0;
  mutable int peak_ = 0;
  mutable bool released_ = false;
};

/// Hand-builds one request frame: [type][LE32 len][payload].
Bytes raw_request(cloud::MessageType type, BytesView payload) {
  Bytes frame{static_cast<std::uint8_t>(type)};
  append_u32(frame, static_cast<std::uint32_t>(payload.size()));
  append(frame, payload);
  return frame;
}

struct RawResponse {
  std::uint8_t tag = 0;
  Bytes payload;
};

/// Reads one raw response frame (tag + payload), deadline-bounded.
RawResponse recv_raw_response(const Socket& socket, const Deadline& deadline) {
  std::uint8_t header[5];
  if (!socket.recv_exact(std::span<std::uint8_t>(header, 5), deadline))
    throw ProtocolError("raw response: connection closed");
  RawResponse out;
  out.tag = header[0];
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[1 + i]) << (8 * i);
  out.payload.resize(len);
  if (len > 0 && !socket.recv_exact(std::span<std::uint8_t>(out.payload), deadline))
    throw ProtocolError("raw response: truncated");
  return out;
}

/// Polls `pred` (cheap, lock-free reads) until true or the budget runs
/// out; returns the final verdict.
bool poll_until(const std::function<bool()>& pred, std::chrono::milliseconds budget) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < budget) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

Deadline io_deadline() { return Deadline::after(std::chrono::seconds(10)); }

// ---------------------------------------------------------------------------
// NetTorture: hostile and degenerate connections against the reactor
// ---------------------------------------------------------------------------

TEST(NetTorture, SlowLorisByteAtATimeStillGetsServed) {
  EchoHandler echo;
  NetworkServer server(echo, 0);

  const Bytes frame = raw_request(cloud::MessageType::kRankedSearch, to_bytes("drip"));
  Socket loris = tcp_connect(server.port());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    loris.send_all(BytesView(frame.data() + i, 1), io_deadline());
    if (i == frame.size() / 2) {
      // Mid-drip, a well-behaved client on another connection must be
      // served immediately — the loris pins no thread.
      Socket fast = tcp_connect(server.port());
      fast.send_all(raw_request(cloud::MessageType::kRankedSearch, to_bytes("fast")),
                    io_deadline());
      const RawResponse response = recv_raw_response(fast, io_deadline());
      EXPECT_EQ(response.tag, 0x00);
      EXPECT_EQ(response.payload, to_bytes("fast"));
    }
  }
  const RawResponse response = recv_raw_response(loris, io_deadline());
  EXPECT_EQ(response.tag, 0x00);
  EXPECT_EQ(response.payload, to_bytes("drip"));
}

TEST(NetTorture, TornFrameAtEverySplitPointEitherCompletesOrDropsCleanly) {
  EchoHandler echo;
  NetworkServer server(echo, 0);

  const Bytes frame = raw_request(cloud::MessageType::kRankedSearch, to_bytes("abc"));
  for (std::size_t split = 1; split < frame.size(); ++split) {
    {
      // Torn then abandoned: the server must drop the connection without
      // disturbing anything else.
      Socket torn = tcp_connect(server.port());
      torn.send_all(BytesView(frame.data(), split), io_deadline());
      torn.close();
    }
    {
      // Torn then completed: the request must still be answered.
      Socket resumed = tcp_connect(server.port());
      resumed.send_all(BytesView(frame.data(), split), io_deadline());
      std::this_thread::yield();
      resumed.send_all(BytesView(frame.data() + split, frame.size() - split),
                       io_deadline());
      const RawResponse response = recv_raw_response(resumed, io_deadline());
      EXPECT_EQ(response.tag, 0x00);
      EXPECT_EQ(response.payload, to_bytes("abc"));
    }
  }
  // The server is still healthy after the whole gauntlet.
  Socket after = tcp_connect(server.port());
  after.send_all(frame, io_deadline());
  EXPECT_EQ(recv_raw_response(after, io_deadline()).payload, to_bytes("abc"));
}

TEST(NetTorture, MidRequestDisconnectLeavesServerHealthy) {
  EchoHandler echo;
  NetworkServer server(echo, 0);

  for (int i = 0; i < 5; ++i) {
    // A header promising 100 bytes, followed by only 10 and a hangup.
    Bytes partial{static_cast<std::uint8_t>(cloud::MessageType::kRankedSearch)};
    append_u32(partial, 100);
    partial.resize(partial.size() + 10, 0x55);
    Socket quitter = tcp_connect(server.port());
    quitter.send_all(partial, io_deadline());
    quitter.close();
  }
  EXPECT_TRUE(poll_until([&] { return server.open_connections() == 0; },
                         std::chrono::seconds(10)));

  Socket fine = tcp_connect(server.port());
  fine.send_all(raw_request(cloud::MessageType::kRankedSearch, to_bytes("ok")),
                io_deadline());
  EXPECT_EQ(recv_raw_response(fine, io_deadline()).payload, to_bytes("ok"));
}

TEST(NetTorture, OversizedFrameGetsErrorFrameThenClose) {
  EchoHandler echo;
  NetworkServer server(echo, 0);

  Socket evil = tcp_connect(server.port());
  Bytes huge{static_cast<std::uint8_t>(cloud::MessageType::kRankedSearch)};
  append_u32(huge, 1u << 30);  // claims 1 GiB
  evil.send_all(huge, io_deadline());

  const RawResponse response = recv_raw_response(evil, io_deadline());
  EXPECT_EQ(response.tag, 0x01);
  EXPECT_EQ(to_string(response.payload), "frame: length exceeds cap");
  // The stream cannot be resynchronized, so the server hangs up next.
  std::uint8_t byte = 0;
  EXPECT_FALSE(evil.recv_exact(std::span<std::uint8_t>(&byte, 1), io_deadline()));

  // Through the client stack the same rejection surfaces as a typed
  // ProtocolError carrying the server's message.
  Socket evil2 = tcp_connect(server.port());
  evil2.send_all(huge, io_deadline());
  try {
    recv_response(evil2, io_deadline());
    FAIL() << "oversized frame must be rejected";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("length exceeds cap"), std::string::npos);
  }
}

TEST(NetTorture, PipelinedRequestsAnswerInOrder) {
  EchoHandler echo;
  NetworkServer server(echo, 0);

  constexpr int kRequests = 50;
  Bytes burst;
  for (int i = 0; i < kRequests; ++i) {
    const Bytes frame = raw_request(cloud::MessageType::kRankedSearch,
                                    to_bytes("req-" + std::to_string(i)));
    append(burst, frame);
  }
  Socket client = tcp_connect(server.port());
  client.send_all(burst, io_deadline());
  for (int i = 0; i < kRequests; ++i) {
    const RawResponse response = recv_raw_response(client, io_deadline());
    EXPECT_EQ(response.tag, 0x00);
    EXPECT_EQ(to_string(response.payload), "req-" + std::to_string(i));
  }
  EXPECT_EQ(server.requests_served(), static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(echo.metrics_registry()
                .counter("rsse_net_pipelined_requests_total", "")
                .value(),
            0u);
}

TEST(NetTorture, OneThousandConcurrentConnectionsSmoke) {
  // Self-raise the fd limit, then scale the connection count to what the
  // environment actually allows (client + server side of each socket).
  rlimit rl{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &rl), 0);
  if (rl.rlim_cur < 4096 && rl.rlim_max > rl.rlim_cur) {
    rl.rlim_cur = std::min<rlim_t>(rl.rlim_max, 4096);
    (void)setrlimit(RLIMIT_NOFILE, &rl);
    ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &rl), 0);
  }
  const std::size_t n =
      std::min<std::size_t>(1000, (static_cast<std::size_t>(rl.rlim_cur) - 64) / 2);
  ASSERT_GE(n, 100u) << "fd limit too low for a meaningful smoke";

  EchoHandler echo;
  ServerOptions options;
  options.reactor_threads = 2;
  options.max_in_flight = 0;  // echo is instant; no shedding in this test
  NetworkServer server(echo, 0, options);

  constexpr int kPipelined = 3;
  std::vector<Socket> clients;
  clients.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    Socket sock = tcp_connect(server.port(), io_deadline());
    Bytes burst;
    for (int i = 0; i < kPipelined; ++i)
      append(burst, raw_request(cloud::MessageType::kRankedSearch,
                                to_bytes(std::to_string(c) + ":" + std::to_string(i))));
    sock.send_all(burst, io_deadline());
    clients.push_back(std::move(sock));
  }
  for (std::size_t c = 0; c < n; ++c) {
    for (int i = 0; i < kPipelined; ++i) {
      const RawResponse response = recv_raw_response(clients[c], io_deadline());
      EXPECT_EQ(response.tag, 0x00);
      EXPECT_EQ(to_string(response.payload),
                std::to_string(c) + ":" + std::to_string(i));
    }
  }
  EXPECT_EQ(server.requests_served(), static_cast<std::uint64_t>(n) * kPipelined);
  EXPECT_EQ(server.open_connections(), n);
  EXPECT_EQ(echo.metrics_registry().counter("rsse_net_shed_total", "").value(), 0u);
  clients.clear();
  server.stop();
}

// ---------------------------------------------------------------------------
// ReactorBackpressure: the global in-flight cap sheds with a typed error
// ---------------------------------------------------------------------------

TEST(ReactorBackpressure, WorkerSaturationShedsTypedErrorBeforeDeadline) {
  BlockingHandler blocking;
  ServerOptions options;
  options.workers = 2;
  options.max_in_flight = 4;
  NetworkServer server(blocking, 0, options);
  obs::MetricsRegistry& registry = blocking.metrics_registry();

  // Fill the cap: four pipelined requests on one connection. Two park in
  // the handler, two queue in the pool — all four hold in-flight slots.
  Bytes burst;
  for (int i = 0; i < 4; ++i)
    append(burst, raw_request(cloud::MessageType::kRankedSearch,
                              to_bytes("blocked-" + std::to_string(i))));
  Socket filler = tcp_connect(server.port());
  filler.send_all(burst, io_deadline());
  ASSERT_TRUE(poll_until(
      [&] { return registry.gauge("rsse_net_in_flight", "").value() == 4; },
      std::chrono::seconds(10)));

  // The fifth request must be shed NOW — typed, well before any deadline
  // — not parked behind the stuck workers.
  Socket shed = tcp_connect(server.port());
  shed.send_all(raw_request(cloud::MessageType::kRankedSearch, to_bytes("extra")),
                io_deadline());
  const auto shed_start = std::chrono::steady_clock::now();
  EXPECT_THROW(recv_response(shed, io_deadline()), Overloaded);
  EXPECT_LT(std::chrono::steady_clock::now() - shed_start, std::chrono::seconds(5));

  EXPECT_EQ(registry.counter("rsse_net_shed_total", "").value(), 1u);
  // In-flight never exceeded the cap, and the pool never ran more than
  // its two workers.
  EXPECT_EQ(registry.gauge("rsse_net_in_flight_peak", "").value(), 4);
  EXPECT_LE(blocking.peak_concurrency(), 2);

  // Release the workers: the four admitted requests complete normally —
  // shedding rejected the overflow, not the backlog.
  blocking.release();
  for (int i = 0; i < 4; ++i) {
    const RawResponse response = recv_raw_response(filler, io_deadline());
    EXPECT_EQ(response.tag, 0x00);
    EXPECT_EQ(to_string(response.payload), "blocked-" + std::to_string(i));
  }
  EXPECT_EQ(server.requests_served(), 5u);  // sheds are answered requests
}

TEST(ReactorBackpressure, ConnectionCapRefusesWithTypedError) {
  EchoHandler echo;
  ServerOptions options;
  options.max_connections = 2;
  NetworkServer server(echo, 0, options);

  Socket first = tcp_connect(server.port());
  Socket second = tcp_connect(server.port());
  // The acceptor learns about connections asynchronously; wait until both
  // are registered before probing the cap.
  ASSERT_TRUE(poll_until([&] { return server.open_connections() == 2; },
                         std::chrono::seconds(10)));

  Socket third = tcp_connect(server.port());
  try {
    recv_response(third, io_deadline());
    FAIL() << "connection past the cap must be refused";
  } catch (const Overloaded& e) {
    EXPECT_NE(std::string(e.what()).find("connection limit"), std::string::npos);
  }
  EXPECT_EQ(echo.metrics_registry()
                .counter("rsse_net_connections_rejected_total", "")
                .value(),
            1u);

  // Admitted connections still work, and capacity frees on close.
  first.send_all(raw_request(cloud::MessageType::kRankedSearch, to_bytes("hi")),
                 io_deadline());
  EXPECT_EQ(recv_raw_response(first, io_deadline()).payload, to_bytes("hi"));
  first.close();
  ASSERT_TRUE(poll_until([&] { return server.open_connections() < 2; },
                         std::chrono::seconds(10)));
  Socket fourth = tcp_connect(server.port());
  fourth.send_all(raw_request(cloud::MessageType::kRankedSearch, to_bytes("in")),
                  io_deadline());
  EXPECT_EQ(recv_raw_response(fourth, io_deadline()).payload, to_bytes("in"));
}

// ---------------------------------------------------------------------------
// ReactorWireCompat: the two engines answer with byte-identical frames
// ---------------------------------------------------------------------------

/// A transport decorator that records every (type, request, response)
/// exchange of a live client session, so the raw bytes can be replayed
/// verbatim against other server engines.
class RecordingTransport final : public cloud::Transport {
 public:
  struct Exchange {
    cloud::MessageType type;
    Bytes request;
    Bytes response;
    bool failed = false;
  };

  explicit RecordingTransport(cloud::Transport& inner) : inner_(inner) {}

  using cloud::Transport::call;
  Bytes call(cloud::MessageType type, BytesView request,
             const Deadline& deadline) override {
    Exchange exchange{type, Bytes(request.begin(), request.end()), {}, false};
    try {
      Bytes response = inner_.call(type, request, deadline);
      exchange.response = response;
      exchanges_.push_back(std::move(exchange));
      account(request.size(), response.size());
      return response;
    } catch (...) {
      exchange.failed = true;
      exchanges_.push_back(std::move(exchange));
      throw;
    }
  }

  [[nodiscard]] const std::vector<Exchange>& exchanges() const { return exchanges_; }

 private:
  cloud::Transport& inner_;
  std::vector<Exchange> exchanges_;
};

class ReactorWireCompat : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 24;
    opts.vocabulary_size = 150;
    opts.min_tokens = 30;
    opts.max_tokens = 100;
    opts.injected.push_back(ir::InjectedKeyword{"compat", 15, 0.3, 25});
    opts.seed = 343;
    corpus_ = ir::generate_corpus(opts);
    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus_, server_);
    // Both engines front the SAME serving endpoint, so any response
    // difference is the transport's fault.
    reactor_net_ = std::make_unique<NetworkServer>(server_, 0);
    ServerOptions legacy;
    legacy.reactor = false;
    legacy_net_ = std::make_unique<NetworkServer>(server_, 0, legacy);

    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = cloud::AuthorizationService::open(
        user_key, "u", owner_->enroll_user(user_key, "u"));
  }

  /// Replays recorded request bytes raw against one port.
  static RawResponse replay(std::uint16_t port, cloud::MessageType type,
                            BytesView request) {
    Socket sock = tcp_connect(port);
    sock.send_all(raw_request(type, request), io_deadline());
    return recv_raw_response(sock, io_deadline());
  }

  ir::Corpus corpus_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer server_;
  std::unique_ptr<NetworkServer> reactor_net_;
  std::unique_ptr<NetworkServer> legacy_net_;
  cloud::UserCredentials credentials_;
};

TEST_F(ReactorWireCompat, ByteIdenticalResponsesForARecordedSession) {
  // Record a real client session against the reactor...
  RemoteChannel remote(reactor_net_->port());
  RecordingTransport recording(remote);
  cloud::DataUser user(credentials_, recording);
  EXPECT_EQ(user.ranked_search("compat", 5).size(), 5u);
  EXPECT_EQ(user.ranked_search("compat", 0).size(), 15u);
  // ...including an error-path exchange.
  EXPECT_THROW(recording.call(cloud::MessageType::kRankedSearch, to_bytes("garbage")),
               ProtocolError);
  ASSERT_GE(recording.exchanges().size(), 3u);

  // ...then replay every recorded request, byte for byte, against both
  // engines: frames must match exactly (tag AND payload), and the
  // successful ones must match what the live session saw.
  for (const auto& exchange : recording.exchanges()) {
    const RawResponse from_reactor =
        replay(reactor_net_->port(), exchange.type, exchange.request);
    const RawResponse from_legacy =
        replay(legacy_net_->port(), exchange.type, exchange.request);
    EXPECT_EQ(from_reactor.tag, from_legacy.tag);
    EXPECT_EQ(from_reactor.payload, from_legacy.payload);
    if (!exchange.failed) {
      EXPECT_EQ(from_reactor.tag, 0x00);
      EXPECT_EQ(from_reactor.payload, exchange.response);
    }
  }
}

TEST_F(ReactorWireCompat, PipelinedClientGetsSameBytesFromBothEngines) {
  // A pipelining client (several frames in one write) must work — and
  // answer identically — on both engines; the legacy engine simply reads
  // the frames one at a time from the kernel buffer.
  RemoteChannel remote(reactor_net_->port());
  RecordingTransport recording(remote);
  cloud::DataUser user(credentials_, recording);
  EXPECT_EQ(user.ranked_search("compat", 3).size(), 3u);
  const auto& exchange = recording.exchanges().front();

  for (const std::uint16_t port : {reactor_net_->port(), legacy_net_->port()}) {
    Bytes burst;
    for (int i = 0; i < 3; ++i) append(burst, raw_request(exchange.type, exchange.request));
    Socket sock = tcp_connect(port);
    sock.send_all(burst, io_deadline());
    for (int i = 0; i < 3; ++i) {
      const RawResponse response = recv_raw_response(sock, io_deadline());
      EXPECT_EQ(response.tag, 0x00);
      EXPECT_EQ(response.payload, exchange.response);
    }
  }
}

TEST_F(ReactorWireCompat, TracedFramesCarrySameSpansAndPayloadOnBothEngines) {
  // Span timings differ run to run, so traced (tag-2) frames cannot be
  // byte-identical; the pin is payload bytes + span names instead.
  RemoteChannel remote(reactor_net_->port());
  RecordingTransport recording(remote);
  cloud::DataUser user(credentials_, recording);
  EXPECT_EQ(user.ranked_search("compat", 4).size(), 4u);
  const auto& exchange = recording.exchanges().front();

  obs::TraceContext ctx;
  ctx.trace_id = 42;
  ctx.parent_span_id = 7;
  ctx.sampled = true;

  const auto traced_replay = [&](std::uint16_t port) {
    Socket sock = tcp_connect(port);
    send_request(sock, exchange.type, exchange.request, ctx, io_deadline());
    return recv_response_traced(sock, io_deadline());
  };
  const TracedResponse from_reactor = traced_replay(reactor_net_->port());
  const TracedResponse from_legacy = traced_replay(legacy_net_->port());

  EXPECT_EQ(from_reactor.payload, from_legacy.payload);
  EXPECT_EQ(from_reactor.payload, exchange.response);
  ASSERT_EQ(from_reactor.spans.size(), from_legacy.spans.size());
  ASSERT_FALSE(from_reactor.spans.empty());
  for (std::size_t i = 0; i < from_reactor.spans.size(); ++i) {
    EXPECT_EQ(from_reactor.spans[i].name, from_legacy.spans[i].name);
    EXPECT_EQ(from_reactor.spans[i].trace_id, ctx.trace_id);
  }
}

TEST_F(ReactorWireCompat, TenantScopedFramesMatchAcrossEngines) {
  tenant::TenantHost host;
  cloud::CloudServer& tenant_server = host.add_tenant(tenant::TenantConfig{"acme", {}, true});
  cloud::DataOwner acme_owner;
  acme_owner.outsource_rsse(corpus_, tenant_server);
  const Bytes user_key = crypto::random_bytes(32);
  const cloud::UserCredentials creds = cloud::AuthorizationService::open(
      user_key, "acme-u", acme_owner.enroll_user(user_key, "acme-u"));

  NetworkServer tenant_reactor(host, 0);
  ServerOptions legacy;
  legacy.reactor = false;
  NetworkServer tenant_legacy(host, 0, legacy);

  // Record a tenant-scoped session: ScopedTransport wraps every request
  // as a kTenantScoped frame, and the recorder sits under it so it sees
  // exactly the bytes that crossed the wire.
  RemoteChannel remote(tenant_reactor.port());
  RecordingTransport recording(remote);
  tenant::ScopedTransport scoped(recording, "acme");
  cloud::DataUser user(creds, scoped);
  EXPECT_EQ(user.ranked_search("compat", 5).size(), 5u);
  ASSERT_FALSE(recording.exchanges().empty());

  for (const auto& exchange : recording.exchanges()) {
    EXPECT_EQ(exchange.type, cloud::MessageType::kTenantScoped);
    const RawResponse from_reactor =
        replay(tenant_reactor.port(), exchange.type, exchange.request);
    const RawResponse from_legacy =
        replay(tenant_legacy.port(), exchange.type, exchange.request);
    EXPECT_EQ(from_reactor.tag, from_legacy.tag);
    EXPECT_EQ(from_reactor.payload, from_legacy.payload);
    EXPECT_EQ(from_reactor.payload, exchange.response);
  }
}

// ---------------------------------------------------------------------------
// NetTortureChaos: wire faults injected into the reactor path
// ---------------------------------------------------------------------------

TEST(NetTortureChaos, ProxyFaultsYieldTypedErrorsNeverHangs) {
  ir::CorpusGenOptions opts;
  opts.num_documents = 12;
  opts.vocabulary_size = 100;
  opts.min_tokens = 20;
  opts.max_tokens = 60;
  opts.injected.push_back(ir::InjectedKeyword{"chaos", 8, 0.3, 20});
  opts.seed = 77;
  const ir::Corpus corpus = ir::generate_corpus(opts);
  cloud::CloudServer server;
  cloud::DataOwner owner;
  owner.outsource_rsse(corpus, server);
  NetworkServer net(server, 0);
  const Bytes user_key = crypto::random_bytes(32);
  const cloud::UserCredentials creds = cloud::AuthorizationService::open(
      user_key, "u", owner.enroll_user(user_key, "u"));

  fault::FaultSpec spec;
  spec.delay_rate = 0.05;
  spec.disconnect_rate = 0.05;
  spec.truncate_rate = 0.03;
  spec.bit_flip_rate = 0.03;
  spec.delay_min = std::chrono::milliseconds(1);
  spec.delay_max = std::chrono::milliseconds(5);
  spec.seed = 7;
  fault::ChaosProxy proxy(net.port(), spec);

  int successes = 0;
  int typed_failures = 0;
  for (int attempt = 0; attempt < 40; ++attempt) {
    try {
      ConnectOptions connect;
      connect.timeout = std::chrono::milliseconds(2000);
      RemoteChannel remote(proxy.port(), connect);
      remote.set_call_timeout(std::chrono::milliseconds(2000));
      cloud::DataUser user(creds, remote);
      for (int i = 0; i < 3; ++i) {
        if (user.ranked_search("chaos", 4).size() == 4) ++successes;
      }
    } catch (const Error&) {
      // Every fault mode must surface as a typed rsse error (protocol,
      // parse, integrity, deadline) — never a hang, never a crash.
      ++typed_failures;
    }
  }
  EXPECT_GT(successes, 0);
  EXPECT_GT(proxy.counters().events, 0u);
  // The origin server itself stays healthy regardless of proxy carnage.
  RemoteChannel direct(net.port());
  cloud::DataUser user(creds, direct);
  EXPECT_EQ(user.ranked_search("chaos", 4).size(), 4u);
}

}  // namespace
}  // namespace rsse::net
