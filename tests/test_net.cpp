// TCP transport tests: frame round trips over real sockets, a live
// NetworkServer on an ephemeral loopback port, DataUser equivalence
// between the in-process Channel and the RemoteChannel, error frames for
// garbage payloads, concurrent clients, and owner updates racing live
// searches (the shared_mutex contract).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "net/frame.h"
#include "net/remote_channel.h"
#include "net/server.h"
#include "util/errors.h"

namespace rsse::net {
namespace {

TEST(Frame, RequestRoundTripOverRealSockets) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket conn = listener.accept();
    ASSERT_TRUE(conn.valid());
    const auto request = recv_request(conn);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->type, cloud::MessageType::kRankedSearch);
    EXPECT_EQ(request->payload, to_bytes("hello"));
    send_response_ok(conn, to_bytes("world"));
    // Second exchange: error path.
    const auto second = recv_request(conn);
    ASSERT_TRUE(second.has_value());
    send_response_error(conn, "nope");
    EXPECT_FALSE(recv_request(conn).has_value());  // clean EOF
  });

  Socket client = tcp_connect(listener.port());
  send_request(client, cloud::MessageType::kRankedSearch, to_bytes("hello"));
  EXPECT_EQ(recv_response(client), to_bytes("world"));
  send_request(client, cloud::MessageType::kBasicEntries, {});
  EXPECT_THROW(recv_response(client), ProtocolError);
  client.shutdown_write();
  server.join();
}

TEST(Frame, OversizedLengthRejected) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket conn = listener.accept();
    // Hand-craft a frame claiming a 1 GiB payload.
    Bytes evil{0x01};
    append_u32(evil, 1u << 30);
    conn.send_all(evil);
    Bytes sink(1);
    (void)conn.recv_exact(std::span<std::uint8_t>(sink));  // wait for client
  });
  Socket client = tcp_connect(listener.port());
  EXPECT_THROW(recv_response(client), ProtocolError);
  client.close();
  server.join();
}

class NetworkSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ir::CorpusGenOptions opts;
    opts.num_documents = 30;
    opts.vocabulary_size = 200;
    opts.min_tokens = 40;
    opts.max_tokens = 150;
    opts.injected.push_back(ir::InjectedKeyword{"network", 20, 0.3, 30});
    opts.seed = 121;
    corpus_ = ir::generate_corpus(opts);
    owner_ = std::make_unique<cloud::DataOwner>();
    owner_->outsource_rsse(corpus_, server_);
    net_ = std::make_unique<NetworkServer>(server_, 0);

    const Bytes user_key = crypto::random_bytes(32);
    credentials_ = cloud::AuthorizationService::open(
        user_key, "u", owner_->enroll_user(user_key, "u"));
  }

  ir::Corpus corpus_;
  std::unique_ptr<cloud::DataOwner> owner_;
  cloud::CloudServer server_;
  std::unique_ptr<NetworkServer> net_;
  cloud::UserCredentials credentials_;
};

TEST_F(NetworkSystemTest, RemoteSearchMatchesLocalSearch) {
  cloud::Channel local(server_);
  cloud::DataUser local_user(credentials_, local);
  RemoteChannel remote(net_->port());
  cloud::DataUser remote_user(credentials_, remote);

  const auto local_hits = local_user.ranked_search("network", 7);
  const auto remote_hits = remote_user.ranked_search("network", 7);
  ASSERT_EQ(remote_hits.size(), local_hits.size());
  for (std::size_t i = 0; i < local_hits.size(); ++i) {
    EXPECT_EQ(remote_hits[i].document.id, local_hits[i].document.id);
    EXPECT_EQ(remote_hits[i].document.text, local_hits[i].document.text);
  }
  EXPECT_EQ(net_->requests_served(), 1u);
  EXPECT_GT(remote.stats().bytes_down, 0u);
}

TEST_F(NetworkSystemTest, AllProtocolsWorkRemotely) {
  // Basic-scheme protocols need a basic index; use a second deployment.
  cloud::CloudServer basic_server;
  owner_->outsource_basic(corpus_, basic_server);
  NetworkServer basic_net(basic_server, 0);

  RemoteChannel rsse_remote(net_->port());
  cloud::DataUser u1(credentials_, rsse_remote);
  RemoteChannel basic_remote(basic_net.port());
  cloud::DataUser u2(credentials_, basic_remote);

  const auto ranked = u1.ranked_search("network", 5);
  const auto one_round = u2.basic_search_one_round("network", 5);
  const auto two_round = u2.basic_search_two_round("network", 5);
  EXPECT_EQ(ranked.size(), 5u);
  ASSERT_EQ(one_round.size(), 5u);
  ASSERT_EQ(two_round.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(one_round[i].document.id, two_round[i].document.id);
  EXPECT_EQ(basic_remote.stats().round_trips, 3u);  // 1 + 2
}

TEST_F(NetworkSystemTest, GarbagePayloadGetsErrorFrameAndConnectionSurvives) {
  RemoteChannel remote(net_->port());
  EXPECT_THROW(remote.call(cloud::MessageType::kRankedSearch, to_bytes("garbage")),
               ProtocolError);
  // The connection stays usable for a well-formed request.
  cloud::DataUser user(credentials_, remote);
  EXPECT_EQ(user.ranked_search("network", 3).size(), 3u);
}

TEST_F(NetworkSystemTest, ConcurrentClientsAllSucceed) {
  constexpr int kClients = 8;
  constexpr int kSearchesEach = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      try {
        RemoteChannel remote(net_->port());
        cloud::DataUser user(credentials_, remote);
        for (int i = 0; i < kSearchesEach; ++i) {
          if (user.ranked_search("network", 5).size() != 5) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(net_->requests_served(),
            static_cast<std::uint64_t>(kClients) * kSearchesEach);
}

TEST_F(NetworkSystemTest, OwnerUpdatesDuringLiveServing) {
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread searcher([&] {
    try {
      RemoteChannel remote(net_->port());
      cloud::DataUser user(credentials_, remote);
      while (!stop.load()) {
        const auto hits = user.ranked_search("network", 0);
        if (hits.size() < 20) ++errors;  // never fewer than the original 20
      }
    } catch (const std::exception&) {
      ++errors;
    }
  });
  for (int i = 0; i < 10; ++i) {
    ir::Document doc{ir::file_id(8000 + static_cast<std::uint64_t>(i)), "live.txt",
                     "network live update document body " + std::to_string(i)};
    owner_->add_document(server_, doc);
  }
  stop.store(true);
  searcher.join();
  EXPECT_EQ(errors.load(), 0);

  RemoteChannel remote(net_->port());
  cloud::DataUser user(credentials_, remote);
  EXPECT_EQ(user.ranked_search("network", 0).size(), 30u);  // 20 + 10
}

TEST_F(NetworkSystemTest, StopRacingLiveClientsNeverCrashesOrHangs) {
  // Clients hammer the server while stop() lands mid-flight — twice, from
  // two threads, to cover idempotence. In-flight and later requests may
  // fail (the server is going away); the process must neither crash nor
  // wedge, and work done before the stop must have succeeded.
  constexpr int kClients = 6;
  std::atomic<bool> done{false};
  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      while (!done.load()) {
        try {
          RemoteChannel remote(net_->port());
          cloud::DataUser user(credentials_, remote);
          while (!done.load()) {
            if (user.ranked_search("network", 3).size() == 3) ++successes;
          }
        } catch (const std::exception&) {
          // Expected once the server is down; loop until told to stop.
          std::this_thread::yield();
        }
      }
    });
  }
  while (successes.load() < 20) std::this_thread::yield();

  std::thread stopper([&] { net_->stop(); });
  net_->stop();
  stopper.join();
  done.store(true);
  for (auto& t : clients) t.join();

  EXPECT_GE(successes.load(), 20);
  EXPECT_THROW(RemoteChannel{net_->port()}, ProtocolError);
}

TEST_F(NetworkSystemTest, ServerStopsCleanly) {
  RemoteChannel remote(net_->port());
  cloud::DataUser user(credentials_, remote);
  EXPECT_EQ(user.ranked_search("network", 2).size(), 2u);
  net_->stop();
  // New connections fail after shutdown.
  EXPECT_THROW(RemoteChannel{net_->port()}, ProtocolError);
}

}  // namespace
}  // namespace rsse::net
