// Deterministic workload PRNG and the Zipf sampler.
#include <gtest/gtest.h>

#include <map>

#include "util/errors.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace rsse {
namespace {

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Xoshiro256 c(124);
  EXPECT_NE(Xoshiro256(123).next_u64(), c.next_u64());
}

TEST(Xoshiro, UniformBelowBoundsAndCoverage) {
  Xoshiro256 rng(7);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 6000; ++i) {
    const std::uint64_t v = rng.uniform_below(6);
    ASSERT_LT(v, 6u);
    ++seen[v];
  }
  EXPECT_EQ(seen.size(), 6u);  // every face appears
  for (const auto& [face, count] : seen) EXPECT_GT(count, 700);  // roughly fair
}

TEST(Xoshiro, UniformInInclusive) {
  Xoshiro256 rng(9);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_in(10, 13);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 13u);
    hit_lo |= v == 10;
    hit_hi |= v == 13;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Xoshiro, DoublesInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, BernoulliEdgeCasesAndRate) {
  Xoshiro256 rng(13);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Xoshiro, Preconditions) {
  Xoshiro256 rng(1);
  EXPECT_THROW(rng.uniform_below(0), InvalidArgument);
  EXPECT_THROW(rng.uniform_in(5, 4), InvalidArgument);
}

TEST(Zipf, PmfSumsToOneAndIsDecreasing) {
  const ZipfSampler zipf(100, 1.2);
  double total = 0;
  for (std::size_t k = 0; k < 100; ++k) {
    total += zipf.pmf(k);
    if (k > 0) EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SamplesFollowTheSkew) {
  const ZipfSampler zipf(1000, 1.0);
  Xoshiro256 rng(5);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  // Rank 0 must dominate rank 99 by roughly the 1/(k+1) law.
  EXPECT_GT(counts[0], counts[99] * 10);
  // Expected share of rank 0 is pmf(0); allow generous slack.
  EXPECT_NEAR(counts[0] / 20000.0, zipf.pmf(0), 0.02);
}

TEST(Zipf, ExponentZeroIsUniform) {
  const ZipfSampler zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-12);
}

TEST(Zipf, Preconditions) {
  EXPECT_THROW(ZipfSampler(0, 1.0), InvalidArgument);
  EXPECT_THROW(ZipfSampler(10, -0.5), InvalidArgument);
  const ZipfSampler zipf(10, 1.0);
  EXPECT_THROW(zipf.pmf(10), InvalidArgument);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
  EXPECT_EQ(splitmix64(state2), second);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace rsse
