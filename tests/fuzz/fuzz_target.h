// Shared entry-point declaration for the fuzz targets.
//
// Each fuzz_*.cpp defines LLVMFuzzerTestOneInput and builds two ways:
//   * with -DRSSE_FUZZ=ON (clang): linked against libFuzzer for
//     coverage-guided fuzzing under ASan/UBSan;
//   * always: linked with replay_main.cpp into a plain binary that
//     replays the checked-in corpus as a ctest regression (no clang, no
//     sanitizer runtime needed).
//
// Contract for targets: arbitrary input bytes must produce either a
// normal return or a typed rsse::Error — any other escape, crash, or
// property violation (std::abort) is a bug.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);
