// Structure-aware fuzz target for the dynamic-index surface (src/seg):
// kUpdate frame parsing (UpdateRequest/UpdateResponse) and the segment
// persistence formats (Segment, SegmentManifest, UpdateDelta).
//
// Input layout: data[0] selects the parser, the rest is the blob. The
// contract matches fuzz_protocol: malformed input must raise a typed
// rsse::Error and nothing else; accepted input must be a serialize()
// fixed point (canonical wire form) — the validators these parsers run
// (op < op_count, strictly ascending segment rows/tombstones, non-empty
// labels and ciphertexts, manifest version pinning) are exactly what the
// server trusts before applying owner deltas.
#include <cstdio>
#include <cstdlib>

#include "cloud/protocol.h"
#include "fuzz_target.h"
#include "seg/delta.h"
#include "seg/segment.h"
#include "util/errors.h"

namespace {

using rsse::Bytes;
using rsse::BytesView;

template <typename Message>
void round_trip(BytesView blob) {
  Message message;
  try {
    message = Message::deserialize(blob);
  } catch (const rsse::Error&) {
    return;  // typed rejection is the contract for malformed input
  }
  const Bytes wire = message.serialize();
  const Bytes again = Message::deserialize(wire).serialize();
  if (wire != again) {
    std::fprintf(stderr, "fuzz_seg: serialize not canonical\n");
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const BytesView blob(data + 1, size - 1);
  switch (data[0] % 5) {
    case 0: round_trip<rsse::cloud::UpdateRequest>(blob); break;
    case 1: round_trip<rsse::cloud::UpdateResponse>(blob); break;
    case 2: round_trip<rsse::seg::UpdateDelta>(blob); break;
    case 3: round_trip<rsse::seg::Segment>(blob); break;
    default: round_trip<rsse::seg::SegmentManifest>(blob); break;
  }
  return 0;
}
