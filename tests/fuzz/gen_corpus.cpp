// Seed-corpus generator: writes minimized, structure-valid inputs for
// every fuzz target under <out>/{protocol,entry_codec,store,opm}/.
//
// The checked-in corpora are produced by this tool (plus regression
// inputs pinned by hand when a fuzz run surfaces a bug) so they can be
// regenerated after a wire-format change:
//
//   build/tests/fuzz/gen_corpus tests/fuzz/corpora
//
// Generation is deterministic except for entry-codec ciphertexts (fresh
// AES IVs); regenerating rewrites those bytes but keeps them valid.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cloud/protocol.h"
#include "ext/conjunctive.h"
#include "obs/trace.h"
#include "opse/quantizer.h"
#include "seg/delta.h"
#include "seg/segment.h"
#include "sse/entry_codec.h"
#include "sse/types.h"
#include "store/deployment.h"
#include "util/bytes.h"

namespace fs = std::filesystem;

namespace {

using namespace rsse;

void write(const fs::path& dir, const std::string& name, BytesView bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

Bytes patterned(std::size_t n, std::uint8_t start) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::uint8_t>(start + i * 7);
  return out;
}

sse::Trapdoor trapdoor() { return {patterned(16, 3), patterned(32, 11)}; }

// Selector-prefixed protocol input (see fuzz_protocol.cpp).
Bytes sel(std::uint8_t selector, BytesView blob) {
  Bytes out{selector};
  out.insert(out.end(), blob.begin(), blob.end());
  return out;
}

void protocol_corpus(const fs::path& dir) {
  write(dir, "ranked_request",
        sel(0, cloud::RankedSearchRequest{trapdoor(), 10}.serialize()));

  cloud::RankedSearchResponse ranked;
  ranked.partial = true;
  ranked.files.push_back({ir::file_id(7), 1234, patterned(24, 1)});
  ranked.files.push_back({ir::file_id(8), 1235, {}});
  write(dir, "ranked_response", sel(1, ranked.serialize()));

  write(dir, "entries_request",
        sel(2, cloud::BasicEntriesRequest{trapdoor()}.serialize()));

  cloud::BasicEntriesResponse entries;
  entries.entries.push_back({ir::file_id(3), patterned(8, 40)});
  write(dir, "entries_response", sel(3, entries.serialize()));

  write(dir, "fetch_request",
        sel(4, cloud::FetchFilesRequest{{ir::file_id(1), ir::file_id(2)}}.serialize()));

  cloud::FetchFilesResponse fetched;
  fetched.files.push_back({ir::file_id(1), 0, patterned(16, 90)});
  write(dir, "fetch_response", sel(5, fetched.serialize()));

  cloud::MultiSearchRequest multi;
  multi.trapdoor.trapdoors = {trapdoor(), {patterned(16, 77), patterned(32, 78)}};
  multi.mode = cloud::MultiSearchMode::kDisjunctive;
  multi.top_k = 5;
  write(dir, "multi_request", sel(6, multi.serialize()));

  cloud::BasicFilesResponse basic;
  basic.files.push_back({ir::file_id(4), patterned(8, 5), patterned(12, 6)});
  write(dir, "basic_files_response", sel(7, basic.serialize()));

  write(dir, "snapshot_request", sel(8, cloud::SnapshotRequest{}.serialize()));

  cloud::SnapshotResponse snapshot;
  snapshot.index = patterned(40, 9);
  snapshot.files.emplace_back(12, patterned(20, 13));
  seg::Segment overlay_segment;
  overlay_segment.add_entries(patterned(16, 21), {seg::SeqEntry{patterned(40, 22), 1}});
  overlay_segment.add_tombstone(5, 2);
  snapshot.segments.push_back(overlay_segment.serialize());
  snapshot.next_seq = 3;
  write(dir, "snapshot_response", sel(9, snapshot.serialize()));

  // Regression: a snapshot claiming overlay sequence 0 (the base epoch)
  // must be a typed ParseError, not a restorable state.
  cloud::SnapshotResponse zero_seq = snapshot;
  zero_seq.next_seq = 0;
  write(dir, "snapshot_response_zero_seq", sel(9, zero_seq.serialize()));

  write(dir, "stats_request", sel(10, cloud::StatsRequest{}.serialize()));
  write(dir, "stats_response",
        sel(11, cloud::StatsResponse{"{\"metrics\":[]}"}.serialize()));
  write(dir, "trace_request", sel(12, cloud::TraceRequest{64}.serialize()));

  cloud::TraceResponse trace;
  obs::Span span;
  span.trace_id = 1;
  span.span_id = 2;
  span.name = "coordinator.ranked_search";
  span.node = "shard0/replica1";
  span.start_ns = 100;
  span.end_ns = 900;
  span.events.push_back({150, "fanout", "3 shards"});
  trace.entries.push_back({"ranked_search", "acme", 0.25, {span}});
  write(dir, "trace_response", sel(13, trace.serialize()));

  // Regression: a wire latency of 2^64-1 micros round-trips through a
  // double; the serializer must clamp instead of hitting the UB cast.
  Bytes huge_latency;
  append_u64(huge_latency, 1);                 // one entry
  append_lp(huge_latency, to_bytes("boom"));   // operation
  append_lp(huge_latency, to_bytes(""));       // tenant (untagged)
  append_u64(huge_latency, ~0ull);             // micros = 2^64 - 1
  append_lp(huge_latency, obs::serialize_spans({}));
  write(dir, "trace_response_huge_latency", sel(13, huge_latency));

  // Regression: trailing garbage inside the span block must be a typed
  // ParseError, not silently dropped bytes.
  Bytes lax_spans;
  append_u64(lax_spans, 1);
  append_lp(lax_spans, to_bytes("lax"));
  append_lp(lax_spans, to_bytes(""));
  append_u64(lax_spans, 1000);
  Bytes span_blob = obs::serialize_spans({});
  span_blob.push_back(0xEE);
  append_lp(lax_spans, span_blob);
  write(dir, "trace_response_trailing_span_bytes", sel(13, lax_spans));

  write(dir, "trapdoor", sel(14, trapdoor().serialize()));
  ext::ConjunctiveTrapdoor conjunctive;
  conjunctive.trapdoors = {trapdoor()};
  write(dir, "conjunctive_trapdoor", sel(15, conjunctive.serialize()));

  cloud::TenantScopedRequest scoped;
  scoped.tenant = "acme-corp_01";
  scoped.inner_type = cloud::MessageType::kRankedSearch;
  scoped.inner_payload = cloud::RankedSearchRequest{trapdoor(), 10}.serialize();
  write(dir, "tenant_scoped_request", sel(16, scoped.serialize()));

  // Regression: a nested envelope (kTenantScoped inside kTenantScoped)
  // must be a typed ParseError — tenancy is exactly one layer deep.
  Bytes nested;
  append_lp(nested, to_bytes("acme"));
  nested.push_back(static_cast<std::uint8_t>(cloud::MessageType::kTenantScoped));
  append_lp(nested, scoped.serialize());
  write(dir, "tenant_scoped_nested", sel(16, nested));

  // Regression: a malformed tenant id is rejected at the envelope, before
  // the inner payload is parsed.
  Bytes bad_id;
  append_lp(bad_id, to_bytes("bad tenant!"));
  bad_id.push_back(static_cast<std::uint8_t>(cloud::MessageType::kRankedSearch));
  append_lp(bad_id, scoped.inner_payload);
  write(dir, "tenant_scoped_bad_id", sel(16, bad_id));

  write(dir, "empty_blob", sel(0, Bytes{}));
}

void entry_codec_corpus(const fs::path& dir) {
  for (const std::size_t width : {std::size_t{0}, std::size_t{8}, std::size_t{32}}) {
    const Bytes key = patterned(32, static_cast<std::uint8_t>(width + 1));
    const Bytes plaintext =
        sse::encode_entry_plaintext(ir::file_id(42 + width), patterned(width, 60));
    const Bytes ciphertext = sse::encrypt_entry(key, plaintext);
    Bytes input{static_cast<std::uint8_t>(width)};
    input.insert(input.end(), key.begin(), key.end());
    input.insert(input.end(), ciphertext.begin(), ciphertext.end());
    write(dir, "valid_width_" + std::to_string(width), input);
  }
  // Padding: right-sized random bytes that must decode to nullopt.
  Bytes padding{8};
  const Bytes key = patterned(32, 9);
  padding.insert(padding.end(), key.begin(), key.end());
  const Bytes pad = sse::random_padding_entry(8);
  padding.insert(padding.end(), pad.begin(), pad.end());
  write(dir, "padding_width_8", padding);
  // Wrong-length ciphertext: must throw ParseError.
  write(dir, "short_ciphertext", patterned(40, 17));
}

void store_corpus(const fs::path& dir) {
  write(dir, "empty_payload", store::encode_artifact(Bytes{}));
  write(dir, "small_payload", store::encode_artifact(patterned(64, 2)));
  // A framed artifact as payload: footer validation must bind to the
  // outer frame, not the embedded one.
  write(dir, "nested_artifact",
        store::encode_artifact(store::encode_artifact(patterned(16, 5))));

  Bytes bad_magic = store::encode_artifact(patterned(32, 8));
  bad_magic.back() ^= 0xFF;
  write(dir, "bad_magic", bad_magic);

  Bytes bad_checksum = store::encode_artifact(patterned(32, 8));
  bad_checksum[0] ^= 0x01;
  write(dir, "bad_checksum", bad_checksum);

  Bytes bad_length = store::encode_artifact(patterned(32, 8));
  bad_length[bad_length.size() - 9] ^= 0x01;  // low byte of the u64 length
  write(dir, "bad_length", bad_length);

  write(dir, "too_short_for_footer", patterned(20, 30));
}

void opm_corpus(const fs::path& dir) {
  write(dir, "quantizer_128",
        opse::ScoreQuantizer(0.0, 1.0, 128).serialize());
  write(dir, "quantizer_tight",
        opse::ScoreQuantizer(-3.5, -3.25, 2).serialize());

  // Regression: non-finite bounds must be a ParseError, not a quantizer
  // that divides by NaN.
  Bytes nan_bounds;
  append_u64(nan_bounds, 0x7FF8000000000000ull);  // NaN
  append_u64(nan_bounds, 0x7FF0000000000000ull);  // +inf
  append_u64(nan_bounds, 128);
  write(dir, "quantizer_non_finite", nan_bounds);

  // 41+ bytes: exercises the OPM bucket round trip too.
  Bytes descent = patterned(48, 21);
  write(dir, "opm_descent", descent);
}

// Selector-prefixed dynamic-index inputs (see fuzz_seg.cpp).
void seg_corpus(const fs::path& dir) {
  seg::UpdateDelta delta;
  delta.op_count = 3;
  delta.rows.push_back(seg::RowDelta{
      patterned(16, 4),
      {seg::DeltaEntry{patterned(40, 8), 0}, seg::DeltaEntry{patterned(40, 9), 1}}});
  delta.rows.push_back(
      seg::RowDelta{patterned(16, 90), {seg::DeltaEntry{patterned(40, 10), 1}}});
  delta.tombstones.push_back(seg::Tombstone{42, 2});
  delta.file_puts.push_back(seg::FilePut{7, 0, patterned(24, 33)});
  write(dir, "update_delta", sel(2, delta.serialize()));

  cloud::UpdateRequest request;
  request.delta_id = 9;
  request.delta = delta;
  write(dir, "update_request", sel(0, request.serialize()));

  cloud::UpdateResponse response;
  response.entries_applied = 3;
  response.tombstones_applied = 1;
  response.files_stored = 1;
  response.files_erased = 1;
  response.sealed_segments = 2;
  response.next_seq = 4;
  response.replayed = true;
  write(dir, "update_response", sel(1, response.serialize()));

  seg::Segment segment;
  segment.add_entries(patterned(16, 4), {seg::SeqEntry{patterned(40, 8), 5}});
  segment.add_entries(patterned(16, 90), {seg::SeqEntry{patterned(40, 10), 6},
                                          seg::SeqEntry{patterned(40, 11), 7}});
  segment.add_tombstone(3, 9);
  segment.add_tombstone(11, 2);
  write(dir, "segment", sel(3, segment.serialize()));

  seg::SegmentManifest manifest;
  manifest.next_seq = 8;
  manifest.num_segments = 2;
  write(dir, "manifest", sel(4, manifest.serialize()));

  // Regression: an op index >= op_count must be a typed ParseError — the
  // server would otherwise assign it a sequence outside the delta's range.
  seg::UpdateDelta bad_op = delta;
  bad_op.tombstones[0].op = bad_op.op_count;
  write(dir, "update_delta_op_out_of_range", sel(2, bad_op.serialize()));

  // Regression: rows out of canonical (ascending-label) order must be
  // rejected, so serialize stays a fixed point.
  seg::Segment only_b;
  only_b.add_entries(patterned(16, 90), {seg::SeqEntry{patterned(40, 10), 6}});
  seg::Segment only_a;
  only_a.add_entries(patterned(16, 4), {seg::SeqEntry{patterned(40, 8), 5}});
  const Bytes b_blob = only_b.serialize();
  const Bytes a_blob = only_a.serialize();
  Bytes reversed;
  append_u64(reversed, 2);
  reversed.insert(reversed.end(), b_blob.begin() + 8, b_blob.end() - 8);
  reversed.insert(reversed.end(), a_blob.begin() + 8, a_blob.end() - 8);
  append_u64(reversed, 0);
  write(dir, "segment_rows_out_of_order", sel(3, reversed));

  write(dir, "manifest_zero_seq", sel(4, Bytes(24, 0)));
  write(dir, "empty_blob", sel(0, Bytes{}));
}

// Selector-prefixed durability inputs (see fuzz_wal.cpp).
void wal_corpus(const fs::path& dir) {
  seg::UpdateDelta delta;
  delta.op_count = 2;
  delta.rows.push_back(seg::RowDelta{
      patterned(16, 4),
      {seg::DeltaEntry{patterned(40, 8), 0}, seg::DeltaEntry{patterned(40, 9), 1}}});
  delta.tombstones.push_back(seg::Tombstone{42, 1});

  seg::WalRecord first;
  first.delta_id = 5;
  first.first_seq = 3;
  first.delta = delta.serialize();
  write(dir, "record", sel(0, first.serialize()));

  // Regression: sequence 0 is the base epoch; a record claiming it must
  // be a typed ParseError, not a replayable delta.
  seg::WalRecord zero_seq = first;
  zero_seq.first_seq = 0;
  write(dir, "record_zero_seq", sel(0, zero_seq.serialize()));

  write(dir, "backfill_request",
        sel(1, cloud::DeltaBackfillRequest{7, 128}.serialize()));
  // The probe form: from_seq = ~0 asks only for the responder's cursor.
  write(dir, "backfill_probe",
        sel(1, cloud::DeltaBackfillRequest{~0ull, 0}.serialize()));

  seg::WalRecord second;
  second.delta_id = 6;
  second.first_seq = 5;
  second.delta = delta.serialize();
  cloud::DeltaBackfillResponse response;
  response.truncated = false;
  response.next_seq = 7;
  response.records = {first.serialize(), second.serialize()};
  write(dir, "backfill_response", sel(2, response.serialize()));

  cloud::DeltaBackfillResponse truncated;
  truncated.truncated = true;
  truncated.next_seq = 7;
  write(dir, "backfill_response_truncated", sel(2, truncated.serialize()));

  // Log images for the scan selector: clean, torn mid-frame, corrupt
  // interior checksum.
  Bytes image = seg::encode_wal_frame(first);
  const Bytes frame2 = seg::encode_wal_frame(second);
  image.insert(image.end(), frame2.begin(), frame2.end());
  write(dir, "log_clean", sel(3, image));

  Bytes torn = image;
  torn.resize(image.size() - 11);
  write(dir, "log_torn_tail", sel(3, torn));

  Bytes corrupt = image;
  corrupt[12] ^= 0x20;
  write(dir, "log_corrupt_first_frame", sel(3, corrupt));

  write(dir, "empty_blob", sel(3, Bytes{}));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpora_root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  protocol_corpus(root / "protocol");
  entry_codec_corpus(root / "entry_codec");
  store_corpus(root / "store");
  opm_corpus(root / "opm");
  seg_corpus(root / "seg");
  wal_corpus(root / "wal");
  std::printf("gen_corpus: corpora written under %s\n", root.string().c_str());
  return 0;
}
