// Fuzz target for the checksummed artifact framing (store/deployment).
//
// Two obligations:
//   * decode_artifact on arbitrary bytes either returns a payload or
//     throws IntegrityError — the footer validation must never crash,
//     over-read or mis-slice;
//   * encode_artifact(x) must always decode back to x, for any payload
//     including ones that themselves look like framed artifacts (the
//     nested-footer case a naive magic scan would get wrong).
#include <cstdio>
#include <cstdlib>

#include "fuzz_target.h"
#include "store/deployment.h"
#include "util/errors.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const rsse::BytesView raw(data, size);

  try {
    const rsse::Bytes payload = rsse::store::decode_artifact(raw, "fuzz");
    // Anything the validator accepts must re-frame to the identical blob
    // (the footer is a pure function of the payload).
    const rsse::Bytes reframed = rsse::store::encode_artifact(payload);
    if (reframed.size() != size ||
        !std::equal(reframed.begin(), reframed.end(), data)) {
      std::fprintf(stderr, "fuzz_store: accepted artifact is not canonical\n");
      std::abort();
    }
  } catch (const rsse::IntegrityError&) {
  }

  const rsse::Bytes framed = rsse::store::encode_artifact(raw);
  const rsse::Bytes back = rsse::store::decode_artifact(framed, "round-trip");
  if (back.size() != size || !std::equal(back.begin(), back.end(), data)) {
    std::fprintf(stderr, "fuzz_store: round trip lost the payload\n");
    std::abort();
  }
  return 0;
}
