// Fuzz target for the order-preserving mapping decode paths (opse).
//
// Two surfaces:
//   * ScoreQuantizer::deserialize on arbitrary bytes (the blob users and
//     owners exchange so score encodings agree) — must return a usable
//     quantizer or throw ParseError; an accepted quantizer must respect
//     1 <= quantize(s) <= levels and monotonicity;
//   * OneToManyOpm bucket geometry with an input-derived key: map() must
//     land in bucket_of(m) and invert() must recover m exactly — the
//     owner-side decode of an OPM ciphertext.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fuzz_target.h"
#include "opse/opm.h"
#include "opse/quantizer.h"
#include "util/errors.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  try {
    const auto quantizer =
        rsse::opse::ScoreQuantizer::deserialize(rsse::BytesView(data, size));
    const std::uint64_t lo = quantizer.quantize(-1e308);
    const std::uint64_t hi = quantizer.quantize(1e308);
    if (lo < 1 || hi > quantizer.levels() || lo > hi) {
      std::fprintf(stderr, "fuzz_opm: quantizer breaks its level contract\n");
      std::abort();
    }
  } catch (const rsse::ParseError&) {
  }

  if (size < 41) return 0;
  const rsse::Bytes key(data, data + 32);
  std::uint64_t m_seed = 0;
  std::memcpy(&m_seed, data + 32, sizeof(m_seed));
  const std::uint64_t file_id = data[40];

  // Small fixed geometry keeps one descent cheap; the key (and with it
  // the whole bucket tree) is attacker-controlled.
  rsse::opse::OpeParams params;
  params.domain_size = 32;
  params.range_size = 4096;
  const rsse::opse::OneToManyOpm opm(key, params);
  const std::uint64_t m = 1 + m_seed % params.domain_size;
  const std::uint64_t c = opm.map(m, file_id);
  if (!opm.bucket_of(m).contains(c)) {
    std::fprintf(stderr, "fuzz_opm: ciphertext escaped its bucket\n");
    std::abort();
  }
  if (opm.invert(c) != m) {
    std::fprintf(stderr, "fuzz_opm: bucket inversion lost the plaintext\n");
    std::abort();
  }
  return 0;
}
