// Structure-aware fuzz target for the durability surface (ISSUE 7): the
// WAL record codec, the framed log scan, and the kDeltaBackfill
// request/response parsers — the bytes a restarting server trusts from
// its own disk and a lagging replica trusts from a donor peer.
//
// Input layout: data[0] selects the parser, the rest is the blob. Codec
// selectors follow the fuzz_protocol contract (typed rsse::Error or a
// canonical serialize fixed point). The log-scan selector checks the
// crash-recovery properties instead: scan_wal must NEVER throw (a torn
// tail is the expected crash artifact, not an error), every recovered
// record must round-trip, and re-framing the recovered records must
// reproduce the accepted prefix byte for byte — so compacting a damaged
// log never alters what survived.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "cloud/protocol.h"
#include "fuzz_target.h"
#include "seg/wal.h"
#include "util/errors.h"

namespace {

using rsse::Bytes;
using rsse::BytesView;

template <typename Message>
void round_trip(BytesView blob) {
  Message message;
  try {
    message = Message::deserialize(blob);
  } catch (const rsse::Error&) {
    return;  // typed rejection is the contract for malformed input
  }
  const Bytes wire = message.serialize();
  const Bytes again = Message::deserialize(wire).serialize();
  if (wire != again) {
    std::fprintf(stderr, "fuzz_wal: serialize not canonical\n");
    std::abort();
  }
}

void scan_properties(BytesView blob) {
  const rsse::seg::WalScan scan = rsse::seg::scan_wal(blob);

  Bytes image;
  for (const rsse::seg::WalRecord& record : scan.records) {
    // Every recovered record is canonical wire form.
    if (rsse::seg::WalRecord::deserialize(record.serialize()) != record) {
      std::fprintf(stderr, "fuzz_wal: recovered record not canonical\n");
      std::abort();
    }
    const Bytes frame = rsse::seg::encode_wal_frame(record);
    image.insert(image.end(), frame.begin(), frame.end());
  }

  // Re-framing the survivors reproduces the accepted prefix exactly —
  // the compaction rewrite after a torn tail loses nothing and invents
  // nothing.
  if (image.size() > blob.size() ||
      !std::equal(image.begin(), image.end(), blob.begin())) {
    std::fprintf(stderr, "fuzz_wal: re-framed records diverge from input\n");
    std::abort();
  }
  if (!scan.torn_tail && image.size() != blob.size()) {
    std::fprintf(stderr, "fuzz_wal: clean scan dropped trailing bytes\n");
    std::abort();
  }

  const rsse::seg::WalScan again = rsse::seg::scan_wal(image);
  if (again.torn_tail || again.records != scan.records) {
    std::fprintf(stderr, "fuzz_wal: rescan of compacted log diverges\n");
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const BytesView blob(data + 1, size - 1);
  switch (data[0] % 4) {
    case 0: round_trip<rsse::seg::WalRecord>(blob); break;
    case 1: round_trip<rsse::cloud::DeltaBackfillRequest>(blob); break;
    case 2: round_trip<rsse::cloud::DeltaBackfillResponse>(blob); break;
    default: scan_properties(blob); break;
  }
  return 0;
}
