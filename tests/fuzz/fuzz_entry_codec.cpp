// Fuzz target for the posting-entry codec (sse/entry_codec).
//
// Input layout: data[0] -> score-field width, data[1..32] -> row key,
// rest -> attacker-controlled ciphertext. Two obligations:
//   * decrypt_entry on arbitrary ciphertext returns an entry, nullopt
//     (padding) or throws ParseError — never anything else;
//   * a constructive encode -> encrypt -> decrypt round trip recovers
//     the exact (id, score field), so the codec cannot silently corrupt
//     genuine entries while rejecting hostile ones.
#include <cstdio>
#include <cstdlib>

#include "fuzz_target.h"
#include "sse/entry_codec.h"
#include "util/errors.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 33) return 0;
  const std::size_t score_field_size = data[0] % 33;  // 0..32 bytes
  const rsse::Bytes key(data + 1, data + 33);
  const rsse::BytesView ciphertext(data + 33, size - 33);

  try {
    (void)rsse::sse::decrypt_entry(key, ciphertext, score_field_size);
  } catch (const rsse::Error&) {
  }

  // Constructive round trip with inputs derived from the same bytes.
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) id = (id << 8) | data[1 + i];
  rsse::Bytes score_field(score_field_size, 0);
  for (std::size_t i = 0; i < score_field.size() && 33 + i < size; ++i)
    score_field[i] = data[33 + i];

  const rsse::Bytes plaintext =
      rsse::sse::encode_entry_plaintext(rsse::ir::file_id(id), score_field);
  const rsse::Bytes encrypted = rsse::sse::encrypt_entry(key, plaintext);
  if (encrypted.size() != rsse::sse::encrypted_entry_size(score_field_size)) {
    std::fprintf(stderr, "fuzz_entry_codec: size contract broken\n");
    std::abort();
  }
  const auto entry = rsse::sse::decrypt_entry(key, encrypted, score_field_size);
  if (!entry || rsse::ir::value(entry->file) != id || entry->score_field != score_field) {
    std::fprintf(stderr, "fuzz_entry_codec: round trip lost the entry\n");
    std::abort();
  }
  return 0;
}
