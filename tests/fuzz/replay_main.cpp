// Corpus replay driver: runs every file of one or more corpus
// directories through LLVMFuzzerTestOneInput without libFuzzer, so the
// checked-in corpora double as plain ctest regressions on any compiler.
//
//   <runner> <corpus_dir>...                 replay each file once
//   <runner> <corpus_dir>... --mutate R S    additionally run R
//                                            deterministic mutants per
//                                            file, derived from seed S
//
// The mutation mode is a poor man's fuzzer for toolchains without
// clang/libFuzzer: byte flips, truncations, extensions and splices with
// a seeded generator, so a crash found locally is reproducible from the
// same (corpus, R, S) triple.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_target.h"
#include "util/rng.h"

namespace fs = std::filesystem;

namespace {

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.string().c_str());
    std::exit(2);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void run(const std::vector<std::uint8_t>& input) {
  (void)LLVMFuzzerTestOneInput(input.data(), input.size());
}

// One deterministic mutant of `base`: flip, truncate, extend or splice.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& base,
                                 rsse::Xoshiro256& rng) {
  std::vector<std::uint8_t> out = base;
  const std::uint64_t kind = rng.uniform_below(4);
  if (out.empty() || kind == 2) {  // extend
    const std::uint64_t extra = 1 + rng.uniform_below(16);
    for (std::uint64_t i = 0; i < extra; ++i)
      out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    return out;
  }
  switch (kind) {
    case 0: {  // flip 1..4 bytes
      const std::uint64_t flips = 1 + rng.uniform_below(4);
      for (std::uint64_t i = 0; i < flips; ++i)
        out[rng.uniform_below(out.size())] ^=
            static_cast<std::uint8_t>(1 + rng.uniform_below(255));
      break;
    }
    case 1:  // truncate
      out.resize(rng.uniform_below(out.size() + 1));
      break;
    default: {  // splice: copy a window onto another offset
      const std::uint64_t len = 1 + rng.uniform_below(out.size());
      const std::uint64_t src = rng.uniform_below(out.size() - len + 1);
      const std::uint64_t dst = rng.uniform_below(out.size() - len + 1);
      std::memmove(out.data() + dst, out.data() + src, len);
      break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> dirs;
  std::uint64_t mutants = 0;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--mutate") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "usage: %s <corpus_dir>... [--mutate R S]\n", argv[0]);
        return 2;
      }
      mutants = std::strtoull(argv[i + 1], nullptr, 10);
      seed = std::strtoull(argv[i + 2], nullptr, 10);
      i += 2;
    } else {
      dirs.emplace_back(argv[i]);
    }
  }
  if (dirs.empty()) {
    std::fprintf(stderr, "usage: %s <corpus_dir>... [--mutate R S]\n", argv[0]);
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& dir : dirs) {
    if (!fs::is_directory(dir)) {
      std::fprintf(stderr, "replay: not a directory: %s\n", dir.string().c_str());
      return 2;
    }
    for (const auto& entry : fs::directory_iterator(dir))
      if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // directory order is not stable

  std::uint64_t executed = 0;
  for (const fs::path& path : files) {
    const auto input = read_file(path);
    run(input);
    ++executed;
    if (mutants > 0) {
      // Seed per file so adding a corpus entry never shifts the mutants
      // of the others.
      std::uint64_t file_seed = seed;
      for (const char c : path.filename().string())
        file_seed = (file_seed ^ static_cast<std::uint8_t>(c)) * 1099511628211ull;
      rsse::Xoshiro256 rng(file_seed);
      for (std::uint64_t m = 0; m < mutants; ++m) {
        run(mutate(input, rng));
        ++executed;
      }
    }
  }
  std::printf("replay: %llu inputs OK (%zu corpus files)\n",
              static_cast<unsigned long long>(executed), files.size());
  return 0;
}
