// Structure-aware fuzz target for the wire protocol (cloud/protocol).
//
// Input layout: data[0] selects the parser, the rest is the blob. For
// every parser the contract under fuzzing is:
//   * malformed input -> typed rsse::Error (ParseError), nothing else;
//   * accepted input  -> serialize() must be a fixed point: parsing the
//     re-serialized bytes succeeds and yields the same bytes again
//     (canonical wire form), so no parser accepts a message its writer
//     cannot reproduce.
#include <cstdio>
#include <cstdlib>

#include "cloud/protocol.h"
#include "ext/conjunctive.h"
#include "fuzz_target.h"
#include "sse/types.h"
#include "util/errors.h"

namespace {

using rsse::Bytes;
using rsse::BytesView;

template <typename Message>
void round_trip(BytesView blob) {
  Message message;
  try {
    message = Message::deserialize(blob);
  } catch (const rsse::Error&) {
    return;  // typed rejection is the contract for malformed input
  }
  const Bytes wire = message.serialize();
  const Bytes again = Message::deserialize(wire).serialize();
  if (wire != again) {
    std::fprintf(stderr, "fuzz_protocol: serialize not canonical\n");
    std::abort();
  }
}

// TraceResponse carries a lossy double<->micros latency field, so byte
// canonicity is not part of its contract — only parse stability is.
void trace_response(BytesView blob) {
  try {
    const auto message = rsse::cloud::TraceResponse::deserialize(blob);
    (void)rsse::cloud::TraceResponse::deserialize(message.serialize());
  } catch (const rsse::Error&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const BytesView blob(data + 1, size - 1);
  switch (data[0] % 17) {
    case 0: round_trip<rsse::cloud::RankedSearchRequest>(blob); break;
    case 1: round_trip<rsse::cloud::RankedSearchResponse>(blob); break;
    case 2: round_trip<rsse::cloud::BasicEntriesRequest>(blob); break;
    case 3: round_trip<rsse::cloud::BasicEntriesResponse>(blob); break;
    case 4: round_trip<rsse::cloud::FetchFilesRequest>(blob); break;
    case 5: round_trip<rsse::cloud::FetchFilesResponse>(blob); break;
    case 6: round_trip<rsse::cloud::MultiSearchRequest>(blob); break;
    case 7: round_trip<rsse::cloud::BasicFilesResponse>(blob); break;
    case 8: round_trip<rsse::cloud::SnapshotRequest>(blob); break;
    case 9: round_trip<rsse::cloud::SnapshotResponse>(blob); break;
    case 10: round_trip<rsse::cloud::StatsRequest>(blob); break;
    case 11: round_trip<rsse::cloud::StatsResponse>(blob); break;
    case 12: round_trip<rsse::cloud::TraceRequest>(blob); break;
    case 13: trace_response(blob); break;
    case 14: round_trip<rsse::sse::Trapdoor>(blob); break;
    case 15: round_trip<rsse::ext::ConjunctiveTrapdoor>(blob); break;
    default: round_trip<rsse::cloud::TenantScopedRequest>(blob); break;
  }
  return 0;
}
