// SecureIndex container: row management, lookup, byte accounting,
// serialization, and update (replace_row) semantics.
#include <gtest/gtest.h>

#include "sse/secure_index.h"
#include "util/errors.h"

namespace rsse::sse {
namespace {

Bytes label(char c) { return Bytes(20, static_cast<std::uint8_t>(c)); }

TEST(SecureIndex, AddAndLookup) {
  SecureIndex index;
  index.add_row(label('a'), {Bytes(40, 1), Bytes(40, 2)});
  index.add_row(label('b'), {Bytes(40, 3)});
  EXPECT_EQ(index.num_rows(), 2u);
  ASSERT_NE(index.row(label('a')), nullptr);
  EXPECT_EQ(index.row(label('a'))->size(), 2u);
  EXPECT_EQ(index.row(label('c')), nullptr);
}

TEST(SecureIndex, RejectsBadRows) {
  SecureIndex index;
  EXPECT_THROW(index.add_row(Bytes{}, {}), InvalidArgument);
  index.add_row(label('a'), {});
  EXPECT_THROW(index.add_row(label('a'), {}), InvalidArgument);  // duplicate
  EXPECT_THROW(index.add_row(label('b'), {Bytes(40, 0), Bytes(41, 0)}),
               InvalidArgument);  // ragged
}

TEST(SecureIndex, ByteAccounting) {
  SecureIndex index;
  index.add_row(label('a'), {Bytes(40, 1), Bytes(40, 2)});
  index.add_row(label('b'), {Bytes(40, 3)});
  EXPECT_EQ(index.byte_size(), 20u * 2 + 40u * 3);
  EXPECT_EQ(index.row_byte_size(label('a')), 20u + 80u);
  EXPECT_EQ(index.row_byte_size(label('z')), 0u);
}

TEST(SecureIndex, SerializeRoundTrip) {
  SecureIndex index;
  index.add_row(label('a'), {Bytes(8, 1), Bytes(8, 2)});
  index.add_row(label('q'), {});
  index.add_row(label('b'), {Bytes(16, 9)});
  const SecureIndex restored = SecureIndex::deserialize(index.serialize());
  EXPECT_EQ(restored, index);
}

TEST(SecureIndex, DeserializeRejectsCorruption) {
  SecureIndex index;
  index.add_row(label('a'), {Bytes(8, 1)});
  Bytes blob = index.serialize();
  blob.resize(blob.size() - 2);
  EXPECT_THROW(SecureIndex::deserialize(blob), ParseError);
  blob = index.serialize();
  blob.push_back(0);
  EXPECT_THROW(SecureIndex::deserialize(blob), ParseError);
}

TEST(SecureIndex, LabelsSortedAndOpaque) {
  SecureIndex index;
  index.add_row(label('c'), {});
  index.add_row(label('a'), {});
  index.add_row(label('b'), {});
  const auto labels = index.labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], label('a'));
  EXPECT_EQ(labels[2], label('c'));
}

TEST(SecureIndex, ReplaceRow) {
  SecureIndex index;
  index.add_row(label('a'), {Bytes(8, 1)});
  index.replace_row(label('a'), {Bytes(8, 2), Bytes(8, 3)});
  EXPECT_EQ(index.row(label('a'))->size(), 2u);
  EXPECT_THROW(index.replace_row(label('x'), {}), InvalidArgument);
  EXPECT_THROW(index.replace_row(label('a'), {Bytes(8, 0), Bytes(9, 0)}),
               InvalidArgument);
}

}  // namespace
}  // namespace rsse::sse
