// rsse — command-line front end for the whole system, driving real
// directories of text files through the library:
//
//   rsse keygen  --owner <state-file> --passphrase <p>
//   rsse build   --owner <state-file> --passphrase <p>
//                --docs <dir-of-text-files> --deploy <dir> [--threads N]
//   rsse search  --owner <state-file> --passphrase <p>
//                --deploy <dir> --keyword <w> [--top-k K]
//   rsse add     --owner <state-file> --passphrase <p>
//                --deploy <dir> --file <path>
//   rsse stats   --deploy <dir>  |  rsse stats --port <n> [--format prom|json]
//   rsse trace   --port <n> [--max N]  |  rsse trace --owner ... --deploy ...
//                --keyword <w> [--top-k K] [--chaos R]
//   rsse audit   --deploy <dir>
//
// `keygen` creates a sealed owner-state file; `build` indexes and
// encrypts a document directory into a deployment directory (what you
// would hand the storage provider); `search` plays both the authorized
// user and the server locally; `add` incrementally indexes one new file;
// `stats --port` scrapes a running server's metric registry over the
// protocol; `trace --port` fetches a running server's slow-query log;
// `trace --deploy` runs one traced query end to end and prints the span
// tree (with --chaos R, against a fault-injected replica pair per shard,
// showing retries and failovers live) followed by the per-stage profile;
// `audit` prints the build-time leakage audit of a deployment (the
// paper's security claims as numbers: OPM duplicate count, row-width
// entropy under the padding policy, score min-entropy — Fig. 6 and
// Ablation C).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <csignal>

#include "analysis/attack.h"
#include "analysis/attack_eval.h"
#include "analysis/leakage.h"
#include "analysis/transcript.h"
#include "cloud/channel.h"
#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cloud/protocol.h"
#include "cluster/coordinator.h"
#include "crypto/csprng.h"
#include "fault/fault_transport.h"
#include "ir/corpus_gen.h"
#include "net/remote_channel.h"
#include "net/server.h"
#include "obs/cost.h"
#include "obs/profiler.h"
#include "obs/scrape.h"
#include "obs/trace.h"
#include "store/deployment.h"
#include "store/owner_state.h"
#include "tenant/host.h"
#include "tenant/registry.h"
#include "tenant/scoped_transport.h"
#include "util/errors.h"
#include "util/stopwatch.h"

namespace {

using namespace rsse;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rsse keygen --owner FILE --passphrase P\n"
               "  rsse build  --owner FILE --passphrase P --docs DIR --deploy DIR"
               " [--threads N] [--cluster N] [--padding full_nu|pow2|none]\n"
               "  rsse search --owner FILE --passphrase P --deploy DIR --keyword W"
               " [--top-k K] [--timeout-ms N]\n"
               "  rsse add    --owner FILE --passphrase P --deploy DIR --file PATH\n"
               "  rsse update --owner FILE --passphrase P --port N[,N...]"
               " [--file PATH --id N] [--remove ID] [--write-quorum Q]\n"
               "  rsse stats  --deploy DIR | --port N [--format prom|json]"
               " [--tenant ID]\n"
               "  rsse trace  --port N [--max N]\n"
               "  rsse trace  --owner FILE --passphrase P --deploy DIR --keyword W"
               " [--top-k K] [--chaos R]\n"
               "  rsse audit  --deploy DIR | --attack DOCS-DIR --transcript PATH\n"
               "  rsse serve  --deploy DIR [--port N] [--cache on] [--shard I]"
               " [--repair-from PORT] [--metrics-port N] [--slow-ms N]"
               " [--compaction off] [--workers N] [--fair off]"
               " [--operator-stats on] [--attack-eval DOCS-DIR]"
               " [--transcript PATH] [--reactor-threads N] [--net-workers N]"
               " [--max-connections N] [--max-in-flight N] [--legacy-net on]\n"
               "  rsse tenant init --deploy DIR\n"
               "  rsse tenant add  --deploy DIR --tenant ID [--rate N] [--burst N]"
               " [--max-in-flight N] [--weight N] [--max-queued N]\n"
               "  rsse tenant rm   --deploy DIR --tenant ID\n"
               "  rsse tenant ls   --deploy DIR\n"
               "  (search accepts --port N to query a running serve instance and\n"
               "   --timeout-ms N to bound every RPC (fails with a deadline error\n"
               "   instead of hanging); build --cluster N shards the deployment,\n"
               "   search/stats detect it, serve --shard I serves one shard of a\n"
               "   cluster deployment, and serve --repair-from PORT rebuilds a\n"
               "   corrupted shard from the healthy replica at that port;\n"
               "   stats --port scrapes a live server's metrics over the protocol,\n"
               "   trace --port prints its slow-query log, trace --deploy runs one\n"
               "   traced query and prints the span tree (--chaos R injects faults\n"
               "   at rate R to exercise failover) plus the per-stage profile,\n"
               "   audit prints the build-time leakage audit (OPM duplicates,\n"
               "   width/score entropy), serve --metrics-port exposes GET\n"
               "   /metrics, /metrics.json and /healthz over HTTP — including\n"
               "   per-stage profile histograms and the live leakage gauges —\n"
               "   and --slow-ms sets the slow-query log threshold;\n"
               "   tenant init/add/rm/ls manage a multi-tenant deployment:\n"
               "   build --tenant ID writes into that tenant's namespace,\n"
               "   search/update --tenant ID scope every request to it, and\n"
               "   serve detects a tenant deployment and serves all namespaces\n"
               "   behind per-tenant quotas + weighted-fair scheduling\n"
               "   (--workers N pool size, --fair off for FIFO; stats --tenant\n"
               "   reads that tenant's own registry, the aggregate {tenant=...}\n"
               "   view is on --metrics-port or, with --operator-stats on, bare\n"
               "   kStats — leave it off unless the port is operator-only);\n"
               "   update streams an encrypted dynamic-index delta to a live\n"
               "   serve instance over kUpdate — --file/--id adds one document\n"
               "   under the given fresh id, --remove tombstones one id, and the\n"
               "   server folds the delta into its segment overlay without a\n"
               "   restart; update --port accepts a comma-separated replica\n"
               "   list — the delta fans out to every replica and commits once\n"
               "   --write-quorum Q of them ack (0 = all, the default); serve\n"
               "   compacts segments in the background unless\n"
               "   --compaction off;\n"
               "   build --padding picks the row-padding policy (full_nu hides\n"
               "   widths completely, pow2 buckets them, none leaks exact df)\n"
               "   and records it in the stored audit;\n"
               "   serve --transcript PATH records the adversary's-eye query\n"
               "   transcript and persists it on shutdown; --attack-eval DIR\n"
               "   additionally runs the query-recovery attack (background\n"
               "   knowledge = the public docs at DIR) live in the background,\n"
               "   exporting rsse_attack_* gauges; audit --attack DIR\n"
               "   --transcript PATH replays the attack offline against a\n"
               "   saved transcript;\n"
               "   serve runs the epoll reactor engine: --reactor-threads N\n"
               "   event loops, --net-workers N handler threads,\n"
               "   --max-connections / --max-in-flight backpressure caps\n"
               "   (past them clients get a typed Overloaded error), and\n"
               "   --legacy-net on falls back to thread-per-connection)\n");
  std::exit(2);
}

// --flag value argument map; flags may appear once.
std::map<std::string, std::string> parse_flags(int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag.size() < 3 || flag.rfind("--", 0) != 0 || i + 1 >= argc) usage();
    if (!flags.emplace(flag.substr(2), argv[i + 1]).second) usage();
  }
  return flags;
}

std::string need(const std::map<std::string, std::string>& flags, const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) usage();
  return it->second;
}

std::string optional_flag(const std::map<std::string, std::string>& flags,
                          const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// Serving-endpoint engine knobs shared by both serve paths (bare and
// tenant deployments). Defaults match net::ServerOptions.
net::ServerOptions server_options_from_flags(
    const std::map<std::string, std::string>& flags) {
  net::ServerOptions options;
  options.reactor = optional_flag(flags, "legacy-net", "off") != "on";
  options.reactor_threads = std::stoul(optional_flag(flags, "reactor-threads", "1"));
  options.workers = std::stoul(optional_flag(flags, "net-workers", "4"));
  options.max_connections = std::stoul(optional_flag(flags, "max-connections", "10000"));
  options.max_in_flight = std::stoul(optional_flag(flags, "max-in-flight", "1024"));
  return options;
}

sse::PaddingMode parse_padding(const std::string& name) {
  if (name == "full_nu") return sse::PaddingMode::kFullNu;
  if (name == "pow2") return sse::PaddingMode::kPowerOfTwo;
  if (name == "none") return sse::PaddingMode::kNone;
  std::fprintf(stderr, "unknown --padding %s (full_nu, pow2 or none)\n",
               name.c_str());
  usage();
}

cloud::DataOwner restore_owner(const std::map<std::string, std::string>& flags) {
  const store::OwnerState state =
      store::load_owner_state(need(flags, "owner"), need(flags, "passphrase"));
  return cloud::DataOwner(state.key, state.file_master, state.quantizer);
}

void persist_owner(const cloud::DataOwner& owner,
                   const std::map<std::string, std::string>& flags) {
  store::save_owner_state(
      store::OwnerState{owner.master_key(), owner.file_master(), owner.quantizer()},
      need(flags, "owner"), need(flags, "passphrase"));
}

int cmd_keygen(const std::map<std::string, std::string>& flags) {
  const cloud::DataOwner owner;  // fresh KeyGen
  persist_owner(owner, flags);
  std::printf("wrote sealed owner state to %s\n", need(flags, "owner").c_str());
  return 0;
}

int cmd_build(const std::map<std::string, std::string>& flags) {
  cloud::DataOwner owner = restore_owner(flags);
  const ir::Corpus corpus = ir::load_directory(need(flags, "docs"));
  if (corpus.size() == 0) {
    std::fprintf(stderr, "no files found under %s\n", need(flags, "docs").c_str());
    return 1;
  }
  std::printf("indexing %zu files (%.1f MB)...\n", corpus.size(),
              static_cast<double>(corpus.total_bytes()) / (1024.0 * 1024.0));
  Stopwatch watch;
  cloud::CloudServer server;
  sse::RsseScheme::BuildOptions build_options;
  build_options.num_threads = std::max<std::size_t>(
      1, std::stoul(optional_flag(flags, "threads", "1")));
  build_options.padding = parse_padding(optional_flag(flags, "padding", "full_nu"));
  const auto report = owner.outsource_rsse(corpus, server, build_options);
  std::printf("built %llu-keyword index (%.2f MB) in %.2f s\n",
              static_cast<unsigned long long>(report.rsse_stats.num_keywords),
              static_cast<double>(report.index_bytes) / (1024.0 * 1024.0),
              watch.elapsed_seconds());
  const auto shards = static_cast<std::uint32_t>(
      std::stoul(optional_flag(flags, "cluster", "0")));
  if (flags.contains("tenant")) {
    if (shards > 0) {
      std::fprintf(stderr, "--tenant and --cluster cannot be combined\n");
      return 1;
    }
    // Build INTO one namespace of a multi-tenant deployment: register the
    // tenant (default quota) when new, then write its directory through
    // the standard single-server path.
    const std::string root = need(flags, "deploy");
    tenant::TenantRegistry registry;
    if (store::is_tenant_deployment(root))
      registry = store::load_tenant_registry(root);
    const std::string id = flags.at("tenant");
    if (!registry.contains(id)) registry.add(tenant::TenantConfig{id, {}, true});
    const std::string ns = store::tenant_dir(root, id);
    store::save_deployment(server, ns);
    store::save_tenant_registry(registry, root);
    store::save_leakage_audit(report.rsse_audit, ns);
    std::printf("tenant %s namespace written to %s\n", id.c_str(), ns.c_str());
  } else if (shards > 0) {
    store::save_cluster_deployment(server, shards, need(flags, "deploy"));
    std::printf("cluster deployment (%u shards) written to %s\n", shards,
                need(flags, "deploy").c_str());
    store::save_leakage_audit(report.rsse_audit, need(flags, "deploy"));
  } else {
    store::save_deployment(server, need(flags, "deploy"));
    std::printf("deployment written to %s\n", need(flags, "deploy").c_str());
    // The audit rides with the deployment (after the save — saving
    // replaces the directory wholesale) so serve/audit can surface it.
    store::save_leakage_audit(report.rsse_audit, need(flags, "deploy"));
  }
  std::printf("leakage audit: %llu postings, %llu OPM duplicates (want 0), "
              "width entropy %.3f bits, padding %s\n",
              static_cast<unsigned long long>(report.rsse_audit.genuine_postings),
              static_cast<unsigned long long>(
                  report.rsse_audit.opm_ciphertext_duplicates),
              report.rsse_audit.stored_width_entropy_bits,
              report.rsse_audit.padding_name());
  persist_owner(owner, flags);  // retains the quantizer for later adds
  return 0;
}

// Loads every shard of an on-disk cluster deployment into in-process
// servers behind one coordinator (single replica per shard).
cluster::LocalCluster load_cluster(const std::string& dir) {
  cluster::LocalCluster local;
  local.manifest = store::load_cluster_manifest(dir);
  std::vector<std::unique_ptr<cluster::ReplicaSet>> shards;
  for (std::uint32_t i = 0; i < local.manifest.num_shards; ++i) {
    auto server = std::make_unique<cloud::CloudServer>();
    store::load_cluster_shard(dir, i, *server);
    auto set = std::make_unique<cluster::ReplicaSet>();
    set->add_replica(std::make_unique<cloud::Channel>(*server));
    local.servers.push_back(std::move(server));
    shards.push_back(std::move(set));
  }
  local.coordinator = std::make_unique<cluster::ClusterCoordinator>(
      local.manifest, std::move(shards));
  return local;
}

int run_search(const std::map<std::string, std::string>& flags,
               cloud::Transport& channel, const cloud::DataOwner& owner) {
  // A per-call budget turns a hung or unreachable server into a prompt
  // typed failure (DeadlineExceeded) instead of an indefinite stall.
  const auto timeout_ms = std::stol(optional_flag(flags, "timeout-ms", "0"));
  if (timeout_ms > 0) channel.set_call_timeout(std::chrono::milliseconds(timeout_ms));
  // Play the authorized user end-to-end, sealed credentials included.
  const Bytes user_key = crypto::random_bytes(32);
  const auto credentials = cloud::AuthorizationService::open(
      user_key, "cli", owner.enroll_user(user_key, "cli"));
  cloud::DataUser user(credentials, channel);

  const auto top_k = static_cast<std::size_t>(
      std::stoul(optional_flag(flags, "top-k", "10")));
  Stopwatch watch;
  const auto results = user.ranked_search(need(flags, "keyword"), top_k);
  const double ms = watch.elapsed_ms();
  std::printf("top-%zu for \"%s\" (%.2f ms, %llu bytes down):\n", results.size(),
              need(flags, "keyword").c_str(), ms,
              static_cast<unsigned long long>(channel.stats().bytes_down));
  for (std::size_t i = 0; i < results.size(); ++i)
    std::printf("  #%-3zu %s (%zu bytes)\n", i + 1, results[i].document.name.c_str(),
                results[i].document.text.size());
  return 0;
}

int cmd_search(const std::map<std::string, std::string>& flags) {
  const cloud::DataOwner owner = restore_owner(flags);
  if (flags.contains("port")) {
    const auto port = static_cast<std::uint16_t>(std::stoul(flags.at("port")));
    net::RemoteChannel channel(port);
    if (flags.contains("tenant")) {
      tenant::ScopedTransport scoped(channel, flags.at("tenant"));
      return run_search(flags, scoped, owner);
    }
    return run_search(flags, channel, owner);
  }
  if (store::is_tenant_deployment(need(flags, "deploy"))) {
    // Local multi-tenant query: stand up the whole host (quotas and fair
    // scheduling included) and pin the user's transport to one namespace.
    tenant::TenantHost host;
    store::load_tenant_deployment(need(flags, "deploy"), host);
    cloud::Channel channel(host);
    tenant::ScopedTransport scoped(channel, need(flags, "tenant"));
    return run_search(flags, scoped, owner);
  }
  if (store::is_cluster_deployment(need(flags, "deploy"))) {
    cluster::LocalCluster local = load_cluster(need(flags, "deploy"));
    return run_search(flags, *local.coordinator, owner);
  }
  cloud::CloudServer server;
  store::load_deployment(need(flags, "deploy"), server);
  cloud::Channel channel(server);
  return run_search(flags, channel, owner);
}

// Serves every namespace of a multi-tenant deployment behind admission
// control and DWRR scheduling, with per-tenant {tenant=...} metrics on
// the host registry.
int serve_tenant_deployment(const std::map<std::string, std::string>& flags) {
  const std::string dir = need(flags, "deploy");
  tenant::TenantHostOptions options;
  options.scheduler.workers = static_cast<std::size_t>(
      std::stoul(optional_flag(flags, "workers", "4")));
  options.scheduler.fair = optional_flag(flags, "fair", "on") != "off";
  options.slow_query_threshold_ms = std::stod(optional_flag(flags, "slow-ms", "0"));
  // The aggregate {tenant=...} view is served out-of-band on
  // --metrics-port (operator channel); --operator-stats additionally
  // answers bare kStats over the serving port — only sane when every
  // client of that port is the operator.
  options.expose_host_stats = optional_flag(flags, "operator-stats", "off") == "on";
  tenant::TenantHost host(options);
  store::load_tenant_deployment(dir, host);

  const bool compaction = optional_flag(flags, "compaction", "on") != "off";
  for (const std::string& id : host.tenant_ids()) {
    cloud::CloudServer* server = host.find_server(id);
    if (compaction) server->enable_background_compaction();
    if (optional_flag(flags, "cache", "off") == "on")
      server->set_rank_cache_enabled(true);
    // Each namespace's build-time audit exports as {tenant=...} gauges.
    if (const auto audit = store::load_leakage_audit(store::tenant_dir(dir, id)))
      analysis::export_leakage_gauges(*audit, host.metrics_registry(),
                                      {{"tenant", id}});
  }

  obs::Profiler& profiler = obs::Profiler::global();
  for (const char* name : {"server/parse", "server/rank", "server/serialize"})
    profiler.stage(name);
  profiler.set_enabled(true);
  obs::register_build_info(profiler.registry());

  const auto port = static_cast<std::uint16_t>(
      std::stoul(optional_flag(flags, "port", "0")));
  net::NetworkServer endpoint(host, port, server_options_from_flags(flags));
  std::unique_ptr<obs::ScrapeEndpoint> scrape;
  if (flags.contains("metrics-port")) {
    scrape = std::make_unique<obs::ScrapeEndpoint>(
        std::vector<obs::ScrapeSource>{
            {"server", &host.metrics_registry(),
             [&host] { host.refresh_leakage_gauges(); }},
            {"profile", &profiler.registry(), {}}},
        static_cast<std::uint16_t>(std::stoul(flags.at("metrics-port"))));
    std::printf("metrics on http://127.0.0.1:%u/metrics\n", scrape->port());
  }
  std::printf("serving %zu tenants on 127.0.0.1:%u [%s scheduling, %zu workers]"
              " (SIGINT to stop)\n",
              host.tenant_ids().size(), endpoint.port(),
              options.scheduler.fair ? "fair" : "fifo",
              options.scheduler.workers);
  std::fflush(stdout);
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int signal_number = 0;
  sigwait(&set, &signal_number);
  std::printf("\nstopping (%llu requests served)\n",
              static_cast<unsigned long long>(endpoint.requests_served()));
  return 0;
}

int cmd_serve(const std::map<std::string, std::string>& flags) {
  if (store::is_tenant_deployment(need(flags, "deploy")))
    return serve_tenant_deployment(flags);
  cloud::CloudServer server;
  if (store::is_cluster_deployment(need(flags, "deploy"))) {
    const auto shard = static_cast<std::uint32_t>(std::stoul(need(flags, "shard")));
    if (flags.contains("repair-from")) {
      // Self-healing start: a shard whose artifacts fail their integrity
      // check is quarantined and rebuilt from the healthy replica.
      const auto peer = static_cast<std::uint16_t>(std::stoul(flags.at("repair-from")));
      net::RemoteChannel healthy(peer, net::ConnectOptions{.timeout = std::chrono::seconds(5)});
      store::load_cluster_shard_or_repair(need(flags, "deploy"), shard, server, &healthy);
    } else {
      store::load_cluster_shard(need(flags, "deploy"), shard, server);
    }
  } else {
    store::load_deployment(need(flags, "deploy"), server);
  }
  if (optional_flag(flags, "cache", "off") == "on") server.set_rank_cache_enabled(true);
  // A serving process accepts kUpdate deltas (rsse update); the background
  // compactor keeps the resulting segment backlog — and thus per-query
  // overlay work — bounded without blocking readers.
  if (optional_flag(flags, "compaction", "on") != "off")
    server.enable_background_compaction();
  const auto slow_ms = std::stod(optional_flag(flags, "slow-ms", "0"));
  if (slow_ms > 0) server.set_slow_query_threshold_ms(slow_ms);

  // Continuous profiling is on for the life of a serving process; the
  // request-path stages are pre-registered so the very first scrape shows
  // every family (at zero) rather than a profile that grows lazily.
  obs::Profiler& profiler = obs::Profiler::global();
  for (const char* name : {"server/parse", "server/rank", "server/serialize"})
    profiler.stage(name);
  profiler.set_enabled(true);
  obs::register_build_info(profiler.registry());

  // Surface the build-time leakage audit as live gauges next to the
  // server's own families: rsse_opm_ciphertext_duplicates must read 0 on
  // a healthy deployment (Fig. 6). A cluster shard exports the audit of
  // the whole index — the audit is owner-side and global, audit.bin sits
  // at the cluster root. Older deployments simply lack the series.
  if (const auto audit = store::load_leakage_audit(need(flags, "deploy")))
    analysis::export_leakage_gauges(*audit, server.metrics().registry());

  // Adversary's-eye observability. --transcript arms per-query capture
  // (persisted on shutdown); --attack-eval DIR additionally runs the
  // query-recovery adversary in the background, with the public docs at
  // DIR as its statistical background knowledge, exporting rsse_attack_*
  // gauges through the same registry kStats and --metrics-port serve.
  // Declared before the endpoint so traffic stops before they die.
  std::shared_ptr<analysis::TranscriptSink> transcript;
  std::unique_ptr<analysis::AttackEvaluator> attack_eval;
  if (flags.contains("transcript") || flags.contains("attack-eval")) {
    transcript = std::make_shared<analysis::TranscriptSink>();
    server.set_transcript_sink(transcript);
  }
  if (flags.contains("attack-eval")) {
    const ir::Corpus public_corpus = ir::load_directory(flags.at("attack-eval"));
    if (public_corpus.size() == 0) {
      std::fprintf(stderr, "no background docs under %s\n",
                   flags.at("attack-eval").c_str());
      return 1;
    }
    auto background = analysis::BackgroundKnowledge::from_corpus(public_corpus);
    std::printf("attack evaluator armed: %zu background keywords from %zu"
                " public docs\n",
                background.num_keywords(), background.num_documents());
    attack_eval = std::make_unique<analysis::AttackEvaluator>(
        *transcript, std::move(background), server.metrics().registry());
    analysis::AttackEvaluator* evaluator = attack_eval.get();
    transcript->set_listener([evaluator] { evaluator->notify(); });
  }

  const auto port = static_cast<std::uint16_t>(
      std::stoul(optional_flag(flags, "port", "0")));
  net::NetworkServer endpoint(server, port, server_options_from_flags(flags));
  std::unique_ptr<obs::ScrapeEndpoint> scrape;
  if (flags.contains("metrics-port")) {
    // Deterministic crypto cost counters (HMAC calls, HGD samples, bytes
    // encrypted, ...) are synced into gauges lazily, right before each
    // render, via the source's refresh hook.
    const auto sync_cost = [&profiler] {
      const obs::cost::Snapshot snap = obs::cost::snapshot();
      auto& reg = profiler.registry();
      const auto set = [&reg](const char* name, const char* help,
                              std::uint64_t value) {
        reg.gauge(name, help).set(static_cast<std::int64_t>(value));
      };
      set("rsse_cost_hmac_invocations", "HMAC-SHA256 finishes since start",
          snap.hmac_invocations);
      set("rsse_cost_tape_derivations", "Keyed random tapes derived",
          snap.tape_derivations);
      set("rsse_cost_hgd_samples", "Hypergeometric samples drawn",
          snap.hgd_samples);
      set("rsse_cost_opm_mappings", "One-to-many OPM values drawn",
          snap.opm_mappings);
      set("rsse_cost_split_cache_hits", "OPSE split-cache hits",
          snap.split_cache_hits);
      set("rsse_cost_entries_encrypted", "Posting entries AES-encrypted",
          snap.entries_encrypted);
      set("rsse_cost_bytes_encrypted", "Posting plaintext bytes encrypted",
          snap.bytes_encrypted);
    };
    sync_cost();  // pre-register the families too
    scrape = std::make_unique<obs::ScrapeEndpoint>(
        std::vector<obs::ScrapeSource>{
            {"server", &server.metrics().registry(), {}},
            {"profile", &profiler.registry(), sync_cost}},
        static_cast<std::uint16_t>(std::stoul(flags.at("metrics-port"))));
    std::printf("metrics on http://127.0.0.1:%u/metrics\n", scrape->port());
  }
  std::printf("serving %zu keywords / %zu files on 127.0.0.1:%u (SIGINT to stop)\n",
              server.index().num_rows(), server.num_files(), endpoint.port());
  std::fflush(stdout);
  // Park until a signal arrives; the endpoint threads do the work.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int signal_number = 0;
  sigwait(&set, &signal_number);
  if (transcript && flags.contains("transcript")) {
    store::save_transcript(transcript->snapshot(), flags.at("transcript"));
    std::printf("\ntranscript written to %s (%zu records retained, %llu"
                " overwritten)\n",
                flags.at("transcript").c_str(), transcript->size(),
                static_cast<unsigned long long>(transcript->dropped()));
  }
  std::printf("\nstopping (%llu requests served)\n",
              static_cast<unsigned long long>(endpoint.requests_served()));
  return 0;
}

int cmd_add(const std::map<std::string, std::string>& flags) {
  cloud::DataOwner owner = restore_owner(flags);
  if (store::is_cluster_deployment(need(flags, "deploy"))) {
    std::fprintf(stderr,
                 "add is not supported on a cluster deployment; "
                 "rebuild with --cluster N\n");
    return 1;
  }
  cloud::CloudServer server;
  store::load_deployment(need(flags, "deploy"), server);

  const std::string path = need(flags, "file");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream content;
  content << in.rdbuf();
  // Fresh id above every stored one.
  std::uint64_t next_id = 0;
  for (const auto& [id, blob] : server.files()) next_id = std::max(next_id, id + 1);
  const ir::Document doc{ir::file_id(next_id),
                         std::filesystem::path(path).filename().string(),
                         content.str()};
  const auto stats = owner.add_document(server, doc);
  store::save_deployment(server, need(flags, "deploy"));
  std::printf("added %s as id %llu (%zu keywords touched, %zu new rows)\n",
              doc.name.c_str(), static_cast<unsigned long long>(next_id),
              stats.keywords_touched, stats.new_rows);
  return 0;
}

// Streams one encrypted update delta to a live serve instance over
// kUpdate: adds become pre-encrypted posting rows + file blobs, removes
// become tombstones. The server folds the delta into its segment
// overlay; nothing is rebuilt and no restart is needed. The owner never
// ships plaintext — entries are encrypted locally with the restored
// keys, exactly like the initial outsourcing.
int cmd_update(const std::map<std::string, std::string>& flags) {
  cloud::DataOwner owner = restore_owner(flags);
  // Delta ids are per-DataOwner idempotency tokens; a fresh CLI process
  // must draw a random range or the server dedups its first delta
  // against the previous invocation's.
  std::uint64_t delta_seed = 0;
  for (const auto byte : crypto::random_bytes(8))
    delta_seed = (delta_seed << 8) | static_cast<std::uint64_t>(byte);
  owner.seed_delta_ids(delta_seed | 1);  // never the 0 sentinel
  std::vector<ir::Document> adds;
  if (flags.contains("file")) {
    const std::string path = flags.at("file");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream content;
    content << in.rdbuf();
    // The owner is stateless about stored ids, so the id is supplied
    // explicitly. Reusing a live id replaces that document wholesale:
    // build_update guards every add with a tombstone, so postings of the
    // old version stop matching even for keywords the new one lacks.
    adds.push_back(ir::Document{ir::file_id(std::stoull(need(flags, "id"))),
                                std::filesystem::path(path).filename().string(),
                                content.str()});
  }
  std::vector<sse::FileId> removes;
  if (flags.contains("remove"))
    removes.push_back(ir::file_id(std::stoull(flags.at("remove"))));
  if (adds.empty() && removes.empty()) {
    std::fprintf(stderr, "update needs --file PATH --id N and/or --remove ID\n");
    return 1;
  }
  // --port takes a comma-separated replica list; with more than one the
  // delta fans out to every replica and commits once --write-quorum of
  // them ack (0 = all). A quorum miss is a typed error, not a partial
  // write the owner never hears about.
  std::vector<std::uint16_t> ports;
  {
    const std::string list = need(flags, "port");
    std::size_t start = 0;
    while (start <= list.size()) {
      const std::size_t comma = list.find(',', start);
      const std::string tok = list.substr(
          start, comma == std::string::npos ? std::string::npos : comma - start);
      if (!tok.empty())
        ports.push_back(static_cast<std::uint16_t>(std::stoul(tok)));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  if (ports.empty()) usage();
  const auto timeout_ms = std::stol(optional_flag(flags, "timeout-ms", "0"));
  // --tenant scopes the delta to one namespace of a multi-tenant host:
  // the transport wraps it in a TenantScopedRequest envelope.
  const auto scoped_or_bare =
      [&flags](cloud::Transport& bare) -> std::unique_ptr<cloud::Transport> {
    if (!flags.contains("tenant")) return nullptr;
    return std::make_unique<tenant::ScopedTransport>(bare, flags.at("tenant"));
  };
  cloud::UpdateResponse resp;
  if (ports.size() == 1) {
    net::RemoteChannel channel(ports[0]);
    if (timeout_ms > 0)
      channel.set_call_timeout(std::chrono::milliseconds(timeout_ms));
    const auto scoped = scoped_or_bare(channel);
    resp = owner.stream_update(scoped ? *scoped : channel, adds, removes);
  } else {
    auto set = std::make_unique<cluster::ReplicaSet>();
    for (const std::uint16_t port : ports)
      set->add_replica(std::make_unique<net::RemoteChannel>(port));
    std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
    sets.push_back(std::move(set));
    cluster::ClusterManifest manifest;
    manifest.num_shards = 1;
    manifest.replicas = static_cast<std::uint32_t>(ports.size());
    cluster::CoordinatorOptions copts;
    copts.retry.write_quorum = static_cast<std::uint32_t>(
        std::stoul(optional_flag(flags, "write-quorum", "0")));
    cluster::ClusterCoordinator coordinator(manifest, std::move(sets), copts);
    if (timeout_ms > 0)
      coordinator.set_call_timeout(std::chrono::milliseconds(timeout_ms));
    const auto scoped = scoped_or_bare(coordinator);
    resp = owner.stream_update(scoped ? *scoped : coordinator, adds, removes);
  }
  std::printf("update applied%s: %llu entries, %llu tombstones, %llu blobs"
              " stored, %llu erased (server seq %llu, %llu sealed segments)\n",
              resp.replayed ? " (idempotent replay)" : "",
              static_cast<unsigned long long>(resp.entries_applied),
              static_cast<unsigned long long>(resp.tombstones_applied),
              static_cast<unsigned long long>(resp.files_stored),
              static_cast<unsigned long long>(resp.files_erased),
              static_cast<unsigned long long>(resp.next_seq),
              static_cast<unsigned long long>(resp.sealed_segments));
  return 0;
}

int cmd_stats(const std::map<std::string, std::string>& flags) {
  if (flags.contains("port")) {
    // Live scrape over the protocol: ask the running server to render its
    // own registry (the same text GET /metrics serves). Against a tenant
    // host, --tenant scopes the scrape to that tenant's own registry;
    // the bare form needs serve --operator-stats on.
    const auto port = static_cast<std::uint16_t>(std::stoul(flags.at("port")));
    net::RemoteChannel channel(port);
    cloud::StatsRequest req;
    req.format = optional_flag(flags, "format", "prom") == "json"
                     ? cloud::StatsFormat::kJson
                     : cloud::StatsFormat::kPrometheus;
    Bytes raw;
    if (flags.contains("tenant")) {
      tenant::ScopedTransport scoped(channel, flags.at("tenant"));
      raw = scoped.call(cloud::MessageType::kStats, req.serialize());
    } else {
      raw = channel.call(cloud::MessageType::kStats, req.serialize());
    }
    const auto resp = cloud::StatsResponse::deserialize(raw);
    std::fputs(resp.text.c_str(), stdout);
    return 0;
  }
  if (store::is_tenant_deployment(need(flags, "deploy"))) {
    const std::string dir = need(flags, "deploy");
    const tenant::TenantRegistry registry = store::load_tenant_registry(dir);
    std::printf("multi-tenant deployment %s (%zu tenants):\n", dir.c_str(),
                registry.size());
    for (const tenant::TenantConfig& config : registry.list()) {
      cloud::CloudServer server;
      const std::string ns = store::tenant_dir(dir, config.id);
      std::size_t rows = 0, files = 0;
      if (std::filesystem::is_directory(ns)) {
        store::load_deployment(ns, server);
        rows = server.index().num_rows();
        files = server.num_files();
      }
      std::printf("  %-20s %s  weight %llu  rate %llu/s  %zu rows, %zu files\n",
                  config.id.c_str(), config.enabled ? "enabled " : "DISABLED",
                  static_cast<unsigned long long>(config.quota.weight),
                  static_cast<unsigned long long>(config.quota.rate_per_sec),
                  rows, files);
    }
    return 0;
  }
  if (store::is_cluster_deployment(need(flags, "deploy"))) {
    const auto manifest = store::load_cluster_manifest(need(flags, "deploy"));
    std::printf("cluster deployment %s:\n", need(flags, "deploy").c_str());
    std::printf("  shards:          %u (x%u replicas)\n", manifest.num_shards,
                manifest.replicas);
    std::printf("  total index rows: %llu\n",
                static_cast<unsigned long long>(manifest.total_rows));
    std::printf("  total files:      %llu\n",
                static_cast<unsigned long long>(manifest.total_files));
    for (std::uint32_t i = 0; i < manifest.num_shards; ++i) {
      cloud::CloudServer shard;
      store::load_cluster_shard(need(flags, "deploy"), i, shard);
      std::printf("  shard%-2u: %zu rows, %zu files, %llu bytes\n", i,
                  shard.index().num_rows(), shard.num_files(),
                  static_cast<unsigned long long>(shard.stored_bytes()));
    }
    return 0;
  }
  cloud::CloudServer server;
  store::load_deployment(need(flags, "deploy"), server);
  std::printf("deployment %s:\n", need(flags, "deploy").c_str());
  std::printf("  index rows (keywords m): %zu\n", server.index().num_rows());
  std::printf("  index bytes:             %llu\n",
              static_cast<unsigned long long>(server.index().byte_size()));
  std::printf("  encrypted files:         %zu\n", server.num_files());
  std::printf("  total stored bytes:      %llu\n",
              static_cast<unsigned long long>(server.stored_bytes()));
  return 0;
}

// One traced query end to end. With --chaos R each shard gets a
// fault-injected primary replica (disconnect rate R) plus a clean
// standby, so the printed trace shows real retries and failovers.
int cmd_trace_query(const std::map<std::string, std::string>& flags) {
  const cloud::DataOwner owner = restore_owner(flags);
  const double chaos = std::stod(optional_flag(flags, "chaos", "0"));
  obs::TraceRecorder recorder;
  // Profile the one query so the span tree can be followed by a
  // per-stage cost breakdown (trapdoor OPSE descent, rank, serialize).
  obs::Profiler::global().set_enabled(true);

  const auto run = [&](cloud::Transport& channel) {
    const Bytes user_key = crypto::random_bytes(32);
    const auto credentials = cloud::AuthorizationService::open(
        user_key, "cli", owner.enroll_user(user_key, "cli"));
    cloud::DataUser user(credentials, channel);
    user.set_trace_recorder(&recorder);
    const auto top_k = static_cast<std::size_t>(
        std::stoul(optional_flag(flags, "top-k", "10")));
    const auto results = user.ranked_search(need(flags, "keyword"), top_k);
    std::printf("retrieved %zu files; trace %016llx:\n", results.size(),
                static_cast<unsigned long long>(recorder.trace_id()));
  };

  if (store::is_cluster_deployment(need(flags, "deploy"))) {
    cluster::LocalCluster local;
    local.manifest = store::load_cluster_manifest(need(flags, "deploy"));
    std::vector<std::unique_ptr<cluster::ReplicaSet>> shards;
    for (std::uint32_t i = 0; i < local.manifest.num_shards; ++i) {
      auto server = std::make_unique<cloud::CloudServer>();
      store::load_cluster_shard(need(flags, "deploy"), i, *server);
      auto set = std::make_unique<cluster::ReplicaSet>();
      if (chaos > 0.0) {
        fault::FaultSpec spec;
        spec.disconnect_rate = std::min(chaos, 1.0);
        spec.seed = 1 + i;
        set->add_replica(std::make_unique<fault::FaultInjectingTransport>(
            std::make_unique<cloud::Channel>(*server), spec));
        set->add_replica(std::make_unique<cloud::Channel>(*server));
      } else {
        set->add_replica(std::make_unique<cloud::Channel>(*server));
      }
      local.servers.push_back(std::move(server));
      shards.push_back(std::move(set));
    }
    local.coordinator = std::make_unique<cluster::ClusterCoordinator>(
        local.manifest, std::move(shards));
    run(*local.coordinator);
  } else {
    cloud::CloudServer server;
    store::load_deployment(need(flags, "deploy"), server);
    if (chaos > 0.0)
      std::fprintf(stderr,
                   "note: --chaos needs a cluster deployment (no replica to fail"
                   " over to); tracing without faults\n");
    cloud::Channel channel(server);
    run(channel);
  }
  std::fputs(obs::format_trace(recorder.spans()).c_str(), stdout);
  const std::string profile = obs::Profiler::global().report();
  if (!profile.empty()) std::printf("\nper-stage profile:\n%s", profile.c_str());
  return 0;
}

// Fetches a running server's slow-query log and prints each offending
// trace (rsse trace --port N).
int cmd_trace_remote(const std::map<std::string, std::string>& flags) {
  const auto port = static_cast<std::uint16_t>(std::stoul(flags.at("port")));
  net::RemoteChannel channel(port);
  cloud::TraceRequest req;
  req.max_entries = static_cast<std::uint32_t>(
      std::stoul(optional_flag(flags, "max", "0")));
  const auto resp = cloud::TraceResponse::deserialize(
      channel.call(cloud::MessageType::kTrace, req.serialize()));
  if (resp.entries.empty()) {
    std::printf("slow-query log is empty (threshold off or no query over it)\n");
    return 0;
  }
  for (const auto& entry : resp.entries) {
    std::printf("%s took %.2f ms:\n", entry.operation.c_str(),
                entry.seconds * 1000.0);
    std::fputs(obs::format_trace(entry.spans).c_str(), stdout);
  }
  return 0;
}

int cmd_trace(const std::map<std::string, std::string>& flags) {
  if (flags.contains("port")) return cmd_trace_remote(flags);
  return cmd_trace_query(flags);
}

// Replays the query-recovery adversary offline against a transcript
// captured by `serve --transcript`: rebuilds the leakage ledger from the
// persisted records, derives background knowledge from a public docs
// directory, and prints the unsupervised attack's verdict. Needs no keys
// — exactly the honest-but-curious server's position.
int cmd_audit_attack(const std::map<std::string, std::string>& flags) {
  const auto records = store::load_transcript(need(flags, "transcript"));
  const analysis::LeakageLedger ledger = analysis::ledger_from_records(records);
  const ir::Corpus public_corpus = ir::load_directory(flags.at("attack"));
  if (public_corpus.size() == 0) {
    std::fprintf(stderr, "no background docs under %s\n",
                 flags.at("attack").c_str());
    return 1;
  }
  const auto background = analysis::BackgroundKnowledge::from_corpus(public_corpus);
  const auto result = analysis::run_query_recovery(ledger, background);
  std::printf("query-recovery attack on %s:\n",
              need(flags, "transcript").c_str());
  std::printf("  transcript records:       %zu\n", records.size());
  std::printf("  distinct queries (groups): %zu\n", result.groups);
  std::printf("  background keywords:      %zu (from %zu public docs)\n",
              background.num_keywords(), background.num_documents());
  std::printf("  row widths informative:   %s  (padding %s)\n",
              result.widths_informative ? "YES" : "no",
              result.widths_informative ? "leaks df through stored widths"
                                        : "hides them");
  std::printf("  confident guesses:        %zu of %zu (%.1f%%)\n",
              result.confident, result.groups,
              result.groups == 0 ? 0.0
                                 : 100.0 * static_cast<double>(result.confident) /
                                       static_cast<double>(result.groups));
  std::printf("  refinement rounds:        %zu\n", result.refinement_rounds);
  for (const analysis::QueryGuess& guess : result.guesses) {
    if (guess.confidence < 0.05 || guess.keyword.empty()) continue;
    std::printf("    group %-4zu -> %-20s confidence %.2f%s\n", guess.group,
                guess.keyword.c_str(), guess.confidence,
                guess.refined ? " (refined)" : "");
  }
  return 0;
}

// Prints the build-time leakage audit of a deployment — the paper's
// security claims as checkable numbers. Needs no keys: the audit holds
// aggregates only (never a keyword, score, or ciphertext).
int cmd_audit(const std::map<std::string, std::string>& flags) {
  if (flags.contains("attack")) return cmd_audit_attack(flags);
  const std::string dir = need(flags, "deploy");
  const auto audit = store::load_leakage_audit(dir);
  if (!audit) {
    std::fprintf(stderr,
                 "no audit.bin under %s — the deployment predates the leakage"
                 " audit; re-run rsse build to produce one\n",
                 dir.c_str());
    return 1;
  }
  const bool duplicates_ok = audit->opm_ciphertext_duplicates == 0;
  std::printf("leakage audit for %s:\n", dir.c_str());
  std::printf("  index rows (keywords m):      %llu\n",
              static_cast<unsigned long long>(audit->num_rows));
  std::printf("  genuine postings audited:     %llu\n",
              static_cast<unsigned long long>(audit->genuine_postings));
  std::printf("  OPM ciphertext duplicates:    %llu  [%s]  (Fig. 6: one-to-many"
              " mapping must not repeat)\n",
              static_cast<unsigned long long>(audit->opm_ciphertext_duplicates),
              duplicates_ok ? "PASS" : "FAIL");
  std::printf("  padding mode:                 %s\n", audit->padding_name());
  std::printf("  stored width entropy:         %.3f bits  (0 = padding hides"
              " row sizes completely)\n",
              audit->stored_width_entropy_bits);
  std::printf("  widest row:                   %llu postings\n",
              static_cast<unsigned long long>(audit->widest_row_postings));
  std::printf("    score-level min-entropy:    %.3f bits  (plaintext side of"
              " Ablation C)\n",
              audit->level_min_entropy_bits());
  std::printf("    OPM-value min-entropy:      %.3f bits  (after the"
              " one-to-many mapping)\n",
              audit->opm_min_entropy_bits());
  if (store::is_cluster_deployment(dir)) {
    const auto manifest = store::load_cluster_manifest(dir);
    std::printf("  cluster: %u shards — the audit covers the whole index\n",
                manifest.num_shards);
  } else {
    // Cross-check against the live artifact: what a curious server can
    // recompute from the stored index alone must agree with the audit.
    cloud::CloudServer server;
    store::load_deployment(dir, server);
    const auto shape = analysis::index_shape(server.index());
    std::printf("  stored index agrees: %zu rows, widths %zu..%zu, width"
                " entropy %.3f bits\n",
                shape.num_rows, shape.min_row_width, shape.max_row_width,
                shape.width_shannon_entropy);
  }
  return duplicates_ok ? 0 : 1;
}

// Tenant admin: init/add/rm/ls over the registry artifact of a
// multi-tenant deployment. Pure control plane — namespace data is only
// touched by `rm` (which deletes the tenant's directory and WAL).
int cmd_tenant(const std::string& sub,
               const std::map<std::string, std::string>& flags) {
  const std::string dir = need(flags, "deploy");
  if (sub == "init") {
    if (store::is_tenant_deployment(dir)) {
      std::fprintf(stderr, "%s is already a tenant deployment\n", dir.c_str());
      return 1;
    }
    store::save_tenant_registry(tenant::TenantRegistry{}, dir);
    std::printf("initialized empty tenant deployment at %s\n", dir.c_str());
    return 0;
  }
  tenant::TenantRegistry registry = store::load_tenant_registry(dir);
  if (sub == "add") {
    tenant::TenantConfig config;
    config.id = need(flags, "tenant");
    config.quota.rate_per_sec = std::stoull(optional_flag(flags, "rate", "0"));
    config.quota.burst = std::stoull(optional_flag(flags, "burst", "0"));
    config.quota.max_in_flight =
        std::stoull(optional_flag(flags, "max-in-flight", "0"));
    config.quota.weight = std::stoull(optional_flag(flags, "weight", "1"));
    config.quota.max_queued = std::stoull(optional_flag(flags, "max-queued", "0"));
    if (registry.contains(config.id)) {
      // Re-adding updates the quota (the common "tune the contract" op).
      registry.set_quota(config.id, config.quota);
      std::printf("updated quota for tenant %s\n", config.id.c_str());
    } else {
      registry.add(config);
      std::printf("registered tenant %s (populate with rsse build --tenant %s)\n",
                  config.id.c_str(), config.id.c_str());
    }
    store::save_tenant_registry(registry, dir);
    return 0;
  }
  if (sub == "rm") {
    const std::string id = need(flags, "tenant");
    registry.remove(id);
    store::save_tenant_registry(registry, dir);
    const std::string ns = store::tenant_dir(dir, id);
    std::error_code ec;
    std::filesystem::remove_all(ns, ec);
    std::filesystem::remove(store::wal_path(ns), ec);
    std::printf("removed tenant %s (namespace deleted)\n", id.c_str());
    return 0;
  }
  if (sub == "ls") {
    for (const tenant::TenantConfig& config : registry.list()) {
      std::printf("%-20s %s  rate %llu/s burst %llu  in-flight %llu"
                  "  weight %llu  queue %llu\n",
                  config.id.c_str(), config.enabled ? "enabled " : "DISABLED",
                  static_cast<unsigned long long>(config.quota.rate_per_sec),
                  static_cast<unsigned long long>(config.quota.burst),
                  static_cast<unsigned long long>(config.quota.max_in_flight),
                  static_cast<unsigned long long>(config.quota.weight),
                  static_cast<unsigned long long>(config.quota.max_queued));
    }
    if (registry.size() == 0) std::printf("no tenants registered\n");
    return 0;
  }
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    if (command == "tenant") {
      if (argc < 3) usage();
      return cmd_tenant(argv[2], parse_flags(argc, argv, 3));
    }
    const auto flags = parse_flags(argc, argv, 2);
    if (command == "keygen") return cmd_keygen(flags);
    if (command == "build") return cmd_build(flags);
    if (command == "search") return cmd_search(flags);
    if (command == "add") return cmd_add(flags);
    if (command == "update") return cmd_update(flags);
    if (command == "stats") return cmd_stats(flags);
    if (command == "trace") return cmd_trace(flags);
    if (command == "audit") return cmd_audit(flags);
    if (command == "serve") return cmd_serve(flags);
    usage();
  } catch (const rsse::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
