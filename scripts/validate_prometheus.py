#!/usr/bin/env python3
"""Validate Prometheus text exposition scraped during examples/cluster_search.

Reads the example's stdout (a file argument or stdin), extracts the block
between the `=== METRICS SCRAPE BEGIN ===` / `=== METRICS SCRAPE END ===`
markers, and checks that it is well-formed exposition format 0.0.4:

  * every family has a `# HELP` line immediately followed by `# TYPE`;
  * every sample line is `name{labels} value` with a parseable value and a
    name that belongs to a declared family;
  * histogram families expose `_bucket` series with non-decreasing
    cumulative counts ending in an `le="+Inf"` bucket, plus `_sum` and
    `_count`, with count == the +Inf bucket;
  * at least MIN_FAMILIES distinct metric families are present (the
    acceptance bar for the observability subsystem).

Exits 0 on success, 1 with a diagnostic on any violation. Stdlib only.
"""

import re
import sys

BEGIN = "=== METRICS SCRAPE BEGIN ==="
END = "=== METRICS SCRAPE END ==="
MIN_FAMILIES = 8

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def fail(message):
    print(f"validate_prometheus: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def base_family(name, families):
    """Maps a sample name to its declared family (histograms expose
    name_bucket / name_sum / name_count under family `name`)."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return None


def parse_labels(raw):
    if not raw:
        return {}
    inner = raw[1:-1].strip()
    if not inner:
        return {}
    labels = {}
    for part in inner.split(","):
        part = part.strip()
        if not LABEL_RE.match(part):
            fail(f"malformed label pair: {part!r}")
        key, value = part.split("=", 1)
        labels[key] = value[1:-1]
    return labels


def main():
    text = open(sys.argv[1]).read() if len(sys.argv) > 1 else sys.stdin.read()
    if BEGIN not in text or END not in text:
        fail("scrape markers not found in input")
    exposition = text.split(BEGIN, 1)[1].split(END, 1)[0]
    lines = [ln for ln in exposition.splitlines() if ln.strip()]
    if not lines:
        fail("empty exposition between markers")

    families = {}  # name -> type
    helped = set()
    pending_help = None
    samples = []  # (name, labels-dict, labels-raw, value)

    for line in lines:
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.fullmatch(parts[2]):
                fail(f"malformed HELP line: {line!r}")
            if parts[2] in helped:
                fail(f"duplicate HELP for family {parts[2]} "
                     "(scrape sources must use disjoint prefixes)")
            helped.add(parts[2])
            pending_help = parts[2]
        elif line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                fail(f"malformed TYPE line: {line!r}")
            if parts[2] != pending_help:
                fail(f"TYPE for {parts[2]} not preceded by its HELP line")
            families[parts[2]] = parts[3]
            pending_help = None
        elif line.startswith("#"):
            fail(f"unexpected comment line: {line!r}")
        else:
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"malformed sample line: {line!r}")
            try:
                value = float(m.group("value"))
            except ValueError:
                fail(f"unparseable sample value in: {line!r}")
            samples.append((m.group("name"), parse_labels(m.group("labels")),
                            m.group("labels") or "", value))

    for name, _labels, _raw, _value in samples:
        if base_family(name, families) is None:
            fail(f"sample {name} has no declared family")

    # Histogram structure: per (family, non-le labels) series, buckets are
    # cumulative, end with +Inf, and _count equals the +Inf bucket.
    for family, ftype in families.items():
        if ftype != "histogram":
            continue
        series = {}
        for name, labels, _raw, value in samples:
            if name != family + "_bucket":
                continue
            if "le" not in labels:
                fail(f"{family}_bucket sample without an le label")
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            series.setdefault(key, []).append((labels["le"], value))
        if not series:
            fail(f"histogram family {family} has no _bucket samples")
        counts = {name: {} for name in (family + "_sum", family + "_count")}
        for name, labels, _raw, value in samples:
            if name in counts:
                counts[name][tuple(sorted(labels.items()))] = value
        for key, buckets in series.items():
            if buckets[-1][0] != "+Inf":
                fail(f"{family}{dict(key)} buckets do not end with le=\"+Inf\"")
            previous = -1.0
            for le, value in buckets:
                if value < previous:
                    fail(f"{family}{dict(key)} bucket le={le} not cumulative")
                previous = value
            if key not in {k: None for k in counts[family + "_count"]}:
                # count series carries the same non-le labels
                pass
            count = counts[family + "_count"].get(key)
            if count is None:
                fail(f"{family}{dict(key)} missing _count series")
            if counts[family + "_sum"].get(key) is None:
                fail(f"{family}{dict(key)} missing _sum series")
            if count != buckets[-1][1]:
                fail(f"{family}{dict(key)} _count {count} != +Inf bucket "
                     f"{buckets[-1][1]}")

    if len(families) < MIN_FAMILIES:
        fail(f"only {len(families)} metric families, need >= {MIN_FAMILIES}: "
             + ", ".join(sorted(families)))

    print(f"validate_prometheus: OK — {len(families)} families, "
          f"{len(samples)} samples")


if __name__ == "__main__":
    main()
