#!/usr/bin/env python3
"""Run the whole bench fleet and merge the results into BENCH_RSSE.json.

Every bench binary prints exactly one JSON document on stdout (human
tables go to stderr).  This driver:

  1. discovers bench binaries under <build>/bench/,
  2. runs each one (RSSE_BENCH_QUICK=1 with --quick),
  3. validates each document against scripts/bench_schema.json,
  4. merges them into one commit-stamped trajectory document, and
  5. optionally gates on deterministic-counter drift vs a baseline.

Only the "counters" section is gated: the cost counters (HMAC calls,
HGD samples, OPM mappings, ...) are deterministic for a fixed workload,
so any drift beyond tolerance means the algorithm changed — timings are
never gated because CI machines are noisy.

Stdlib only; no third-party packages.
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCHEMA_PATH = os.path.join(REPO_ROOT, "scripts", "bench_schema.json")
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "scripts", "bench_baseline.json")

# Relative drift allowed on a nonzero counter before the gate fails.
REL_TOLERANCE = 0.10
# Absolute slack: differences up to this many units never fail (guards
# tiny counters where one extra call is >10%).
ABS_SLACK = 16


# --- mini JSON-schema validator (subset: type/const/required/properties/
#     additionalProperties-as-schema/minimum) -----------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "number": (int, float),
    "integer": int,
}


def validate(instance, schema, path="$"):
    """Return a list of error strings (empty when valid)."""
    errors = []
    if "const" in schema and instance != schema["const"]:
        errors.append("%s: expected %r, got %r" % (path, schema["const"], instance))
        return errors
    if "type" in schema:
        expected = _TYPES[schema["type"]]
        ok = isinstance(instance, expected)
        if ok and schema["type"] in ("number", "integer") and isinstance(instance, bool):
            ok = False  # bool is an int in Python; not in JSON
        if not ok:
            errors.append("%s: expected %s" % (path, schema["type"]))
            return errors
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append("%s: %r < minimum %r" % (path, instance, schema["minimum"]))
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append("%s: missing required member %r" % (path, key))
        props = schema.get("properties", {})
        for key, value in instance.items():
            child = "%s.%s" % (path, key)
            if key in props:
                errors.extend(validate(value, props[key], child))
            elif isinstance(schema.get("additionalProperties"), dict):
                errors.extend(validate(value, schema["additionalProperties"], child))
    return errors


# --- drift gate ---------------------------------------------------------


def counter_drift(baseline, current):
    """Compare two counters dicts; return a list of violation strings."""
    violations = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            continue  # new counter: informational, not a failure
        if name not in current:
            violations.append("counter %r disappeared" % name)
            continue
        base, cur = baseline[name], current[name]
        if base == 0:
            if cur != 0:
                violations.append("counter %r was 0, now %d" % (name, cur))
            continue
        diff = abs(cur - base)
        if diff <= ABS_SLACK:
            continue
        rel = diff / float(base)
        if rel > REL_TOLERANCE:
            violations.append(
                "counter %r drifted %.1f%% (%d -> %d, tolerance %.0f%%)"
                % (name, rel * 100, base, cur, REL_TOLERANCE * 100)
            )
    return violations


# --- driver -------------------------------------------------------------


def git_commit():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def discover(bench_dir, only):
    binaries = []
    for name in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, name)
        if not name.startswith("bench_"):
            continue
        if not (os.path.isfile(path) and os.access(path, os.X_OK)):
            continue
        if only and not any(pat in name for pat in only):
            continue
        binaries.append(path)
    return binaries


def run_bench(path, quick, timeout):
    env = dict(os.environ)
    if quick:
        env["RSSE_BENCH_QUICK"] = "1"
    else:
        env.pop("RSSE_BENCH_QUICK", None)
    proc = subprocess.run(
        [path], env=env, capture_output=True, text=True, timeout=timeout
    )
    if proc.returncode != 0:
        raise RuntimeError(
            "%s exited %d; stderr tail:\n%s"
            % (os.path.basename(path), proc.returncode, proc.stderr[-2000:])
        )
    return json.loads(proc.stdout)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--quick", action="store_true",
                        help="run with RSSE_BENCH_QUICK=1 (reduced workloads)")
    parser.add_argument("--out", default=os.path.join(REPO_ROOT, "BENCH_RSSE.json"))
    parser.add_argument("--baseline", default=None,
                        help="baseline BENCH_RSSE.json to gate counter drift "
                             "against (default scripts/bench_baseline.json "
                             "when it exists)")
    parser.add_argument("--no-gate", action="store_true",
                        help="skip the counter drift gate even if a baseline exists")
    parser.add_argument("--write-baseline", action="store_true",
                        help="also write the merged document to scripts/bench_baseline.json")
    parser.add_argument("--timeout", type=float, default=1800.0,
                        help="per-binary timeout in seconds")
    parser.add_argument("--only", action="append", default=[],
                        help="substring filter on binary names (repeatable)")
    args = parser.parse_args()

    bench_dir = os.path.join(args.build_dir, "bench")
    if not os.path.isdir(bench_dir):
        print("error: %s not found — build the project first" % bench_dir,
              file=sys.stderr)
        return 2

    with open(SCHEMA_PATH) as f:
        schema = json.load(f)

    binaries = discover(bench_dir, args.only)
    if not binaries:
        print("error: no bench binaries found in %s" % bench_dir, file=sys.stderr)
        return 2

    benches = {}
    failures = []
    for path in binaries:
        name = os.path.basename(path)
        print("running %s%s ..." % (name, " (quick)" if args.quick else ""),
              file=sys.stderr, flush=True)
        try:
            doc = run_bench(path, args.quick, args.timeout)
        except subprocess.TimeoutExpired:
            failures.append("%s: timed out after %.0fs" % (name, args.timeout))
            continue
        except (RuntimeError, json.JSONDecodeError) as err:
            failures.append("%s: %s" % (name, err))
            continue
        errors = validate(doc, schema)
        if errors:
            failures.append("%s: schema violations:\n  %s" % (name, "\n  ".join(errors)))
            continue
        benches[doc["bench"]] = doc

    if failures:
        print("\nFAILED benches:", file=sys.stderr)
        for failure in failures:
            print("  " + failure, file=sys.stderr)
        return 1

    merged = {
        "schema_version": 1,
        "commit": git_commit(),
        "quick": bool(args.quick),
        "benches": benches,
    }
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=False)
        f.write("\n")
    print("wrote %s (%d benches)" % (args.out, len(benches)), file=sys.stderr)

    if args.write_baseline:
        with open(DEFAULT_BASELINE, "w") as f:
            json.dump(merged, f, indent=2, sort_keys=False)
            f.write("\n")
        print("wrote %s" % DEFAULT_BASELINE, file=sys.stderr)

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    if baseline_path and not args.no_gate and not args.write_baseline:
        with open(baseline_path) as f:
            baseline = json.load(f)
        if baseline.get("quick") != merged["quick"]:
            print("warning: baseline quick=%s vs run quick=%s — skipping drift gate"
                  % (baseline.get("quick"), merged["quick"]), file=sys.stderr)
            return 0
        violations = []
        for bench_name, doc in benches.items():
            base_doc = baseline.get("benches", {}).get(bench_name)
            if base_doc is None:
                continue  # new bench: nothing to compare
            for v in counter_drift(base_doc["counters"], doc["counters"]):
                violations.append("%s: %s" % (bench_name, v))
        if violations:
            print("\nCOUNTER DRIFT (baseline %s):" % baseline_path, file=sys.stderr)
            for v in violations:
                print("  " + v, file=sys.stderr)
            return 1
        print("counter drift gate passed (baseline %s)" % baseline_path,
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
