#!/usr/bin/env python3
"""Soft line-coverage floor over the crypto-bearing core.

Reads an `llvm-cov export -summary-only` JSON document and checks the
aggregate line coverage of the directories we consider the scheme's
correctness core (src/sse, src/cloud/protocol.cpp). The floor is soft
on purpose: coverage must not silently erode, but a refactor that moves
lines around should not hard-fail CI on a fraction of a percent, so the
gate fails only below FLOOR_PERCENT.

Usage: check_coverage.py coverage.json
"""

import json
import sys

# Aggregate line-coverage floor for the watched paths. The suite sits
# comfortably above this; the floor only catches real coverage loss.
FLOOR_PERCENT = 80.0

WATCHED_PREFIXES = ("src/sse/", "src/cloud/")


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_coverage.py <llvm-cov-export.json>", file=sys.stderr)
        return 2
    with open(sys.argv[1], "r", encoding="utf-8") as handle:
        doc = json.load(handle)

    covered = 0
    total = 0
    rows = []
    for datum in doc.get("data", []):
        for entry in datum.get("files", []):
            path = entry.get("filename", "")
            marker = path.find("src/")
            if marker < 0:
                continue
            rel = path[marker:]
            if not rel.startswith(WATCHED_PREFIXES):
                continue
            lines = entry.get("summary", {}).get("lines", {})
            covered += lines.get("covered", 0)
            total += lines.get("count", 0)
            rows.append((rel, lines.get("percent", 0.0)))

    if total == 0:
        print("check_coverage: no watched files in the export", file=sys.stderr)
        return 2

    percent = 100.0 * covered / total
    for rel, file_percent in sorted(rows):
        print(f"  {file_percent:6.2f}%  {rel}")
    print(f"watched line coverage: {percent:.2f}% "
          f"({covered}/{total} lines, floor {FLOOR_PERCENT:.1f}%)")
    if percent < FLOOR_PERCENT:
        print("check_coverage: below the floor — add tests or lower the "
              "floor deliberately in scripts/check_coverage.py",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
