// Ablation F — the padding design space. Fig. 3 pads every posting list
// to nu, so a curious server learns nothing about list lengths beyond
// (m, nu) — at the cost of a worst-case-square index. The alternatives
// trade storage for bounded leakage. For each policy we report the index
// size and the row-length distribution the server observes, with its
// Shannon/min entropy (higher entropy of observed widths = more length
// information leaking).
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "sse/keys.h"
#include "sse/rsse_scheme.h"

int main() {
  using namespace rsse;
  bench::banner("Ablation F — padding policy: storage vs list-length leakage");

  auto corpus_opts = bench::fig4_corpus_options();
  if (bench::quick()) {
    corpus_opts.num_documents = 250;
    corpus_opts.injected[0].document_count = 250;
  }
  const ir::Corpus corpus = ir::generate_corpus(corpus_opts);
  const sse::RsseScheme scheme(sse::keygen());
  const auto reference = scheme.build_index(corpus);  // fixes the quantizer

  struct Mode {
    const char* name;
    const char* json_key;
    sse::PaddingMode mode;
  };
  const Mode modes[] = {
      {"full-nu (paper)", "full_nu", sse::PaddingMode::kFullNu},
      {"power-of-two", "power_of_two", sse::PaddingMode::kPowerOfTwo},
      {"none", "none", sse::PaddingMode::kNone},
  };

  auto policies = bench::Json::object();
  bench::human("\n%-18s %12s %14s %16s %18s\n", "policy", "index MB",
              "distinct widths", "width entropy", "true-len entropy");
  for (const Mode& m : modes) {
    const auto built = scheme.build_index(
        corpus, reference.quantizer, sse::RsseScheme::BuildOptions{1, m.mode});
    // The server's observation: the multiset of row widths.
    std::map<std::size_t, std::size_t> width_counts;
    for (const Bytes& label : built.index.labels())
      ++width_counts[built.index.row(label)->size()];
    double total = 0;
    for (const auto& [w, c] : width_counts) total += static_cast<double>(c);
    double entropy = 0.0;
    for (const auto& [w, c] : width_counts) {
      const double p = static_cast<double>(c) / total;
      entropy -= p * std::log2(p);
    }
    // How much of the true length distribution the widths reveal: with
    // no padding the width IS the length (full leak); with full-nu the
    // width distribution is a point mass (zero leak).
    bench::human("%-18s %12.2f %14zu %15.3f b %17s\n", m.name,
                static_cast<double>(built.index.byte_size()) / (1024.0 * 1024.0),
                width_counts.size(), entropy,
                m.mode == sse::PaddingMode::kNone
                    ? "all"
                    : (m.mode == sse::PaddingMode::kFullNu ? "none" : "log2 bucket"));
    auto p = bench::Json::object();
    p.set("index_bytes", built.index.byte_size());
    p.set("distinct_widths", width_counts.size());
    p.set("width_entropy_bits", entropy);
    p.set("audit_opm_duplicates", built.audit.opm_ciphertext_duplicates);
    p.set("audit_width_entropy_bits", built.audit.stored_width_entropy_bits);
    policies.set(m.json_key, std::move(p));
  }
  bench::human("\n(the paper chooses full-nu; power-of-two keeps ~the index small\n"
              " while quantizing lengths to log2 buckets — a practical middle\n"
              " ground the paper leaves implicit)\n");

  auto results = bench::Json::object();
  results.set("files", corpus.size());
  results.set("policies", std::move(policies));
  bench::emit(bench::doc("ablation_padding", "Ablation F")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
