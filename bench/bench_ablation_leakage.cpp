// Ablation C — the Sec. V-A leakage argument quantified. For the Fig. 4
// score multiset we compare what a curious server sees under three score
// encodings:
//   plaintext levels            (no protection: full distribution),
//   deterministic OPSE          (duplicate structure preserved — the
//                                keyword-fingerprinting risk of Fig. 4),
//   one-to-many OPM             (duplicates destroyed; distribution
//                                re-randomized per key).
// Reported measures: value-level max duplicates and min-entropy (the
// quantity eq. 3 bounds), plus the sensitivity of the OPM histogram to
// the key (re-randomization).
#include <cmath>
#include <map>
#include <cstdio>

#include "analysis/fingerprint.h"
#include "bench_common.h"
#include "crypto/csprng.h"
#include "ir/analyzer.h"
#include "opse/bclo_opse.h"
#include "opse/opm.h"
#include "opse/quantizer.h"
#include "util/histogram.h"
#include "util/stats.h"

int main() {
  using namespace rsse;
  bench::banner("Ablation C — leakage: plaintext vs deterministic OPSE vs OPM");

  const ir::Corpus corpus = ir::generate_corpus(bench::fig4_corpus_options());
  const auto index = ir::InvertedIndex::build(corpus, ir::Analyzer());
  const std::vector<double> scores = bench::keyword_scores(index, bench::kKeyword);
  const auto quantizer = opse::ScoreQuantizer::from_scores(scores, 128);

  const opse::OpeParams params{128, 1ull << 46};
  const Bytes key = crypto::random_bytes(32);
  const opse::BcloOpse det(key, params);
  const opse::OneToManyOpm opm(key, params);

  std::vector<std::uint64_t> plain;
  std::vector<std::uint64_t> det_values;
  std::vector<std::uint64_t> opm_values;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const std::uint64_t level = quantizer.quantize(scores[i]);
    plain.push_back(level);
    det_values.push_back(det.encrypt(level));
    opm_values.push_back(opm.map(level, i));
  }

  auto encodings = bench::Json::object();
  const auto report = [&](const char* name, const char* json_key,
                          const std::vector<std::uint64_t>& v) {
    const std::uint64_t dup = max_duplicates(v);
    const double total = static_cast<double>(v.size());
    const double min_entropy = -std::log2(static_cast<double>(dup) / total);
    bench::human("%-30s %14llu %14zu %14.2f\n", name,
                static_cast<unsigned long long>(dup), distinct_count(v), min_entropy);
    auto e = bench::Json::object();
    e.set("max_duplicates", dup);
    e.set("distinct", distinct_count(v));
    e.set("min_entropy_bits", min_entropy);
    encodings.set(json_key, std::move(e));
  };
  bench::human("\n%-30s %14s %14s %14s\n", "encoding", "max dups", "distinct",
              "min-entropy");
  report("plaintext levels", "plaintext", plain);
  report("deterministic OPSE", "deterministic_opse", det_values);
  report("one-to-many OPM", "one_to_many_opm", opm_values);
  bench::human("(OPM reaches the maximum min-entropy log2(%zu) = %.2f bits: every\n"
              " posting's encrypted score is unique)\n",
              scores.size(), std::log2(static_cast<double>(scores.size())));

  // Key sensitivity of the binned OPM output: same scores, 5 random keys.
  bench::human("\nOPM histogram key-sensitivity (L1 distance between 128-bin\n"
              "histograms of the same scores under independent keys):\n");
  const double range_max = static_cast<double>(params.range_size);
  const int kKeyTrials = bench::scaled(5, 3);
  std::vector<Histogram> histograms;
  for (int trial = 0; trial < kKeyTrials; ++trial) {
    const opse::OneToManyOpm keyed(crypto::random_bytes(32), params);
    Histogram h(0.0, range_max, 128);
    for (std::size_t i = 0; i < scores.size(); ++i)
      h.add(static_cast<double>(keyed.map(quantizer.quantize(scores[i]), i)));
    histograms.push_back(std::move(h));
  }
  for (std::size_t a = 0; a < histograms.size(); ++a) {
    for (std::size_t b = a + 1; b < histograms.size(); ++b) {
      std::uint64_t l1 = 0;
      for (std::size_t bin = 0; bin < 128; ++bin) {
        const auto ca = histograms[a].count(bin);
        const auto cb = histograms[b].count(bin);
        l1 += ca > cb ? ca - cb : cb - ca;
      }
      bench::human("  keys %zu vs %zu: L1 = %llu / %zu\n", a, b,
                  static_cast<unsigned long long>(l1), 2 * scores.size());
    }
  }

  // The Fig. 4 attack run end to end: an adversary with the plaintext
  // level profiles of 3 candidate keywords tries to identify which
  // posting list it is looking at (analysis/fingerprint.h).
  bench::human("\nkeyword-fingerprinting attack (frequency analysis over the\n"
              "encrypted score multiset; 3 candidate keywords, 20 trials each):\n");
  {
    ir::CorpusGenOptions atk = bench::fig4_corpus_options();
    atk.num_documents = 400;
    atk.injected.clear();
    atk.injected.push_back(ir::InjectedKeyword{"network", 380, 0.15, 120});
    atk.injected.push_back(ir::InjectedKeyword{"protocol", 380, 0.55, 40});
    atk.injected.push_back(ir::InjectedKeyword{"cipher", 380, 0.85, 10});
    const ir::Corpus atk_corpus = ir::generate_corpus(atk);
    const auto atk_index = ir::InvertedIndex::build(atk_corpus, ir::Analyzer());
    std::vector<double> atk_scores;
    for (const char* kw : {"network", "protocol", "cipher"})
      for (const auto& p : *atk_index.postings(kw))
        atk_scores.push_back(
            ir::score_single_keyword(p.tf, atk_index.doc_length(p.file)));
    const auto atk_quant = opse::ScoreQuantizer::from_scores(atk_scores, 128);

    std::vector<analysis::KeywordFingerprinter::Candidate> candidates;
    std::map<std::string, std::vector<std::uint64_t>> level_sets;
    for (const char* kw : {"network", "protocol", "cipher"}) {
      analysis::KeywordFingerprinter::Candidate c;
      c.keyword = kw;
      for (const auto& p : *atk_index.postings(kw))
        c.score_values.push_back(atk_quant.quantize(
            ir::score_single_keyword(p.tf, atk_index.doc_length(p.file))));
      level_sets[kw] = c.score_values;
      candidates.push_back(std::move(c));
    }
    const analysis::KeywordFingerprinter attacker(std::move(candidates));

    int det_wins = 0;
    int opm_wins = 0;
    int trials = 0;
    const int kAttackTrials = bench::scaled(20, 5);
    for (const auto& [kw, levels] : level_sets) {
      for (int t = 0; t < kAttackTrials; ++t) {
        ++trials;
        const opse::BcloOpse det_cipher(crypto::random_bytes(32), {128, 1ull << 46});
        std::vector<std::uint64_t> det_observed;
        for (std::uint64_t level : levels) det_observed.push_back(det_cipher.encrypt(level));
        if (attacker.best_match(det_observed) == kw) ++det_wins;

        const opse::OneToManyOpm opm_cipher(crypto::random_bytes(32), {128, 1ull << 46});
        std::vector<std::uint64_t> opm_observed;
        for (std::size_t i = 0; i < levels.size(); ++i)
          opm_observed.push_back(opm_cipher.map(levels[i], i));
        if (attacker.best_match(opm_observed) == kw) ++opm_wins;
      }
    }
    bench::human("  deterministic OPSE: %d/%d identified (chance: %.0f%%)\n",
                det_wins, trials, 100.0 / 3.0);
    bench::human("  one-to-many OPM:    %d/%d identified\n", opm_wins, trials);

    auto attack = bench::Json::object();
    attack.set("trials", trials);
    attack.set("det_identified", det_wins);
    attack.set("opm_identified", opm_wins);

    auto results = bench::Json::object();
    results.set("scores", scores.size());
    results.set("encodings", std::move(encodings));
    results.set("fingerprint_attack", std::move(attack));
    bench::emit(bench::doc("ablation_leakage", "Ablation C")
                    .set("results", std::move(results))
                    .set("counters", bench::counters_json()));
  }
  return 0;
}
