// Related-work comparison (Sec. VII, executable): the searchable-
// encryption lineage the paper builds on, measured on one corpus.
//
//   SWP'00 [6]      boolean, search linear in TOTAL WORDS
//   Goh'03 [7]      boolean, search linear in FILES
//   Basic (SSE'06)  boolean+scores, one row lookup, user ranks
//   RSSE (paper)    ranked,  one row lookup, server ranks top-k
//   plaintext       ranked,  no protection (lower bound)
//
// Reported: index/collection storage, per-search latency, and what the
// user gets back (matching set vs ranked top-k).
#include <cstdio>

#include "baseline/curtmola_sse1.h"
#include "baseline/goh_index.h"
#include "baseline/plaintext_search.h"
#include "baseline/swp.h"
#include "bench_common.h"
#include "ir/analyzer.h"
#include "sse/basic_scheme.h"
#include "sse/rsse_scheme.h"
#include "util/stats.h"
#include "util/stopwatch.h"

int main() {
  using namespace rsse;
  bench::banner("Related schemes — search cost across the SSE lineage");

  auto opts = bench::fig4_corpus_options(150);
  opts.num_documents = bench::scaled<std::size_t>(400, 200);
  opts.injected[0].document_count = bench::scaled<std::size_t>(250, 125);
  const ir::Corpus corpus = ir::generate_corpus(opts);
  const ir::Analyzer analyzer;

  bench::human("corpus: %zu files, %.1f MB\n", corpus.size(),
              static_cast<double>(corpus.total_bytes()) / (1024.0 * 1024.0));

  // --- build all five -------------------------------------------------
  bench::human("building all five schemes...\n");
  const baseline::SwpScheme swp(baseline::SwpScheme::generate_key());
  std::map<std::uint64_t, std::vector<Bytes>> swp_store;
  std::uint64_t total_words = 0;
  std::uint64_t swp_bytes = 0;
  for (const ir::Document& doc : corpus.documents()) {
    const auto words = analyzer.analyze(doc.text);
    total_words += words.size();
    auto blocks = swp.encrypt_words(doc.id, words);
    swp_bytes += blocks.size() * baseline::kSwpBlockSize;
    swp_store.emplace(ir::value(doc.id), std::move(blocks));
  }

  const baseline::GohScheme goh(Bytes(32, 0x33));
  const baseline::GohIndex goh_index = goh.build_index(corpus);

  const sse::MasterKey key = sse::keygen();
  const sse::BasicScheme basic(key);
  const sse::SecureIndex basic_index = basic.build_index(corpus);

  const baseline::CurtmolaSse1 sse1(key.x, key.y, key.z);
  const baseline::Sse1Index sse1_index = sse1.build_index(corpus);

  const sse::RsseScheme rsse(key);
  const auto rsse_built = rsse.build_index(corpus, sse::RsseScheme::BuildOptions{4});

  const baseline::PlaintextSearchEngine plaintext(corpus);

  // --- measure --------------------------------------------------------
  const int kReps = bench::scaled(20, 5);
  const auto time_ms = [&](auto&& fn) {
    RunningStats stats;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      fn();
      stats.add(watch.elapsed_ms());
    }
    return stats.mean();
  };

  const double swp_ms = time_ms([&] {
    volatile auto n = baseline::SwpScheme::search(swp_store, swp.token(bench::kKeyword)).size();
    (void)n;
  });
  const double goh_ms = time_ms([&] {
    volatile auto n = goh_index.search(goh.trapdoor(bench::kKeyword)).size();
    (void)n;
  });
  const auto basic_trapdoor = basic.trapdoor(bench::kKeyword);
  const double basic_ms = time_ms([&] {
    volatile auto n = sse::BasicScheme::search(basic_index, basic_trapdoor).size();
    (void)n;
  });
  const auto sse1_trapdoor = sse1.trapdoor(bench::kKeyword);
  const double sse1_ms = time_ms([&] {
    volatile auto n = sse1_index.search(sse1_trapdoor).size();
    (void)n;
  });
  const auto rsse_trapdoor = rsse.trapdoor(bench::kKeyword);
  const double rsse_ms = time_ms([&] {
    volatile auto n = sse::RsseScheme::search(rsse_built.index, rsse_trapdoor, 10).size();
    (void)n;
  });
  const double plain_ms = time_ms([&] {
    volatile auto n = plaintext.search(bench::kKeyword, 10).size();
    (void)n;
  });

  const auto mb = [](std::uint64_t b) { return static_cast<double>(b) / (1024.0 * 1024.0); };
  bench::human("\n%-22s %12s %14s %10s %s\n", "scheme", "index MB", "search ms",
              "ranked?", "search complexity");
  bench::human("%-22s %12.2f %14.3f %10s %s\n", "SWP'00 [6]", mb(swp_bytes), swp_ms,
              "no", "O(total words)");
  bench::human("%-22s %12.2f %14.3f %10s %s\n", "Goh'03 [7]", mb(goh_index.byte_size()),
              goh_ms, "no", "O(files)");
  bench::human("%-22s %12.2f %14.3f %10s %s\n", "SSE-1 (CCS'06) [10]",
              mb(sse1_index.byte_size()), sse1_ms, "user-side", "O(log m + N_i)");
  bench::human("%-22s %12.2f %14.3f %10s %s\n", "Basic scheme (SSE)",
              mb(basic_index.byte_size()), basic_ms, "user-side", "O(log m + nu)");
  bench::human("%-22s %12.2f %14.3f %10s %s\n", "RSSE (this paper)",
              mb(rsse_built.index.byte_size()), rsse_ms, "server",
              "O(log m + nu), top-k");
  bench::human("%-22s %12s %14.3f %10s %s\n", "plaintext", "-", plain_ms, "yes",
              "O(log m + N_i)");
  bench::human("\ntotal indexed words: %llu; keyword matches %zu files\n",
              static_cast<unsigned long long>(total_words),
              opts.injected[0].document_count);
  bench::human("(who-wins shape from the paper's related work: the SWP scan is\n"
              " slowest, Goh scales with file count, the index-based schemes are\n"
              " near-plaintext; SSE-1's linked-chain array stores only the true\n"
              " postings where the padded schemes store m*nu; only RSSE returns\n"
              " a server-ranked top-k.)\n");

  auto schemes = bench::Json::object();
  const auto scheme_json = [](std::uint64_t index_bytes, double search_ms) {
    auto s = bench::Json::object();
    s.set("index_bytes", index_bytes);
    s.set("search_ms", search_ms);
    return s;
  };
  schemes.set("swp00", scheme_json(swp_bytes, swp_ms));
  schemes.set("goh03", scheme_json(goh_index.byte_size(), goh_ms));
  schemes.set("sse1_ccs06", scheme_json(sse1_index.byte_size(), sse1_ms));
  schemes.set("basic", scheme_json(basic_index.byte_size(), basic_ms));
  schemes.set("rsse", scheme_json(rsse_built.index.byte_size(), rsse_ms));
  schemes.set("plaintext", scheme_json(0, plain_ms));

  auto results = bench::Json::object();
  results.set("files", corpus.size());
  results.set("total_indexed_words", total_words);
  results.set("schemes", std::move(schemes));
  bench::emit(bench::doc("related_schemes", "Sec. VII comparison")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
