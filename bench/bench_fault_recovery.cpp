// Fault-recovery bench: ranked-search latency quantiles and success rate
// under injected transport faults, swept over the fault rate. Each shard
// is served by a replica pair whose preferred endpoint runs behind a
// FaultInjectingTransport (hangs, disconnects, error frames, torn and
// bit-flipped responses); the sibling is healthy. The coordinator's
// per-attempt budget plus failover turn most injected faults into a
// bounded latency bump instead of a failure — this bench measures how
// big the bump is and how much survives end to end. Emits a JSON
// document so the recovery figure can be regenerated from the output.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cloud/data_owner.h"
#include "cluster/coordinator.h"
#include "fault/fault_transport.h"
#include "ir/query_workload.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace {

struct Row {
  double fault_rate = 0.0;
  double success_rate = 0.0;
  rsse::bench::LatencySummary latency;
  // Registry counters after the sweep: what the cluster's own metrics say
  // the chaos cost (same numbers a /metrics scrape would show).
  std::uint64_t failovers = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t deadline_failures = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
};

// The injected mix at a given total rate: mostly hangs (the nastiest
// fault — they consume the whole per-attempt budget), the rest split
// across disconnects, error frames and response corruption.
rsse::fault::FaultSpec mix_at(double total_rate, std::uint64_t seed) {
  rsse::fault::FaultSpec spec;
  spec.delay_rate = total_rate * 0.4;
  spec.disconnect_rate = total_rate * 0.2;
  spec.error_rate = total_rate * 0.2;
  spec.truncate_rate = total_rate * 0.1;
  spec.bit_flip_rate = total_rate * 0.1;
  spec.delay_min = std::chrono::milliseconds(200);  // >> attempt budget:
  spec.delay_max = std::chrono::milliseconds(400);  // a hang, not jitter
  spec.seed = seed;
  return spec;
}

}  // namespace

int main() {
  using namespace rsse;
  bench::banner("Fault recovery — ranked top-10 latency vs injected fault rate");

  auto opts = bench::fig4_corpus_options(200);
  opts.num_documents = 300;
  opts.max_tokens = 500;
  opts.injected[0].document_count = 250;
  const ir::Corpus corpus = ir::generate_corpus(opts);

  cloud::DataOwner owner;
  cloud::CloudServer server;
  bench::human("building index (%zu files)...\n", corpus.size());
  owner.outsource_rsse(corpus, server);

  const auto inverted = ir::InvertedIndex::build(corpus, owner.rsse().analyzer());
  ir::QueryWorkloadOptions wl;
  wl.num_queries = bench::scaled<std::size_t>(400, 150);
  wl.zipf_exponent = 1.1;
  wl.seed = 19;
  const ir::QueryWorkload workload(inverted, wl);
  std::vector<Bytes> requests;
  requests.reserve(workload.queries().size());
  for (const std::string& q : workload.queries()) {
    const sse::Trapdoor t{owner.rsse().row_label(q), owner.rsse().row_key(q)};
    requests.push_back(cloud::RankedSearchRequest{t, 10}.serialize());
  }

  constexpr std::uint32_t kShards = 2;
  constexpr auto kAttemptBudget = std::chrono::milliseconds(50);
  constexpr auto kQueryBudget = std::chrono::milliseconds(2000);
  bench::human("workload: %zu queries, %u shards x 2 replicas,"
              " %lld ms attempt budget, %lld ms query budget\n\n",
              requests.size(), kShards,
              static_cast<long long>(kAttemptBudget.count()),
              static_cast<long long>(kQueryBudget.count()));

  std::vector<Row> rows;
  for (const double fault_rate : {0.0, 0.05, 0.20}) {
    const cluster::ShardMap map(kShards);
    auto indexes = map.split_index(server.index());
    auto file_sets = map.split_files(server.files());
    std::vector<std::unique_ptr<cloud::CloudServer>> servers;
    std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
    for (std::uint32_t i = 0; i < kShards; ++i) {
      servers.push_back(std::make_unique<cloud::CloudServer>());
      servers.back()->store(std::move(indexes[i]), std::move(file_sets[i]));
      auto set = std::make_unique<cluster::ReplicaSet>();
      // Preferred replica: faulty. Sibling: healthy failover target.
      set->add_replica(std::make_unique<fault::FaultInjectingTransport>(
          std::make_unique<cloud::Channel>(*servers.back()),
          mix_at(fault_rate, 7 + i)));
      set->add_replica(std::make_unique<cloud::Channel>(*servers.back()));
      sets.push_back(std::move(set));
    }
    cluster::ClusterManifest manifest;
    manifest.num_shards = kShards;
    manifest.replicas = 2;
    manifest.total_rows = server.index().num_rows();
    manifest.total_files = server.num_files();
    cluster::CoordinatorOptions options;
    options.retry.base_backoff = std::chrono::milliseconds(0);
    options.retry.max_backoff = std::chrono::milliseconds(1);
    options.retry.attempt_timeout = kAttemptBudget;
    options.query_timeout = kQueryBudget;
    cluster::ClusterCoordinator coordinator(manifest, std::move(sets), options);

    std::vector<double> latencies;
    latencies.reserve(requests.size());
    std::size_t successes = 0;
    for (const Bytes& request : requests) {
      const Stopwatch watch;
      try {
        (void)coordinator.call(cloud::MessageType::kRankedSearch, request);
        ++successes;
        latencies.push_back(watch.elapsed_ms());
      } catch (const Error&) {
        // typed failure (deadline / protocol / parse): counted, not timed
      }
    }

    Row row;
    row.fault_rate = fault_rate;
    row.success_rate = static_cast<double>(successes) /
                       static_cast<double>(requests.size());
    row.latency = bench::summarize_latencies(latencies);
    for (std::uint32_t s = 0; s < kShards; ++s) {
      row.failovers += coordinator.shard(s).failovers();
      row.failed_attempts += coordinator.shard(s).failed_attempts();
      row.deadline_failures += coordinator.shard(s).deadline_failures();
    }
    // Wire traffic from the coordinator's own registry (registration is
    // idempotent: same name = same counter the serving path increments).
    row.bytes_up =
        coordinator.registry().counter("rsse_cluster_bytes_up_total", "").value();
    row.bytes_down =
        coordinator.registry().counter("rsse_cluster_bytes_down_total", "").value();
    rows.push_back(row);

    bench::human("%5.0f%% faults: %6.1f%% ok   p50 %7.3f ms   p95 %7.3f ms"
                "   p99 %7.3f ms   (%llu failovers, %llu failed attempts,"
                " %llu deadline hits)\n",
                fault_rate * 100, row.success_rate * 100, row.latency.p50,
                row.latency.p95, row.latency.p99,
                static_cast<unsigned long long>(row.failovers),
                static_cast<unsigned long long>(row.failed_attempts),
                static_cast<unsigned long long>(row.deadline_failures));
  }

  auto json_rows = bench::Json::array();
  for (const Row& r : rows) {
    auto row = bench::Json::object();
    row.set("fault_rate", r.fault_rate);
    row.set("success_rate", r.success_rate);
    row.set("p50_ms", r.latency.p50);
    row.set("p95_ms", r.latency.p95);
    row.set("p99_ms", r.latency.p99);
    row.set("failovers", r.failovers);
    row.set("failed_attempts", r.failed_attempts);
    row.set("deadline_failures", r.deadline_failures);
    row.set("bytes_up", r.bytes_up);
    row.set("bytes_down", r.bytes_down);
    json_rows.push(std::move(row));
  }
  auto results = bench::Json::object();
  results.set("queries", requests.size());
  results.set("shards", kShards);
  results.set("replicas", 2);
  results.set("attempt_budget_ms", kAttemptBudget.count());
  results.set("query_budget_ms", kQueryBudget.count());
  results.set("rows", std::move(json_rows));
  bench::emit(bench::doc("fault_recovery", "Fault recovery")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
