// Fig. 6 reproduction: effectiveness of the one-to-many order-preserving
// mapping. The SAME relevance-score set of keyword "network" (the Fig. 4
// sample) is mapped under two different random keys with |R| = 2^46; the
// paper shows (i) two differently randomized value distributions, and
// (ii) no duplicates after mapping. We print both 128-container
// histograms, the L1 distance between them, and the duplicate counts
// before/after.
#include <cstdio>

#include "bench_common.h"
#include "crypto/csprng.h"
#include "ir/analyzer.h"
#include "opse/opm.h"
#include "opse/quantizer.h"
#include "util/histogram.h"
#include "util/stats.h"

int main() {
  using namespace rsse;
  bench::banner("Fig. 6 — one-to-many order-preserving mapping, two random keys");

  const ir::Corpus corpus = ir::generate_corpus(bench::fig4_corpus_options());
  const auto index = ir::InvertedIndex::build(corpus, ir::Analyzer());
  const std::vector<double> scores = bench::keyword_scores(index, bench::kKeyword);
  const auto quantizer = opse::ScoreQuantizer::from_scores(scores, 128);

  const opse::OpeParams params{128, 1ull << 46};
  const opse::OneToManyOpm opm_a(crypto::random_bytes(32), params);
  const opse::OneToManyOpm opm_b(crypto::random_bytes(32), params);

  const double range_max = static_cast<double>(params.range_size);
  Histogram ha(0.0, range_max, 128);
  Histogram hb(0.0, range_max, 128);
  // Quick mode maps a prefix of the sample; the duplicate-freeness claim
  // is per-mapping, so it survives the truncation.
  const std::size_t n_map =
      bench::scaled<std::size_t>(scores.size(), std::min<std::size_t>(scores.size(), 250));
  std::vector<std::uint64_t> plain_levels;
  std::vector<std::uint64_t> values_a;
  std::vector<std::uint64_t> values_b;
  for (std::size_t i = 0; i < n_map; ++i) {
    const std::uint64_t level = quantizer.quantize(scores[i]);
    plain_levels.push_back(level);
    const std::uint64_t ca = opm_a.map(level, i);
    const std::uint64_t cb = opm_b.map(level, i);
    values_a.push_back(ca);
    values_b.push_back(cb);
    ha.add(static_cast<double>(ca));
    hb.add(static_cast<double>(cb));
  }

  bench::human("\nencrypted score distribution, key 1 (128 containers over R = 2^46):\n");
  bench::human("%s", ha.ascii_chart(32, 60).c_str());
  bench::human("\nencrypted score distribution, key 2:\n");
  bench::human("%s", hb.ascii_chart(32, 60).c_str());

  std::uint64_t l1 = 0;
  for (std::size_t bin = 0; bin < ha.bins(); ++bin) {
    const auto ca = ha.count(bin);
    const auto cb = hb.count(bin);
    l1 += ca > cb ? ca - cb : cb - ca;
  }
  bench::human("\nscores mapped:                  %zu\n", n_map);
  bench::human("plaintext max duplicates:       %llu\n",
              static_cast<unsigned long long>(max_duplicates(plain_levels)));
  bench::human("ciphertext duplicates (key 1):  %llu  (paper: none)\n",
              static_cast<unsigned long long>(
                  values_a.size() - distinct_count(values_a)));
  bench::human("ciphertext duplicates (key 2):  %llu  (paper: none)\n",
              static_cast<unsigned long long>(
                  values_b.size() - distinct_count(values_b)));
  bench::human("L1 distance between the two key histograms: %llu / %zu\n",
              static_cast<unsigned long long>(l1), 2 * n_map);
  bench::human("(large distance = the mapping is re-randomized per key, Fig. 6's claim)\n");

  auto results = bench::Json::object();
  results.set("scores_mapped", n_map);
  results.set("plaintext_max_duplicates", max_duplicates(plain_levels));
  results.set("ciphertext_duplicates_key1", values_a.size() - distinct_count(values_a));
  results.set("ciphertext_duplicates_key2", values_b.size() - distinct_count(values_b));
  results.set("histogram_l1_distance", l1);
  results.set("histogram_l1_max", 2 * n_map);
  bench::emit(bench::doc("fig6_opm_distribution", "Fig. 6")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
