// Update-durability bench (ISSUE 7): the cost of losing — and repairing —
// a replica in the middle of a durable update storm. One shard is served
// by three WAL-backed replica servers behind the deterministic SimNet;
// updates commit on a 2-of-3 write quorum. Mid-storm one replica dies,
// later crash-restarts from its WAL sidecar, and the anti-entropy worker
// backfills the suffix it missed while ranked searches keep flowing.
//
// Reported, per phase (healthy / stale window / catch-up / converged):
// ranked-search latency quantiles — plus the durability numbers the
// phases pivot on: WAL recovery time and records replayed on restart,
// catch-up convergence time, and backfill records/bytes from the
// coordinator's own rsse_cluster_* counters. Emits the usual JSON
// document so CI can track drift in recovery cost.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cloud/cloud_server.h"
#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cloud/protocol.h"
#include "cluster/coordinator.h"
#include "crypto/csprng.h"
#include "sim/sim_net.h"
#include "store/deployment.h"
#include "util/stopwatch.h"

namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

struct Phase {
  const char* name = "";
  std::size_t queries = 0;
  rsse::bench::LatencySummary latency;
};

rsse::bench::Json phase_json(const Phase& p) {
  auto j = rsse::bench::Json::object();
  j.set("phase", p.name);
  j.set("queries", p.queries);
  j.set("latency", rsse::bench::latency_json(p.latency));
  return j;
}

}  // namespace

int main() {
  using namespace rsse;
  bench::banner(
      "Update durability — replica kill, WAL restart and backfill repair");

  // A mid-sized corpus: big enough that snapshots would dwarf WAL
  // backfills (making the suffix repair worth measuring), small enough
  // that three full replicas load quickly.
  auto opts = bench::fig4_corpus_options(150);
  opts.num_documents = bench::scaled<std::size_t>(400, 120);
  opts.max_tokens = 600;
  opts.injected[0].document_count = opts.num_documents;
  const ir::Corpus corpus = ir::generate_corpus(opts);

  cloud::DataOwner owner;
  cloud::CloudServer template_server;
  bench::human("building index (%zu files)...\n", corpus.size());
  owner.outsource_rsse(corpus, template_server);
  const Bytes user_key = crypto::random_bytes(32);
  const cloud::UserCredentials credentials = cloud::AuthorizationService::open(
      user_key, "bench", owner.enroll_user(user_key, "bench"));

  const std::size_t storm = bench::scaled<std::size_t>(600, 192);
  const std::size_t kill_at = storm / 3;
  constexpr std::size_t kReplicas = 3;
  constexpr std::uint32_t kWriteQuorum = 2;

  // Pre-build every update delta (one small add each, every document
  // carrying the probe keyword) so serialization cost stays out of the
  // measured phases.
  std::vector<Bytes> payloads;
  payloads.reserve(storm);
  for (std::size_t i = 0; i < storm; ++i) {
    std::string text = std::string(bench::kKeyword) + " durability doc" +
                       std::to_string(i % 17);
    std::vector<ir::Document> adds = {
        ir::Document{ir::file_id(700000 + i), "storm.txt", std::move(text)}};
    cloud::UpdateRequest req;
    req.delta_id = i + 1;
    req.delta = owner.build_update(adds, {});
    payloads.push_back(req.serialize());
  }

  // One durable deployment, copied per replica so each server owns its
  // own directory and WAL sidecar — exactly the production layout the
  // store module persists.
  const std::string root =
      (fs::temp_directory_path() / "rsse_bench_update_durability").string();
  fs::remove_all(root);
  fs::create_directories(root);
  const std::string base_dir = root + "/base";
  store::save_deployment(template_server, base_dir);

  std::vector<std::string> dirs;
  std::vector<std::unique_ptr<cloud::CloudServer>> servers;
  for (std::size_t r = 0; r < kReplicas; ++r) {
    dirs.push_back(root + "/replica" + std::to_string(r));
    fs::copy(base_dir, dirs.back(), fs::copy_options::recursive);
    servers.push_back(std::make_unique<cloud::CloudServer>());
    store::load_deployment(dirs.back(), *servers.back());
    servers.back()->set_segment_policy(seg::SegPolicy{64});
  }

  sim::SimOptions sim_options;
  sim_options.seed = 0xD07ABLL;
  sim::SimNet net(sim_options);
  std::vector<sim::SimTransport*> handles;
  auto set = std::make_unique<cluster::ReplicaSet>();
  for (std::size_t r = 0; r < kReplicas; ++r) {
    auto transport = net.connect(*servers[r]);
    handles.push_back(transport.get());
    set->add_replica(std::move(transport));
  }
  std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
  sets.push_back(std::move(set));

  cluster::ClusterManifest manifest;
  manifest.num_shards = 1;
  manifest.replicas = kReplicas;
  manifest.total_rows = template_server.index().num_rows();
  manifest.total_files = template_server.num_files();
  cluster::CoordinatorOptions coptions;
  coptions.retry.max_attempts = 3;
  coptions.retry.base_backoff = 0ms;
  coptions.retry.max_backoff = 0ms;
  coptions.retry.down_cooldown = std::chrono::minutes(10);
  coptions.retry.write_quorum = kWriteQuorum;
  cluster::ClusterCoordinator coordinator(manifest, std::move(sets), coptions);
  cloud::DataUser user(credentials, coordinator);

  bench::human("workload: %zu updates (kill replica 2 at %zu), %zu replicas,"
               " write quorum %u\n\n",
               storm, kill_at, kReplicas, kWriteQuorum);

  const Bytes query = cloud::RankedSearchRequest{
      sse::Trapdoor{owner.rsse().row_label(bench::kKeyword),
                    owner.rsse().row_key(bench::kKeyword)},
      10}.serialize();
  std::vector<double> healthy_ms, stale_ms, catch_up_ms, converged_ms;
  const auto probe = [&](std::vector<double>& sink) {
    const Stopwatch watch;
    (void)coordinator.call(cloud::MessageType::kRankedSearch, query);
    sink.push_back(watch.elapsed_ms());
  };

  // Phase 1+2 — the storm: quorum fan-out with a ranked search every
  // fourth update. The kill splits the sample into the healthy baseline
  // and the stale window (2-of-3 commits routing reads around the dead
  // replica).
  for (std::size_t i = 0; i < storm; ++i) {
    if (i == kill_at) handles[2]->set_down(true);
    (void)coordinator.call(cloud::MessageType::kUpdate, payloads[i]);
    if (i % 4 == 3) probe(i < kill_at ? healthy_ms : stale_ms);
  }
  const std::uint64_t seq_gap =
      servers[0]->segment_next_seq() - servers[2]->segment_next_seq();
  bench::human("replica 2 dead: %llu seqs behind, %zu stale replicas\n",
               static_cast<unsigned long long>(seq_gap),
               coordinator.shard(0).stale_replicas());

  // Phase 3 — crash-restart: the replica's process state is discarded and
  // a fresh server recovers everything it ever ACKED from its WAL sidecar.
  Stopwatch recovery_watch;
  servers[2] = std::make_unique<cloud::CloudServer>();
  store::load_deployment(dirs[2], *servers[2]);
  const double recovery_s = recovery_watch.elapsed_seconds();
  servers[2]->set_segment_policy(seg::SegPolicy{64});
  const std::uint64_t wal_replayed = servers[2]->wal_tail_records();
  handles[2]->rebind(*servers[2]);
  handles[2]->set_down(false);
  bench::human("WAL restart: %llu records replayed in %.3f ms\n",
               static_cast<unsigned long long>(wal_replayed),
               recovery_s * 1e3);

  // Phase 4 — anti-entropy: the background worker drains the donor's WAL
  // suffix into the laggard while the foreground keeps issuing ranked
  // searches — the "query p99 during catch-up" number.
  cluster::CatchUpOptions cu;
  cu.batch_records = 64;
  cu.install_snapshot = [&servers](std::size_t, std::size_t replica,
                                   const cloud::SnapshotResponse& snapshot) {
    servers[replica]->install_snapshot(snapshot);
    return true;
  };
  coordinator.enable_catch_up(std::move(cu));
  Stopwatch catch_up_watch;
  coordinator.notify_catch_up();
  while (coordinator.shard(0).stale_replicas() > 0 &&
         catch_up_ms.size() < 100000)
    probe(catch_up_ms);
  coordinator.wait_for_catch_up_idle();
  const double catch_up_s = catch_up_watch.elapsed_seconds();

  const std::uint64_t backfill_records =
      coordinator.registry()
          .counter("rsse_cluster_backfill_records_total", "")
          .value();
  const std::uint64_t backfill_bytes =
      coordinator.registry()
          .counter("rsse_cluster_backfill_bytes_total", "")
          .value();
  bench::human("catch-up: converged in %.3f ms (%llu backfill batches,"
               " %llu records, %llu bytes, %llu snapshot repairs)\n",
               catch_up_s * 1e3,
               static_cast<unsigned long long>(coordinator.backfills_completed()),
               static_cast<unsigned long long>(backfill_records),
               static_cast<unsigned long long>(backfill_bytes),
               static_cast<unsigned long long>(
                   coordinator.snapshot_repairs_completed()));

  // Phase 5 — converged baseline again, all three replicas serving.
  for (std::size_t i = 0; i < 32; ++i) probe(converged_ms);
  (void)user;  // credentials exercised via the coordinator transport above

  const Phase phases[] = {
      {"healthy", healthy_ms.size(), bench::summarize_latencies(healthy_ms)},
      {"stale_window", stale_ms.size(), bench::summarize_latencies(stale_ms)},
      {"catch_up", catch_up_ms.size(), bench::summarize_latencies(catch_up_ms)},
      {"converged", converged_ms.size(),
       bench::summarize_latencies(converged_ms)},
  };
  for (const Phase& p : phases)
    bench::human("%-12s %5zu queries   p50 %7.3f ms   p95 %7.3f ms"
                 "   p99 %7.3f ms\n",
                 p.name, p.queries, p.latency.p50, p.latency.p95,
                 p.latency.p99);

  auto json_phases = bench::Json::array();
  for (const Phase& p : phases) json_phases.push(phase_json(p));
  auto results = bench::Json::object();
  results.set("updates", storm);
  results.set("kill_at", kill_at);
  results.set("replicas", kReplicas);
  results.set("write_quorum", kWriteQuorum);
  results.set("replica_seq_gap", seq_gap);
  results.set("wal_records_replayed", wal_replayed);
  results.set("wal_recovery_ms", recovery_s * 1e3);
  results.set("catch_up_ms", catch_up_s * 1e3);
  results.set("backfills_completed", coordinator.backfills_completed());
  results.set("backfill_records", backfill_records);
  results.set("backfill_bytes", backfill_bytes);
  results.set("snapshot_repairs", coordinator.snapshot_repairs_completed());
  results.set("quorum_failures",
              coordinator.registry()
                  .counter("rsse_cluster_update_quorum_failures_total", "")
                  .value());
  results.set("phases", std::move(json_phases));
  bench::emit(bench::doc("update_durability", "Update durability")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));

  fs::remove_all(root);
  return 0;
}
