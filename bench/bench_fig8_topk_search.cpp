// Fig. 8 reproduction: the time cost of top-k retrieval against k.
// The paper reports ~0.14 ms at k=10 rising to ~1.4 ms at k=300 on a
// 1000-file index, and argues the encrypted search is "almost as
// efficient as on unencrypted data". We time the server-side path
// (locate row via the trapdoor label, decrypt the 1000-entry posting
// list, rank by the order-preserved scores, assemble the top-k files)
// and print the same series next to the plaintext engine.
#include <cstdio>

#include "baseline/plaintext_search.h"
#include "bench_common.h"
#include "cloud/data_owner.h"
#include "util/stats.h"
#include "util/stopwatch.h"

int main() {
  using namespace rsse;
  bench::banner("Fig. 8 — time cost of top-k retrieval (1000-file index)");

  auto opts = bench::fig4_corpus_options();
  if (bench::quick()) {
    opts.num_documents = 250;
    opts.injected[0].document_count = 250;
  }
  const ir::Corpus corpus = ir::generate_corpus(opts);

  bench::human("building RSSE index (%zu files)...\n", opts.num_documents);
  cloud::DataOwner owner;
  cloud::CloudServer server;
  const auto report = owner.outsource_rsse(corpus, server);
  bench::human("  keywords: %llu, postings: %llu, build: %.2fs\n",
              static_cast<unsigned long long>(report.rsse_stats.num_keywords),
              static_cast<unsigned long long>(report.rsse_stats.num_postings),
              report.rsse_stats.raw_index_seconds + report.rsse_stats.opm_seconds +
                  report.rsse_stats.encrypt_seconds);

  const sse::Trapdoor trapdoor = owner.rsse().trapdoor(bench::kKeyword);
  const baseline::PlaintextSearchEngine plaintext(corpus);

  const int kRepetitions = bench::scaled(50, 5);
  const std::vector<std::size_t> ks =
      bench::quick() ? std::vector<std::size_t>{10, 50, 100, 200}
                     : std::vector<std::size_t>{10, 25, 50, 75, 100, 150, 200, 250, 300};
  auto series = bench::Json::array();
  bench::human("\n%-8s %18s %18s %20s\n", "k", "RSSE search (ms)", "plaintext (ms)",
              "RSSE + files (ms)");
  for (std::size_t k : ks) {
    RunningStats rsse_ms;
    RunningStats plain_ms;
    RunningStats full_ms;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      Stopwatch w1;
      const auto ranked = sse::RsseScheme::search(server.index(), trapdoor, k);
      rsse_ms.add(w1.elapsed_ms());
      if (ranked.size() != k) {
        bench::human("unexpected result size %zu\n", ranked.size());
        return 1;
      }

      Stopwatch w2;
      const auto plain = plaintext.search(bench::kKeyword, k);
      plain_ms.add(w2.elapsed_ms());

      Stopwatch w3;
      const auto full = server.ranked_search(
          cloud::RankedSearchRequest{trapdoor, static_cast<std::uint64_t>(k)});
      full_ms.add(w3.elapsed_ms());
      if (full.files.size() != k) return 1;
    }
    bench::human("%-8zu %18.3f %18.3f %20.3f\n", k, rsse_ms.mean(), plain_ms.mean(),
                full_ms.mean());
    auto point = bench::Json::object();
    point.set("k", k);
    point.set("rsse_ms", rsse_ms.mean());
    point.set("plaintext_ms", plain_ms.mean());
    point.set("rsse_with_files_ms", full_ms.mean());
    series.push(std::move(point));
  }
  bench::human("\n(paper: 0.14 ms at k=10 rising to ~1.4 ms at k=300; the claim under\n"
              " test is near-plaintext search cost and mild growth in k)\n");

  auto results = bench::Json::object();
  results.set("files", corpus.size());
  results.set("keywords", report.rsse_stats.num_keywords);
  results.set("postings", report.rsse_stats.num_postings);
  results.set("series", std::move(series));
  bench::emit(bench::doc("fig8_topk_search", "Fig. 8")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
