// Fig. 5 reproduction: size selection of range R. Plots (as a printed
// series) the LHS and RHS of eq. 4 over the range-size exponent k for
// max/lambda = 0.06, M = 128, c = 1.1, and reports the chosen |R| for
// the BCLO bound 5*log2(M)+12 and the two looser O(log M) stand-ins
// (the paper quotes |R| = 2^46, 2^34 and 2^27 respectively).
#include <cstdio>

#include "bench_common.h"
#include "opse/range_select.h"

int main() {
  using namespace rsse;
  using opse::RangeSelectParams;
  using opse::RecursionBound;

  bench::banner("Fig. 5 — size selection of range R (eq. 4 curves)");

  const RangeSelectParams base{.max_duplicates = 60,
                               .average_list_len = 1000,
                               .domain_size = 128,
                               .min_entropy_c = 1.1,
                               .bound = RecursionBound::kFiveLogMPlus12};

  bench::human("max/lambda = %.2f, M = %llu, c = %.2f\n",
              base.max_duplicates / base.average_list_len,
              static_cast<unsigned long long>(base.domain_size), base.min_entropy_c);

  bench::human("\n%-6s %16s %16s %16s %16s\n", "k", "LHS(5logM+12)", "LHS(5logM)",
              "LHS(4logM)", "RHS=-(log2 k)^c");
  bench::human("%-6s %16s %16s %16s %16s\n", "", "(log2)", "(log2)", "(log2)", "(log2)");
  for (std::uint64_t k = 8; k <= 56; k += 2) {
    RangeSelectParams p5 = base;
    RangeSelectParams p5l = base;
    p5l.bound = RecursionBound::kFiveLogM;
    RangeSelectParams p4l = base;
    p4l.bound = RecursionBound::kFourLogM;
    bench::human("%-6llu %16.3f %16.3f %16.3f %16.3f\n",
                static_cast<unsigned long long>(k), opse::lhs_log2(p5, k),
                opse::lhs_log2(p5l, k), opse::lhs_log2(p4l, k), opse::rhs_log2(base, k));
  }

  auto chosen = bench::Json::object();
  const auto report = [&](const char* name, RecursionBound bound, const char* paper) {
    RangeSelectParams p = base;
    p.bound = bound;
    const std::uint64_t k = opse::choose_range_bits(p);
    bench::human("bound %-12s -> |R| = 2^%-3llu (paper: %s)\n", name,
                static_cast<unsigned long long>(k), paper);
    chosen.set(name, k);
  };
  bench::human("\nchosen range sizes (smallest k with LHS <= RHS):\n");
  report("5logM+12", RecursionBound::kFiveLogMPlus12, "2^46");
  report("5logM", RecursionBound::kFiveLogM, "2^34");
  report("4logM", RecursionBound::kFourLogM, "2^27");

  auto results = bench::Json::object();
  results.set("max_over_lambda", base.max_duplicates / base.average_list_len);
  results.set("domain_size", base.domain_size);
  results.set("min_entropy_c", base.min_entropy_c);
  results.set("chosen_range_bits", std::move(chosen));
  bench::emit(bench::doc("fig5_range_selection", "Fig. 5")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
