// Extension bench — the Sec. VIII future-work problem measured: how far
// is the server-rankable sum-of-OPM conjunctive ranking from the exact
// eq.-1 ranking? We sweep keyword pairs with varying overlap and report
// Kendall tau, precision@k and footrule distance of the approximate
// (RSSE) ranking against the exact (Basic, client-computed) ranking.
#include <cstdio>

#include "bench_common.h"
#include "crypto/prf.h"
#include "ext/conjunctive.h"
#include "ext/rank_quality.h"
#include "sse/keys.h"

int main() {
  using namespace rsse;
  bench::banner("Extension — conjunctive ranked search: approximate vs exact");

  auto opts = bench::fig4_corpus_options(150);
  opts.num_documents = bench::scaled<std::size_t>(300, 150);
  opts.injected.clear();
  if (bench::quick()) {
    opts.injected.push_back(ir::InjectedKeyword{"network", 110, 0.35, 100});
    opts.injected.push_back(ir::InjectedKeyword{"protocol", 90, 0.45, 60});
    opts.injected.push_back(ir::InjectedKeyword{"cipher", 60, 0.25, 80});
    opts.injected.push_back(ir::InjectedKeyword{"router", 30, 0.55, 40});
  } else {
    opts.injected.push_back(ir::InjectedKeyword{"network", 220, 0.35, 100});
    opts.injected.push_back(ir::InjectedKeyword{"protocol", 180, 0.45, 60});
    opts.injected.push_back(ir::InjectedKeyword{"cipher", 120, 0.25, 80});
    opts.injected.push_back(ir::InjectedKeyword{"router", 60, 0.55, 40});
  }
  const ir::Corpus corpus = ir::generate_corpus(opts);

  const sse::MasterKey key = sse::keygen();
  const sse::RsseScheme rsse(key);
  const sse::BasicScheme basic(key);
  bench::human("building both indexes (300 files)...\n");
  const auto rsse_built = rsse.build_index(corpus);
  const auto basic_index = basic.build_index(corpus);
  const sse::TrapdoorGenerator generator(key.x, key.y, key.params.p_bits);
  const Bytes score_key = crypto::Prf(key.z).derive("score-key");

  const std::vector<std::vector<std::string>> queries{
      {"network", "protocol"},
      {"network", "cipher"},
      {"protocol", "cipher"},
      {"network", "router"},
      {"network", "protocol", "cipher"},
  };

  auto rows = bench::Json::array();
  bench::human("\n%-32s %8s %10s %10s %10s\n", "query", "|hits|", "tau",
              "prec@10", "footrule");
  for (const auto& q : queries) {
    const auto trapdoor = ext::make_conjunctive_trapdoor(generator, q);
    // Exact: Basic-Scheme server intersection + client eq.-1 ranking.
    const auto server_result = ext::ConjunctiveBasic::search(basic_index, trapdoor);
    const auto exact =
        ext::ConjunctiveBasic::rank(server_result, score_key, corpus.size());
    // Approximate: server-side sum-of-OPM ranking.
    const auto approx = ext::ConjunctiveRsse::search(rsse_built.index, trapdoor);

    std::vector<std::uint64_t> exact_ids;
    for (const auto& h : exact) exact_ids.push_back(ir::value(h.file));
    std::vector<std::uint64_t> approx_ids;
    for (const auto& h : approx) approx_ids.push_back(ir::value(h.file));

    std::string label;
    for (const auto& w : q) label += (label.empty() ? "" : "+") + w;
    if (exact_ids.size() < 2) {
      bench::human("%-32s %8zu %10s %10s %10s\n", label.c_str(), exact_ids.size(),
                  "-", "-", "-");
      continue;
    }
    const double tau = ext::kendall_tau(exact_ids, approx_ids);
    const double prec = ext::precision_at_k(exact_ids, approx_ids, 10);
    const double footrule = ext::normalized_footrule(exact_ids, approx_ids);
    bench::human("%-32s %8zu %10.3f %10.3f %10.3f\n", label.c_str(), exact_ids.size(),
                tau, prec, footrule);
    auto row = bench::Json::object();
    row.set("query", label);
    row.set("hits", exact_ids.size());
    row.set("kendall_tau", tau);
    row.set("precision_at_10", prec);
    row.set("normalized_footrule", footrule);
    rows.push(std::move(row));
  }
  bench::human("\n(tau = 1 would mean the open problem is solved by naive OPM\n"
              " summation; the gap below 1 is the IDF-weighting and bucket\n"
              " nonlinearity the paper says 'new approaches' must address.)\n");

  auto results = bench::Json::object();
  results.set("files", corpus.size());
  results.set("queries", std::move(rows));
  bench::emit(bench::doc("ext_conjunctive", "Sec. VIII extension")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
