// Fig. 7 reproduction: time cost of a single one-to-many order-
// preserving mapping operation against the score-domain size M and the
// range size |R|. The paper sweeps M in [64, 256] for |R| in {2^40, 2^46}
// (MATLAB HGD: 50-450 ms, superlogarithmic growth in M). Our native
// sampler is ~3 orders of magnitude faster; the SHAPE — growth faster
// than log M, mild growth in |R| — is the reproduced result.
//
// Uses google-benchmark with a custom mean-of-100-trials counter to
// mirror the paper's methodology, then prints a compact summary table.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "crypto/csprng.h"
#include "opse/opm.h"
#include "util/stopwatch.h"

namespace {

using namespace rsse;

void BM_OpmMap(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const auto range_bits = static_cast<std::uint64_t>(state.range(1));
  const opse::OneToManyOpm opm(to_bytes("fig7-bench-key"),
                               opse::OpeParams{domain, 1ull << range_bits});
  std::uint64_t m = 1;
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opm.map(m, id));
    m = m % domain + 1;  // sweep the whole domain
    ++id;
  }
  state.SetLabel("M=" + std::to_string(domain) + " |R|=2^" + std::to_string(range_bits));
}

BENCHMARK(BM_OpmMap)
    ->ArgsProduct({{64, 96, 128, 160, 192, 224, 256}, {20, 40, 46}})
    ->Unit(benchmark::kMicrosecond);

// The paper's presentation: mean per-operation cost per (M, |R|) point.
// HGD walk lengths depend on the key-specific bucket layout, so we
// average each point over several independent keys x 100 trials.
void print_summary_table() {
  std::printf("\nFig. 7 summary — single OPM op, mean over 8 keys x 100 trials "
              "(microseconds)\n");
  std::printf("%-8s %14s %14s %14s\n", "M", "|R|=2^20", "|R|=2^40", "|R|=2^46");
  for (std::uint64_t domain : {64, 96, 128, 160, 192, 224, 256}) {
    std::printf("%-8llu", static_cast<unsigned long long>(domain));
    for (std::uint64_t range_bits : {20, 40, 46}) {
      double total_us = 0.0;
      std::uint64_t total_ops = 0;
      for (int key_index = 0; key_index < 8; ++key_index) {
        Bytes key = to_bytes("fig7-bench-key-");
        key.push_back(static_cast<std::uint8_t>(key_index));
        const opse::OneToManyOpm opm(key, opse::OpeParams{domain, 1ull << range_bits});
        benchmark::DoNotOptimize(opm.map(1, 0));  // warm-up
        Stopwatch watch;
        for (std::uint64_t trial = 0; trial < 100; ++trial)
          benchmark::DoNotOptimize(opm.map(trial % domain + 1, trial));
        total_us += watch.elapsed_us();
        total_ops += 100;
      }
      std::printf(" %14.2f", total_us / static_cast<double>(total_ops));
    }
    std::printf("\n");
  }
  std::printf("(paper, MATLAB HGD at M=128, |R|=2^46: ~70 ms; shape, not absolute\n"
              " value, is the reproduced quantity — see EXPERIMENTS.md)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==============================================================\n");
  std::printf("Fig. 7 — one-to-many order-preserving mapping latency\n");
  std::printf("==============================================================\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary_table();
  return 0;
}
