// Fig. 7 reproduction: time cost of a single one-to-many order-
// preserving mapping operation against the score-domain size M and the
// range size |R|. The paper sweeps M in [64, 256] for |R| in {2^40, 2^46}
// (MATLAB HGD: 50-450 ms, superlogarithmic growth in M). Our native
// sampler is ~3 orders of magnitude faster; the SHAPE — growth faster
// than log M, mild growth in |R| — is the reproduced result.
//
// Uses google-benchmark with a custom mean-of-100-trials counter to
// mirror the paper's methodology, then prints a compact summary table.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "crypto/csprng.h"
#include "opse/opm.h"
#include "util/stopwatch.h"

namespace {

using namespace rsse;

void BM_OpmMap(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const auto range_bits = static_cast<std::uint64_t>(state.range(1));
  const opse::OneToManyOpm opm(to_bytes("fig7-bench-key"),
                               opse::OpeParams{domain, 1ull << range_bits});
  std::uint64_t m = 1;
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opm.map(m, id));
    m = m % domain + 1;  // sweep the whole domain
    ++id;
  }
  state.SetLabel("M=" + std::to_string(domain) + " |R|=2^" + std::to_string(range_bits));
}

BENCHMARK(BM_OpmMap)
    ->ArgsProduct({{64, 96, 128, 160, 192, 224, 256}, {20, 40, 46}})
    ->Unit(benchmark::kMicrosecond);

// The paper's presentation: mean per-operation cost per (M, |R|) point.
// HGD walk lengths depend on the key-specific bucket layout, so we
// average each point over several independent keys x trials (fewer of
// both under RSSE_BENCH_QUICK).
bench::Json summary_table() {
  const int keys = bench::scaled(8, 2);
  const std::uint64_t trials = bench::scaled<std::uint64_t>(100, 25);
  auto points = bench::Json::array();
  bench::human("\nFig. 7 summary — single OPM op, mean over %d keys x %llu trials "
              "(microseconds)\n", keys, static_cast<unsigned long long>(trials));
  bench::human("%-8s %14s %14s %14s\n", "M", "|R|=2^20", "|R|=2^40", "|R|=2^46");
  for (std::uint64_t domain : {64, 96, 128, 160, 192, 224, 256}) {
    bench::human("%-8llu", static_cast<unsigned long long>(domain));
    for (std::uint64_t range_bits : {20, 40, 46}) {
      double total_us = 0.0;
      std::uint64_t total_ops = 0;
      for (int key_index = 0; key_index < keys; ++key_index) {
        Bytes key = to_bytes("fig7-bench-key-");
        key.push_back(static_cast<std::uint8_t>(key_index));
        const opse::OneToManyOpm opm(key, opse::OpeParams{domain, 1ull << range_bits});
        benchmark::DoNotOptimize(opm.map(1, 0));  // warm-up
        Stopwatch watch;
        for (std::uint64_t trial = 0; trial < trials; ++trial)
          benchmark::DoNotOptimize(opm.map(trial % domain + 1, trial));
        total_us += watch.elapsed_us();
        total_ops += trials;
      }
      const double mean_us = total_us / static_cast<double>(total_ops);
      bench::human(" %14.2f", mean_us);
      auto point = bench::Json::object();
      point.set("domain", domain);
      point.set("range_bits", range_bits);
      point.set("mean_us", mean_us);
      points.push(std::move(point));
    }
    bench::human("\n");
  }
  bench::human("(paper, MATLAB HGD at M=128, |R|=2^46: ~70 ms; shape, not absolute\n"
              " value, is the reproduced quantity — see EXPERIMENTS.md)\n");
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Fig. 7 — one-to-many order-preserving mapping latency");
  // google-benchmark's console tables are human output: send them to
  // stderr so stdout stays a single JSON document. Quick mode skips the
  // gbench sweep entirely (the summary table below covers the shape).
  if (!bench::quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::ConsoleReporter reporter;
    reporter.SetOutputStream(&std::cerr);
    reporter.SetErrorStream(&std::cerr);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  auto points = summary_table();

  auto results = bench::Json::object();
  results.set("points", std::move(points));
  bench::emit(bench::doc("fig7_opm_latency", "Fig. 7")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
