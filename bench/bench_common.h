// Shared workloads and printing helpers for the table/figure benches.
//
// Every bench regenerates one table or figure of the paper's Sec. VI on
// the synthetic RFC-like corpus (DESIGN.md documents the substitution).
// The canonical workload mirrors the paper's Fig. 4 setup: 1000 files all
// containing the keyword "network" with a skewed TF distribution, scores
// encoded into M = 128 levels.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "ir/corpus_gen.h"
#include "ir/inverted_index.h"
#include "ir/scoring.h"
#include "util/stats.h"

namespace rsse::bench {

/// The paper's experimental keyword.
inline constexpr const char* kKeyword = "network";

/// 1000-file corpus with "network" in every file (posting list length
/// 1000, like the paper's Fig. 4 sample) plus a Zipfian background
/// vocabulary. `vocabulary_size` trades bench runtime for index width.
inline ir::CorpusGenOptions fig4_corpus_options(std::size_t vocabulary_size = 200) {
  ir::CorpusGenOptions opts;
  opts.num_documents = 1000;
  opts.vocabulary_size = vocabulary_size;
  opts.zipf_exponent = 1.05;
  opts.min_tokens = 200;
  opts.max_tokens = 3000;
  // Geometric TF with p = 0.35 over log-uniform |F_d| reproduces the
  // skewed, duplicate-heavy relevance-score histogram of Fig. 4
  // (measured max/lambda lands in the ~0.05-0.08 band around the paper's
  // 0.06).
  opts.injected.push_back(ir::InjectedKeyword{kKeyword, 1000, 0.35, 200});
  opts.seed = 20100621;  // ICDCS'10 presentation date
  return opts;
}

/// Eq. 2 scores of the keyword's whole posting list.
inline std::vector<double> keyword_scores(const ir::InvertedIndex& index,
                                          const std::string& term) {
  std::vector<double> scores;
  const auto* postings = index.postings(term);
  if (!postings) return scores;
  scores.reserve(postings->size());
  for (const auto& p : *postings)
    scores.push_back(ir::score_single_keyword(p.tf, index.doc_length(p.file)));
  return scores;
}

/// The latency quantiles every bench reports. One summary type (and one
/// quantile implementation, util/stats) so the JSON documents of
/// different benches stay comparable run over run.
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Summarizes a latency sample (any unit; callers use milliseconds).
inline LatencySummary summarize_latencies(const std::vector<double>& sample) {
  LatencySummary s;
  s.p50 = quantile(sample, 0.50);
  s.p95 = quantile(sample, 0.95);
  s.p99 = quantile(sample, 0.99);
  return s;
}

/// Section banner in the bench output.
inline void banner(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

}  // namespace rsse::bench
