// Shared workloads and printing helpers for the table/figure benches.
//
// Every bench regenerates one table or figure of the paper's Sec. VI on
// the synthetic RFC-like corpus (DESIGN.md documents the substitution).
// The canonical workload mirrors the paper's Fig. 4 setup: 1000 files all
// containing the keyword "network" with a skewed TF distribution, scores
// encoded into M = 128 levels.
//
// Output protocol (scripts/bench_all.py depends on it):
//   * stdout carries EXACTLY ONE JSON document (emit()), nothing else —
//     the machine-readable result scripts/bench_schema.json describes.
//   * every human-readable table/banner goes to stderr (human()/banner()).
//   * RSSE_BENCH_QUICK=1 (quick()) shrinks workloads for CI; the emitted
//     document records which mode produced it so baselines never compare
//     quick against full runs.
//   * the "counters" section holds the obs::cost crypto-work counters
//     (HMAC invocations, HGD samples, bytes encrypted, ...) — workload-
//     determined, so the CI drift gate can flag cost regressions without
//     depending on wall-clock noise.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ir/corpus_gen.h"
#include "ir/inverted_index.h"
#include "ir/scoring.h"
#include "obs/cost.h"
#include "util/stats.h"

namespace rsse::bench {

/// The paper's experimental keyword.
inline constexpr const char* kKeyword = "network";

/// 1000-file corpus with "network" in every file (posting list length
/// 1000, like the paper's Fig. 4 sample) plus a Zipfian background
/// vocabulary. `vocabulary_size` trades bench runtime for index width.
inline ir::CorpusGenOptions fig4_corpus_options(std::size_t vocabulary_size = 200) {
  ir::CorpusGenOptions opts;
  opts.num_documents = 1000;
  opts.vocabulary_size = vocabulary_size;
  opts.zipf_exponent = 1.05;
  opts.min_tokens = 200;
  opts.max_tokens = 3000;
  // Geometric TF with p = 0.35 over log-uniform |F_d| reproduces the
  // skewed, duplicate-heavy relevance-score histogram of Fig. 4
  // (measured max/lambda lands in the ~0.05-0.08 band around the paper's
  // 0.06).
  opts.injected.push_back(ir::InjectedKeyword{kKeyword, 1000, 0.35, 200});
  opts.seed = 20100621;  // ICDCS'10 presentation date
  return opts;
}

/// Eq. 2 scores of the keyword's whole posting list.
inline std::vector<double> keyword_scores(const ir::InvertedIndex& index,
                                          const std::string& term) {
  std::vector<double> scores;
  const auto* postings = index.postings(term);
  if (!postings) return scores;
  scores.reserve(postings->size());
  for (const auto& p : *postings)
    scores.push_back(ir::score_single_keyword(p.tf, index.doc_length(p.file)));
  return scores;
}

/// The latency quantiles every bench reports. One summary type (and one
/// quantile implementation, util/stats) so the JSON documents of
/// different benches stay comparable run over run.
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Summarizes a latency sample (any unit; callers use milliseconds).
inline LatencySummary summarize_latencies(const std::vector<double>& sample) {
  LatencySummary s;
  s.p50 = quantile(sample, 0.50);
  s.p95 = quantile(sample, 0.95);
  s.p99 = quantile(sample, 0.99);
  return s;
}

/// True when RSSE_BENCH_QUICK is set: shrink workloads so the whole
/// fleet finishes inside a CI job. The emitted JSON records the mode.
inline bool quick() {
  static const bool value = std::getenv("RSSE_BENCH_QUICK") != nullptr;
  return value;
}

/// `full` normally, `reduced` under RSSE_BENCH_QUICK.
template <typename T>
inline T scaled(T full, T reduced) {
  return quick() ? reduced : full;
}

/// printf to stderr — the human-readable side of the output protocol.
[[gnu::format(printf, 1, 2)]] inline void human(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
}

/// Section banner (stderr, like all human output).
inline void banner(const char* title) {
  std::fprintf(stderr,
               "\n==============================================================\n"
               "%s\n"
               "==============================================================\n",
               title);
}

/// Minimal ordered JSON builder — just enough for the bench documents
/// (keeps insertion order so diffs of BENCH_RSSE.json stay readable).
class Json {
 public:
  Json() : kind_(Kind::kLiteral), text_("null") {}
  Json(bool v) : kind_(Kind::kLiteral), text_(v ? "true" : "false") {}
  Json(double v) : kind_(Kind::kLiteral), text_(format_double(v)) {}
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T> &&
                                                    !std::is_same_v<T, bool>>>
  Json(T v) : kind_(Kind::kLiteral), text_(std::to_string(v)) {}
  Json(const char* s) : kind_(Kind::kString), text_(s) {}
  Json(std::string s) : kind_(Kind::kString), text_(std::move(s)) {}

  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }

  /// Adds (or appends; keys are not deduplicated) an object member.
  Json& set(std::string key, Json value) {
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Appends an array element.
  Json& push(Json value) {
    elements_.push_back(std::move(value));
    return *this;
  }

  [[nodiscard]] std::string dump(int indent = 0) const {
    std::string out;
    write(out, indent);
    return out;
  }

 private:
  enum class Kind { kLiteral, kString, kObject, kArray };
  explicit Json(Kind kind) : kind_(kind) {}

  static std::string format_double(double v) {
    if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0) return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
  }

  static void escape_to(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  void write(std::string& out, int indent) const {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const std::string inner_pad(static_cast<std::size_t>(indent) + 2, ' ');
    switch (kind_) {
      case Kind::kLiteral: out += text_; return;
      case Kind::kString: escape_to(out, text_); return;
      case Kind::kObject: {
        if (members_.empty()) { out += "{}"; return; }
        out += "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out += inner_pad;
          escape_to(out, members_[i].first);
          out += ": ";
          members_[i].second.write(out, indent + 2);
          out += i + 1 < members_.size() ? ",\n" : "\n";
        }
        out += pad + "}";
        return;
      }
      case Kind::kArray: {
        if (elements_.empty()) { out += "[]"; return; }
        out += "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          out += inner_pad;
          elements_[i].write(out, indent + 2);
          out += i + 1 < elements_.size() ? ",\n" : "\n";
        }
        out += pad + "]";
        return;
      }
    }
  }

  Kind kind_;
  std::string text_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

/// The envelope every bench document starts from (schema_version, bench
/// name, the figure/table it reproduces, the quick flag). Callers add
/// "results" (free-form) and "counters" (counters_json) then emit().
inline Json doc(const char* bench_name, const char* figure) {
  Json d = Json::object();
  d.set("schema_version", 1);
  d.set("bench", bench_name);
  d.set("figure", figure);
  d.set("quick", quick());
  return d;
}

/// A LatencySummary as an object with fixed keys.
inline Json latency_json(const LatencySummary& s) {
  Json j = Json::object();
  j.set("p50_ms", s.p50);
  j.set("p95_ms", s.p95);
  j.set("p99_ms", s.p99);
  return j;
}

/// The crypto-work counters accumulated since process start (or a
/// delta) — the deterministic section the CI drift gate compares.
inline Json counters_json(const obs::cost::Snapshot& snap = obs::cost::snapshot()) {
  Json j = Json::object();
  j.set("hmac_invocations", snap.hmac_invocations);
  j.set("tape_derivations", snap.tape_derivations);
  j.set("hgd_samples", snap.hgd_samples);
  j.set("opm_mappings", snap.opm_mappings);
  j.set("split_cache_hits", snap.split_cache_hits);
  j.set("entries_encrypted", snap.entries_encrypted);
  j.set("bytes_encrypted", snap.bytes_encrypted);
  return j;
}

/// Prints the one machine-readable JSON document to stdout.
inline void emit(const Json& document) {
  std::fputs(document.dump().c_str(), stdout);
  std::fputc('\n', stdout);
}

}  // namespace rsse::bench
