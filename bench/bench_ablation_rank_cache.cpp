// Ablation E — the server-side rank cache. The paper observes that once
// the server holds a keyword's trapdoor it has (by design) learned that
// row's relevance order; caching it converts every repeat top-k query
// from O(nu) entry decryptions into O(k) copying. This bench measures
// repeat-query latency with the cache off and on.
#include <cstdio>

#include "bench_common.h"
#include "cloud/data_owner.h"
#include "util/stats.h"
#include "util/stopwatch.h"

int main() {
  using namespace rsse;
  bench::banner("Ablation E — server-side rank cache on repeat queries");

  const ir::Corpus corpus = ir::generate_corpus(bench::fig4_corpus_options());
  cloud::DataOwner owner;
  cloud::CloudServer server;
  std::printf("building index (1000 files)...\n");
  owner.outsource_rsse(corpus, server);
  const sse::Trapdoor trapdoor = owner.rsse().trapdoor(bench::kKeyword);

  constexpr int kReps = 200;
  const auto measure = [&](std::size_t k) {
    RunningStats stats;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      const auto resp = server.ranked_search(
          cloud::RankedSearchRequest{trapdoor, static_cast<std::uint64_t>(k)});
      stats.add(watch.elapsed_ms());
      if (resp.files.size() != k) std::abort();
    }
    return stats.mean();
  };

  std::printf("\n%-8s %18s %18s %12s\n", "k", "cache off (ms)", "cache on (ms)",
              "speedup");
  for (std::size_t k : {10, 50, 100, 300}) {
    server.set_rank_cache_enabled(false);
    const double off = measure(k);
    server.set_rank_cache_enabled(true);
    (void)server.ranked_search(cloud::RankedSearchRequest{trapdoor, 0});  // warm
    const double on = measure(k);
    std::printf("%-8zu %18.3f %18.3f %11.1fx\n", k, off, on, off / on);
  }
  std::printf("\ncache hits: %llu, misses: %llu\n",
              static_cast<unsigned long long>(server.rank_cache_hits()),
              static_cast<unsigned long long>(server.rank_cache_misses()));
  return 0;
}
