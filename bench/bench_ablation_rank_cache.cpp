// Ablation E — the server-side rank cache. The paper observes that once
// the server holds a keyword's trapdoor it has (by design) learned that
// row's relevance order; caching it converts every repeat top-k query
// from O(nu) entry decryptions into O(k) copying. This bench measures
// repeat-query latency with the cache off and on.
#include <cstdio>

#include "bench_common.h"
#include "cloud/data_owner.h"
#include "util/stats.h"
#include "util/stopwatch.h"

int main() {
  using namespace rsse;
  bench::banner("Ablation E — server-side rank cache on repeat queries");

  auto opts = bench::fig4_corpus_options();
  if (bench::quick()) {
    opts.num_documents = 250;
    opts.injected[0].document_count = 250;
  }
  const ir::Corpus corpus = ir::generate_corpus(opts);
  cloud::DataOwner owner;
  cloud::CloudServer server;
  bench::human("building index (%zu files)...\n", corpus.size());
  owner.outsource_rsse(corpus, server);
  const sse::Trapdoor trapdoor = owner.rsse().trapdoor(bench::kKeyword);

  const int kReps = bench::scaled(200, 20);
  const auto measure = [&](std::size_t k) {
    RunningStats stats;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      const auto resp = server.ranked_search(
          cloud::RankedSearchRequest{trapdoor, static_cast<std::uint64_t>(k)});
      stats.add(watch.elapsed_ms());
      if (resp.files.size() != k) std::abort();
    }
    return stats.mean();
  };

  bench::human("\n%-8s %18s %18s %12s\n", "k", "cache off (ms)", "cache on (ms)",
              "speedup");
  const std::vector<std::size_t> ks = bench::quick()
                                          ? std::vector<std::size_t>{10, 50, 100, 200}
                                          : std::vector<std::size_t>{10, 50, 100, 300};
  auto rows = bench::Json::array();
  for (std::size_t k : ks) {
    server.set_rank_cache_enabled(false);
    const double off = measure(k);
    server.set_rank_cache_enabled(true);
    (void)server.ranked_search(cloud::RankedSearchRequest{trapdoor, 0});  // warm
    const double on = measure(k);
    bench::human("%-8zu %18.3f %18.3f %11.1fx\n", k, off, on, off / on);
    auto row = bench::Json::object();
    row.set("k", k);
    row.set("cache_off_ms", off);
    row.set("cache_on_ms", on);
    row.set("speedup", off / on);
    rows.push(std::move(row));
  }
  bench::human("\ncache hits: %llu, misses: %llu\n",
              static_cast<unsigned long long>(server.rank_cache_hits()),
              static_cast<unsigned long long>(server.rank_cache_misses()));

  auto results = bench::Json::object();
  results.set("files", corpus.size());
  results.set("repetitions", kReps);
  results.set("rows", std::move(rows));
  results.set("cache_hits", server.rank_cache_hits());
  results.set("cache_misses", server.rank_cache_misses());
  bench::emit(bench::doc("ablation_rank_cache", "Ablation E")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
