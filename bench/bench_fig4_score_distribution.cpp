// Fig. 4 reproduction: the relevance-score distribution of keyword
// "network" over 1000 files, encoded into 128 levels in domain 1..128.
// The paper shows a highly skewed histogram (peak bin ~55 points, max
// score duplicates 60 over an average list of 1000 => max/lambda = 0.06).
// This bench prints the same histogram plus the duplicate statistics the
// range-size selection consumes.
#include <cstdio>

#include "bench_common.h"
#include "ir/analyzer.h"
#include "opse/quantizer.h"
#include "util/histogram.h"
#include "util/stats.h"

int main() {
  using namespace rsse;
  bench::banner("Fig. 4 — relevance score distribution for keyword \"network\"");

  const ir::Corpus corpus = ir::generate_corpus(bench::fig4_corpus_options());
  const auto index = ir::InvertedIndex::build(corpus, ir::Analyzer());
  const std::vector<double> scores = bench::keyword_scores(index, bench::kKeyword);
  bench::human("files in collection: %zu\n", corpus.size());
  bench::human("posting list length (lambda): %zu\n", scores.size());

  // Encode into 128 levels like the paper, then histogram the levels.
  const auto quantizer = opse::ScoreQuantizer::from_scores(scores, 128);
  Histogram histogram(1.0, 129.0, 128);
  std::vector<std::uint64_t> levels;
  levels.reserve(scores.size());
  for (double s : scores) {
    const std::uint64_t level = quantizer.quantize(s);
    levels.push_back(level);
    histogram.add(static_cast<double>(level));
  }

  bench::human("\nscore distribution over 128 levels (paper Fig. 4 shape):\n");
  bench::human("%s", histogram.ascii_chart(32, 60).c_str());

  const std::uint64_t max_dup = max_duplicates(levels);
  const double lambda = static_cast<double>(levels.size());
  bench::human("\npeak histogram bin:        %llu points\n",
              static_cast<unsigned long long>(histogram.max_count()));
  bench::human("max score duplicates:      %llu\n",
              static_cast<unsigned long long>(max_dup));
  bench::human("max/lambda:                %.4f   (paper: 0.06)\n",
              static_cast<double>(max_dup) / lambda);
  bench::human("distinct levels used:      %zu / 128\n", distinct_count(levels));
  bench::human("binned min-entropy:        %.3f bits (low = skewed, fingerprintable)\n",
              histogram.min_entropy_bits());

  auto results = bench::Json::object();
  results.set("files", corpus.size());
  results.set("posting_list_length", levels.size());
  results.set("peak_bin", histogram.max_count());
  results.set("max_duplicates", max_dup);
  results.set("max_over_lambda", static_cast<double>(max_dup) / lambda);
  results.set("distinct_levels", distinct_count(levels));
  results.set("binned_min_entropy_bits", histogram.min_entropy_bits());
  bench::emit(bench::doc("fig4_score_distribution", "Fig. 4")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
