// Security evaluation — query-recovery attack vs padding and background
// similarity. Sweeps the Damie-style adversary (analysis/attack.h) over
// corpus size x padding policy x background-corpus similarity, measuring
// the fraction of non-seed queries whose keyword the attack names
// correctly. The headline claims the JSON asserts as 0/1 counters (so
// the CI drift gate pins them):
//   * recovery is far above the ~1/|candidates| chance level against
//     baseline leakage (no padding, known-data background);
//   * average recovery is monotonically non-increasing as the padding
//     strengthens (none -> pow2 -> full-nu);
//   * average recovery is monotonically non-increasing as the background
//     degrades (known data -> similar corpus -> dissimilar corpus);
//   * the whole pipeline is deterministic: a repeated capture+attack run
//     produces a byte-identical transcript and the same recovery.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/attack.h"
#include "analysis/transcript.h"
#include "bench_common.h"
#include "cloud/channel.h"
#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "ir/corpus_gen.h"
#include "sse/keys.h"
#include "sse/rsse_scheme.h"

namespace {

using namespace rsse;

// Planted keywords with document frequencies fixed as fractions of the
// corpus, so every sweep size keeps the same salience profile.
constexpr const char* kWords[] = {"kestrel", "marmot", "osprey", "ferret",
                                  "heron",   "lynx",   "stoat",  "weasel"};
constexpr double kFractions[] = {0.73, 0.55, 0.40, 0.28, 0.20, 0.13, 0.09, 0.055};
constexpr std::size_t kNumWords = 8;
// Query repeats per planted word: frequency follows salience (the
// standard frequency-attack assumption about real query streams).
constexpr std::size_t kRepeats[] = {3, 3, 3, 2, 2, 1, 1, 1};

constexpr std::uint64_t kSeed = 20100621;

enum class Background { kKnownData, kSimilar, kDissimilar };

ir::CorpusGenOptions corpus_options(std::size_t num_documents, Background bg) {
  ir::CorpusGenOptions opts;
  opts.num_documents = num_documents;
  opts.vocabulary_size = 200;
  opts.zipf_exponent = bg == Background::kDissimilar ? 1.35 : 1.05;
  opts.min_tokens = 60;
  opts.max_tokens = 240;
  opts.seed = kSeed + static_cast<std::uint64_t>(bg);
  for (std::size_t i = 0; i < kNumWords; ++i) {
    // The dissimilar background gets the planted salience profile
    // ROTATED — same words, wrong frequencies — the worst case for a
    // frequency-matching adversary.
    const std::size_t j =
        bg == Background::kDissimilar ? (i + kNumWords / 2) % kNumWords : i;
    const auto df = static_cast<std::size_t>(kFractions[j] *
                                             static_cast<double>(num_documents));
    opts.injected.push_back(
        ir::InjectedKeyword{kWords[i], df < 2 ? 2 : df, 0.4, 30});
  }
  return opts;
}

// Fixed master key: repeated runs must produce identical trapdoor labels
// (the determinism claim covers the whole pipeline, not just the attack).
cloud::DataOwner make_owner() {
  sse::MasterKey key;
  key.x = Bytes(32, 0x11);
  key.y = Bytes(32, 0x22);
  key.z = Bytes(32, 0x33);
  return cloud::DataOwner(std::move(key), Bytes(32, 0x44), std::nullopt, {});
}

struct Cell {
  std::size_t documents = 0;
  const char* padding = nullptr;
  const char* background = nullptr;
  std::size_t groups = 0;
  std::size_t queries = 0;
  std::size_t eligible = 0;   ///< non-seed groups with ground truth
  std::size_t recovered = 0;  ///< ... whose keyword the attack named
  std::size_t confident = 0;
  bool widths_informative = false;
  double recovery = 0.0;
  Bytes transcript;
};

// One capture + attack: outsource under `padding`, drive the seeded
// stream through a transcript-capturing server, attack with `bk`.
Cell run_cell(const ir::Corpus& corpus, sse::PaddingMode padding,
              const analysis::BackgroundKnowledge& bk) {
  cloud::DataOwner owner = make_owner();
  cloud::CloudServer server;
  sse::RsseScheme::BuildOptions build;
  build.padding = padding;
  owner.outsource_rsse(corpus, server, build);

  auto sink = std::make_shared<analysis::TranscriptSink>();
  server.set_transcript_sink(sink);

  const Bytes user_key(32, 0x5c);
  const cloud::UserCredentials credentials = cloud::AuthorizationService::open(
      user_key, "u", owner.enroll_user(user_key, "u"));
  cloud::Channel channel(server);
  cloud::DataUser user(credentials, channel);
  for (std::size_t i = 0; i < kNumWords; ++i)
    for (std::size_t r = 0; r < kRepeats[i]; ++r)
      (void)user.ranked_search(kWords[i], 10);

  std::map<Bytes, std::string> truth;
  std::vector<analysis::KnownQuery> known;
  for (std::size_t i = 0; i < kNumWords; ++i) {
    const Bytes label = owner.rsse().trapdoor(kWords[i]).label;
    const std::string norm = owner.rsse().analyzer().normalize_keyword(kWords[i]);
    truth[label] = norm;
    if (i < 2) known.push_back({label, norm});  // two known-query seeds
  }

  const analysis::AttackResult result =
      analysis::run_query_recovery(sink->ledger(), bk, known);

  Cell cell;
  cell.documents = corpus.size();
  cell.groups = result.groups;
  cell.queries = result.queries_observed;
  cell.confident = result.confident;
  cell.widths_informative = result.widths_informative;
  for (const analysis::QueryGuess& guess : result.guesses) {
    if (guess.seed) continue;
    const auto it = truth.find(guess.row_label);
    if (it == truth.end()) continue;
    ++cell.eligible;
    if (!guess.keyword.empty() && guess.keyword == it->second) ++cell.recovered;
  }
  cell.recovery = cell.eligible == 0 ? 0.0
                                     : static_cast<double>(cell.recovered) /
                                           static_cast<double>(cell.eligible);
  cell.transcript = analysis::TranscriptSink::serialize(sink->snapshot());
  return cell;
}

}  // namespace

int main() {
  bench::banner(
      "Security evaluation — query recovery vs padding x background similarity");

  const std::vector<std::size_t> sizes =
      bench::quick() ? std::vector<std::size_t>{160}
                     : std::vector<std::size_t>{300, 600};
  const std::pair<const char*, sse::PaddingMode> paddings[] = {
      {"none", sse::PaddingMode::kNone},
      {"pow2", sse::PaddingMode::kPowerOfTwo},
      {"full_nu", sse::PaddingMode::kFullNu},
  };
  const std::pair<const char*, Background> backgrounds[] = {
      {"known_data", Background::kKnownData},
      {"similar", Background::kSimilar},
      {"dissimilar", Background::kDissimilar},
  };

  std::vector<Cell> cells;
  std::map<std::string, std::pair<double, std::size_t>> by_padding;
  std::map<std::string, std::pair<double, std::size_t>> by_background;

  bench::human("\n%8s %-8s %-11s %7s %8s %10s %10s\n", "docs", "padding",
               "background", "groups", "queries", "recovery", "confident");
  for (const std::size_t docs : sizes) {
    const ir::Corpus server_corpus =
        ir::generate_corpus(corpus_options(docs, Background::kKnownData));
    for (const auto& [bg_name, bg_kind] : backgrounds) {
      // The known-data adversary indexed the outsourced collection
      // itself; the others hold lookalike public corpora.
      const ir::Corpus bg_corpus =
          bg_kind == Background::kKnownData
              ? server_corpus
              : ir::generate_corpus(corpus_options(docs, bg_kind));
      analysis::BackgroundKnowledge::Options bk_options;
      bk_options.top_k = 10;
      const analysis::BackgroundKnowledge bk =
          analysis::BackgroundKnowledge::from_corpus(bg_corpus, bk_options);
      for (const auto& [pad_name, pad_mode] : paddings) {
        Cell cell = run_cell(server_corpus, pad_mode, bk);
        cell.padding = pad_name;
        cell.background = bg_name;
        bench::human("%8zu %-8s %-11s %7zu %8zu %9.1f%% %10zu\n", docs, pad_name,
                     bg_name, cell.groups, cell.queries, cell.recovery * 100.0,
                     cell.confident);
        auto& pad_acc = by_padding[pad_name];
        pad_acc.first += cell.recovery;
        ++pad_acc.second;
        auto& bg_acc = by_background[bg_name];
        bg_acc.first += cell.recovery;
        ++bg_acc.second;
        cells.push_back(std::move(cell));
      }
    }
  }

  const auto average = [](const std::pair<double, std::size_t>& acc) {
    return acc.second == 0 ? 0.0 : acc.first / static_cast<double>(acc.second);
  };
  const double avg_none = average(by_padding["none"]);
  const double avg_pow2 = average(by_padding["pow2"]);
  const double avg_full = average(by_padding["full_nu"]);
  const double avg_known = average(by_background["known_data"]);
  const double avg_similar = average(by_background["similar"]);
  const double avg_dissimilar = average(by_background["dissimilar"]);

  constexpr double kEps = 1e-9;
  const bool padding_monotonic =
      avg_none + kEps >= avg_pow2 && avg_pow2 + kEps >= avg_full;
  const bool similarity_monotonic =
      avg_known + kEps >= avg_similar && avg_similar + kEps >= avg_dissimilar;
  // Chance level is ~1/|candidates| (< 1%); "well above" = >= 25x that.
  double baseline_recovery = 0.0;
  for (const Cell& c : cells)
    if (std::string(c.padding) == "none" && std::string(c.background) == "known_data")
      baseline_recovery = std::max(baseline_recovery, c.recovery);
  const bool above_chance = baseline_recovery >= 0.25;

  // Determinism: repeat the first sweep cell end to end — the captured
  // transcript must be byte-identical and the attack outcome unchanged.
  const ir::Corpus det_corpus =
      ir::generate_corpus(corpus_options(sizes.front(), Background::kKnownData));
  analysis::BackgroundKnowledge::Options det_bk_options;
  det_bk_options.top_k = 10;
  const analysis::BackgroundKnowledge det_bk =
      analysis::BackgroundKnowledge::from_corpus(det_corpus, det_bk_options);
  const Cell det_a = run_cell(det_corpus, sse::PaddingMode::kNone, det_bk);
  const Cell det_b = run_cell(det_corpus, sse::PaddingMode::kNone, det_bk);
  const bool deterministic = det_a.transcript == det_b.transcript &&
                             det_a.recovered == det_b.recovered &&
                             det_a.confident == det_b.confident;

  bench::human("\navg recovery by padding:    none %.1f%%  pow2 %.1f%%  full_nu %.1f%%\n",
               avg_none * 100, avg_pow2 * 100, avg_full * 100);
  bench::human("avg recovery by background: known %.1f%%  similar %.1f%%  dissimilar %.1f%%\n",
               avg_known * 100, avg_similar * 100, avg_dissimilar * 100);
  bench::human("padding monotonic: %s, similarity monotonic: %s, deterministic: %s\n",
               padding_monotonic ? "yes" : "NO", similarity_monotonic ? "yes" : "NO",
               deterministic ? "yes" : "NO");

  std::size_t groups_total = 0, recovered_total = 0, confident_total = 0,
              transcript_records = 0;
  auto cell_array = bench::Json::array();
  for (const Cell& c : cells) {
    groups_total += c.groups;
    recovered_total += c.recovered;
    confident_total += c.confident;
    transcript_records += c.queries;
    auto j = bench::Json::object();
    j.set("documents", c.documents);
    j.set("padding", c.padding);
    j.set("background", c.background);
    j.set("groups", c.groups);
    j.set("queries", c.queries);
    j.set("recovery", c.recovery);
    j.set("confident", c.confident);
    j.set("widths_informative", c.widths_informative);
    cell_array.push(std::move(j));
  }

  auto results = bench::Json::object();
  results.set("cells", std::move(cell_array));
  results.set("avg_recovery_none", avg_none);
  results.set("avg_recovery_pow2", avg_pow2);
  results.set("avg_recovery_full_nu", avg_full);
  results.set("avg_recovery_known_data", avg_known);
  results.set("avg_recovery_similar", avg_similar);
  results.set("avg_recovery_dissimilar", avg_dissimilar);
  results.set("baseline_recovery", baseline_recovery);

  auto counters = bench::counters_json();
  counters.set("attack_runs", cells.size() + 2);
  counters.set("attack_groups_total", groups_total);
  counters.set("attack_recovered_total", recovered_total);
  counters.set("attack_confident_total", confident_total);
  counters.set("attack_transcript_records", transcript_records);
  counters.set("attack_above_chance", above_chance ? 1 : 0);
  counters.set("attack_padding_monotonic", padding_monotonic ? 1 : 0);
  counters.set("attack_similarity_monotonic", similarity_monotonic ? 1 : 0);
  counters.set("attack_deterministic", deterministic ? 1 : 0);

  bench::emit(bench::doc("attack_recovery", "Security evaluation")
                  .set("results", std::move(results))
                  .set("counters", std::move(counters)));
  return 0;
}
