// Ablation D — parallel index construction. Table I shows the one-to-many
// mapping dominating BuildIndex; rows are independent, so the obvious
// systems fix is to fan them over a pool. This bench sweeps the worker
// count on the Table I workload and reports wall time and speedup.
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "sse/keys.h"
#include "sse/rsse_scheme.h"
#include "util/stopwatch.h"

int main() {
  using namespace rsse;
  bench::banner("Ablation D — multi-threaded BuildIndex (Table I workload)");

  const ir::Corpus corpus = ir::generate_corpus(bench::fig4_corpus_options());
  const sse::RsseScheme scheme(sse::keygen());
  // Fix the quantizer once so every run builds the identical index.
  const auto reference = scheme.build_index(corpus);
  std::printf("corpus: 1000 files, %llu keywords, %llu postings\n",
              static_cast<unsigned long long>(reference.stats.num_keywords),
              static_cast<unsigned long long>(reference.stats.num_postings));

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware threads: %u\n\n", hw);
  std::printf("%-10s %14s %14s %12s\n", "threads", "wall (s)", "CPU opm (s)", "speedup");

  double baseline_wall = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    if (threads > 2 * hw) break;
    Stopwatch watch;
    const auto built = scheme.build_index(corpus, reference.quantizer,
                                          sse::RsseScheme::BuildOptions{threads});
    const double wall = watch.elapsed_seconds();
    if (threads == 1) baseline_wall = wall;
    std::printf("%-10zu %14.2f %14.2f %11.2fx\n", threads, wall,
                built.stats.opm_seconds, baseline_wall / wall);
  }
  std::printf("\n(the OPM stage parallelizes near-linearly until the memory-bound\n"
              " entry encryption and padding dominate)\n");
  return 0;
}
