// Ablation D — parallel index construction. Table I shows the one-to-many
// mapping dominating BuildIndex; rows are independent, so the obvious
// systems fix is to fan them over a pool. This bench sweeps the worker
// count on the Table I workload and reports wall time and speedup.
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "sse/keys.h"
#include "sse/rsse_scheme.h"
#include "util/stopwatch.h"

int main() {
  using namespace rsse;
  bench::banner("Ablation D — multi-threaded BuildIndex (Table I workload)");

  auto opts = bench::fig4_corpus_options();
  if (bench::quick()) {
    opts.num_documents = 250;
    opts.injected[0].document_count = 250;
  }
  const ir::Corpus corpus = ir::generate_corpus(opts);
  const sse::RsseScheme scheme(sse::keygen());
  // Fix the quantizer once so every run builds the identical index.
  const auto reference = scheme.build_index(corpus);
  bench::human("corpus: %zu files, %llu keywords, %llu postings\n", corpus.size(),
              static_cast<unsigned long long>(reference.stats.num_keywords),
              static_cast<unsigned long long>(reference.stats.num_postings));

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  bench::human("hardware threads: %u\n\n", hw);
  bench::human("%-10s %14s %14s %12s\n", "threads", "wall (s)", "CPU opm (s)", "speedup");

  const std::vector<unsigned> sweep =
      bench::quick() ? std::vector<unsigned>{1u, 2u, 4u}
                     : std::vector<unsigned>{1u, 2u, 4u, 8u, 16u};
  auto rows = bench::Json::array();
  double baseline_wall = 0.0;
  for (std::size_t threads : sweep) {
    if (threads > 2 * hw) break;
    Stopwatch watch;
    const auto built = scheme.build_index(corpus, reference.quantizer,
                                          sse::RsseScheme::BuildOptions{threads});
    const double wall = watch.elapsed_seconds();
    if (threads == 1) baseline_wall = wall;
    bench::human("%-10zu %14.2f %14.2f %11.2fx\n", threads, wall,
                built.stats.opm_seconds, baseline_wall / wall);
    auto row = bench::Json::object();
    row.set("threads", threads);
    row.set("wall_seconds", wall);
    row.set("opm_cpu_seconds", built.stats.opm_seconds);
    row.set("speedup_vs_1", baseline_wall / wall);
    rows.push(std::move(row));
  }
  bench::human("\n(the OPM stage parallelizes near-linearly until the memory-bound\n"
              " entry encryption and padding dominate)\n");

  auto results = bench::Json::object();
  results.set("files", corpus.size());
  results.set("keywords", reference.stats.num_keywords);
  results.set("postings", reference.stats.num_postings);
  results.set("rows", std::move(rows));
  bench::emit(bench::doc("ablation_parallel_build", "Ablation D")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
