// Table I reproduction: index construction overhead for 1000 RFC-like
// files. The paper reports, per keyword: posting-list size 12.414 KB and
// build time 5.44 s, with the raw (unencrypted) index taking 2.31 s —
// i.e. the one-to-many mapping dominates construction. We print the same
// rows plus the breakdown, and the whole-index totals.
#include <cstdio>

#include "bench_common.h"
#include "sse/keys.h"
#include "sse/rsse_scheme.h"

int main() {
  using namespace rsse;
  bench::banner("Table I — index construction overhead (1000 files)");

  auto opts = bench::fig4_corpus_options();
  if (bench::quick()) {
    opts.num_documents = 250;
    opts.injected[0].document_count = 250;
  }
  const ir::Corpus corpus = ir::generate_corpus(opts);
  const sse::RsseScheme scheme(sse::keygen());
  bench::human("building secure index...\n");
  const auto built = scheme.build_index(corpus);
  const auto& stats = built.stats;

  const double keywords = static_cast<double>(stats.num_keywords);
  const double index_kb = static_cast<double>(built.index.byte_size()) / 1024.0;
  const double build_seconds =
      stats.raw_index_seconds + stats.opm_seconds + stats.encrypt_seconds;

  bench::human("\n%-38s %15s %15s\n", "", "this repo", "paper");
  bench::human("%-38s %15zu %15s\n", "Number of files", corpus.size(), "1000");
  bench::human("%-38s %12.3f KB %12s\n", "Per-keyword list size", index_kb / keywords,
              "12.414 KB");
  bench::human("%-38s %13.4f s %13s\n", "Per-keyword list build time",
              build_seconds / keywords, "5.44 s");
  bench::human("%-38s %13.4f s %13s\n", "  of which raw index",
              stats.raw_index_seconds / keywords, "2.31 s");
  bench::human("%-38s %13.4f s %13s\n", "  of which one-to-many mapping",
              stats.opm_seconds / keywords, "(dominant)");
  bench::human("%-38s %13.4f s %13s\n", "  of which entry encryption",
              stats.encrypt_seconds / keywords, "-");

  bench::human("\nwhole-index totals:\n");
  bench::human("  keywords m:              %llu\n",
              static_cast<unsigned long long>(stats.num_keywords));
  bench::human("  genuine postings:        %llu\n",
              static_cast<unsigned long long>(stats.num_postings));
  bench::human("  padded row width nu:     %llu\n",
              static_cast<unsigned long long>(stats.pad_width));
  bench::human("  index size:              %.2f MB\n", index_kb / 1024.0);
  bench::human("  total build time:        %.2f s\n", build_seconds);
  bench::human("  OPM share of build:      %.1f%%  (paper: (5.44-2.31)/5.44 = 57.5%%)\n",
              100.0 * stats.opm_seconds / build_seconds);
  bench::human("\n(absolute times differ — their HGD ran in MATLAB at ~70 ms/mapping;\n"
              " the reproduced shape is OPM dominating the raw-index cost, and the\n"
              " per-entry list size within the same order of magnitude: our entries\n"
              " carry a real 16-byte IV, theirs ~12.4 bytes total.)\n");

  auto results = bench::Json::object();
  results.set("files", corpus.size());
  results.set("keywords", stats.num_keywords);
  results.set("genuine_postings", stats.num_postings);
  results.set("pad_width", stats.pad_width);
  results.set("index_bytes", built.index.byte_size());
  results.set("per_keyword_list_kb", index_kb / keywords);
  results.set("per_keyword_build_seconds", build_seconds / keywords);
  results.set("raw_index_seconds", stats.raw_index_seconds);
  results.set("opm_seconds", stats.opm_seconds);
  results.set("encrypt_seconds", stats.encrypt_seconds);
  results.set("opm_share_of_build", stats.opm_seconds / build_seconds);
  bench::emit(bench::doc("table1_index_construction", "Table I")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
