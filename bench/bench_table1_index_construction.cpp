// Table I reproduction: index construction overhead for 1000 RFC-like
// files. The paper reports, per keyword: posting-list size 12.414 KB and
// build time 5.44 s, with the raw (unencrypted) index taking 2.31 s —
// i.e. the one-to-many mapping dominates construction. We print the same
// rows plus the breakdown, and the whole-index totals.
#include <cstdio>

#include "bench_common.h"
#include "sse/keys.h"
#include "sse/rsse_scheme.h"

int main() {
  using namespace rsse;
  bench::banner("Table I — index construction overhead (1000 files)");

  const ir::Corpus corpus = ir::generate_corpus(bench::fig4_corpus_options());
  const sse::RsseScheme scheme(sse::keygen());
  std::printf("building secure index...\n");
  const auto built = scheme.build_index(corpus);
  const auto& stats = built.stats;

  const double keywords = static_cast<double>(stats.num_keywords);
  const double index_kb = static_cast<double>(built.index.byte_size()) / 1024.0;
  const double build_seconds =
      stats.raw_index_seconds + stats.opm_seconds + stats.encrypt_seconds;

  std::printf("\n%-38s %15s %15s\n", "", "this repo", "paper");
  std::printf("%-38s %15zu %15s\n", "Number of files", corpus.size(), "1000");
  std::printf("%-38s %12.3f KB %12s\n", "Per-keyword list size", index_kb / keywords,
              "12.414 KB");
  std::printf("%-38s %13.4f s %13s\n", "Per-keyword list build time",
              build_seconds / keywords, "5.44 s");
  std::printf("%-38s %13.4f s %13s\n", "  of which raw index",
              stats.raw_index_seconds / keywords, "2.31 s");
  std::printf("%-38s %13.4f s %13s\n", "  of which one-to-many mapping",
              stats.opm_seconds / keywords, "(dominant)");
  std::printf("%-38s %13.4f s %13s\n", "  of which entry encryption",
              stats.encrypt_seconds / keywords, "-");

  std::printf("\nwhole-index totals:\n");
  std::printf("  keywords m:              %llu\n",
              static_cast<unsigned long long>(stats.num_keywords));
  std::printf("  genuine postings:        %llu\n",
              static_cast<unsigned long long>(stats.num_postings));
  std::printf("  padded row width nu:     %llu\n",
              static_cast<unsigned long long>(stats.pad_width));
  std::printf("  index size:              %.2f MB\n", index_kb / 1024.0);
  std::printf("  total build time:        %.2f s\n", build_seconds);
  std::printf("  OPM share of build:      %.1f%%  (paper: (5.44-2.31)/5.44 = 57.5%%)\n",
              100.0 * stats.opm_seconds / build_seconds);
  std::printf("\n(absolute times differ — their HGD ran in MATLAB at ~70 ms/mapping;\n"
              " the reproduced shape is OPM dominating the raw-index cost, and the\n"
              " per-entry list size within the same order of magnitude: our entries\n"
              " carry a real 16-byte IV, theirs ~12.4 bytes total.)\n");
  return 0;
}
