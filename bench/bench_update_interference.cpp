// Update-interference bench (dynamic index, src/seg): ranked top-10
// query latency against one CloudServer while an owner concurrently
// streams kUpdate deltas at 0 / 10 / 50 % of the query rate, with and
// without background compaction. Quantifies what the overlay costs a
// reader: at 0 % the overlay is empty and queries take the static fast
// path; under load every query decrypts the full base row plus every
// segment row before the tombstone-aware merge, and compaction bounds
// how far that segment backlog grows.
//
// The writer is paced against the query counter (one update per fixed
// number of completed queries), not wall-clock sleeps, so the load ratio
// holds across machines of different speeds.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cloud/data_owner.h"
#include "seg/compactor.h"
#include "seg/segmented_index.h"
#include "util/stopwatch.h"

int main() {
  using namespace rsse;
  bench::banner(
      "Update interference — query latency under concurrent kUpdate load");

  auto opts = bench::fig4_corpus_options(150);
  opts.num_documents = bench::scaled<std::size_t>(400, 150);
  opts.injected[0].document_count = opts.num_documents;
  const ir::Corpus corpus = ir::generate_corpus(opts);

  cloud::DataOwner owner;
  cloud::CloudServer built;  // template: index + files copied per run
  bench::human("building index (%zu files)...\n", opts.num_documents);
  owner.outsource_rsse(corpus, built);

  const sse::Trapdoor trapdoor = owner.rsse().trapdoor(bench::kKeyword);
  const Bytes query_bytes = cloud::RankedSearchRequest{trapdoor, 10}.serialize();

  const std::size_t kQueries = bench::scaled<std::size_t>(300, 60);
  const std::size_t kMaxUpdates = kQueries / 2;  // the 50 % load quota

  // Pre-build every update delta owner-side: each batch adds 4 short
  // documents containing the measured keyword (worst case — the updates
  // land on the queried row) and tombstones 2 documents of the previous
  // batch. Building entries costs owner CPU and is excluded from the
  // serving-side measurement; the serialized bytes are replayed into
  // each configuration's fresh server.
  bench::human("pre-building %zu update deltas...\n", kMaxUpdates);
  std::vector<Bytes> payloads;
  payloads.reserve(kMaxUpdates);
  std::uint64_t next_id = 1000000;
  for (std::size_t u = 0; u < kMaxUpdates; ++u) {
    std::vector<ir::Document> adds;
    for (int i = 0; i < 4; ++i) {
      adds.push_back(ir::Document{ir::file_id(next_id + static_cast<std::uint64_t>(i)),
                                  "upd.txt", "network update churn payload"});
    }
    std::vector<sse::FileId> removes;
    if (u > 0) {
      removes.push_back(ir::file_id(next_id - 4));
      removes.push_back(ir::file_id(next_id - 3));
    }
    next_id += 4;
    cloud::UpdateRequest req;
    req.delta_id = u + 1;
    req.delta = owner.build_update(adds, removes);
    payloads.push_back(req.serialize());
  }

  // Counters snapshot AFTER the deterministic owner-side work: the
  // serving phase below is racy by design (writer vs reader threads),
  // so only the build/delta counters are comparable run over run.
  const auto counters = obs::cost::snapshot();

  struct RunResult {
    bench::LatencySummary latency;
    double qps = 0.0;
    std::size_t updates_applied = 0;
    std::size_t sealed_segments = 0;
    std::uint64_t compactions = 0;
  };

  const auto run_config = [&](std::size_t load_pct, bool compaction) {
    cloud::CloudServer server;
    server.store(sse::SecureIndex(built.index()),
                 std::map<std::uint64_t, Bytes>(built.files()));
    // The rank cache would hide the interference entirely at 0 % load
    // (one keyword, repeated); measure the decrypt-and-rank path.
    server.set_rank_cache_enabled(false);
    server.set_segment_policy(seg::SegPolicy{64});
    if (compaction) server.enable_background_compaction(seg::CompactorOptions{4});

    const std::size_t quota = kQueries * load_pct / 100;
    std::atomic<std::size_t> queries_done{0};
    std::atomic<bool> queries_finished{false};
    std::atomic<std::size_t> applied{0};
    std::thread writer([&] {
      if (quota == 0) return;
      cloud::Channel channel(server);
      for (std::size_t u = 0; u < quota; ++u) {
        const std::size_t due = u * kQueries / quota;
        while (queries_done.load(std::memory_order_relaxed) < due &&
               !queries_finished.load(std::memory_order_relaxed))
          std::this_thread::yield();
        if (queries_finished.load(std::memory_order_relaxed)) break;
        (void)channel.call(cloud::MessageType::kUpdate, payloads[u]);
        applied.fetch_add(1, std::memory_order_relaxed);
      }
    });

    cloud::Channel channel(server);
    std::vector<double> latencies_ms;
    latencies_ms.reserve(kQueries);
    Stopwatch total;
    for (std::size_t q = 0; q < kQueries; ++q) {
      Stopwatch watch;
      (void)channel.call(cloud::MessageType::kRankedSearch, query_bytes);
      latencies_ms.push_back(watch.elapsed_seconds() * 1e3);
      queries_done.fetch_add(1, std::memory_order_relaxed);
    }
    const double seconds = total.elapsed_seconds();
    queries_finished.store(true, std::memory_order_relaxed);
    writer.join();
    server.wait_for_compaction_idle();

    RunResult r;
    r.latency = bench::summarize_latencies(latencies_ms);
    r.qps = static_cast<double>(kQueries) / seconds;
    r.updates_applied = applied.load();
    r.sealed_segments = server.segments().sealed_count();
    r.compactions = server.segments().compactions();
    return r;
  };

  auto sweep = bench::Json::array();
  bench::human("\n%-10s %-12s %10s %10s %10s %10s %8s %8s\n", "load", "compaction",
               "p50 ms", "p95 ms", "p99 ms", "QPS", "updates", "merges");
  for (const bool compaction : {false, true}) {
    for (const std::size_t load_pct : {std::size_t{0}, std::size_t{10}, std::size_t{50}}) {
      const RunResult r = run_config(load_pct, compaction);
      bench::human("%-10zu %-12s %10.3f %10.3f %10.3f %10.0f %8zu %8llu\n", load_pct,
                   compaction ? "background" : "off", r.latency.p50, r.latency.p95,
                   r.latency.p99, r.qps, r.updates_applied,
                   static_cast<unsigned long long>(r.compactions));
      auto row = bench::Json::object();
      row.set("update_load_pct", load_pct);
      row.set("background_compaction", compaction);
      row.set("query_latency", bench::latency_json(r.latency));
      row.set("qps", r.qps);
      row.set("updates_applied", r.updates_applied);
      row.set("sealed_segments_end", r.sealed_segments);
      row.set("compactions", r.compactions);
      sweep.push(std::move(row));
    }
  }
  bench::human("\n(0%% load = empty overlay, static fast path; under load every\n"
               " query ranks the full base row plus all segment rows before the\n"
               " tombstone merge — compaction caps the segment count)\n");

  auto document = bench::doc("bench_update_interference", "dynamic-index ablation");
  auto results = bench::Json::object();
  results.set("queries", kQueries);
  results.set("sweep", std::move(sweep));
  document.set("results", std::move(results));
  document.set("counters", bench::counters_json(counters));
  bench::emit(document);
  return 0;
}
