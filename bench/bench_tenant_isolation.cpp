// Tenant-isolation bench: what deficit-weighted-round-robin scheduling
// buys over a plain FIFO queue when one tenant floods a shared host.
//
// Three tenants share one TenantHost with a small worker pool. Two
// "victim" tenants run a fixed ranked-search workload and record
// per-query latency; an optional "flood" tenant pushes a much larger
// fixed batch of identical searches through the same pool. The matrix
// {fair, fifo} x {0 flooded, 1 flooded} quantifies the isolation: under
// FIFO the flood's backlog sits in front of the victims' queries, under
// DWRR the flood only ever delays its own queue.
//
// Every scenario issues a FIXED number of requests (never time-boxed),
// so the crypto-cost counters stay deterministic for the CI drift gate;
// only the timings vary with the machine.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cloud/data_owner.h"
#include "tenant/host.h"
#include "tenant/scoped_transport.h"
#include "util/stopwatch.h"

int main() {
  using namespace rsse;
  bench::banner("Tenant isolation — DWRR vs FIFO under a flooding tenant");

  // One corpus per tenant: same shape, different seeds (distinct keys,
  // distinct ciphertexts — fully isolated namespaces).
  const std::vector<std::string> tenants = {"flood", "victim_a", "victim_b"};
  ir::CorpusGenOptions opts;
  opts.num_documents = bench::scaled<std::size_t>(150, 60);
  opts.vocabulary_size = 120;
  opts.min_tokens = 60;
  opts.max_tokens = 250;
  opts.injected.push_back(
      ir::InjectedKeyword{bench::kKeyword, bench::scaled<std::size_t>(100, 40), 0.3, 60});
  std::vector<ir::Corpus> corpora;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    opts.seed = 41 + i;
    corpora.push_back(ir::generate_corpus(opts));
  }

  const int kVictimQueries = bench::scaled(150, 40);
  const int kFloodQueries = bench::scaled(1200, 300);
  constexpr int kFloodThreads = 4;

  struct TenantStats {
    double qps = 0.0;
    bench::LatencySummary latency;
  };

  // Runs one scenario and returns per-tenant stats (victims measured,
  // flood reported as throughput only).
  const auto scenario = [&](bool fair, bool flooded) {
    tenant::TenantHostOptions options;
    options.scheduler.workers = 2;  // small pool: dispatch order matters
    options.scheduler.fair = fair;
    tenant::TenantHost host(options);

    std::vector<Bytes> requests;  // per-tenant serialized ranked search
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      cloud::CloudServer& server =
          host.add_tenant(tenant::TenantConfig{tenants[i], {}, true});
      cloud::DataOwner owner;
      owner.outsource_rsse(corpora[i], server);
      server.set_rank_cache_enabled(false);  // fixed crypto work per query
      const sse::Trapdoor trapdoor = owner.rsse().trapdoor(bench::kKeyword);
      requests.push_back(cloud::RankedSearchRequest{trapdoor, 10}.serialize());
    }

    std::vector<TenantStats> stats(tenants.size());
    std::vector<std::vector<double>> latencies(tenants.size());
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    const Stopwatch scenario_watch;

    if (flooded) {
      for (int t = 0; t < kFloodThreads; ++t) {
        threads.emplace_back([&] {
          try {
            cloud::Channel channel(host);
            tenant::ScopedTransport transport(channel, tenants[0]);
            for (int q = 0; q < kFloodQueries / kFloodThreads; ++q)
              (void)transport.call(cloud::MessageType::kRankedSearch, requests[0]);
          } catch (const std::exception&) {
            ++failures;
          }
        });
      }
    }
    for (std::size_t i = 1; i < tenants.size(); ++i) {
      latencies[i].reserve(static_cast<std::size_t>(kVictimQueries));
      threads.emplace_back([&, i] {
        try {
          cloud::Channel channel(host);
          tenant::ScopedTransport transport(channel, tenants[i]);
          Stopwatch total;
          for (int q = 0; q < kVictimQueries; ++q) {
            Stopwatch one;
            (void)transport.call(cloud::MessageType::kRankedSearch, requests[i]);
            latencies[i].push_back(one.elapsed_ms());
          }
          stats[i].qps = kVictimQueries / total.elapsed_seconds();
        } catch (const std::exception&) {
          ++failures;
        }
      });
    }
    for (auto& t : threads) t.join();
    if (failures.load() != 0) std::abort();
    if (flooded)
      stats[0].qps = kFloodQueries / scenario_watch.elapsed_seconds();
    for (std::size_t i = 1; i < tenants.size(); ++i)
      stats[i].latency = bench::summarize_latencies(latencies[i]);
    return stats;
  };

  auto scenarios = bench::Json::array();
  bench::human("\n%-18s %-10s %12s %10s %10s %10s\n", "scenario", "tenant",
               "QPS", "p50 ms", "p95 ms", "p99 ms");
  for (const bool flooded : {false, true}) {
    for (const bool fair : {true, false}) {
      const auto stats = scenario(fair, flooded);
      const std::string label =
          std::string(fair ? "fair" : "fifo") + (flooded ? "+flood" : "");
      auto row = bench::Json::object();
      row.set("scheduler", fair ? "fair" : "fifo");
      row.set("flooded", flooded);
      auto per_tenant = bench::Json::array();
      for (std::size_t i = 0; i < tenants.size(); ++i) {
        if (i == 0 && !flooded) continue;  // flood tenant idle this round
        bench::human("%-18s %-10s %12.0f %10.2f %10.2f %10.2f\n", label.c_str(),
                     tenants[i].c_str(), stats[i].qps, stats[i].latency.p50,
                     stats[i].latency.p95, stats[i].latency.p99);
        auto t = bench::Json::object();
        t.set("tenant", tenants[i]);
        t.set("qps", stats[i].qps);
        if (i != 0) t.set("latency", bench::latency_json(stats[i].latency));
        per_tenant.push(std::move(t));
      }
      row.set("tenants", std::move(per_tenant));
      scenarios.push(std::move(row));
    }
  }
  bench::human("\n(victims run %d queries each; the flood pushes %d through the\n"
               " same 2-worker pool — compare victim p95/p99 fair vs fifo)\n",
               kVictimQueries, kFloodQueries);

  auto results = bench::Json::object();
  results.set("files_per_tenant", opts.num_documents);
  results.set("victim_queries", kVictimQueries);
  results.set("flood_queries", kFloodQueries);
  results.set("workers", 2);
  results.set("scenarios", std::move(scenarios));
  bench::emit(bench::doc("tenant_isolation", "Multi-tenant serving")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
