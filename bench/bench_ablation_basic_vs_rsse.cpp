// Ablation A — the Sec. III-C argument quantified: what the Basic
// Scheme's SSE-strength security costs against RSSE, per search, in
// bandwidth and round trips. Three protocols on the same corpus:
//   RSSE (1 round, top-k files),
//   Basic one-round (ALL matching files),
//   Basic two-round (entries, then k files).
#include <cstdio>

#include "bench_common.h"
#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "crypto/csprng.h"

int main() {
  using namespace rsse;
  bench::banner("Ablation A — Basic Scheme vs RSSE: bandwidth and round trips");

  // A moderate corpus keeps the Basic index build quick; the keyword
  // matches 300 of 400 files so "all matching files" is genuinely heavy.
  auto opts = bench::fig4_corpus_options(150);
  opts.num_documents = bench::scaled<std::size_t>(400, 200);
  opts.injected[0].document_count = bench::scaled<std::size_t>(300, 150);
  const std::size_t matching = opts.injected[0].document_count;

  const ir::Corpus corpus = ir::generate_corpus(opts);
  cloud::DataOwner owner;
  cloud::CloudServer rsse_server;
  cloud::CloudServer basic_server;
  bench::human("building both indexes (%zu files)...\n", opts.num_documents);
  owner.outsource_rsse(corpus, rsse_server);
  owner.outsource_basic(corpus, basic_server);

  const Bytes user_key = crypto::random_bytes(32);
  const auto credentials = cloud::AuthorizationService::open(
      user_key, "bench", owner.enroll_user(user_key, "bench"));

  bench::human("\nmatching files for \"%s\": %zu of %zu\n", bench::kKeyword, matching,
              corpus.size());
  bench::human("\n%-6s | %-22s | %-22s | %-22s\n", "k", "RSSE (1 round)",
              "Basic 1-round", "Basic 2-round");
  bench::human("%-6s | %10s %11s | %10s %11s | %10s %11s\n", "", "RTT", "KB down",
              "RTT", "KB down", "RTT", "KB down");
  auto rows = bench::Json::array();
  for (std::size_t k : {1, 5, 10, 25, 50, 100}) {
    cloud::Channel c1(rsse_server);
    cloud::DataUser u1(credentials, c1);
    u1.ranked_search(bench::kKeyword, k);

    cloud::Channel c2(basic_server);
    cloud::DataUser u2(credentials, c2);
    u2.basic_search_one_round(bench::kKeyword, k);

    cloud::Channel c3(basic_server);
    cloud::DataUser u3(credentials, c3);
    u3.basic_search_two_round(bench::kKeyword, k);

    const auto kb = [](std::uint64_t bytes) {
      return static_cast<double>(bytes) / 1024.0;
    };
    bench::human("%-6zu | %10llu %11.1f | %10llu %11.1f | %10llu %11.1f\n", k,
                static_cast<unsigned long long>(c1.stats().round_trips),
                kb(c1.stats().bytes_down),
                static_cast<unsigned long long>(c2.stats().round_trips),
                kb(c2.stats().bytes_down),
                static_cast<unsigned long long>(c3.stats().round_trips),
                kb(c3.stats().bytes_down));
    auto row = bench::Json::object();
    row.set("k", k);
    row.set("rsse_round_trips", c1.stats().round_trips);
    row.set("rsse_bytes_down", c1.stats().bytes_down);
    row.set("basic1_round_trips", c2.stats().round_trips);
    row.set("basic1_bytes_down", c2.stats().bytes_down);
    row.set("basic2_round_trips", c3.stats().round_trips);
    row.set("basic2_bytes_down", c3.stats().bytes_down);
    rows.push(std::move(row));
  }
  bench::human("\n(the paper's claims: Basic 1-round pays all-matching-files bandwidth\n"
              " regardless of k; Basic 2-round fixes bandwidth but pays a second RTT;\n"
              " RSSE pays neither, leaking relevance order instead.)\n");

  // Modeled end-to-end latency on a WAN: time = RTTs * rtt + bytes/bw.
  // The paper argues in these terms (Sec. I pay-as-you-use bandwidth,
  // Sec. III-C two round-trip time); the model turns the counters above
  // into seconds a user would actually wait.
  const double rtt_s = 0.05;                   // 50 ms round trip
  const double bw_bytes_per_s = 10e6 / 8.0;    // 10 Mbit/s down
  bench::human("\nmodeled user-perceived latency at 50 ms RTT, 10 Mbit/s (top-10):\n");
  {
    cloud::Channel c1(rsse_server);
    cloud::DataUser u1(credentials, c1);
    u1.ranked_search(bench::kKeyword, 10);
    cloud::Channel c2(basic_server);
    cloud::DataUser u2(credentials, c2);
    u2.basic_search_one_round(bench::kKeyword, 10);
    cloud::Channel c3(basic_server);
    cloud::DataUser u3(credentials, c3);
    u3.basic_search_two_round(bench::kKeyword, 10);
    const auto model = [&](const cloud::ChannelStats& stats) {
      return static_cast<double>(stats.round_trips) * rtt_s +
             static_cast<double>(stats.bytes_down) / bw_bytes_per_s;
    };
    bench::human("  RSSE          : %6.2f s\n", model(c1.stats()));
    bench::human("  Basic 1-round : %6.2f s   (the bandwidth penalty)\n",
                model(c2.stats()));
    bench::human("  Basic 2-round : %6.2f s   (the extra-RTT penalty)\n",
                model(c3.stats()));

    auto modeled = bench::Json::object();
    modeled.set("rtt_s", rtt_s);
    modeled.set("bandwidth_bytes_per_s", bw_bytes_per_s);
    modeled.set("rsse_s", model(c1.stats()));
    modeled.set("basic1_s", model(c2.stats()));
    modeled.set("basic2_s", model(c3.stats()));

    auto results = bench::Json::object();
    results.set("files", corpus.size());
    results.set("matching_files", matching);
    results.set("rows", std::move(rows));
    results.set("modeled_top10_latency", std::move(modeled));
    bench::emit(bench::doc("ablation_basic_vs_rsse", "Ablation A")
                    .set("results", std::move(results))
                    .set("counters", bench::counters_json()));
  }
  return 0;
}
