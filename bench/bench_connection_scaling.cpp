// Connection-scaling bench: the epoll reactor server under 1 → thousands
// of concurrent client connections, each running a closed loop of ranked
// top-10 searches over a real TCP socket. Reports per-sweep-point latency
// quantiles and sustained throughput, plus the saturation throughput
// (the best point of the sweep). Every response is byte-compared against
// the expected frame, so the "wrong_results" counter pins correctness
// under full concurrency — scaling that returns garbage is not scaling.
//
// The client side is a single-threaded epoll state machine (non-blocking
// sockets, one outstanding request per connection), so thousands of
// concurrent connections cost no client threads and the measured
// concurrency is real, not thread-pool-limited.
//
// Deterministic counters (drift-gated): requests_total is fixed by the
// sweep, wrong_results and sheds must be 0 (the in-flight cap is off for
// this bench — it measures capacity, not shedding), plus the usual
// crypto-work counters which scale with the request count.
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cloud/data_owner.h"
#include "cloud/protocol.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "util/stopwatch.h"

namespace {

using namespace rsse;

/// One client connection's closed-loop state.
struct ClientConn {
  net::Socket sock;
  std::size_t sent = 0;        // request bytes written this cycle
  Bytes in;                    // response bytes read this cycle
  int cycles_left = 0;
  bool receiving = false;
  std::uint32_t interest = 0;
  std::chrono::steady_clock::time_point cycle_start;
};

struct SweepRow {
  std::size_t connections = 0;
  double qps = 0.0;
  bench::LatencySummary latency;
};

/// Raises RLIMIT_NOFILE toward `wanted` descriptors; returns the soft
/// limit afterwards.
std::size_t raise_fd_limit(std::size_t wanted) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur < wanted) {
    rl.rlim_cur = rl.rlim_max == RLIM_INFINITY
                      ? wanted
                      : std::min<rlim_t>(rl.rlim_max, wanted);
    (void)setrlimit(RLIMIT_NOFILE, &rl);
    (void)getrlimit(RLIMIT_NOFILE, &rl);
  }
  return static_cast<std::size_t>(rl.rlim_cur);
}

}  // namespace

int main() {
  bench::banner("Connection scaling — reactor server, concurrent TCP clients");

  auto opts = bench::fig4_corpus_options(150);
  opts.num_documents = bench::scaled<std::size_t>(300, 120);
  opts.injected[0].document_count = opts.num_documents;
  const ir::Corpus corpus = ir::generate_corpus(opts);

  cloud::DataOwner owner;
  cloud::CloudServer server;
  bench::human("building index (%zu files)...\n", corpus.size());
  owner.outsource_rsse(corpus, server);

  // One pre-serialized ranked top-10 request, and its expected response
  // frame (computed once through the in-process channel — search over a
  // static index is deterministic, so every reply must match it).
  const sse::Trapdoor trapdoor{owner.rsse().row_label(bench::kKeyword),
                               owner.rsse().row_key(bench::kKeyword)};
  const Bytes request_payload = cloud::RankedSearchRequest{trapdoor, 10}.serialize();
  Bytes request_frame{
      static_cast<std::uint8_t>(cloud::MessageType::kRankedSearch)};
  append_u32(request_frame, static_cast<std::uint32_t>(request_payload.size()));
  append(request_frame, request_payload);
  cloud::Channel reference(server);
  const Bytes expected_frame =
      net::encode_response_ok(reference.call(cloud::MessageType::kRankedSearch,
                                             request_payload));

  net::ServerOptions options;
  options.reactor_threads = 2;
  options.workers = std::max<std::size_t>(4, std::thread::hardware_concurrency());
  options.max_in_flight = 0;  // measure capacity, not shedding
  options.max_connections = 20000;
  net::NetworkServer endpoint(server, 0, options);

  const std::vector<std::size_t> sweep =
      bench::quick() ? std::vector<std::size_t>{1, 64, 256}
                     : std::vector<std::size_t>{1, 64, 512, 2048, 5120};
  const int cycles = bench::scaled(20, 5);

  // Client + server side of every connection live in this process: ~2 fds
  // per connection plus headroom.
  const std::size_t fd_allowance = raise_fd_limit(2 * sweep.back() + 256);

  std::uint64_t requests_total = 0;
  std::uint64_t wrong_results = 0;
  std::vector<SweepRow> rows;
  for (const std::size_t n : sweep) {
    if (2 * n + 128 > fd_allowance) {
      // No silent caps: a dropped sweep point is reported, not absorbed
      // into a smaller (and drift-prone) connection count.
      bench::human("SKIPPING %zu connections: fd limit %zu is too low\n", n,
                   fd_allowance);
      continue;
    }

    const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd < 0) {
      bench::human("epoll_create1 failed; aborting sweep\n");
      return 1;
    }
    std::vector<ClientConn> conns(n);
    for (std::size_t i = 0; i < n; ++i) {
      conns[i].sock = net::tcp_connect(endpoint.port());
      conns[i].sock.set_nonblocking(true);
      conns[i].cycles_left = cycles;
      epoll_event ev{};
      ev.events = EPOLLOUT | EPOLLIN;
      ev.data.u64 = i;
      ::epoll_ctl(epfd, EPOLL_CTL_ADD, conns[i].sock.fd(), &ev);
      conns[i].interest = EPOLLOUT | EPOLLIN;
      conns[i].cycle_start = std::chrono::steady_clock::now();
    }

    std::vector<double> latencies;
    latencies.reserve(n * static_cast<std::size_t>(cycles));
    std::size_t done = 0;
    const Stopwatch wall;
    std::vector<epoll_event> events(1024);
    std::uint8_t chunk[64 * 1024];
    while (done < n) {
      const int ready =
          ::epoll_wait(epfd, events.data(), static_cast<int>(events.size()), 10000);
      if (ready <= 0) {
        bench::human("epoll_wait stalled (%d); aborting\n", ready);
        return 1;
      }
      for (int e = 0; e < ready; ++e) {
        ClientConn& conn = conns[events[static_cast<std::size_t>(e)].data.u64];
        if (conn.cycles_left == 0) continue;
        // Write side: push the rest of this cycle's request.
        while (!conn.receiving && conn.sent < request_frame.size()) {
          const ssize_t sent =
              ::send(conn.sock.fd(), request_frame.data() + conn.sent,
                     request_frame.size() - conn.sent, MSG_NOSIGNAL);
          if (sent < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            bench::human("client send failed\n");
            return 1;
          }
          conn.sent += static_cast<std::size_t>(sent);
          if (conn.sent == request_frame.size()) conn.receiving = true;
        }
        // Read side: assemble the response frame.
        while (conn.receiving) {
          const ssize_t got = ::recv(conn.sock.fd(), chunk, sizeof chunk, 0);
          if (got < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            bench::human("client recv failed\n");
            return 1;
          }
          if (got == 0) {
            bench::human("server closed a client mid-bench\n");
            return 1;
          }
          conn.in.insert(conn.in.end(), chunk, chunk + got);
          if (conn.in.size() < expected_frame.size()) continue;
          latencies.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - conn.cycle_start)
                  .count());
          if (conn.in != expected_frame) ++wrong_results;
          ++requests_total;
          conn.in.clear();
          conn.sent = 0;
          conn.receiving = false;
          if (--conn.cycles_left == 0) {
            ++done;
            ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn.sock.fd(), nullptr);
            break;
          }
          conn.cycle_start = std::chrono::steady_clock::now();
        }
        // Keep EPOLLOUT armed only while a request is partially written
        // (otherwise level-triggered writability busy-loops the driver).
        const std::uint32_t wanted =
            conn.cycles_left == 0
                ? 0
                : (conn.receiving ? EPOLLIN
                                  : static_cast<std::uint32_t>(EPOLLIN | EPOLLOUT));
        if (wanted != 0 && wanted != conn.interest) {
          epoll_event ev{};
          ev.events = wanted;
          ev.data.u64 = events[static_cast<std::size_t>(e)].data.u64;
          if (::epoll_ctl(epfd, EPOLL_CTL_MOD, conn.sock.fd(), &ev) == 0)
            conn.interest = wanted;
        }
      }
    }
    const double seconds = wall.elapsed_seconds();
    ::close(epfd);

    SweepRow row;
    row.connections = n;
    row.qps = static_cast<double>(latencies.size()) / seconds;
    row.latency = bench::summarize_latencies(latencies);
    rows.push_back(row);
    bench::human("%5zu connections: %8.0f QPS   p50 %7.3f ms   p99 %7.3f ms\n",
                 n, row.qps, row.latency.p50, row.latency.p99);
    conns.clear();  // closes the client sockets before the next point
  }

  double saturation_qps = 0.0;
  for (const SweepRow& row : rows) saturation_qps = std::max(saturation_qps, row.qps);

  auto json_rows = bench::Json::array();
  for (const SweepRow& row : rows) {
    auto j = bench::Json::object();
    j.set("connections", row.connections);
    j.set("qps", row.qps);
    j.set("p50_ms", row.latency.p50);
    j.set("p95_ms", row.latency.p95);
    j.set("p99_ms", row.latency.p99);
    json_rows.push(std::move(j));
  }
  auto results = bench::Json::object();
  results.set("cycles_per_connection", cycles);
  results.set("reactor_threads", options.reactor_threads);
  results.set("workers", static_cast<std::uint64_t>(options.workers));
  results.set("max_connections", static_cast<std::uint64_t>(rows.empty() ? 0 : rows.back().connections));
  results.set("saturation_qps", saturation_qps);
  results.set("rows", std::move(json_rows));

  // Reactor-side determinism pins from the server's own registry.
  obs::MetricsRegistry& registry = server.metrics_registry();
  auto counters = bench::counters_json();
  counters.set("requests_total", requests_total);
  counters.set("wrong_results", wrong_results);
  counters.set("sheds", registry.counter("rsse_net_shed_total", "").value());
  counters.set("connections_rejected",
               registry.counter("rsse_net_connections_rejected_total", "").value());
  bench::emit(bench::doc("connection_scaling", "Connection scaling")
                  .set("results", std::move(results))
                  .set("counters", std::move(counters)));
  return 0;
}
