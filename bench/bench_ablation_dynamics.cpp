// Ablation B — score dynamics (the Sec. VII comparison): when the score
// distribution drifts (new files with very different lengths/TFs), how
// many PREVIOUSLY OUTSOURCED encrypted scores must be recomputed?
//
//   one-to-many OPM (ours): 0 — buckets depend only on (key, level).
//   bucket transform [18]:  refit moves boundaries; most values change.
//   sampled CDF [16]:       retrain reshapes the transform; ditto.
//
// We also measure the owner-side cost of an incremental add on a live
// RSSE index.
#include <cstdio>

#include "baseline/bucket_opm.h"
#include "baseline/sample_opm.h"
#include "bench_common.h"
#include "cloud/data_owner.h"
#include "ir/analyzer.h"
#include "opse/opm.h"
#include "opse/quantizer.h"
#include "util/rng.h"
#include "util/stopwatch.h"

int main() {
  using namespace rsse;
  bench::banner("Ablation B — score dynamics: ours vs bucket [18] vs sampled CDF [16]");

  auto opts = bench::fig4_corpus_options();
  opts.num_documents = bench::scaled<std::size_t>(500, 200);
  opts.injected[0].document_count = opts.num_documents;
  const ir::Corpus corpus = ir::generate_corpus(opts);
  const auto index = ir::InvertedIndex::build(corpus, ir::Analyzer());
  const std::vector<double> scores = bench::keyword_scores(index, bench::kKeyword);

  // The three transforms over the same initial sample.
  const auto quantizer = opse::ScoreQuantizer::from_scores(scores, 128);
  const opse::OneToManyOpm ours(to_bytes("dynamics-key"), {128, 1ull << 46});
  baseline::BucketOpm bucket(scores, 64, 1ull << 46, to_bytes("bucket-key"));
  baseline::SampleOpm sampled(scores, 64, 1ull << 46, to_bytes("sample-key"));

  std::vector<std::uint64_t> ours_before;
  std::vector<std::uint64_t> bucket_before;
  std::vector<std::uint64_t> sample_before;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    ours_before.push_back(ours.map(quantizer.quantize(scores[i]), i));
    bucket_before.push_back(bucket.map(scores[i], i));
    sample_before.push_back(sampled.map(scores[i], i));
  }

  // Drift: a batch of new scores from a very different regime (short
  // files, high TF => scores far above the old range).
  Xoshiro256 rng(5);
  std::vector<double> drifted = scores;
  for (int i = 0; i < 500; ++i) drifted.push_back(0.5 + rng.next_double());

  // The baselines must refit to stay order-faithful on the new data.
  bucket.refit(drifted);
  sampled.retrain(drifted);
  // Ours keeps the same key and quantizer: nothing to refit.

  std::size_t bucket_moved = 0;
  std::size_t sample_moved = 0;
  std::size_t ours_moved = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (ours.map(quantizer.quantize(scores[i]), i) != ours_before[i]) ++ours_moved;
    if (bucket.map(scores[i], i) != bucket_before[i]) ++bucket_moved;
    if (sampled.map(scores[i], i) != sample_before[i]) ++sample_moved;
  }

  bench::human("\npreviously outsourced scores: %zu; after distribution drift:\n",
              scores.size());
  bench::human("%-34s %18s %18s\n", "transform", "values invalidated", "rebuild needed");
  bench::human("%-34s %18zu %18s\n", "one-to-many OPM (this paper)", ours_moved, "no");
  bench::human("%-34s %18zu %18s\n", "bucket transform [18]", bucket_moved, "yes");
  bench::human("%-34s %18zu %18s\n", "sampled CDF [16]", sample_moved, "yes");

  // Incremental add on a live outsourced index.
  cloud::DataOwner owner;
  cloud::CloudServer server;
  owner.outsource_rsse(corpus, server);
  ir::Document doc{ir::file_id(900000), "new.txt",
                   "network network network fresh incremental document body"};
  Stopwatch watch;
  const auto stats = owner.add_document(server, doc);
  const double add_ms = watch.elapsed_ms();
  bench::human("\nincremental add of one document on the live index:\n");
  bench::human("  keywords touched:        %zu\n", stats.keywords_touched);
  bench::human("  padding slots consumed:  %zu\n", stats.padding_slots_consumed);
  bench::human("  rows grown:              %zu\n", stats.rows_grown);
  bench::human("  owner-side time:         %.2f ms (vs full index rebuild: seconds)\n",
              add_ms);

  auto results = bench::Json::object();
  results.set("outsourced_scores", scores.size());
  results.set("ours_invalidated", ours_moved);
  results.set("bucket_invalidated", bucket_moved);
  results.set("sampled_invalidated", sample_moved);
  results.set("add_keywords_touched", stats.keywords_touched);
  results.set("add_padding_slots_consumed", stats.padding_slots_consumed);
  results.set("add_rows_grown", stats.rows_grown);
  results.set("add_owner_ms", add_ms);
  bench::emit(bench::doc("ablation_dynamics", "Ablation B")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
