// Throughput bench: sustained ranked-search queries per second against
// one CloudServer, in-process vs real TCP loopback, swept over client
// concurrency, with and without the rank cache. Quantifies the serving
// cost of the whole stack (framing + decryption + ranking + file blobs).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cloud/data_owner.h"
#include "ir/query_workload.h"
#include "net/remote_channel.h"
#include "net/server.h"
#include "util/stopwatch.h"

int main() {
  using namespace rsse;
  bench::banner("Throughput — ranked top-10 search, in-process vs TCP loopback");

  auto opts = bench::fig4_corpus_options(150);
  opts.num_documents = bench::scaled<std::size_t>(400, 200);
  opts.injected[0].document_count = bench::scaled<std::size_t>(300, 150);
  const ir::Corpus corpus = ir::generate_corpus(opts);

  cloud::DataOwner owner;
  cloud::CloudServer server;
  bench::human("building index (%zu files)...\n", opts.num_documents);
  owner.outsource_rsse(corpus, server);
  const sse::Trapdoor trapdoor = owner.rsse().trapdoor(bench::kKeyword);
  const cloud::RankedSearchRequest request{trapdoor, 10};
  const Bytes request_bytes = request.serialize();

  net::NetworkServer net(server, 0);

  const int kQueriesPerClient = bench::scaled(200, 40);
  const auto run_clients = [&](int clients, bool remote) {
    std::atomic<int> failures{0};
    Stopwatch watch;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        try {
          if (remote) {
            net::RemoteChannel channel(net.port());
            for (int q = 0; q < kQueriesPerClient; ++q)
              (void)channel.call(cloud::MessageType::kRankedSearch, request_bytes);
          } else {
            cloud::Channel channel(server);
            for (int q = 0; q < kQueriesPerClient; ++q)
              (void)channel.call(cloud::MessageType::kRankedSearch, request_bytes);
          }
        } catch (const std::exception&) {
          ++failures;
        }
      });
    }
    for (auto& t : threads) t.join();
    if (failures.load() != 0) std::abort();
    const double seconds = watch.elapsed_seconds();
    return static_cast<double>(clients) * kQueriesPerClient / seconds;
  };

  auto sweep = bench::Json::array();
  bench::human("\n%-10s %16s %16s %16s\n", "clients", "in-proc QPS", "TCP QPS",
              "TCP+cache QPS");
  const std::vector<int> client_counts =
      bench::quick() ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  for (int clients : client_counts) {
    server.set_rank_cache_enabled(false);
    const double local_qps = run_clients(clients, false);
    const double tcp_qps = run_clients(clients, true);
    server.set_rank_cache_enabled(true);
    const double cached_qps = run_clients(clients, true);
    bench::human("%-10d %16.0f %16.0f %16.0f\n", clients, local_qps, tcp_qps, cached_qps);
    auto row = bench::Json::object();
    row.set("clients", clients);
    row.set("in_process_qps", local_qps);
    row.set("tcp_qps", tcp_qps);
    row.set("tcp_cached_qps", cached_qps);
    sweep.push(std::move(row));
  }
  bench::human("\n(each query decrypts a 1000-entry padded row unless the rank cache\n"
              " short-circuits it; TCP adds framing + loopback syscalls)\n");

  // --- Mixed Zipfian keyword workload -------------------------------
  // Real traffic spreads over the vocabulary; with the rank cache on,
  // the hit rate (and so the speedup) depends on the query skew.
  const auto inverted =
      ir::InvertedIndex::build(corpus, owner.rsse().analyzer());
  ir::QueryWorkloadOptions wl;
  wl.num_queries = bench::scaled<std::size_t>(2000, 400);
  wl.zipf_exponent = 1.1;
  wl.seed = 9;
  const ir::QueryWorkload workload(inverted, wl);
  std::vector<Bytes> requests;
  requests.reserve(workload.queries().size());
  for (const std::string& q : workload.queries()) {
    const sse::Trapdoor t{owner.rsse().row_label(q), owner.rsse().row_key(q)};
    requests.push_back(cloud::RankedSearchRequest{t, 10}.serialize());
  }
  bench::human("\nmixed Zipf workload: %zu queries over %zu distinct keywords\n",
              workload.queries().size(), workload.distinct_keywords());
  auto mixed = bench::Json::object();
  mixed.set("queries", workload.queries().size());
  mixed.set("distinct_keywords", workload.distinct_keywords());
  for (const bool cached : {false, true}) {
    server.set_rank_cache_enabled(cached);
    server.clear_rank_cache();
    cloud::Channel channel(server);
    Stopwatch watch;
    for (const Bytes& request : requests)
      (void)channel.call(cloud::MessageType::kRankedSearch, request);
    const double qps =
        static_cast<double>(requests.size()) / watch.elapsed_seconds();
    bench::human("  rank cache %-3s : %8.0f QPS\n", cached ? "on" : "off", qps);
    mixed.set(cached ? "cache_on_qps" : "cache_off_qps", qps);
  }

  auto results = bench::Json::object();
  results.set("files", corpus.size());
  results.set("queries_per_client", kQueriesPerClient);
  results.set("sweep", std::move(sweep));
  results.set("mixed_zipf_workload", std::move(mixed));
  bench::emit(bench::doc("throughput", "Serving stack")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
