// Cluster scaling bench: sustained ranked-search throughput and latency
// quantiles against a sharded cluster (src/cluster), swept over shard
// count on a Zipfian keyword workload. Emits a JSON document so the
// scaling figure can be regenerated from the output.
//
// Each shard is modelled as a remote endpoint with a fixed serving
// capacity: one connection whose transport sleeps for the service time a
// real shard would spend (~2 ms for a ranked search — the posting-row
// decrypt dominates, Table I — and ~0.2 ms for a blob fetch, a lookup
// plus transfer). The ReplicaSet's per-connection lock then serializes
// each endpoint exactly like a busy remote server, so adding shards adds
// capacity the way adding machines would — including the cost the
// coordinator pays for cross-shard blob fetches — and the measured
// speedup is independent of how many local cores this bench happens to
// get. The Zipf skew caps the speedup honestly: the hot keyword's shard
// stays the bottleneck.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cloud/data_owner.h"
#include "cluster/coordinator.h"
#include "ir/query_workload.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace {

constexpr double kSearchServiceMs = 2.0;
constexpr double kFetchServiceMs = 0.2;

// A shard endpoint of fixed capacity: the in-process channel plus the
// simulated remote service time.
class ShardEndpoint final : public rsse::cloud::Transport {
 public:
  explicit ShardEndpoint(rsse::cloud::CloudServer& server) : channel_(server) {}

  using rsse::cloud::Transport::call;
  rsse::Bytes call(rsse::cloud::MessageType type, rsse::BytesView request,
                   const rsse::Deadline& deadline) override {
    const bool search = type == rsse::cloud::MessageType::kRankedSearch ||
                        type == rsse::cloud::MessageType::kMultiSearch;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        search ? kSearchServiceMs : kFetchServiceMs));
    return channel_.call(type, request, deadline);
  }

 private:
  rsse::cloud::Channel channel_;
};

struct Row {
  std::uint32_t shards = 0;
  double qps = 0.0;
  rsse::bench::LatencySummary latency;
  // From the coordinator's metrics registry after the sweep.
  std::uint64_t scatter_gathers = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
};

}  // namespace

int main() {
  using namespace rsse;
  bench::banner("Cluster scaling — ranked top-10 QPS vs shard count (Zipf workload)");

  auto opts = bench::fig4_corpus_options(250);
  opts.num_documents = bench::scaled<std::size_t>(500, 250);
  opts.max_tokens = 600;  // small blobs: endpoint capacity, not local
                          // (de)serialization, should set the throughput
  opts.injected[0].document_count = bench::scaled<std::size_t>(400, 200);
  const ir::Corpus corpus = ir::generate_corpus(opts);

  cloud::DataOwner owner;
  cloud::CloudServer server;
  bench::human("building index (%zu files)...\n", corpus.size());
  owner.outsource_rsse(corpus, server);

  const auto inverted = ir::InvertedIndex::build(corpus, owner.rsse().analyzer());
  ir::QueryWorkloadOptions wl;
  wl.num_queries = bench::scaled<std::size_t>(2000, 400);
  wl.zipf_exponent = 1.1;
  wl.seed = 17;
  const ir::QueryWorkload workload(inverted, wl);
  std::vector<Bytes> requests;
  requests.reserve(workload.queries().size());
  for (const std::string& q : workload.queries()) {
    const sse::Trapdoor t{owner.rsse().row_label(q), owner.rsse().row_key(q)};
    requests.push_back(cloud::RankedSearchRequest{t, 10}.serialize());
  }
  bench::human("workload: %zu queries over %zu distinct keywords"
              " (%.1f ms search / %.1f ms fetch service time)\n\n",
              requests.size(), workload.distinct_keywords(), kSearchServiceMs,
              kFetchServiceMs);

  constexpr int kClients = 16;
  const std::vector<std::uint32_t> shard_counts =
      bench::quick() ? std::vector<std::uint32_t>{1u, 2u, 4u}
                     : std::vector<std::uint32_t>{1u, 2u, 4u, 8u};
  std::vector<Row> rows;
  for (const std::uint32_t shards : shard_counts) {
    const cluster::ShardMap map(shards);
    auto indexes = map.split_index(server.index());
    auto file_sets = map.split_files(server.files());
    std::vector<std::unique_ptr<cloud::CloudServer>> servers;
    std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
    for (std::uint32_t i = 0; i < shards; ++i) {
      servers.push_back(std::make_unique<cloud::CloudServer>());
      servers.back()->store(std::move(indexes[i]), std::move(file_sets[i]));
      sets.push_back(std::make_unique<cluster::ReplicaSet>());
      sets.back()->add_replica(std::make_unique<ShardEndpoint>(*servers.back()));
    }
    cluster::ClusterManifest manifest;
    manifest.num_shards = shards;
    manifest.total_rows = server.index().num_rows();
    manifest.total_files = server.num_files();
    cluster::CoordinatorOptions options;
    options.fanout_threads = 16;
    options.parallel_fetch_threshold = 0;  // fetches have latency: fan out
    cluster::ClusterCoordinator coordinator(manifest, std::move(sets), options);

    std::vector<std::vector<double>> latencies(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    Stopwatch wall;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        auto& mine = latencies[c];
        mine.reserve(requests.size() / kClients + 1);
        for (std::size_t i = c; i < requests.size(); i += kClients) {
          const Stopwatch watch;
          (void)coordinator.call(cloud::MessageType::kRankedSearch, requests[i]);
          mine.push_back(watch.elapsed_ms());
        }
      });
    }
    for (auto& t : clients) t.join();
    const double seconds = wall.elapsed_seconds();

    std::vector<double> all;
    all.reserve(requests.size());
    for (const auto& part : latencies) all.insert(all.end(), part.begin(), part.end());

    Row row;
    row.shards = shards;
    row.qps = static_cast<double>(all.size()) / seconds;
    row.latency = bench::summarize_latencies(all);
    row.scatter_gathers = coordinator.metrics().scatter_gathers;
    for (std::uint32_t s = 0; s < shards; ++s)
      row.failed_attempts += coordinator.shard(s).failed_attempts();
    // Wire traffic from the coordinator's own registry (registration is
    // idempotent: same name = same counter the serving path increments).
    row.bytes_up =
        coordinator.registry().counter("rsse_cluster_bytes_up_total", "").value();
    row.bytes_down =
        coordinator.registry().counter("rsse_cluster_bytes_down_total", "").value();
    rows.push_back(row);
    bench::human("%2u shard(s): %8.0f QPS   p50 %7.3f ms   p99 %7.3f ms"
                "   (%llu merges, %.1f MiB down)\n",
                shards, row.qps, row.latency.p50, row.latency.p99,
                static_cast<unsigned long long>(row.scatter_gathers),
                static_cast<double>(row.bytes_down) / (1024.0 * 1024.0));
  }

  auto json_rows = bench::Json::array();
  for (const Row& r : rows) {
    auto row = bench::Json::object();
    row.set("shards", r.shards);
    row.set("qps", r.qps);
    row.set("p50_ms", r.latency.p50);
    row.set("p95_ms", r.latency.p95);
    row.set("p99_ms", r.latency.p99);
    row.set("speedup_vs_1", r.qps / rows[0].qps);
    row.set("scatter_gathers", r.scatter_gathers);
    row.set("failed_attempts", r.failed_attempts);
    row.set("bytes_up", r.bytes_up);
    row.set("bytes_down", r.bytes_down);
    json_rows.push(std::move(row));
  }
  auto results = bench::Json::object();
  results.set("clients", kClients);
  results.set("queries", requests.size());
  results.set("distinct_keywords", workload.distinct_keywords());
  results.set("zipf_exponent", wl.zipf_exponent);
  results.set("search_service_ms", kSearchServiceMs);
  results.set("fetch_service_ms", kFetchServiceMs);
  results.set("rows", std::move(json_rows));
  bench::emit(bench::doc("cluster_scaling", "Cluster scaling")
                  .set("results", std::move(results))
                  .set("counters", bench::counters_json()));
  return 0;
}
