// Cloud document hosting — the paper's motivating scenario (Sec. I): a
// data owner outsources a large sensitive collection; multiple
// authorized users search it by keyword and retrieve only the top-k most
// relevant files. The example contrasts the three retrieval protocols on
// the same collection and prints the pay-as-you-use bandwidth each one
// costs.
//
// Run: ./build/examples/cloud_hosting
#include <cstdio>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"

int main() {
  using namespace rsse;

  // A synthetic 300-file technical collection; "protocol" appears in 180
  // files with realistic skew (see ir/corpus_gen.h).
  ir::CorpusGenOptions opts;
  opts.num_documents = 300;
  opts.vocabulary_size = 400;
  opts.min_tokens = 150;
  opts.max_tokens = 1200;
  opts.injected.push_back(ir::InjectedKeyword{"protocol", 180, 0.4, 60});
  opts.injected.push_back(ir::InjectedKeyword{"handshake", 45, 0.5, 30});
  opts.seed = 7;
  const ir::Corpus corpus = ir::generate_corpus(opts);
  std::printf("collection: %zu files, %.1f MB plaintext\n", corpus.size(),
              static_cast<double>(corpus.total_bytes()) / (1024.0 * 1024.0));

  // The owner prepares two deployments: the efficient RSSE index and the
  // Basic-Scheme index (for comparison), then enrolls two users.
  cloud::DataOwner owner;
  cloud::CloudServer rsse_cloud;
  cloud::CloudServer basic_cloud;
  const auto report = owner.outsource_rsse(corpus, rsse_cloud);
  owner.outsource_basic(corpus, basic_cloud);
  std::printf("secure index: %.2f MB, %llu keywords; encrypted files: %.2f MB\n",
              static_cast<double>(report.index_bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(report.rsse_stats.num_keywords),
              static_cast<double>(report.file_bytes) / (1024.0 * 1024.0));

  const Bytes alice_key = crypto::random_bytes(32);
  const Bytes bob_key = crypto::random_bytes(32);
  const auto alice_credentials = cloud::AuthorizationService::open(
      alice_key, "alice", owner.enroll_user(alice_key, "alice"));
  const auto bob_credentials = cloud::AuthorizationService::open(
      bob_key, "bob", owner.enroll_user(bob_key, "bob"));

  // Alice uses the efficient RSSE deployment.
  cloud::Channel alice_channel(rsse_cloud);
  cloud::DataUser alice(alice_credentials, alice_channel);
  const auto alice_hits = alice.ranked_search("protocol", 10);
  std::printf("\nalice, RSSE top-10 for \"protocol\":\n");
  for (std::size_t i = 0; i < alice_hits.size(); ++i)
    std::printf("  #%-3zu %s\n", i + 1, alice_hits[i].document.name.c_str());
  std::printf("  cost: %llu RTT, %.1f KB down\n",
              static_cast<unsigned long long>(alice_channel.stats().round_trips),
              static_cast<double>(alice_channel.stats().bytes_down) / 1024.0);

  // Bob is stuck on the Basic-Scheme deployment; he tries both modes.
  cloud::Channel bob_channel(basic_cloud);
  cloud::DataUser bob(bob_credentials, bob_channel);
  const auto bob_one = bob.basic_search_one_round("protocol", 10);
  const auto one_round_stats = bob_channel.stats();
  bob_channel.reset();
  const auto bob_two = bob.basic_search_two_round("protocol", 10);
  const auto two_round_stats = bob_channel.stats();

  std::printf("\nbob, Basic Scheme top-10 for \"protocol\" (same result set):\n");
  std::printf("  one-round : %llu RTT, %.1f KB down (ships ALL 180 matching files;\n"
              "              bob keeps %zu)\n",
              static_cast<unsigned long long>(one_round_stats.round_trips),
              static_cast<double>(one_round_stats.bytes_down) / 1024.0, bob_one.size());
  std::printf("  two-round : %llu RTT, %.1f KB down\n",
              static_cast<unsigned long long>(two_round_stats.round_trips),
              static_cast<double>(two_round_stats.bytes_down) / 1024.0);
  std::printf("  (alice's and bob's top-10 agree: %s)\n",
              [&] {
                for (std::size_t i = 0; i < 10; ++i)
                  if (alice_hits[i].document.id != bob_two[i].document.id) return "no";
                return "yes";
              }());

  // Bob, unlike alice, can see real relevance scores (Basic mode).
  std::printf("\nbob's decrypted scores for his top-3:\n");
  for (std::size_t i = 0; i < 3; ++i)
    std::printf("  %-16s score %.4f\n", bob_two[i].document.name.c_str(),
                bob_two[i].score);
  return 0;
}
