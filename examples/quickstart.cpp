// Quickstart: the smallest end-to-end use of the library.
//
// A data owner encrypts a five-document collection and its searchable
// index, outsources both to a cloud server, authorizes a user, and the
// user retrieves the top-2 most relevant files for a keyword — without
// the server ever seeing a plaintext keyword, file, or relevance score.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "crypto/csprng.h"

int main() {
  using namespace rsse;

  // --- The owner's plaintext collection -------------------------------
  ir::Corpus corpus;
  corpus.add({ir::file_id(0), "routing.txt",
              "network routing protocols: the network forwards packets between "
              "network nodes using routing tables"});
  corpus.add({ir::file_id(1), "crypto.txt",
              "symmetric encryption protects data; keys must be exchanged over a "
              "secure channel"});
  corpus.add({ir::file_id(2), "congestion.txt",
              "congestion control paces senders when the network saturates"});
  corpus.add({ir::file_id(3), "dns.txt",
              "the domain name system resolves names; resolvers cache answers"});
  corpus.add({ir::file_id(4), "overlay.txt",
              "overlay networks build virtual topologies above the physical "
              "network; each overlay network node keeps neighbor state"});

  // --- Setup: KeyGen + BuildIndex + outsourcing ------------------------
  cloud::DataOwner owner;           // runs KeyGen internally
  cloud::CloudServer server;        // the honest-but-curious cloud
  owner.outsource_rsse(corpus, server);
  std::printf("outsourced %zu encrypted files + a %zu-row secure index\n",
              corpus.size(), server.index().num_rows());

  // --- Authorize a user (sealed credential bundle) ---------------------
  const Bytes alice_key = crypto::random_bytes(32);
  const auto credentials = cloud::AuthorizationService::open(
      alice_key, "alice", owner.enroll_user(alice_key, "alice"));

  // --- Retrieval: one round, server-ranked top-k -----------------------
  cloud::Channel channel(server);
  cloud::DataUser alice(credentials, channel);
  const auto results = alice.ranked_search("networks", /*top_k=*/2);

  std::printf("\ntop-%zu files for \"networks\" (server-ranked, scores hidden):\n",
              results.size());
  for (const auto& r : results)
    std::printf("  %-16s %s\n", r.document.name.c_str(), r.document.text.c_str());
  std::printf("\ntraffic: %llu round trip(s), %llu bytes down\n",
              static_cast<unsigned long long>(channel.stats().round_trips),
              static_cast<unsigned long long>(channel.stats().bytes_down));
  return 0;
}
