// Cluster deployment over real TCP: three shard servers, each reachable
// through two replica endpoints, presented to the data user as one
// logical cloud by the scatter-gather coordinator. The user code is the
// same DataUser the single-server examples use — the coordinator is just
// another Transport. Midway, one replica endpoint is killed and the
// queries keep succeeding through replica failover. The run finishes by
// tracing one query end to end (client → coordinator → replicas →
// shard server) and scraping its own live metrics over HTTP, exactly as
// a Prometheus scraper would.
//
// Run: ./build/examples/cluster_search
#include <cstdio>
#include <memory>
#include <vector>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "cluster/coordinator.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "net/remote_channel.h"
#include "net/server.h"
#include "obs/scrape.h"
#include "obs/trace.h"

int main() {
  using namespace rsse;
  constexpr std::uint32_t kShards = 3;
  constexpr std::uint32_t kReplicas = 2;

  // Owner side: prepare and outsource a small collection, then split the
  // outsourced index + files across shards by trapdoor-label hash.
  ir::CorpusGenOptions opts;
  opts.num_documents = 120;
  opts.vocabulary_size = 250;
  opts.min_tokens = 80;
  opts.max_tokens = 400;
  opts.injected.push_back(ir::InjectedKeyword{"consensus", 50, 0.4, 30});
  opts.injected.push_back(ir::InjectedKeyword{"paxos", 35, 0.4, 25});
  opts.seed = 23;
  const ir::Corpus corpus = ir::generate_corpus(opts);

  cloud::DataOwner owner;
  cloud::CloudServer staging;
  owner.outsource_rsse(corpus, staging);

  const cluster::ShardMap map(kShards);
  auto indexes = map.split_index(staging.index());
  auto file_sets = map.split_files(staging.files());

  // Cloud side: one CloudServer per shard, each listening on kReplicas
  // TCP endpoints (the in-process stand-in for R replicated machines
  // serving the same shard directory).
  std::vector<std::unique_ptr<cloud::CloudServer>> shards;
  std::vector<std::unique_ptr<net::NetworkServer>> endpoints;
  std::vector<std::unique_ptr<cluster::ReplicaSet>> sets;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    shards.push_back(std::make_unique<cloud::CloudServer>());
    shards.back()->store(std::move(indexes[s]), std::move(file_sets[s]));
    auto set = std::make_unique<cluster::ReplicaSet>();
    for (std::uint32_t r = 0; r < kReplicas; ++r) {
      endpoints.push_back(std::make_unique<net::NetworkServer>(*shards.back(), 0));
      // Bounded connect retries ride out a listener that is still coming
      // up, instead of racing it with a raw sleep.
      set->add_replica(std::make_unique<net::RemoteChannel>(
          endpoints.back()->port(),
          net::ConnectOptions{.timeout = std::chrono::seconds(2)}));
      std::printf("shard %u replica %u listening on 127.0.0.1:%u\n", s, r,
                  endpoints.back()->port());
    }
    sets.push_back(std::move(set));
  }

  cluster::ClusterManifest manifest;
  manifest.num_shards = kShards;
  manifest.replicas = kReplicas;
  manifest.total_rows = staging.index().num_rows();
  manifest.total_files = staging.num_files();
  // End-to-end deadlines: each replica attempt gets 500 ms before the set
  // fails over, and a whole query can never outlive 5 s.
  cluster::CoordinatorOptions coordinator_options;
  coordinator_options.retry.attempt_timeout = std::chrono::milliseconds(500);
  coordinator_options.query_timeout = std::chrono::seconds(5);
  cluster::ClusterCoordinator coordinator(manifest, std::move(sets),
                                          coordinator_options);
  std::printf("coordinator up: %zu/%u shards healthy\n\n",
              coordinator.probe_shards(), kShards);

  // User side: sealed credentials, one logical cloud.
  const Bytes user_key = crypto::random_bytes(32);
  const auto credentials = cloud::AuthorizationService::open(
      user_key, "carol", owner.enroll_user(user_key, "carol"));
  cloud::DataUser carol(credentials, coordinator);

  const auto top = carol.ranked_search("consensus", 5);
  std::printf("carol's top-5 for \"consensus\" across the cluster:\n");
  for (std::size_t i = 0; i < top.size(); ++i)
    std::printf("  #%zu %s\n", i + 1, top[i].document.name.c_str());

  const auto both = carol.multi_search({"consensus", "paxos"}, true, 5);
  std::printf("\ntop-%zu for consensus AND paxos (scatter-gather merge):\n",
              both.size());
  for (std::size_t i = 0; i < both.size(); ++i)
    std::printf("  #%zu %s\n", i + 1, both[i].document.name.c_str());

  // Kill a replica endpoint of the very shard serving "consensus": the
  // ReplicaSet fails over to the sibling and the client sees nothing.
  // Routing keys on the trapdoor label of the *normalized* keyword (the
  // index term), not the raw query string.
  const std::size_t hot = coordinator.shard_map().shard_of_label(owner.rsse().row_label(
      owner.rsse().analyzer().normalize_keyword("consensus")));
  endpoints[hot * kReplicas]->stop();
  std::printf("\nkilled shard %zu replica 0 (the \"consensus\" shard);"
              " querying on...\n", hot);
  for (int i = 0; i < 10; ++i) (void)carol.ranked_search("consensus", 3);
  std::printf("10 queries succeeded (shard %zu failovers: %llu)\n", hot,
              static_cast<unsigned long long>(coordinator.shard(hot).failovers()));

  const auto metrics = coordinator.metrics();
  std::printf("\nper-shard traffic:\n");
  for (std::size_t s = 0; s < metrics.shards.size(); ++s)
    std::printf("  shard %zu: %llu requests, %llu errors, p50 %.2f ms\n", s,
                static_cast<unsigned long long>(metrics.shards[s].requests),
                static_cast<unsigned long long>(metrics.shards[s].errors),
                metrics.shards[s].latency.p50_seconds * 1e3);
  std::printf("scatter-gather merges: %llu, partial responses: %llu\n",
              static_cast<unsigned long long>(metrics.scatter_gathers),
              static_cast<unsigned long long>(metrics.partial_responses));

  // One traced query: the recorder collects client, coordinator, replica
  // and (over the trace-capable TCP frames) server-side spans into a
  // single tree — including the failovers the killed replica forces.
  obs::TraceRecorder recorder;
  carol.set_trace_recorder(&recorder);
  (void)carol.ranked_search("consensus", 3);
  carol.set_trace_recorder(nullptr);
  std::printf("\ndistributed trace of one ranked search:\n%s",
              obs::format_trace(recorder.spans()).c_str());

  // Self-scrape: expose shard 0's server registry and the coordinator's
  // cluster registry on an ephemeral HTTP port and fetch /metrics — the
  // same bytes a Prometheus server would pull.
  const obs::ScrapeEndpoint scrape(
      {obs::ScrapeSource{"shard0", &shards[0]->metrics().registry()},
       obs::ScrapeSource{"coordinator", &coordinator.registry()}});
  const std::string exposition = obs::http_get(scrape.port(), "/metrics");
  std::printf("\n=== METRICS SCRAPE BEGIN ===\n%s=== METRICS SCRAPE END ===\n",
              exposition.c_str());

  for (auto& endpoint : endpoints) endpoint->stop();
  std::printf("\ncluster stopped cleanly\n");
  return 0;
}
