// Remote deployment: the full system over a real TCP connection — the
// cloud server listens on a loopback port, the data user connects with
// the RemoteChannel, and neither knows it isn't the in-process demo.
// This is the deployment shape the paper's Fig. 1 draws.
//
// Run: ./build/examples/remote_deployment
#include <cstdio>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "net/remote_channel.h"
#include "net/server.h"

int main() {
  using namespace rsse;

  // Owner side: prepare and outsource a small collection.
  ir::CorpusGenOptions opts;
  opts.num_documents = 100;
  opts.vocabulary_size = 250;
  opts.min_tokens = 80;
  opts.max_tokens = 400;
  opts.injected.push_back(ir::InjectedKeyword{"consensus", 40, 0.4, 30});
  opts.seed = 23;
  const ir::Corpus corpus = ir::generate_corpus(opts);

  cloud::DataOwner owner;
  cloud::CloudServer server;
  owner.outsource_rsse(corpus, server);
  server.set_rank_cache_enabled(true);

  // Bring the cloud online.
  net::NetworkServer endpoint(server, 0);
  std::printf("cloud server listening on 127.0.0.1:%u\n", endpoint.port());

  // User side: sealed credentials, TCP connection, ranked search.
  const Bytes user_key = crypto::random_bytes(32);
  const auto credentials = cloud::AuthorizationService::open(
      user_key, "carol", owner.enroll_user(user_key, "carol"));
  net::RemoteChannel channel(endpoint.port());
  cloud::DataUser carol(credentials, channel);

  const auto first = carol.ranked_search("consensus", 5);
  std::printf("\ncarol's top-5 for \"consensus\" over TCP:\n");
  for (std::size_t i = 0; i < first.size(); ++i)
    std::printf("  #%zu %s\n", i + 1, first[i].document.name.c_str());

  // A repeat query hits the server-side rank cache.
  const auto second = carol.ranked_search("consensus", 5);
  std::printf("\nrepeat query served from the rank cache (hits: %llu)\n",
              static_cast<unsigned long long>(server.rank_cache_hits()));
  std::printf("traffic so far: %llu round trips, %.1f KB down\n",
              static_cast<unsigned long long>(channel.stats().round_trips),
              static_cast<double>(channel.stats().bytes_down) / 1024.0);

  // Live update while the endpoint is serving.
  ir::Document doc{ir::file_id(5000), "raft-notes.txt",
                   "consensus consensus consensus notes on leader election"};
  owner.add_document(server, doc);
  const auto after = carol.ranked_search("consensus", 5);
  std::printf("\nafter a live owner update, the new file ranks #1: %s\n",
              after[0].document.name.c_str());

  endpoint.stop();
  std::printf("server stopped cleanly; %llu requests served\n",
              static_cast<unsigned long long>(endpoint.requests_served()));
  return 0;
}
