// Score dynamics — the Sec. VII advantage demonstrated on a live
// deployment: the owner adds and removes documents on an already-
// outsourced index. Because the one-to-many mapping's buckets depend
// only on (key, score level), every previously outsourced encrypted
// score stays valid; the owner re-encrypts nothing.
//
// Run: ./build/examples/score_dynamics
#include <cstdio>

#include "cloud/data_owner.h"
#include "cloud/data_user.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "util/stopwatch.h"

int main() {
  using namespace rsse;

  ir::CorpusGenOptions opts;
  opts.num_documents = 200;
  opts.vocabulary_size = 300;
  opts.min_tokens = 100;
  opts.max_tokens = 600;
  opts.injected.push_back(ir::InjectedKeyword{"ledger", 80, 0.4, 40});
  opts.seed = 11;
  const ir::Corpus corpus = ir::generate_corpus(opts);

  cloud::DataOwner owner;
  cloud::CloudServer server;
  Stopwatch build_watch;
  owner.outsource_rsse(corpus, server);
  std::printf("initial outsourcing: %zu files in %.2f s\n", corpus.size(),
              build_watch.elapsed_seconds());

  const Bytes user_key = crypto::random_bytes(32);
  const auto credentials = cloud::AuthorizationService::open(
      user_key, "auditor", owner.enroll_user(user_key, "auditor"));
  cloud::Channel channel(server);
  cloud::DataUser auditor(credentials, channel);

  std::printf("\"ledger\" matches before update: %zu files\n",
              auditor.ranked_search("ledger", 0).size());

  // --- Add a batch of new documents to the live index ------------------
  Stopwatch add_watch;
  std::size_t total_entries_added = 0;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ir::Document doc{ir::file_id(10000 + i), "q3-report-" + std::to_string(i) + ".txt",
                     "ledger ledger reconciliation entries for the quarterly ledger "
                     "audit with transaction identifiers"};
    const auto stats = owner.add_document(server, doc);
    total_entries_added += stats.entries_added;
  }
  std::printf("\nadded 10 documents in %.2f ms (%zu posting entries written;\n"
              "existing entries rewritten: 0 — the Sec. VII property)\n",
              add_watch.elapsed_ms(), total_entries_added);

  const auto after_add = auditor.ranked_search("ledger", 0);
  std::printf("\"ledger\" matches after add: %zu files\n", after_add.size());
  std::printf("new documents rank near the top (high TF, short files):\n");
  for (std::size_t i = 0; i < 3 && i < after_add.size(); ++i)
    std::printf("  #%zu %s\n", i + 1, after_add[i].document.name.c_str());

  // --- Remove one of them again ----------------------------------------
  ir::Document removed{ir::file_id(10003), "q3-report-3.txt",
                       "ledger ledger reconciliation entries for the quarterly ledger "
                       "audit with transaction identifiers"};
  owner.remove_document(server, removed);
  const auto after_remove = auditor.ranked_search("ledger", 0);
  std::printf("\nafter removing q3-report-3.txt: %zu matches (entry is now padding,\n"
              "row sizes unchanged — removals don't leak through list lengths)\n",
              after_remove.size());
  return 0;
}
