// Leakage analysis — what the honest-but-curious server actually sees,
// and why the one-to-many mapping matters (Sec. IV-A/V). We put on the
// server's hat: inspect the stored index, then try the paper's Fig. 4
// attack — fingerprinting a keyword from its encrypted score
// distribution — against both a deterministic-OPSE index and the real
// RSSE index.
//
// Run: ./build/examples/leakage_analysis
#include <cmath>
#include <cstdio>

#include "analysis/fingerprint.h"
#include "analysis/leakage.h"
#include "cloud/data_owner.h"
#include "crypto/csprng.h"
#include "ir/corpus_gen.h"
#include "ir/scoring.h"
#include "opse/bclo_opse.h"
#include "opse/quantizer.h"
#include "util/histogram.h"
#include "util/stats.h"

int main() {
  using namespace rsse;

  ir::CorpusGenOptions opts;
  opts.num_documents = 500;
  opts.vocabulary_size = 200;
  opts.min_tokens = 150;
  opts.max_tokens = 1500;
  opts.injected.push_back(ir::InjectedKeyword{"network", 450, 0.35, 120});
  opts.seed = 3;
  const ir::Corpus corpus = ir::generate_corpus(opts);

  cloud::DataOwner owner;
  cloud::CloudServer server;
  owner.outsource_rsse(corpus, server);

  // ---- The server's structural view -----------------------------------
  std::printf("=== the curious server's view of the stored index ===\n");
  const auto labels = server.index().labels();
  const analysis::IndexShape shape = analysis::index_shape(server.index());
  std::printf("rows (m): %zu, row widths %zu..%zu (%zu distinct, %.2f bits of\n"
              "width entropy — 0 under full-nu padding), total %llu KB\n",
              shape.num_rows, shape.min_row_width, shape.max_row_width,
              shape.distinct_widths, shape.width_shannon_entropy,
              static_cast<unsigned long long>(shape.total_bytes / 1024));
  std::printf("first row label (opaque): %s...\n",
              hex_encode(BytesView(labels[0]).subspan(0, 10)).c_str());

  // ---- The server's dynamic view: search & access patterns ------------
  analysis::LeakageLedger ledger;
  const auto observe = [&](const char* keyword) {
    const auto trapdoor = owner.rsse().trapdoor(keyword);
    const auto results = sse::RsseScheme::search(server.index(), trapdoor);
    analysis::QueryObservation obs;
    obs.row_label = trapdoor.label;
    for (const auto& e : results) obs.returned_ids.push_back(ir::value(e.file));
    ledger.record(std::move(obs));
  };
  observe("network");
  observe("network");  // a repeat search: visible in the search pattern
  const auto some_term =
      ir::InvertedIndex::build(corpus, owner.rsse().analyzer()).terms().front();
  observe(some_term.c_str());

  std::printf("\n=== after 3 queries, the server's ledger shows ===\n");
  std::printf("search pattern: %zu distinct keywords across %zu queries\n",
              ledger.distinct_keywords_queried(), ledger.num_queries());
  const auto groups = ledger.search_pattern();
  std::printf("  query groups (same keyword):");
  for (const auto& g : groups) {
    std::printf(" {");
    for (std::size_t q : g) std::printf(" %zu", q);
    std::printf(" }");
  }
  std::printf("\naccess pattern sizes:");
  for (const auto& ids : ledger.access_pattern()) std::printf(" %zu", ids.size());
  std::printf("  (which files matched — leaked by every SSE scheme)\n");

  // ---- The Fig. 4 fingerprinting attack -------------------------------
  // Adversary background knowledge: the plaintext score histogram of
  // "network" on a PUBLIC corpus with similar statistics.
  const auto index = ir::InvertedIndex::build(corpus, owner.rsse().analyzer());
  std::vector<double> scores;
  for (const auto& p : *index.postings("network"))
    scores.push_back(ir::score_single_keyword(p.tf, index.doc_length(p.file)));
  const auto quantizer = opse::ScoreQuantizer::from_scores(scores, 128);

  std::vector<std::uint64_t> levels;
  for (double s : scores) levels.push_back(quantizer.quantize(s));

  // Hypothetical deployment that used deterministic OPSE instead of the
  // one-to-many mapping: what would the encrypted scores look like?
  const opse::BcloOpse det(crypto::random_bytes(32), {128, 1ull << 46});
  std::vector<std::uint64_t> det_values;
  for (std::uint64_t level : levels) det_values.push_back(det.encrypt(level));

  std::printf("\n=== Fig. 4 attack surface: duplicate structure ===\n");
  std::printf("plaintext levels:     max dups %3llu  -> rank-frequency histogram is\n"
              "                      a keyword fingerprint (the Fig. 4 risk)\n",
              static_cast<unsigned long long>(max_duplicates(levels)));
  std::printf("deterministic OPSE:   max dups %3llu  -> SAME fingerprint survives\n",
              static_cast<unsigned long long>(max_duplicates(det_values)));

  // The real deployment: pull the OPM values the server stores for this
  // keyword's row. The owner (we) can open the row with the trapdoor.
  const auto trapdoor = owner.rsse().trapdoor("network");
  const auto entries = sse::RsseScheme::search(server.index(), trapdoor);
  std::vector<std::uint64_t> opm_values;
  for (const auto& e : entries) opm_values.push_back(e.opm_score);
  std::printf("one-to-many OPM:      max dups %3llu  -> every value unique; the\n"
              "                      adversary sees %zu distinct points\n",
              static_cast<unsigned long long>(max_duplicates(opm_values)),
              distinct_count(opm_values));

  const double max_bits = std::log2(static_cast<double>(opm_values.size()));
  std::printf("\nvalue-level min-entropy: plaintext %.2f bits, OPSE %.2f bits,\n"
              "OPM %.2f bits (maximum possible: %.2f)\n",
              -std::log2(static_cast<double>(max_duplicates(levels)) /
                         static_cast<double>(levels.size())),
              -std::log2(static_cast<double>(max_duplicates(det_values)) /
                         static_cast<double>(det_values.size())),
              -std::log2(static_cast<double>(max_duplicates(opm_values)) /
                         static_cast<double>(opm_values.size())),
              max_bits);

  std::printf("\n=== what RSSE still leaks (by design) ===\n");
  std::printf("* access pattern: which row a trapdoor touched, which files matched\n");
  std::printf("* search pattern: repeated searches for one keyword look identical\n");
  std::printf("* relevance ORDER of the matching files (the efficiency trade-off)\n");
  std::printf("* padded row count m = %zu and row width nu = %zu\n", labels.size(),
              server.index().row(labels[0])->size());
  return 0;
}
