// Cryptographically secure randomness: a thin wrapper over OpenSSL's
// RAND_bytes. All key material in the library (KeyGen, IVs) comes from
// here; workload randomness uses util/rng.h instead.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace rsse::crypto {

/// Fills `out` with cryptographically secure random bytes.
/// Throws CryptoError when the entropy source fails.
void random_bytes(std::span<std::uint8_t> out);

/// Returns `n` fresh random bytes.
Bytes random_bytes(std::size_t n);

/// Returns a uniformly random 64-bit value.
std::uint64_t random_u64();

}  // namespace rsse::crypto
