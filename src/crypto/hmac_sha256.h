// HMAC-SHA256 (RFC 2104) built on the Sha256 wrapper.
//
// Implemented directly over the hash rather than via OpenSSL's deprecated
// HMAC() entry point; tests pin it to the RFC 4231 vectors. This is the
// pseudo-random function f of the paper and the expansion step of TapeGen.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace rsse::crypto {

/// One-shot HMAC-SHA256 of `data` under `key` (any key length).
Sha256Digest hmac_sha256(BytesView key, BytesView data);

/// Incremental HMAC-SHA256 with a fixed key. Construction precomputes the
/// padded key blocks; update()/finish() mirror the Sha256 interface and
/// finish() resets the MAC for another message under the same key.
class HmacSha256 {
 public:
  /// Prepares the inner/outer padded keys for `key`.
  explicit HmacSha256(BytesView key);

  /// Absorbs more message bytes.
  void update(BytesView data);

  /// Returns the tag and resets for a new message under the same key.
  Sha256Digest finish();

 private:
  static constexpr std::size_t kBlockSize = 64;  // SHA-256 block size
  std::array<std::uint8_t, kBlockSize> ipad_{};
  std::array<std::uint8_t, kBlockSize> opad_{};
  Sha256 inner_;
};

}  // namespace rsse::crypto
