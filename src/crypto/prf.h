// The paper's two keyed primitives over keywords:
//
//   f : {0,1}^k x {0,1}* -> {0,1}^l   a pseudo-random function; generates
//       per-keyword subkeys (the posting-list entry key f_y(w), the OPM
//       score key f_z(w)) and the second trapdoor component.
//   pi: {0,1}^k x {0,1}* -> {0,1}^p   a collision-resistant keyed hash with
//       p > log m; the index row label and first trapdoor component
//       pi_x(w).
//
// Both are instantiated from HMAC-SHA256 (a PRF under standard
// assumptions, and collision resistant when truncated to p >= 80 bits)
// with domain separation between the two roles.
#pragma once

#include <cstdint>

#include "crypto/hmac_sha256.h"
#include "util/bytes.h"

namespace rsse::crypto {

/// Output length of Prf::derive in bytes (l = 256 bits).
inline constexpr std::size_t kPrfOutputSize = kSha256DigestSize;

/// Keyed PRF f. Copyable value type holding only the key.
class Prf {
 public:
  /// Wraps key material of any non-zero length.
  explicit Prf(Bytes key);

  /// f_key(input): 32 pseudo-random bytes.
  [[nodiscard]] Bytes derive(BytesView input) const;

  /// Convenience overload over string labels (keywords).
  [[nodiscard]] Bytes derive(std::string_view input) const;

  /// f_key(input) truncated/expanded to exactly `n` bytes via counter-mode
  /// expansion, for callers that need non-default key sizes.
  [[nodiscard]] Bytes derive_n(BytesView input, std::size_t n) const;

 private:
  Bytes key_;
};

/// Keyed collision-resistant hash pi, truncated to p bits. Distinct from
/// Prf by domain separation so pi_x(w) and f_x(w) are independent even
/// under key reuse.
class KeyedHash {
 public:
  /// `p_bits` is the paper's parameter p (output bits, must be a positive
  /// multiple of 8 and at most 256; the paper's SHA-1 example uses 160).
  KeyedHash(Bytes key, std::size_t p_bits = 160);

  /// pi_key(input): p/8 bytes.
  [[nodiscard]] Bytes hash(BytesView input) const;

  /// Convenience overload over string labels (keywords).
  [[nodiscard]] Bytes hash(std::string_view input) const;

  /// Output size in bytes (p / 8).
  [[nodiscard]] std::size_t output_size() const { return p_bytes_; }

 private:
  Bytes key_;
  std::size_t p_bytes_;
};

}  // namespace rsse::crypto
