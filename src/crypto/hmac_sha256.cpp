#include "crypto/hmac_sha256.h"

#include "obs/cost.h"

namespace rsse::crypto {

HmacSha256::HmacSha256(BytesView key) {
  std::array<std::uint8_t, kBlockSize> k{};
  if (key.size() > kBlockSize) {
    const Sha256Digest digest = sha256(key);
    std::copy(digest.begin(), digest.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad_[i] = k[i] ^ 0x36;
    opad_[i] = k[i] ^ 0x5c;
  }
  inner_.update(BytesView(ipad_.data(), ipad_.size()));
}

void HmacSha256::update(BytesView data) { inner_.update(data); }

Sha256Digest HmacSha256::finish() {
  obs::cost::add(obs::cost::hmac_invocations);
  const Sha256Digest inner_digest = inner_.finish();  // also resets inner_
  Sha256 outer;
  outer.update(BytesView(opad_.data(), opad_.size()));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  // Re-absorb the inner pad so the object is ready for the next message.
  inner_.update(BytesView(ipad_.data(), ipad_.size()));
  return outer.finish();
}

Sha256Digest hmac_sha256(BytesView key, BytesView data) {
  HmacSha256 mac(key);
  mac.update(data);
  return mac.finish();
}

}  // namespace rsse::crypto
