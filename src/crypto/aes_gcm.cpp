#include "crypto/aes_gcm.h"

#include <openssl/evp.h>

#include <memory>

#include "crypto/aes_ctr.h"  // kAesKeySize
#include "crypto/csprng.h"
#include "util/errors.h"

namespace rsse::crypto {

namespace {

struct CipherCtxDeleter {
  void operator()(EVP_CIPHER_CTX* ctx) const noexcept { EVP_CIPHER_CTX_free(ctx); }
};
using CipherCtx = std::unique_ptr<EVP_CIPHER_CTX, CipherCtxDeleter>;

CipherCtx make_ctx() {
  CipherCtx ctx(EVP_CIPHER_CTX_new());
  if (!ctx) throw CryptoError("aes_gcm: EVP_CIPHER_CTX_new failed");
  return ctx;
}

}  // namespace

Bytes aes_gcm_encrypt(BytesView key, BytesView plaintext, BytesView aad) {
  detail::require(key.size() == kAesKeySize, "aes_gcm: key must be 32 bytes");
  const Bytes nonce = random_bytes(kGcmNonceSize);
  CipherCtx ctx = make_ctx();
  if (EVP_EncryptInit_ex(ctx.get(), EVP_aes_256_gcm(), nullptr, key.data(), nonce.data()) != 1)
    throw CryptoError("aes_gcm: EncryptInit failed");
  int len = 0;
  if (!aad.empty() &&
      EVP_EncryptUpdate(ctx.get(), nullptr, &len, aad.data(), static_cast<int>(aad.size())) != 1)
    throw CryptoError("aes_gcm: AAD update failed");
  Bytes ct(plaintext.size());
  int ct_len = 0;
  if (!plaintext.empty() &&
      EVP_EncryptUpdate(ctx.get(), ct.data(), &ct_len, plaintext.data(),
                        static_cast<int>(plaintext.size())) != 1)
    throw CryptoError("aes_gcm: EncryptUpdate failed");
  int final_len = 0;
  if (EVP_EncryptFinal_ex(ctx.get(), ct.data() + ct_len, &final_len) != 1)
    throw CryptoError("aes_gcm: EncryptFinal failed");
  ct.resize(static_cast<std::size_t>(ct_len + final_len));

  std::uint8_t tag[kGcmTagSize];
  if (EVP_CIPHER_CTX_ctrl(ctx.get(), EVP_CTRL_GCM_GET_TAG, kGcmTagSize, tag) != 1)
    throw CryptoError("aes_gcm: GET_TAG failed");

  Bytes blob(nonce.begin(), nonce.end());
  append(blob, ct);
  append(blob, BytesView(tag, kGcmTagSize));
  return blob;
}

Bytes aes_gcm_decrypt(BytesView key, BytesView blob, BytesView aad) {
  detail::require(key.size() == kAesKeySize, "aes_gcm: key must be 32 bytes");
  if (blob.size() < kGcmNonceSize + kGcmTagSize)
    throw ParseError("aes_gcm_decrypt: blob too short");
  const BytesView nonce = blob.subspan(0, kGcmNonceSize);
  const BytesView ct = blob.subspan(kGcmNonceSize, blob.size() - kGcmNonceSize - kGcmTagSize);
  const BytesView tag = blob.subspan(blob.size() - kGcmTagSize);

  CipherCtx ctx = make_ctx();
  if (EVP_DecryptInit_ex(ctx.get(), EVP_aes_256_gcm(), nullptr, key.data(), nonce.data()) != 1)
    throw CryptoError("aes_gcm: DecryptInit failed");
  int len = 0;
  if (!aad.empty() &&
      EVP_DecryptUpdate(ctx.get(), nullptr, &len, aad.data(), static_cast<int>(aad.size())) != 1)
    throw CryptoError("aes_gcm: AAD update failed");
  Bytes pt(ct.size());
  int pt_len = 0;
  if (!ct.empty() &&
      EVP_DecryptUpdate(ctx.get(), pt.data(), &pt_len, ct.data(),
                        static_cast<int>(ct.size())) != 1)
    throw CryptoError("aes_gcm: DecryptUpdate failed");
  Bytes tag_copy(tag.begin(), tag.end());
  if (EVP_CIPHER_CTX_ctrl(ctx.get(), EVP_CTRL_GCM_SET_TAG, kGcmTagSize, tag_copy.data()) != 1)
    throw CryptoError("aes_gcm: SET_TAG failed");
  int final_len = 0;
  if (EVP_DecryptFinal_ex(ctx.get(), pt.data() + pt_len, &final_len) != 1)
    throw CryptoError("aes_gcm: authentication failed");
  pt.resize(static_cast<std::size_t>(pt_len + final_len));
  return pt;
}

}  // namespace rsse::crypto
