#include "crypto/sha256.h"

#include <openssl/evp.h>

#include "util/errors.h"

namespace rsse::crypto {

namespace {

EVP_MD_CTX* as_ctx(void* p) { return static_cast<EVP_MD_CTX*>(p); }

}  // namespace

Sha256Digest sha256(BytesView data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

void Sha256::CtxDeleter::operator()(void* ctx) const noexcept {
  EVP_MD_CTX_free(as_ctx(ctx));
}

Sha256::Sha256() : ctx_(EVP_MD_CTX_new()) {
  if (!ctx_) throw CryptoError("SHA-256: EVP_MD_CTX_new failed");
  init();
}

Sha256::~Sha256() = default;
Sha256::Sha256(Sha256&&) noexcept = default;
Sha256& Sha256::operator=(Sha256&&) noexcept = default;

void Sha256::init() {
  if (EVP_DigestInit_ex(as_ctx(ctx_.get()), EVP_sha256(), nullptr) != 1)
    throw CryptoError("SHA-256: DigestInit failed");
}

void Sha256::update(BytesView data) {
  if (EVP_DigestUpdate(as_ctx(ctx_.get()), data.data(), data.size()) != 1)
    throw CryptoError("SHA-256: DigestUpdate failed");
}

Sha256Digest Sha256::finish() {
  Sha256Digest out{};
  unsigned int len = 0;
  if (EVP_DigestFinal_ex(as_ctx(ctx_.get()), out.data(), &len) != 1 ||
      len != kSha256DigestSize)
    throw CryptoError("SHA-256: DigestFinal failed");
  init();  // reset for reuse
  return out;
}

}  // namespace rsse::crypto
