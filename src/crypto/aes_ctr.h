// AES-256-CTR with a random per-message IV: the semantically secure
// symmetric cipher E of the paper's Basic Scheme (it encrypts relevance
// scores and posting entries). Ciphertext layout: 16-byte IV || keystream
// XOR plaintext. CTR keeps length = plaintext length + IV, which matters
// because posting entries must be fixed-width for padding to hide list
// lengths.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace rsse::crypto {

/// Key size for AES-256 in bytes.
inline constexpr std::size_t kAesKeySize = 32;
/// IV (counter block) size in bytes.
inline constexpr std::size_t kAesIvSize = 16;

/// Encrypts `plaintext` under `key` with a fresh random IV.
/// Returns IV || ciphertext. Throws InvalidArgument on a wrong key size.
Bytes aes_ctr_encrypt(BytesView key, BytesView plaintext);

/// Deterministic variant with a caller-supplied IV (used where the scheme
/// needs repeatable ciphertexts, e.g. tests). `iv` must be kAesIvSize long.
Bytes aes_ctr_encrypt_with_iv(BytesView key, BytesView iv, BytesView plaintext);

/// Inverse of aes_ctr_encrypt: expects IV || ciphertext.
/// Throws ParseError when the buffer is shorter than an IV.
Bytes aes_ctr_decrypt(BytesView key, BytesView blob);

}  // namespace rsse::crypto
