// SHA-256 over OpenSSL's EVP interface, with both one-shot and incremental
// APIs. This is the collision-resistant hash underlying the library's
// keyed hash pi (via HMAC) and the TapeGen coin generator.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "util/bytes.h"

namespace rsse::crypto {

/// Digest size of SHA-256 in bytes.
inline constexpr std::size_t kSha256DigestSize = 32;

/// A SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// One-shot SHA-256. Throws CryptoError on backend failure.
Sha256Digest sha256(BytesView data);

/// Incremental SHA-256 context (RAII over EVP_MD_CTX). Reusable: finish()
/// resets the context so the object can hash another message.
class Sha256 {
 public:
  Sha256();
  ~Sha256();

  Sha256(const Sha256&) = delete;
  Sha256& operator=(const Sha256&) = delete;
  Sha256(Sha256&&) noexcept;
  Sha256& operator=(Sha256&&) noexcept;

  /// Absorbs more message bytes.
  void update(BytesView data);

  /// Produces the digest of everything absorbed since construction or the
  /// previous finish(), then resets for reuse.
  Sha256Digest finish();

 private:
  void init();
  struct CtxDeleter {
    void operator()(void* ctx) const noexcept;
  };
  std::unique_ptr<void, CtxDeleter> ctx_;
};

}  // namespace rsse::crypto
