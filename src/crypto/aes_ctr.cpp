#include "crypto/aes_ctr.h"

#include <openssl/evp.h>

#include <memory>

#include "crypto/csprng.h"
#include "util/errors.h"

namespace rsse::crypto {

namespace {

struct CipherCtxDeleter {
  void operator()(EVP_CIPHER_CTX* ctx) const noexcept { EVP_CIPHER_CTX_free(ctx); }
};
using CipherCtx = std::unique_ptr<EVP_CIPHER_CTX, CipherCtxDeleter>;

// CTR mode is its own inverse, so one routine serves both directions.
Bytes ctr_transform(BytesView key, BytesView iv, BytesView input) {
  detail::require(key.size() == kAesKeySize, "aes_ctr: key must be 32 bytes");
  detail::require(iv.size() == kAesIvSize, "aes_ctr: iv must be 16 bytes");
  CipherCtx ctx(EVP_CIPHER_CTX_new());
  if (!ctx) throw CryptoError("aes_ctr: EVP_CIPHER_CTX_new failed");
  if (EVP_EncryptInit_ex(ctx.get(), EVP_aes_256_ctr(), nullptr, key.data(), iv.data()) != 1)
    throw CryptoError("aes_ctr: EncryptInit failed");
  Bytes out(input.size());
  int out_len = 0;
  if (!input.empty() &&
      EVP_EncryptUpdate(ctx.get(), out.data(), &out_len, input.data(),
                        static_cast<int>(input.size())) != 1)
    throw CryptoError("aes_ctr: EncryptUpdate failed");
  int final_len = 0;
  if (EVP_EncryptFinal_ex(ctx.get(), out.data() + out_len, &final_len) != 1)
    throw CryptoError("aes_ctr: EncryptFinal failed");
  out.resize(static_cast<std::size_t>(out_len + final_len));
  return out;
}

}  // namespace

Bytes aes_ctr_encrypt(BytesView key, BytesView plaintext) {
  const Bytes iv = random_bytes(kAesIvSize);
  return aes_ctr_encrypt_with_iv(key, iv, plaintext);
}

Bytes aes_ctr_encrypt_with_iv(BytesView key, BytesView iv, BytesView plaintext) {
  Bytes blob(iv.begin(), iv.end());
  const Bytes ct = ctr_transform(key, iv, plaintext);
  append(blob, ct);
  return blob;
}

Bytes aes_ctr_decrypt(BytesView key, BytesView blob) {
  if (blob.size() < kAesIvSize) throw ParseError("aes_ctr_decrypt: blob shorter than IV");
  const BytesView iv = blob.subspan(0, kAesIvSize);
  const BytesView ct = blob.subspan(kAesIvSize);
  return ctr_transform(key, iv, ct);
}

}  // namespace rsse::crypto
