#include "crypto/csprng.h"

#include <openssl/rand.h>

#include "util/errors.h"

namespace rsse::crypto {

void random_bytes(std::span<std::uint8_t> out) {
  if (out.empty()) return;
  if (RAND_bytes(out.data(), static_cast<int>(out.size())) != 1)
    throw CryptoError("csprng: RAND_bytes failed");
}

Bytes random_bytes(std::size_t n) {
  Bytes out(n);
  random_bytes(std::span<std::uint8_t>(out));
  return out;
}

std::uint64_t random_u64() {
  std::uint8_t buf[8];
  random_bytes(std::span<std::uint8_t>(buf, sizeof buf));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

}  // namespace rsse::crypto
