// AES-256-GCM authenticated encryption: used by the cloud file store for
// the outsourced file collection C. The honest-but-curious model does not
// require integrity, but shipping a file store without it would be
// negligent; GCM costs nothing extra here. Blob layout:
// 12-byte nonce || ciphertext || 16-byte tag.
#pragma once

#include "util/bytes.h"

namespace rsse::crypto {

/// GCM nonce size in bytes (96-bit, the recommended size).
inline constexpr std::size_t kGcmNonceSize = 12;
/// GCM authentication tag size in bytes.
inline constexpr std::size_t kGcmTagSize = 16;

/// Encrypts and authenticates `plaintext` under a 32-byte `key`, binding
/// the optional associated data `aad` (e.g. the file identifier).
Bytes aes_gcm_encrypt(BytesView key, BytesView plaintext, BytesView aad = {});

/// Decrypts a blob produced by aes_gcm_encrypt, verifying the tag and the
/// associated data. Throws CryptoError on authentication failure and
/// ParseError on a malformed blob.
Bytes aes_gcm_decrypt(BytesView key, BytesView blob, BytesView aad = {});

}  // namespace rsse::crypto
