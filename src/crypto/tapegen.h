// TapeGen: the deterministic random-coin tape of the BCLO order-preserving
// encryption construction (Algorithm 1 of the paper calls it directly).
//
// Given the OPE key and an encoding of the call context — the current
// (domain, range) window plus either the binary-search midpoint (tag 0||y)
// or the plaintext and optional file id for the final ciphertext draw
// (tag 1||m, id(F)) — TapeGen must return an unbounded stream of
// pseudo-random coins that is a deterministic function of (key, context).
// That determinism is what makes OPE encryption consistent: every call
// that revisits the same window re-derives the same HGD split.
//
// Construction: seed = HMAC-SHA256(key, context); block_i =
// HMAC-SHA256(seed, i). Stream output is the concatenation of blocks, read
// through typed helpers (u64, 53-bit double, unbiased uniform_below).
#pragma once

#include <cstdint>

#include "crypto/hmac_sha256.h"
#include "util/bytes.h"

namespace rsse::crypto {

/// A deterministic coin tape for one (key, context) pair.
class Tape {
 public:
  /// Derives the tape seed from `key` and `context`.
  Tape(BytesView key, BytesView context);

  /// Next byte of the tape.
  std::uint8_t next_byte();

  /// Next 64 tape bits as an integer.
  std::uint64_t next_u64();

  /// Uniform double in [0,1) with 53-bit precision; the HGD sampler's coin.
  double next_double();

  /// Unbiased uniform integer in [0, bound) via rejection sampling.
  /// Throws InvalidArgument when bound == 0.
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Fills `out` with tape bytes.
  void fill(std::span<std::uint8_t> out);

 private:
  void refill();

  Sha256Digest seed_{};
  Sha256Digest block_{};
  std::uint64_t block_index_ = 0;
  std::size_t offset_ = kSha256DigestSize;  // forces refill on first read
};

/// Context encodings shared by the OPE/OPM implementations so that tests
/// and both mapping variants agree bit-for-bit on the tape inputs.
/// Encodes (D, R, 0 || y): the coin context for one binary-search split.
Bytes encode_split_context(std::uint64_t domain_lo, std::uint64_t domain_hi,
                           std::uint64_t range_lo, std::uint64_t range_hi,
                           std::uint64_t midpoint);

/// Encodes (D, R, 1 || m [, id]): the coin context for the final ciphertext
/// draw. Pass `has_file_id=false` for deterministic OPSE; the one-to-many
/// mapping sets it and supplies the file identifier, which is exactly the
/// paper's modification.
Bytes encode_draw_context(std::uint64_t domain_lo, std::uint64_t domain_hi,
                          std::uint64_t range_lo, std::uint64_t range_hi,
                          std::uint64_t plaintext, bool has_file_id,
                          std::uint64_t file_id);

}  // namespace rsse::crypto
