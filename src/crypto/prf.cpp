#include "crypto/prf.h"

#include "util/errors.h"

namespace rsse::crypto {

namespace {

// Domain-separation tags keeping Prf and KeyedHash outputs independent.
constexpr std::uint8_t kPrfTag = 0x01;
constexpr std::uint8_t kHashTag = 0x02;

Sha256Digest tagged_mac(BytesView key, std::uint8_t tag, BytesView input,
                        std::uint32_t counter = 0) {
  HmacSha256 mac(key);
  const std::uint8_t header[5] = {
      tag,
      static_cast<std::uint8_t>(counter),
      static_cast<std::uint8_t>(counter >> 8),
      static_cast<std::uint8_t>(counter >> 16),
      static_cast<std::uint8_t>(counter >> 24),
  };
  mac.update(BytesView(header, sizeof header));
  mac.update(input);
  return mac.finish();
}

}  // namespace

Prf::Prf(Bytes key) : key_(std::move(key)) {
  detail::require(!key_.empty(), "Prf: empty key");
}

Bytes Prf::derive(BytesView input) const {
  const Sha256Digest d = tagged_mac(key_, kPrfTag, input);
  return Bytes(d.begin(), d.end());
}

Bytes Prf::derive(std::string_view input) const { return derive(to_bytes(input)); }

Bytes Prf::derive_n(BytesView input, std::size_t n) const {
  Bytes out;
  out.reserve(n);
  for (std::uint32_t counter = 0; out.size() < n; ++counter) {
    const Sha256Digest d = tagged_mac(key_, kPrfTag, input, counter + 1);
    const std::size_t take = std::min(n - out.size(), d.size());
    out.insert(out.end(), d.begin(), d.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

KeyedHash::KeyedHash(Bytes key, std::size_t p_bits) : key_(std::move(key)) {
  detail::require(!key_.empty(), "KeyedHash: empty key");
  detail::require(p_bits > 0 && p_bits % 8 == 0 && p_bits <= 256,
                  "KeyedHash: p must be a positive multiple of 8, at most 256");
  p_bytes_ = p_bits / 8;
}

Bytes KeyedHash::hash(BytesView input) const {
  const Sha256Digest d = tagged_mac(key_, kHashTag, input);
  return Bytes(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(p_bytes_));
}

Bytes KeyedHash::hash(std::string_view input) const { return hash(to_bytes(input)); }

}  // namespace rsse::crypto
