#include "crypto/pbkdf2.h"

#include "crypto/hmac_sha256.h"
#include "util/errors.h"

namespace rsse::crypto {

Bytes pbkdf2_hmac_sha256(BytesView password, BytesView salt, std::uint32_t iterations,
                         std::size_t output_len) {
  detail::require(iterations > 0, "pbkdf2: iterations must be positive");
  detail::require(output_len > 0, "pbkdf2: output length must be positive");

  Bytes out;
  out.reserve(output_len);
  std::uint32_t block_index = 1;
  while (out.size() < output_len) {
    // U_1 = HMAC(P, S || INT_BE(i))
    HmacSha256 mac(password);
    mac.update(salt);
    const std::uint8_t be[4] = {
        static_cast<std::uint8_t>(block_index >> 24),
        static_cast<std::uint8_t>(block_index >> 16),
        static_cast<std::uint8_t>(block_index >> 8),
        static_cast<std::uint8_t>(block_index),
    };
    mac.update(BytesView(be, 4));
    Sha256Digest u = mac.finish();
    Sha256Digest t = u;
    for (std::uint32_t iter = 1; iter < iterations; ++iter) {
      u = hmac_sha256(password, BytesView(u.data(), u.size()));
      for (std::size_t b = 0; b < t.size(); ++b) t[b] ^= u[b];
    }
    const std::size_t take = std::min(output_len - out.size(), t.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
    ++block_index;
  }
  return out;
}

}  // namespace rsse::crypto
