// PBKDF2-HMAC-SHA256 (RFC 8018): passphrase-based key derivation for the
// persistence layer. The owner's master-key file on disk is sealed under
// a key derived from a passphrase + random salt, so losing the laptop
// does not lose the collection.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace rsse::crypto {

/// Derives `output_len` bytes from (password, salt) with `iterations`
/// rounds of PBKDF2-HMAC-SHA256. Throws InvalidArgument on zero
/// iterations or zero output length.
Bytes pbkdf2_hmac_sha256(BytesView password, BytesView salt, std::uint32_t iterations,
                         std::size_t output_len);

}  // namespace rsse::crypto
