#include "crypto/tapegen.h"

#include "obs/cost.h"
#include "util/errors.h"

namespace rsse::crypto {

Tape::Tape(BytesView key, BytesView context) {
  obs::cost::add(obs::cost::tape_derivations);
  seed_ = hmac_sha256(key, context);
}

void Tape::refill() {
  Bytes counter;
  append_u64(counter, block_index_++);
  block_ = hmac_sha256(BytesView(seed_.data(), seed_.size()), counter);
  offset_ = 0;
}

std::uint8_t Tape::next_byte() {
  if (offset_ >= block_.size()) refill();
  return block_[offset_++];
}

std::uint64_t Tape::next_u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(next_byte()) << (8 * i);
  return v;
}

double Tape::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Tape::uniform_below(std::uint64_t bound) {
  detail::require(bound > 0, "Tape::uniform_below: bound must be positive");
  if ((bound & (bound - 1)) == 0) return next_u64() & (bound - 1);
  // Classic rejection: draw from the largest multiple of bound below 2^64.
  const std::uint64_t limit = ~0ull - (~0ull % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

void Tape::fill(std::span<std::uint8_t> out) {
  for (auto& b : out) b = next_byte();
}

Bytes encode_split_context(std::uint64_t domain_lo, std::uint64_t domain_hi,
                           std::uint64_t range_lo, std::uint64_t range_hi,
                           std::uint64_t midpoint) {
  Bytes ctx;
  ctx.push_back(0x00);  // the paper's tag 0||y
  append_u64(ctx, domain_lo);
  append_u64(ctx, domain_hi);
  append_u64(ctx, range_lo);
  append_u64(ctx, range_hi);
  append_u64(ctx, midpoint);
  return ctx;
}

Bytes encode_draw_context(std::uint64_t domain_lo, std::uint64_t domain_hi,
                          std::uint64_t range_lo, std::uint64_t range_hi,
                          std::uint64_t plaintext, bool has_file_id,
                          std::uint64_t file_id) {
  Bytes ctx;
  ctx.push_back(0x01);  // the paper's tag 1||m
  append_u64(ctx, domain_lo);
  append_u64(ctx, domain_hi);
  append_u64(ctx, range_lo);
  append_u64(ctx, range_hi);
  append_u64(ctx, plaintext);
  ctx.push_back(has_file_id ? 0x01 : 0x00);
  if (has_file_id) append_u64(ctx, file_id);
  return ctx;
}

}  // namespace rsse::crypto
