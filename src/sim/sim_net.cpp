#include "sim/sim_net.h"

#include "util/bytes.h"
#include "util/errors.h"

namespace rsse::sim {

namespace {

/// FNV-1a 64: cheap, stable payload fingerprint for the transcript.
std::uint64_t fnv1a(BytesView data) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

/// Splitmix-derived per-endpoint stream seed; never zero-collapses.
std::uint64_t derive_seed(std::uint64_t net_seed, std::uint64_t endpoint,
                          std::uint64_t stream) {
  std::uint64_t state = net_seed ^ (endpoint * 0x9e3779b97f4a7c15ull) ^
                        (stream * 0xbf58476d1ce4e5b9ull);
  return splitmix64(state);
}

}  // namespace

SimNet::SimNet(SimOptions options) : options_(options) {
  detail::require(options_.base_latency.count() >= 0 &&
                      options_.latency_jitter.count() >= 0,
                  "SimNet: negative latency");
  // Validate the fault spec once, up front (FaultSchedule would throw on
  // first connect otherwise, which is harder to attribute).
  (void)fault::FaultSchedule(options_.faults);
}

std::unique_ptr<SimTransport> SimNet::connect(const cloud::RequestHandler& server) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = endpoints_.size();
  fault::FaultSpec spec = options_.faults;
  spec.seed = derive_seed(options_.seed, id, /*stream=*/1);
  auto endpoint =
      std::make_shared<Endpoint>(id, spec, derive_seed(options_.seed, id, 2));
  endpoints_.push_back(endpoint);
  return std::unique_ptr<SimTransport>(
      new SimTransport(this, std::move(endpoint), server));
}

Bytes SimNet::transcript() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Bytes out;
  append_u64(out, options_.seed);
  append_u64(out, endpoints_.size());
  for (const auto& endpoint : endpoints_) {
    const std::lock_guard<std::mutex> ep_lock(endpoint->mutex);
    append_u64(out, endpoint->id);
    append_u64(out, endpoint->events.size());
    for (const SimEvent& e : endpoint->events) {
      append_u64(out, e.seq);
      out.push_back(static_cast<std::uint8_t>(e.type));
      out.push_back(static_cast<std::uint8_t>(e.fault));
      out.push_back(static_cast<std::uint8_t>(e.outcome));
      append_u64(out, e.request_bytes);
      append_u64(out, e.response_bytes);
      append_u64(out, e.response_hash);
      append_u64(out, e.latency_ns);
    }
  }
  return out;
}

std::uint64_t SimNet::total_events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& endpoint : endpoints_) {
    const std::lock_guard<std::mutex> ep_lock(endpoint->mutex);
    total += endpoint->events.size();
  }
  return total;
}

fault::FaultCounters SimNet::fault_counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  fault::FaultCounters total;
  for (const auto& endpoint : endpoints_) {
    const fault::FaultCounters c = endpoint->schedule.counters();
    total.events += c.events;
    total.delays += c.delays;
    total.disconnects += c.disconnects;
    total.error_frames += c.error_frames;
    total.truncations += c.truncations;
    total.bit_flips += c.bit_flips;
  }
  return total;
}

std::uint64_t SimTransport::calls_seen() const {
  const std::lock_guard<std::mutex> lock(endpoint_->mutex);
  return endpoint_->next_seq;
}

Bytes SimTransport::call(cloud::MessageType type, BytesView request,
                         const Deadline& deadline) {
  SimNet::Endpoint& ep = *endpoint_;
  // One mutex per endpoint, like one TCP connection: calls serialize here,
  // which is also what pins (decision, call) assignment per endpoint.
  const std::lock_guard<std::mutex> lock(ep.mutex);

  SimEvent event;
  event.seq = ep.next_seq++;
  event.type = type;
  event.request_bytes = request.size();

  const auto record_and_throw = [&](SimOutcome outcome, const char* what,
                                    auto make_error) -> Bytes {
    event.outcome = outcome;
    net_->clock_.advance(std::chrono::nanoseconds(event.latency_ns));
    ep.events.push_back(event);
    throw make_error(what);
    return {};  // unreachable
  };

  deadline.check("SimTransport::call");
  if (down_.load(std::memory_order_relaxed)) {
    // Down endpoints fail before touching the fault stream: tests toggle
    // the switch freely without shifting later decisions.
    return record_and_throw(SimOutcome::kEndpointDown, "sim: endpoint down",
                            [](const char* w) { return ProtocolError(w); });
  }

  const fault::FaultDecision decision = ep.schedule.next();
  event.fault = decision.kind;

  // Latency: charged to the virtual clock, never slept. The jitter draw
  // happens unconditionally so the latency stream stays aligned with the
  // fault stream (same number of draws per call, fault or not).
  std::uint64_t latency =
      static_cast<std::uint64_t>(net_->options_.base_latency.count());
  if (net_->options_.latency_jitter.count() > 0)
    latency += ep.latency_rng.uniform_below(
        static_cast<std::uint64_t>(net_->options_.latency_jitter.count()));
  event.latency_ns = latency;

  switch (decision.kind) {
    case fault::FaultKind::kNone:
      break;
    case fault::FaultKind::kDelay: {
      const auto delay =
          std::chrono::duration_cast<std::chrono::nanoseconds>(decision.delay);
      // A virtual hang that outlives the caller's budget is what a real
      // hung peer produces — after wall-clock waiting. Surface it now.
      if (!deadline.is_unlimited() && decision.delay >= deadline.remaining()) {
        event.latency_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(deadline.remaining())
                .count());
        return record_and_throw(
            SimOutcome::kDeadlineExceeded, "sim: injected hang outlived the deadline",
            [](const char* w) { return DeadlineExceeded(w); });
      }
      event.latency_ns += static_cast<std::uint64_t>(delay.count());
      break;
    }
    case fault::FaultKind::kDisconnect:
      return record_and_throw(SimOutcome::kDisconnect, "sim: injected disconnect",
                              [](const char* w) { return ProtocolError(w); });
    case fault::FaultKind::kErrorFrame:
      return record_and_throw(SimOutcome::kErrorFrame,
                              "sim: injected server error frame",
                              [](const char* w) { return ProtocolError(w); });
    case fault::FaultKind::kTruncate:
    case fault::FaultKind::kBitFlip:
      break;  // applied to the response below
  }

  Bytes response;
  try {
    response = server_.load(std::memory_order_acquire)->handle(type, request);
  } catch (const Error&) {
    event.outcome = SimOutcome::kServerError;
    net_->clock_.advance(std::chrono::nanoseconds(event.latency_ns));
    ep.events.push_back(event);
    account(request.size() + 1, 0);
    throw;
  }

  if (decision.kind == fault::FaultKind::kTruncate && !response.empty())
    response.resize(decision.entropy % response.size());
  if (decision.kind == fault::FaultKind::kBitFlip && !response.empty()) {
    const std::uint64_t bit = decision.entropy % (response.size() * 8);
    response[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }

  event.outcome = SimOutcome::kOk;
  event.response_bytes = response.size();
  event.response_hash = fnv1a(response);
  net_->clock_.advance(std::chrono::nanoseconds(event.latency_ns));
  ep.events.push_back(event);
  account(request.size() + 1, response.size());
  return response;
}

}  // namespace rsse::sim
