// Virtual time for deterministic simulation (src/sim).
//
// Real chaos tests pay wall-clock for every injected stall; the simulated
// network instead *advances a counter*. Each simulated call adds its
// latency (base + jitter + injected delay) to this clock, so a test can
// assert "the query consumed 2.5 virtual seconds" while finishing in
// microseconds of real time. The clock is shared by every endpoint of one
// SimNet and only ever moves forward.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rsse::sim {

/// A monotonic virtual clock counted in nanoseconds since SimNet creation.
class SimClock {
 public:
  /// Current virtual time.
  [[nodiscard]] std::uint64_t now_ns() const {
    return now_ns_.load(std::memory_order_relaxed);
  }

  /// Current virtual time as a duration.
  [[nodiscard]] std::chrono::nanoseconds now() const {
    return std::chrono::nanoseconds(now_ns());
  }

  /// Advances the clock by `d` (negative or zero durations are ignored).
  /// Safe to call from concurrent simulated endpoints.
  void advance(std::chrono::nanoseconds d) {
    if (d.count() > 0)
      now_ns_.fetch_add(static_cast<std::uint64_t>(d.count()),
                        std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_ns_{0};
};

}  // namespace rsse::sim
