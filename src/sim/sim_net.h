// Deterministic in-process network simulation.
//
// SimNet stands in for the whole transport stack: each SimTransport is a
// cloud::Transport endpoint that invokes a serving endpoint (a
// cloud::RequestHandler) directly, charges
// latency to a shared *virtual* clock (sim_clock.h) instead of sleeping,
// and misbehaves per the existing fault::FaultSchedule — so the cluster
// coordinator, replica failover, deadline and chaos logic all run with
// zero sockets, zero sleeps, and a fault sequence that replays bit-for-bit
// from a single uint64 seed.
//
// Determinism contract (DESIGN.md Sec. 9):
//   * Every endpoint draws faults and latency from its own streams,
//     derived from (net seed, endpoint id) via splitmix64. Concurrent
//     traffic to different endpoints therefore cannot perturb another
//     endpoint's decision sequence — the assignment of decisions to calls
//     is a function of (endpoint, per-endpoint call index) alone, not of
//     thread scheduling.
//   * Injected delays advance the virtual clock. A delay that would
//     outlive the caller's deadline surfaces as DeadlineExceeded
//     immediately (what a real hung peer produces after wall-clock
//     waiting), so "hung replica" scenarios run in microseconds.
//   * transcript() serializes everything that happened, grouped by
//     endpoint and per-endpoint sequence number and hashing every
//     response payload. Re-running the same workload against the same
//     server state with the same seed yields byte-identical transcripts,
//     which is how the differential oracle pins reproducibility.
//
// The contract assumes the *workload* is deterministic too: queries
// issued from one logical stream (a query's internal scatter-gather may
// fan out — each endpoint still sees its own requests in a fixed order).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cloud/channel.h"
#include "fault/fault.h"
#include "sim/sim_clock.h"
#include "util/rng.h"

namespace rsse::sim {

/// How one simulated call ended (recorded in the transcript).
enum class SimOutcome : std::uint8_t {
  kOk = 0,                ///< response delivered (possibly corrupted)
  kEndpointDown = 1,      ///< the endpoint's kill switch was on
  kDisconnect = 2,        ///< injected connection drop
  kErrorFrame = 3,        ///< injected server error frame
  kDeadlineExceeded = 4,  ///< injected delay outlived the caller's budget
  kServerError = 5,       ///< the server itself threw (e.g. ParseError)
};

/// One simulated RPC, as the transcript records it. `latency_ns` is the
/// virtual time this call consumed (base + jitter + injected delay) —
/// per-call and endpoint-local, so it replays identically regardless of
/// how calls to *other* endpoints interleaved.
struct SimEvent {
  std::uint64_t seq = 0;  ///< per-endpoint call index, from 0
  cloud::MessageType type{};
  fault::FaultKind fault = fault::FaultKind::kNone;
  SimOutcome outcome = SimOutcome::kOk;
  std::uint64_t request_bytes = 0;
  std::uint64_t response_bytes = 0;   ///< after any truncation
  std::uint64_t response_hash = 0;    ///< FNV-1a over delivered bytes; 0 on error
  std::uint64_t latency_ns = 0;
};

/// Knobs of one simulated network.
struct SimOptions {
  std::uint64_t seed = 1;  ///< anchors every fault/latency stream

  /// Virtual latency charged to every call.
  std::chrono::nanoseconds base_latency{200'000};  // 0.2 ms
  /// Uniform extra latency in [0, jitter), drawn per call from the
  /// endpoint's latency stream. Zero disables jitter.
  std::chrono::nanoseconds latency_jitter{100'000};

  /// Fault rates/shape shared by every endpoint. The spec's own `seed`
  /// field is ignored: each endpoint's schedule seed derives from
  /// (SimOptions::seed, endpoint id) so streams never interleave.
  fault::FaultSpec faults;
};

class SimTransport;

/// The simulated network: a shared virtual clock plus a factory for
/// deterministic endpoints. Endpoints hold shared state, so they may
/// outlive the SimNet (e.g. moved into a ReplicaSet the net never sees),
/// but transcript() only covers endpoints created by this net.
class SimNet {
 public:
  explicit SimNet(SimOptions options = {});

  /// Creates the next endpoint (ids are assigned 0, 1, ... in creation
  /// order — creation order is part of the seed contract). The transport
  /// invokes `server` directly; the caller keeps `server` alive.
  [[nodiscard]] std::unique_ptr<SimTransport> connect(const cloud::RequestHandler& server);

  /// The shared virtual clock.
  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] const SimClock& clock() const { return clock_; }

  [[nodiscard]] std::uint64_t seed() const { return options_.seed; }

  /// Canonical byte serialization of every endpoint's event log, ordered
  /// by endpoint id and per-endpoint sequence. Two runs of the same
  /// deterministic workload under the same seed produce equal bytes.
  [[nodiscard]] Bytes transcript() const;

  /// Total simulated calls across all endpoints.
  [[nodiscard]] std::uint64_t total_events() const;

  /// Aggregated injected-fault counters across all endpoints.
  [[nodiscard]] fault::FaultCounters fault_counters() const;

 private:
  friend class SimTransport;

  /// Per-endpoint state, shared between the net (for transcripts) and the
  /// transport (which may be moved away into a replica set).
  struct Endpoint {
    Endpoint(std::uint64_t id, fault::FaultSpec spec, std::uint64_t latency_seed)
        : id(id), schedule(spec), latency_rng(latency_seed) {}

    const std::uint64_t id;
    std::mutex mutex;  // serializes calls on this endpoint (like one TCP conn)
    fault::FaultSchedule schedule;
    Xoshiro256 latency_rng;
    std::uint64_t next_seq = 0;
    std::vector<SimEvent> events;
  };

  SimOptions options_;
  SimClock clock_;
  mutable std::mutex mutex_;  // guards endpoints_
  std::vector<std::shared_ptr<Endpoint>> endpoints_;
};

/// One simulated endpoint. Implements the full Transport contract: counts
/// traffic, honours deadlines (against *virtual* stalls), and surfaces
/// injected faults as the same typed errors the real stack produces —
/// ProtocolError for disconnects/error frames, DeadlineExceeded for
/// hangs, corrupted payloads for truncations/bit flips (the caller's
/// deserializer turns those into ParseError).
class SimTransport final : public cloud::Transport {
 public:
  using cloud::Transport::call;
  Bytes call(cloud::MessageType type, BytesView request,
             const Deadline& deadline) override;

  /// Kill switch: a down endpoint fails every call with ProtocolError,
  /// like a dead TCP peer, without consuming fault-schedule decisions
  /// (so toggling it never shifts the fault stream of live calls).
  void set_down(bool down) { down_.store(down, std::memory_order_relaxed); }
  [[nodiscard]] bool is_down() const { return down_.load(std::memory_order_relaxed); }

  /// Re-points the endpoint at a (re)started server instance — "the
  /// process came back on the same address" move of a recovery drill.
  /// Fault/latency streams, sequence numbers and the kill switch are
  /// untouched; the caller keeps the new server alive.
  void rebind(const cloud::RequestHandler& server) {
    server_.store(&server, std::memory_order_release);
  }

  /// Calls seen so far (including ones failed by the kill switch).
  [[nodiscard]] std::uint64_t calls_seen() const;

  /// This endpoint's id within its SimNet.
  [[nodiscard]] std::uint64_t endpoint_id() const { return endpoint_->id; }

 private:
  friend class SimNet;
  SimTransport(SimNet* net, std::shared_ptr<SimNet::Endpoint> endpoint,
               const cloud::RequestHandler& server)
      : net_(net), endpoint_(std::move(endpoint)), server_(&server) {}

  SimNet* net_;
  std::shared_ptr<SimNet::Endpoint> endpoint_;
  std::atomic<const cloud::RequestHandler*> server_;
  std::atomic<bool> down_{false};
};

}  // namespace rsse::sim
