#include "ir/stopwords.h"

#include <algorithm>
#include <array>

namespace rsse::ir {

namespace {

// Sorted so membership is a binary search without any allocation.
constexpr std::array<std::string_view, 127> kStopwords{
    "about",  "above",   "after",   "again",  "against", "all",     "am",
    "an",     "and",     "any",     "are",    "as",      "at",      "be",
    "because", "been",   "before",  "being",  "below",   "between", "both",
    "but",    "by",      "can",     "cannot", "could",   "did",     "do",
    "does",   "doing",   "down",    "during", "each",    "few",     "for",
    "from",   "further", "had",     "has",    "have",    "having",  "he",
    "her",    "here",    "hers",    "herself", "him",    "himself", "his",
    "how",    "if",      "in",      "into",   "is",      "it",      "its",
    "itself", "me",      "more",    "most",   "my",      "myself",  "no",
    "nor",    "not",     "of",      "off",    "on",      "once",    "only",
    "or",     "other",   "ought",   "our",    "ours",    "ourselves", "out",
    "over",   "own",     "same",    "she",    "should",  "so",      "some",
    "such",   "than",    "that",    "the",    "their",   "theirs",  "them",
    "themselves", "then", "there",  "these",  "they",    "this",    "those",
    "through", "to",     "too",     "under",  "until",   "up",      "very",
    "was",    "we",      "were",    "what",   "when",    "where",   "which",
    "while",  "who",     "whom",    "why",    "with",    "would",   "you",
    "your",   "yours",   "yourself", "yourselves", "a",   "i",      "s",
    "t",
};

}  // namespace

bool is_stopword(std::string_view word) {
  // kStopwords is *not* fully sorted as written (short words appended);
  // build a sorted copy once.
  static const auto sorted = [] {
    auto copy = kStopwords;
    std::sort(copy.begin(), copy.end());
    return copy;
  }();
  return std::binary_search(sorted.begin(), sorted.end(), word);
}

std::size_t stopword_count() { return kStopwords.size(); }

}  // namespace rsse::ir
