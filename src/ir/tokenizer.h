// Tokenization and case folding: the first stage of the keyword-extraction
// pipeline (the paper defers to standard IR practice — case folding,
// stemming, stop words; Sec. II footnote 2).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rsse::ir {

/// Tokenizer options.
struct TokenizerOptions {
  std::size_t min_length = 2;   ///< drop tokens shorter than this
  std::size_t max_length = 40;  ///< drop absurdly long tokens (base64 blobs)
  bool keep_numbers = false;    ///< keep all-digit tokens?
};

/// Splits `text` into lower-cased tokens on any non-alphanumeric byte.
/// ASCII-only by design: the synthetic corpus and the RFC collection the
/// paper uses are ASCII; bytes >= 0x80 act as separators.
std::vector<std::string> tokenize(std::string_view text,
                                  const TokenizerOptions& options = {});

/// Lower-cases ASCII letters in place.
void ascii_lowercase(std::string& s);

/// True when every byte of `s` is a decimal digit (and s is non-empty).
bool is_all_digits(std::string_view s);

}  // namespace rsse::ir
