// Query-workload generation: realistic keyword query streams for the
// throughput/latency benches and multi-user tests. Search traffic, like
// term frequency, is famously Zipfian — a few head keywords dominate —
// so the generator draws query keywords by Zipf rank over a popularity
// ordering of the vocabulary. Deterministic by seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/inverted_index.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace rsse::ir {

/// Workload parameters.
struct QueryWorkloadOptions {
  std::size_t num_queries = 1000;
  double zipf_exponent = 1.0;      ///< query-popularity skew
  std::size_t max_vocabulary = 0;  ///< restrict to the top-N terms (0 = all)
  std::uint64_t seed = 1;
};

/// A generated stream of single-keyword queries.
class QueryWorkload {
 public:
  /// Builds the popularity ordering from `index` (terms sorted by
  /// document frequency, descending — popular terms get popular
  /// queries) and samples the stream. Throws InvalidArgument on an
  /// empty index or zero queries.
  QueryWorkload(const InvertedIndex& index, const QueryWorkloadOptions& options);

  /// The query stream, in order.
  [[nodiscard]] const std::vector<std::string>& queries() const { return queries_; }

  /// Distinct keywords appearing in the stream.
  [[nodiscard]] std::size_t distinct_keywords() const;

  /// Number of times the most popular keyword was queried.
  [[nodiscard]] std::size_t peak_keyword_count() const;

 private:
  std::vector<std::string> queries_;
};

}  // namespace rsse::ir
