#include "ir/analyzer.h"

#include "ir/porter_stemmer.h"
#include "ir/stopwords.h"

namespace rsse::ir {

std::vector<std::string> Analyzer::analyze(std::string_view text) const {
  std::vector<std::string> tokens = tokenize(text, options_.tokenizer);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (std::string& token : tokens) {
    if (options_.remove_stopwords && is_stopword(token)) continue;
    out.push_back(options_.stem ? porter_stem(token) : std::move(token));
  }
  return out;
}

std::string Analyzer::normalize_keyword(std::string_view keyword) const {
  const std::vector<std::string> terms = analyze(keyword);
  if (terms.size() != 1) return {};
  return terms.front();
}

}  // namespace rsse::ir
