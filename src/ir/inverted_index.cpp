#include "ir/inverted_index.h"

#include <algorithm>

#include "ir/scoring.h"
#include "util/errors.h"

namespace rsse::ir {

InvertedIndex InvertedIndex::build(const Corpus& corpus, const Analyzer& analyzer) {
  InvertedIndex index;
  for (const Document& doc : corpus.documents()) {
    const std::vector<std::string> terms = analyzer.analyze(doc.text);
    // |F_d| counts indexed terms (after stop-word removal and stemming),
    // matching the paper's "obtained by counting the number of indexed
    // terms".
    index.doc_lengths_[value(doc.id)] = static_cast<std::uint32_t>(terms.size());
    std::unordered_map<std::string, std::uint32_t> tf;
    for (const std::string& t : terms) ++tf[t];
    for (const auto& [term, count] : tf)
      index.postings_[term].push_back(Posting{doc.id, count});
  }
  index.terms_.reserve(index.postings_.size());
  for (auto& [term, list] : index.postings_) {
    std::sort(list.begin(), list.end(), [](const Posting& a, const Posting& b) {
      return value(a.file) < value(b.file);
    });
    index.terms_.push_back(term);
  }
  std::sort(index.terms_.begin(), index.terms_.end());
  return index;
}

const std::vector<Posting>* InvertedIndex::postings(std::string_view term) const {
  const auto it = postings_.find(std::string(term));
  return it == postings_.end() ? nullptr : &it->second;
}

std::uint64_t InvertedIndex::document_frequency(std::string_view term) const {
  const std::vector<Posting>* list = postings(term);
  return list ? list->size() : 0;
}

std::uint32_t InvertedIndex::doc_length(FileId id) const {
  const auto it = doc_lengths_.find(value(id));
  detail::require(it != doc_lengths_.end(), "InvertedIndex::doc_length: unknown FileId");
  return it->second;
}

std::uint64_t InvertedIndex::max_posting_length() const {
  std::uint64_t best = 0;
  for (const auto& [term, list] : postings_) best = std::max<std::uint64_t>(best, list.size());
  return best;
}

double InvertedIndex::average_posting_length() const {
  if (postings_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& [term, list] : postings_) total += list.size();
  return static_cast<double>(total) / static_cast<double>(postings_.size());
}

namespace {

void sort_ranked(std::vector<ScoredPosting>& out) {
  std::sort(out.begin(), out.end(), [](const ScoredPosting& a, const ScoredPosting& b) {
    if (a.score != b.score) return a.score > b.score;
    return value(a.file) < value(b.file);
  });
}

}  // namespace

std::vector<ScoredPosting> InvertedIndex::ranked_postings(std::string_view term) const {
  std::vector<ScoredPosting> out;
  const std::vector<Posting>* list = postings(term);
  if (!list) return out;
  out.reserve(list->size());
  for (const Posting& p : *list)
    out.push_back(ScoredPosting{p.file, score_single_keyword(p.tf, doc_length(p.file))});
  sort_ranked(out);
  return out;
}

std::vector<ScoredPosting> InvertedIndex::ranked_postings_tfidf(
    const std::vector<std::string>& query_terms) const {
  std::unordered_map<std::uint64_t, double> acc;
  const auto n = static_cast<std::uint64_t>(num_documents());
  for (const std::string& term : query_terms) {
    const std::vector<Posting>* list = postings(term);
    if (!list) continue;
    const auto ft = static_cast<std::uint64_t>(list->size());
    for (const Posting& p : *list)
      acc[value(p.file)] += score_tfidf_term(p.tf, doc_length(p.file), ft, n);
  }
  std::vector<ScoredPosting> out;
  out.reserve(acc.size());
  for (const auto& [id, score] : acc) out.push_back(ScoredPosting{file_id(id), score});
  sort_ranked(out);
  return out;
}

}  // namespace rsse::ir
