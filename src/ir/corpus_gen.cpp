#include "ir/corpus_gen.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/errors.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace rsse::ir {

std::string synthetic_word(std::size_t rank) {
  // Base-21x5 syllable encoding: every rank maps to a unique CV(CV...)C
  // word, e.g. 0 -> "bab". The trailing consonant keeps most words fixed
  // points of the Porter stemmer (no common suffix).
  static constexpr char kConsonants[] = "bcdfghjklmnpqrstvwxz";  // 20
  static constexpr char kVowels[] = "aeiou";                     // 5
  std::string out;
  out.push_back(kConsonants[rank % 20]);
  rank /= 20;
  do {
    out.push_back(kVowels[rank % 5]);
    rank /= 5;
    out.push_back(kConsonants[rank % 20]);
    rank /= 20;
  } while (rank > 0);
  return out;
}

namespace {

// TF ~ 1 + Geometric(p), clipped to `cap`.
std::uint32_t geometric_tf(Xoshiro256& rng, double p, std::uint32_t cap) {
  const double u = rng.next_double();
  const double draws = std::floor(std::log1p(-u) / std::log1p(-p));
  const double tf = 1.0 + std::max(0.0, draws);
  return static_cast<std::uint32_t>(std::min<double>(tf, cap));
}

std::string render_document(const std::vector<std::string>& tokens, std::size_t doc_index) {
  std::ostringstream os;
  os << "Synthetic Document " << doc_index << "\n\n";
  std::size_t line_len = 0;
  for (const std::string& tok : tokens) {
    os << tok;
    line_len += tok.size() + 1;
    if (line_len > 72) {
      os << '\n';
      line_len = 0;
    } else {
      os << ' ';
    }
  }
  os << '\n';
  return os.str();
}

}  // namespace

Corpus generate_corpus(const CorpusGenOptions& options) {
  detail::require(options.num_documents > 0, "generate_corpus: need documents");
  detail::require(options.vocabulary_size > 0, "generate_corpus: need vocabulary");
  detail::require(options.min_tokens > 0 && options.min_tokens <= options.max_tokens,
                  "generate_corpus: bad token-length interval");
  for (const InjectedKeyword& kw : options.injected) {
    detail::require(kw.document_count <= options.num_documents,
                    "generate_corpus: injected keyword exceeds corpus size");
    detail::require(kw.tf_geometric_p > 0.0 && kw.tf_geometric_p < 1.0,
                    "generate_corpus: tf_geometric_p must be in (0,1)");
    detail::require(!kw.word.empty(), "generate_corpus: empty injected keyword");
  }

  Xoshiro256 rng(options.seed);
  const ZipfSampler zipf(options.vocabulary_size, options.zipf_exponent);

  // Pre-generate the background vocabulary once.
  std::vector<std::string> vocab(options.vocabulary_size);
  for (std::size_t r = 0; r < vocab.size(); ++r) vocab[r] = synthetic_word(r);

  // Decide which documents contain each injected keyword: a uniform
  // sample without replacement of `document_count` docs.
  std::vector<std::vector<std::uint32_t>> injected_tf(
      options.injected.size(), std::vector<std::uint32_t>(options.num_documents, 0));
  for (std::size_t k = 0; k < options.injected.size(); ++k) {
    const InjectedKeyword& kw = options.injected[k];
    std::vector<std::size_t> docs(options.num_documents);
    for (std::size_t i = 0; i < docs.size(); ++i) docs[i] = i;
    std::shuffle(docs.begin(), docs.end(), rng);
    for (std::size_t i = 0; i < kw.document_count; ++i)
      injected_tf[k][docs[i]] = geometric_tf(rng, kw.tf_geometric_p, kw.tf_cap);
  }

  const double log_min = std::log(static_cast<double>(options.min_tokens));
  const double log_max = std::log(static_cast<double>(options.max_tokens));

  Corpus corpus;
  for (std::size_t d = 0; d < options.num_documents; ++d) {
    const double log_len = log_min + (log_max - log_min) * rng.next_double();
    const auto background_len = static_cast<std::size_t>(std::exp(log_len));

    std::vector<std::string> tokens;
    tokens.reserve(background_len + 32);
    for (std::size_t t = 0; t < background_len; ++t)
      tokens.push_back(vocab[zipf.sample(rng)]);
    for (std::size_t k = 0; k < options.injected.size(); ++k) {
      for (std::uint32_t c = 0; c < injected_tf[k][d]; ++c)
        tokens.push_back(options.injected[k].word);
    }
    std::shuffle(tokens.begin(), tokens.end(), rng);

    char name[32];
    std::snprintf(name, sizeof name, "doc%05zu.txt", d);
    corpus.add(Document{file_id(d), name, render_document(tokens, d)});
  }
  return corpus;
}

Corpus load_directory(const std::string& dir, std::size_t max_files) {
  namespace fs = std::filesystem;
  detail::require(fs::is_directory(dir), "load_directory: not a directory: " + dir);
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  if (paths.size() > max_files) paths.resize(max_files);

  Corpus corpus;
  std::uint64_t next_id = 0;
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) throw Error("load_directory: cannot open " + p.string());
    std::ostringstream content;
    content << in.rdbuf();
    corpus.add(Document{file_id(next_id++), p.filename().string(), content.str()});
  }
  return corpus;
}

}  // namespace rsse::ir
