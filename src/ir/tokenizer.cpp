#include "ir/tokenizer.h"

#include <cctype>

namespace rsse::ir {

void ascii_lowercase(std::string& s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
}

bool is_all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

namespace {

bool is_token_byte(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
}

}  // namespace

std::vector<std::string> tokenize(std::string_view text, const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  const auto flush = [&] {
    if (current.size() >= options.min_length && current.size() <= options.max_length &&
        (options.keep_numbers || !is_all_digits(current))) {
      ascii_lowercase(current);
      tokens.push_back(current);
    }
    current.clear();
  };
  for (unsigned char c : text) {
    if (is_token_byte(c)) {
      current.push_back(static_cast<char>(c));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace rsse::ir
