// The keyword-extraction pipeline: tokenize -> case fold -> stop-word
// filter -> Porter stem. Both the index builder (BuildIndex scans C) and
// the user-side trapdoor generation run the *same* analyzer so a query
// keyword normalizes to exactly the indexed form.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ir/tokenizer.h"

namespace rsse::ir {

/// Analyzer options; defaults match the paper's setup (stemming + stop
/// words + case folding on).
struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  bool stem = true;
};

/// A configured, reusable text analyzer.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {}) : options_(options) {}

  /// Full-document analysis: the indexed term sequence of `text`. The
  /// result length is the paper's |Fd| normalization factor.
  [[nodiscard]] std::vector<std::string> analyze(std::string_view text) const;

  /// Single-keyword normalization for query/trapdoor generation. Returns
  /// an empty string when the keyword is filtered out entirely (e.g. a
  /// stop word), which callers must treat as "no results".
  [[nodiscard]] std::string normalize_keyword(std::string_view keyword) const;

  /// The options in effect.
  [[nodiscard]] const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
};

}  // namespace rsse::ir
