// The paper's relevance scoring (Sec. II-C).
//
// Eq. 1 (TF x IDF, used for multi-keyword queries):
//   Score(Q, F_d) = sum_{t in Q} (1/|F_d|) * (1 + ln f_{d,t}) * ln(1 + N/f_t)
//
// Eq. 2 (single keyword; IDF is constant per query so it drops out):
//   Score(t, F_d) = (1/|F_d|) * (1 + ln f_{d,t})
//
// f_{d,t}: term frequency of t in F_d; f_t: number of files containing t;
// N: collection size; |F_d|: file length in indexed terms.
#pragma once

#include <cstdint>

namespace rsse::ir {

/// Eq. 2. Requires tf >= 1 and doc_length >= 1 (a posting always implies
/// at least one occurrence in a non-empty document).
double score_single_keyword(std::uint32_t tf, std::uint32_t doc_length);

/// One term's contribution to eq. 1. Requires additionally 1 <= ft <= n.
double score_tfidf_term(std::uint32_t tf, std::uint32_t doc_length, std::uint64_t ft,
                        std::uint64_t n);

}  // namespace rsse::ir
