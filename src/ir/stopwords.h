// English stop-word filtering (Sec. II footnote 2: stop words are removed
// before the keyword set W is extracted so the index stays compact).
#pragma once

#include <string_view>

namespace rsse::ir {

/// True when `word` (lower-case) is in the built-in English stop list —
/// the classic ~120-word list used by early IR systems.
bool is_stopword(std::string_view word);

/// Number of words on the built-in list (for tests/documentation).
std::size_t stopword_count();

}  // namespace rsse::ir
