#include "ir/porter_stemmer.h"

#include <array>

namespace rsse::ir {

namespace {

// Working buffer for one word. All the classic predicate names (m(), *v*,
// *d, *o) follow Porter's paper so the implementation can be audited
// against it step by step.
class Stemmer {
 public:
  explicit Stemmer(std::string_view word) : w_(word) {}

  std::string run() {
    if (w_.size() <= 2) return w_;
    step1a();
    step1b();
    step1c();
    step2();
    step3();
    step4();
    step5a();
    step5b();
    return w_;
  }

 private:
  // True when w_[i] is a consonant. 'y' is a consonant when it is the
  // first letter or follows a vowel position... per Porter: y is a
  // consonant when preceded by a vowel-position letter; precisely, it is a
  // consonant iff i == 0 or the previous letter is NOT a consonant.
  [[nodiscard]] bool is_consonant(std::size_t i) const {
    switch (w_[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !is_consonant(i - 1);
      default:
        return true;
    }
  }

  // Porter's measure m of the prefix w_[0..len): the number of VC
  // sequences in the form [C](VC)^m[V].
  [[nodiscard]] int measure(std::size_t len) const {
    int m = 0;
    std::size_t i = 0;
    // skip initial consonants
    while (i < len && is_consonant(i)) ++i;
    while (true) {
      // skip vowels
      while (i < len && !is_consonant(i)) ++i;
      if (i >= len) return m;
      // a VC boundary
      while (i < len && is_consonant(i)) ++i;
      ++m;
      if (i >= len) return m;
    }
  }

  // *v*: the prefix w_[0..len) contains a vowel.
  [[nodiscard]] bool has_vowel(std::size_t len) const {
    for (std::size_t i = 0; i < len; ++i) {
      if (!is_consonant(i)) return true;
    }
    return false;
  }

  // *d: the prefix ends in a double consonant.
  [[nodiscard]] bool ends_double_consonant(std::size_t len) const {
    if (len < 2) return false;
    return w_[len - 1] == w_[len - 2] && is_consonant(len - 1);
  }

  // *o: the prefix ends consonant-vowel-consonant where the final
  // consonant is not w, x or y.
  [[nodiscard]] bool ends_cvc(std::size_t len) const {
    if (len < 3) return false;
    if (!is_consonant(len - 3) || is_consonant(len - 2) || !is_consonant(len - 1))
      return false;
    const char c = w_[len - 1];
    return c != 'w' && c != 'x' && c != 'y';
  }

  [[nodiscard]] bool ends_with(std::string_view suffix) const {
    return w_.size() >= suffix.size() &&
           std::string_view(w_).substr(w_.size() - suffix.size()) == suffix;
  }

  // Length of the stem left when `suffix` is removed.
  [[nodiscard]] std::size_t stem_len(std::string_view suffix) const {
    return w_.size() - suffix.size();
  }

  void set_suffix(std::string_view suffix, std::size_t keep) {
    w_.resize(keep);
    w_.append(suffix);
  }

  // Rule helper for steps 2-4: if the word ends in `suffix` and the stem
  // measure condition holds, replace the suffix. Returns true when the
  // suffix matched (whether or not the rule fired), which ends the step.
  bool rule(std::string_view suffix, std::string_view replacement, int min_m) {
    if (!ends_with(suffix)) return false;
    const std::size_t keep = stem_len(suffix);
    if (measure(keep) > min_m) set_suffix(replacement, keep);
    return true;
  }

  void step1a() {
    if (ends_with("sses")) {
      set_suffix("ss", stem_len("sses"));
    } else if (ends_with("ies")) {
      set_suffix("i", stem_len("ies"));
    } else if (ends_with("ss")) {
      // keep
    } else if (ends_with("s")) {
      w_.resize(w_.size() - 1);
    }
  }

  void step1b() {
    if (ends_with("eed")) {
      if (measure(stem_len("eed")) > 0) w_.resize(w_.size() - 1);
      return;
    }
    bool removed = false;
    if (ends_with("ed") && has_vowel(stem_len("ed"))) {
      w_.resize(stem_len("ed"));
      removed = true;
    } else if (ends_with("ing") && has_vowel(stem_len("ing"))) {
      w_.resize(stem_len("ing"));
      removed = true;
    }
    if (!removed) return;
    if (ends_with("at") || ends_with("bl") || ends_with("iz")) {
      w_.push_back('e');
    } else if (ends_double_consonant(w_.size())) {
      const char c = w_.back();
      if (c != 'l' && c != 's' && c != 'z') w_.resize(w_.size() - 1);
    } else if (measure(w_.size()) == 1 && ends_cvc(w_.size())) {
      w_.push_back('e');
    }
  }

  void step1c() {
    if (ends_with("y") && has_vowel(w_.size() - 1)) w_.back() = 'i';
  }

  void step2() {
    // Ordered as in Porter's paper; first suffix match wins.
    static constexpr std::array<std::array<std::string_view, 2>, 20> kRules{{
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
        {"izer", "ize"},    {"abli", "able"},   {"alli", "al"},   {"entli", "ent"},
        {"eli", "e"},       {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"}, {"fulness", "ful"},
        {"ousness", "ous"}, {"aliti", "al"},    {"iviti", "ive"}, {"biliti", "ble"},
    }};
    for (const auto& [suffix, replacement] : kRules) {
      if (rule(suffix, replacement, 0)) return;
    }
  }

  void step3() {
    static constexpr std::array<std::array<std::string_view, 2>, 7> kRules{{
        {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},   {"ness", ""},
    }};
    for (const auto& [suffix, replacement] : kRules) {
      if (rule(suffix, replacement, 0)) return;
    }
  }

  void step4() {
    static constexpr std::array<std::string_view, 19> kSuffixes{
        "al",  "ance", "ence", "er",  "ic",  "able", "ible", "ant",  "ement",
        "ment", "ent",  "ion",  "ou",  "ism", "ate",  "iti",  "ous",  "ive",
        "ize",
    };
    for (std::string_view suffix : kSuffixes) {
      if (!ends_with(suffix)) continue;
      const std::size_t keep = stem_len(suffix);
      if (suffix == "ion") {
        // (m>1 and (*S or *T)) ION ->
        if (measure(keep) > 1 && keep > 0 && (w_[keep - 1] == 's' || w_[keep - 1] == 't'))
          w_.resize(keep);
      } else {
        if (measure(keep) > 1) w_.resize(keep);
      }
      return;  // first matching suffix ends the step
    }
  }

  void step5a() {
    if (!ends_with("e")) return;
    const std::size_t keep = w_.size() - 1;
    const int m = measure(keep);
    if (m > 1 || (m == 1 && !ends_cvc(keep))) w_.resize(keep);
  }

  void step5b() {
    if (w_.size() >= 2 && w_.back() == 'l' && ends_double_consonant(w_.size()) &&
        measure(w_.size()) > 1)
      w_.resize(w_.size() - 1);
  }

  std::string w_;
};

}  // namespace

std::string porter_stem(std::string_view word) { return Stemmer(word).run(); }

}  // namespace rsse::ir
