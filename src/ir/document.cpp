#include "ir/document.h"

#include "util/errors.h"

namespace rsse::ir {

void Corpus::add(Document doc) {
  const std::uint64_t raw = value(doc.id);
  rsse::detail::require(!index_by_id_.contains(raw), "Corpus::add: duplicate FileId");
  index_by_id_.emplace(raw, docs_.size());
  docs_.push_back(std::move(doc));
}

const Document& Corpus::by_id(FileId id) const {
  const auto it = index_by_id_.find(value(id));
  rsse::detail::require(it != index_by_id_.end(), "Corpus::by_id: unknown FileId");
  return docs_[it->second];
}

bool Corpus::contains(FileId id) const { return index_by_id_.contains(value(id)); }

std::uint64_t Corpus::total_bytes() const {
  std::uint64_t total = 0;
  for (const Document& d : docs_) total += d.text.size();
  return total;
}

}  // namespace rsse::ir
