#include "ir/scoring.h"

#include <cmath>

#include "util/errors.h"

namespace rsse::ir {

double score_single_keyword(std::uint32_t tf, std::uint32_t doc_length) {
  detail::require(tf >= 1, "score_single_keyword: tf must be >= 1");
  detail::require(doc_length >= 1, "score_single_keyword: empty document");
  return (1.0 + std::log(static_cast<double>(tf))) / static_cast<double>(doc_length);
}

double score_tfidf_term(std::uint32_t tf, std::uint32_t doc_length, std::uint64_t ft,
                        std::uint64_t n) {
  detail::require(ft >= 1 && ft <= n, "score_tfidf_term: ft outside [1, n]");
  const double idf = std::log(1.0 + static_cast<double>(n) / static_cast<double>(ft));
  return score_single_keyword(tf, doc_length) * idf;
}

}  // namespace rsse::ir
