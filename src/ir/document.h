// The file collection model: C = (F_1, ..., F_n), each file carrying the
// unique identifier id(F_j) the schemes embed in posting entries and the
// one-to-many mapping uses as its extra randomization seed.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace rsse::ir {

/// Unique file identifier. A strong alias (not a raw uint64) so it cannot
/// be confused with scores or postings offsets at call sites.
enum class FileId : std::uint64_t {};

/// Numeric value of a FileId.
constexpr std::uint64_t value(FileId id) { return static_cast<std::uint64_t>(id); }

/// Builds a FileId from a raw number.
constexpr FileId file_id(std::uint64_t v) { return static_cast<FileId>(v); }

/// One plaintext file of the collection.
struct Document {
  FileId id{};
  std::string name;  ///< human-readable name, e.g. "rfc0791.txt"
  std::string text;  ///< full plaintext content
};

/// The in-memory plaintext collection (owner side only; the server only
/// ever sees ciphertext blobs).
class Corpus {
 public:
  Corpus() = default;

  /// Adds a document; its id must be unique. Throws InvalidArgument on a
  /// duplicate id.
  void add(Document doc);

  /// All documents in insertion order.
  [[nodiscard]] const std::vector<Document>& documents() const { return docs_; }

  /// Number of documents (the paper's N).
  [[nodiscard]] std::size_t size() const { return docs_.size(); }

  /// Looks up a document by id. Throws InvalidArgument when absent.
  [[nodiscard]] const Document& by_id(FileId id) const;

  /// True when a document with `id` exists.
  [[nodiscard]] bool contains(FileId id) const;

  /// Total plaintext bytes across the collection.
  [[nodiscard]] std::uint64_t total_bytes() const;

 private:
  std::vector<Document> docs_;
  std::unordered_map<std::uint64_t, std::size_t> index_by_id_;  // id -> position
};

}  // namespace rsse::ir
