#include "ir/query_workload.h"

#include <algorithm>
#include <unordered_map>

#include "util/errors.h"

namespace rsse::ir {

QueryWorkload::QueryWorkload(const InvertedIndex& index,
                             const QueryWorkloadOptions& options) {
  detail::require(index.num_terms() > 0, "QueryWorkload: empty index");
  detail::require(options.num_queries > 0, "QueryWorkload: zero queries");

  // Popularity order: document frequency descending, term as tiebreak so
  // the ordering is deterministic.
  std::vector<std::string> by_popularity = index.terms();
  std::sort(by_popularity.begin(), by_popularity.end(),
            [&](const std::string& a, const std::string& b) {
              const auto fa = index.document_frequency(a);
              const auto fb = index.document_frequency(b);
              if (fa != fb) return fa > fb;
              return a < b;
            });
  if (options.max_vocabulary > 0 && by_popularity.size() > options.max_vocabulary)
    by_popularity.resize(options.max_vocabulary);

  const ZipfSampler zipf(by_popularity.size(), options.zipf_exponent);
  Xoshiro256 rng(options.seed);
  queries_.reserve(options.num_queries);
  for (std::size_t q = 0; q < options.num_queries; ++q)
    queries_.push_back(by_popularity[zipf.sample(rng)]);
}

std::size_t QueryWorkload::distinct_keywords() const {
  std::unordered_map<std::string, bool> seen;
  for (const std::string& q : queries_) seen[q] = true;
  return seen.size();
}

std::size_t QueryWorkload::peak_keyword_count() const {
  std::unordered_map<std::string, std::size_t> counts;
  std::size_t best = 0;
  for (const std::string& q : queries_) best = std::max(best, ++counts[q]);
  return best;
}

}  // namespace rsse::ir
