// Synthetic RFC-like corpus generation.
//
// The paper evaluates on the IETF RFC collection (5563 files, 277 MB),
// which is not available offline; this generator is the documented
// substitution (DESIGN.md Sec. 2). It produces a deterministic-by-seed
// collection whose *statistics* drive the experiments:
//   * background vocabulary drawn Zipfian, like natural language;
//   * log-uniform document lengths (|Fd| spread => score normalization);
//   * "injected" keywords with a controlled document frequency and a
//     geometric term-frequency distribution, reproducing the skewed
//     per-keyword relevance-score histograms of Fig. 4 (the paper's
//     keyword "network" over 1000 files, max/lambda ~= 0.06).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/document.h"

namespace rsse::ir {

/// A keyword planted with controlled statistics.
struct InjectedKeyword {
  std::string word;                ///< e.g. "network"; should be stem-stable
  std::size_t document_count = 0;  ///< how many documents contain it (N_i)
  double tf_geometric_p = 0.25;    ///< TF ~ 1 + Geom(p); smaller p = heavier tail
  std::uint32_t tf_cap = 400;      ///< clip absurd tail draws
};

/// Generator parameters.
struct CorpusGenOptions {
  std::size_t num_documents = 1000;
  std::size_t vocabulary_size = 5000;
  double zipf_exponent = 1.05;       ///< term-rank exponent of the background text
  std::size_t min_tokens = 200;      ///< shortest document, in tokens
  std::size_t max_tokens = 3000;     ///< longest document, in tokens
  std::vector<InjectedKeyword> injected;
  std::uint64_t seed = 42;           ///< all randomness derives from this
};

/// Deterministic pronounceable pseudo-word for vocabulary rank `rank`
/// ("background" terms of the synthetic text). Distinct ranks yield
/// distinct words.
std::string synthetic_word(std::size_t rank);

/// Generates the collection. Document ids are dense from 0.
Corpus generate_corpus(const CorpusGenOptions& options);

/// Loads every regular file under `dir` (non-recursive) as one document,
/// in sorted filename order, up to `max_files`. This is how a user points
/// the library at a real collection such as a directory of RFC text files.
Corpus load_directory(const std::string& dir, std::size_t max_files = SIZE_MAX);

}  // namespace rsse::ir
