// The Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980) — the classic five-step variant, as
// used by "Managing Gigabytes" [5], the IR reference the paper builds its
// keyword extraction on. Stemming conflates inflected forms (e.g.
// "networking", "networks" -> "network") so the index's keyword set W
// stays small (Sec. II footnote 2).
#pragma once

#include <string>
#include <string_view>

namespace rsse::ir {

/// Returns the Porter stem of `word`. The input is expected to be a
/// lower-case ASCII token (the tokenizer's output); words of length <= 2
/// are returned unchanged per the original algorithm.
std::string porter_stem(std::string_view word);

}  // namespace rsse::ir
