// The plaintext inverted index (Sec. II-C, Fig. 2): keyword -> posting
// list of (file id, term frequency). This is the data owner's private
// pre-processing structure from which both schemes' secure indexes are
// built, and it doubles as the plaintext-search baseline of the benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/analyzer.h"
#include "ir/document.h"

namespace rsse::ir {

/// One posting: keyword w_i occurs `tf` times in file `file`.
struct Posting {
  FileId file{};
  std::uint32_t tf = 0;

  friend bool operator==(const Posting&, const Posting&) = default;
};

/// A scored posting used by ranked retrieval.
struct ScoredPosting {
  FileId file{};
  double score = 0.0;
};

/// The inverted index over a collection.
class InvertedIndex {
 public:
  /// Scans the whole corpus through `analyzer` — the BuildIndex step 1
  /// "scan C and extract the distinct words W" — recording per-term
  /// postings and per-document lengths |F_d|.
  static InvertedIndex build(const Corpus& corpus, const Analyzer& analyzer);

  /// Posting list of `term` (already analyzer-normalized), ordered by
  /// file id; nullptr when the term is not in W.
  [[nodiscard]] const std::vector<Posting>* postings(std::string_view term) const;

  /// F(w): document frequency of `term` (0 when absent) — the paper's N_i.
  [[nodiscard]] std::uint64_t document_frequency(std::string_view term) const;

  /// |F_d| for a document that was indexed. Throws InvalidArgument for an
  /// unknown id.
  [[nodiscard]] std::uint32_t doc_length(FileId id) const;

  /// Collection size N.
  [[nodiscard]] std::size_t num_documents() const { return doc_lengths_.size(); }

  /// Vocabulary size m = |W|.
  [[nodiscard]] std::size_t num_terms() const { return terms_.size(); }

  /// The distinct keyword set W in lexicographic order.
  [[nodiscard]] const std::vector<std::string>& terms() const { return terms_; }

  /// nu = max_i N_i: the longest posting list, the Basic Scheme's padding
  /// width.
  [[nodiscard]] std::uint64_t max_posting_length() const;

  /// lambda: mean posting-list length (eq. 3's average duplicates base).
  [[nodiscard]] double average_posting_length() const;

  /// Eq. 2 scores of the whole posting list of `term`, sorted descending
  /// by score (ties broken by file id for determinism). Empty when the
  /// term is unknown. This is the plaintext ranked-search baseline.
  [[nodiscard]] std::vector<ScoredPosting> ranked_postings(std::string_view term) const;

  /// Eq. 1 multi-keyword scores over the union of the query terms'
  /// postings, sorted descending. Unknown terms contribute nothing.
  [[nodiscard]] std::vector<ScoredPosting> ranked_postings_tfidf(
      const std::vector<std::string>& query_terms) const;

 private:
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::unordered_map<std::uint64_t, std::uint32_t> doc_lengths_;
  std::vector<std::string> terms_;  // sorted vocabulary
};

}  // namespace rsse::ir
