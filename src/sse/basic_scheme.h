// The Basic Scheme (Sec. III-C): ranked search with unmodified SSE
// security. Scores are encrypted with the semantically secure E_z(.), so
// the server learns nothing beyond access and search pattern — and
// therefore cannot rank. Ranking happens on the user side after the
// server returns every matching entry (one round), or the user runs the
// two-round top-k protocol modelled in cloud/data_user.h.
//
// This scheme exists as the security/efficiency baseline the paper argues
// against: tests assert it returns identical rankings to RSSE, and the
// ablation bench measures the bandwidth/round-trip cost it pays for the
// stronger guarantee.
#pragma once

#include <string_view>
#include <vector>

#include "ir/analyzer.h"
#include "ir/document.h"
#include "ir/inverted_index.h"
#include "sse/keys.h"
#include "sse/secure_index.h"
#include "sse/trapdoor_gen.h"
#include "sse/types.h"

namespace rsse::sse {

/// Size of the Basic Scheme's score field: E_z over the 8-byte score
/// (AES-CTR IV + payload).
inline constexpr std::size_t kBasicScoreFieldSize = 16 + 8;

/// One search hit as the *server* sees it: file id plus a score blob only
/// the user can decrypt.
struct BasicSearchEntry {
  FileId file{};
  Bytes encrypted_score;

  friend bool operator==(const BasicSearchEntry&, const BasicSearchEntry&) = default;
};

/// A user-side decrypted, ranked hit.
struct RankedHit {
  FileId file{};
  double score = 0.0;
};

/// User-side score decryption given only the derived score key (what an
/// authorized user holds — see cloud/auth.h). Throws ParseError on a
/// malformed blob.
double decrypt_basic_score(BytesView score_key, BytesView encrypted_score);

/// The Basic Scheme's owner/user-side algorithms. Server-side search is a
/// static function: the server never holds key material.
class BasicScheme {
 public:
  /// Binds the scheme to the owner's master key and the keyword-
  /// normalization pipeline (which users must share).
  explicit BasicScheme(MasterKey key, ir::AnalyzerOptions analyzer_options = {});

  /// Timing/shape breakdown of build_index.
  struct BuildStats {
    double raw_index_seconds = 0.0;  ///< plaintext inverted-index scan
    double encrypt_seconds = 0.0;    ///< entry encryption + padding
    std::uint64_t pad_width = 0;     ///< nu, the padded row length
    std::uint64_t num_postings = 0;  ///< genuine entries before padding
  };

  /// BuildIndex(K, C) per Fig. 3. Every row is padded to nu entries.
  /// `stats`, when non-null, receives the timing breakdown.
  [[nodiscard]] SecureIndex build_index(const ir::Corpus& corpus,
                                        BuildStats* stats = nullptr) const;

  /// TrapdoorGen(w). Throws InvalidArgument when the keyword normalizes
  /// to nothing (stop word / non-token).
  [[nodiscard]] Trapdoor trapdoor(std::string_view keyword) const;

  /// SearchIndex(I, T_w), run by the server: locates the row, decrypts
  /// entries with the trapdoor's list key, and returns the valid ones.
  /// Order is the stored (file-id) order — the server cannot rank.
  static std::vector<BasicSearchEntry> search(const SecureIndex& index,
                                              const Trapdoor& trapdoor);

  /// User side: decrypts one score field with key z.
  [[nodiscard]] double decrypt_score(BytesView encrypted_score) const;

  /// User side: decrypts and rank-orders a result set (descending score,
  /// ties by file id).
  [[nodiscard]] std::vector<RankedHit> rank(
      const std::vector<BasicSearchEntry>& entries) const;

  /// The shared keyword-normalization pipeline.
  [[nodiscard]] const ir::Analyzer& analyzer() const { return trapdoor_gen_.analyzer(); }

  /// The owner's key (owner-side callers only).
  [[nodiscard]] const MasterKey& master_key() const { return key_; }

 private:
  [[nodiscard]] Bytes score_key() const;

  MasterKey key_;
  TrapdoorGenerator trapdoor_gen_;
};

}  // namespace rsse::sse
