#include "sse/trapdoor_gen.h"

#include "crypto/prf.h"
#include "util/errors.h"

namespace rsse::sse {

TrapdoorGenerator::TrapdoorGenerator(Bytes x, Bytes y, std::size_t p_bits,
                                     ir::AnalyzerOptions analyzer_options)
    : x_(std::move(x)), y_(std::move(y)), p_bits_(p_bits), analyzer_(analyzer_options) {
  detail::require(!x_.empty() && !y_.empty(), "TrapdoorGenerator: empty key component");
}

Bytes TrapdoorGenerator::label_for(std::string_view normalized) const {
  return crypto::KeyedHash(x_, p_bits_).hash(normalized);
}

Bytes TrapdoorGenerator::list_key_for(std::string_view normalized) const {
  return crypto::Prf(y_).derive(normalized);
}

Trapdoor TrapdoorGenerator::generate(std::string_view keyword) const {
  const std::string normalized = analyzer_.normalize_keyword(keyword);
  detail::require(!normalized.empty(),
                  "TrapdoorGenerator: keyword vanishes under normalization");
  return Trapdoor{label_for(normalized), list_key_for(normalized)};
}

}  // namespace rsse::sse
