// Shared wire-level types of both schemes: the trapdoor and the posting
// entry layout.
//
// Posting entry plaintext (Fig. 3 step 3): 0^l || id(F_ij) || score-field,
// where the 0^l prefix marks a valid (non-padding) entry and the
// score-field is scheme specific — E_z(S_ij) for the Basic Scheme, the
// one-to-many order-preserved value OPM_{f_z(w)}(S_ij) for RSSE. The
// whole entry is encrypted under the per-keyword key f_y(w), so rows are
// indistinguishable from their random padding until the matching trapdoor
// arrives.
#pragma once

#include <cstdint>

#include "ir/document.h"
#include "util/bytes.h"

namespace rsse::sse {

using ir::FileId;

/// The paper's l parameter in bytes: width of the all-zero validity flag.
inline constexpr std::size_t kFlagSize = 8;

/// Width of the file identifier field.
inline constexpr std::size_t kIdSize = 8;

/// T_w = (pi_x(w), f_y(w)): the search request for one keyword.
struct Trapdoor {
  Bytes label;     ///< pi_x(w): locates the index row.
  Bytes list_key;  ///< f_y(w): decrypts the row's entries.

  /// Wire encoding (user -> server).
  [[nodiscard]] Bytes serialize() const;

  /// Inverse of serialize(). Throws ParseError on malformed input.
  static Trapdoor deserialize(BytesView blob);

  friend bool operator==(const Trapdoor&, const Trapdoor&) = default;
};

/// One decrypted, valid posting entry: what the server (RSSE) or the user
/// (Basic Scheme) sees after applying f_y(w).
struct PostingEntry {
  FileId file{};
  Bytes score_field;  ///< scheme-specific encrypted score bytes

  friend bool operator==(const PostingEntry&, const PostingEntry&) = default;
};

}  // namespace rsse::sse
