#include "sse/dynamics.h"

#include <unordered_map>

#include "ir/scoring.h"
#include "sse/entry_codec.h"
#include "util/errors.h"

namespace rsse::sse {

IndexUpdater::IndexUpdater(const RsseScheme& scheme, opse::ScoreQuantizer quantizer)
    : scheme_(scheme), quantizer_(std::move(quantizer)) {}

namespace {

// Term frequencies and |F_d| of one document under the scheme's analyzer.
std::unordered_map<std::string, std::uint32_t> term_frequencies(
    const ir::Analyzer& analyzer, const ir::Document& doc, std::uint32_t& doc_length) {
  const std::vector<std::string> terms = analyzer.analyze(doc.text);
  doc_length = static_cast<std::uint32_t>(terms.size());
  std::unordered_map<std::string, std::uint32_t> tf;
  for (const std::string& t : terms) ++tf[t];
  return tf;
}

}  // namespace

IndexUpdater::UpdateStats IndexUpdater::add_document(SecureIndex& index,
                                                     const ir::Document& doc) const {
  std::uint32_t doc_length = 0;
  const auto tf = term_frequencies(scheme_.analyzer(), doc, doc_length);
  detail::require(doc_length > 0, "IndexUpdater::add_document: document has no terms");

  UpdateStats stats;
  for (const auto& [term, count] : tf) {
    ++stats.keywords_touched;
    const double score = ir::score_single_keyword(count, doc_length);
    const Bytes new_entry = scheme_.make_entry(term, doc.id, score, quantizer_);
    const Bytes label = scheme_.row_label(term);
    const std::vector<Bytes>* row = index.row(label);
    if (!row) {
      index.add_row(label, {new_entry});
      ++stats.new_rows;
      ++stats.entries_added;
      continue;
    }
    // Overwrite the first padding slot; grow the row when none is left.
    const Bytes list_key = scheme_.row_key(term);
    std::vector<Bytes> updated = *row;
    bool placed = false;
    for (Bytes& slot : updated) {
      if (!decrypt_entry(list_key, slot, kRsseScoreFieldSize)) {
        slot = new_entry;
        placed = true;
        ++stats.padding_slots_consumed;
        break;
      }
    }
    if (!placed) {
      updated.push_back(new_entry);
      ++stats.rows_grown;
    }
    ++stats.entries_added;
    index.replace_row(label, std::move(updated));
  }
  return stats;
}

IndexUpdater::UpdateStats IndexUpdater::add_documents(
    SecureIndex& index, const std::vector<ir::Document>& docs) const {
  // Group the new entries by keyword so each row is rewritten once.
  std::unordered_map<std::string, std::vector<Bytes>> new_entries;
  UpdateStats stats;
  for (const ir::Document& doc : docs) {
    std::uint32_t doc_length = 0;
    const auto tf = term_frequencies(scheme_.analyzer(), doc, doc_length);
    detail::require(doc_length > 0, "IndexUpdater::add_documents: empty document");
    for (const auto& [term, count] : tf) {
      const double score = ir::score_single_keyword(count, doc_length);
      new_entries[term].push_back(scheme_.make_entry(term, doc.id, score, quantizer_));
      ++stats.entries_added;
    }
  }
  for (auto& [term, entries] : new_entries) {
    ++stats.keywords_touched;
    const Bytes label = scheme_.row_label(term);
    const std::vector<Bytes>* row = index.row(label);
    if (!row) {
      index.add_row(label, std::move(entries));
      ++stats.new_rows;
      continue;
    }
    const Bytes list_key = scheme_.row_key(term);
    std::vector<Bytes> updated = *row;
    std::size_t next = 0;
    // One scan of the row fills as many padding slots as the batch needs.
    for (Bytes& slot : updated) {
      if (next >= entries.size()) break;
      if (!decrypt_entry(list_key, slot, kRsseScoreFieldSize)) {
        slot = std::move(entries[next++]);
        ++stats.padding_slots_consumed;
      }
    }
    if (next < entries.size()) {
      ++stats.rows_grown;
      for (; next < entries.size(); ++next) updated.push_back(std::move(entries[next]));
    }
    index.replace_row(label, std::move(updated));
  }
  return stats;
}

IndexUpdater::UpdateStats IndexUpdater::remove_document(SecureIndex& index,
                                                        const ir::Document& doc) const {
  std::uint32_t doc_length = 0;
  const auto tf = term_frequencies(scheme_.analyzer(), doc, doc_length);

  UpdateStats stats;
  for (const auto& [term, count] : tf) {
    const Bytes label = scheme_.row_label(term);
    const std::vector<Bytes>* row = index.row(label);
    if (!row) continue;
    ++stats.keywords_touched;
    const Bytes list_key = scheme_.row_key(term);
    std::vector<Bytes> updated = *row;
    for (Bytes& slot : updated) {
      const auto entry = decrypt_entry(list_key, slot, kRsseScoreFieldSize);
      if (entry && entry->file == doc.id) {
        slot = random_padding_entry(kRsseScoreFieldSize);
        ++stats.entries_removed;
        break;  // one entry per (keyword, file)
      }
    }
    index.replace_row(label, std::move(updated));
  }
  return stats;
}

IndexUpdater::UpdateStats IndexUpdater::update_document(SecureIndex& index,
                                                        const ir::Document& old_doc,
                                                        const ir::Document& new_doc) const {
  detail::require(old_doc.id == new_doc.id,
                  "IndexUpdater::update_document: id mismatch");
  const UpdateStats removed = remove_document(index, old_doc);
  const UpdateStats added = add_document(index, new_doc);
  UpdateStats total;
  total.keywords_touched = removed.keywords_touched + added.keywords_touched;
  total.new_rows = added.new_rows;
  total.entries_added = added.entries_added;
  total.padding_slots_consumed = added.padding_slots_consumed;
  total.rows_grown = added.rows_grown;
  total.entries_removed = removed.entries_removed;
  return total;
}

}  // namespace rsse::sse
