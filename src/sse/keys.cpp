#include "sse/keys.h"

#include "crypto/csprng.h"
#include "util/errors.h"

namespace rsse::sse {

void SystemParams::validate() const {
  detail::require(key_bits >= 128 && key_bits % 8 == 0,
                  "SystemParams: key_bits must be a byte multiple >= 128");
  detail::require(p_bits > 0 && p_bits % 8 == 0 && p_bits <= 256,
                  "SystemParams: p_bits must be a byte multiple in (0,256]");
  detail::require(score_levels >= 2, "SystemParams: need at least 2 score levels");
  detail::require(range_bits >= 1 && range_bits < 62,
                  "SystemParams: range_bits must be in [1,62)");
  detail::require(score_levels <= (1ull << range_bits),
                  "SystemParams: range must be at least as large as the domain");
}

Bytes MasterKey::serialize() const {
  Bytes out;
  append_lp(out, x);
  append_lp(out, y);
  append_lp(out, z);
  append_u64(out, params.key_bits);
  append_u64(out, params.p_bits);
  append_u64(out, params.score_levels);
  append_u64(out, params.range_bits);
  return out;
}

MasterKey MasterKey::deserialize(BytesView blob) {
  ByteReader reader(blob);
  MasterKey key;
  key.x = reader.read_lp();
  key.y = reader.read_lp();
  key.z = reader.read_lp();
  key.params.key_bits = reader.read_u64();
  key.params.p_bits = reader.read_u64();
  key.params.score_levels = reader.read_u64();
  key.params.range_bits = reader.read_u64();
  if (!reader.exhausted()) throw ParseError("MasterKey: trailing bytes");
  try {
    key.params.validate();
  } catch (const InvalidArgument& e) {
    throw ParseError(std::string("MasterKey: bad params: ") + e.what());
  }
  return key;
}

MasterKey keygen(const SystemParams& params) {
  params.validate();
  MasterKey key;
  key.params = params;
  const std::size_t key_bytes = params.key_bits / 8;
  key.x = crypto::random_bytes(key_bytes);
  key.y = crypto::random_bytes(key_bytes);
  key.z = crypto::random_bytes(key_bytes);
  return key;
}

}  // namespace rsse::sse
