// Master key material: K = {x, y, z, ...} from the paper's KeyGen.
//
//   x — keys pi, producing index row labels / trapdoor component 1;
//   y — keys f for the per-keyword posting-list entry key f_y(w);
//   z — basic scheme: the user-side score-encryption key E_z(.);
//       RSSE: keys f_z(w), the per-keyword one-to-many mapping key.
//
// The data owner runs keygen() once per collection; authorized users
// receive the trapdoor-relevant parts through cloud/auth.h.
#pragma once

#include "crypto/prf.h"
#include "sse/params.h"
#include "util/bytes.h"

namespace rsse::sse {

/// The owner's secret key plus public system parameters.
struct MasterKey {
  Bytes x;  ///< row-label key (k bits)
  Bytes y;  ///< posting-entry key root (k bits)
  Bytes z;  ///< score key root (k bits)
  SystemParams params;

  /// Serializes key material and parameters (owner-side persistence).
  [[nodiscard]] Bytes serialize() const;

  /// Inverse of serialize(). Throws ParseError on malformed input.
  static MasterKey deserialize(BytesView blob);

  friend bool operator==(const MasterKey&, const MasterKey&) = default;
};

/// KeyGen(1^k, ...): draws x, y, z from the CSPRNG.
MasterKey keygen(const SystemParams& params = {});

}  // namespace rsse::sse
