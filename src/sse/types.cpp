#include "sse/types.h"

#include "util/errors.h"

namespace rsse::sse {

Bytes Trapdoor::serialize() const {
  Bytes out;
  append_lp(out, label);
  append_lp(out, list_key);
  return out;
}

Trapdoor Trapdoor::deserialize(BytesView blob) {
  ByteReader reader(blob);
  Trapdoor t;
  t.label = reader.read_lp();
  t.list_key = reader.read_lp();
  if (!reader.exhausted()) throw ParseError("Trapdoor: trailing bytes");
  return t;
}

}  // namespace rsse::sse
