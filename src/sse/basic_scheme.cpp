#include "sse/basic_scheme.h"

#include <algorithm>
#include <bit>

#include "crypto/aes_ctr.h"
#include "crypto/prf.h"
#include "ir/scoring.h"
#include "sse/entry_codec.h"
#include "util/errors.h"
#include "util/stopwatch.h"

namespace rsse::sse {

BasicScheme::BasicScheme(MasterKey key, ir::AnalyzerOptions analyzer_options)
    : key_(std::move(key)),
      trapdoor_gen_(key_.x, key_.y, key_.params.p_bits, analyzer_options) {
  key_.params.validate();
}

Bytes BasicScheme::score_key() const { return crypto::Prf(key_.z).derive("score-key"); }

SecureIndex BasicScheme::build_index(const ir::Corpus& corpus, BuildStats* stats) const {
  Stopwatch watch;
  const ir::InvertedIndex inverted = ir::InvertedIndex::build(corpus, analyzer());
  const double raw_seconds = watch.elapsed_seconds();

  watch.reset();
  const std::uint64_t pad_width = inverted.max_posting_length();
  const Bytes z_key = score_key();
  SecureIndex index;
  std::uint64_t num_postings = 0;
  for (const std::string& term : inverted.terms()) {
    const std::vector<ir::Posting>* list = inverted.postings(term);
    const Bytes list_key = trapdoor_gen_.list_key_for(term);
    std::vector<Bytes> entries;
    entries.reserve(pad_width);
    for (const ir::Posting& posting : *list) {
      const double score =
          ir::score_single_keyword(posting.tf, inverted.doc_length(posting.file));
      Bytes score_plain;
      append_u64(score_plain, std::bit_cast<std::uint64_t>(score));
      const Bytes score_field = crypto::aes_ctr_encrypt(z_key, score_plain);
      const Bytes plain = encode_entry_plaintext(posting.file, score_field);
      entries.push_back(encrypt_entry(list_key, plain));
      ++num_postings;
    }
    while (entries.size() < pad_width)
      entries.push_back(random_padding_entry(kBasicScoreFieldSize));
    index.add_row(trapdoor_gen_.label_for(term), std::move(entries));
  }
  if (stats) {
    stats->raw_index_seconds = raw_seconds;
    stats->encrypt_seconds = watch.elapsed_seconds();
    stats->pad_width = pad_width;
    stats->num_postings = num_postings;
  }
  return index;
}

Trapdoor BasicScheme::trapdoor(std::string_view keyword) const {
  return trapdoor_gen_.generate(keyword);
}

std::vector<BasicSearchEntry> BasicScheme::search(const SecureIndex& index,
                                                  const Trapdoor& trapdoor) {
  std::vector<BasicSearchEntry> out;
  const std::vector<Bytes>* row = index.row(trapdoor.label);
  if (!row) return out;
  for (const Bytes& ciphertext : *row) {
    const auto entry = decrypt_entry(trapdoor.list_key, ciphertext, kBasicScoreFieldSize);
    if (entry) out.push_back(BasicSearchEntry{entry->file, entry->score_field});
  }
  return out;
}

double decrypt_basic_score(BytesView score_key, BytesView encrypted_score) {
  const Bytes plain = crypto::aes_ctr_decrypt(score_key, encrypted_score);
  if (plain.size() != 8) throw ParseError("decrypt_basic_score: bad payload");
  ByteReader reader(plain);
  return std::bit_cast<double>(reader.read_u64());
}

double BasicScheme::decrypt_score(BytesView encrypted_score) const {
  return decrypt_basic_score(score_key(), encrypted_score);
}

std::vector<RankedHit> BasicScheme::rank(const std::vector<BasicSearchEntry>& entries) const {
  std::vector<RankedHit> hits;
  hits.reserve(entries.size());
  for (const BasicSearchEntry& e : entries)
    hits.push_back(RankedHit{e.file, decrypt_score(e.encrypted_score)});
  std::sort(hits.begin(), hits.end(), [](const RankedHit& a, const RankedHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return ir::value(a.file) < ir::value(b.file);
  });
  return hits;
}

}  // namespace rsse::sse
