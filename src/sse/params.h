// System parameters of the RSSE system: the paper's KeyGen inputs
// (1^k, 1^l, 1^e, 1^p, |D|, |R|) in concrete form.
#pragma once

#include <cstdint>

namespace rsse::sse {

/// Tunable security/geometry parameters, with the paper's experimental
/// defaults: 128 score levels (Fig. 4) and |R| = 2^46 (Sec. IV-C).
struct SystemParams {
  std::size_t key_bits = 256;     ///< k: master key component size.
  std::size_t p_bits = 160;       ///< p: output bits of pi (row labels).
  std::uint64_t score_levels = 128;  ///< |D| = M: quantized score domain.
  std::uint64_t range_bits = 46;  ///< log2 |R|: OPM ciphertext range.

  /// Throws InvalidArgument unless the parameters are internally
  /// consistent (key size positive, p a byte multiple, M >= 2,
  /// M <= 2^range_bits, range_bits < 62).
  void validate() const;

  friend bool operator==(const SystemParams&, const SystemParams&) = default;
};

}  // namespace rsse::sse
