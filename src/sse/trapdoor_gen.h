// TrapdoorGen as a standalone component.
//
// An authorized user holds only the trapdoor keys (x, y) — never the
// score key root z — so trapdoor generation must not require the full
// MasterKey. Both schemes and the cloud DataUser delegate here, which
// also guarantees the user-side keyword normalization is byte-identical
// to the owner's BuildIndex normalization.
#pragma once

#include <string_view>

#include "ir/analyzer.h"
#include "sse/types.h"

namespace rsse::sse {

/// Generates T_w = (pi_x(w), f_y(w)) for normalized keywords.
class TrapdoorGenerator {
 public:
  /// `x`, `y` are the trapdoor key components; `p_bits` the label width.
  TrapdoorGenerator(Bytes x, Bytes y, std::size_t p_bits,
                    ir::AnalyzerOptions analyzer_options = {});

  /// TrapdoorGen(w). Throws InvalidArgument when the keyword normalizes
  /// to nothing (stop word / non-token).
  [[nodiscard]] Trapdoor generate(std::string_view keyword) const;

  /// Label/key for an already-normalized keyword (scheme internals).
  [[nodiscard]] Bytes label_for(std::string_view normalized) const;
  [[nodiscard]] Bytes list_key_for(std::string_view normalized) const;

  /// The shared keyword-normalization pipeline.
  [[nodiscard]] const ir::Analyzer& analyzer() const { return analyzer_; }

 private:
  Bytes x_;
  Bytes y_;
  std::size_t p_bits_;
  ir::Analyzer analyzer_;
};

}  // namespace rsse::sse
