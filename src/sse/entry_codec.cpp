#include "sse/entry_codec.h"

#include <algorithm>

#include "crypto/aes_ctr.h"
#include "crypto/csprng.h"
#include "obs/cost.h"
#include "util/errors.h"

namespace rsse::sse {

Bytes encode_entry_plaintext(FileId id, BytesView score_field) {
  Bytes out;
  out.reserve(kFlagSize + kIdSize + score_field.size());
  out.assign(kFlagSize, 0x00);  // the 0^l validity flag
  append_u64(out, ir::value(id));
  append(out, score_field);
  return out;
}

Bytes encrypt_entry(BytesView list_key, BytesView plaintext) {
  Bytes ciphertext = crypto::aes_ctr_encrypt(list_key, plaintext);
  obs::cost::add(obs::cost::entries_encrypted);
  obs::cost::add(obs::cost::bytes_encrypted, ciphertext.size());
  return ciphertext;
}

std::size_t encrypted_entry_size(std::size_t score_field_size) {
  return crypto::kAesIvSize + kFlagSize + kIdSize + score_field_size;
}

Bytes random_padding_entry(std::size_t score_field_size) {
  return crypto::random_bytes(encrypted_entry_size(score_field_size));
}

std::optional<PostingEntry> decrypt_entry(BytesView list_key, BytesView ciphertext,
                                          std::size_t score_field_size) {
  if (ciphertext.size() != encrypted_entry_size(score_field_size))
    throw ParseError("decrypt_entry: entry size mismatch");
  const Bytes plain = crypto::aes_ctr_decrypt(list_key, ciphertext);
  // Padding check: a random blob decrypts to a random flag, which fails
  // the all-zero test except with probability 2^-64.
  const bool valid = std::all_of(plain.begin(), plain.begin() + kFlagSize,
                                 [](std::uint8_t b) { return b == 0; });
  if (!valid) return std::nullopt;
  ByteReader reader(BytesView(plain).subspan(kFlagSize));
  PostingEntry entry;
  entry.file = ir::file_id(reader.read_u64());
  entry.score_field = reader.read(score_field_size);
  return entry;
}

}  // namespace rsse::sse
