// The encrypted searchable index I the owner outsources to the cloud.
//
// Structurally a map from opaque row labels pi_x(w_i) to lists of equal-
// size encrypted entries (Fig. 3's output). The server can look up a row
// only when handed the matching trapdoor label; everything else is opaque
// ciphertext. Row lookup is O(log m) over a sorted label array — the
// "tree-based data structure" the paper's search-efficiency discussion
// assumes (Sec. VI-C2).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/bytes.h"

namespace rsse::sse {

/// The outsourced encrypted index.
class SecureIndex {
 public:
  /// Adds one posting row. Labels must be unique; entries must share one
  /// size. Throws InvalidArgument on duplicates or ragged entries.
  void add_row(Bytes label, std::vector<Bytes> entries);

  /// The entries of a row; nullptr when no such label exists.
  [[nodiscard]] const std::vector<Bytes>* row(BytesView label) const;

  /// Number of rows m.
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Total serialized payload size in bytes (labels + entries), the index
  /// storage cost reported in Table I.
  [[nodiscard]] std::uint64_t byte_size() const;

  /// Size in bytes of one row (its label plus all entries); 0 when absent.
  [[nodiscard]] std::uint64_t row_byte_size(BytesView label) const;

  /// Wire format for outsourcing.
  [[nodiscard]] Bytes serialize() const;

  /// Inverse of serialize(). Throws ParseError on malformed input.
  static SecureIndex deserialize(BytesView blob);

  /// All labels in sorted order (what the curious server sees).
  [[nodiscard]] std::vector<Bytes> labels() const;

  /// Replaces a row's entries wholesale (owner-driven update path used by
  /// sse/dynamics). Throws InvalidArgument when the label is unknown.
  void replace_row(BytesView label, std::vector<Bytes> entries);

  friend bool operator==(const SecureIndex&, const SecureIndex&) = default;

 private:
  static void check_entries(const std::vector<Bytes>& entries);

  // std::map keyed on raw bytes: ordered so lookup is the paper's
  // O(log m) tree search and serialization is canonical.
  std::map<Bytes, std::vector<Bytes>> rows_;
};

}  // namespace rsse::sse
