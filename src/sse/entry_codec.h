// Encode/encrypt posting entries and their padding (Fig. 3 step 3).
//
// All entries of one row share the same plaintext width (flag + id +
// score-field), so after AES-CTR encryption genuine entries and random
// padding are the same length and the row leaks only its padded size.
#pragma once

#include <optional>
#include <vector>

#include "sse/types.h"
#include "util/bytes.h"

namespace rsse::sse {

/// Builds the plaintext 0^l || id || score_field.
Bytes encode_entry_plaintext(FileId id, BytesView score_field);

/// Encrypts an encoded entry under the row key f_y(w) (AES-256-CTR with a
/// fresh random IV). `list_key` must be 32 bytes.
Bytes encrypt_entry(BytesView list_key, BytesView plaintext);

/// Random bytes of exactly the size encrypt_entry produces for a
/// `score_field_size`-byte score field — the Fig. 3 padding rows.
Bytes random_padding_entry(std::size_t score_field_size);

/// Ciphertext size of an entry whose score field is `score_field_size`
/// bytes (IV + flag + id + score field).
std::size_t encrypted_entry_size(std::size_t score_field_size);

/// Decrypts one entry and validates the 0^l flag. Returns nullopt for
/// padding (flag mismatch) and throws ParseError when the ciphertext
/// length does not match `score_field_size`.
std::optional<PostingEntry> decrypt_entry(BytesView list_key, BytesView ciphertext,
                                          std::size_t score_field_size);

}  // namespace rsse::sse
