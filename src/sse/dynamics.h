// Owner-driven index updates — the score-dynamics property of Sec. VII.
//
// Because the one-to-many mapping sends a given score level to the same
// bucket whenever the key is unchanged (the plaintext-to-bucket descent
// depends only on (key, level)), adding or removing files touches ONLY
// the posting entries of the new/removed file: every previously mapped
// value stays valid. The baselines (bucket_opm, sample_opm) lack this
// property — their transforms are distribution-fitted, so a drifted
// distribution forces a full posting-list rebuild. bench_ablation_dynamics
// quantifies the difference.
//
// Update mechanics: the owner holds the master key, so it can decrypt a
// row, locate padding slots (entries whose 0^l flag fails), and overwrite
// one in place; removed entries are replaced with fresh random padding.
// Row lengths therefore stay constant until a row runs out of slack, at
// which point the row must grow (a deliberate, observable leak the
// documentation calls out).
#pragma once

#include "ir/document.h"
#include "opse/quantizer.h"
#include "sse/rsse_scheme.h"
#include "sse/secure_index.h"

namespace rsse::sse {

/// Applies document-level updates to an outsourced RSSE index.
class IndexUpdater {
 public:
  /// Binds to the owner's scheme and the quantizer fixed at build time
  /// (updates must reuse the original score encoding).
  IndexUpdater(const RsseScheme& scheme, opse::ScoreQuantizer quantizer);

  /// What one update did (asserted on by tests and reported by benches).
  struct UpdateStats {
    std::size_t keywords_touched = 0;
    std::size_t new_rows = 0;
    std::size_t entries_added = 0;
    std::size_t padding_slots_consumed = 0;
    std::size_t rows_grown = 0;  ///< rows that ran out of padding slack
    std::size_t entries_removed = 0;
  };

  /// Indexes a new document into `index`. The document id must not
  /// already be indexed (the owner tracks its own collection).
  UpdateStats add_document(SecureIndex& index, const ir::Document& doc) const;

  /// Batch add: indexes every document, touching each affected row ONCE
  /// (one decrypt-scan per row per batch instead of per document). Same
  /// result as repeated add_document; much cheaper for bulk ingest.
  UpdateStats add_documents(SecureIndex& index,
                            const std::vector<ir::Document>& docs) const;

  /// De-indexes a document: its entries become fresh random padding.
  UpdateStats remove_document(SecureIndex& index, const ir::Document& doc) const;

  /// Replaces a document's content: remove the old version, add the new.
  /// `old_doc` and `new_doc` must share the same id. Stats are the sum of
  /// both halves.
  UpdateStats update_document(SecureIndex& index, const ir::Document& old_doc,
                              const ir::Document& new_doc) const;

 private:
  const RsseScheme& scheme_;
  opse::ScoreQuantizer quantizer_;
};

}  // namespace rsse::sse
