#include "sse/secure_index.h"

#include "util/errors.h"

namespace rsse::sse {

void SecureIndex::check_entries(const std::vector<Bytes>& entries) {
  if (entries.empty()) return;
  const std::size_t size = entries.front().size();
  for (const Bytes& e : entries)
    detail::require(e.size() == size, "SecureIndex: ragged entry sizes in one row");
}

void SecureIndex::add_row(Bytes label, std::vector<Bytes> entries) {
  detail::require(!label.empty(), "SecureIndex::add_row: empty label");
  check_entries(entries);
  const auto [it, inserted] = rows_.emplace(std::move(label), std::move(entries));
  detail::require(inserted, "SecureIndex::add_row: duplicate label");
}

const std::vector<Bytes>* SecureIndex::row(BytesView label) const {
  const auto it = rows_.find(Bytes(label.begin(), label.end()));
  return it == rows_.end() ? nullptr : &it->second;
}

std::uint64_t SecureIndex::byte_size() const {
  std::uint64_t total = 0;
  for (const auto& [label, entries] : rows_) {
    total += label.size();
    for (const Bytes& e : entries) total += e.size();
  }
  return total;
}

std::uint64_t SecureIndex::row_byte_size(BytesView label) const {
  const std::vector<Bytes>* entries = row(label);
  if (!entries) return 0;
  std::uint64_t total = label.size();
  for (const Bytes& e : *entries) total += e.size();
  return total;
}

Bytes SecureIndex::serialize() const {
  Bytes out;
  append_u64(out, rows_.size());
  for (const auto& [label, entries] : rows_) {
    append_lp(out, label);
    append_u64(out, entries.size());
    for (const Bytes& e : entries) append_lp(out, e);
  }
  return out;
}

SecureIndex SecureIndex::deserialize(BytesView blob) {
  ByteReader reader(blob);
  SecureIndex index;
  // Every row needs at least a label LP header (4) + entry count (8).
  const std::uint64_t num_rows = reader.read_count(12);
  for (std::uint64_t i = 0; i < num_rows; ++i) {
    Bytes label = reader.read_lp();
    // Every entry needs at least its own LP header.
    const std::uint64_t num_entries = reader.read_count(4);
    std::vector<Bytes> entries;
    entries.reserve(num_entries);
    for (std::uint64_t j = 0; j < num_entries; ++j) entries.push_back(reader.read_lp());
    try {
      index.add_row(std::move(label), std::move(entries));
    } catch (const InvalidArgument& e) {
      throw ParseError(std::string("SecureIndex: bad row: ") + e.what());
    }
  }
  if (!reader.exhausted()) throw ParseError("SecureIndex: trailing bytes");
  return index;
}

std::vector<Bytes> SecureIndex::labels() const {
  std::vector<Bytes> out;
  out.reserve(rows_.size());
  for (const auto& [label, entries] : rows_) out.push_back(label);
  return out;
}

void SecureIndex::replace_row(BytesView label, std::vector<Bytes> entries) {
  const auto it = rows_.find(Bytes(label.begin(), label.end()));
  detail::require(it != rows_.end(), "SecureIndex::replace_row: unknown label");
  check_entries(entries);
  it->second = std::move(entries);
}

}  // namespace rsse::sse
