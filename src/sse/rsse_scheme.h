// The efficient RSSE scheme (Sec. IV): relevance scores are quantized
// into {1..M} and encrypted with the per-keyword one-to-many order-
// preserving mapping OPM_{f_z(w)}, so the *server* can rank matching
// entries and return only the top-k — one round trip, k files of
// bandwidth, at the cost of leaking the relevance order (the paper's
// "as-strong-as-possible" trade-off).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "ir/analyzer.h"
#include "ir/document.h"
#include "ir/inverted_index.h"
#include "opse/opm.h"
#include "opse/quantizer.h"
#include "sse/keys.h"
#include "sse/secure_index.h"
#include "sse/trapdoor_gen.h"
#include "sse/types.h"

namespace rsse::sse {

/// RSSE score field: the OPM value as 8 little-endian bytes.
inline constexpr std::size_t kRsseScoreFieldSize = 8;

/// Row-padding policy. Fig. 3 pads every posting list to nu = max_i N_i,
/// fully hiding list lengths at maximum storage cost; the alternatives
/// trade storage for bounded leakage (bench_ablation_padding quantifies
/// the trade-off).
enum class PaddingMode {
  kFullNu,      ///< every row padded to nu (the paper's choice)
  kPowerOfTwo,  ///< each row padded to the next power of two >= N_i
  kNone,        ///< no padding: row length = N_i (maximum leakage)
};

/// Leakage audit of one built index, computed owner-side where the
/// plaintext levels and OPM values are still visible (the server never
/// could: it sees only ciphertext). Persisted with the deployment so a
/// serving process can export the paper's security claims as live
/// gauges, and printed by `rsse audit`:
///   * opm_ciphertext_duplicates — Fig. 6's one-to-many guarantee: with
///     |R| = 2^46 the per-row mappings must be collision-free (0).
///   * widest-row duplicate maxima — Ablation C's min-entropy view of
///     what an adversary's best single guess achieves, before (score
///     level) and after (OPM value) the mapping.
///   * stored_width_entropy_bits — what row widths reveal under the
///     padding policy (0 under full-nu padding).
/// Aggregates only; no keyword, score or ciphertext material is stored.
struct LeakageAudit {
  std::uint64_t num_rows = 0;
  std::uint64_t genuine_postings = 0;        ///< across all rows
  /// Sum over rows of (postings - distinct OPM values).
  std::uint64_t opm_ciphertext_duplicates = 0;
  std::uint64_t widest_row_postings = 0;
  /// Largest multiplicity of one quantized score level in the widest row.
  std::uint64_t widest_row_level_max_duplicates = 0;
  /// Largest multiplicity of one OPM value in the widest row (1 = unique).
  std::uint64_t widest_row_opm_max_duplicates = 0;
  /// Shannon entropy (bits) of the stored row-width distribution.
  double stored_width_entropy_bits = 0.0;
  /// Padding policy the index was built under: 0 = unknown (an audit
  /// persisted before this field existed), otherwise 1 + PaddingMode.
  /// Recorded so `rsse audit` and the attack bench can tie a measured
  /// recovery rate back to the policy that produced the widths.
  std::uint64_t padding_mode = 0;

  /// The recorded PaddingMode, or nullopt for a pre-v2 audit.
  [[nodiscard]] std::optional<PaddingMode> padding() const {
    if (padding_mode == 0 || padding_mode > 3) return std::nullopt;
    return static_cast<PaddingMode>(padding_mode - 1);
  }

  /// Human-readable padding policy ("full_nu", "pow2", "none", "unknown").
  [[nodiscard]] const char* padding_name() const;

  /// -log2(max level multiplicity / postings) for the widest row: the
  /// plaintext-side min-entropy of Ablation C. 0 when empty.
  [[nodiscard]] double level_min_entropy_bits() const;

  /// Same for OPM values; log2(postings) when the mapping is injective.
  [[nodiscard]] double opm_min_entropy_bits() const;

  [[nodiscard]] Bytes serialize() const;
  static LeakageAudit deserialize(BytesView bytes);

  friend bool operator==(const LeakageAudit&, const LeakageAudit&) = default;
};

/// One hit as the server sees (and ranks) it.
struct RankedSearchEntry {
  FileId file{};
  std::uint64_t opm_score = 0;  ///< order-preserved encrypted score

  friend bool operator==(const RankedSearchEntry&, const RankedSearchEntry&) = default;
};

/// The RSSE scheme's owner/user-side algorithms plus the server's static
/// ranked search.
class RsseScheme {
 public:
  /// Binds the scheme to the owner's master key and analyzer pipeline.
  explicit RsseScheme(MasterKey key, ir::AnalyzerOptions analyzer_options = {});

  /// Timing/shape breakdown of build_index (Table I separates the raw
  /// index cost from the dominant OPM cost). With a multi-threaded build,
  /// opm_seconds and encrypt_seconds are aggregate CPU seconds across
  /// workers; wall_seconds is the elapsed time of the whole encrypt phase.
  struct BuildStats {
    double raw_index_seconds = 0.0;   ///< plaintext inverted-index scan
    double opm_seconds = 0.0;         ///< one-to-many score mappings (CPU)
    double encrypt_seconds = 0.0;     ///< entry encryption + padding (CPU)
    double wall_seconds = 0.0;        ///< elapsed encrypt-phase wall time
    std::uint64_t pad_width = 0;      ///< nu
    std::uint64_t num_postings = 0;   ///< genuine entries
    std::uint64_t num_keywords = 0;   ///< m = |W|
  };

  /// Build-time options.
  struct BuildOptions {
    std::size_t num_threads = 1;  ///< fan per-keyword rows over a pool
    PaddingMode padding = PaddingMode::kFullNu;
  };

  /// Everything build_index hands back: the outsourceable index plus the
  /// owner-retained score quantizer (needed for future updates).
  struct BuildResult {
    SecureIndex index;
    opse::ScoreQuantizer quantizer;
    BuildStats stats;
    LeakageAudit audit;
  };

  /// BuildIndex(K, C) with OPM-encrypted scores (Sec. IV Setup step 2).
  [[nodiscard]] BuildResult build_index(const ir::Corpus& corpus,
                                        const BuildOptions& options) const;

  /// Single-threaded convenience overload.
  [[nodiscard]] BuildResult build_index(const ir::Corpus& corpus) const {
    return build_index(corpus, BuildOptions{});
  }

  /// Variant reusing an externally fixed quantizer (the dynamics path:
  /// updates must quantize with the original encoding).
  [[nodiscard]] BuildResult build_index(const ir::Corpus& corpus,
                                        const opse::ScoreQuantizer& quantizer,
                                        const BuildOptions& options) const;

  /// Single-threaded convenience overload with a fixed quantizer.
  [[nodiscard]] BuildResult build_index(const ir::Corpus& corpus,
                                        const opse::ScoreQuantizer& quantizer) const {
    return build_index(corpus, quantizer, BuildOptions{});
  }

  /// TrapdoorGen(w); identical to the Basic Scheme's.
  [[nodiscard]] Trapdoor trapdoor(std::string_view keyword) const;

  /// SearchIndex(I, T_w) run by the server: decrypts the row, ranks by
  /// the order-preserved score (descending), and keeps the top-k when
  /// `top_k` is non-zero — the paper's optional k (Sec. II-A).
  static std::vector<RankedSearchEntry> search(const SecureIndex& index,
                                               const Trapdoor& trapdoor,
                                               std::size_t top_k = 0);

  // ----- owner-side helpers (also used by dynamics and tests) -----

  /// The per-keyword one-to-many mapper OPM_{f_z(w)}.
  [[nodiscard]] opse::OneToManyOpm opm_for_keyword(std::string_view normalized) const;

  /// pi_x(w): the index row label.
  [[nodiscard]] Bytes row_label(std::string_view normalized) const;

  /// f_y(w): the row entry key.
  [[nodiscard]] Bytes row_key(std::string_view normalized) const;

  /// Builds one encrypted posting entry (used by the update path).
  [[nodiscard]] Bytes make_entry(std::string_view normalized, FileId id, double score,
                                 const opse::ScoreQuantizer& quantizer) const;

  /// The shared keyword-normalization pipeline.
  [[nodiscard]] const ir::Analyzer& analyzer() const { return trapdoor_gen_.analyzer(); }

  /// The owner's key (owner-side callers only).
  [[nodiscard]] const MasterKey& master_key() const { return key_; }

  /// The OPM geometry ({1..M} -> {1..2^range_bits}) in effect.
  [[nodiscard]] opse::OpeParams ope_params() const;

 private:
  [[nodiscard]] BuildResult build_index_internal(const ir::InvertedIndex& inverted,
                                                 const opse::ScoreQuantizer& quantizer,
                                                 double raw_index_seconds,
                                                 const BuildOptions& options) const;

  MasterKey key_;
  TrapdoorGenerator trapdoor_gen_;
};

}  // namespace rsse::sse
