#include "sse/rsse_scheme.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <map>

#include "crypto/prf.h"
#include "ir/scoring.h"
#include "obs/profiler.h"
#include "sse/entry_codec.h"
#include "util/errors.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace rsse::sse {
namespace {

// Per-row leakage tallies, gathered by the build workers while the
// plaintext levels and OPM values are in hand, reduced serially after.
struct RowAudit {
  std::uint64_t postings = 0;
  std::uint64_t stored_width = 0;  // after padding
  std::uint64_t level_max_duplicates = 0;
  std::uint64_t opm_max_duplicates = 0;
  std::uint64_t opm_duplicates = 0;  // postings - distinct OPM values
};

std::uint64_t max_run_length(std::vector<std::uint64_t>& values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  std::uint64_t best = 1, run = 1;
  for (std::size_t i = 1; i < values.size(); ++i) {
    run = values[i] == values[i - 1] ? run + 1 : 1;
    best = std::max(best, run);
  }
  return best;
}

std::uint64_t distinct_count(const std::vector<std::uint64_t>& sorted) {
  std::uint64_t distinct = sorted.empty() ? 0 : 1;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] != sorted[i - 1]) ++distinct;
  }
  return distinct;
}

RowAudit audit_row(std::vector<std::uint64_t>& levels,
                   std::vector<std::uint64_t>& opm_values) {
  RowAudit audit;
  audit.postings = levels.size();
  audit.level_max_duplicates = max_run_length(levels);
  audit.opm_max_duplicates = max_run_length(opm_values);  // sorts opm_values
  audit.opm_duplicates = audit.postings - distinct_count(opm_values);
  return audit;
}

double min_entropy_bits(std::uint64_t max_duplicates, std::uint64_t total) {
  if (max_duplicates == 0 || total == 0) return 0.0;
  // + 0.0 normalizes the -log2(1) = -0.0 case to plain zero.
  return -std::log2(static_cast<double>(max_duplicates) /
                    static_cast<double>(total)) +
         0.0;
}

}  // namespace

double LeakageAudit::level_min_entropy_bits() const {
  return min_entropy_bits(widest_row_level_max_duplicates, widest_row_postings);
}

double LeakageAudit::opm_min_entropy_bits() const {
  return min_entropy_bits(widest_row_opm_max_duplicates, widest_row_postings);
}

const char* LeakageAudit::padding_name() const {
  switch (padding_mode) {
    case 1: return "full_nu";
    case 2: return "pow2";
    case 3: return "none";
    default: return "unknown";
  }
}

Bytes LeakageAudit::serialize() const {
  Bytes out;
  append_u64(out, 2);  // format version (v2 added padding_mode)
  append_u64(out, num_rows);
  append_u64(out, genuine_postings);
  append_u64(out, opm_ciphertext_duplicates);
  append_u64(out, widest_row_postings);
  append_u64(out, widest_row_level_max_duplicates);
  append_u64(out, widest_row_opm_max_duplicates);
  append_u64(out, std::bit_cast<std::uint64_t>(stored_width_entropy_bits));
  append_u64(out, padding_mode);
  return out;
}

LeakageAudit LeakageAudit::deserialize(BytesView bytes) {
  ByteReader reader(bytes);
  const std::uint64_t version = reader.read_u64();
  detail::require(version == 1 || version == 2,
                  "LeakageAudit: unknown format version");
  LeakageAudit audit;
  audit.num_rows = reader.read_u64();
  audit.genuine_postings = reader.read_u64();
  audit.opm_ciphertext_duplicates = reader.read_u64();
  audit.widest_row_postings = reader.read_u64();
  audit.widest_row_level_max_duplicates = reader.read_u64();
  audit.widest_row_opm_max_duplicates = reader.read_u64();
  audit.stored_width_entropy_bits = std::bit_cast<double>(reader.read_u64());
  // A v1 artifact predates the field; padding_mode stays 0 ("unknown").
  if (version >= 2) audit.padding_mode = reader.read_u64();
  return audit;
}

RsseScheme::RsseScheme(MasterKey key, ir::AnalyzerOptions analyzer_options)
    : key_(std::move(key)),
      trapdoor_gen_(key_.x, key_.y, key_.params.p_bits, analyzer_options) {
  key_.params.validate();
}

opse::OpeParams RsseScheme::ope_params() const {
  return opse::OpeParams{key_.params.score_levels, 1ull << key_.params.range_bits};
}

Bytes RsseScheme::row_label(std::string_view normalized) const {
  return trapdoor_gen_.label_for(normalized);
}

Bytes RsseScheme::row_key(std::string_view normalized) const {
  return trapdoor_gen_.list_key_for(normalized);
}

opse::OneToManyOpm RsseScheme::opm_for_keyword(std::string_view normalized) const {
  // f_z(w_i): a fresh mapping key per posting list, so equal scores in
  // different lists land in unrelated buckets (Sec. IV-B discussion).
  Bytes opm_key = crypto::Prf(key_.z).derive(normalized);
  return opse::OneToManyOpm(std::move(opm_key), ope_params());
}

Bytes RsseScheme::make_entry(std::string_view normalized, FileId id, double score,
                             const opse::ScoreQuantizer& quantizer) const {
  const opse::OneToManyOpm opm = opm_for_keyword(normalized);
  const std::uint64_t level = quantizer.quantize(score);
  const std::uint64_t opm_value = opm.map(level, ir::value(id));
  Bytes score_field;
  append_u64(score_field, opm_value);
  const Bytes plain = encode_entry_plaintext(id, score_field);
  return encrypt_entry(row_key(normalized), plain);
}

RsseScheme::BuildResult RsseScheme::build_index(const ir::Corpus& corpus,
                                                const BuildOptions& options) const {
  Stopwatch watch;
  const ir::InvertedIndex inverted = ir::InvertedIndex::build(corpus, analyzer());
  // First pass over all postings to fix the score encoding.
  std::vector<double> all_scores;
  for (const std::string& term : inverted.terms()) {
    for (const ir::Posting& p : *inverted.postings(term))
      all_scores.push_back(ir::score_single_keyword(p.tf, inverted.doc_length(p.file)));
  }
  detail::require(!all_scores.empty(), "RsseScheme::build_index: empty collection");
  const auto quantizer =
      opse::ScoreQuantizer::from_scores(all_scores, key_.params.score_levels);
  return build_index_internal(inverted, quantizer, watch.elapsed_seconds(), options);
}

RsseScheme::BuildResult RsseScheme::build_index(const ir::Corpus& corpus,
                                                const opse::ScoreQuantizer& quantizer,
                                                const BuildOptions& options) const {
  Stopwatch watch;
  const ir::InvertedIndex inverted = ir::InvertedIndex::build(corpus, analyzer());
  return build_index_internal(inverted, quantizer, watch.elapsed_seconds(), options);
}

RsseScheme::BuildResult RsseScheme::build_index_internal(
    const ir::InvertedIndex& inverted, const opse::ScoreQuantizer& quantizer,
    double raw_index_seconds, const BuildOptions& options) const {
  detail::require(quantizer.levels() == key_.params.score_levels,
                  "RsseScheme: quantizer levels disagree with system params");
  detail::require(options.num_threads >= 1, "RsseScheme: need at least one thread");
  BuildResult result{SecureIndex{}, quantizer, BuildStats{}};
  result.stats.raw_index_seconds = raw_index_seconds;
  result.stats.pad_width = inverted.max_posting_length();
  result.stats.num_keywords = inverted.num_terms();

  // Per-row padded width under the chosen policy.
  const auto padded_width = [&](std::size_t posting_count) -> std::size_t {
    switch (options.padding) {
      case PaddingMode::kFullNu:
        return static_cast<std::size_t>(result.stats.pad_width);
      case PaddingMode::kPowerOfTwo: {
        std::size_t width = 1;
        while (width < posting_count) width *= 2;
        return width;
      }
      case PaddingMode::kNone:
        return posting_count;
    }
    throw InvalidArgument("RsseScheme: unknown padding mode");
  };

  // Per-keyword rows are independent: fan them over the pool. Each chunk
  // accumulates its own timing and emits finished rows; the merge into
  // the index is serial (cheap: moves only).
  const std::vector<std::string>& terms = inverted.terms();
  struct BuiltRow {
    Bytes label;
    std::vector<Bytes> entries;
  };
  std::vector<BuiltRow> rows(terms.size());
  std::vector<RowAudit> row_audits(terms.size());
  std::atomic<std::uint64_t> opm_ns{0};
  std::atomic<std::uint64_t> encrypt_ns{0};
  std::atomic<std::uint64_t> num_postings{0};

  static const auto kRowStage = obs::Profiler::global().stage("index/build_row");
  Stopwatch wall;
  parallel_for(terms.size(), options.num_threads, [&](std::size_t begin, std::size_t end) {
    Stopwatch opm_watch;
    double opm_seconds = 0.0;
    Stopwatch encrypt_watch;
    double encrypt_seconds = 0.0;
    std::uint64_t postings = 0;
    for (std::size_t t = begin; t < end; ++t) {
      const obs::ProfileScope row_scope(kRowStage);
      const std::string& term = terms[t];
      const std::vector<ir::Posting>* list = inverted.postings(term);
      const opse::OneToManyOpm opm = opm_for_keyword(term);
      opse::SplitCache split_cache;  // one per keyword: splits are key-bound
      const Bytes list_key = row_key(term);
      std::vector<Bytes> entries;
      const std::size_t target_width = padded_width(list->size());
      entries.reserve(target_width);
      std::vector<std::uint64_t> levels;
      std::vector<std::uint64_t> opm_values;
      levels.reserve(list->size());
      opm_values.reserve(list->size());
      for (const ir::Posting& posting : *list) {
        const double score =
            ir::score_single_keyword(posting.tf, inverted.doc_length(posting.file));
        opm_watch.reset();
        const std::uint64_t level = quantizer.quantize(score);
        const std::uint64_t opm_value =
            opm.map(level, ir::value(posting.file), split_cache);
        opm_seconds += opm_watch.elapsed_seconds();
        levels.push_back(level);
        opm_values.push_back(opm_value);

        encrypt_watch.reset();
        Bytes score_field;
        append_u64(score_field, opm_value);
        const Bytes plain = encode_entry_plaintext(posting.file, score_field);
        entries.push_back(encrypt_entry(list_key, plain));
        encrypt_seconds += encrypt_watch.elapsed_seconds();
        ++postings;
      }
      encrypt_watch.reset();
      while (entries.size() < target_width)
        entries.push_back(random_padding_entry(kRsseScoreFieldSize));
      encrypt_seconds += encrypt_watch.elapsed_seconds();
      row_audits[t] = audit_row(levels, opm_values);
      row_audits[t].stored_width = entries.size();
      rows[t] = BuiltRow{row_label(term), std::move(entries)};
    }
    opm_ns.fetch_add(static_cast<std::uint64_t>(opm_seconds * 1e9));
    encrypt_ns.fetch_add(static_cast<std::uint64_t>(encrypt_seconds * 1e9));
    num_postings.fetch_add(postings);
  });

  for (BuiltRow& row : rows)
    result.index.add_row(std::move(row.label), std::move(row.entries));
  result.stats.wall_seconds = wall.elapsed_seconds();
  result.stats.opm_seconds = static_cast<double>(opm_ns.load()) / 1e9;
  result.stats.encrypt_seconds = static_cast<double>(encrypt_ns.load()) / 1e9;
  result.stats.num_postings = num_postings.load();

  // Serial audit reduce: totals, plus the widest row's duplicate maxima
  // (Fig. 4 studies exactly the longest posting list; first wins on ties).
  LeakageAudit& audit = result.audit;
  audit.padding_mode = 1 + static_cast<std::uint64_t>(options.padding);
  audit.num_rows = row_audits.size();
  const RowAudit* widest = nullptr;
  for (const RowAudit& row : row_audits) {
    audit.genuine_postings += row.postings;
    audit.opm_ciphertext_duplicates += row.opm_duplicates;
    if (widest == nullptr || row.postings > widest->postings) widest = &row;
  }
  if (widest != nullptr) {
    audit.widest_row_postings = widest->postings;
    audit.widest_row_level_max_duplicates = widest->level_max_duplicates;
    audit.widest_row_opm_max_duplicates = widest->opm_max_duplicates;
  }
  // Width entropy of what is actually stored (i.e. after padding): the
  // shape a honest-but-curious server can tabulate for itself.
  std::map<std::uint64_t, std::uint64_t> width_counts;
  for (const RowAudit& row : row_audits) ++width_counts[row.stored_width];
  double entropy = 0.0;
  for (const auto& [width, count] : width_counts) {
    const double p =
        static_cast<double>(count) / static_cast<double>(audit.num_rows);
    entropy -= p * std::log2(p);
  }
  audit.stored_width_entropy_bits = audit.num_rows == 0 ? 0.0 : entropy;
  return result;
}

Trapdoor RsseScheme::trapdoor(std::string_view keyword) const {
  return trapdoor_gen_.generate(keyword);
}

std::vector<RankedSearchEntry> RsseScheme::search(const SecureIndex& index,
                                                  const Trapdoor& trapdoor,
                                                  std::size_t top_k) {
  std::vector<RankedSearchEntry> out;
  const std::vector<Bytes>* row = index.row(trapdoor.label);
  if (!row) return out;
  for (const Bytes& ciphertext : *row) {
    const auto entry = decrypt_entry(trapdoor.list_key, ciphertext, kRsseScoreFieldSize);
    if (!entry) continue;
    ByteReader reader(entry->score_field);
    out.push_back(RankedSearchEntry{entry->file, reader.read_u64()});
  }
  // Rank by the order-preserved encrypted score — exactly what the paper's
  // server does; no plaintext knowledge required.
  std::sort(out.begin(), out.end(), [](const RankedSearchEntry& a, const RankedSearchEntry& b) {
    if (a.opm_score != b.opm_score) return a.opm_score > b.opm_score;
    return ir::value(a.file) < ir::value(b.file);
  });
  if (top_k > 0 && out.size() > top_k) out.resize(top_k);
  return out;
}

}  // namespace rsse::sse
