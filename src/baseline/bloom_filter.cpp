#include "baseline/bloom_filter.h"

#include <bit>
#include <cmath>

#include "crypto/sha256.h"
#include "util/errors.h"

namespace rsse::baseline {

BloomFilter::BloomFilter(std::size_t bits, std::size_t hashes) : hashes_(hashes) {
  detail::require(bits > 0, "BloomFilter: zero bits");
  detail::require(hashes > 0 && hashes <= 64, "BloomFilter: hashes outside (0,64]");
  words_.assign((bits + 63) / 64, 0);
}

BloomFilter BloomFilter::with_capacity(std::size_t expected_items, double target_fp_rate) {
  detail::require(expected_items > 0, "BloomFilter: zero capacity");
  detail::require(target_fp_rate > 0.0 && target_fp_rate < 1.0,
                  "BloomFilter: fp rate outside (0,1)");
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(expected_items) * std::log(target_fp_rate) /
                   (ln2 * ln2);
  const double k = m / static_cast<double>(expected_items) * ln2;
  return BloomFilter(static_cast<std::size_t>(std::ceil(m)),
                     std::max<std::size_t>(1, static_cast<std::size_t>(std::round(k))));
}

namespace {

// Two independent 64-bit hashes from one SHA-256.
std::pair<std::uint64_t, std::uint64_t> item_hashes(BytesView item) {
  const auto digest = crypto::sha256(item);
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  for (int i = 0; i < 8; ++i) {
    h1 |= static_cast<std::uint64_t>(digest[i]) << (8 * i);
    h2 |= static_cast<std::uint64_t>(digest[8 + i]) << (8 * i);
  }
  if (h2 == 0) h2 = 0x9e3779b97f4a7c15ull;  // double hashing needs h2 != 0
  return {h1, h2};
}

}  // namespace

void BloomFilter::insert(BytesView item) {
  const auto [h1, h2] = item_hashes(item);
  const std::size_t bits = num_bits();
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::size_t bit = (h1 + i * h2) % bits;
    words_[bit / 64] |= 1ull << (bit % 64);
  }
}

bool BloomFilter::maybe_contains(BytesView item) const {
  const auto [h1, h2] = item_hashes(item);
  const std::size_t bits = num_bits();
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::size_t bit = (h1 + i * h2) % bits;
    if ((words_[bit / 64] & (1ull << (bit % 64))) == 0) return false;
  }
  return true;
}

std::size_t BloomFilter::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

Bytes BloomFilter::serialize() const {
  Bytes out;
  append_u64(out, hashes_);
  append_u64(out, words_.size());
  for (std::uint64_t w : words_) append_u64(out, w);
  return out;
}

BloomFilter BloomFilter::deserialize(BytesView blob) {
  ByteReader reader(blob);
  const std::uint64_t hashes = reader.read_u64();
  const std::uint64_t num_words = reader.read_u64();
  if (hashes == 0 || hashes > 64) throw ParseError("BloomFilter: bad hash count");
  if (num_words == 0) throw ParseError("BloomFilter: empty filter");
  BloomFilter filter(static_cast<std::size_t>(num_words) * 64,
                     static_cast<std::size_t>(hashes));
  for (std::uint64_t i = 0; i < num_words; ++i) filter.words_[i] = reader.read_u64();
  if (!reader.exhausted()) throw ParseError("BloomFilter: trailing bytes");
  return filter;
}

}  // namespace rsse::baseline
