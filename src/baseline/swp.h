// Song-Wagner-Perrig searchable encryption (S&P 2000) — the paper's
// reference [6] and the first searchable-encryption construction. Boolean
// search only, and the search cost is linear in the TOTAL length of the
// collection: each word position is one ciphertext block the server must
// test. We implement it as an executable baseline so the related-work
// bench can show the complexity gap the paper describes (O(total words)
// for [6] vs O(log m) row lookup for the index-based schemes).
//
// Construction (the paper's "final scheme", fixed-width blocks):
//   X_w       = HMAC(k', w)                   deterministic word encoding
//   L_w       = first half of X_w
//   k_w       = HMAC(k'', L_w)                word-specific check key
//   S_i       = PRF(seed, id || i)            per-position stream half
//   pad_i     = S_i || HMAC_kw(S_i)
//   C_i       = X_w XOR pad_i                 stored block for position i
// Search(w): the user reveals (X_w, k_w); the server XORs each block with
// X_w and accepts when the right half authenticates the left half under
// k_w. A non-matching block passes with probability 2^-128.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ir/document.h"
#include "util/bytes.h"

namespace rsse::baseline {

/// Size of one SWP ciphertext block (and of X_w) in bytes.
inline constexpr std::size_t kSwpBlockSize = 32;

/// The search token the user hands the server: (X_w, k_w).
struct SwpToken {
  Bytes word_encoding;  ///< X_w
  Bytes check_key;      ///< k_w

  friend bool operator==(const SwpToken&, const SwpToken&) = default;
};

/// One match: which position of which file tested positive.
struct SwpMatch {
  ir::FileId file{};
  std::uint64_t position = 0;
};

/// Owner/user-side algorithms of the SWP scheme.
class SwpScheme {
 public:
  /// Three independent 32-byte keys (k', k'', stream seed).
  struct Key {
    Bytes k_prime;
    Bytes k_double_prime;
    Bytes stream_seed;
  };

  /// Draws a fresh key from the CSPRNG.
  static Key generate_key();

  explicit SwpScheme(Key key);

  /// Encrypts one document's word sequence (already analyzer-normalized)
  /// into its per-position block sequence.
  [[nodiscard]] std::vector<Bytes> encrypt_words(ir::FileId id,
                                                 const std::vector<std::string>& words) const;

  /// Builds the search token for a (normalized) word.
  [[nodiscard]] SwpToken token(std::string_view word) const;

  /// Server side: scans every block of every file (linear in collection
  /// length) and returns the matching positions.
  static std::vector<SwpMatch> search(
      const std::map<std::uint64_t, std::vector<Bytes>>& collection,
      const SwpToken& token);

  /// Server side, single document scan.
  static std::vector<std::uint64_t> search_document(const std::vector<Bytes>& blocks,
                                                    const SwpToken& token);

 private:
  [[nodiscard]] Bytes word_encoding(std::string_view word) const;
  [[nodiscard]] Bytes check_key_for(BytesView left_half) const;
  [[nodiscard]] Bytes stream_half(ir::FileId id, std::uint64_t position) const;

  Key key_;
};

}  // namespace rsse::baseline
