#include "baseline/goh_index.h"

#include <set>

#include "crypto/hmac_sha256.h"
#include "util/errors.h"

namespace rsse::baseline {

std::vector<ir::FileId> GohIndex::search(BytesView trapdoor) const {
  std::vector<ir::FileId> hits;
  for (const Entry& entry : entries_) {
    if (entry.filter.maybe_contains(GohScheme::codeword(trapdoor, entry.file)))
      hits.push_back(entry.file);
  }
  return hits;
}

std::uint64_t GohIndex::byte_size() const {
  std::uint64_t total = 0;
  for (const Entry& entry : entries_) total += entry.filter.num_bits() / 8;
  return total;
}

GohScheme::GohScheme(Bytes key, ir::AnalyzerOptions analyzer_options,
                     double target_fp_rate)
    : key_(std::move(key)), analyzer_(analyzer_options), target_fp_rate_(target_fp_rate) {
  detail::require(!key_.empty(), "GohScheme: empty key");
  detail::require(target_fp_rate > 0.0 && target_fp_rate < 1.0,
                  "GohScheme: fp rate outside (0,1)");
}

Bytes GohScheme::trapdoor(std::string_view keyword) const {
  const std::string normalized = analyzer_.normalize_keyword(keyword);
  detail::require(!normalized.empty(),
                  "GohScheme::trapdoor: keyword vanishes under normalization");
  const auto tag = crypto::hmac_sha256(key_, to_bytes(normalized));
  return Bytes(tag.begin(), tag.end());
}

Bytes GohScheme::codeword(BytesView trapdoor, ir::FileId id) {
  Bytes label;
  append_u64(label, ir::value(id));
  const auto tag = crypto::hmac_sha256(trapdoor, label);
  return Bytes(tag.begin(), tag.end());
}

GohIndex GohScheme::build_index(const ir::Corpus& corpus) const {
  std::vector<GohIndex::Entry> entries;
  entries.reserve(corpus.size());
  for (const ir::Document& doc : corpus.documents()) {
    const std::vector<std::string> terms = analyzer_.analyze(doc.text);
    const std::set<std::string> distinct(terms.begin(), terms.end());
    BloomFilter filter = BloomFilter::with_capacity(
        std::max<std::size_t>(1, distinct.size()), target_fp_rate_);
    for (const std::string& term : distinct) {
      const auto tag = crypto::hmac_sha256(key_, to_bytes(term));
      filter.insert(codeword(BytesView(tag.data(), tag.size()), doc.id));
    }
    entries.push_back(GohIndex::Entry{doc.id, std::move(filter)});
  }
  return GohIndex(std::move(entries));
}

}  // namespace rsse::baseline
