// Plaintext ranked search: the no-crypto reference point. The paper
// claims RSSE top-k retrieval is "almost as efficient as on unencrypted
// data" (Sec. VI-C2); bench_fig8_topk_search runs this engine next to the
// RSSE server to substantiate the claim.
#pragma once

#include <string_view>
#include <vector>

#include "ir/analyzer.h"
#include "ir/document.h"
#include "ir/inverted_index.h"

namespace rsse::baseline {

/// An unencrypted ranked-retrieval engine over a corpus.
class PlaintextSearchEngine {
 public:
  /// Indexes the corpus through `analyzer_options` (same pipeline as the
  /// encrypted schemes, for a fair comparison).
  explicit PlaintextSearchEngine(const ir::Corpus& corpus,
                                 ir::AnalyzerOptions analyzer_options = {});

  /// Top-k ranked retrieval (0 = all), eq. 2 scoring, best first.
  [[nodiscard]] std::vector<ir::ScoredPosting> search(std::string_view keyword,
                                                      std::size_t top_k = 0) const;

  /// The underlying index (benches reuse its statistics).
  [[nodiscard]] const ir::InvertedIndex& index() const { return index_; }

 private:
  ir::Analyzer analyzer_;
  ir::InvertedIndex index_;
};

}  // namespace rsse::baseline
