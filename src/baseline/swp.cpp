#include "baseline/swp.h"

#include "crypto/csprng.h"
#include "crypto/hmac_sha256.h"
#include "crypto/prf.h"
#include "util/errors.h"

namespace rsse::baseline {

namespace {

constexpr std::size_t kHalf = kSwpBlockSize / 2;

Bytes hmac_bytes(BytesView key, BytesView data) {
  const auto tag = crypto::hmac_sha256(key, data);
  return Bytes(tag.begin(), tag.end());
}

// First 16 bytes of HMAC(key, data): the authenticator half of a pad.
Bytes hmac_half(BytesView key, BytesView data) {
  Bytes full = hmac_bytes(key, data);
  full.resize(kHalf);
  return full;
}

}  // namespace

SwpScheme::Key SwpScheme::generate_key() {
  return Key{crypto::random_bytes(32), crypto::random_bytes(32),
             crypto::random_bytes(32)};
}

SwpScheme::SwpScheme(Key key) : key_(std::move(key)) {
  detail::require(!key_.k_prime.empty() && !key_.k_double_prime.empty() &&
                      !key_.stream_seed.empty(),
                  "SwpScheme: empty key component");
}

Bytes SwpScheme::word_encoding(std::string_view word) const {
  return hmac_bytes(key_.k_prime, to_bytes(word));
}

Bytes SwpScheme::check_key_for(BytesView left_half) const {
  return hmac_bytes(key_.k_double_prime, left_half);
}

Bytes SwpScheme::stream_half(ir::FileId id, std::uint64_t position) const {
  Bytes label;
  append_u64(label, ir::value(id));
  append_u64(label, position);
  return hmac_half(key_.stream_seed, label);
}

std::vector<Bytes> SwpScheme::encrypt_words(ir::FileId id,
                                            const std::vector<std::string>& words) const {
  std::vector<Bytes> blocks;
  blocks.reserve(words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    const Bytes x = word_encoding(words[i]);
    const BytesView left(x.data(), kHalf);
    const Bytes k_w = check_key_for(left);
    const Bytes s = stream_half(id, i);
    Bytes pad = s;
    append(pad, hmac_half(k_w, s));
    Bytes block(kSwpBlockSize);
    for (std::size_t b = 0; b < kSwpBlockSize; ++b) block[b] = x[b] ^ pad[b];
    blocks.push_back(std::move(block));
  }
  return blocks;
}

SwpToken SwpScheme::token(std::string_view word) const {
  const Bytes x = word_encoding(word);
  const BytesView left(x.data(), kHalf);
  return SwpToken{x, check_key_for(left)};
}

std::vector<std::uint64_t> SwpScheme::search_document(const std::vector<Bytes>& blocks,
                                                      const SwpToken& token) {
  detail::require(token.word_encoding.size() == kSwpBlockSize,
                  "SwpScheme::search: bad token");
  std::vector<std::uint64_t> positions;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const Bytes& block = blocks[i];
    if (block.size() != kSwpBlockSize) throw ParseError("SwpScheme: bad block size");
    Bytes pad(kSwpBlockSize);
    for (std::size_t b = 0; b < kSwpBlockSize; ++b)
      pad[b] = block[b] ^ token.word_encoding[b];
    const BytesView s(pad.data(), kHalf);
    const BytesView t(pad.data() + kHalf, kHalf);
    if (constant_time_equal(hmac_half(token.check_key, s), t))
      positions.push_back(i);
  }
  return positions;
}

std::vector<SwpMatch> SwpScheme::search(
    const std::map<std::uint64_t, std::vector<Bytes>>& collection,
    const SwpToken& token) {
  std::vector<SwpMatch> matches;
  for (const auto& [id, blocks] : collection) {
    for (std::uint64_t pos : search_document(blocks, token))
      matches.push_back(SwpMatch{ir::file_id(id), pos});
  }
  return matches;
}

}  // namespace rsse::baseline
