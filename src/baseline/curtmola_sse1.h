// Curtmola-Garay-Kamara-Ostrovsky SSE-1 (CCS'06) — reference [10], the
// construction whose security definition the paper's Basic Scheme
// inherits ("the most simplified version of searchable symmetric
// encryption that satisfies the non-adaptive security definition of
// [10]"). We implement the real SSE-1 structure, not the simplification:
//
//  * array A: every posting of every keyword is one fixed-size node,
//    placed at a RANDOM position of a single global array; a node holds
//    (file id, score blob, next-node address, next-node key) and is
//    encrypted under a per-node key carried by its predecessor, so the
//    lists are encrypted linked chains threaded invisibly through A;
//  * look-up table T: pi_x(w) -> (address + key of the first node),
//    encrypted under f_y(w).
//
// Compared with the per-row padded index the two main schemes use, SSE-1
// stores exactly Sigma N_i nodes (plus slack) instead of m * nu entries —
// the index-size side of the trade-off bench_related_schemes reports.
// Searching still reveals only the chain of the queried keyword.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "ir/analyzer.h"
#include "ir/document.h"
#include "sse/types.h"
#include "util/bytes.h"

namespace rsse::baseline {

/// One decrypted posting from a chain walk.
struct Sse1Posting {
  ir::FileId file{};
  Bytes encrypted_score;  ///< E_z(S), user-decryptable like the Basic Scheme

  friend bool operator==(const Sse1Posting&, const Sse1Posting&) = default;
};

/// The outsourced SSE-1 structure: array A plus look-up table T.
class Sse1Index {
 public:
  Sse1Index(std::vector<Bytes> array, std::map<Bytes, Bytes> lookup);

  /// Server-side search: unlock the T entry with the trapdoor, then walk
  /// and decrypt the chain. Returns empty when the label is unknown.
  [[nodiscard]] std::vector<Sse1Posting> search(const sse::Trapdoor& trapdoor) const;

  /// Number of array slots (genuine nodes + slack).
  [[nodiscard]] std::size_t array_size() const { return array_.size(); }

  /// Total bytes (array + table) — the storage comparison number.
  [[nodiscard]] std::uint64_t byte_size() const;

  [[nodiscard]] Bytes serialize() const;
  static Sse1Index deserialize(BytesView blob);

 private:
  std::vector<Bytes> array_;       // fixed-size encrypted nodes
  std::map<Bytes, Bytes> lookup_;  // pi_x(w) -> Enc_{f_y(w)}(addr || key)
};

/// Owner/user-side algorithms.
class CurtmolaSse1 {
 public:
  /// Binds to the same master-key components the other schemes use
  /// (x: labels, y: T-entry keys, z: score encryption) and the shared
  /// analyzer. `slack_factor` >= 1 scales the array beyond the posting
  /// count so occupancy doesn't reveal the exact total.
  CurtmolaSse1(Bytes x, Bytes y, Bytes z, std::size_t p_bits = 160,
               ir::AnalyzerOptions analyzer_options = {}, double slack_factor = 1.25);

  /// BuildIndex: one array node per (keyword, file) posting, random
  /// placement, chained per keyword.
  [[nodiscard]] Sse1Index build_index(const ir::Corpus& corpus) const;

  /// TrapdoorGen — same (pi_x(w), f_y(w)) shape as the main schemes.
  [[nodiscard]] sse::Trapdoor trapdoor(std::string_view keyword) const;

  /// User side: decrypts a score blob (same E_z as the Basic Scheme).
  [[nodiscard]] double decrypt_score(BytesView encrypted_score) const;

 private:
  Bytes x_;
  Bytes y_;
  Bytes z_;
  std::size_t p_bits_;
  ir::Analyzer analyzer_;
  double slack_factor_;
};

}  // namespace rsse::baseline
