#include "baseline/sample_opm.h"

#include <algorithm>
#include <cmath>

#include "crypto/tapegen.h"
#include "util/errors.h"

namespace rsse::baseline {

SampleOpm::SampleOpm(std::vector<double> training_scores, std::size_t knots,
                     std::uint64_t range_size, Bytes key)
    : num_knots_(knots), range_size_(range_size), key_(std::move(key)) {
  detail::require(knots >= 2, "SampleOpm: need at least two knots");
  detail::require(range_size >= knots, "SampleOpm: range smaller than knot count");
  detail::require(!key_.empty(), "SampleOpm: empty key");
  retrain(std::move(training_scores));
}

void SampleOpm::retrain(std::vector<double> training_scores) {
  detail::require(!training_scores.empty(), "SampleOpm: empty training sample");
  std::sort(training_scores.begin(), training_scores.end());
  knots_.clear();
  knots_.reserve(num_knots_);
  for (std::size_t i = 0; i < num_knots_; ++i) {
    const std::size_t pos = i * (training_scores.size() - 1) / (num_knots_ - 1);
    knots_.push_back(training_scores[pos]);
  }
  // Degenerate training samples can produce equal knots; nudge them apart
  // so the CDF stays strictly increasing and invertible.
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (knots_[i] <= knots_[i - 1])
      knots_[i] = std::nextafter(knots_[i - 1], std::numeric_limits<double>::max());
  }
}

double SampleOpm::cdf(double score) const {
  if (score <= knots_.front()) return 0.0;
  if (score >= knots_.back()) return 1.0;
  const auto it = std::upper_bound(knots_.begin(), knots_.end(), score);
  const auto hi = static_cast<std::size_t>(std::distance(knots_.begin(), it));
  const std::size_t lo = hi - 1;
  const double cell = 1.0 / static_cast<double>(num_knots_ - 1);
  const double frac = (score - knots_[lo]) / (knots_[hi] - knots_[lo]);
  return (static_cast<double>(lo) + frac) * cell;
}

std::uint64_t SampleOpm::map(double score, std::uint64_t tiebreak) const {
  const double u = cdf(score);
  // Deterministic base position plus keyed jitter within half a CDF cell,
  // keeping the mapping order-preserving at knot granularity.
  const double cell = 1.0 / static_cast<double>(num_knots_ - 1);
  const auto base = static_cast<std::uint64_t>(u * static_cast<double>(range_size_ - 1));
  const auto jitter_span = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(cell * static_cast<double>(range_size_) / 2.0));
  Bytes ctx;
  append_u64(ctx, base);
  append_u64(ctx, tiebreak);
  crypto::Tape tape(key_, ctx);
  return 1 + base + tape.uniform_below(jitter_span);
}

}  // namespace rsse::baseline
