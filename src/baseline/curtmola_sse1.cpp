#include "baseline/curtmola_sse1.h"

#include <algorithm>
#include <bit>

#include "crypto/aes_ctr.h"
#include "crypto/csprng.h"
#include "crypto/prf.h"
#include "ir/inverted_index.h"
#include "ir/scoring.h"
#include "util/errors.h"

namespace rsse::baseline {

namespace {

// Node plaintext: 0^8 flag || id(8) || E_z(score)(24) || next addr(8) ||
// next key(32). Fixed width so every slot is indistinguishable.
constexpr std::size_t kFlagSize = 8;
constexpr std::size_t kScoreBlobSize = 16 + 8;  // AES-CTR IV + 8-byte payload
constexpr std::size_t kNodeKeySize = 32;
constexpr std::size_t kNodePlainSize =
    kFlagSize + 8 + kScoreBlobSize + 8 + kNodeKeySize;
constexpr std::size_t kNodeSlotSize = crypto::kAesIvSize + kNodePlainSize;

/// End-of-chain sentinel address.
constexpr std::uint64_t kEndOfChain = ~0ull;

Bytes encode_node(ir::FileId id, BytesView score_blob, std::uint64_t next_addr,
                  BytesView next_key) {
  Bytes plain(kFlagSize, 0x00);
  append_u64(plain, ir::value(id));
  append(plain, score_blob);
  append_u64(plain, next_addr);
  append(plain, next_key);
  return plain;
}

struct DecodedNode {
  ir::FileId file{};
  Bytes score_blob;
  std::uint64_t next_addr = kEndOfChain;
  Bytes next_key;
};

std::optional<DecodedNode> decode_node(BytesView node_key, BytesView slot) {
  if (slot.size() != kNodeSlotSize) throw ParseError("sse1: bad slot size");
  const Bytes plain = crypto::aes_ctr_decrypt(node_key, slot);
  const bool valid = std::all_of(plain.begin(), plain.begin() + kFlagSize,
                                 [](std::uint8_t b) { return b == 0; });
  if (!valid) return std::nullopt;
  ByteReader reader(BytesView(plain).subspan(kFlagSize));
  DecodedNode node;
  node.file = ir::file_id(reader.read_u64());
  node.score_blob = reader.read(kScoreBlobSize);
  node.next_addr = reader.read_u64();
  node.next_key = reader.read(kNodeKeySize);
  return node;
}

}  // namespace

Sse1Index::Sse1Index(std::vector<Bytes> array, std::map<Bytes, Bytes> lookup)
    : array_(std::move(array)), lookup_(std::move(lookup)) {
  for (const Bytes& slot : array_)
    detail::require(slot.size() == kNodeSlotSize, "Sse1Index: ragged slot");
}

std::vector<Sse1Posting> Sse1Index::search(const sse::Trapdoor& trapdoor) const {
  std::vector<Sse1Posting> out;
  const auto it = lookup_.find(trapdoor.label);
  if (it == lookup_.end()) return out;
  // T entry: Enc_{f_y(w)}(first addr || first key).
  Bytes head;
  try {
    head = crypto::aes_ctr_decrypt(trapdoor.list_key, it->second);
  } catch (const Error&) {
    return out;  // wrong trapdoor key
  }
  if (head.size() != 8 + kNodeKeySize) return out;
  ByteReader reader(head);
  std::uint64_t addr = reader.read_u64();
  Bytes node_key = reader.read(kNodeKeySize);

  // Bounded walk: a genuine chain never exceeds the array size, so a
  // forged/corrupted chain cannot loop forever.
  for (std::size_t steps = 0; steps <= array_.size(); ++steps) {
    if (addr == kEndOfChain) return out;
    if (addr >= array_.size()) return out;  // corrupted pointer: stop
    const auto node = decode_node(node_key, array_[addr]);
    if (!node) return out;  // wrong key or slack slot: stop
    out.push_back(Sse1Posting{node->file, node->score_blob});
    addr = node->next_addr;
    node_key = node->next_key;
  }
  return out;
}

std::uint64_t Sse1Index::byte_size() const {
  std::uint64_t total = array_.size() * kNodeSlotSize;
  for (const auto& [label, entry] : lookup_) total += label.size() + entry.size();
  return total;
}

Bytes Sse1Index::serialize() const {
  Bytes out;
  append_u64(out, array_.size());
  for (const Bytes& slot : array_) append(out, slot);
  append_u64(out, lookup_.size());
  for (const auto& [label, entry] : lookup_) {
    append_lp(out, label);
    append_lp(out, entry);
  }
  return out;
}

Sse1Index Sse1Index::deserialize(BytesView blob) {
  ByteReader reader(blob);
  const std::uint64_t num_slots = reader.read_count(kNodeSlotSize);
  std::vector<Bytes> array;
  array.reserve(num_slots);
  for (std::uint64_t i = 0; i < num_slots; ++i) array.push_back(reader.read(kNodeSlotSize));
  const std::uint64_t num_entries = reader.read_count(8);
  std::map<Bytes, Bytes> lookup;
  for (std::uint64_t i = 0; i < num_entries; ++i) {
    Bytes label = reader.read_lp();
    Bytes entry = reader.read_lp();
    lookup.emplace(std::move(label), std::move(entry));
  }
  if (!reader.exhausted()) throw ParseError("Sse1Index: trailing bytes");
  return Sse1Index(std::move(array), std::move(lookup));
}

CurtmolaSse1::CurtmolaSse1(Bytes x, Bytes y, Bytes z, std::size_t p_bits,
                           ir::AnalyzerOptions analyzer_options, double slack_factor)
    : x_(std::move(x)),
      y_(std::move(y)),
      z_(std::move(z)),
      p_bits_(p_bits),
      analyzer_(analyzer_options),
      slack_factor_(slack_factor) {
  detail::require(!x_.empty() && !y_.empty() && !z_.empty(),
                  "CurtmolaSse1: empty key component");
  detail::require(slack_factor >= 1.0, "CurtmolaSse1: slack factor below 1");
}

sse::Trapdoor CurtmolaSse1::trapdoor(std::string_view keyword) const {
  const std::string normalized = analyzer_.normalize_keyword(keyword);
  detail::require(!normalized.empty(),
                  "CurtmolaSse1::trapdoor: keyword vanishes under normalization");
  return sse::Trapdoor{crypto::KeyedHash(x_, p_bits_).hash(normalized),
                       crypto::Prf(y_).derive(normalized)};
}

double CurtmolaSse1::decrypt_score(BytesView encrypted_score) const {
  const Bytes plain =
      crypto::aes_ctr_decrypt(crypto::Prf(z_).derive("score-key"), encrypted_score);
  if (plain.size() != 8) throw ParseError("CurtmolaSse1: bad score payload");
  ByteReader reader(plain);
  return std::bit_cast<double>(reader.read_u64());
}

Sse1Index CurtmolaSse1::build_index(const ir::Corpus& corpus) const {
  const auto inverted = ir::InvertedIndex::build(corpus, analyzer_);
  std::uint64_t total_postings = 0;
  for (const std::string& term : inverted.terms())
    total_postings += inverted.postings(term)->size();
  detail::require(total_postings > 0, "CurtmolaSse1: empty collection");

  const auto array_size = static_cast<std::size_t>(
      static_cast<double>(total_postings) * slack_factor_);

  // Random distinct placement: a shuffled permutation of the slots, with
  // the first `total_postings` positions consumed in order. (CSPRNG-
  // driven Fisher-Yates: placement must be unpredictable to the server.)
  std::vector<std::uint64_t> positions(array_size);
  for (std::size_t i = 0; i < array_size; ++i) positions[i] = i;
  for (std::size_t i = array_size - 1; i > 0; --i) {
    const std::uint64_t j = crypto::random_u64() % (i + 1);
    std::swap(positions[i], positions[j]);
  }

  const Bytes score_key = crypto::Prf(z_).derive("score-key");
  std::vector<Bytes> array(array_size);
  std::map<Bytes, Bytes> lookup;
  std::size_t next_position = 0;

  for (const std::string& term : inverted.terms()) {
    const auto* postings = inverted.postings(term);
    const std::size_t n = postings->size();
    // Per-node keys K_1..K_n and positions for this chain.
    std::vector<Bytes> node_keys(n);
    std::vector<std::uint64_t> addresses(n);
    for (std::size_t j = 0; j < n; ++j) {
      node_keys[j] = crypto::random_bytes(kNodeKeySize);
      addresses[j] = positions[next_position++];
    }
    // Build back to front so each node knows its successor.
    for (std::size_t j = n; j-- > 0;) {
      const ir::Posting& posting = (*postings)[j];
      const double score =
          ir::score_single_keyword(posting.tf, inverted.doc_length(posting.file));
      Bytes score_plain;
      append_u64(score_plain, std::bit_cast<std::uint64_t>(score));
      const Bytes score_blob = crypto::aes_ctr_encrypt(score_key, score_plain);
      const std::uint64_t next_addr = j + 1 < n ? addresses[j + 1] : kEndOfChain;
      const Bytes next_key =
          j + 1 < n ? node_keys[j + 1] : Bytes(kNodeKeySize, 0x00);
      const Bytes plain = encode_node(posting.file, score_blob, next_addr, next_key);
      array[addresses[j]] = crypto::aes_ctr_encrypt(node_keys[j], plain);
    }
    // T entry: head address + head key under f_y(w).
    Bytes head;
    append_u64(head, addresses[0]);
    append(head, node_keys[0]);
    lookup.emplace(crypto::KeyedHash(x_, p_bits_).hash(term),
                   crypto::aes_ctr_encrypt(crypto::Prf(y_).derive(term), head));
  }
  // Slack slots: random bytes, indistinguishable from nodes.
  for (Bytes& slot : array) {
    if (slot.empty()) slot = crypto::random_bytes(kNodeSlotSize);
  }
  return Sse1Index(std::move(array), std::move(lookup));
}

}  // namespace rsse::baseline
