#include "baseline/bucket_opm.h"

#include <algorithm>

#include "crypto/tapegen.h"
#include "util/errors.h"

namespace rsse::baseline {

BucketOpm::BucketOpm(std::vector<double> training_scores, std::size_t num_buckets,
                     std::uint64_t range_size, Bytes key)
    : num_buckets_(num_buckets), range_size_(range_size), key_(std::move(key)) {
  detail::require(num_buckets >= 1, "BucketOpm: need at least one bucket");
  detail::require(range_size >= num_buckets, "BucketOpm: range smaller than buckets");
  detail::require(!key_.empty(), "BucketOpm: empty key");
  refit(std::move(training_scores));
}

void BucketOpm::refit(std::vector<double> training_scores) {
  detail::require(!training_scores.empty(), "BucketOpm: empty training sample");
  std::sort(training_scores.begin(), training_scores.end());
  boundaries_.clear();
  boundaries_.reserve(num_buckets_ - 1);
  // Equi-depth: boundary i sits at the (i+1)/num_buckets quantile.
  for (std::size_t i = 1; i < num_buckets_; ++i) {
    const std::size_t pos = i * training_scores.size() / num_buckets_;
    boundaries_.push_back(training_scores[std::min(pos, training_scores.size() - 1)]);
  }
}

std::size_t BucketOpm::bucket_of(double score) const {
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), score);
  return static_cast<std::size_t>(std::distance(boundaries_.begin(), it));
}

std::uint64_t BucketOpm::map(double score, std::uint64_t tiebreak) const {
  const std::size_t bucket = bucket_of(score);
  const std::uint64_t slice = range_size_ / num_buckets_;
  const std::uint64_t base = 1 + static_cast<std::uint64_t>(bucket) * slice;
  // Pseudo-random placement within the slice, seeded by (score, tiebreak),
  // mirroring the one-to-many idea so equal scores rarely collide.
  Bytes ctx;
  append_u64(ctx, static_cast<std::uint64_t>(bucket));
  append_u64(ctx, tiebreak);
  crypto::Tape tape(key_, ctx);
  return base + tape.uniform_below(slice);
}

std::size_t BucketOpm::metadata_bytes() const {
  return boundaries_.size() * sizeof(double);
}

}  // namespace rsse::baseline
