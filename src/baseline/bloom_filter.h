// A classic Bloom filter with double hashing — the substrate of the Goh
// secure-index baseline (reference [7]). Kept generic: items are byte
// strings; the k index functions derive from two 64-bit halves of a
// SHA-256 of the item (Kirsch-Mitzenmacher double hashing, which
// preserves the asymptotic false-positive rate).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace rsse::baseline {

/// Fixed-size Bloom filter.
class BloomFilter {
 public:
  /// `bits` filter size (rounded up to a multiple of 64), `hashes` the
  /// number of index functions k. Throws InvalidArgument on zero sizes.
  BloomFilter(std::size_t bits, std::size_t hashes);

  /// Sizes a filter for `expected_items` at `target_fp_rate` using the
  /// standard optima m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
  static BloomFilter with_capacity(std::size_t expected_items, double target_fp_rate);

  /// Inserts an item.
  void insert(BytesView item);

  /// Membership test: false = definitely absent; true = present or a
  /// false positive.
  [[nodiscard]] bool maybe_contains(BytesView item) const;

  /// Number of index functions.
  [[nodiscard]] std::size_t num_hashes() const { return hashes_; }

  /// Filter size in bits.
  [[nodiscard]] std::size_t num_bits() const { return words_.size() * 64; }

  /// Number of set bits (load diagnostics).
  [[nodiscard]] std::size_t popcount() const;

  /// Serialized form (size header + raw words).
  [[nodiscard]] Bytes serialize() const;

  /// Inverse of serialize(). Throws ParseError on malformed input.
  static BloomFilter deserialize(BytesView blob);

  friend bool operator==(const BloomFilter&, const BloomFilter&) = default;

 private:
  std::size_t hashes_;
  std::vector<std::uint64_t> words_;
};

}  // namespace rsse::baseline
