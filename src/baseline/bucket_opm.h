// Bucket-based order-preserving score transform, after Swaminathan et al.
// "Confidentiality-preserving rank-ordered search" (StorageSS'07) — the
// paper's reference [18].
//
// The owner fits equi-depth bucket boundaries over the score sample it is
// about to outsource ("keeps lots of metadata to pre-build many different
// buckets on the data owner side", Sec. VI-B), then maps each score to a
// pseudo-random point inside its bucket's slice of the range. Order is
// preserved across buckets by construction.
//
// The property the paper criticizes — no score dynamics — falls out of
// the fit: boundaries depend on the observed distribution, so when new
// scores drift, the owner must refit, and refitting moves EXISTING
// mapped values (bench_ablation_dynamics counts how many). Contrast with
// opse::OneToManyOpm, whose buckets depend only on the key.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace rsse::baseline {

/// The [18]-style transform.
class BucketOpm {
 public:
  /// Fits `num_buckets` equi-depth boundaries over `training_scores`
  /// (must be non-empty) and divides {1..range_size} evenly among the
  /// buckets. `key` seeds the within-bucket pseudo-random placement.
  BucketOpm(std::vector<double> training_scores, std::size_t num_buckets,
            std::uint64_t range_size, Bytes key);

  /// Maps a score to its bucket's slice; `tiebreak` (e.g. the file id)
  /// varies the placement within the slice, like the one-to-many idea.
  [[nodiscard]] std::uint64_t map(double score, std::uint64_t tiebreak) const;

  /// Re-fits the boundaries on a new sample (the forced rebuild when the
  /// score distribution drifts). Previously mapped values are NOT stable
  /// across refit — that is the point of the ablation.
  void refit(std::vector<double> training_scores);

  /// The fitted bucket boundaries (ascending upper edges).
  [[nodiscard]] const std::vector<double>& boundaries() const { return boundaries_; }

  /// Bucket index of a score (0-based).
  [[nodiscard]] std::size_t bucket_of(double score) const;

  /// Owner-side metadata footprint in bytes (the boundary table the paper
  /// points at when comparing against [18]).
  [[nodiscard]] std::size_t metadata_bytes() const;

 private:
  std::size_t num_buckets_;
  std::uint64_t range_size_;
  Bytes key_;
  std::vector<double> boundaries_;  // ascending upper edges, size num_buckets_-1
};

}  // namespace rsse::baseline
