// Goh's secure index (Z-IDX, ePrint 2003/216) — the paper's reference
// [7]. One Bloom filter per file; search cost is linear in the NUMBER OF
// FILES (vs linear in total words for SWP, vs one row lookup for the
// Curtmola-style index both of our main schemes use). Boolean search
// only — no ranking — which is exactly the gap the paper's Sec. I/VII
// argues RSSE fills.
//
// Construction per file F with identifier id:
//   trapdoor(w)  = HMAC(key, w)
//   codeword     = HMAC(trapdoor, id)      (file-specific, so identical
//                                           words differ across filters)
//   insert codeword into F's Bloom filter.
// Search: the user reveals trapdoor(w); the server derives each file's
// codeword (ids are public) and tests its filter. Bloom false positives
// are possible by design; the rate is a build-time parameter.
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "baseline/bloom_filter.h"
#include "ir/analyzer.h"
#include "ir/document.h"
#include "util/bytes.h"

namespace rsse::baseline {

/// The per-collection Goh index held by the server.
class GohIndex {
 public:
  /// One file's filter.
  struct Entry {
    ir::FileId file{};
    BloomFilter filter;
  };

  explicit GohIndex(std::vector<Entry> entries) : entries_(std::move(entries)) {}

  /// Server-side search: test every file's filter (O(n files)).
  [[nodiscard]] std::vector<ir::FileId> search(BytesView trapdoor) const;

  /// Number of indexed files.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Total filter bytes (index-size comparisons).
  [[nodiscard]] std::uint64_t byte_size() const;

 private:
  std::vector<Entry> entries_;
};

/// Owner/user-side algorithms.
class GohScheme {
 public:
  /// Binds the scheme to a key and the shared analyzer pipeline.
  GohScheme(Bytes key, ir::AnalyzerOptions analyzer_options = {},
            double target_fp_rate = 0.01);

  /// Builds the per-file Bloom index for the collection.
  [[nodiscard]] GohIndex build_index(const ir::Corpus& corpus) const;

  /// Trapdoor(w): what the user reveals to search.
  [[nodiscard]] Bytes trapdoor(std::string_view keyword) const;

  /// The codeword inserted for (trapdoor, id) — exposed for tests.
  static Bytes codeword(BytesView trapdoor, ir::FileId id);

 private:
  Bytes key_;
  ir::Analyzer analyzer_;
  double target_fp_rate_;
};

}  // namespace rsse::baseline
