#include "baseline/plaintext_search.h"

namespace rsse::baseline {

PlaintextSearchEngine::PlaintextSearchEngine(const ir::Corpus& corpus,
                                             ir::AnalyzerOptions analyzer_options)
    : analyzer_(analyzer_options), index_(ir::InvertedIndex::build(corpus, analyzer_)) {}

std::vector<ir::ScoredPosting> PlaintextSearchEngine::search(std::string_view keyword,
                                                             std::size_t top_k) const {
  const std::string normalized = analyzer_.normalize_keyword(keyword);
  if (normalized.empty()) return {};
  std::vector<ir::ScoredPosting> ranked = index_.ranked_postings(normalized);
  if (top_k > 0 && ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace rsse::baseline
