// Sampling/training-based order-preserving transform, after Zerr et al.
// "Zerber+r: top-k retrieval from a confidential index" (EDBT'09) — the
// paper's reference [16].
//
// The owner pre-samples the relevance scores it will outsource, fits a
// piecewise-linear empirical CDF, and maps each score s to approximately
// round(CDF(s) * range): the output is uniformized ("flattened") exactly
// because the transform encodes the training distribution. As with
// BucketOpm, that coupling is the weakness the paper exploits: scores
// from a drifted distribution require re-training, which moves every
// previously mapped value, whereas the OPM's buckets are distribution-
// independent.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace rsse::baseline {

/// The [16]-style transform.
class SampleOpm {
 public:
  /// Trains the empirical CDF on `training_scores` (non-empty) with
  /// `knots` interpolation points, mapping into {1..range_size}. `key`
  /// seeds the sub-range jitter.
  SampleOpm(std::vector<double> training_scores, std::size_t knots,
            std::uint64_t range_size, Bytes key);

  /// Maps a score order-preservingly: CDF position scaled to the range,
  /// plus keyed jitter within the local CDF cell; `tiebreak` varies the
  /// jitter per file.
  [[nodiscard]] std::uint64_t map(double score, std::uint64_t tiebreak) const;

  /// Re-trains on a new sample (forced when the distribution drifts).
  void retrain(std::vector<double> training_scores);

  /// Empirical CDF value of `score` in [0,1], piecewise-linear between
  /// the training knots.
  [[nodiscard]] double cdf(double score) const;

  /// The training knots (score values at equally spaced quantiles).
  [[nodiscard]] const std::vector<double>& knots() const { return knots_; }

 private:
  std::size_t num_knots_;
  std::uint64_t range_size_;
  Bytes key_;
  std::vector<double> knots_;  // ascending; knots_[i] ~ quantile i/(K-1)
};

}  // namespace rsse::baseline
