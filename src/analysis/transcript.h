// Live transcript capture: the honest-but-curious server's per-query
// view, recorded on the serving path. Every ranked search the server
// answers appends one TranscriptRecord — the opaque row label the query
// touched, the stored row width it saw while answering, and the file ids
// it returned — into a bounded ring. That is EXACTLY the two objects the
// paper's Sec. V security argument conditions on (search pattern +
// access pattern) plus the width side-channel the padding policy
// modulates; nothing a faithful server couldn't tabulate for itself.
//
// The ring feeds analysis::LeakageLedger (ledger()) so the query-
// recovery attack and the leakage tests consume one canonical view, and
// serializes to a replayable artifact (store::save_transcript) so an
// offline `rsse audit --attack` can re-run the adversary against a
// transcript captured earlier. Canonical byte form: two same-seed SimNet
// runs produce byte-identical transcripts.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "analysis/leakage.h"
#include "util/bytes.h"

namespace rsse::analysis {

/// One query as the server saw it.
struct TranscriptRecord {
  std::uint64_t seq = 0;                    ///< per-sink, monotonic from 0
  Bytes row_label;                          ///< opaque trapdoor label
  std::uint32_t row_width = 0;              ///< stored width incl. padding
  std::vector<std::uint64_t> returned_ids;  ///< access pattern of this query

  friend bool operator==(const TranscriptRecord&, const TranscriptRecord&) = default;
};

/// Thread-safe bounded ring of TranscriptRecords. CloudServer records
/// into an attached sink from its (concurrent, const) ranked-search
/// path; readers snapshot without blocking writers for long. When the
/// ring is full the oldest record is overwritten — dropped() counts the
/// overwritten prefix so an analyst knows the transcript is a suffix.
class TranscriptSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit TranscriptSink(std::size_t capacity = kDefaultCapacity);

  /// Appends one observation (assigns the next seq) and then fires the
  /// listener, outside the lock. Safe from any thread.
  void record(Bytes row_label, std::size_t row_width,
              std::vector<std::uint64_t> returned_ids);

  /// The retained records, oldest first (seq ascending).
  [[nodiscard]] std::vector<TranscriptRecord> snapshot() const;

  /// The retained records as a LeakageLedger (the attack engine's input).
  [[nodiscard]] LeakageLedger ledger() const;

  /// Records ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t total_recorded() const;

  /// Records lost to ring overwrite (total_recorded() - retained).
  [[nodiscard]] std::uint64_t dropped() const;

  /// Currently retained record count.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Registers a callback invoked after every record() (outside the
  /// sink's lock) — how a background attack evaluator wakes without
  /// polling. Set before traffic; pass nullptr to clear.
  void set_listener(std::function<void()> listener);

  /// Replaces the retained records (replay of a persisted transcript).
  /// Seqs are kept as loaded; subsequent record() calls continue from
  /// one past the highest loaded seq.
  void load(std::vector<TranscriptRecord> records);

  /// Canonical byte form of a record sequence (seq order is the caller's
  /// responsibility; snapshot() already returns it).
  [[nodiscard]] static Bytes serialize(const std::vector<TranscriptRecord>& records);

  /// Parses serialize() output. Throws ParseError on malformed input.
  [[nodiscard]] static std::vector<TranscriptRecord> deserialize(BytesView bytes);

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TranscriptRecord> ring_;  // insertion order until full, then rotated
  std::size_t head_ = 0;                // next overwrite position once full
  std::uint64_t next_seq_ = 0;
  std::function<void()> listener_;
};

/// Builds a ledger from transcript records directly (the offline path:
/// store::load_transcript -> attack) — same derivation ledger() uses.
[[nodiscard]] LeakageLedger ledger_from_records(
    const std::vector<TranscriptRecord>& records);

}  // namespace rsse::analysis
