// Query-recovery attack against this scheme's own leakage, in the style
// of Damie et al. (PAPERS.md, arXiv 2306.15302): an honest-but-curious
// server that observed a query transcript (search pattern + access
// pattern + stored row widths) and holds a statistically similar PUBLIC
// corpus tries to name the keyword behind each search-pattern group.
//
// Signals, matching what the transcript actually leaks:
//   * width/frequency: the stored row width of a queried keyword is its
//     document frequency N_i under PaddingMode::kNone, the next power of
//     two under kPowerOfTwo, and a constant nu under kFullNu — matched
//     in log space against df(candidate) * |C_server| / |C_public|. When
//     every observed width is a power of two the attack infers pow2
//     bucketing and rounds its predictions to the same buckets (coarser
//     signal: dfs in a bucket become indistinguishable); when every
//     width is equal (full padding) the term is disabled entirely,
//     which is exactly what padding buys.
//   * query frequency: how often each group was queried, matched against
//     the candidate's relative document frequency (queries follow
//     corpus salience — the standard frequency-attack assumption).
//   * co-occurrence: overlap coefficients between the groups' returned
//     top-k result sets, compared against the same statistic between
//     candidate keywords' top-k sets on the public corpus, anchored by a
//     small known-query seed set and iteratively refined by promoting
//     the most confident predictions to pseudo-known queries.
//
// Everything is deterministic: scores are pure arithmetic over the
// ledger and the background knowledge, ties break lexicographically.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/leakage.h"
#include "ir/analyzer.h"
#include "ir/document.h"
#include "util/bytes.h"

namespace rsse::analysis {

/// Statistics the adversary extracts from a similar public corpus: the
/// candidate keyword universe with relative document frequencies and
/// pairwise top-k co-occurrence. Built once, reused across evaluations.
class BackgroundKnowledge {
 public:
  struct Options {
    std::size_t max_keywords = 400;         ///< candidate cap, by df desc
    std::size_t min_document_frequency = 2; ///< drop near-hapax terms
    std::size_t top_k = 10;                 ///< mirror the observed query top-k
    ir::AnalyzerOptions analyzer;           ///< must match the indexing pipeline
  };

  /// Scans the public corpus, selects candidate keywords and precomputes
  /// the statistics. Deterministic for a fixed corpus.
  static BackgroundKnowledge from_corpus(const ir::Corpus& corpus,
                                         const Options& options);
  static BackgroundKnowledge from_corpus(const ir::Corpus& corpus);

  [[nodiscard]] std::size_t num_keywords() const { return keywords_.size(); }
  [[nodiscard]] std::size_t num_documents() const { return num_documents_; }

  /// Candidate keywords (analyzer-normalized), df-descending then
  /// lexicographic.
  [[nodiscard]] const std::vector<std::string>& keywords() const { return keywords_; }

  /// df(candidate) / |public corpus|.
  [[nodiscard]] double relative_frequency(std::size_t candidate) const {
    return relative_frequency_[candidate];
  }

  /// Overlap coefficient of candidates' top-k result sets.
  [[nodiscard]] double cooccurrence(std::size_t a, std::size_t b) const {
    return cooccurrence_[a * keywords_.size() + b];
  }

  /// Index of a normalized keyword among the candidates, if selected.
  [[nodiscard]] std::optional<std::size_t> keyword_index(std::string_view keyword) const;

 private:
  std::vector<std::string> keywords_;
  std::vector<double> relative_frequency_;
  std::vector<double> cooccurrence_;  // n*n, row-major
  std::map<std::string, std::size_t, std::less<>> index_of_;
  std::size_t num_documents_ = 0;
};

/// One seed: the adversary knows (row label -> keyword) for a few
/// queries — Damie et al.'s known-query bootstrap. Keywords must be in
/// the analyzer-normalized form the background candidates use.
struct KnownQuery {
  Bytes row_label;
  std::string keyword;
};

/// Attack knobs. Defaults are what bench_attack_recovery sweeps with:
/// the width (response-length) term dominates — the count-attack
/// observation that row widths alone identify most keywords when the
/// padding lets them through — while co-occurrence refines within width
/// classes, where its cross-corpus noise cannot override a clear width
/// match.
struct AttackOptions {
  double cooccurrence_weight = 0.5;
  double width_weight = 2.0;          ///< frequency-from-row-width term
  double query_frequency_weight = 0.2;
  /// Guesses with confidence >= this count as "confident" (and are
  /// eligible for refinement promotion).
  double confidence_threshold = 0.12;
  std::size_t refinement_batch = 4;   ///< promotions per refinement round
  std::size_t max_iterations = 64;
  /// |C| on the server, for scaling public df to an expected row width.
  /// 0 = infer as (max observed file id + 1) from the ledger.
  std::size_t num_server_files = 0;
};

/// The adversary's verdict on one search-pattern group.
struct QueryGuess {
  std::size_t group = 0;       ///< index into ledger.query_profiles()
  Bytes row_label;
  std::string keyword;         ///< best candidate ("" = no candidate fit)
  double confidence = 0.0;     ///< margin-based, in [0, 1]
  bool seed = false;           ///< was a known query (not a prediction)
  bool refined = false;        ///< promoted to pseudo-known mid-attack
};

struct AttackResult {
  std::vector<QueryGuess> guesses;   ///< one per group, group order
  std::size_t queries_observed = 0;  ///< ledger queries consumed
  std::size_t groups = 0;            ///< distinct search-pattern groups
  std::size_t confident = 0;         ///< non-seed guesses over threshold
  std::size_t refinement_rounds = 0;
  bool widths_informative = false;   ///< width term active (padding leaked)
};

/// Runs the frequency + co-occurrence recovery attack over a ledger.
[[nodiscard]] AttackResult run_query_recovery(
    const LeakageLedger& ledger, const BackgroundKnowledge& background,
    const std::vector<KnownQuery>& known = {}, const AttackOptions& options = {});

/// Fraction of non-seed groups whose guess matches `truth` (row label ->
/// normalized keyword). Groups without a truth entry are excluded.
/// Evaluation-side only: a real server never holds `truth`.
[[nodiscard]] double recovery_rate(const AttackResult& result,
                                   const std::map<Bytes, std::string>& truth);

}  // namespace rsse::analysis
