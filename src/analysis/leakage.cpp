#include "analysis/leakage.h"

#include <algorithm>
#include <cmath>

namespace rsse::analysis {

IndexShape index_shape(const sse::SecureIndex& index) {
  IndexShape shape;
  shape.num_rows = index.num_rows();
  shape.total_bytes = index.byte_size();
  std::map<std::size_t, std::size_t> width_counts;
  for (const Bytes& label : index.labels())
    ++width_counts[index.row(label)->size()];
  if (!width_counts.empty()) {
    shape.min_row_width = width_counts.begin()->first;
    shape.max_row_width = width_counts.rbegin()->first;
    shape.distinct_widths = width_counts.size();
    double entropy = 0.0;
    for (const auto& [width, count] : width_counts) {
      const double p = static_cast<double>(count) / static_cast<double>(shape.num_rows);
      entropy -= p * std::log2(p);
    }
    shape.width_shannon_entropy = entropy;
  }
  return shape;
}

void export_leakage_gauges(const sse::LeakageAudit& audit,
                           obs::MetricsRegistry& registry,
                           const obs::Labels& labels) {
  registry
      .gauge("rsse_opm_ciphertext_duplicates",
             "OPM value collisions across all rows; the one-to-many "
             "mapping's Fig. 6 guarantee requires 0",
             labels)
      .set(static_cast<std::int64_t>(audit.opm_ciphertext_duplicates));
  registry
      .gauge("rsse_leakage_audited_postings",
             "Genuine postings covered by the build-time leakage audit",
             labels)
      .set(static_cast<std::int64_t>(audit.genuine_postings));
  registry
      .double_gauge("rsse_leakage_width_entropy_bits",
                    "Shannon entropy of stored posting-row widths under "
                    "the padding policy (0 = widths reveal nothing)",
                    labels)
      .set(audit.stored_width_entropy_bits);
  registry
      .double_gauge("rsse_leakage_level_min_entropy_bits",
                    "Min-entropy of quantized score levels in the widest "
                    "row (plaintext side of Ablation C)",
                    labels)
      .set(audit.level_min_entropy_bits());
  registry
      .double_gauge("rsse_leakage_opm_min_entropy_bits",
                    "Min-entropy of OPM values in the widest row (after "
                    "the one-to-many mapping)",
                    labels)
      .set(audit.opm_min_entropy_bits());
}

void LeakageLedger::record(QueryObservation observation) {
  observations_.push_back(std::move(observation));
}

std::vector<std::vector<std::size_t>> LeakageLedger::search_pattern() const {
  std::vector<std::vector<std::size_t>> groups;
  std::map<Bytes, std::size_t> group_of_label;
  for (std::size_t q = 0; q < observations_.size(); ++q) {
    const auto [it, inserted] =
        group_of_label.emplace(observations_[q].row_label, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(q);
  }
  return groups;
}

std::vector<std::vector<std::uint64_t>> LeakageLedger::access_pattern() const {
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(observations_.size());
  for (const QueryObservation& o : observations_) out.push_back(o.returned_ids);
  return out;
}

std::size_t LeakageLedger::distinct_keywords_queried() const {
  return search_pattern().size();
}

std::map<std::uint64_t, std::size_t> LeakageLedger::file_frequencies() const {
  std::map<std::uint64_t, std::size_t> counts;
  for (const QueryObservation& o : observations_)
    for (std::uint64_t id : o.returned_ids) ++counts[id];
  return counts;
}

std::vector<QueryGroupProfile> LeakageLedger::query_profiles() const {
  std::vector<QueryGroupProfile> profiles;
  std::map<Bytes, std::size_t> group_of_label;
  for (std::size_t q = 0; q < observations_.size(); ++q) {
    const QueryObservation& o = observations_[q];
    const auto [it, inserted] = group_of_label.emplace(o.row_label, profiles.size());
    if (inserted) {
      profiles.emplace_back();
      profiles.back().row_label = o.row_label;
    }
    QueryGroupProfile& p = profiles[it->second];
    p.query_indices.push_back(q);
    p.result_union.insert(p.result_union.end(), o.returned_ids.begin(),
                          o.returned_ids.end());
    p.row_width = std::max(p.row_width, o.row_width);
  }
  for (QueryGroupProfile& p : profiles) {
    std::sort(p.result_union.begin(), p.result_union.end());
    p.result_union.erase(std::unique(p.result_union.begin(), p.result_union.end()),
                         p.result_union.end());
  }
  return profiles;
}

double overlap_coefficient(const std::vector<std::uint64_t>& a,
                           const std::vector<std::uint64_t>& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::size_t shared = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++shared;
      ++ia;
      ++ib;
    }
  }
  return static_cast<double>(shared) /
         static_cast<double>(std::min(a.size(), b.size()));
}

std::vector<double> LeakageLedger::cooccurrence_matrix() const {
  const auto profiles = query_profiles();
  const std::size_t n = profiles.size();
  std::vector<double> matrix(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double c =
          overlap_coefficient(profiles[i].result_union, profiles[j].result_union);
      matrix[i * n + j] = c;
      matrix[j * n + i] = c;
    }
  }
  return matrix;
}

std::vector<std::size_t> LeakageLedger::query_frequency_histogram() const {
  std::vector<std::size_t> histogram;
  for (const QueryGroupProfile& p : query_profiles())
    histogram.push_back(p.query_indices.size());
  return histogram;
}

}  // namespace rsse::analysis
