#include "analysis/transcript.h"

#include <algorithm>
#include <utility>

#include "util/errors.h"

namespace rsse::analysis {

TranscriptSink::TranscriptSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TranscriptSink::record(Bytes row_label, std::size_t row_width,
                            std::vector<std::uint64_t> returned_ids) {
  std::function<void()> listener;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    TranscriptRecord rec;
    rec.seq = next_seq_++;
    rec.row_label = std::move(row_label);
    rec.row_width = static_cast<std::uint32_t>(row_width);
    rec.returned_ids = std::move(returned_ids);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(rec));
    } else {
      ring_[head_] = std::move(rec);
      head_ = (head_ + 1) % capacity_;
    }
    listener = listener_;
  }
  if (listener) listener();
}

std::vector<TranscriptRecord> TranscriptSink::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TranscriptRecord> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, head_ points at the oldest record.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

LeakageLedger TranscriptSink::ledger() const {
  return ledger_from_records(snapshot());
}

std::uint64_t TranscriptSink::total_recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t TranscriptSink::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - ring_.size();
}

std::size_t TranscriptSink::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

void TranscriptSink::set_listener(std::function<void()> listener) {
  const std::lock_guard<std::mutex> lock(mutex_);
  listener_ = std::move(listener);
}

void TranscriptSink::load(std::vector<TranscriptRecord> records) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (records.size() > capacity_)
    records.erase(records.begin(),
                  records.begin() + static_cast<std::ptrdiff_t>(records.size() - capacity_));
  ring_ = std::move(records);
  head_ = 0;
  next_seq_ = 0;
  for (const TranscriptRecord& rec : ring_)
    next_seq_ = std::max(next_seq_, rec.seq + 1);
}

Bytes TranscriptSink::serialize(const std::vector<TranscriptRecord>& records) {
  Bytes out;
  append_u64(out, 1);  // format version
  append_u64(out, records.size());
  for (const TranscriptRecord& rec : records) {
    append_u64(out, rec.seq);
    append_lp(out, rec.row_label);
    append_u32(out, rec.row_width);
    append_u64(out, rec.returned_ids.size());
    for (const std::uint64_t id : rec.returned_ids) append_u64(out, id);
  }
  return out;
}

std::vector<TranscriptRecord> TranscriptSink::deserialize(BytesView bytes) {
  ByteReader reader(bytes);
  const std::uint64_t version = reader.read_u64();
  if (version != 1) throw ParseError("transcript: unknown format version");
  // seq + LP header + width + id count.
  const std::uint64_t count = reader.read_count(8 + 4 + 4 + 8);
  std::vector<TranscriptRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TranscriptRecord rec;
    rec.seq = reader.read_u64();
    rec.row_label = reader.read_lp();
    rec.row_width = reader.read_u32();
    const std::uint64_t ids = reader.read_count(8);
    rec.returned_ids.reserve(ids);
    for (std::uint64_t j = 0; j < ids; ++j)
      rec.returned_ids.push_back(reader.read_u64());
    records.push_back(std::move(rec));
  }
  if (!reader.exhausted()) throw ParseError("transcript: trailing bytes");
  return records;
}

LeakageLedger ledger_from_records(const std::vector<TranscriptRecord>& records) {
  LeakageLedger ledger;
  for (const TranscriptRecord& rec : records) {
    QueryObservation obs;
    obs.row_label = rec.row_label;
    obs.returned_ids = rec.returned_ids;
    obs.row_width = rec.row_width;
    ledger.record(std::move(obs));
  }
  return ledger;
}

}  // namespace rsse::analysis
