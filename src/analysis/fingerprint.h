// The Fig. 4 keyword-fingerprinting attack, implemented as a concrete
// adversary. Sec. IV-A: "with certain background information on the file
// collection, the adversary may reverse-engineer the keyword 'network'
// directly from the encrypted score distribution".
//
// Model: the adversary knows, for each candidate keyword, the plaintext
// relevance-score multiset from a statistically similar public corpus
// (its "background knowledge"). Observing a posting list's encrypted
// scores, it computes the DUPLICATE MULTIPLICITY PROFILE — how many
// values occur once, twice, ... sorted descending — which any
// deterministic encryption preserves EXACTLY (equal plaintexts, equal
// ciphertexts), i.e. classic frequency analysis. Matching is L1 distance
// over normalized profiles.
//
// bench/ and tests show the attack ranks the true keyword first against
// deterministic OPSE and collapses to near-chance against the
// one-to-many mapping, turning Sec. V-A's argument into a measurement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rsse::analysis {

/// An adversary matching observed score multisets against known
/// keyword profiles.
class KeywordFingerprinter {
 public:
  /// A candidate's background knowledge: the multiset of plaintext score
  /// levels (or any monotone transform thereof) from a public corpus.
  struct Candidate {
    std::string keyword;
    std::vector<std::uint64_t> score_values;
  };

  /// One match result.
  struct Match {
    std::string keyword;
    double distance = 0.0;  ///< L1 distance between signatures; lower = closer
  };

  /// `bins`: signature resolution (the paper's figures use 128).
  explicit KeywordFingerprinter(std::vector<Candidate> candidates,
                                std::size_t bins = 128);

  /// Ranks every candidate by distance to the observed encrypted values,
  /// best match first.
  [[nodiscard]] std::vector<Match> rank_candidates(
      const std::vector<std::uint64_t>& observed_values) const;

  /// Convenience: the best-matching keyword.
  [[nodiscard]] std::string best_match(
      const std::vector<std::uint64_t>& observed_values) const;

  /// The signature function, exposed for tests: the multiplicity of each
  /// distinct value, sorted descending, normalized by the multiset size,
  /// truncated/zero-padded to `bins` entries. Invariant under ANY
  /// injective re-encoding of the values — deterministic encryption
  /// included — and maximally flat when every value is unique (the
  /// one-to-many mapping's output).
  [[nodiscard]] std::vector<double> signature(
      const std::vector<std::uint64_t>& values) const;

 private:
  std::vector<Candidate> candidates_;
  std::vector<std::vector<double>> candidate_signatures_;
  std::size_t bins_;
};

}  // namespace rsse::analysis
